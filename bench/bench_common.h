// Shared infrastructure for the paper-reproduction benchmarks: the Water and
// Roads evaluation datasets and their insertion-built R*-trees (Section 3.1),
// cached result-distance checkpoints (for "MaxDist @ pair #k" experiments),
// and a paper-style results table printed after each binary's benchmarks.
//
// Every bench binary honors the environment variable SDJ_BENCH_SCALE
// (default 1.0 = the paper's full 37,495 x 200,482 points); e.g.
// SDJ_BENCH_SCALE=0.1 runs a 10% instance for quick iteration.
#ifndef SDJOIN_BENCH_BENCH_COMMON_H_
#define SDJOIN_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/join_stats.h"
#include "obs/metrics.h"
#include "rtree/rtree.h"

namespace sdj::bench {

// Dataset scale factor from SDJ_BENCH_SCALE (clamped to (0, 1]).
double Scale();

// The evaluation trees, built once per process by repeated R* insertion
// (matching the paper's setup: 2K pages => fan-out ~50, 256K buffer).
const RTree<2>& WaterTree();
const RTree<2>& RoadsTree();

// The raw datasets (ids = positions).
const std::vector<Point<2>>& WaterPoints();
const std::vector<Point<2>>& RoadsPoints();

// Result-count-scaled: K result pairs at scale 1.0 correspond to
// K * Scale()^2 pairs on a scaled instance (pair density scales with the
// product of the relation sizes). Returns at least 1.
uint64_t ScaledPairs(uint64_t k);
// For semi-join targets (scales with |Water|).
uint64_t ScaledSemiPairs(uint64_t k);

// Distance of result pair #k (1-based) of the Water x Roads distance join
// under the default Even/DepthFirst configuration. Backed by one cached run
// draining max(k) pairs.
double JoinDistanceAt(uint64_t k);

// Distance of result pair #k (1-based) of the Water -> Roads distance
// semi-join; k may be Water size for the "All" experiments.
double SemiDistanceAt(uint64_t k);

// Drops all cached pages so each measurement starts from a cold buffer.
void ColdCaches();

// --- paper-style output table ---

struct Row {
  std::string series;   // e.g. "Even/DepthFirst"
  uint64_t pairs = 0;   // result pairs produced
  double seconds = 0.0;
  JoinStats stats;
  std::string note;
  int threads = 1;      // JoinConfig::num_threads used for the run
  // Per-phase latency summaries (DESIGN.md §12); all-zero when the bench did
  // not attach a Metrics sink (SDJ_BENCH_METRICS=0 or an unwired binary).
  obs::MetricsSummary metrics{};
  // Sharded runs (DESIGN.md §18): effective shard count (1 = serial engine),
  // merge-level pops, and per-shard nodes_expanded. compare_bench.py keys
  // rows on (series, threads, shards, pairs) and refuses cross-shard-count
  // comparisons, so sharded and serial rows never gate each other.
  int shards = 1;
  uint64_t shard_merge_pops = 0;
  std::vector<uint64_t> shard_expansions{};
};

// Whether benches should attach a Metrics sink to instrumented runs.
// Default on; SDJ_BENCH_METRICS=0 disables (for overhead measurements).
bool MetricsEnabled();

// Records one measurement row.
void AddRow(const Row& row);

// Prints all recorded rows as a Table-1-style table ("Time, Dist. Calc.,
// Queue Size, Node I/O" columns) to stdout, and writes the same rows —
// wall-clock ms, node I/O, the full JoinStats, and SDJ_BENCH_SCALE — as
// machine-readable JSON to BENCH_<name>.json in the working directory
// (<name> = the binary name without its "bench_" prefix).
void PrintTable(const std::string& title);

// Wall-clock helper.
class WallTimer {
 public:
  WallTimer();
  double Seconds() const;

 private:
  uint64_t start_ns_;
};

}  // namespace sdj::bench

#endif  // SDJOIN_BENCH_BENCH_COMMON_H_
