// Ablations over the design choices DESIGN.md §6 calls out (not figures from
// the paper, but the knobs its design space exposes):
//
//   * R* split vs. Guttman quadratic split (build cost and join cost)
//   * node size / fan-out sweep (the paper fixed 1K nodes / fan-out 50)
//   * insertion-built vs. bulk-loaded trees
//   * point metric (Euclidean / Manhattan / Chessboard)
//
// Each configuration rebuilds its trees, then runs the default incremental
// join for 10,000 result pairs.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/distance_join.h"

namespace sdj::bench {
namespace {

std::unique_ptr<RTree<2>> Build(const std::vector<Point<2>>& points,
                                const RTreeOptions& options, bool bulk,
                                double* build_seconds) {
  WallTimer timer;
  auto tree = std::make_unique<RTree<2>>(options);
  if (bulk) {
    std::vector<RTree<2>::Entry> entries;
    entries.reserve(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
      entries.push_back({Rect<2>::FromPoint(points[i]), i});
    }
    tree->BulkLoad(std::move(entries));
  } else {
    for (size_t i = 0; i < points.size(); ++i) {
      tree->Insert(Rect<2>::FromPoint(points[i]), i);
    }
  }
  *build_seconds = timer.Seconds();
  return tree;
}

void RunTreeConfig(benchmark::State& state, const std::string& series,
                   const RTreeOptions& options, bool bulk, Metric metric) {
  for (auto _ : state) {
    double build_water = 0.0;
    double build_roads = 0.0;
    auto water = Build(WaterPoints(), options, bulk, &build_water);
    auto roads = Build(RoadsPoints(), options, bulk, &build_roads);
    const uint64_t pairs = ScaledPairs(10000);
    WallTimer timer;
    DistanceJoinOptions join_options;
    join_options.metric = metric;
    DistanceJoin<2> join(*water, *roads, join_options);
    JoinResult<2> result;
    uint64_t produced = 0;
    while (produced < pairs && join.Next(&result)) ++produced;
    const double seconds = timer.Seconds();
    state.SetIterationTime(seconds);
    state.counters["build_s"] = build_water + build_roads;
    state.counters["fan_out"] = water->max_entries();
    AddRow({series, produced, seconds, join.stats(),
            "build " + std::to_string(build_water + build_roads) +
                " s, fan-out " + std::to_string(water->max_entries())});
  }
}

void Register(const std::string& series, const RTreeOptions& options,
              bool bulk, Metric metric = Metric::kEuclidean) {
  benchmark::RegisterBenchmark(
      ("Ablation/" + series).c_str(),
      [series, options, bulk, metric](benchmark::State& state) {
        RunTreeConfig(state, series, options, bulk, metric);
      })
      ->Iterations(1)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond);
}

void RegisterAll() {
  RTreeOptions paper;
  paper.page_size = 2048;
  paper.buffer_pages = 128;

  // Split policy.
  Register("Split/RStar", paper, /*bulk=*/false);
  RTreeOptions quadratic = paper;
  quadratic.split_policy = RTreeOptions::Split::kQuadratic;
  Register("Split/Quadratic", quadratic, /*bulk=*/false);

  // Node size sweep (fan-out 12 / 25 / 51 / 102), buffer fixed at 256K.
  for (uint32_t page_size : {512u, 1024u, 2048u, 4096u}) {
    RTreeOptions options = paper;
    options.page_size = page_size;
    options.buffer_pages = 256 * 1024 / page_size;
    Register("NodeSize/" + std::to_string(page_size), options,
             /*bulk=*/false);
  }

  // Build method.
  Register("Build/Insert", paper, /*bulk=*/false);
  Register("Build/BulkLoad", paper, /*bulk=*/true);

  // Metric sweep (bulk-loaded trees to keep this binary fast).
  Register("Metric/Euclidean", paper, /*bulk=*/true, Metric::kEuclidean);
  Register("Metric/Manhattan", paper, /*bulk=*/true, Metric::kManhattan);
  Register("Metric/Chessboard", paper, /*bulk=*/true, Metric::kChessboard);
}

}  // namespace
}  // namespace sdj::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  sdj::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sdj::bench::PrintTable("Ablations: split policy, node size, build, metric");
  return 0;
}
