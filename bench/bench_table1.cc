// Reproduces Table 1: performance measures of the incremental distance join
// (depth-first tie-break, one node at a time, even traversal) producing 1 to
// 100,000 result pairs of Water x Roads.
//
// Paper values (Sun Ultra 1): time grows from 6.9s (1 pair) to 23.8s (100k),
// nearly flat between 10 and 10,000 pairs; queue size ~1.0M -> 2.2M; node
// I/O 3,019 -> 28,356. The shape — cheap first pair, flat middle, sharp rise
// at 100k — is the reproduction target.
#include <benchmark/benchmark.h>

#include <utility>

#include "bench_common.h"
#include "core/distance_join.h"
#include "core/env_knobs.h"
#include "core/shard_merge.h"
#include "core/within_join.h"

namespace sdj::bench {
namespace {

void RunJoin(benchmark::State& state, uint64_t pairs,
             const DistanceJoinOptions& options, const std::string& series) {
  for (auto _ : state) {
    ColdCaches();
    // Fresh per-iteration sink; detached from the shared pools before it
    // goes out of scope. SDJ_BENCH_METRICS=0 reverts to the uninstrumented
    // run (for overhead measurements).
    obs::Metrics metrics;
    DistanceJoinOptions run_options = options;
    if (MetricsEnabled()) {
      run_options.metrics = &metrics;
      WaterTree().pool().SetMetrics(&metrics);
      RoadsTree().pool().SetMetrics(&metrics);
    }
    WallTimer timer;
    DistanceJoin<2> join(WaterTree(), RoadsTree(), run_options);
    JoinResult<2> result;
    uint64_t produced = 0;
    while (produced < pairs && join.Next(&result)) ++produced;
    const double seconds = timer.Seconds();
    if (MetricsEnabled()) {
      WaterTree().pool().SetMetrics(nullptr);
      RoadsTree().pool().SetMetrics(nullptr);
    }
    state.SetIterationTime(seconds);
    const JoinStats& stats = join.stats();
    state.counters["dist_calc"] = static_cast<double>(stats.object_distance_calcs);
    state.counters["queue_size"] = static_cast<double>(stats.max_queue_size);
    state.counters["node_io"] = static_cast<double>(stats.node_io);
    // Rows record the resolved thread count (0 = "environment default"
    // would make row keys depend on SDJ_THREADS being unset).
    AddRow({series, produced, seconds, stats, "",
            env_knobs::ResolveThreads(run_options.num_threads),
            metrics.Summary()});
  }
}

// Sharded series (DESIGN.md §18): the same drain through K independent
// shard engines behind the k-way frontier merge. The pair stream (and thus
// the result columns) is bit-identical to the serial run; Node I/O may move
// because shards pull pages in merge order, not global traversal order.
void RunShardedJoin(benchmark::State& state, uint64_t pairs,
                    const DistanceJoinOptions& options,
                    const std::string& series) {
  for (auto _ : state) {
    ColdCaches();
    obs::Metrics metrics;
    DistanceJoinOptions run_options = options;
    if (MetricsEnabled()) {
      run_options.metrics = &metrics;
      WaterTree().pool().SetMetrics(&metrics);
      RoadsTree().pool().SetMetrics(&metrics);
    }
    WallTimer timer;
    ShardedDistanceJoin<2> join(WaterTree(), RoadsTree(), run_options);
    JoinResult<2> result;
    uint64_t produced = 0;
    while (produced < pairs && join.Next(&result)) ++produced;
    const double seconds = timer.Seconds();
    if (MetricsEnabled()) {
      WaterTree().pool().SetMetrics(nullptr);
      RoadsTree().pool().SetMetrics(nullptr);
    }
    state.SetIterationTime(seconds);
    const JoinStats& stats = join.stats();
    state.counters["dist_calc"] = static_cast<double>(stats.object_distance_calcs);
    state.counters["queue_size"] = static_cast<double>(stats.max_queue_size);
    state.counters["node_io"] = static_cast<double>(stats.node_io);
    Row row{series, produced, seconds, stats, "",
            env_knobs::ResolveThreads(run_options.num_threads),
            metrics.Summary()};
    row.shards = join.effective_shards();
    row.shard_merge_pops = join.shard_merge_pops();
    for (const JoinStats& shard : join.shard_stats()) {
      row.shard_expansions.push_back(shard.nodes_expanded);
    }
    AddRow(row);
  }
}

// Within-distance series: drain IncWithinJoin at eps = the distance of join
// pair #k, so the result count (and the work) tracks the Table 1 rows it sits
// next to. Exercises the shared best-first core through its newest policy.
void RunWithin(benchmark::State& state, uint64_t k, const std::string& series) {
  const double eps = JoinDistanceAt(k);
  for (auto _ : state) {
    ColdCaches();
    obs::Metrics metrics;
    WithinJoinOptions options;
    options.epsilon = eps;
    if (MetricsEnabled()) {
      options.metrics = &metrics;
      WaterTree().pool().SetMetrics(&metrics);
      RoadsTree().pool().SetMetrics(&metrics);
    }
    WallTimer timer;
    IncWithinJoin<2> join(WaterTree(), RoadsTree(), options);
    JoinResult<2> result;
    uint64_t produced = 0;
    while (join.Next(&result)) ++produced;
    const double seconds = timer.Seconds();
    if (MetricsEnabled()) {
      WaterTree().pool().SetMetrics(nullptr);
      RoadsTree().pool().SetMetrics(nullptr);
    }
    state.SetIterationTime(seconds);
    const JoinStats& stats = join.stats();
    state.counters["dist_calc"] = static_cast<double>(stats.object_distance_calcs);
    state.counters["queue_size"] = static_cast<double>(stats.max_queue_size);
    state.counters["node_io"] = static_cast<double>(stats.node_io);
    AddRow({series, produced, seconds, stats, "",
            env_knobs::ResolveThreads(options.num_threads),
            metrics.Summary()});
  }
}

void RegisterAll() {
  for (uint64_t k : {1ull, 10ull, 100ull, 1000ull, 10000ull, 100000ull}) {
    const uint64_t pairs = ScaledPairs(k);
    benchmark::RegisterBenchmark(
        ("Table1/pairs:" + std::to_string(pairs)).c_str(),
        [pairs](benchmark::State& state) {
          RunJoin(state, pairs, DistanceJoinOptions{},  // Even/DepthFirst
                  "Even/DepthFirst");
        })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
  // Threads sweep on the Simultaneous policy, whose fan-out^2 expansions are
  // where the sharded classify applies (DESIGN.md §10). The result columns
  // and Node I/O must be identical across thread counts — only the wall
  // clock may move.
  const uint64_t pairs = ScaledPairs(100000ull);
  for (const int threads : {1, 2, 4}) {
    benchmark::RegisterBenchmark(
        ("Table1/simultaneous_threads:" + std::to_string(threads)).c_str(),
        [pairs, threads](benchmark::State& state) {
          DistanceJoinOptions options;
          options.node_policy = NodeProcessingPolicy::kSimultaneous;
          options.num_threads = threads;
          RunJoin(state, pairs, options,
                  "Simultaneous/t=" + std::to_string(threads));
        })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
  // Sharded grid (shards x threads) on the same Simultaneous drain: shard-
  // level parallelism vs the classify-only rows above at equal thread
  // budget (s=4,t=1 and s=2,t=2 vs t=4; s=4,t=2 shows the combined headroom).
  for (const auto& [shards, threads] :
       {std::pair<int, int>{2, 1}, {2, 2}, {4, 1}, {4, 2}}) {
    benchmark::RegisterBenchmark(
        ("Table1/sharded_s" + std::to_string(shards) + "_t" +
         std::to_string(threads))
            .c_str(),
        [pairs, shards, threads](benchmark::State& state) {
          DistanceJoinOptions options;
          options.node_policy = NodeProcessingPolicy::kSimultaneous;
          options.num_threads = threads;
          options.shards = shards;
          RunShardedJoin(state, pairs, options,
                         "Sharded/s=" + std::to_string(shards) +
                             ",t=" + std::to_string(threads));
        })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
  // Within-distance join at the 1k- and 100k-pair distance cutoffs.
  for (uint64_t k : {1000ull, 100000ull}) {
    const uint64_t scaled = ScaledPairs(k);
    benchmark::RegisterBenchmark(
        ("Table1/within:" + std::to_string(scaled)).c_str(),
        [scaled, k](benchmark::State& state) {
          RunWithin(state, scaled, "Within/eps@" + std::to_string(k));
        })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace sdj::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  sdj::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sdj::bench::PrintTable(
      "Table 1: incremental distance join, Even/DepthFirst, Water x Roads");
  return 0;
}
