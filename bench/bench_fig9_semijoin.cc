// Reproduces Figure 9: distance semi-join (Water -> Roads) filtering and
// d_max-bound strategies vs. number of result pairs.
//
//   Outside      — run the plain join, filter duplicates outside
//   Inside1      — filter dequeued pairs inside the main loop
//   Inside2      — additionally filter during node expansion
//   Local        — Inside2 + d_max bounds local to one ProcessNode call
//   GlobalNodes  — Local + global smallest-d_max table for nodes
//   GlobalAll    — ... and for objects
//
// Paper shape: all similar up to ~1,000 pairs (Outside marginally ahead);
// Outside becomes infeasible beyond ~10,000 (queue growth); for the full
// semi-join Inside2 beats Inside1 by ~47% (362s vs 530s) and GlobalAll is
// best overall. The "All" rows compute the complete semi-join (every Water
// point); Outside is capped at 10,000 pairs as in the paper.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.h"
#include "core/semi_join.h"

namespace sdj::bench {
namespace {

struct Strategy {
  const char* name;
  SemiJoinFilter filter;
  SemiJoinBound bound;
  bool cap_at_10k;  // Outside: the paper could not run it further
};

constexpr Strategy kStrategies[] = {
    {"Outside", SemiJoinFilter::kOutside, SemiJoinBound::kNone, true},
    {"Inside1", SemiJoinFilter::kInside1, SemiJoinBound::kNone, false},
    {"Inside2", SemiJoinFilter::kInside2, SemiJoinBound::kNone, false},
    {"Local", SemiJoinFilter::kInside2, SemiJoinBound::kLocal, false},
    {"GlobalNodes", SemiJoinFilter::kInside2, SemiJoinBound::kGlobalNodes,
     false},
    {"GlobalAll", SemiJoinFilter::kInside2, SemiJoinBound::kGlobalAll, false},
};

void RunStrategy(benchmark::State& state, const Strategy& strategy,
                 uint64_t pairs, const std::string& label) {
  for (auto _ : state) {
    ColdCaches();
    WallTimer timer;
    SemiJoinOptions options;
    options.filter = strategy.filter;
    options.bound = strategy.bound;
    DistanceSemiJoin<2> semi(WaterTree(), RoadsTree(), options);
    JoinResult<2> result;
    uint64_t produced = 0;
    while (produced < pairs && semi.Next(&result)) ++produced;
    const double seconds = timer.Seconds();
    state.SetIterationTime(seconds);
    const JoinStats stats = semi.stats();
    state.counters["queue_size"] = static_cast<double>(stats.max_queue_size);
    state.counters["filtered"] =
        static_cast<double>(stats.filtered_reported);
    AddRow({strategy.name, produced, seconds, stats, label});
  }
}

void RegisterAll() {
  const uint64_t all = WaterTree().size();
  for (const Strategy& strategy : kStrategies) {
    for (uint64_t k : {1ull, 10ull, 100ull, 1000ull, 10000ull}) {
      const uint64_t pairs = ScaledSemiPairs(k);
      if (strategy.cap_at_10k && k > 10000) continue;
      benchmark::RegisterBenchmark(
          (std::string("Fig9/") + strategy.name + "/pairs:" +
           std::to_string(pairs))
              .c_str(),
          [&strategy, pairs](benchmark::State& state) {
            RunStrategy(state, strategy, pairs, "");
          })
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
    if (strategy.cap_at_10k) continue;  // no "All" run for Outside
    benchmark::RegisterBenchmark(
        (std::string("Fig9/") + strategy.name + "/pairs:All").c_str(),
        [&strategy, all](benchmark::State& state) {
          RunStrategy(state, strategy, all, "All");
        })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace sdj::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  sdj::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sdj::bench::PrintTable(
      "Figure 9: semi-join pair filtering and smallest-d_max strategies");
  return 0;
}
