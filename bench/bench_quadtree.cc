// Index-genericity benchmark: the same incremental distance join running
// over R*-trees vs. bucket PR quadtrees on the evaluation datasets
// (Section 2.2's "works for any hierarchical spatial data structure", with
// the Section 2.2.2 caveat that quadtrees lack minimal bounding rectangles —
// the engine switches to containment-only d_max bounds automatically).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench_common.h"
#include "core/distance_join.h"
#include "core/semi_join.h"
#include "data/datasets.h"
#include "quadtree/quadtree.h"

namespace sdj::bench {
namespace {

PointQuadtree<2>* BuildQuadtree(const std::vector<Point<2>>& points) {
  QuadtreeOptions options;
  options.page_size = 2048;
  options.buffer_pages = 128;
  auto* tree = new PointQuadtree<2>(data::EvaluationExtent(), options);
  for (size_t i = 0; i < points.size(); ++i) {
    tree->Insert(points[i], i);
  }
  return tree;
}

PointQuadtree<2>& WaterQuadtree() {
  static PointQuadtree<2>* tree = BuildQuadtree(WaterPoints());
  return *tree;
}
PointQuadtree<2>& RoadsQuadtree() {
  static PointQuadtree<2>* tree = BuildQuadtree(RoadsPoints());
  return *tree;
}

template <typename Index>
void RunJoin(benchmark::State& state, const Index& t1, const Index& t2,
             uint64_t pairs, const std::string& label,
             NodeProcessingPolicy policy = NodeProcessingPolicy::kEven) {
  for (auto _ : state) {
    t1.pool().Invalidate();
    t2.pool().Invalidate();
    WallTimer timer;
    DistanceJoinOptions options;
    options.node_policy = policy;
    DistanceJoin<2, Index> join(t1, t2, options);
    JoinResult<2> result;
    uint64_t produced = 0;
    while (produced < pairs && join.Next(&result)) ++produced;
    const double seconds = timer.Seconds();
    state.SetIterationTime(seconds);
    AddRow({label, produced, seconds, join.stats(), ""});
  }
}

template <typename Index>
void RunSemi(benchmark::State& state, const Index& t1, const Index& t2,
             const std::string& label) {
  for (auto _ : state) {
    t1.pool().Invalidate();
    t2.pool().Invalidate();
    WallTimer timer;
    SemiJoinOptions options;
    options.bound = SemiJoinBound::kGlobalAll;
    DistanceSemiJoin<2, Index> semi(t1, t2, options);
    JoinResult<2> result;
    uint64_t produced = 0;
    while (produced < t1.size() && semi.Next(&result)) ++produced;
    const double seconds = timer.Seconds();
    state.SetIterationTime(seconds);
    AddRow({label, produced, seconds, semi.stats(), "GlobalAll"});
  }
}

void RegisterAll() {
  for (uint64_t k : {1ull, 1000ull, 100000ull}) {
    const uint64_t pairs = ScaledPairs(k);
    benchmark::RegisterBenchmark(
        ("Index/RStar/pairs:" + std::to_string(pairs)).c_str(),
        [pairs](benchmark::State& state) {
          RunJoin(state, WaterTree(), RoadsTree(), pairs, "R*-tree join");
        })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("Index/Quadtree/pairs:" + std::to_string(pairs)).c_str(),
        [pairs](benchmark::State& state) {
          RunJoin(state, WaterQuadtree(), RoadsQuadtree(), pairs,
                  "quadtree join");
        })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    // The Section 2.2.2 deferred-leaf strategy, motivated by exactly this
    // index family (no leaf bounding rectangles).
    benchmark::RegisterBenchmark(
        ("Index/QuadtreeDeferred/pairs:" + std::to_string(pairs)).c_str(),
        [pairs](benchmark::State& state) {
          RunJoin(state, WaterQuadtree(), RoadsQuadtree(), pairs,
                  "quadtree join (deferred leaf)",
                  NodeProcessingPolicy::kDeferredLeaf);
        })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark(
      "Index/RStar/semijoin", [](benchmark::State& state) {
        RunSemi(state, WaterTree(), RoadsTree(), "R*-tree semi-join");
      })
      ->Iterations(1)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "Index/Quadtree/semijoin", [](benchmark::State& state) {
        RunSemi(state, WaterQuadtree(), RoadsQuadtree(), "quadtree semi-join");
      })
      ->Iterations(1)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond);
}

}  // namespace
}  // namespace sdj::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  sdj::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sdj::bench::PrintTable(
      "Index structures: R*-tree vs. bucket PR quadtree (same join engine)");
  return 0;
}
