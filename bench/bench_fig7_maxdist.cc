// Reproduces Figure 7: the effect of a maximum distance and of
// maximum-distance *estimation* from a pair budget (Section 2.2.4) on the
// distance join.
//
//   Regular        — the Even/DepthFirst join, no bounds
//   MaxDist @k     — max distance set to the (measured) distance of result
//                    pair #k, for k = 1,000 / 10,000 / 100,000
//   MaxPair K      — D_max estimated from a STOP AFTER budget of K = 100 /
//                    10,000 pairs
//
// Paper shape: any MaxDist helps substantially and the three settings are
// close to one another; MaxPair 100 rivals MaxDist, MaxPair 10,000 helps
// less (looser estimate + estimation overhead).
#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.h"
#include "core/distance_join.h"

namespace sdj::bench {
namespace {

void RunConfig(benchmark::State& state, const std::string& series,
               const DistanceJoinOptions& options, uint64_t pairs) {
  for (auto _ : state) {
    ColdCaches();
    WallTimer timer;
    DistanceJoin<2> join(WaterTree(), RoadsTree(), options);
    JoinResult<2> result;
    uint64_t produced = 0;
    while (produced < pairs && join.Next(&result)) ++produced;
    const double seconds = timer.Seconds();
    state.SetIterationTime(seconds);
    state.counters["queue_size"] =
        static_cast<double>(join.stats().max_queue_size);
    AddRow({series, produced, seconds, join.stats(), ""});
  }
}

void Register(const std::string& series, const DistanceJoinOptions& options,
              uint64_t pairs) {
  benchmark::RegisterBenchmark(
      ("Fig7/" + series + "/pairs:" + std::to_string(pairs)).c_str(),
      [series, options, pairs](benchmark::State& state) {
        RunConfig(state, series, options, pairs);
      })
      ->Iterations(1)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond);
}

void RegisterAll() {
  const uint64_t ks[] = {1, 10, 100, 1000, 10000, 100000};
  // Regular.
  for (uint64_t k : ks) {
    Register("Regular", DistanceJoinOptions{}, ScaledPairs(k));
  }
  // MaxDist @ pair #1,000 / #10,000 / #100,000 (only up to that many pairs).
  for (uint64_t cutoff : {1000ull, 10000ull, 100000ull}) {
    DistanceJoinOptions options;
    options.max_distance = JoinDistanceAt(ScaledPairs(cutoff));
    const std::string series = "MaxDist@" + std::to_string(cutoff);
    for (uint64_t k : ks) {
      if (k > cutoff) continue;
      Register(series, options, ScaledPairs(k));
    }
  }
  // MaxPair 100 / 10,000: estimation from the budget.
  for (uint64_t budget : {100ull, 10000ull}) {
    DistanceJoinOptions options;
    options.max_pairs = ScaledPairs(budget);
    options.estimate_max_distance = true;
    const std::string series = "MaxPair" + std::to_string(budget);
    for (uint64_t k : ks) {
      if (k > budget) continue;
      Register(series, options, ScaledPairs(k));
    }
  }
}

}  // namespace
}  // namespace sdj::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  sdj::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sdj::bench::PrintTable(
      "Figure 7: maximum distance and maximum pairs (distance join)");
  return 0;
}
