// Microbenchmark for the batched distance kernels (geometry/rect_batch.h)
// across every SIMD dispatch path the host supports (DESIGN.md §15).
//
// One row per kernel x ISA, series "MinDist/avx2" etc. The workload is a
// fixed structure-of-arrays batch of 4096 rectangles swept against one
// query rectangle, repeated; `pairs` counts lanes evaluated (reps x lanes),
// so the compare_bench.py row key is deterministic for a given
// SDJ_BENCH_SCALE. Kernels do no I/O, so node_io is 0 and only the
// pairs/sec gate applies. The per-ISA rows only exist for ISAs the host
// supports; the kernel_isa stamp in BENCH_kernels.json makes
// compare_bench.py refuse cross-host comparisons that would mix dispatch
// tiers.
//
// After the table, a summary prints each kernel's best-ISA speedup over the
// scalar path — the headline number for the SIMD tentpole (the acceptance
// bar is >= 1.5x on MinDist with an AVX2-or-wider path available).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "geometry/code_screen.h"
#include "geometry/rect_batch.h"
#include "geometry/simd.h"
#include "rtree/node_layout.h"

namespace sdj::bench {
namespace {

constexpr size_t kLanes = 4096;
constexpr uint64_t kFullReps = 20000;  // scaled by SDJ_BENCH_SCALE

// Deterministic rects: splitmix64 so the workload is identical across
// machines and runs (no std::mt19937 distribution variance).
uint64_t SplitMix(uint64_t* s) {
  uint64_t z = (*s += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double UnitDouble(uint64_t* s) {
  return static_cast<double>(SplitMix(s) >> 11) * 0x1.0p-53;
}

const RectBatch<2>& Batch() {
  static const RectBatch<2>* batch = [] {
    auto* b = new RectBatch<2>;
    b->reserve(kLanes);
    uint64_t seed = 42;
    for (size_t i = 0; i < kLanes; ++i) {
      Rect<2> r;
      for (int d = 0; d < 2; ++d) {
        const double lo = UnitDouble(&seed) * 1000.0;
        r.lo[d] = lo;
        r.hi[d] = lo + UnitDouble(&seed) * 10.0;
      }
      b->push_back(r);
    }
    return b;
  }();
  return *batch;
}

// Synthetic quantized page for the screening rows (DESIGN.md §17): the same
// 4096 rects as Batch(), encoded on one node grid, plus a prepared query
// whose cutoff leaves a realistic minority of survivors. ScreenNode runs the
// integer screen over the raw codes; DecodeMinDist is the work it replaces —
// decode every entry to f64 and run the exact MinDist kernel.
struct ScreenWorkload {
  using QL = rtree_internal::QuantizedNodeLayout<2>;
  QL::Grid grid;
  std::vector<uint16_t> codes;  // kLanes entries x [lo0 lo1 hi0 hi1]
  Rect<2> query;
  double max_distance = 0.0;
  code_screen::ScreenQuery<2> screen;
  size_t survivors = 0;
};

const ScreenWorkload& ScreenCase() {
  static const ScreenWorkload* workload = [] {
    auto* w = new ScreenWorkload;
    double lo[2] = {0.0, 0.0};
    double hi[2] = {1010.0, 1010.0};
    w->grid = ScreenWorkload::QL::MakeGrid(lo, hi);
    w->codes.resize(kLanes * 4);
    uint64_t seed = 42;  // identical rect population to Batch()
    for (size_t i = 0; i < kLanes; ++i) {
      for (int d = 0; d < 2; ++d) {
        const double rlo = UnitDouble(&seed) * 1000.0;
        const double rhi = rlo + UnitDouble(&seed) * 10.0;
        w->codes[i * 4 + d] = ScreenWorkload::QL::EncodeLo(w->grid, d, rlo);
        w->codes[i * 4 + 2 + d] = ScreenWorkload::QL::EncodeHi(w->grid, d, rhi);
      }
    }
    w->query = Rect<2>{{450.0, 450.0}, {520.0, 560.0}};
    w->max_distance = 65.0;  // ~5-10% of the uniform page survives
    code_screen::Prepare<2>(w->grid.base, w->grid.scale, w->query,
                            w->max_distance, &w->screen);
    std::vector<uint8_t> pruned(kLanes);
    code_screen::ScreenCodesBatch<2>(w->screen, w->codes.data(), kLanes,
                                     pruned.data(), simd::Isa::kScalar);
    for (uint8_t p : pruned) w->survivors += p == 0 ? 1 : 0;
    return w;
  }();
  return *workload;
}

uint64_t Reps() {
  const auto reps = static_cast<uint64_t>(static_cast<double>(kFullReps) *
                                          Scale());
  return reps > 0 ? reps : 1;
}

// seconds per (kernel, isa) series, for the post-table speedup summary.
std::map<std::string, std::map<simd::Isa, double>>& Timings() {
  static auto* t = new std::map<std::string, std::map<simd::Isa, double>>;
  return *t;
}

template <typename Kernel>
void RunKernel(benchmark::State& state, const std::string& name,
               simd::Isa isa, Kernel kernel) {
  const RectBatch<2>& batch = Batch();
  const Rect<2> query{{450.0, 450.0}, {520.0, 560.0}};
  std::vector<double> out(batch.size());
  const uint64_t reps = Reps();
  kernel(batch, query, out.data(), isa);  // warm up: page in, clear dispatch
  for (auto _ : state) {
    WallTimer timer;
    for (uint64_t r = 0; r < reps; ++r) {
      kernel(batch, query, out.data(), isa);
      benchmark::DoNotOptimize(out.data());
      benchmark::ClobberMemory();
    }
    const double seconds = timer.Seconds();
    state.SetIterationTime(seconds);
    const uint64_t lanes = reps * batch.size();
    char note[96];
    std::snprintf(note, sizeof(note), "%.3g lanes/sec",
                  seconds > 0.0 ? static_cast<double>(lanes) / seconds : 0.0);
    Timings()[name][isa] = seconds;
    AddRow({name + "/" + simd::IsaName(isa), lanes, seconds, JoinStats{},
            note});
  }
}

// One timing loop shared by the two screening-related series; `body` runs
// the per-rep work over the whole synthetic page.
template <typename Body>
void RunScreenSeries(benchmark::State& state, const std::string& name,
                     simd::Isa isa, const std::string& note_suffix,
                     Body body) {
  const uint64_t reps = Reps();
  body();  // warm up
  for (auto _ : state) {
    WallTimer timer;
    for (uint64_t r = 0; r < reps; ++r) {
      body();
      benchmark::ClobberMemory();
    }
    const double seconds = timer.Seconds();
    state.SetIterationTime(seconds);
    const uint64_t lanes = reps * kLanes;
    char note[96];
    std::snprintf(note, sizeof(note), "%.3g entries/sec%s",
                  seconds > 0.0 ? static_cast<double>(lanes) / seconds : 0.0,
                  note_suffix.c_str());
    Timings()[name][isa] = seconds;
    AddRow({name + "/" + simd::IsaName(isa), lanes, seconds, JoinStats{},
            note});
  }
}

void RegisterScreening() {
  for (simd::Isa isa : simd::SupportedIsas()) {
    benchmark::RegisterBenchmark(
        (std::string("Kernels/ScreenNode/") + simd::IsaName(isa)).c_str(),
        [isa](benchmark::State& state) {
          const ScreenWorkload& w = ScreenCase();
          static std::vector<uint8_t> pruned(kLanes);
          char suffix[48];
          std::snprintf(suffix, sizeof(suffix), ", %.1f%% survive",
                        100.0 * static_cast<double>(w.survivors) / kLanes);
          RunScreenSeries(state, "ScreenNode", isa, suffix, [&] {
            code_screen::ScreenCodesBatch<2>(w.screen, w.codes.data(), kLanes,
                                             pruned.data(), isa);
            benchmark::DoNotOptimize(pruned.data());
          });
        })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (std::string("Kernels/DecodeMinDist/") + simd::IsaName(isa)).c_str(),
        [isa](benchmark::State& state) {
          const ScreenWorkload& w = ScreenCase();
          static RectBatch<2> decoded;
          static std::vector<double> out(kLanes);
          decoded.resize(kLanes);
          RunScreenSeries(state, "DecodeMinDist", isa, "", [&] {
            // What an unscreened visit pays per entry: decode the four codes
            // to f64 coordinates, then the exact distance kernel.
            for (size_t i = 0; i < kLanes; ++i) {
              Rect<2> r;
              for (int d = 0; d < 2; ++d) {
                r.lo[d] = ScreenWorkload::QL::Decode(w.grid, d,
                                                     w.codes[i * 4 + d]);
                r.hi[d] = ScreenWorkload::QL::Decode(w.grid, d,
                                                     w.codes[i * 4 + 2 + d]);
              }
              decoded.set(i, r);
            }
            MinDistBatch(decoded, w.query, Metric::kEuclidean, out.data(), 0,
                         kLanes, isa);
            benchmark::DoNotOptimize(out.data());
          });
        })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
}

void RegisterAll() {
  struct NamedKernel {
    const char* name;
    void (*fn)(const RectBatch<2>&, const Rect<2>&, double*, simd::Isa);
  };
  // All five rect-vs-rect kernels the join engines call; the asymmetric
  // bound kernels run with batch_is_first=false, matching SemiDmaxBatch.
  static constexpr NamedKernel kKernels[] = {
      {"MinDist",
       [](const RectBatch<2>& b, const Rect<2>& q, double* out,
          simd::Isa isa) {
         MinDistBatch(b, q, Metric::kEuclidean, out, 0, b.size(), isa);
       }},
      {"MaxDist",
       [](const RectBatch<2>& b, const Rect<2>& q, double* out,
          simd::Isa isa) {
         MaxDistBatch(b, q, Metric::kEuclidean, out, 0, b.size(), isa);
       }},
      {"MinMaxDist",
       [](const RectBatch<2>& b, const Rect<2>& q, double* out,
          simd::Isa isa) {
         MinMaxDistBatch(b, q, Metric::kEuclidean, out, 0, b.size(), isa);
       }},
      {"MaxMinDist",
       [](const RectBatch<2>& b, const Rect<2>& q, double* out,
          simd::Isa isa) {
         MaxMinDistBatch(b, q, Metric::kEuclidean, /*batch_is_first=*/false,
                         out, 0, b.size(), isa);
       }},
      {"MaxMinMaxDist",
       [](const RectBatch<2>& b, const Rect<2>& q, double* out,
          simd::Isa isa) {
         MaxMinMaxDistBatch(b, q, Metric::kEuclidean,
                            /*batch_is_first=*/false, out, 0, b.size(), isa);
       }},
  };
  for (const NamedKernel& k : kKernels) {
    for (simd::Isa isa : simd::SupportedIsas()) {
      benchmark::RegisterBenchmark(
          (std::string("Kernels/") + k.name + "/" + simd::IsaName(isa))
              .c_str(),
          [&k, isa](benchmark::State& state) {
            RunKernel(state, k.name, isa, k.fn);
          })
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
  RegisterScreening();
}

void PrintSpeedups() {
  std::printf("\nSIMD speedup vs scalar (same workload, bit-identical "
              "output):\n");
  for (const auto& [name, by_isa] : Timings()) {
    const auto scalar = by_isa.find(simd::Isa::kScalar);
    if (scalar == by_isa.end() || scalar->second <= 0.0) continue;
    simd::Isa best = simd::Isa::kScalar;
    double best_s = scalar->second;
    for (const auto& [isa, seconds] : by_isa) {
      if (seconds > 0.0 && seconds < best_s) {
        best = isa;
        best_s = seconds;
      }
    }
    std::printf("  %-14s best %s: %.2fx over scalar\n", name.c_str(),
                simd::IsaName(best), scalar->second / best_s);
  }
  // The screening headline (DESIGN.md §17): per ISA, how much cheaper the
  // integer screen makes a node visit than decoding everything and running
  // the exact kernel (the acceptance bar is >= 1.5x on AVX2 or wider).
  const auto screen = Timings().find("ScreenNode");
  const auto decode = Timings().find("DecodeMinDist");
  if (screen == Timings().end() || decode == Timings().end()) return;
  std::printf("\nInteger screening vs decode-then-MinDist (%zu-entry page, "
              "%.1f%% survivors):\n",
              kLanes,
              100.0 * static_cast<double>(ScreenCase().survivors) / kLanes);
  for (const auto& [isa, seconds] : screen->second) {
    const auto base = decode->second.find(isa);
    if (base == decode->second.end() || seconds <= 0.0) continue;
    std::printf("  %-8s %.2fx\n", simd::IsaName(isa), base->second / seconds);
  }
}

}  // namespace
}  // namespace sdj::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  sdj::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sdj::bench::PrintTable("Batched distance kernels by SIMD dispatch path");
  sdj::bench::PrintSpeedups();
  return 0;
}
