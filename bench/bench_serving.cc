// Multi-session serving benchmark (DESIGN.md §14): one SessionManager
// multiplexes four concurrent incremental traversals — two distance joins
// (Euclidean + Manhattan), a semi-join, and a within-distance join — over
// the shared Water/Roads trees, driven round-robin in fixed result batches.
//
// Four scenarios bracket the serving cost space:
//   NoPressure    — budget never binds: pure multiplexing overhead.
//   Sliced        — 100us deadline slices; yields are part of the request
//                   latency distribution, the pair streams are unchanged.
//   EvictPressure — a budget far below the working set forces a
//                   checkpoint-evict of every cold session each turn and a
//                   rehydrate (engine rebuild + snapshot restore) whenever
//                   the rotation returns.
//   EvictFaults   — the same churn with deterministic transient faults on
//                   every snapshot store; page-level retries and the
//                   cursor's bounded commit retry absorb them.
//
// Each Next() is timed as one serve_slice sample, so the JSON row's metrics
// block carries the request-latency distribution (p50/p99) that
// scripts/compare_bench.py gates with --p99-op=serve_slice.
#include <benchmark/benchmark.h>
#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/distance_join.h"
#include "core/semi_join.h"
#include "core/within_join.h"
#include "obs/metrics.h"
#include "serve/erased_engine.h"
#include "serve/session_manager.h"
#include "util/stop_token.h"

namespace sdj::bench {
namespace {

constexpr char kStateDir[] = "bench_serving.state";

void ResetStateDir() {
  ::mkdir(kStateDir, 0755);  // may already exist
  std::remove((std::string(kStateDir) + "/sessions.tbl").c_str());
  for (int i = 1; i <= 8; ++i) {
    std::remove((std::string(kStateDir) + "/session_" + std::to_string(i) +
                 ".snap")
                    .c_str());
  }
}

serve::SessionManager<2>::EngineFactory JoinFactory(Metric metric) {
  return [metric](util::StopToken token)
             -> std::unique_ptr<serve::ErasedEngine<2>> {
    DistanceJoinOptions options;
    options.metric = metric;
    options.stop_token = std::move(token);
    return serve::Erase<2>(std::make_unique<DistanceJoin<2>>(
        WaterTree(), RoadsTree(), options));
  };
}

serve::SessionManager<2>::EngineFactory SemiFactory() {
  return [](util::StopToken token)
             -> std::unique_ptr<serve::ErasedEngine<2>> {
    SemiJoinOptions options;
    options.join.stop_token = std::move(token);
    return serve::Erase<2>(std::make_unique<DistanceSemiJoin<2>>(
        WaterTree(), RoadsTree(), options));
  };
}

serve::SessionManager<2>::EngineFactory WithinFactory(double epsilon) {
  return [epsilon](util::StopToken token)
             -> std::unique_ptr<serve::ErasedEngine<2>> {
    WithinJoinOptions options;
    options.epsilon = epsilon;
    options.stop_token = std::move(token);
    return serve::Erase<2>(std::make_unique<IncWithinJoin<2>>(
        WaterTree(), RoadsTree(), options));
  };
}

void AddStats(JoinStats* total, const JoinStats& s) {
  total->pairs_reported += s.pairs_reported;
  total->object_distance_calcs += s.object_distance_calcs;
  total->total_distance_calcs += s.total_distance_calcs;
  total->queue_pushes += s.queue_pushes;
  total->queue_pops += s.queue_pops;
  total->max_queue_size += s.max_queue_size;
  total->node_io += s.node_io;
  total->node_accesses += s.node_accesses;
  total->nodes_expanded += s.nodes_expanded;
  total->pruned_by_range += s.pruned_by_range;
  total->pruned_by_estimate += s.pruned_by_estimate;
  total->pruned_by_bound += s.pruned_by_bound;
  total->pruned_by_filter += s.pruned_by_filter;
  total->filtered_reported += s.filtered_reported;
  total->restarts += s.restarts;
  total->io_retries += s.io_retries;
  total->checksum_failures += s.checksum_failures;
  total->spill_fallbacks += s.spill_fallbacks;
  total->batch_kernel_invocations += s.batch_kernel_invocations;
  total->parallel_expansions += s.parallel_expansions;
}

struct Scenario {
  std::string series;
  uint64_t budget = std::numeric_limits<uint64_t>::max();
  std::chrono::microseconds slice{0};
  bool faults = false;
};

// Admits the four-session mix and drives it round-robin to each session's
// pull cap (the "client hangs up" point) or exhaustion, whichever is first.
void RunServing(benchmark::State& state, const Scenario& scenario) {
  // Caps are clamped (unlike the pure-join benches) because the pressure
  // scenarios pay a queue-sized checkpoint+restore per rotation; the turn
  // size tracks the cap so the rotation count — and hence the evict/
  // rehydrate cycle count — stays ~constant across SDJ_BENCH_SCALE.
  const uint64_t join_cap = std::min<uint64_t>(ScaledPairs(20000), 1000);
  const uint64_t semi_cap = std::min<uint64_t>(ScaledSemiPairs(1500), 1000);
  const uint64_t turn = std::max<uint64_t>(8, join_cap / 8);
  const double epsilon = JoinDistanceAt(join_cap);
  for (auto _ : state) {
    ColdCaches();
    ResetStateDir();
    obs::Metrics metrics;  // outlives the manager (see ServeOptions::metrics)
    serve::ServeOptions options;
    options.state_dir = kStateDir;
    options.memory_budget_entries = scenario.budget;
    options.slice = scenario.slice;
    if (scenario.faults) {
      storage::FaultInjectionOptions faults;
      faults.seed = 20260808;
      faults.transient_write_period = 5;
      faults.transient_read_period = 7;
      options.fault_injection = faults;
    }
    options.metrics = MetricsEnabled() ? &metrics : nullptr;
    serve::SessionManager<2> manager(options);

    struct Client {
      serve::SessionManager<2>::SessionId id = 0;
      uint64_t cap = 0;
      uint64_t produced = 0;
      bool done = false;
    };
    std::vector<Client> clients;
    const std::pair<std::string, serve::SessionManager<2>::EngineFactory>
        mix[] = {{"join-euclid", JoinFactory(Metric::kEuclidean)},
                 {"join-manhattan", JoinFactory(Metric::kManhattan)},
                 {"semi", SemiFactory()},
                 {"within", WithinFactory(epsilon)}};
    WallTimer timer;
    for (const auto& [tag, factory] : mix) {
      const auto admit = manager.Admit(tag, factory);
      SDJ_CHECK(admit.status == serve::ServeStatus::kOk);
      clients.push_back({admit.id, tag == "semi" ? semi_cap : join_cap});
    }
    uint64_t io_errors = 0;
    bool active = true;
    while (active) {
      active = false;
      for (Client& client : clients) {
        if (client.done) continue;
        active = true;
        for (uint64_t i = 0; i < turn && !client.done; ++i) {
          JoinResult<2> result;
          switch (manager.Next(client.id, &result)) {
            case serve::ServeStatus::kOk:
              if (++client.produced >= client.cap) {
                manager.Close(client.id);
                client.done = true;
              }
              break;
            case serve::ServeStatus::kYield:
              i = turn;  // slice expired: rotate to the next session
              break;
            case serve::ServeStatus::kExhausted:
              client.done = true;
              break;
            default:
              ++io_errors;
              client.done = true;
              break;
          }
        }
      }
    }
    const double seconds = timer.Seconds();
    state.SetIterationTime(seconds);

    uint64_t pairs = 0;
    JoinStats total;
    for (const Client& client : clients) {
      pairs += client.produced;
      AddStats(&total, manager.session_stats(client.id));
    }
    total.pairs_reported = pairs;  // session caps, not engine counters
    const serve::ServeStats& ss = manager.stats();
    state.counters["evictions"] = static_cast<double>(ss.evictions);
    state.counters["rehydrations"] = static_cast<double>(ss.rehydrations);
    state.counters["io_errors"] = static_cast<double>(io_errors);
    const obs::HistogramSummary slice_latency =
        metrics.Summary().of(obs::Op::kServeSlice);
    char note[160];
    std::snprintf(note, sizeof(note),
                  "evict=%llu rehyd=%llu pinned=%llu p99=%.0fus",
                  static_cast<unsigned long long>(ss.evictions),
                  static_cast<unsigned long long>(ss.rehydrations),
                  static_cast<unsigned long long>(ss.pinned_sessions),
                  static_cast<double>(slice_latency.p99_ns) * 1e-3);
    Row row{scenario.series, pairs, seconds, total, note, 1};
    row.metrics = metrics.Summary();
    AddRow(row);
  }
  ResetStateDir();
}

void RegisterAll() {
  const std::vector<Scenario> scenarios = {
      {"NoPressure"},
      {"Sliced", std::numeric_limits<uint64_t>::max(),
       std::chrono::microseconds(100)},
      // Far below any session's working queue: every rotation rehydrates
      // the incoming session and checkpoint-evicts the rest.
      {"EvictPressure", 512},
      {"EvictFaults", 512, std::chrono::microseconds(0), true},
  };
  for (const Scenario& scenario : scenarios) {
    benchmark::RegisterBenchmark(
        ("Serving/" + scenario.series).c_str(),
        [scenario](benchmark::State& state) { RunServing(state, scenario); })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace sdj::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  sdj::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sdj::bench::PrintTable(
      "Multi-session serving: admission, slicing, evict-resume, Water x Roads");
  return 0;
}
