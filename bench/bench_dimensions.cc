// Dimensionality sweep — the paper's closing future-work question ("how
// appropriate our approach is ... for higher dimensions"). Runs the default
// incremental join to 10,000 pairs over uniform data embedded in 2-D, 3-D,
// and 4-D, with node capacities shrinking as entries widen.
//
// Expected shape: queue sizes and distance calculations grow with dimension
// as MINDIST pruning loses discriminating power (the curse of
// dimensionality), while the algorithm remains correct throughout — the
// templates are dimension-generic.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.h"
#include "core/distance_join.h"
#include "rtree/rtree.h"
#include "util/rng.h"

namespace sdj::bench {
namespace {

template <int Dim>
RTree<Dim> BuildUniformTree(size_t n, uint64_t seed) {
  Rng rng(seed);
  RTree<Dim> tree;
  std::vector<typename RTree<Dim>::Entry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Point<Dim> p;
    for (int d = 0; d < Dim; ++d) p[d] = rng.Uniform(0.0, 1000.0);
    entries.push_back({Rect<Dim>::FromPoint(p), i});
  }
  tree.BulkLoad(std::move(entries));
  return tree;
}

template <int Dim>
void RunDim(benchmark::State& state) {
  static RTree<Dim>* t1 = new RTree<Dim>(BuildUniformTree<Dim>(20000, 91));
  static RTree<Dim>* t2 = new RTree<Dim>(BuildUniformTree<Dim>(20000, 92));
  for (auto _ : state) {
    WallTimer timer;
    DistanceJoinOptions options;
    DistanceJoin<Dim> join(*t1, *t2, options);
    JoinResult<Dim> pair;
    uint64_t produced = 0;
    while (produced < 10000 && join.Next(&pair)) ++produced;
    const double seconds = timer.Seconds();
    state.SetIterationTime(seconds);
    state.counters["queue_size"] =
        static_cast<double>(join.stats().max_queue_size);
    state.counters["fan_out"] = t1->max_entries();
    AddRow({"Dim=" + std::to_string(Dim), produced, seconds, join.stats(),
            "fan-out " + std::to_string(t1->max_entries())});
  }
}

void RegisterAll() {
  benchmark::RegisterBenchmark("Dimensions/2D", RunDim<2>)
      ->Iterations(1)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Dimensions/3D", RunDim<3>)
      ->Iterations(1)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Dimensions/4D", RunDim<4>)
      ->Iterations(1)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond);
}

}  // namespace
}  // namespace sdj::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  sdj::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sdj::bench::PrintTable("Dimensionality sweep (future work, Section 5)");
  return 0;
}
