// Reproduces the Section 4.1.4 comparison: nested-loop distance join vs. the
// incremental algorithm.
//
// The paper's nested-loop scan (distances only, inner relation in memory)
// took over 3.5 hours on the full 7.5 billion pair product, while the
// incremental join produced 100,000 pairs in seconds. Here the nested loop
// runs on a subsample and is extrapolated to the full product; the
// incremental join runs for real at 1,000 / 100,000 pairs — the reproduction
// target is the orders-of-magnitude gap.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "baseline/nested_loop_join.h"
#include "bench_common.h"
#include "core/distance_join.h"

namespace sdj::bench {
namespace {

std::vector<RTree<2>::Entry> Sample(const std::vector<Point<2>>& points,
                                    size_t limit) {
  std::vector<RTree<2>::Entry> entries;
  const size_t n = std::min(points.size(), limit);
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    entries.push_back({Rect<2>::FromPoint(points[i]), i});
  }
  return entries;
}

void RunNestedLoopScan(benchmark::State& state) {
  const size_t sample = 5000;
  baseline::NestedLoopDistanceJoin<2> nested(Sample(WaterPoints(), sample),
                                             Sample(RoadsPoints(), sample));
  double extrapolated = 0.0;
  for (auto _ : state) {
    WallTimer timer;
    benchmark::DoNotOptimize(nested.ScanAllDistances());
    const double seconds = timer.Seconds();
    state.SetIterationTime(seconds);
    const double sampled_pairs =
        static_cast<double>(std::min(WaterPoints().size(), sample)) *
        static_cast<double>(std::min(RoadsPoints().size(), sample));
    const double full_pairs = static_cast<double>(WaterPoints().size()) *
                              static_cast<double>(RoadsPoints().size());
    extrapolated = seconds * full_pairs / sampled_pairs;
    state.counters["extrapolated_s"] = extrapolated;
    JoinStats stats;
    stats.object_distance_calcs = nested.distance_calcs();
    AddRow({"NestedLoop(sampled scan)", static_cast<uint64_t>(sampled_pairs),
            seconds, stats,
            "extrapolated full product: " + std::to_string(extrapolated) +
                " s"});
  }
}

void RunNestedLoopTopK(benchmark::State& state, uint64_t k) {
  // The fair STOP AFTER K comparison: bounded heap over the sampled product.
  const size_t sample = 5000;
  baseline::NestedLoopDistanceJoin<2> nested(Sample(WaterPoints(), sample),
                                             Sample(RoadsPoints(), sample));
  for (auto _ : state) {
    WallTimer timer;
    benchmark::DoNotOptimize(nested.TopK(k));
    const double seconds = timer.Seconds();
    state.SetIterationTime(seconds);
    JoinStats stats;
    stats.object_distance_calcs = nested.distance_calcs();
    AddRow({"NestedLoop TopK (sampled)", k, seconds, stats,
            "on 5k x 5k subsample"});
  }
}

void RunIncremental(benchmark::State& state, uint64_t pairs) {
  for (auto _ : state) {
    ColdCaches();
    WallTimer timer;
    DistanceJoinOptions options;
    DistanceJoin<2> join(WaterTree(), RoadsTree(), options);
    JoinResult<2> result;
    uint64_t produced = 0;
    while (produced < pairs && join.Next(&result)) ++produced;
    const double seconds = timer.Seconds();
    state.SetIterationTime(seconds);
    AddRow({"Incremental", produced, seconds, join.stats(), "full datasets"});
  }
}

void RegisterAll() {
  benchmark::RegisterBenchmark("Alt/NestedLoopScan", RunNestedLoopScan)
      ->Iterations(1)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond);
  for (uint64_t k : {1000ull, 100000ull}) {
    benchmark::RegisterBenchmark(
        ("Alt/NestedLoopTopK/k:" + std::to_string(k)).c_str(),
        [k](benchmark::State& state) { RunNestedLoopTopK(state, k); })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    const uint64_t pairs = ScaledPairs(k);
    benchmark::RegisterBenchmark(
        ("Alt/Incremental/pairs:" + std::to_string(pairs)).c_str(),
        [pairs](benchmark::State& state) { RunIncremental(state, pairs); })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace sdj::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  sdj::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sdj::bench::PrintTable(
      "Section 4.1.4: nested-loop alternative vs. incremental distance join");
  return 0;
}
