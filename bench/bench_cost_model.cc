// Validates the analytical cost model (core/cost_model.h, the Section 5
// future-work item) against measured joins: predicted vs. actual result
// counts and node-pair expansions, on uniform data (the model's assumption)
// and on the clustered evaluation datasets (its stress case).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.h"
#include "core/cost_model.h"
#include "core/distance_join.h"
#include "data/generators.h"

namespace sdj::bench {
namespace {

void RunValidation(benchmark::State& state, const RTree<2>& t1,
                   const RTree<2>& t2, double dmax, const std::string& label) {
  for (auto _ : state) {
    const auto estimate = EstimateDistanceJoinCost(t1, t2, dmax);
    WallTimer timer;
    DistanceJoinOptions options;
    options.max_distance = dmax;
    DistanceJoin<2> join(t1, t2, options);
    JoinResult<2> pair;
    uint64_t actual_results = 0;
    while (join.Next(&pair)) ++actual_results;
    const double seconds = timer.Seconds();
    state.SetIterationTime(seconds);
    const double actual_visits =
        static_cast<double>(join.stats().nodes_expanded);
    state.counters["pred_results"] = estimate.expected_result_pairs;
    state.counters["act_results"] = static_cast<double>(actual_results);
    state.counters["pred_visits"] = estimate.expected_node_pair_visits;
    state.counters["act_visits"] = actual_visits;
    char note[160];
    std::snprintf(note, sizeof(note),
                  "results pred/act %.2g/%llu (x%.2f), visits pred/act "
                  "%.2g/%.0f (x%.2f)",
                  estimate.expected_result_pairs,
                  static_cast<unsigned long long>(actual_results),
                  actual_results > 0
                      ? estimate.expected_result_pairs / actual_results
                      : 0.0,
                  estimate.expected_node_pair_visits, actual_visits,
                  actual_visits > 0
                      ? estimate.expected_node_pair_visits / actual_visits
                      : 0.0);
    AddRow({label, actual_results, seconds, join.stats(), note});
  }
}

void RegisterAll() {
  // Uniform instance (model assumption holds).
  static const Rect<2> extent({0, 0}, {100000, 100000});
  static RTree<2>* ua = nullptr;
  static RTree<2>* ub = nullptr;
  const auto build = [](uint64_t seed) {
    auto* tree = new RTree<2>;
    const auto pts = data::GenerateUniform(20000, extent, seed);
    std::vector<RTree<2>::Entry> entries;
    for (size_t i = 0; i < pts.size(); ++i) {
      entries.push_back({Rect<2>::FromPoint(pts[i]), i});
    }
    tree->BulkLoad(std::move(entries));
    return tree;
  };
  ua = build(71);
  ub = build(72);
  for (double dmax : {50.0, 200.0, 800.0}) {
    benchmark::RegisterBenchmark(
        ("CostModel/Uniform/dmax:" + std::to_string(static_cast<int>(dmax)))
            .c_str(),
        [dmax](benchmark::State& state) {
          RunValidation(state, *ua, *ub, dmax,
                        "Uniform dmax=" + std::to_string(dmax));
        })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
  // Clustered evaluation datasets (assumption violated; degradation shown).
  for (uint64_t anchor : {1000ull, 100000ull}) {
    const double dmax = JoinDistanceAt(ScaledPairs(anchor));
    benchmark::RegisterBenchmark(
        ("CostModel/WaterRoads/at:" + std::to_string(anchor)).c_str(),
        [dmax, anchor](benchmark::State& state) {
          RunValidation(state, WaterTree(), RoadsTree(), dmax,
                        "Water x Roads @" + std::to_string(anchor));
        })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace sdj::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  sdj::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sdj::bench::PrintTable("Cost model validation (Section 5 future work)");
  return 0;
}
