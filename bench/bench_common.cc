#include "bench_common.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/distance_join.h"
#include "core/semi_join.h"
#include "data/datasets.h"
#include "geometry/simd.h"
#include "util/check.h"

#ifndef SDJ_GIT_SHA
#define SDJ_GIT_SHA "unknown"
#endif

namespace sdj::bench {

namespace {

RTreeOptions PaperTreeOptions() {
  RTreeOptions options;
  options.page_size = 2048;    // fan-out 51 (paper: 50)
  options.buffer_pages = 128;  // 256K of buffer, as in Section 3.1
  return options;
}

std::unique_ptr<RTree<2>> BuildTree(const std::vector<Point<2>>& points) {
  auto tree = std::make_unique<RTree<2>>(PaperTreeOptions());
  for (size_t i = 0; i < points.size(); ++i) {
    tree->Insert(Rect<2>::FromPoint(points[i]), i);
  }
  return tree;
}

std::vector<Row>& Rows() {
  static std::vector<Row>* rows = new std::vector<Row>;
  return *rows;
}

// Cached prefix distances of the default join / semi-join.
std::vector<double>& JoinPrefix() {
  static std::vector<double>* prefix = new std::vector<double>;
  return *prefix;
}
std::vector<double>& SemiPrefix() {
  static std::vector<double>* prefix = new std::vector<double>;
  return *prefix;
}

}  // namespace

double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("SDJ_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    // Strict parse: atof's silent 0.0 for garbage (and a NaN passing the
    // range checks below, both being false) must not leak into dataset
    // sizing — warn and run at full scale instead.
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end == env || *end != '\0' || !(v > 0.0) || v > 1.0) {
      std::fprintf(stderr,
                   "warning: ignoring SDJ_BENCH_SCALE=\"%s\" "
                   "(want a number in (0, 1]); using 1.0\n",
                   env);
      return 1.0;
    }
    return v;
  }();
  return scale;
}

const std::vector<Point<2>>& WaterPoints() {
  static const std::vector<Point<2>>* points =
      new std::vector<Point<2>>(data::MakeWater(Scale()));
  return *points;
}

const std::vector<Point<2>>& RoadsPoints() {
  static const std::vector<Point<2>>* points =
      new std::vector<Point<2>>(data::MakeRoads(Scale()));
  return *points;
}

const RTree<2>& WaterTree() {
  static const RTree<2>* tree = BuildTree(WaterPoints()).release();
  return *tree;
}

const RTree<2>& RoadsTree() {
  static const RTree<2>* tree = BuildTree(RoadsPoints()).release();
  return *tree;
}

uint64_t ScaledPairs(uint64_t k) {
  const double scaled = static_cast<double>(k) * Scale() * Scale();
  return scaled < 1.0 ? 1 : static_cast<uint64_t>(scaled);
}

uint64_t ScaledSemiPairs(uint64_t k) {
  const double scaled = static_cast<double>(k) * Scale();
  const uint64_t v = scaled < 1.0 ? 1 : static_cast<uint64_t>(scaled);
  return std::min<uint64_t>(v, WaterTree().size());
}

double JoinDistanceAt(uint64_t k) {
  SDJ_CHECK(k >= 1);
  std::vector<double>& prefix = JoinPrefix();
  if (prefix.size() < k) {
    prefix.clear();
    DistanceJoinOptions options;
    DistanceJoin<2> join(WaterTree(), RoadsTree(), options);
    JoinResult<2> pair;
    while (prefix.size() < k && join.Next(&pair)) {
      prefix.push_back(pair.distance);
    }
  }
  SDJ_CHECK(prefix.size() >= k);
  return prefix[k - 1];
}

double SemiDistanceAt(uint64_t k) {
  SDJ_CHECK(k >= 1);
  std::vector<double>& prefix = SemiPrefix();
  if (prefix.size() < k) {
    prefix.clear();
    SemiJoinOptions options;
    options.bound = SemiJoinBound::kGlobalAll;
    DistanceSemiJoin<2> semi(WaterTree(), RoadsTree(), options);
    JoinResult<2> pair;
    while (prefix.size() < k && semi.Next(&pair)) {
      prefix.push_back(pair.distance);
    }
  }
  SDJ_CHECK(prefix.size() >= k);
  return prefix[k - 1];
}

void ColdCaches() {
  WaterTree().pool().Invalidate();
  RoadsTree().pool().Invalidate();
}

bool MetricsEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("SDJ_BENCH_METRICS");
    return env == nullptr || std::string(env) != "0";
  }();
  return enabled;
}

void AddRow(const Row& row) { Rows().push_back(row); }

namespace {

// This binary's name with the "bench_" prefix dropped ("table1", ...).
std::string BenchName() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  std::string name = "unknown";
  if (n > 0) {
    buf[n] = '\0';
    name = buf;
    const size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name = name.substr(slash + 1);
  }
  if (name.rfind("bench_", 0) == 0) name = name.substr(6);
  return name;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof(hex), "\\u%04x", c);
      out += hex;
    } else {
      out += c;
    }
  }
  return out;
}

void JsonStat(std::FILE* f, const char* key, uint64_t value, bool last) {
  std::fprintf(f, "        \"%s\": %llu%s\n", key,
               static_cast<unsigned long long>(value), last ? "" : ",");
}

// One per-phase latency object: {"count": N, "total_ms": ..., "p50_us": ...,
// "p95_us": ..., "p99_us": ..., "max_us": ...}. Every Op is emitted (zeros
// when unused) so the schema is fixed for scripts/compare_bench.py.
void JsonMetrics(std::FILE* f, const obs::MetricsSummary& metrics) {
  std::fprintf(f, "      \"metrics\": {\n");
  for (int i = 0; i < obs::kNumOps; ++i) {
    const obs::Op op = static_cast<obs::Op>(i);
    const obs::HistogramSummary& h = metrics.of(op);
    std::fprintf(f,
                 "        \"%s\": {\"count\": %llu, \"total_ms\": %.6f, "
                 "\"p50_us\": %.3f, \"p95_us\": %.3f, \"p99_us\": %.3f, "
                 "\"max_us\": %.3f}%s\n",
                 obs::OpName(op), static_cast<unsigned long long>(h.count),
                 static_cast<double>(h.total_ns) * 1e-6,
                 static_cast<double>(h.p50_ns) * 1e-3,
                 static_cast<double>(h.p95_ns) * 1e-3,
                 static_cast<double>(h.p99_ns) * 1e-3,
                 static_cast<double>(h.max_ns) * 1e-3,
                 i + 1 < obs::kNumOps ? "," : "");
  }
  std::fprintf(f, "      }\n");
}

// Writes every recorded row to BENCH_<name>.json so sweeps over bench
// binaries stay parseable without scraping the stdout table.
void WriteJson(const std::string& title) {
  const std::string path = "BENCH_" + BenchName() + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"%s\",\n", JsonEscape(BenchName()).c_str());
  std::fprintf(f, "  \"title\": \"%s\",\n", JsonEscape(title).c_str());
  std::fprintf(f, "  \"scale\": %.17g,\n", Scale());
  // Provenance stamp: the revision the binary was built from (configure-time
  // `git rev-parse`, bench/CMakeLists.txt) and the machine's thread budget,
  // so archived JSON rows stay comparable across machines and commits.
  std::fprintf(f, "  \"git_sha\": \"%s\",\n", JsonEscape(SDJ_GIT_SHA).c_str());
  // Kernel-ISA stamp: which SIMD tier the host supports and which one the
  // kAuto dispatch actually picked (DESIGN.md §15). compare_bench.py refuses
  // to gate wall-clock across different dispatch choices — the numbers are
  // not comparable.
  std::fprintf(f, "  \"kernel_isa_detected\": \"%s\",\n",
               simd::IsaName(simd::DetectIsa()));
  std::fprintf(f, "  \"kernel_isa\": \"%s\",\n",
               simd::IsaName(simd::Resolve(simd::Isa::kAuto)));
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"water_points\": %zu,\n", WaterPoints().size());
  std::fprintf(f, "  \"roads_points\": %zu,\n", RoadsPoints().size());
  std::fprintf(f, "  \"rows\": [\n");
  const std::vector<Row>& rows = Rows();
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const JoinStats& s = row.stats;
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"series\": \"%s\",\n",
                 JsonEscape(row.series).c_str());
    std::fprintf(f, "      \"note\": \"%s\",\n", JsonEscape(row.note).c_str());
    std::fprintf(f, "      \"threads\": %d,\n", row.threads);
    std::fprintf(f, "      \"shards\": %d,\n", row.shards);
    std::fprintf(f, "      \"pairs\": %llu,\n",
                 static_cast<unsigned long long>(row.pairs));
    std::fprintf(f, "      \"wall_ms\": %.6f,\n", row.seconds * 1e3);
    std::fprintf(f, "      \"node_io\": %llu,\n",
                 static_cast<unsigned long long>(s.node_io));
    // Sharded-run counters (DESIGN.md §18); zero/empty on serial rows.
    std::fprintf(f, "      \"shard_merge_pops\": %llu,\n",
                 static_cast<unsigned long long>(row.shard_merge_pops));
    std::fprintf(f, "      \"shard_expansions\": [");
    for (size_t k = 0; k < row.shard_expansions.size(); ++k) {
      std::fprintf(f, "%s%llu", k == 0 ? "" : ", ",
                   static_cast<unsigned long long>(row.shard_expansions[k]));
    }
    std::fprintf(f, "],\n");
    std::fprintf(f, "      \"stats\": {\n");
    JsonStat(f, "pairs_reported", s.pairs_reported, false);
    JsonStat(f, "object_distance_calcs", s.object_distance_calcs, false);
    JsonStat(f, "total_distance_calcs", s.total_distance_calcs, false);
    JsonStat(f, "queue_pushes", s.queue_pushes, false);
    JsonStat(f, "queue_pops", s.queue_pops, false);
    JsonStat(f, "max_queue_size", s.max_queue_size, false);
    JsonStat(f, "node_io", s.node_io, false);
    JsonStat(f, "node_accesses", s.node_accesses, false);
    JsonStat(f, "nodes_expanded", s.nodes_expanded, false);
    JsonStat(f, "pruned_by_range", s.pruned_by_range, false);
    JsonStat(f, "pruned_by_estimate", s.pruned_by_estimate, false);
    JsonStat(f, "pruned_by_bound", s.pruned_by_bound, false);
    JsonStat(f, "pruned_by_filter", s.pruned_by_filter, false);
    JsonStat(f, "filtered_reported", s.filtered_reported, false);
    JsonStat(f, "restarts", s.restarts, false);
    JsonStat(f, "io_retries", s.io_retries, false);
    JsonStat(f, "checksum_failures", s.checksum_failures, false);
    JsonStat(f, "spill_fallbacks", s.spill_fallbacks, false);
    JsonStat(f, "batch_kernel_invocations", s.batch_kernel_invocations,
             false);
    JsonStat(f, "parallel_expansions", s.parallel_expansions, false);
    JsonStat(f, "screened_candidates", s.screened_candidates, false);
    JsonStat(f, "screen_survivors", s.screen_survivors, true);
    std::fprintf(f, "      },\n");
    JsonMetrics(f, row.metrics);
    std::fprintf(f, "    }%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path.c_str(), rows.size());
}

}  // namespace

void PrintTable(const std::string& title) {
  std::printf("\n=== %s (scale %.3g: |Water|=%zu, |Roads|=%zu) ===\n",
              title.c_str(), Scale(), WaterPoints().size(),
              RoadsPoints().size());
  std::printf("%-34s %10s %4s %4s %9s %13s %13s %10s %14s  %s\n", "series",
              "pairs", "thr", "shd", "time(s)", "dist.calc", "queue size",
              "node I/O", "rtry/cks/spill", "note");
  for (const Row& row : Rows()) {
    char resilience[64];
    std::snprintf(resilience, sizeof(resilience), "%llu/%llu/%llu",
                  static_cast<unsigned long long>(row.stats.io_retries),
                  static_cast<unsigned long long>(row.stats.checksum_failures),
                  static_cast<unsigned long long>(row.stats.spill_fallbacks));
    std::printf("%-34s %10llu %4d %4d %9.3f %13llu %13llu %10llu %14s  %s\n",
                row.series.c_str(),
                static_cast<unsigned long long>(row.pairs), row.threads,
                row.shards, row.seconds,
                static_cast<unsigned long long>(row.stats.object_distance_calcs),
                static_cast<unsigned long long>(row.stats.max_queue_size),
                static_cast<unsigned long long>(row.stats.node_io),
                resilience, row.note.c_str());
  }
  std::fflush(stdout);
  WriteJson(title);
}

WallTimer::WallTimer()
    : start_ns_(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count())) {}

double WallTimer::Seconds() const {
  const uint64_t now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return static_cast<double>(now - start_ns_) * 1e-9;
}

}  // namespace sdj::bench
