#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/distance_join.h"
#include "core/semi_join.h"
#include "data/datasets.h"
#include "util/check.h"

namespace sdj::bench {

namespace {

RTreeOptions PaperTreeOptions() {
  RTreeOptions options;
  options.page_size = 2048;    // fan-out 51 (paper: 50)
  options.buffer_pages = 128;  // 256K of buffer, as in Section 3.1
  return options;
}

std::unique_ptr<RTree<2>> BuildTree(const std::vector<Point<2>>& points) {
  auto tree = std::make_unique<RTree<2>>(PaperTreeOptions());
  for (size_t i = 0; i < points.size(); ++i) {
    tree->Insert(Rect<2>::FromPoint(points[i]), i);
  }
  return tree;
}

std::vector<Row>& Rows() {
  static std::vector<Row>* rows = new std::vector<Row>;
  return *rows;
}

// Cached prefix distances of the default join / semi-join.
std::vector<double>& JoinPrefix() {
  static std::vector<double>* prefix = new std::vector<double>;
  return *prefix;
}
std::vector<double>& SemiPrefix() {
  static std::vector<double>* prefix = new std::vector<double>;
  return *prefix;
}

}  // namespace

double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("SDJ_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    if (v <= 0.0 || v > 1.0) return 1.0;
    return v;
  }();
  return scale;
}

const std::vector<Point<2>>& WaterPoints() {
  static const std::vector<Point<2>>* points =
      new std::vector<Point<2>>(data::MakeWater(Scale()));
  return *points;
}

const std::vector<Point<2>>& RoadsPoints() {
  static const std::vector<Point<2>>* points =
      new std::vector<Point<2>>(data::MakeRoads(Scale()));
  return *points;
}

const RTree<2>& WaterTree() {
  static const RTree<2>* tree = BuildTree(WaterPoints()).release();
  return *tree;
}

const RTree<2>& RoadsTree() {
  static const RTree<2>* tree = BuildTree(RoadsPoints()).release();
  return *tree;
}

uint64_t ScaledPairs(uint64_t k) {
  const double scaled = static_cast<double>(k) * Scale() * Scale();
  return scaled < 1.0 ? 1 : static_cast<uint64_t>(scaled);
}

uint64_t ScaledSemiPairs(uint64_t k) {
  const double scaled = static_cast<double>(k) * Scale();
  const uint64_t v = scaled < 1.0 ? 1 : static_cast<uint64_t>(scaled);
  return std::min<uint64_t>(v, WaterTree().size());
}

double JoinDistanceAt(uint64_t k) {
  SDJ_CHECK(k >= 1);
  std::vector<double>& prefix = JoinPrefix();
  if (prefix.size() < k) {
    prefix.clear();
    DistanceJoinOptions options;
    DistanceJoin<2> join(WaterTree(), RoadsTree(), options);
    JoinResult<2> pair;
    while (prefix.size() < k && join.Next(&pair)) {
      prefix.push_back(pair.distance);
    }
  }
  SDJ_CHECK(prefix.size() >= k);
  return prefix[k - 1];
}

double SemiDistanceAt(uint64_t k) {
  SDJ_CHECK(k >= 1);
  std::vector<double>& prefix = SemiPrefix();
  if (prefix.size() < k) {
    prefix.clear();
    SemiJoinOptions options;
    options.bound = SemiJoinBound::kGlobalAll;
    DistanceSemiJoin<2> semi(WaterTree(), RoadsTree(), options);
    JoinResult<2> pair;
    while (prefix.size() < k && semi.Next(&pair)) {
      prefix.push_back(pair.distance);
    }
  }
  SDJ_CHECK(prefix.size() >= k);
  return prefix[k - 1];
}

void ColdCaches() {
  WaterTree().pool().Invalidate();
  RoadsTree().pool().Invalidate();
}

void AddRow(const Row& row) { Rows().push_back(row); }

void PrintTable(const std::string& title) {
  std::printf("\n=== %s (scale %.3g: |Water|=%zu, |Roads|=%zu) ===\n",
              title.c_str(), Scale(), WaterPoints().size(),
              RoadsPoints().size());
  std::printf("%-34s %10s %9s %13s %13s %10s %14s  %s\n", "series", "pairs",
              "time(s)", "dist.calc", "queue size", "node I/O",
              "rtry/cks/spill", "note");
  for (const Row& row : Rows()) {
    char resilience[64];
    std::snprintf(resilience, sizeof(resilience), "%llu/%llu/%llu",
                  static_cast<unsigned long long>(row.stats.io_retries),
                  static_cast<unsigned long long>(row.stats.checksum_failures),
                  static_cast<unsigned long long>(row.stats.spill_fallbacks));
    std::printf("%-34s %10llu %9.3f %13llu %13llu %10llu %14s  %s\n",
                row.series.c_str(),
                static_cast<unsigned long long>(row.pairs), row.seconds,
                static_cast<unsigned long long>(row.stats.object_distance_calcs),
                static_cast<unsigned long long>(row.stats.max_queue_size),
                static_cast<unsigned long long>(row.stats.node_io),
                resilience, row.note.c_str());
  }
  std::fflush(stdout);
}

WallTimer::WallTimer()
    : start_ns_(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count())) {}

double WallTimer::Seconds() const {
  const uint64_t now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return static_cast<double>(now - start_ns_) * 1e-9;
}

}  // namespace sdj::bench
