// Reproduces Figure 6: execution time of four incremental-join variants vs.
// number of result pairs.
//
//   Even/DepthFirst      — the recommended default
//   Even/BreadthFirst    — shallower node pairs first on ties
//   Basic/DepthFirst     — always expand item 1 of node/node pairs (Figure 3)
//   Simultaneous/DepthFirst — expand both nodes with filter + plane sweep
//
// Paper shape: all four similar up to ~10k pairs, Basic and Simultaneous
// clearly worse (larger queues / more distance calcs) since no maximum
// distance is set; DepthFirst slightly ahead of BreadthFirst only for the
// very first pair.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.h"
#include "core/distance_join.h"

namespace sdj::bench {
namespace {

struct Variant {
  const char* name;
  NodeProcessingPolicy node_policy;
  TieBreakPolicy tie_break;
};

constexpr Variant kVariants[] = {
    {"Even/DepthFirst", NodeProcessingPolicy::kEven,
     TieBreakPolicy::kDepthFirst},
    {"Even/BreadthFirst", NodeProcessingPolicy::kEven,
     TieBreakPolicy::kBreadthFirst},
    {"Basic/DepthFirst", NodeProcessingPolicy::kBasic,
     TieBreakPolicy::kDepthFirst},
    {"Simultaneous/DepthFirst", NodeProcessingPolicy::kSimultaneous,
     TieBreakPolicy::kDepthFirst},
};

void RunVariant(benchmark::State& state, const Variant& variant,
                uint64_t pairs) {
  for (auto _ : state) {
    ColdCaches();
    WallTimer timer;
    DistanceJoinOptions options;
    options.node_policy = variant.node_policy;
    options.tie_break = variant.tie_break;
    DistanceJoin<2> join(WaterTree(), RoadsTree(), options);
    JoinResult<2> result;
    uint64_t produced = 0;
    while (produced < pairs && join.Next(&result)) ++produced;
    const double seconds = timer.Seconds();
    state.SetIterationTime(seconds);
    state.counters["queue_size"] =
        static_cast<double>(join.stats().max_queue_size);
    AddRow({variant.name, produced, seconds, join.stats(), ""});
  }
}

void RegisterAll() {
  for (const Variant& variant : kVariants) {
    for (uint64_t k : {1ull, 10ull, 100ull, 1000ull, 10000ull, 100000ull}) {
      const uint64_t pairs = ScaledPairs(k);
      benchmark::RegisterBenchmark(
          (std::string("Fig6/") + variant.name + "/pairs:" +
           std::to_string(pairs))
              .c_str(),
          [&variant, pairs](benchmark::State& state) {
            RunVariant(state, variant, pairs);
          })
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace sdj::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  sdj::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sdj::bench::PrintTable(
      "Figure 6: priority-queue ordering and tree-traversal variants");
  return 0;
}
