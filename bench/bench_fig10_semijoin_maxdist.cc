// Reproduces Figure 10: maximum distance vs. maximum pairs for the distance
// semi-join (Water -> Roads), on top of the "Local" variant of Figure 9.
//
//   Regular        — Local semi-join, no bounds
//   MaxDist @k     — max distance = distance of semi-join result #k
//   MaxDist All    — max distance = the largest distance in the full result
//   MaxPair K      — semi-join D_max estimation with budget K
//   MaxPair All    — budget = |Water|
//
// Paper shape: MaxDist always helps (MaxDist All ~14% faster than Regular
// for the full result); MaxPair 1,000 matches MaxDist @1,000, while MaxPair
// >= 10,000 is slower than Regular (loose estimate + estimation overhead;
// MaxPair All ~13% slower).
#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.h"
#include "core/semi_join.h"

namespace sdj::bench {
namespace {

void RunConfig(benchmark::State& state, const std::string& series,
               const SemiJoinOptions& options, uint64_t pairs) {
  for (auto _ : state) {
    ColdCaches();
    WallTimer timer;
    DistanceSemiJoin<2> semi(WaterTree(), RoadsTree(), options);
    JoinResult<2> result;
    uint64_t produced = 0;
    while (produced < pairs && semi.Next(&result)) ++produced;
    const double seconds = timer.Seconds();
    state.SetIterationTime(seconds);
    state.counters["queue_size"] =
        static_cast<double>(semi.stats().max_queue_size);
    AddRow({series, produced, seconds, semi.stats(), ""});
  }
}

void Register(const std::string& series, const SemiJoinOptions& options,
              uint64_t pairs) {
  benchmark::RegisterBenchmark(
      ("Fig10/" + series + "/pairs:" + std::to_string(pairs)).c_str(),
      [series, options, pairs](benchmark::State& state) {
        RunConfig(state, series, options, pairs);
      })
      ->Iterations(1)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond);
}

SemiJoinOptions LocalBase() {
  SemiJoinOptions options;
  options.filter = SemiJoinFilter::kInside2;
  options.bound = SemiJoinBound::kLocal;
  return options;
}

void RegisterAll() {
  const uint64_t all = WaterTree().size();
  const uint64_t ks[] = {1, 10, 100, 1000, 10000};

  // Regular (Local, unbounded).
  for (uint64_t k : ks) Register("Regular", LocalBase(), ScaledSemiPairs(k));
  Register("Regular", LocalBase(), all);

  // MaxDist at semi-join result #1,000 / #10,000 / All.
  struct Cut {
    std::string name;
    uint64_t pairs;
  };
  const Cut cuts[] = {{"1000", ScaledSemiPairs(1000)},
                      {"10000", ScaledSemiPairs(10000)},
                      {"All", all}};
  for (const Cut& cut : cuts) {
    SemiJoinOptions options = LocalBase();
    options.join.max_distance = SemiDistanceAt(cut.pairs);
    const std::string series = "MaxDist@" + cut.name;
    for (uint64_t k : ks) {
      if (ScaledSemiPairs(k) > cut.pairs) continue;
      Register(series, options, ScaledSemiPairs(k));
    }
    Register(series, options, cut.pairs);
  }

  // MaxPair with budgets 1,000 / 10,000 / All.
  for (const Cut& cut : cuts) {
    SemiJoinOptions options = LocalBase();
    options.join.max_pairs = cut.pairs;
    options.join.estimate_max_distance = true;
    const std::string series = "MaxPair" + cut.name;
    for (uint64_t k : ks) {
      if (ScaledSemiPairs(k) > cut.pairs) continue;
      Register(series, options, ScaledSemiPairs(k));
    }
    Register(series, options, cut.pairs);
  }
}

}  // namespace
}  // namespace sdj::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  sdj::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sdj::bench::PrintTable(
      "Figure 10: maximum distance / maximum pairs (distance semi-join)");
  return 0;
}
