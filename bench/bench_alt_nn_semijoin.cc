// Reproduces the Section 4.2.3 comparison: computing the complete distance
// semi-join with repeated nearest-neighbor queries (then sorting) vs. the
// incremental semi-join variants, in both join orders.
//
// Paper numbers (full results): Water -> Roads: NN-based 27s vs. GlobalAll
// ~25s; Roads -> Water: NN-based 141s vs. GlobalAll ~102s. The reproduction
// target: GlobalAll beats the NN-based approach in both orders, with the
// larger gap on the bigger outer relation.
#include <benchmark/benchmark.h>

#include <string>

#include "baseline/nn_semi_join.h"
#include "bench_common.h"
#include "core/semi_join.h"

namespace sdj::bench {
namespace {

void RunNnBaseline(benchmark::State& state, bool water_first) {
  const RTree<2>& outer = water_first ? WaterTree() : RoadsTree();
  const RTree<2>& inner = water_first ? RoadsTree() : WaterTree();
  const std::string label = water_first ? "Water->Roads" : "Roads->Water";
  for (auto _ : state) {
    ColdCaches();
    WallTimer timer;
    baseline::NnSemiJoinStats nn_stats;
    const auto result =
        baseline::NnSemiJoin(outer, inner, Metric::kEuclidean, &nn_stats);
    const double seconds = timer.Seconds();
    state.SetIterationTime(seconds);
    JoinStats stats;
    stats.pairs_reported = result.size();
    stats.object_distance_calcs = nn_stats.distance_calcs;
    stats.node_io = nn_stats.node_io;
    stats.max_queue_size = nn_stats.queue_pushes;  // total queue traffic
    AddRow({"NN-based " + label, result.size(), seconds, stats,
            "sort-at-end baseline"});
  }
}

void RunIncremental(benchmark::State& state, bool water_first,
                    SemiJoinBound bound, const std::string& bound_name) {
  const RTree<2>& outer = water_first ? WaterTree() : RoadsTree();
  const RTree<2>& inner = water_first ? RoadsTree() : WaterTree();
  const std::string label = water_first ? "Water->Roads" : "Roads->Water";
  for (auto _ : state) {
    ColdCaches();
    WallTimer timer;
    SemiJoinOptions options;
    options.filter = SemiJoinFilter::kInside2;
    options.bound = bound;
    DistanceSemiJoin<2> semi(outer, inner, options);
    JoinResult<2> result;
    uint64_t produced = 0;
    // Every outer object has exactly one result pair; stop at the last one
    // rather than draining the exhausted queue.
    while (produced < outer.size() && semi.Next(&result)) ++produced;
    const double seconds = timer.Seconds();
    state.SetIterationTime(seconds);
    AddRow({bound_name + " " + label, produced, seconds, semi.stats(), ""});
  }
}

void RegisterAll() {
  for (bool water_first : {true, false}) {
    const std::string label = water_first ? "WaterRoads" : "RoadsWater";
    benchmark::RegisterBenchmark(
        ("Alt/NnSemiJoin/" + label).c_str(),
        [water_first](benchmark::State& state) {
          RunNnBaseline(state, water_first);
        })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    const struct {
      SemiJoinBound bound;
      const char* name;
    } variants[] = {{SemiJoinBound::kLocal, "Local"},
                    {SemiJoinBound::kGlobalAll, "GlobalAll"}};
    for (const auto& v : variants) {
      benchmark::RegisterBenchmark(
          ("Alt/Incremental" + std::string(v.name) + "/" + label).c_str(),
          [water_first, v](benchmark::State& state) {
            RunIncremental(state, water_first, v.bound, v.name);
          })
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace sdj::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  sdj::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sdj::bench::PrintTable(
      "Section 4.2.3: NN-based semi-join vs. incremental semi-join");
  return 0;
}
