// Checkpoint-overhead sweep for the durable join cursor (DESIGN.md §11):
// drains the same Water x Roads pair budget through a JoinCursor with
// checkpoint intervals from "never" down to "every 100 pairs", plus one
// suspend-at-midpoint/resume run. The no-checkpoint row is the baseline; the
// gap to each interval row is the cost of durability at that granularity.
//
// Expectation: snapshot cost is dominated by serializing the priority queue,
// so overhead per checkpoint grows with queue size while the join itself is
// flat in between — coarse intervals should be nearly free.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/distance_join.h"
#include "core/join_cursor.h"
#include "util/stop_token.h"

namespace sdj::bench {
namespace {

std::string SnapshotPath() {
  return "bench_checkpoint.snap";
}

// Drains `pairs` pairs through a cursor that checkpoints every
// `checkpoint_every` reported pairs (0 = never).
void RunCheckpointed(benchmark::State& state, uint64_t pairs,
                     uint64_t checkpoint_every, const std::string& series) {
  for (auto _ : state) {
    ColdCaches();
    std::remove(SnapshotPath().c_str());
    WallTimer timer;
    DistanceJoin<2> join(WaterTree(), RoadsTree(), DistanceJoinOptions{});
    CursorOptions cursor_options;
    cursor_options.snapshot_path = SnapshotPath();
    cursor_options.checkpoint_every = checkpoint_every;
    JoinCursor<2, DistanceJoin<2>> cursor(&join, cursor_options);
    JoinResult<2> result;
    uint64_t produced = 0;
    while (produced < pairs && cursor.Next(&result)) ++produced;
    const double seconds = timer.Seconds();
    state.SetIterationTime(seconds);
    state.counters["checkpoints"] =
        static_cast<double>(cursor.cursor_stats().checkpoints_written);
    AddRow({series, produced, seconds, join.stats(),
            "ckpts=" + std::to_string(cursor.cursor_stats().checkpoints_written),
            1});
  }
  std::remove(SnapshotPath().c_str());
}

// Suspends at the midpoint, tears everything down, then resumes from the
// snapshot and drains the rest — the end-to-end durability round trip.
void RunSuspendResume(benchmark::State& state, uint64_t pairs,
                      const std::string& series) {
  for (auto _ : state) {
    ColdCaches();
    std::remove(SnapshotPath().c_str());
    WallTimer timer;
    uint64_t produced = 0;
    {
      util::StopSource stop;
      DistanceJoinOptions options;
      options.stop_token = stop.token();
      DistanceJoin<2> join(WaterTree(), RoadsTree(), options);
      CursorOptions cursor_options;
      cursor_options.snapshot_path = SnapshotPath();
      JoinCursor<2, DistanceJoin<2>> cursor(&join, cursor_options);
      JoinResult<2> result;
      while (produced < pairs / 2 && cursor.Next(&result)) ++produced;
      stop.RequestStop();
      while (cursor.Next(&result)) ++produced;  // runs to the safe point
    }
    JoinStats stats;
    {
      DistanceJoin<2> join(WaterTree(), RoadsTree(), DistanceJoinOptions{});
      CursorOptions cursor_options;
      cursor_options.snapshot_path = SnapshotPath();
      JoinCursor<2, DistanceJoin<2>> cursor(&join, cursor_options);
      const bool resumed = cursor.ResumeLatest();
      JoinResult<2> result;
      while (produced < pairs && cursor.Next(&result)) ++produced;
      stats = join.stats();
      stats.pairs_reported = produced;  // report the combined run's total
      state.counters["resumed"] = resumed ? 1 : 0;
    }
    const double seconds = timer.Seconds();
    state.SetIterationTime(seconds);
    AddRow({series, produced, seconds, stats, "suspend@50%+resume", 1});
  }
  std::remove(SnapshotPath().c_str());
}

void RegisterAll() {
  const uint64_t pairs = ScaledPairs(100000ull);
  // Intervals below ~10k pairs serialize the ~2M-entry queue so often that
  // checkpointing dominates the run; the sweep stops where the trend is clear.
  for (const uint64_t every : {0ull, 50000ull, 10000ull}) {
    const uint64_t scaled_every = every == 0 ? 0 : ScaledPairs(every);
    const std::string series =
        every == 0 ? "NoCheckpoint"
                   : "Every" + std::to_string(scaled_every);
    benchmark::RegisterBenchmark(
        ("Checkpoint/every:" + std::to_string(scaled_every)).c_str(),
        [pairs, scaled_every, series](benchmark::State& state) {
          RunCheckpointed(state, pairs, scaled_every, series);
        })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark(
      "Checkpoint/suspend_resume",
      [pairs](benchmark::State& state) {
        RunSuspendResume(state, pairs, "SuspendResume");
      })
      ->Iterations(1)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond);
}

}  // namespace
}  // namespace sdj::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  sdj::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sdj::bench::PrintTable(
      "Checkpoint overhead: durable cursor vs plain join, Water x Roads");
  return 0;
}
