// Reproduces Figure 8: fully in-memory priority queue vs. the hybrid
// memory/disk queue of Section 3.2, with two settings of the tier increment
// D_T (the paper chose the distances of result pairs #7,663 and #34,906).
//
// Paper shape: the memory queue is competitive up to 10,000 pairs but
// collapses at 100,000 (virtual-memory thrashing on a 64MB machine); the
// hybrid queue stays flat, with the larger D_T slightly better at 100k
// pairs and the smaller one slightly better below. A modern machine has RAM
// to spare, so the thrashing cannot recur — the memory-residency counter
// (mem_queue) documents how much of the queue each configuration keeps in
// RAM, which is the paper's underlying effect.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.h"
#include "core/distance_join.h"

namespace sdj::bench {
namespace {

void RunConfig(benchmark::State& state, const std::string& series,
               const DistanceJoinOptions& options, uint64_t pairs) {
  for (auto _ : state) {
    ColdCaches();
    // Per-iteration sink (see bench_table1.cc); the hybrid-queue rows are
    // where the refill and spill phases show up.
    obs::Metrics metrics;
    DistanceJoinOptions run_options = options;
    if (MetricsEnabled()) {
      run_options.metrics = &metrics;
      WaterTree().pool().SetMetrics(&metrics);
      RoadsTree().pool().SetMetrics(&metrics);
    }
    WallTimer timer;
    DistanceJoin<2> join(WaterTree(), RoadsTree(), run_options);
    JoinResult<2> result;
    uint64_t produced = 0;
    while (produced < pairs && join.Next(&result)) ++produced;
    const double seconds = timer.Seconds();
    if (MetricsEnabled()) {
      WaterTree().pool().SetMetrics(nullptr);
      RoadsTree().pool().SetMetrics(nullptr);
    }
    state.SetIterationTime(seconds);
    state.counters["queue_size"] =
        static_cast<double>(join.stats().max_queue_size);
    state.counters["mem_queue"] =
        static_cast<double>(join.max_memory_queue_size());
    AddRow({series, produced, seconds, join.stats(),
            "mem_queue=" + std::to_string(join.max_memory_queue_size()), 1,
            metrics.Summary()});
  }
}

void RegisterAll() {
  const uint64_t ks[] = {1, 10, 100, 1000, 10000, 100000};
  for (uint64_t k : ks) {
    const uint64_t pairs = ScaledPairs(k);
    benchmark::RegisterBenchmark(
        ("Fig8/Memory/pairs:" + std::to_string(pairs)).c_str(),
        [pairs](benchmark::State& state) {
          RunConfig(state, "Memory", DistanceJoinOptions{}, pairs);
        })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
  // The paper's two D_T settings: distances of pairs #7,663 and #34,906.
  const struct {
    const char* name;
    uint64_t anchor;
  } hybrids[] = {{"Hybrid1", 7663}, {"Hybrid2", 34906}};
  for (const auto& h : hybrids) {
    const double tier_width = JoinDistanceAt(ScaledPairs(h.anchor));
    for (uint64_t k : ks) {
      const uint64_t pairs = ScaledPairs(k);
      const std::string series = h.name;
      benchmark::RegisterBenchmark(
          ("Fig8/" + series + "/pairs:" + std::to_string(pairs)).c_str(),
          [series, tier_width, pairs](benchmark::State& state) {
            DistanceJoinOptions options;
            options.use_hybrid_queue = true;
            options.hybrid.tier_width = tier_width;
            RunConfig(state, series, options, pairs);
          })
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace sdj::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  sdj::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sdj::bench::PrintTable(
      "Figure 8: memory-only vs. hybrid memory/disk priority queue");
  return 0;
}
