// The `scrub` command (DESIGN.md §16), shared by the standalone
// tools/sdjoin_scrub binary and the `sdjoin_cli scrub` subcommand.
//
//   sdjoin_scrub --file=<path> [--kind=snapshot|pages] [--page-size=4096]
//                [--snapshot-slots=2] [--expect-pages=N] [--repair]
//
// Offline verification and repair of sdjoin's checksummed page files:
//
//   --kind=snapshot (default)  shadow-paged snapshot stores (join-cursor
//       checkpoints, serving session tables). Classifies every header slot
//       (committed / stale / torn / corrupt — core/snapshot.h) and audits
//       the file tail for pages no surviving slot references. --repair
//       zeroes torn/corrupt slot headers (dropping an uncommittable newer
//       epoch so resume lands on the newest *committed* one) and truncates
//       orphaned tail pages.
//   --kind=pages  any raw checksummed page file (e.g. a hybrid-queue spill
//       file). Verifies per-page checksums and the torn-tail invariant;
//       with --expect-pages=N, pages beyond N are classified as leaked and
//       --repair truncates them. Corrupt interior pages are reported, never
//       rewritten — a raw page file carries no redundancy to repair from.
//
// Scrub quarantines and reports; it never aborts on corruption. Exit codes:
// 0 = clean, 1 = corruption found (even if repaired — rerun to verify),
// 2 = usage error, 3 = file unreadable.
#ifndef SDJOIN_TOOLS_SCRUB_COMMAND_H_
#define SDJOIN_TOOLS_SCRUB_COMMAND_H_

#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/snapshot.h"
#include "storage/scrub.h"

namespace sdj::tools {

inline int ScrubUsage() {
  std::fprintf(stderr,
               "usage: scrub --file=<path> [--kind=snapshot|pages]\n"
               "  [--page-size=4096] [--snapshot-slots=2] [--expect-pages=N]\n"
               "  [--repair]\n"
               "exit codes: 0 clean, 1 corruption found, 2 usage error,\n"
               "  3 file unreadable\n");
  return 2;
}

// Parses argv[first..) and runs the scrub. See file comment.
inline int RunScrubCommand(int argc, char** argv, int first) {
  std::string file;
  std::string kind = "snapshot";
  long page_size = 4096;
  long slots = 2;
  long expect_pages = -1;
  bool repair = false;
  for (int i = first; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) return ScrubUsage();
    const std::string flag(arg + 2);
    const size_t eq = flag.find('=');
    const std::string key = flag.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : flag.substr(eq + 1);
    if (key == "file") {
      file = value;
    } else if (key == "kind") {
      kind = value;
    } else if (key == "page-size") {
      page_size = std::atol(value.c_str());
    } else if (key == "snapshot-slots") {
      slots = std::atol(value.c_str());
    } else if (key == "expect-pages") {
      expect_pages = std::atol(value.c_str());
    } else if (key == "repair") {
      repair = value.empty() || value == "true";
    } else {
      std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
      return ScrubUsage();
    }
  }
  if (file.empty() || page_size <= 0 || slots < 2 ||
      (kind != "snapshot" && kind != "pages")) {
    return ScrubUsage();
  }
  // SnapshotStore::Open creates missing files; a scrub must not.
  struct stat st;
  if (::stat(file.c_str(), &st) != 0) {
    std::fprintf(stderr, "scrub: cannot stat %s\n", file.c_str());
    return 3;
  }
  std::printf("# scrub %s: kind=%s page_size=%ld\n", file.c_str(),
              kind.c_str(), page_size);

  bool found = false;  // any corruption class observed (repaired or not)

  if (kind == "pages") {
    const storage::PageScrubReport report =
        storage::ScrubPages(file, static_cast<uint32_t>(page_size));
    if (!report.opened) {
      std::fprintf(stderr, "scrub: cannot read %s\n", file.c_str());
      return 3;
    }
    std::printf("pages: scanned=%llu corrupt=%zu torn-tail-bytes=%llu\n",
                static_cast<unsigned long long>(report.pages_scanned),
                report.corrupt_pages.size(),
                static_cast<unsigned long long>(report.torn_tail_bytes));
    for (const storage::PageId id : report.corrupt_pages) {
      std::printf("corrupt-page: %llu\n",
                  static_cast<unsigned long long>(id));
    }
    found = !report.corrupt_pages.empty() || report.torn_tail_bytes > 0;
    uint64_t keep = report.pages_scanned;
    if (expect_pages >= 0 &&
        report.pages_scanned > static_cast<uint64_t>(expect_pages)) {
      const uint64_t leaked =
          report.pages_scanned - static_cast<uint64_t>(expect_pages);
      std::printf("leaked-pages: %llu (file=%llu expected=%ld)\n",
                  static_cast<unsigned long long>(leaked),
                  static_cast<unsigned long long>(report.pages_scanned),
                  expect_pages);
      found = true;
      keep = static_cast<uint64_t>(expect_pages);
    }
    if (repair && (keep < report.pages_scanned || report.torn_tail_bytes)) {
      uint64_t removed = 0;
      if (!storage::TruncateToPages(file, static_cast<uint32_t>(page_size),
                                    keep, &removed)) {
        std::fprintf(stderr, "scrub: repair truncation failed\n");
        return 3;
      }
      std::printf("repair: truncated-bytes=%llu\n",
                  static_cast<unsigned long long>(removed));
    }
    std::printf("verdict: %s\n", found ? "corrupt" : "clean");
    return found ? 1 : 0;
  }

  // kind == "snapshot": slot classification needs the store's layout logic.
  uint64_t needed_pages = 0;
  uint64_t file_pages = 0;
  {
    snapshot::SnapshotStoreOptions options;
    options.path = file;
    options.page_size = static_cast<uint32_t>(page_size);
    options.num_slots = static_cast<uint32_t>(slots);
    std::unique_ptr<snapshot::SnapshotStore> store =
        snapshot::SnapshotStore::Open(options);
    if (store == nullptr) {
      std::fprintf(stderr, "scrub: cannot open %s as a snapshot store\n",
                   file.c_str());
      return 3;
    }
    uint64_t healed = 0;
    const std::vector<snapshot::SnapshotStore::SlotReport> reports =
        repair ? store->ScrubSlots(&healed) : store->ClassifySlots();
    for (const auto& report : reports) {
      std::printf("slot %u: %s", report.slot,
                  snapshot::SlotStatusName(report.status));
      if (report.status == snapshot::SlotStatus::kCommitted ||
          report.status == snapshot::SlotStatus::kStale) {
        std::printf(" epoch=%llu length=%llu payload-pages=%llu",
                    static_cast<unsigned long long>(report.epoch),
                    static_cast<unsigned long long>(report.length),
                    static_cast<unsigned long long>(report.payload_pages));
      }
      std::printf("\n");
      found = found || report.status == snapshot::SlotStatus::kTorn ||
              report.status == snapshot::SlotStatus::kCorrupt;
    }
    if (repair && healed > 0) {
      std::printf("repair: healed-slots=%llu\n",
                  static_cast<unsigned long long>(healed));
    }
    needed_pages = store->NeededPages();
    file_pages = store->file_pages();
  }  // store closed before any truncation below
  if (file_pages > needed_pages) {
    std::printf("orphaned-tail-pages: %llu (file=%llu needed=%llu)\n",
                static_cast<unsigned long long>(file_pages - needed_pages),
                static_cast<unsigned long long>(file_pages),
                static_cast<unsigned long long>(needed_pages));
    found = true;
  }
  if (repair && file_pages > needed_pages) {
    uint64_t removed = 0;
    if (!storage::TruncateToPages(file, static_cast<uint32_t>(page_size),
                                  needed_pages, &removed)) {
      std::fprintf(stderr, "scrub: repair truncation failed\n");
      return 3;
    }
    std::printf("repair: truncated-bytes=%llu\n",
                static_cast<unsigned long long>(removed));
  }
  std::printf("verdict: %s\n", found ? "corrupt" : "clean");
  return found ? 1 : 0;
}

}  // namespace sdj::tools

#endif  // SDJOIN_TOOLS_SCRUB_COMMAND_H_
