// Command-line front end for the sdjoin library.
//
//   sdjoin_cli gen      --out=pts.csv --n=10000 --kind=clustered [--seed=1]
//   sdjoin_cli join     --a=a.csv --b=b.csv [--k=100] [--max-distance=D]
//                       [--min-distance=D] [--metric=euclidean|manhattan|
//                       chessboard] [--policy=even|basic|simultaneous]
//                       [--reverse] [--estimate] [--threads=N] [--shards=N:
//                       partition the pair space into N independent engines
//                       behind a k-way frontier merge (DESIGN.md §18);
//                       output-identical, 0 = SDJ_SHARDS or 1 — also on
//                       semijoin and --within] [--print=10]
//                       [--kernel=auto|scalar|sse2|avx2|avx512: SIMD path
//                       for the distance kernels (DESIGN.md §15); every
//                       path is bit-identical, unsupported requests
//                       degrade — also on semijoin]
//                       [--within=EPS: incremental within-distance join —
//                       every pair with distance <= EPS, ascending; replaces
//                       the DistanceJoin shaping flags above]
//                       [--inject-faults=<seed>] [--fault-read-rate=R]
//                       [--fault-write-rate=R] [--fault-bit-flip-rate=R]
//                       [--fault-hard-read-after=N]
//   sdjoin_cli semijoin --a=a.csv --b=b.csv [--k=...] [--bound=none|local|
//                       globalnodes|globalall] [--filter=outside|inside1|
//                       inside2] [--print=10]
//   sdjoin_cli nn       --a=a.csv --x=X --y=Y [--k=5]
//   sdjoin_cli stats    --a=a.csv
//   sdjoin_cli serve    --a=a.csv --b=b.csv [--sessions=4] [--batch=32]
//                       [--max-results=0] [--slice-us=0] [--budget-entries=N]
//                       [--state-dir=DIR] [--resume] [--checkpoint-every=N]
//                       [--suspend-after-rounds=N] [--snapshot-slots=2]
//                       [--inject-faults=<seed>] [--print=3]
//   sdjoin_cli scrub    --file=store.snap [--kind=snapshot|pages]
//                       [--page-size=4096] [--snapshot-slots=2]
//                       [--expect-pages=N] [--repair]
//                       (offline checksum/slot verification and repair —
//                       tools/scrub_command.h, DESIGN.md §16; also built
//                       standalone as sdjoin_scrub)
//
// serve multiplexes --sessions concurrent incremental traversals (rotating
// join / semi-join / Manhattan-join kinds) through one SessionManager
// (DESIGN.md §14), round-robin in --batch-result turns. --slice-us arms a
// deadline per Next(): a session that overruns yields (its stream is
// unchanged) and the driver rotates. --budget-entries caps resident
// pair-queue entries; exceeding it checkpoint-evicts the coldest sessions,
// which rehydrate transparently when the rotation returns. With
// --state-dir, sessions are crash-recoverable: --suspend-after-rounds
// checkpoints everything and exits 4, and a later run with --resume
// recovers the table and continues every session where it left off.
// --inject-faults here targets the snapshot stores and the session table
// (not the trees): transient faults are absorbed by bounded retries, and a
// session whose checkpoint cannot commit degrades to pinned-resident
// instead of failing. A failed session (exit 3) never disturbs the others.
//
// join and semijoin also accept durable-cursor flags (DESIGN.md §11):
//   --snapshot=<file>      snapshot store for checkpoints and resume
//   --checkpoint-every=N   checkpoint every N reported pairs (0 = only on
//                          suspension)
//   --suspend-after=N      suspend deterministically after N reported pairs
//   --max-seconds=S        suspend when the wall-clock deadline passes
//   --resume               load the newest valid snapshot before iterating
//
// and observability flags (DESIGN.md §12):
//   --metrics              print a per-phase latency table (expansion,
//                          refill, spill, checkpoint, page I/O) after the run
//   --trace=<file>         additionally write Chrome-trace JSON (load into
//                          chrome://tracing or https://ui.perfetto.dev);
//                          implies --metrics
//
// Flag interaction matrix (tested in tests/cli_test.cc):
//   --threads x --resume        the pair stream is output-identical for every
//                               thread count and the thread count is not part
//                               of the snapshot fingerprint, so a run
//                               suspended with --threads=1 may resume with
//                               --threads=4 and vice versa.
//   --inject-faults x --resume  fault injection covers the snapshot store as
//                               well as the trees: checkpoints that fail to
//                               commit are counted and the join continues
//                               under the previous snapshot; torn or corrupt
//                               slots are skipped on resume (fallback), and if
//                               no valid snapshot remains the join restarts
//                               from scratch with a warning.
//   --inject-faults x --threads parallel workers see the same retry/checksum
//                               recovery as the serial engine; a hard fault
//                               ends the run with an identical error-point
//                               prefix for any thread count.
// Exit codes: 0 = result exhausted, 1 = bad input, 2 = usage error,
// 3 = io-error (reported pairs are a valid prefix), 4 = suspended (snapshot
// committed; rerun with --resume to continue).
//
// Datasets are "x,y" CSV files (data/dataset_io.h); object ids are row
// numbers. Every command prints a short cost report (distance calculations,
// queue size, node I/O) alongside its results.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/distance_join.h"
#include "core/env_knobs.h"
#include "core/join_cursor.h"
#include "core/semi_join.h"
#include "core/shard_merge.h"
#include "core/within_join.h"
#include "data/dataset_io.h"
#include "data/generators.h"
#include "geometry/simd.h"
#include "nn/inc_nearest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rtree/rtree.h"
#include "serve/erased_engine.h"
#include "serve/session_manager.h"
#include "storage/fault_injection.h"
#include "util/stop_token.h"

#include "scrub_command.h"

namespace {

using sdj::DistanceJoin;
using sdj::DistanceJoinOptions;
using sdj::DistanceSemiJoin;
using sdj::JoinResult;
using sdj::JoinStats;
using sdj::JoinStatus;
using sdj::Metric;
using sdj::Point;
using sdj::Rect;
using sdj::RTree;

// --key=value flag map; positional arguments are rejected.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--", 2) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg);
        ok_ = false;
        continue;
      }
      const char* eq = std::strchr(arg, '=');
      if (eq == nullptr) {
        values_[std::string(arg + 2)] = "true";
      } else {
        values_[std::string(arg + 2, eq)] = std::string(eq + 1);
      }
    }
  }

  bool ok() const { return ok_; }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  long GetLong(const std::string& key, long fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atol(it->second.c_str());
  }
  bool GetBool(const std::string& key) const {
    return Get(key, "") == "true";
  }
  bool Has(const std::string& key) const {
    return values_.find(key) != values_.end();
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

bool LoadRequired(const Flags& flags, const std::string& key,
                  std::vector<Point<2>>* points) {
  const std::string path = flags.Get(key, "");
  if (path.empty()) {
    std::fprintf(stderr, "missing required flag --%s=<csv>\n", key.c_str());
    return false;
  }
  if (!sdj::data::LoadPointsCsv(path, points)) {
    std::fprintf(stderr, "failed to load %s\n", path.c_str());
    return false;
  }
  return true;
}

RTree<2> IndexPoints(const std::vector<Point<2>>& points,
                     const sdj::RTreeOptions& options = sdj::RTreeOptions{}) {
  RTree<2> tree(options);
  std::vector<RTree<2>::Entry> entries;
  entries.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    entries.push_back({Rect<2>::FromPoint(points[i]), i});
  }
  tree.BulkLoad(std::move(entries));
  return tree;
}

// --inject-faults=<seed> turns on a deterministic fault schedule under both
// trees' page stores: transient read/write faults (recovered by buffer-pool
// retries) plus occasional bit flips (caught by page checksums and re-read).
// The finer-grained --fault-* flags override the default rates; a hard-fault
// schedule (--fault-hard-read-after=N) makes the join stop with io-error
// after a valid partial prefix.
bool ApplyFaultFlags(const Flags& flags, sdj::RTreeOptions* options) {
  const std::string seed = flags.Get("inject-faults", "");
  if (seed.empty()) return false;
  sdj::storage::FaultInjectionOptions faults;
  faults.seed = static_cast<uint64_t>(std::atoll(seed.c_str()));
  faults.transient_read_rate = flags.GetDouble("fault-read-rate", 0.01);
  faults.transient_write_rate = flags.GetDouble("fault-write-rate", 0.01);
  faults.bit_flip_read_rate = flags.GetDouble("fault-bit-flip-rate", 0.002);
  const long hard_read = flags.GetLong("fault-hard-read-after", -1);
  if (hard_read >= 0) {
    faults.hard_read_after = static_cast<uint64_t>(hard_read);
  }
  options->fault_injection = faults;
  // Shrink the buffer pool so the join actually performs physical I/O;
  // otherwise the whole tree stays cached and the injector never fires.
  options->buffer_pages = static_cast<uint32_t>(flags.GetLong("buffer", 16));
  return true;
}

void PrintFaultCounters(const char* label,
                        const sdj::storage::FaultInjectingPageFile* injector) {
  if (injector == nullptr) return;
  const sdj::storage::FaultCounters& c = injector->counters();
  std::printf(
      "# faults[%s]: %llu reads, %llu writes, %llu transient-read, "
      "%llu transient-write, %llu hard-read, %llu bit-flips\n",
      label, static_cast<unsigned long long>(c.reads),
      static_cast<unsigned long long>(c.writes),
      static_cast<unsigned long long>(c.transient_read_faults),
      static_cast<unsigned long long>(c.transient_write_faults),
      static_cast<unsigned long long>(c.hard_read_faults),
      static_cast<unsigned long long>(c.bit_flips));
}

// --metrics / --trace=FILE plumbing (DESIGN.md §12). One Metrics sink covers
// the engine, both trees' buffer pools, the hybrid queue, and the snapshot
// store; --trace additionally records each timed phase as a Chrome-trace
// complete event.
struct ObsSetup {
  bool enabled = false;
  std::string trace_path;
  sdj::obs::TraceSink sink;
  sdj::obs::Metrics metrics;

  void Init(const Flags& flags) {
    trace_path = flags.Get("trace", "");
    enabled = flags.GetBool("metrics") || !trace_path.empty();
    if (!trace_path.empty()) metrics.set_trace(&sink);
  }

  // Null when disabled, so instrumented code pays only a pointer test.
  sdj::obs::Metrics* get() { return enabled ? &metrics : nullptr; }

  // Prints the per-phase latency table and writes the trace file. Returns
  // false if the trace file could not be written.
  bool Finish() {
    if (!enabled) return true;
    const sdj::obs::MetricsSummary summary = metrics.Summary();
    std::printf(
        "# phase            count   total_ms    p50_us    p95_us    p99_us"
        "    max_us\n");
    for (int i = 0; i < sdj::obs::kNumOps; ++i) {
      const sdj::obs::Op op = static_cast<sdj::obs::Op>(i);
      const sdj::obs::HistogramSummary& h = summary.of(op);
      if (h.count == 0) continue;
      std::printf("# %-15s %7llu %10.3f %9.1f %9.1f %9.1f %9.1f\n",
                  sdj::obs::OpName(op),
                  static_cast<unsigned long long>(h.count),
                  static_cast<double>(h.total_ns) * 1e-6,
                  static_cast<double>(h.p50_ns) * 1e-3,
                  static_cast<double>(h.p95_ns) * 1e-3,
                  static_cast<double>(h.p99_ns) * 1e-3,
                  static_cast<double>(h.max_ns) * 1e-3);
    }
    if (trace_path.empty()) return true;
    if (!sink.WriteJson(trace_path)) {
      std::fprintf(stderr, "failed to write trace %s\n", trace_path.c_str());
      return false;
    }
    std::printf("# trace: %zu events written to %s (%llu dropped)\n",
                sink.size(), trace_path.c_str(),
                static_cast<unsigned long long>(sink.dropped()));
    return true;
  }
};

// Reports the terminal status; non-ok statuses exit non-zero so scripts can
// distinguish a complete result (0) from a valid partial prefix (3) and a
// resumable suspension (4).
int ReportStatus(JoinStatus status, const std::string& snapshot_path) {
  if (status == JoinStatus::kIoError) {
    std::fprintf(stderr,
                 "io-error: join stopped early; reported pairs are a valid "
                 "prefix of the full result\n");
    return 3;
  }
  if (status == JoinStatus::kSuspended) {
    std::fprintf(stderr,
                 "suspended: state checkpointed%s%s; rerun with --resume to "
                 "continue\n",
                 snapshot_path.empty() ? "" : " to ",
                 snapshot_path.c_str());
    return 4;
  }
  if (status == JoinStatus::kInvalidArgument) {
    std::fprintf(stderr, "invalid-argument: object ids are not dense\n");
    return 2;
  }
  return 0;
}

void PrintCosts(const JoinStats& stats);

// Shared join/semijoin driver: iterates `engine` through a JoinCursor,
// honoring the durable-cursor flags (see file header). `stop_source` must be
// the source behind the engine's stop token. Prints pairs and cursor
// bookkeeping; the caller prints costs and fault counters afterwards.
template <typename Engine>
int DriveJoin(Engine* engine, const Flags& flags,
              sdj::util::StopSource* stop_source,
              const std::optional<sdj::storage::FaultInjectionOptions>&
                  fault_injection,
              sdj::obs::Metrics* metrics) {
  sdj::CursorOptions cursor_options;
  cursor_options.snapshot_path = flags.Get("snapshot", "");
  cursor_options.checkpoint_every =
      static_cast<uint64_t>(flags.GetLong("checkpoint-every", 0));
  cursor_options.fault_injection = fault_injection;
  cursor_options.metrics = metrics;
  sdj::JoinCursor<2, Engine> cursor(engine, cursor_options);
  if (!cursor_options.snapshot_path.empty() && !cursor.ok()) {
    std::fprintf(stderr, "cannot open snapshot store %s\n",
                 cursor_options.snapshot_path.c_str());
    return 1;
  }
  if (flags.GetBool("resume")) {
    if (cursor_options.snapshot_path.empty()) {
      std::fprintf(stderr, "--resume requires --snapshot=<file>\n");
      return 2;
    }
    if (!cursor.ResumeLatest()) {
      std::fprintf(stderr,
                   "no usable snapshot in %s; starting from scratch\n",
                   cursor_options.snapshot_path.c_str());
    }
  }
  const double max_seconds = flags.GetDouble("max-seconds", 0.0);
  if (max_seconds > 0.0) {
    stop_source->SetDeadlineAfter(
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(max_seconds)));
  }
  const long suspend_after = flags.GetLong("suspend-after", 0);
  const long print = flags.GetLong("print", 10);
  JoinResult<2> pair;
  long produced = 0;
  while (cursor.Next(&pair)) {
    if (produced < print) {
      std::printf("%llu,%llu,%.6f\n",
                  static_cast<unsigned long long>(pair.id1),
                  static_cast<unsigned long long>(pair.id2), pair.distance);
    }
    ++produced;
    if (suspend_after > 0 && produced >= suspend_after) {
      stop_source->RequestStop();
    }
  }
  PrintCosts(engine->stats());
  const sdj::CursorStats& cs = cursor.cursor_stats();
  if (cs.checkpoints_written > 0 || cs.checkpoint_failures > 0 ||
      cs.snapshot_fallbacks > 0 || cs.resumes > 0) {
    std::printf(
        "# cursor: %llu checkpoints, %llu checkpoint failures, "
        "%llu snapshot fallbacks, %llu resumes\n",
        static_cast<unsigned long long>(cs.checkpoints_written),
        static_cast<unsigned long long>(cs.checkpoint_failures),
        static_cast<unsigned long long>(cs.snapshot_fallbacks),
        static_cast<unsigned long long>(cs.resumes));
  }
  return ReportStatus(cursor.status(), cursor_options.snapshot_path);
}

// --kernel=auto|scalar|sse2|avx2|avx512 selects the SIMD distance-kernel
// path (DESIGN.md §15). Unsupported requests degrade to the nearest
// supported path; every path is bit-identical, so output never changes.
bool ParseKernel(const Flags& flags, sdj::simd::Isa* isa) {
  const std::string name = flags.Get("kernel", "auto");
  if (!sdj::simd::ParseIsa(name.c_str(), isa)) {
    std::fprintf(stderr, "unknown kernel: %s (auto|scalar|sse2|avx2|avx512)\n",
                 name.c_str());
    return false;
  }
  return true;
}

// --shards=N partitions the pair space into N independent best-first
// engines behind the k-way frontier merge (DESIGN.md §18). 0 (the default)
// defers to SDJ_SHARDS, falling back to 1 (the ordinary serial engines);
// the stream is output-identical at every shard count.
bool ParseShards(const Flags& flags, int* shards) {
  const long value = flags.GetLong("shards", 0);
  if (value < 0) {
    std::fprintf(stderr, "--shards must be >= 0 (0 = SDJ_SHARDS or 1)\n");
    return false;
  }
  *shards = static_cast<int>(value);
  return true;
}

// --screen=on|off overrides integer code screening on quantized pages
// (DESIGN.md §17; default on, or off when SDJ_SCREEN=off). Screening never
// changes the pair stream, only how out-of-range candidates are rejected.
bool ParseScreen(const Flags& flags, bool* screen) {
  const std::string name = flags.Get("screen", *screen ? "on" : "off");
  if (name == "on") {
    *screen = true;
  } else if (name == "off") {
    *screen = false;
  } else {
    std::fprintf(stderr, "unknown screen setting: %s (on|off)\n",
                 name.c_str());
    return false;
  }
  return true;
}

bool ParseMetric(const std::string& name, Metric* metric) {
  if (name == "euclidean") {
    *metric = Metric::kEuclidean;
  } else if (name == "manhattan") {
    *metric = Metric::kManhattan;
  } else if (name == "chessboard") {
    *metric = Metric::kChessboard;
  } else {
    std::fprintf(stderr, "unknown metric: %s\n", name.c_str());
    return false;
  }
  return true;
}

void PrintCosts(const JoinStats& stats) {
  std::printf(
      "# cost: %llu pairs, %llu object dist calcs, %llu queue inserts, "
      "max queue %llu, node I/O %llu\n",
      static_cast<unsigned long long>(stats.pairs_reported),
      static_cast<unsigned long long>(stats.object_distance_calcs),
      static_cast<unsigned long long>(stats.queue_pushes),
      static_cast<unsigned long long>(stats.max_queue_size),
      static_cast<unsigned long long>(stats.node_io));
  if (stats.io_retries > 0 || stats.checksum_failures > 0 ||
      stats.spill_fallbacks > 0) {
    std::printf(
        "# resilience: %llu I/O retries, %llu checksum failures, "
        "%llu spill fallbacks\n",
        static_cast<unsigned long long>(stats.io_retries),
        static_cast<unsigned long long>(stats.checksum_failures),
        static_cast<unsigned long long>(stats.spill_fallbacks));
  }
}

int CmdGen(const Flags& flags) {
  const std::string out = flags.Get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "gen requires --out=<csv>\n");
    return 1;
  }
  const size_t n = static_cast<size_t>(flags.GetLong("n", 10000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetLong("seed", 1));
  const Rect<2> extent({flags.GetDouble("x0", 0.0), flags.GetDouble("y0", 0.0)},
                       {flags.GetDouble("x1", 100000.0),
                        flags.GetDouble("y1", 100000.0)});
  const std::string kind = flags.Get("kind", "uniform");
  std::vector<Point<2>> points;
  if (kind == "uniform") {
    points = sdj::data::GenerateUniform(n, extent, seed);
  } else if (kind == "clustered") {
    sdj::data::ClusterOptions options;
    options.num_points = n;
    options.extent = extent;
    options.num_clusters = static_cast<int>(flags.GetLong("clusters", 32));
    options.seed = seed;
    points = sdj::data::GenerateClustered(options);
  } else if (kind == "polyline") {
    sdj::data::PolylineOptions options;
    options.num_points = n;
    options.extent = extent;
    options.num_polylines = static_cast<int>(flags.GetLong("lines", 100));
    options.seed = seed;
    points = sdj::data::GeneratePolylines(options);
  } else {
    std::fprintf(stderr, "unknown kind: %s\n", kind.c_str());
    return 1;
  }
  if (!sdj::data::SavePointsCsv(out, points)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu %s points to %s\n", points.size(), kind.c_str(),
              out.c_str());
  return 0;
}

int CmdJoin(const Flags& flags) {
  std::vector<Point<2>> a;
  std::vector<Point<2>> b;
  if (!LoadRequired(flags, "a", &a) || !LoadRequired(flags, "b", &b)) return 1;
  sdj::RTreeOptions tree_options;
  const bool faulty = ApplyFaultFlags(flags, &tree_options);
  // Declared before the trees: their pools hold the Metrics pointer until
  // destruction (final flushes record page writes), so the sink must outlive
  // them.
  ObsSetup obs;
  obs.Init(flags);
  RTree<2> ta = IndexPoints(a, tree_options);
  RTree<2> tb = IndexPoints(b, tree_options);

  // --within=EPS switches to the incremental within-distance join: all
  // pairs with distance <= EPS, still streamed by ascending distance. The
  // DistanceJoin-only shaping flags make no sense there and are rejected.
  if (flags.Has("within")) {
    for (const char* incompatible : {"policy", "estimate", "reverse",
                                     "min-distance", "max-distance", "k"}) {
      if (flags.Has(incompatible)) {
        std::fprintf(stderr, "--within is incompatible with --%s\n",
                     incompatible);
        return 1;
      }
    }
    sdj::WithinJoinOptions options;
    options.epsilon = flags.GetDouble("within", 0.0);
    if (options.epsilon < 0.0) {
      std::fprintf(stderr, "--within must be >= 0\n");
      return 1;
    }
    if (!ParseMetric(flags.Get("metric", "euclidean"), &options.metric)) {
      return 1;
    }
    if (!ParseKernel(flags, &options.kernel_isa)) return 1;
    if (!ParseScreen(flags, &options.screen_codes)) return 1;
    const long threads = flags.GetLong("threads", 1);
    if (threads < 1) {
      std::fprintf(stderr, "--threads must be >= 1\n");
      return 1;
    }
    options.num_threads = static_cast<int>(threads);
    if (!ParseShards(flags, &options.shards)) return 1;
    sdj::util::StopSource stop_source;
    options.stop_token = stop_source.token();
    options.metrics = obs.get();
    ta.pool().SetMetrics(obs.get());
    tb.pool().SetMetrics(obs.get());

    int rc;
    if (sdj::env_knobs::ResolveShards(options.shards) >= 2) {
      sdj::ShardedWithinJoin<2> join(ta, tb, options);
      rc = DriveJoin(&join, flags, &stop_source,
                     tree_options.fault_injection, obs.get());
    } else {
      sdj::IncWithinJoin<2> join(ta, tb, options);
      rc = DriveJoin(&join, flags, &stop_source,
                     tree_options.fault_injection, obs.get());
    }
    if (faulty) {
      PrintFaultCounters("a", ta.injector());
      PrintFaultCounters("b", tb.injector());
    }
    if (!obs.Finish() && rc == 0) rc = 1;
    return rc;
  }

  DistanceJoinOptions options;
  if (!ParseMetric(flags.Get("metric", "euclidean"), &options.metric)) {
    return 1;
  }
  if (!ParseKernel(flags, &options.kernel_isa)) return 1;
  if (!ParseScreen(flags, &options.screen_codes)) return 1;
  const std::string policy = flags.Get("policy", "even");
  if (policy == "even") {
    options.node_policy = sdj::NodeProcessingPolicy::kEven;
  } else if (policy == "basic") {
    options.node_policy = sdj::NodeProcessingPolicy::kBasic;
  } else if (policy == "simultaneous") {
    options.node_policy = sdj::NodeProcessingPolicy::kSimultaneous;
  } else {
    std::fprintf(stderr, "unknown policy: %s\n", policy.c_str());
    return 1;
  }
  options.min_distance = flags.GetDouble("min-distance", 0.0);
  options.max_distance = flags.GetDouble(
      "max-distance", std::numeric_limits<double>::infinity());
  options.max_pairs = static_cast<uint64_t>(flags.GetLong("k", 0));
  options.reverse_order = flags.GetBool("reverse");
  if (flags.GetBool("estimate")) {
    if (options.max_pairs == 0) {
      std::fprintf(stderr, "--estimate requires --k\n");
      return 1;
    }
    options.estimate_max_distance = true;
  }
  const long threads = flags.GetLong("threads", 1);
  if (threads < 1) {
    std::fprintf(stderr, "--threads must be >= 1\n");
    return 1;
  }
  options.num_threads = static_cast<int>(threads);
  if (!ParseShards(flags, &options.shards)) return 1;
  sdj::util::StopSource stop_source;
  options.stop_token = stop_source.token();

  options.metrics = obs.get();
  ta.pool().SetMetrics(obs.get());
  tb.pool().SetMetrics(obs.get());

  int rc;
  if (sdj::env_knobs::ResolveShards(options.shards) >= 2) {
    // The wrapper itself falls back to a single passthrough engine for
    // ineligible shapes (--reverse, --estimate), so no flag gymnastics here.
    sdj::ShardedDistanceJoin<2> join(ta, tb, options);
    rc = DriveJoin(&join, flags, &stop_source, tree_options.fault_injection,
                   obs.get());
  } else {
    DistanceJoin<2> join(ta, tb, options);
    rc = DriveJoin(&join, flags, &stop_source, tree_options.fault_injection,
                   obs.get());
  }
  if (faulty) {
    PrintFaultCounters("a", ta.injector());
    PrintFaultCounters("b", tb.injector());
  }
  if (!obs.Finish() && rc == 0) rc = 1;
  return rc;
}

int CmdSemiJoin(const Flags& flags) {
  std::vector<Point<2>> a;
  std::vector<Point<2>> b;
  if (!LoadRequired(flags, "a", &a) || !LoadRequired(flags, "b", &b)) return 1;
  sdj::RTreeOptions tree_options;
  const bool faulty = ApplyFaultFlags(flags, &tree_options);
  ObsSetup obs;  // before the trees — see CmdJoin
  obs.Init(flags);
  RTree<2> ta = IndexPoints(a, tree_options);
  RTree<2> tb = IndexPoints(b, tree_options);

  sdj::SemiJoinOptions options;
  if (!ParseMetric(flags.Get("metric", "euclidean"), &options.join.metric)) {
    return 1;
  }
  if (!ParseKernel(flags, &options.join.kernel_isa)) return 1;
  if (!ParseScreen(flags, &options.join.screen_codes)) return 1;
  options.join.max_pairs = static_cast<uint64_t>(flags.GetLong("k", 0));
  const std::string bound = flags.Get("bound", "globalall");
  if (bound == "none") {
    options.bound = sdj::SemiJoinBound::kNone;
  } else if (bound == "local") {
    options.bound = sdj::SemiJoinBound::kLocal;
  } else if (bound == "globalnodes") {
    options.bound = sdj::SemiJoinBound::kGlobalNodes;
  } else if (bound == "globalall") {
    options.bound = sdj::SemiJoinBound::kGlobalAll;
  } else {
    std::fprintf(stderr, "unknown bound: %s\n", bound.c_str());
    return 1;
  }
  const std::string filter = flags.Get("filter", "inside2");
  if (filter == "outside") {
    options.filter = sdj::SemiJoinFilter::kOutside;
  } else if (filter == "inside1") {
    options.filter = sdj::SemiJoinFilter::kInside1;
  } else if (filter == "inside2") {
    options.filter = sdj::SemiJoinFilter::kInside2;
  } else {
    std::fprintf(stderr, "unknown filter: %s\n", filter.c_str());
    return 1;
  }

  if (!ParseShards(flags, &options.join.shards)) return 1;
  sdj::util::StopSource stop_source;
  options.join.stop_token = stop_source.token();

  options.join.metrics = obs.get();
  ta.pool().SetMetrics(obs.get());
  tb.pool().SetMetrics(obs.get());

  int rc;
  if (sdj::env_knobs::ResolveShards(options.join.shards) >= 2) {
    sdj::ShardedDistanceSemiJoin<2> semi(ta, tb, options);
    rc = DriveJoin(&semi, flags, &stop_source, tree_options.fault_injection,
                   obs.get());
  } else {
    DistanceSemiJoin<2> semi(ta, tb, options);
    rc = DriveJoin(&semi, flags, &stop_source, tree_options.fault_injection,
                   obs.get());
  }
  if (faulty) {
    PrintFaultCounters("a", ta.injector());
    PrintFaultCounters("b", tb.injector());
  }
  if (!obs.Finish() && rc == 0) rc = 1;
  return rc;
}

int CmdNn(const Flags& flags) {
  std::vector<Point<2>> a;
  if (!LoadRequired(flags, "a", &a)) return 1;
  RTree<2> tree = IndexPoints(a);
  const Point<2> query{flags.GetDouble("x", 0.0), flags.GetDouble("y", 0.0)};
  const size_t k = static_cast<size_t>(flags.GetLong("k", 5));
  for (const auto& hit : sdj::KNearest(tree, query, k)) {
    std::printf("%llu,%.6f\n", static_cast<unsigned long long>(hit.id),
                hit.distance);
  }
  return 0;
}

int CmdStats(const Flags& flags) {
  std::vector<Point<2>> a;
  if (!LoadRequired(flags, "a", &a)) return 1;
  RTree<2> tree = IndexPoints(a);
  std::printf("objects: %zu\nheight: %d\nnodes: %zu (leaves %zu)\n",
              tree.size(), tree.height(), tree.num_nodes(),
              tree.num_leaves());
  std::printf("fan-out: max %u, min %u\n", tree.max_entries(),
              tree.min_entries());
  const Rect<2> mbr = tree.RootMbr();
  std::printf("extent: %s\n", mbr.ToString().c_str());
  std::string error;
  std::printf("valid: %s\n", tree.Validate(&error) ? "yes" : error.c_str());
  return 0;
}

// The serve command's session-kind rotation: index i gets kinds[i % 3].
// The kind is encoded in the crash-recovery tag ("<kind>:<i>") so --resume
// can rebuild the identical engine configuration (the snapshot fingerprint
// rejects anything else).
sdj::serve::SessionManager<2>::EngineFactory MakeServeFactory(
    const std::string& kind, const RTree<2>& ta, const RTree<2>& tb) {
  if (kind == "join" || kind == "manhattan") {
    const Metric metric =
        kind == "join" ? Metric::kEuclidean : Metric::kManhattan;
    return [&ta, &tb, metric](sdj::util::StopToken token)
               -> std::unique_ptr<sdj::serve::ErasedEngine<2>> {
      DistanceJoinOptions options;
      options.metric = metric;
      options.stop_token = std::move(token);
      return sdj::serve::Erase<2>(
          std::make_unique<DistanceJoin<2>>(ta, tb, options));
    };
  }
  if (kind == "semi") {
    return [&ta, &tb](sdj::util::StopToken token)
               -> std::unique_ptr<sdj::serve::ErasedEngine<2>> {
      sdj::SemiJoinOptions options;
      options.join.stop_token = std::move(token);
      return sdj::serve::Erase<2>(
          std::make_unique<DistanceSemiJoin<2>>(ta, tb, options));
    };
  }
  return nullptr;
}

int CmdServe(const Flags& flags) {
  std::vector<Point<2>> a;
  std::vector<Point<2>> b;
  if (!LoadRequired(flags, "a", &a) || !LoadRequired(flags, "b", &b)) return 1;
  ObsSetup obs;  // before the trees — see CmdJoin
  obs.Init(flags);
  RTree<2> ta = IndexPoints(a);
  RTree<2> tb = IndexPoints(b);
  ta.pool().SetMetrics(obs.get());
  tb.pool().SetMetrics(obs.get());

  sdj::serve::ServeOptions options;
  options.state_dir = flags.Get("state-dir", "");
  options.memory_budget_entries = static_cast<uint64_t>(
      flags.GetLong("budget-entries", 1L << 20));
  options.slice = std::chrono::microseconds(flags.GetLong("slice-us", 0));
  options.checkpoint_every =
      static_cast<uint64_t>(flags.GetLong("checkpoint-every", 0));
  options.snapshot_slots =
      static_cast<uint32_t>(flags.GetLong("snapshot-slots", 2));
  options.metrics = obs.get();
  const std::string fault_seed = flags.Get("inject-faults", "");
  if (!fault_seed.empty()) {
    // Targets the durable serving state (snapshot stores + session table);
    // the trees stay clean — per-tree faults are the join command's domain.
    sdj::storage::FaultInjectionOptions faults;
    faults.seed = static_cast<uint64_t>(std::atoll(fault_seed.c_str()));
    faults.transient_read_rate = flags.GetDouble("fault-read-rate", 0.01);
    faults.transient_write_rate = flags.GetDouble("fault-write-rate", 0.01);
    options.fault_injection = faults;
  }
  sdj::serve::SessionManager<2> manager(options);

  const bool resume = flags.GetBool("resume");
  if (resume && options.state_dir.empty()) {
    std::fprintf(stderr, "--resume requires --state-dir=<dir>\n");
    return 2;
  }
  const char* kinds[] = {"join", "semi", "manhattan"};
  if (resume) {
    const size_t recovered = manager.Recover(
        [&ta, &tb](const sdj::serve::SessionRecord& record) {
          const std::string kind =
              record.tag.substr(0, record.tag.find(':'));
          return MakeServeFactory(kind, ta, tb);
        });
    std::printf("# recovered %zu session(s)\n", recovered);
  } else {
    const long sessions = flags.GetLong("sessions", 4);
    if (sessions < 1) {
      std::fprintf(stderr, "--sessions must be >= 1\n");
      return 2;
    }
    for (long i = 0; i < sessions; ++i) {
      const std::string kind = kinds[i % 3];
      std::string tag = kind;
      tag += ':';
      tag += std::to_string(i);
      const auto admit =
          manager.Admit(tag, MakeServeFactory(kind, ta, tb));
      if (admit.status != sdj::serve::ServeStatus::kOk) {
        std::fprintf(stderr, "# session %s rejected: %s\n", tag.c_str(),
                     ServeStatusName(admit.status));
      }
    }
  }

  const long batch = std::max(1L, flags.GetLong("batch", 32));
  const uint64_t max_results =
      static_cast<uint64_t>(flags.GetLong("max-results", 0));
  const long suspend_rounds = flags.GetLong("suspend-after-rounds", 0);
  const long print = flags.GetLong("print", 3);

  struct Client {
    sdj::serve::SessionManager<2>::SessionId id;
    uint64_t produced = 0;
    bool done = false;
    bool failed = false;
  };
  std::vector<Client> clients;
  for (const auto id : manager.SessionIds()) clients.push_back({id});
  if (clients.empty()) {
    std::fprintf(stderr, "no sessions to serve\n");
    return 1;
  }

  bool suspended = false;
  long rounds = 0;
  bool active = true;
  while (active && !suspended) {
    active = false;
    for (Client& client : clients) {
      if (client.done) continue;
      active = true;
      for (long i = 0; i < batch && !client.done; ++i) {
        JoinResult<2> result;
        const sdj::serve::ServeStatus status =
            manager.Next(client.id, &result);
        switch (status) {
          case sdj::serve::ServeStatus::kOk:
            if (client.produced < static_cast<uint64_t>(print)) {
              std::printf("%llu,%llu,%llu,%.6f\n",
                          static_cast<unsigned long long>(client.id),
                          static_cast<unsigned long long>(result.id1),
                          static_cast<unsigned long long>(result.id2),
                          result.distance);
            }
            ++client.produced;
            if (max_results > 0 && client.produced >= max_results) {
              manager.Close(client.id);
              client.done = true;
            }
            break;
          case sdj::serve::ServeStatus::kYield:
            i = batch;  // slice expired: rotate to the next session
            break;
          case sdj::serve::ServeStatus::kExhausted:
            client.done = true;
            break;
          default:
            std::fprintf(stderr, "# session %llu: %s\n",
                         static_cast<unsigned long long>(client.id),
                         ServeStatusName(status));
            client.done = true;
            client.failed = true;
            break;
        }
      }
    }
    if (suspend_rounds > 0 && ++rounds >= suspend_rounds && active) {
      for (Client& client : clients) {
        if (!client.done) manager.Checkpoint(client.id);
      }
      suspended = true;
    }
  }

  bool any_failed = false;
  for (const Client& client : clients) {
    any_failed = any_failed || client.failed;
    const auto counters = manager.counters(client.id);
    std::printf(
        "# session %llu tag=%s state=%s results=%llu yields=%llu "
        "evictions=%llu rehydrations=%llu%s\n",
        static_cast<unsigned long long>(client.id),
        manager.tag(client.id).c_str(),
        SessionStateName(manager.state(client.id)),
        static_cast<unsigned long long>(counters.results),
        static_cast<unsigned long long>(counters.yields),
        static_cast<unsigned long long>(counters.evictions),
        static_cast<unsigned long long>(counters.rehydrations),
        counters.pinned_resident ? " pinned-resident" : "");
  }
  const sdj::serve::ServeStats& stats = manager.stats();
  std::printf(
      "# serve: %llu admitted, %llu recovered, %llu rejected, "
      "%llu evictions, %llu rehydrations, %llu pinned, %llu failed\n",
      static_cast<unsigned long long>(stats.admitted),
      static_cast<unsigned long long>(stats.recovered_sessions),
      static_cast<unsigned long long>(stats.rejected_overload),
      static_cast<unsigned long long>(stats.evictions),
      static_cast<unsigned long long>(stats.rehydrations),
      static_cast<unsigned long long>(stats.pinned_sessions),
      static_cast<unsigned long long>(stats.failed_sessions));
  int rc = 0;
  if (any_failed) rc = 3;
  if (suspended) {
    std::fprintf(stderr,
                 "suspended: %ld round(s) served, sessions checkpointed to "
                 "%s; rerun with --resume to continue\n",
                 rounds, options.state_dir.c_str());
    rc = 4;
  }
  if (!obs.Finish() && rc == 0) rc = 1;
  return rc;
}

int PrintUsage() {
  std::fprintf(stderr,
               "usage: sdjoin_cli <gen|join|semijoin|nn|stats|serve|scrub>"
               " [--flags]\n"
               "scrub: scrub --file=<path> [--kind=snapshot|pages]\n"
               "  [--page-size=4096] [--snapshot-slots=2] [--repair]\n"
               "  (offline checksum/slot verification and repair; see\n"
               "  tools/scrub_command.h — exits 1 when corruption is found)\n"
               "serving: serve --a= --b= [--sessions=4] [--batch=32]\n"
               "  [--slice-us=N] [--budget-entries=N] [--state-dir=DIR]\n"
               "  [--suspend-after-rounds=N] [--resume]\n"
               "  [--inject-faults=<seed>: snapshot-store faults]\n"
               "within-distance join: join --within=EPS (all pairs with\n"
               "  distance <= EPS, streamed ascending)\n"
               "durable cursors (join/semijoin): --snapshot=<file>\n"
               "  --checkpoint-every=N --suspend-after=N --max-seconds=S\n"
               "  --resume; combine freely with --threads=N (resume may\n"
               "  change the thread count) and --inject-faults=<seed>\n"
               "  (covers the snapshot store; torn snapshots fall back)\n"
               "sharding (join/semijoin): --shards=N runs N independent\n"
               "  best-first engines behind a k-way frontier merge\n"
               "  (DESIGN.md §18; output-identical; 0 = SDJ_SHARDS or 1;\n"
               "  resume requires the same shard count)\n"
               "observability (join/semijoin): --metrics prints a per-phase\n"
               "  latency table; --trace=<file> writes Chrome-trace JSON\n"
               "kernels (join/semijoin): --kernel=auto|scalar|sse2|avx2|\n"
               "  avx512 picks the SIMD distance-kernel path (bit-identical\n"
               "  output on every path; unsupported requests degrade)\n"
               "screening (join/semijoin): --screen=on|off toggles integer\n"
               "  code screening on quantized pages (default on, or the\n"
               "  SDJ_SCREEN env setting; never changes the pair stream)\n"
               "exit codes: 0 exhausted, 1 bad input, 2 usage error,\n"
               "  3 io-error (valid prefix), 4 suspended (resumable)\n"
               "see the header of tools/sdjoin_cli.cc for details\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return PrintUsage();
  const std::string command = argv[1];
  Flags flags(argc, argv, 2);
  if (!flags.ok()) return 2;
  if (command == "gen") return CmdGen(flags);
  if (command == "join") return CmdJoin(flags);
  if (command == "semijoin") return CmdSemiJoin(flags);
  if (command == "nn") return CmdNn(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "scrub") return sdj::tools::RunScrubCommand(argc, argv, 2);
  return PrintUsage();
}
