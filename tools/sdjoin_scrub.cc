// Standalone scrub/repair tool for sdjoin page files. All the logic lives
// in scrub_command.h (also reachable as `sdjoin_cli scrub`); see its file
// comment for flags and exit codes.
#include "scrub_command.h"

int main(int argc, char** argv) {
  return sdj::tools::RunScrubCommand(argc, argv, 1);
}
