// Durable cursor walkthrough: suspend an incremental join at a safe point,
// write a snapshot, then resume it in a *fresh* engine — exactly what a
// restarted process would do — and finish the pair stream.
//
//   $ ./examples/suspend_resume
//
// The printed stream is identical to an uninterrupted run: the pair
// comparator is a total order, so the snapshot pins the exact remaining
// sequence (DESIGN.md §11).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/distance_join.h"
#include "core/join_cursor.h"
#include "data/generators.h"
#include "rtree/rtree.h"
#include "util/stop_token.h"

namespace {

sdj::RTree<2> BuildTree(const std::vector<sdj::Point<2>>& points) {
  sdj::RTree<2> tree;
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(sdj::Rect<2>::FromPoint(points[i]), i);
  }
  return tree;
}

void Print(const sdj::JoinResult<2>& pair) {
  std::printf("  (%llu, %llu)  distance %.4f\n",
              static_cast<unsigned long long>(pair.id1),
              static_cast<unsigned long long>(pair.id2), pair.distance);
}

}  // namespace

int main() {
  const sdj::Rect<2> extent({0.0, 0.0}, {1000.0, 1000.0});
  const sdj::RTree<2> stores = BuildTree(sdj::data::GenerateUniform(300, extent, 7));
  const sdj::RTree<2> depots = BuildTree(sdj::data::GenerateUniform(300, extent, 8));
  const char* kSnapshot = "suspend_resume.snap";
  std::remove(kSnapshot);

  // Phase 1: stream pairs until "something comes up" — here, after 5 pairs
  // we request a stop. The engine suspends at the next safe point and the
  // cursor writes a final snapshot.
  std::printf("phase 1: first pairs, then suspend\n");
  {
    sdj::util::StopSource stop;
    sdj::DistanceJoinOptions options;
    options.max_pairs = 10;
    options.stop_token = stop.token();  // could also be a deadline
    sdj::DistanceJoin<2> join(stores, depots, options);

    sdj::CursorOptions cursor_options;
    cursor_options.snapshot_path = kSnapshot;
    cursor_options.checkpoint_every = 2;  // also checkpoint along the way
    sdj::JoinCursor<2, sdj::DistanceJoin<2>> cursor(&join, cursor_options);

    sdj::JoinResult<2> pair;
    int produced = 0;
    while (cursor.Next(&pair)) {
      Print(pair);
      if (++produced == 5) stop.RequestStop();
    }
    std::printf("status: %s, %llu checkpoints on disk\n",
                join.status() == sdj::JoinStatus::kSuspended ? "suspended"
                                                             : "done",
                static_cast<unsigned long long>(
                    cursor.cursor_stats().checkpoints_written));
  }  // engine, cursor, and trees' caches all torn down — as in a crash

  // Phase 2: a fresh engine with the SAME configuration over the same data;
  // ResumeLatest loads the newest valid snapshot and continues.
  std::printf("phase 2: resume from %s\n", kSnapshot);
  {
    sdj::DistanceJoinOptions options;
    options.max_pairs = 10;
    sdj::DistanceJoin<2> join(stores, depots, options);

    sdj::CursorOptions cursor_options;
    cursor_options.snapshot_path = kSnapshot;
    sdj::JoinCursor<2, sdj::DistanceJoin<2>> cursor(&join, cursor_options);
    if (!cursor.ResumeLatest()) {
      std::printf("no usable snapshot; would start from scratch\n");
    }

    sdj::JoinResult<2> pair;
    while (cursor.Next(&pair)) Print(pair);
    std::printf("final stats: %llu pairs reported in total\n",
                static_cast<unsigned long long>(join.stats().pairs_reported));
  }
  std::remove(kSnapshot);
  return 0;
}
