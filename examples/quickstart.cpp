// Quickstart: build two spatial indexes and stream the closest pairs.
//
//   $ ./examples/quickstart
//
// Demonstrates the minimal end-to-end flow: points -> R*-tree -> incremental
// distance join -> consume as many results as you need ("fast first").
#include <cstdio>
#include <vector>

#include "core/distance_join.h"
#include "geometry/point.h"
#include "rtree/rtree.h"

int main() {
  // Two tiny relations with a spatial attribute each.
  const std::vector<sdj::Point<2>> restaurants = {
      {1.0, 1.0}, {4.0, 2.0}, {9.0, 3.0}, {2.0, 8.0}, {7.0, 7.0}};
  const std::vector<sdj::Point<2>> hotels = {
      {1.5, 1.5}, {8.0, 8.0}, {5.0, 5.0}, {0.0, 9.0}};

  // Index both relations. Objects are stored directly in the leaves; the
  // object id is the row number.
  sdj::RTree<2> restaurant_index;
  for (size_t i = 0; i < restaurants.size(); ++i) {
    restaurant_index.Insert(sdj::Rect<2>::FromPoint(restaurants[i]), i);
  }
  sdj::RTree<2> hotel_index;
  for (size_t i = 0; i < hotels.size(); ++i) {
    hotel_index.Insert(sdj::Rect<2>::FromPoint(hotels[i]), i);
  }

  // Stream (restaurant, hotel) pairs by increasing distance and stop after
  // five — no full result is ever materialized.
  sdj::DistanceJoinOptions options;
  options.max_pairs = 5;
  sdj::DistanceJoin<2> join(restaurant_index, hotel_index, options);

  std::printf("five closest (restaurant, hotel) pairs:\n");
  sdj::JoinResult<2> pair;
  while (join.Next(&pair)) {
    std::printf("  restaurant %llu %s  <->  hotel %llu %s   distance %.3f\n",
                static_cast<unsigned long long>(pair.id1),
                restaurants[pair.id1].ToString().c_str(),
                static_cast<unsigned long long>(pair.id2),
                hotels[pair.id2].ToString().c_str(), pair.distance);
  }
  const sdj::JoinStats& stats = join.stats();
  std::printf("cost: %llu object distance calcs, %llu queue inserts\n",
              static_cast<unsigned long long>(stats.object_distance_calcs),
              static_cast<unsigned long long>(stats.queue_pushes));
  return 0;
}
