// Distance-range joins and farthest-first ordering (Sections 2.2.3, 2.2.5).
//
// Three variations over the same facility/customer data:
//   1. a [min, max] distance window ("customers between 2 and 10 km"),
//   2. STOP AFTER K with maximum-distance estimation (Section 2.2.4),
//   3. reverse ordering ("most isolated matches first").
//
//   $ ./examples/range_join
#include <cstdio>

#include "core/distance_join.h"
#include "data/generators.h"
#include "rtree/rtree.h"

namespace {

sdj::RTree<2> IndexOf(const std::vector<sdj::Point<2>>& points) {
  sdj::RTree<2> tree;
  std::vector<sdj::RTree<2>::Entry> entries;
  for (size_t i = 0; i < points.size(); ++i) {
    entries.push_back({sdj::Rect<2>::FromPoint(points[i]), i});
  }
  tree.BulkLoad(std::move(entries));
  return tree;
}

}  // namespace

int main() {
  const sdj::Rect<2> region({0.0, 0.0}, {100.0, 100.0});
  const auto facilities = sdj::data::GenerateUniform(500, region, 11);

  sdj::data::ClusterOptions customer_gen;
  customer_gen.num_points = 20000;
  customer_gen.extent = region;
  customer_gen.num_clusters = 25;
  customer_gen.seed = 12;
  const auto customers = sdj::data::GenerateClustered(customer_gen);

  sdj::RTree<2> facility_index = IndexOf(facilities);
  sdj::RTree<2> customer_index = IndexOf(customers);

  // 1. Window query: pairs with distance in [2, 10] km, nearest first.
  {
    sdj::DistanceJoinOptions options;
    options.min_distance = 2.0;
    options.max_distance = 10.0;
    sdj::DistanceJoin<2> join(facility_index, customer_index, options);
    sdj::JoinResult<2> pair;
    long count = 0;
    double first = -1.0;
    double last = 0.0;
    while (join.Next(&pair)) {
      if (first < 0) first = pair.distance;
      last = pair.distance;
      ++count;
    }
    std::printf("window [2, 10] km: %ld pairs, distances %.3f .. %.3f\n",
                count, first, last);
    std::printf("  range pruning rejected %llu candidate pairs\n",
                static_cast<unsigned long long>(join.stats().pruned_by_range));
  }

  // 2. STOP AFTER 100 with estimation: the engine tightens its own Dmax.
  {
    sdj::DistanceJoinOptions options;
    options.max_pairs = 100;
    options.estimate_max_distance = true;
    sdj::DistanceJoin<2> join(facility_index, customer_index, options);
    sdj::JoinResult<2> pair;
    while (join.Next(&pair)) {
    }
    std::printf(
        "STOP AFTER 100 with estimation: effective Dmax tightened to %.3f "
        "km,\n  queue peaked at %llu pairs (vs. millions unbounded)\n",
        join.effective_max_distance(),
        static_cast<unsigned long long>(join.stats().max_queue_size));
  }

  // 3. Farthest pairs first, capped to the region diameter.
  {
    sdj::DistanceJoinOptions options;
    options.reverse_order = true;
    options.max_pairs = 3;
    sdj::DistanceJoin<2> join(facility_index, customer_index, options);
    sdj::JoinResult<2> pair;
    std::printf("three farthest (facility, customer) pairs:\n");
    while (join.Next(&pair)) {
      std::printf("  facility %llu <-> customer %llu: %.3f km\n",
                  static_cast<unsigned long long>(pair.id1),
                  static_cast<unsigned long long>(pair.id2), pair.distance);
    }
  }
  return 0;
}
