// "Find the city nearest to any river, such that the city has a population
// of more than 5 million" — the pipelined-query scenario from Sections 1 and
// 5 of the paper.
//
// Because the join is incremental, the query engine can lay a selection on
// top of the streaming result and stop at the first qualifying pair (option 1
// of Section 5), instead of computing a full join or building a throwaway
// index over the filtered cities.
//
//   $ ./examples/city_river
#include <cstdio>
#include <vector>

#include "core/distance_join.h"
#include "data/generators.h"
#include "rtree/rtree.h"
#include "util/rng.h"

namespace {

struct City {
  sdj::Point<2> location;
  long population;
};

}  // namespace

int main() {
  const sdj::Rect<2> country({0.0, 0.0}, {2000.0, 2000.0});
  sdj::Rng rng(42);

  // 5,000 cities with a skewed population distribution.
  std::vector<City> cities;
  for (int i = 0; i < 5000; ++i) {
    const double z = rng.NextDouble();
    const long population = static_cast<long>(5000.0 / (0.0005 + z * z));
    cities.push_back({{rng.Uniform(0, 2000), rng.Uniform(0, 2000)},
                      population});
  }
  // River sample points (polyline walks).
  sdj::data::PolylineOptions river_gen;
  river_gen.num_points = 20000;
  river_gen.extent = country;
  river_gen.num_polylines = 12;
  river_gen.seed = 7;
  const auto rivers = sdj::data::GeneratePolylines(river_gen);

  sdj::RTree<2> city_index;
  for (size_t i = 0; i < cities.size(); ++i) {
    city_index.Insert(sdj::Rect<2>::FromPoint(cities[i].location), i);
  }
  sdj::RTree<2> river_index;
  for (size_t i = 0; i < rivers.size(); ++i) {
    river_index.Insert(sdj::Rect<2>::FromPoint(rivers[i]), i);
  }

  const long kMinPopulation = 5000000;
  sdj::DistanceJoinOptions options;
  sdj::DistanceJoin<2> join(city_index, river_index, options);

  sdj::JoinResult<2> pair;
  long scanned = 0;
  while (join.Next(&pair)) {
    ++scanned;
    if (cities[pair.id1].population > kMinPopulation) {
      std::printf(
          "nearest big city to any river: city %llu at %s\n"
          "  population %ld, %.2f km from river point %s\n",
          static_cast<unsigned long long>(pair.id1),
          cities[pair.id1].location.ToString().c_str(),
          cities[pair.id1].population, pair.distance,
          rivers[pair.id2].ToString().c_str());
      break;
    }
  }
  std::printf(
      "pipeline consumed %ld candidate pairs before the filter matched;\n"
      "the join expanded %llu node pairs of %zu + %zu total nodes.\n",
      scanned, static_cast<unsigned long long>(join.stats().nodes_expanded),
      city_index.num_nodes(), river_index.num_nodes());

  // Variant: "cities within 5 km of any river", streamed in distance order.
  sdj::DistanceJoinOptions range_options;
  range_options.max_distance = 5.0;
  sdj::DistanceJoin<2> range_join(city_index, river_index, range_options);
  long within = 0;
  sdj::DynamicBitset seen(cities.size());
  while (range_join.Next(&pair)) {
    if (seen.TestAndSet(pair.id1)) ++within;
  }
  std::printf("%ld distinct cities lie within 5 km of a river.\n", within);
  return 0;
}
