// Store/warehouse assignment with the distance semi-join (Section 1 of the
// paper): for every store, find its closest warehouse. The complete result is
// a clustering of the stores — a discrete Voronoi diagram with the warehouses
// as sites — obtained from a database primitive instead of a computational-
// geometry library.
//
//   $ ./examples/store_warehouse
#include <cstdio>
#include <vector>

#include "core/semi_join.h"
#include "data/generators.h"
#include "rtree/rtree.h"

int main() {
  const sdj::Rect<2> region({0.0, 0.0}, {100.0, 100.0});

  // 2,000 stores clustered around shopping districts; 12 warehouses.
  sdj::data::ClusterOptions store_gen;
  store_gen.num_points = 2000;
  store_gen.extent = region;
  store_gen.num_clusters = 15;
  store_gen.spread_fraction = 0.03;
  store_gen.seed = 2024;
  const auto stores = sdj::data::GenerateClustered(store_gen);
  const auto warehouses = sdj::data::GenerateUniform(12, region, 7);

  sdj::RTree<2> store_index;
  for (size_t i = 0; i < stores.size(); ++i) {
    store_index.Insert(sdj::Rect<2>::FromPoint(stores[i]), i);
  }
  sdj::RTree<2> warehouse_index;
  for (size_t i = 0; i < warehouses.size(); ++i) {
    warehouse_index.Insert(sdj::Rect<2>::FromPoint(warehouses[i]), i);
  }

  // Semi-join with the strongest pruning configuration (GlobalAll).
  sdj::SemiJoinOptions options;
  options.bound = sdj::SemiJoinBound::kGlobalAll;
  sdj::DistanceSemiJoin<2> semi(store_index, warehouse_index, options);

  std::vector<int> cluster_size(warehouses.size(), 0);
  std::vector<double> cluster_max_distance(warehouses.size(), 0.0);
  sdj::JoinResult<2> pair;
  int shown = 0;
  std::printf("first assignments (store -> warehouse), closest first:\n");
  while (semi.Next(&pair)) {
    ++cluster_size[pair.id2];
    if (pair.distance > cluster_max_distance[pair.id2]) {
      cluster_max_distance[pair.id2] = pair.distance;
    }
    if (shown < 5) {
      std::printf("  store %4llu -> warehouse %2llu  (%.3f km)\n",
                  static_cast<unsigned long long>(pair.id1),
                  static_cast<unsigned long long>(pair.id2), pair.distance);
      ++shown;
    }
  }

  std::printf("\ndiscrete Voronoi cells (one per warehouse):\n");
  for (size_t w = 0; w < warehouses.size(); ++w) {
    std::printf("  warehouse %2zu at %s: %4d stores, farthest %.2f km\n", w,
                warehouses[w].ToString().c_str(), cluster_size[w],
                cluster_max_distance[w]);
  }
  const sdj::JoinStats stats = semi.stats();
  std::printf(
      "\ncost: %llu pairs reported, %llu pruned by d_max bounds, "
      "%llu duplicates filtered\n",
      static_cast<unsigned long long>(stats.pairs_reported),
      static_cast<unsigned long long>(stats.pruned_by_bound),
      static_cast<unsigned long long>(stats.filtered_reported));
  return 0;
}
