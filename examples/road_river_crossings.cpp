// "Find the intersections of roads and rivers in order of distance from a
// given house" — the secondary-ordering extension of Section 2.2.5,
// implemented by OrderedIntersectionJoin.
//
//   $ ./examples/road_river_crossings
#include <cstdio>
#include <vector>

#include "core/intersection_join.h"
#include "rtree/rtree.h"
#include "util/rng.h"

namespace {

// Chops a random-walk polyline into small axis-aligned segment boxes.
std::vector<sdj::Rect<2>> MakeSegments(int walks, int segments_per_walk,
                                       uint64_t seed) {
  sdj::Rng rng(seed);
  std::vector<sdj::Rect<2>> segments;
  for (int w = 0; w < walks; ++w) {
    double x = rng.Uniform(100, 900);
    double y = rng.Uniform(100, 900);
    double heading = rng.Uniform(0, 6.2831853);
    for (int s = 0; s < segments_per_walk; ++s) {
      const double nx = x + 25.0 * std::cos(heading);
      const double ny = y + 25.0 * std::sin(heading);
      segments.push_back({{std::min(x, nx), std::min(y, ny)},
                          {std::max(x, nx), std::max(y, ny)}});
      x = nx;
      y = ny;
      heading += rng.Gaussian(0.0, 0.35);
    }
  }
  return segments;
}

sdj::RTree<2> IndexSegments(const std::vector<sdj::Rect<2>>& segments) {
  sdj::RTree<2> tree;
  std::vector<sdj::RTree<2>::Entry> entries;
  for (size_t i = 0; i < segments.size(); ++i) {
    entries.push_back({segments[i], i});
  }
  tree.BulkLoad(std::move(entries));
  return tree;
}

}  // namespace

int main() {
  const auto roads = MakeSegments(60, 80, 21);
  const auto rivers = MakeSegments(15, 120, 22);
  sdj::RTree<2> road_index = IndexSegments(roads);
  sdj::RTree<2> river_index = IndexSegments(rivers);

  const sdj::Point<2> house{500.0, 500.0};
  sdj::OrderedIntersectionJoin<2> crossings(road_index, river_index, house);

  std::printf("five crossings nearest to the house at %s:\n",
              house.ToString().c_str());
  sdj::JoinResult<2> pair;
  int shown = 0;
  int total = 0;
  while (crossings.Next(&pair)) {
    if (shown < 5) {
      const sdj::Rect<2> overlap =
          roads[pair.id1].IntersectionWith(rivers[pair.id2]);
      std::printf("  road seg %4llu x river seg %4llu near %s  (%.1f away)\n",
                  static_cast<unsigned long long>(pair.id1),
                  static_cast<unsigned long long>(pair.id2),
                  overlap.Center().ToString().c_str(), pair.distance);
      ++shown;
    }
    ++total;
  }
  std::printf("%d crossings in total; the five nearest cost %llu node-pair\n"
              "expansions out of %zu + %zu index nodes.\n",
              total,
              static_cast<unsigned long long>(crossings.stats().nodes_expanded),
              road_index.num_nodes(), river_index.num_nodes());
  return 0;
}
