// Umbrella header: the whole sdjoin public API in one include.
//
//   #include "sdjoin.h"
//
//   sdj::RTree<2> cities, rivers;                  // spatial indexes
//   sdj::DistanceJoin<2> join(cities, rivers, {}); // ordered pair stream
//   sdj::DistanceSemiJoin<2> semi(cities, rivers, {});
//
// Individual headers remain includable for finer-grained builds; see
// README.md for the module map.
#ifndef SDJOIN_SDJOIN_H_
#define SDJOIN_SDJOIN_H_

#include "baseline/nested_loop_join.h"
#include "baseline/nn_semi_join.h"
#include "baseline/within_join.h"
#include "core/convenience.h"
#include "core/cost_model.h"
#include "core/distance_join.h"
#include "core/intersection_join.h"
#include "core/join_cursor.h"
#include "core/semi_join.h"
#include "core/within_join.h"
#include "data/dataset_io.h"
#include "data/generators.h"
#include "geometry/distance.h"
#include "geometry/segment.h"
#include "nn/inc_farthest.h"
#include "nn/inc_nearest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "quadtree/quadtree.h"
#include "rtree/rtree.h"

#endif  // SDJOIN_SDJOIN_H_
