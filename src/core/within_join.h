// Incremental within-distance (epsilon) join: every object pair with
// distance <= eps, streamed by non-decreasing distance — the incremental
// counterpart of baseline/within_join.h (equivalently, a DistanceJoin
// restricted to [0, eps], specialized to the one-bound ladder).
//
// Written as a policy over the shared best-first core (DESIGN.md §13) to
// demonstrate how little a new traversal needs: seeding, an Even-policy
// expansion using the core's batch-scored classify, result filling, and a
// snapshot fingerprint. Everything else — queue tiers, suspension, kIoError
// propagation, parallel classify, serialization — is inherited.
#ifndef SDJOIN_CORE_WITHIN_JOIN_H_
#define SDJOIN_CORE_WITHIN_JOIN_H_

#include <cmath>
#include <cstdint>

#include "core/best_first.h"
#include "core/env_knobs.h"
#include "core/hybrid_queue.h"
#include "core/join_result.h"
#include "core/pair_entry.h"
#include "geometry/code_screen.h"
#include "geometry/metrics.h"
#include "geometry/rect_batch.h"
#include "obs/metrics.h"
#include "rtree/rtree.h"
#include "util/check.h"
#include "util/stop_token.h"

namespace sdj {

struct WithinJoinOptions {
  double epsilon = 0.0;  // report pairs with distance <= epsilon (inclusive)
  Metric metric = Metric::kEuclidean;
  TieBreakPolicy tie_break = TieBreakPolicy::kDepthFirst;
  bool use_hybrid_queue = false;  // Section 3.2 tiered queue
  HybridQueueOptions hybrid;
  // Sharded classify, output-identical to serial. 0 = SDJ_THREADS default.
  int num_threads = 0;
  // Shard count for the ShardedWithinJoin wrapper (DESIGN.md §18); a raw
  // IncWithinJoin ignores it. 0 = SDJ_SHARDS default (1 when unset).
  int shards = 0;
  // Internal (core/shard_plan.h): skip root seeding; the plan adopts
  // externally planned entries instead. Not for direct use.
  bool defer_seed = false;
  util::StopToken stop_token;    // cooperative suspension (DESIGN.md §11)
  obs::Metrics* metrics = nullptr;  // observability sink (DESIGN.md §12)
  // SIMD path for the batched kernels (DESIGN.md §15); bit-identical to
  // scalar on every path, so it can never change the pair stream.
  simd::Isa kernel_isa = simd::Isa::kAuto;
  // Integer code screening on quantized pages (DESIGN.md §17). The within
  // join always has a fixed finite bound (epsilon) and the one-bound fast
  // ladder, so screening engages whenever the tree is quantized; the pair
  // stream and pre-existing stats stay byte-identical either way.
  bool screen_codes = code_screen::DefaultEnabled();
};

// Usage mirrors DistanceJoin:
//
//   IncWithinJoin<2> join(roads, rivers, {.epsilon = 2.5});
//   JoinResult<2> pair;
//   while (join.Next(&pair)) Use(pair);   // distances ascend, all <= eps
template <int Dim, typename Index = RTree<Dim>>
class IncWithinJoin
    : public BestFirstEngine<Dim, IncWithinJoin<Dim, Index>, Index,
                             JoinResult<Dim>> {
  using Base = BestFirstEngine<Dim, IncWithinJoin<Dim, Index>, Index,
                               JoinResult<Dim>>;
  friend Base;

 public:
  IncWithinJoin(const Index& tree1, const Index& tree2,
                const WithinJoinOptions& options)
      : Base({&tree1.pool(), &tree2.pool()}, MakeConfig(options)),
        tree1_(tree1),
        tree2_(tree2),
        options_(options),
        isa_(simd::Resolve(options.kernel_isa)) {
    SDJ_CHECK(options.epsilon >= 0.0);
    spec_.max_distance = options.epsilon;
    spec_.metric = options.metric;
    if (options.defer_seed) return;
    if (tree1.empty() || tree2.empty()) return;
    left_ = {Item{tree1.RootMbr(), tree1.root(),
                  static_cast<int16_t>(tree1.root_level()),
                  JoinItemKind::kNode}};
    right_ = {Item{tree2.RootMbr(), tree2.root(),
                   static_cast<int16_t>(tree2.root_level()),
                   JoinItemKind::kNode}};
    this->ClassifyAndEnqueue(
        spec_, 1, /*pre_mind=*/nullptr, /*object_pair=*/false,
        [&](size_t) -> const Item& { return left_[0]; },
        [&](size_t) -> const Item& { return right_[0]; });
  }

  // Same contract as DistanceJoin::SaveState/RestoreState.
  bool SaveState(snapshot::Blob* out) {
    if (!this->SaveAllowed()) return false;
    out->PutU32(kStateMagic);
    out->PutU32(kStateVersion);
    out->PutU32(static_cast<uint32_t>(Dim));
    out->PutU8(static_cast<uint8_t>(options_.metric));
    out->PutU8(static_cast<uint8_t>(options_.tie_break));
    out->PutDouble(options_.epsilon);
    out->PutBool(options_.screen_codes);
    out->PutBool(options_.use_hybrid_queue);
    out->PutDouble(options_.hybrid.tier_width);
    out->PutU64(tree1_.size());
    out->PutU64(tree2_.size());
    return this->SaveCore(out);
  }

  bool RestoreState(snapshot::BlobReader* in) {
    if (in->GetU32() != kStateMagic) return false;
    if (in->GetU32() != kStateVersion) return false;
    if (in->GetU32() != static_cast<uint32_t>(Dim)) return false;
    if (in->GetU8() != static_cast<uint8_t>(options_.metric)) return false;
    if (in->GetU8() != static_cast<uint8_t>(options_.tie_break)) return false;
    if (in->GetDouble() != options_.epsilon) return false;
    if (in->GetBool() != options_.screen_codes) return false;
    if (in->GetBool() != options_.use_hybrid_queue) return false;
    if (in->GetDouble() != options_.hybrid.tier_width) return false;
    if (in->GetU64() != tree1_.size()) return false;
    if (in->GetU64() != tree2_.size()) return false;
    if (!in->ok()) return false;
    return this->RestoreCore(in);
  }

 private:
  using Item = typename Base::Item;
  using Entry = typename Base::Entry;
  using Base::batch1_, Base::batch2_, Base::refs1_, Base::refs2_;
  using Base::left_, Base::right_, Base::mind1_, Base::mind2_;
  using Base::stats_, Base::MarkIoError, Base::PinDecode;
  using Base::PinDecodeScreened;

  static constexpr uint32_t kStateMagic = 0x534A5745;  // "SJWE"
  // Version 2: screen_codes in the fingerprint, screening counters in the
  // shared stats section.
  static constexpr uint32_t kStateVersion = 2;

  static BestFirstConfig MakeConfig(const WithinJoinOptions& options) {
    return BestFirstConfig{options.tie_break,
                           options.use_hybrid_queue,
                           options.hybrid,
                           env_knobs::ResolveThreads(options.num_threads),
                           options.stop_token,
                           options.metrics};
  }

  PopAction OnPopped(const Entry& e, JoinResult<Dim>* out) {
    if (!e.IsObjectPair()) return PopAction::kExpand;
    // MINDIST <= eps was enforced at enqueue and is exact for object pairs.
    out->id1 = e.item1.ref;
    out->id2 = e.item2.ref;
    out->rect1 = e.item1.rect;
    out->rect2 = e.item2.rect;
    out->distance = e.distance;
    ++stats_.pairs_reported;
    return PopAction::kReported;
  }

  // Even policy (Section 2.2.2): expand the node at the shallower level.
  bool Expand(const Entry& e) {
    const bool two = e.item1.is_node() && e.item2.is_node() &&
                     e.item2.level > e.item1.level;
    const bool second = two || !e.item1.is_node();
    const Index& tree = second ? tree2_ : tree1_;
    const Item& fixed = second ? e.item1 : e.item2;
    auto& batch = second ? batch2_ : batch1_;
    auto& refs = second ? refs2_ : refs1_;
    auto& mind = second ? mind2_ : mind1_;
    auto& items = second ? right_ : left_;
    bool leaf;
    int level;
    const uint64_t ref = second ? e.item2.ref : e.item1.ref;
    size_t screened = 0;
    if (options_.screen_codes && std::isfinite(options_.epsilon)) {
      if (!PinDecodeScreened(tree, ref, fixed.rect, options_.epsilon, isa_,
                             &batch, &refs, &leaf, &level, &screened)) {
        return MarkIoError();
      }
    } else if (!PinDecode(tree, ref, &batch, &refs, &leaf, &level)) {
      return MarkIoError();
    }
    ++stats_.nodes_expanded;
    mind.resize(batch.size());
    MinDistBatch(batch, fixed.rect, options_.metric, mind.data(), 0,
                 batch.size(), isa_);
    ++stats_.batch_kernel_invocations;
    this->BuildChildItems(batch, refs, leaf, level, JoinItemKind::kObject,
                          &items);
    const bool object_pair = leaf && fixed.kind == JoinItemKind::kObject;
    // Screened-out entries would have reached the classify ladder's
    // `d > epsilon` rung: charge exactly what it charges there.
    if (screened > 0) {
      stats_.total_distance_calcs += screened;
      stats_.pruned_by_range += screened;
      if (object_pair) stats_.object_distance_calcs += screened;
    }
    this->ClassifyAndEnqueue(
        spec_, batch.size(), mind.data(), object_pair,
        [&](size_t i) -> const Item& { return second ? fixed : items[i]; },
        [&](size_t i) -> const Item& { return second ? items[i] : fixed; });
    return true;
  }

  const Index& tree1_;
  const Index& tree2_;
  const WithinJoinOptions options_;
  const simd::Isa isa_;  // kernel path, resolved once at construction
  typename Base::ClassifySpec spec_;
};

}  // namespace sdj

#endif  // SDJOIN_CORE_WITHIN_JOIN_H_
