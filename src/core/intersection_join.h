// Spatial join with a secondary ordering (the second extension of Section
// 2.2.5): report *intersecting* object pairs — a distance join with maximum
// distance 0 — ordered by the distance of the intersection from an anchor
// point. The paper's example: "find the intersections of roads and rivers in
// order of distance from a given house".
//
// The construction follows the paper's suggestion: the pair "distance
// function" returns infinity for non-intersecting pairs (pruning them) and
// otherwise MINDIST(anchor, rect1 ∩ rect2), which is consistent — shrinking
// either rect shrinks the intersection and can only increase the key — so
// the incremental machinery applies unchanged.
#ifndef SDJOIN_CORE_INTERSECTION_JOIN_H_
#define SDJOIN_CORE_INTERSECTION_JOIN_H_

#include <cstdint>
#include <memory>

#include "core/join_result.h"
#include "core/join_stats.h"
#include "core/pair_entry.h"
#include "core/pair_queue.h"
#include "geometry/distance.h"
#include "geometry/metrics.h"
#include "rtree/rtree.h"
#include "util/check.h"

namespace sdj {

// Streams intersecting (o1, o2) pairs by increasing distance of their
// intersection from `anchor`. Extended (rectangle) objects produce genuine
// overlap regions; point objects intersect only when coincident.
//
//   OrderedIntersectionJoin<2> join(roads, rivers, house);
//   JoinResult<2> crossing;
//   while (join.Next(&crossing)) ...   // nearest crossings first
template <int Dim>
class OrderedIntersectionJoin {
 public:
  OrderedIntersectionJoin(const RTree<Dim>& tree1, const RTree<Dim>& tree2,
                          const Point<Dim>& anchor,
                          Metric metric = Metric::kEuclidean)
      : tree1_(tree1),
        tree2_(tree2),
        anchor_(anchor),
        metric_(metric),
        queue_(PairEntryCompare<Dim>{TieBreakPolicy::kDepthFirst}) {
    if (tree1.empty() || tree2.empty()) return;
    Item root1{tree1.RootMbr(), tree1.root(),
               static_cast<int16_t>(tree1.root_level()), JoinItemKind::kNode};
    Item root2{tree2.RootMbr(), tree2.root(),
               static_cast<int16_t>(tree2.root_level()), JoinItemKind::kNode};
    TryEnqueue(root1, root2);
  }

  // Produces the next intersecting pair; `out->distance` is the distance
  // from the anchor to the pair's intersection region (NOT the pair
  // distance, which is 0 by construction). Returns false when exhausted.
  bool Next(JoinResult<Dim>* out) {
    SDJ_CHECK(out != nullptr);
    while (!queue_.Empty()) {
      const Entry e = queue_.Pop();
      ++stats_.queue_pops;
      if (e.IsObjectPair()) {
        out->id1 = e.item1.ref;
        out->id2 = e.item2.ref;
        out->rect1 = e.item1.rect;
        out->rect2 = e.item2.rect;
        out->distance = e.distance;
        ++stats_.pairs_reported;
        return true;
      }
      Expand(e);
    }
    return false;
  }

  const JoinStats& stats() const { return stats_; }

 private:
  using Item = JoinItem<Dim>;
  using Entry = PairEntry<Dim>;

  void TryEnqueue(const Item& a, const Item& b) {
    ++stats_.total_distance_calcs;
    if (!a.rect.Intersects(b.rect)) {
      ++stats_.pruned_by_range;  // the "infinite distance" of the paper
      return;
    }
    Entry e;
    e.distance = MinDist(anchor_, a.rect.IntersectionWith(b.rect), metric_);
    e.key = e.distance;
    e.item1 = a;
    e.item2 = b;
    e.seq = next_seq_++;
    FinalizePairMetadata(&e);
    queue_.Push(e);
    ++stats_.queue_pushes;
    stats_.max_queue_size =
        std::max<uint64_t>(stats_.max_queue_size, queue_.Size());
  }

  void Expand(const Entry& e) {
    // Even traversal: expand the shallower node of node/node pairs.
    const bool expand_second =
        !e.item1.is_node() ||
        (e.item2.is_node() && e.item2.level > e.item1.level);
    const RTree<Dim>& tree = expand_second ? tree2_ : tree1_;
    const Item& node_item = expand_second ? e.item2 : e.item1;
    const Item& other = expand_second ? e.item1 : e.item2;
    ++stats_.nodes_expanded;
    typename RTree<Dim>::PinnedNode node =
        tree.Pin(static_cast<storage::PageId>(node_item.ref));
    const bool leaf = node.is_leaf();
    for (uint32_t i = 0; i < node.count(); ++i) {
      Item child;
      child.rect = node.rect(i);
      child.ref = node.ref(i);
      child.level = leaf ? -1 : static_cast<int16_t>(node.level() - 1);
      child.kind = leaf ? JoinItemKind::kObject : JoinItemKind::kNode;
      if (expand_second) {
        TryEnqueue(other, child);
      } else {
        TryEnqueue(child, other);
      }
    }
  }

  const RTree<Dim>& tree1_;
  const RTree<Dim>& tree2_;
  const Point<Dim> anchor_;
  const Metric metric_;
  MemoryPairQueue<Dim> queue_;
  uint64_t next_seq_ = 0;
  JoinStats stats_;
};

}  // namespace sdj

#endif  // SDJOIN_CORE_INTERSECTION_JOIN_H_
