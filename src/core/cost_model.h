// Analytical cost model for distance joins — the Section 5 future-work item
// ("to enable a query optimizer to choose between these options requires a
// cost model for the relevant algorithms", citing the Theodoridis-Sellis
// style models for R-tree spatial joins).
//
// The model profiles both R-trees (per-level node counts and average MBR
// extents) and predicts, for a distance join bounded by `max_distance`:
//   * the number of result pairs, via the Minkowski-sum selectivity of the
//     distance ball over the common data extent;
//   * the number of node-pair visits per level, via the probability that two
//     random level-l MBRs come within `max_distance` of each other.
// Assumptions: uniformly distributed data within each tree's extent and
// independence between the relations — the standard cost-model premises. On
// clustered data the estimates degrade gracefully (see
// tests/cost_model_test.cc and bench/bench_cost_model.cc for measured
// accuracy).
#ifndef SDJOIN_CORE_COST_MODEL_H_
#define SDJOIN_CORE_COST_MODEL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "geometry/metrics.h"
#include "geometry/rect.h"
#include "rtree/rtree.h"
#include "util/check.h"

namespace sdj {

// Per-level aggregate statistics of one R-tree.
template <int Dim>
struct LevelProfile {
  int level = 0;          // 0 = leaves
  uint64_t nodes = 0;     // node count at this level
  double avg_extent[Dim] = {};  // mean MBR side length per dimension
};

// Whole-tree statistics used by the cost model.
template <int Dim>
struct TreeProfile {
  uint64_t objects = 0;
  Rect<Dim> extent;  // MBR of the whole tree
  double avg_object_extent[Dim] = {};  // mean object MBR side lengths
  std::vector<LevelProfile<Dim>> levels;  // index 0 = leaves
};

// Computes a TreeProfile by one full traversal (O(#nodes) page reads).
template <int Dim>
TreeProfile<Dim> ProfileTree(const RTree<Dim>& tree) {
  TreeProfile<Dim> profile;
  profile.objects = tree.size();
  if (tree.empty()) {
    profile.extent = Rect<Dim>::Empty();
    return profile;
  }
  profile.extent = tree.RootMbr();
  profile.levels.resize(tree.height());
  for (int l = 0; l < tree.height(); ++l) profile.levels[l].level = l;

  // Iterative traversal recording each node's MBR extents at its level.
  struct Frame {
    storage::PageId page;
    Rect<Dim> mbr;
  };
  std::vector<Frame> stack;
  stack.push_back({tree.root(), tree.RootMbr()});
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    typename RTree<Dim>::PinnedNode node = tree.Pin(frame.page);
    LevelProfile<Dim>& level = profile.levels[node.level()];
    ++level.nodes;
    for (int d = 0; d < Dim; ++d) {
      level.avg_extent[d] += frame.mbr.hi[d] - frame.mbr.lo[d];
    }
    if (!node.is_leaf()) {
      for (uint32_t i = 0; i < node.count(); ++i) {
        stack.push_back(
            {static_cast<storage::PageId>(node.ref(i)), node.rect(i)});
      }
    } else {
      for (uint32_t i = 0; i < node.count(); ++i) {
        const Rect<Dim> rect = node.rect(i);
        for (int d = 0; d < Dim; ++d) {
          profile.avg_object_extent[d] += rect.hi[d] - rect.lo[d];
        }
      }
    }
  }
  if (profile.objects > 0) {
    for (int d = 0; d < Dim; ++d) {
      profile.avg_object_extent[d] /= profile.objects;
    }
  }
  for (LevelProfile<Dim>& level : profile.levels) {
    if (level.nodes > 0) {
      for (int d = 0; d < Dim; ++d) level.avg_extent[d] /= level.nodes;
    }
  }
  return profile;
}

// Volume of the metric's unit ball relative to the enclosing [-1,1]^Dim cube
// (1 for Chessboard; pi/4 in 2-D Euclidean; 1/Dim! for Manhattan).
inline double UnitBallVolumeRatio(Metric metric, int dim) {
  switch (metric) {
    case Metric::kChessboard:
      return 1.0;
    case Metric::kManhattan:
      return 1.0 / std::tgamma(dim + 1);
    case Metric::kEuclidean: {
      const double ball =
          std::pow(3.14159265358979323846, dim / 2.0) /
          std::tgamma(dim / 2.0 + 1.0);
      return ball / std::pow(2.0, dim);
    }
  }
  return 1.0;
}

// Predicted costs for a distance join with a maximum distance.
struct DistanceJoinCostEstimate {
  // Result pairs with distance <= max_distance.
  double expected_result_pairs = 0.0;
  // Node-pair expansions the bounded traversal performs.
  double expected_node_pair_visits = 0.0;
  // Per-level breakdown (index 0 = leaf level pairs).
  std::vector<double> node_pairs_per_level;
};

// Estimates the cost of DistanceJoin(tree1, tree2) with
// options.max_distance = `max_distance`.
template <int Dim>
DistanceJoinCostEstimate EstimateDistanceJoinCost(
    const RTree<Dim>& tree1, const RTree<Dim>& tree2, double max_distance,
    Metric metric = Metric::kEuclidean) {
  SDJ_CHECK(max_distance >= 0.0);
  DistanceJoinCostEstimate estimate;
  if (tree1.empty() || tree2.empty()) return estimate;
  const TreeProfile<Dim> p1 = ProfileTree(tree1);
  const TreeProfile<Dim> p2 = ProfileTree(tree2);

  // The joint domain: the union of both extents (pairs can only arise where
  // the extents come within max_distance, captured by the per-dim factors).
  Rect<Dim> domain = p1.extent;
  domain.ExpandToInclude(p2.extent);

  // Result selectivity: the Minkowski model gives, per dimension, the
  // probability that two uniform points fall within max_distance, which is
  // ~ 2*D / W clipped to 1; the metric's ball shape contributes its volume
  // ratio relative to the L-infinity box.
  double selectivity = UnitBallVolumeRatio(metric, Dim);
  for (int d = 0; d < Dim; ++d) {
    const double width = domain.hi[d] - domain.lo[d];
    if (width <= 0.0) continue;  // degenerate dimension: always within
    selectivity *= std::min(1.0, 2.0 * max_distance / width);
  }
  estimate.expected_result_pairs = static_cast<double>(p1.objects) *
                                   static_cast<double>(p2.objects) *
                                   selectivity;

  // Node-pair visits. Two average MBRs come within D per dimension with
  // probability (s1 + s2 + 2D) / W (Minkowski sum of the rects and the
  // distance ball), clipped to 1. The even traversal expands same-level
  // pairs (l, l) AND the mixed pairs (l, l+1) they produce on the way down,
  // so both terms are counted.
  const auto qualifying_pairs = [&domain, max_distance](
                                    const LevelProfile<Dim>& l1,
                                    const LevelProfile<Dim>& l2) {
    double probability = 1.0;
    for (int d = 0; d < Dim; ++d) {
      const double width = domain.hi[d] - domain.lo[d];
      if (width <= 0.0) continue;
      probability *= std::min(
          1.0,
          (l1.avg_extent[d] + l2.avg_extent[d] + 2.0 * max_distance) / width);
    }
    return static_cast<double>(l1.nodes) * static_cast<double>(l2.nodes) *
           probability;
  };
  const int shared_levels =
      std::min(static_cast<int>(p1.levels.size()),
               static_cast<int>(p2.levels.size()));
  for (int l = 0; l < shared_levels; ++l) {
    double pairs = qualifying_pairs(p1.levels[l], p2.levels[l]);
    if (l + 1 < shared_levels) {
      // Mixed pairs produced while descending one side at a time.
      pairs += qualifying_pairs(p1.levels[l], p2.levels[l + 1]);
    }
    estimate.node_pairs_per_level.push_back(pairs);
    estimate.expected_node_pair_visits += pairs;
  }
  // The dominant expansion class: (object, leaf) pairs created when a leaf
  // of tree1 is unpacked against a tree2 leaf — one expansion per qualifying
  // object/leaf combination.
  if (!p1.levels.empty() && !p2.levels.empty()) {
    LevelProfile<Dim> object_level;
    object_level.level = -1;
    object_level.nodes = p1.objects;
    for (int d = 0; d < Dim; ++d) {
      object_level.avg_extent[d] = p1.avg_object_extent[d];
    }
    estimate.expected_node_pair_visits +=
        qualifying_pairs(object_level, p2.levels[0]);
  }
  return estimate;
}

// The Section 5 planning question: is it cheaper to (1) run the join on the
// full relations and filter the stream, or (2) pre-filter relation 1 down to
// `selectivity1 * |R1|` objects, build a temporary index, and join that?
// Returns true if option 2 (filter first) is predicted cheaper.
//
// Option 1 pays for join work inflated by 1/selectivity1 (that fraction of
// the stream survives the filter); option 2 pays the index build
// (~ c_build * |R1'|) plus the smaller join. `cost_unit_build` calibrates
// index-build cost relative to join work per expected result.
template <int Dim>
bool ShouldFilterBeforeJoin(const RTree<Dim>& tree1, const RTree<Dim>& tree2,
                            double selectivity1, double max_distance,
                            uint64_t desired_pairs,
                            Metric metric = Metric::kEuclidean,
                            double cost_unit_build = 2.0) {
  SDJ_CHECK(selectivity1 > 0.0 && selectivity1 <= 1.0);
  const DistanceJoinCostEstimate full =
      EstimateDistanceJoinCost(tree1, tree2, max_distance, metric);
  if (full.expected_result_pairs <= 0.0) return false;
  // Option 1: the pipeline must produce desired_pairs / selectivity1 raw
  // results; cost scales with the matching fraction of node visits.
  const double fraction1 =
      std::min(1.0, static_cast<double>(desired_pairs) /
                        (selectivity1 * full.expected_result_pairs));
  const double option1 = full.expected_node_pair_visits * fraction1 /
                         selectivity1;
  // Option 2: build cost over the filtered relation + the proportionally
  // smaller join (node visits scale ~ selectivity of side 1).
  const double filtered = selectivity1 * static_cast<double>(tree1.size());
  const double fraction2 =
      std::min(1.0, static_cast<double>(desired_pairs) /
                        (selectivity1 * full.expected_result_pairs));
  const double option2 = cost_unit_build * filtered / tree1.max_entries() +
                         full.expected_node_pair_visits * selectivity1 *
                             fraction2;
  return option2 < option1;
}

}  // namespace sdj

#endif  // SDJOIN_CORE_COST_MODEL_H_
