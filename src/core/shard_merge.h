// Sharded best-first execution: K independent shard engines behind a k-way
// frontier merge (DESIGN.md §18).
//
// Layer 2 and 3 of the sharded stack (layer 1, the plan, is
// core/shard_plan.h): each shard is a completely ordinary best-first engine
// — its own queue (hybrid tiers included), its own JoinStats, its own
// classify threads — seeded with one disjoint group of the post-root
// frontier. A persistent producer thread per shard pulls results into a
// small bounded buffer, and the consumer emits the globally next result by
// popping the best buffered head.
//
// THE MERGE-FRONTIER INVARIANT that makes this correct: every shard emits
// its results in nondecreasing key order (nonincreasing for farthest-first),
// so a shard's buffered head lower-bounds everything that shard will ever
// produce. Taking the best head over all shards — ties broken by shard
// index — therefore yields a globally sorted stream, which is the serial
// engine's stream (the serial engine emits the same multiset, sorted, with
// equal-key runs ordered by its internal tie-break; see DESIGN.md §18 for
// the equal-distance caveat).
//
// Cross-cutting behavior threads through the merge rather than being
// re-implemented per shard:
//   * kIoError: a dead shard's unproduced results all lie at or past its
//     last produced key, so the merge keeps emitting other shards' heads
//     strictly below that key, then fails — the emitted stream is a valid
//     prefix of the serial stream, exactly like a serial engine's I/O stop.
//   * StopToken: polled at merge-level pops (the wrapper's safe point);
//     shard engines run with a cleared token and park between Next() calls,
//     which are precisely the serial loop's safe points.
//   * SaveState/RestoreState: the wrapper quiesces every producer, then
//     frames the per-shard engine snapshots together with the merge cursor
//     (emitted count, per-shard terminal states, and the buffered results
//     that have left their engines but not yet the merge).
//   * Statistics: merged totals are the plan's seed stats plus each shard's
//     counters via JoinStats::MergeFrom; the four pool-derived counters are
//     re-derived from wrapper-owned pool baselines (per-shard deltas on a
//     shared pool would multi-count). At exhaustion every counter equals the
//     serial engine's except max_queue_size (disjoint per-shard peaks; the
//     merge reports their max) and parallel_expansions — the same two
//     already excluded from cross-config comparisons.
#ifndef SDJOIN_CORE_SHARD_MERGE_H_
#define SDJOIN_CORE_SHARD_MERGE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/distance_join.h"
#include "core/env_knobs.h"
#include "core/join_result.h"
#include "core/join_stats.h"
#include "core/semi_join.h"
#include "core/shard_plan.h"
#include "core/snapshot.h"
#include "core/within_join.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "util/check.h"
#include "util/stop_token.h"

namespace sdj::shard {

// ---- pool-derived counters (wrapper-owned baselines) ----

inline uint64_t PoolMisses(const std::vector<const storage::BufferPool*>& p) {
  uint64_t total = 0;
  for (const storage::BufferPool* pool : p) {
    total += pool->stats().buffer_misses;
  }
  return total;
}
inline uint64_t PoolAccesses(
    const std::vector<const storage::BufferPool*>& p) {
  uint64_t total = 0;
  for (const storage::BufferPool* pool : p) {
    total += pool->stats().logical_reads;
  }
  return total;
}
inline uint64_t PoolRetries(const std::vector<const storage::BufferPool*>& p) {
  uint64_t total = 0;
  for (const storage::BufferPool* pool : p) {
    const storage::IoStats s = pool->stats();
    total += s.read_retries + s.write_retries;
  }
  return total;
}
inline uint64_t PoolChecksumFailures(
    const std::vector<const storage::BufferPool*>& p) {
  uint64_t total = 0;
  for (const storage::BufferPool* pool : p) {
    total += pool->stats().checksum_failures;
  }
  return total;
}

// ---- result wire format (buffered-result serialization) ----

// Results buffered between a shard engine and the merge cannot be re-derived
// on restore (their engines have already advanced past them), so the wrapper
// snapshot carries them verbatim. One generic writer covers both result
// shapes (JoinResult and NeighborResult).
template <int Dim, typename ResultT>
void WriteMergeResult(snapshot::Blob* out, const ResultT& r) {
  if constexpr (requires { r.id1; }) {
    out->PutU64(static_cast<uint64_t>(r.id1));
    out->PutU64(static_cast<uint64_t>(r.id2));
    out->PutBytes(r.rect1.lo.coords.data(), 8 * Dim);
    out->PutBytes(r.rect1.hi.coords.data(), 8 * Dim);
    out->PutBytes(r.rect2.lo.coords.data(), 8 * Dim);
    out->PutBytes(r.rect2.hi.coords.data(), 8 * Dim);
  } else {
    out->PutU64(static_cast<uint64_t>(r.id));
    out->PutBytes(r.rect.lo.coords.data(), 8 * Dim);
    out->PutBytes(r.rect.hi.coords.data(), 8 * Dim);
  }
  out->PutDouble(r.distance);
}

template <int Dim, typename ResultT>
bool ReadMergeResult(snapshot::BlobReader* in, ResultT* r) {
  if constexpr (requires { r->id1; }) {
    r->id1 = static_cast<ObjectId>(in->GetU64());
    r->id2 = static_cast<ObjectId>(in->GetU64());
    in->GetBytes(r->rect1.lo.coords.data(), 8 * Dim);
    in->GetBytes(r->rect1.hi.coords.data(), 8 * Dim);
    in->GetBytes(r->rect2.lo.coords.data(), 8 * Dim);
    in->GetBytes(r->rect2.hi.coords.data(), 8 * Dim);
  } else {
    r->id = static_cast<ObjectId>(in->GetU64());
    in->GetBytes(r->rect.lo.coords.data(), 8 * Dim);
    in->GetBytes(r->rect.hi.coords.data(), 8 * Dim);
  }
  r->distance = in->GetDouble();
  return in->ok();
}

// ---- the k-way frontier merge ----

// Producer-thread merge over K shard engines. One consumer (the wrapper's
// Next caller) at a time; producers only touch their own engine and slot.
// Every slot field is protected by mu_; engines are handed between a parked
// producer and the consumer through the idle flag (set and read under mu_,
// so the handoff is a proper happens-before edge — TSan-clean).
template <int Dim, typename EngineT, typename ResultT>
class FrontierMerge {
 public:
  // Per-shard lookahead: enough to overlap shard expansion with the merge,
  // small enough that capped runs stop shard work promptly.
  static constexpr size_t kLookahead = 4;

  struct Slot {
    std::unique_ptr<EngineT> engine;
    std::deque<ResultT> buffer;  // produced, not yet emitted
    bool done = false;           // engine returned false (terminal below)
    JoinStatus terminal = JoinStatus::kOk;
    double last_key = 0.0;  // distance of the newest produced result
    bool has_last = false;
    bool idle = true;  // producer parked (engine at a safe point)
    std::thread thread;
  };

  FrontierMerge() = default;
  ~FrontierMerge() { StopThreads(); }
  FrontierMerge(const FrontierMerge&) = delete;
  FrontierMerge& operator=(const FrontierMerge&) = delete;

  void Init(std::vector<std::unique_ptr<EngineT>> engines, bool descending) {
    SDJ_CHECK(!started_ && slots_.empty());
    descending_ = descending;
    slots_.reserve(engines.size());
    for (auto& engine : engines) {
      Slot slot;
      slot.engine = std::move(engine);
      slots_.push_back(std::move(slot));
    }
  }

  bool initialized() const { return !slots_.empty(); }
  size_t shard_count() const { return slots_.size(); }
  std::vector<Slot>& slots() { return slots_; }
  JoinStatus status() const { return status_; }
  uint64_t merge_pops() const { return merge_pops_; }

  // Emits the globally next result; false once the merged stream ended —
  // status() then reports kExhausted or kIoError.
  bool Next(ResultT* out) {
    if (status_ != JoinStatus::kOk) return false;
    EnsureStarted();
    std::unique_lock<std::mutex> lk(mu_);
    paused_ = false;
    cv_.notify_all();
    cv_.wait(lk, [&] { return HeadsReady(); });
    // Failed-shard bound: a dead shard's unproduced results all lie at or
    // past its last produced key, so nothing at or past the tightest such
    // key is guaranteed complete.
    double bound = 0.0;
    bool have_bound = false;
    for (const Slot& s : slots_) {
      if (!s.done || s.terminal != JoinStatus::kIoError) continue;
      if (!s.has_last) {
        // Died before producing anything: no complete prefix exists.
        status_ = JoinStatus::kIoError;
        return false;
      }
      if (!have_bound || Before(s.last_key, bound)) bound = s.last_key;
      have_bound = true;
    }
    int best = -1;
    for (size_t k = 0; k < slots_.size(); ++k) {
      if (slots_[k].buffer.empty()) continue;
      if (best < 0 || Before(slots_[k].buffer.front().distance,
                             slots_[static_cast<size_t>(best)]
                                 .buffer.front()
                                 .distance)) {
        best = static_cast<int>(k);
      }
    }
    if (best < 0) {
      status_ = have_bound ? JoinStatus::kIoError : JoinStatus::kExhausted;
      return false;
    }
    Slot& winner = slots_[static_cast<size_t>(best)];
    if (have_bound && !Before(winner.buffer.front().distance, bound)) {
      status_ = JoinStatus::kIoError;
      return false;
    }
    *out = std::move(winner.buffer.front());
    winner.buffer.pop_front();
    ++merge_pops_;
    cv_.notify_all();  // the winner's producer can refill
    return true;
  }

  // Parks every producer at an engine safe point (between Next calls). The
  // caller may then read or serialize the shard engines from its own thread.
  void Quiesce() {
    if (!started_) return;
    std::unique_lock<std::mutex> lk(mu_);
    paused_ = true;
    cv_.notify_all();
    cv_.wait(lk, [&] { return AllIdle(); });
  }

  void Resume() {
    if (!started_) return;
    std::lock_guard<std::mutex> lk(mu_);
    paused_ = false;
    cv_.notify_all();
  }

  // Joins every producer (for destruction and RestoreState). Threads restart
  // lazily on the next Next() call, re-reading whatever slot state the
  // caller rebuilt in between.
  void StopThreads() {
    if (!started_) return;
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
      cv_.notify_all();
    }
    for (Slot& s : slots_) {
      if (s.thread.joinable()) s.thread.join();
    }
    started_ = false;
    stop_ = false;
    paused_ = false;
    for (Slot& s : slots_) s.idle = true;
  }

  // RestoreState support: overwrites the merge-level cursor.
  void RestoreVerdict(JoinStatus status, uint64_t merge_pops) {
    status_ = status;
    merge_pops_ = merge_pops;
  }

 private:
  bool Before(double a, double b) const {
    return descending_ ? a > b : a < b;
  }

  // Every slot has a buffered head or is terminal; the best head is then
  // provably the globally next result.
  bool HeadsReady() const {
    for (const Slot& s : slots_) {
      if (s.buffer.empty() && !s.done) return false;
    }
    return true;
  }

  bool AllIdle() const {
    for (const Slot& s : slots_) {
      if (!s.idle) return false;
    }
    return true;
  }

  void EnsureStarted() {
    if (started_) return;
    started_ = true;
    for (Slot& s : slots_) {
      s.thread = std::thread([this, slot = &s] { ProducerLoop(slot); });
    }
  }

  void ProducerLoop(Slot* s) {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      while (!stop_ &&
             (paused_ || s->done || s->buffer.size() >= kLookahead)) {
        s->idle = true;
        cv_.notify_all();
        cv_.wait(lk);
      }
      if (stop_) break;
      s->idle = false;
      lk.unlock();
      ResultT r;
      const bool got = s->engine->Next(&r);
      lk.lock();
      if (got) {
        s->last_key = r.distance;
        s->has_last = true;
        s->buffer.push_back(std::move(r));
      } else {
        s->done = true;
        s->terminal = s->engine->status();
      }
      s->idle = true;
      cv_.notify_all();
    }
    s->idle = true;
    cv_.notify_all();
  }

  std::vector<Slot> slots_;
  bool descending_ = false;
  bool started_ = false;

  std::mutex mu_;
  std::condition_variable cv_;
  bool paused_ = false;
  bool stop_ = false;

  JoinStatus status_ = JoinStatus::kOk;  // kOk | kExhausted | kIoError
  uint64_t merge_pops_ = 0;
};

// ---- the shared sharded-engine wrapper ----

// Common machinery of every Sharded* policy wrapper: passthrough mode (the
// plan failed or K < 2 — one ordinary engine, zero threads), the merge-level
// Next loop with its StopToken safe point and result cap, merged statistics
// with wrapper-owned pool baselines, and SaveState/RestoreState framing.
// A Derived constructor runs the shard plan and calls AdoptPassthrough or
// AdoptShards; everything else is inherited.
template <int Dim, typename EngineT, typename ResultT>
class ShardedEngine {
 public:
  using Result = ResultT;

  bool Next(ResultT* out) {
    SDJ_CHECK(out != nullptr);
    if (passthrough_ != nullptr) return passthrough_->Next(out);
    if (auto_resume_ && status_ == JoinStatus::kSuspended) {
      status_ = JoinStatus::kOk;
    }
    if (status_ != JoinStatus::kOk) return false;
    if (max_results_ > 0 && emitted_ >= max_results_) {
      status_ = JoinStatus::kExhausted;
      return false;
    }
    // Merge-level safe point (DESIGN.md §11): shard engines run with a
    // cleared token and park between their own Next calls, so after
    // Quiesce every engine is serializable.
    if (stop_token_.stop_requested()) {
      status_ = JoinStatus::kSuspended;
      merge_.Quiesce();
      return false;
    }
    if (!merge_.Next(out)) {
      status_ = merge_.status();
      return false;
    }
    ++emitted_;
    return true;
  }

  JoinStatus status() const {
    if (passthrough_ != nullptr) return passthrough_->status();
    return status_;
  }

  void ResumeSuspended() {
    if (passthrough_ != nullptr) {
      passthrough_->ResumeSuspended();
      return;
    }
    if (status_ == JoinStatus::kSuspended) {
      status_ = JoinStatus::kOk;
      merge_.Resume();
    }
  }

  // Merged statistics: seed stats + every shard via JoinStats::MergeFrom,
  // pairs_reported overwritten with what the merge actually emitted (shard
  // counters can run ahead by the bounded lookahead mid-stream; at
  // exhaustion the totals match the serial engine — see file comment for
  // the two excluded counters), and the pool-derived counters re-derived
  // from wrapper-owned baselines.
  const JoinStats& stats() const {
    if (passthrough_ != nullptr) return EngineStats(*passthrough_);
    merge_.Quiesce();
    merged_ = seed_stats_;
    for (const auto& slot : merge_.slots()) {
      merged_.MergeFrom(EngineStats(*slot.engine));
    }
    merged_.pairs_reported = emitted_;
    merged_.node_io =
        node_io_offset_ + (PoolMisses(pools_) - base_node_misses_);
    merged_.node_accesses =
        node_accesses_offset_ + (PoolAccesses(pools_) - base_node_accesses_);
    merged_.io_retries =
        io_retries_offset_ + (PoolRetries(pools_) - base_io_retries_);
    merged_.checksum_failures =
        checksum_failures_offset_ +
        (PoolChecksumFailures(pools_) - base_checksum_failures_);
    if (status_ == JoinStatus::kOk) merge_.Resume();
    return merged_;
  }

  // Live queue entries across every shard plus the buffered results in
  // flight — the serving layer's memory-cost proxy (DESIGN.md §14).
  size_t queue_size() const {
    if (passthrough_ != nullptr) return passthrough_->queue_size();
    merge_.Quiesce();
    size_t total = 0;
    for (const auto& slot : merge_.slots()) {
      total += slot.engine->queue_size() + slot.buffer.size();
    }
    if (status_ == JoinStatus::kOk) merge_.Resume();
    return total;
  }

  // Peak in-memory entries; per-shard peaks are concurrent on disjoint
  // queues, so the honest total is their sum.
  size_t max_memory_queue_size() const {
    if (passthrough_ != nullptr) return passthrough_->max_memory_queue_size();
    merge_.Quiesce();
    size_t total = 0;
    for (const auto& slot : merge_.slots()) {
      total += slot.engine->max_memory_queue_size();
    }
    if (status_ == JoinStatus::kOk) merge_.Resume();
    return total;
  }

  // 1 in passthrough mode, else the plan's effective shard count.
  int effective_shards() const {
    return passthrough_ != nullptr ? 1
                                   : static_cast<int>(merge_.shard_count());
  }

  // Merge-level pops (results emitted by the k-way merge). Deliberately NOT
  // a JoinStats field: adding it would change the stats wire format and
  // every golden fixture for a counter only the wrapper can produce.
  uint64_t shard_merge_pops() const {
    return passthrough_ != nullptr ? 0 : merge_.merge_pops();
  }

  // Per-shard counter snapshots (bench reporting: per-shard expansions).
  std::vector<JoinStats> shard_stats() const {
    std::vector<JoinStats> out;
    if (passthrough_ != nullptr) return out;
    merge_.Quiesce();
    out.reserve(merge_.shard_count());
    for (const auto& slot : merge_.slots()) {
      out.push_back(EngineStats(*slot.engine));
    }
    if (status_ == JoinStatus::kOk) merge_.Resume();
    return out;
  }

  // ---- snapshot support (DESIGN.md §11) ----

  // Wrapper framing (mode + shard count) around either the passthrough
  // engine's snapshot or the per-shard snapshots plus the merge cursor.
  // Same safe-point contract as the engines'.
  bool SaveState(snapshot::Blob* out) {
    out->PutU32(kMagic);
    out->PutU32(kVersion);
    out->PutU32(static_cast<uint32_t>(Dim));
    out->PutBool(passthrough_ == nullptr);
    out->PutU32(static_cast<uint32_t>(effective_shards()));
    if (passthrough_ != nullptr) return passthrough_->SaveState(out);
    merge_.Quiesce();
    if (status_ == JoinStatus::kIoError ||
        status_ == JoinStatus::kInvalidArgument) {
      return false;
    }
    for (const auto& slot : merge_.slots()) {
      // A dead shard cannot be resumed (its engine refuses SaveState and
      // its stream is incomplete): the merged cursor is unsaveable, exactly
      // like a serial engine after kIoError.
      if (slot.done && slot.terminal == JoinStatus::kIoError) return false;
    }
    out->PutU64(emitted_);
    out->PutU8(static_cast<uint8_t>(status_));
    out->PutU64(node_io_offset_ + (PoolMisses(pools_) - base_node_misses_));
    out->PutU64(node_accesses_offset_ +
                (PoolAccesses(pools_) - base_node_accesses_));
    out->PutU64(io_retries_offset_ +
                (PoolRetries(pools_) - base_io_retries_));
    out->PutU64(checksum_failures_offset_ +
                (PoolChecksumFailures(pools_) - base_checksum_failures_));
    for (auto& slot : merge_.slots()) {
      out->PutBool(slot.done);
      out->PutU8(static_cast<uint8_t>(slot.terminal));
      out->PutBool(slot.has_last);
      out->PutDouble(slot.last_key);
      out->PutU64(slot.buffer.size());
      for (const ResultT& r : slot.buffer) {
        WriteMergeResult<Dim>(out, r);
      }
      snapshot::Blob engine_blob;
      if (!slot.engine->SaveState(&engine_blob)) return false;
      out->PutU64(engine_blob.size());
      out->PutBytes(engine_blob.data(), engine_blob.size());
    }
    if (status_ == JoinStatus::kOk) merge_.Resume();
    return true;
  }

  // Counterpart of SaveState. The wrapper must have been constructed over
  // the same trees with the same options: the constructor re-runs the shard
  // plan deterministically, so mode and shard count must match the saved
  // ones, and each shard engine verifies its own fingerprint.
  bool RestoreState(snapshot::BlobReader* in) {
    if (in->GetU32() != kMagic) return false;
    if (in->GetU32() != kVersion) return false;
    if (in->GetU32() != static_cast<uint32_t>(Dim)) return false;
    const bool sharded = in->GetBool();
    if (sharded != (passthrough_ == nullptr)) return false;
    if (in->GetU32() != static_cast<uint32_t>(effective_shards())) {
      return false;
    }
    if (!in->ok()) return false;
    if (passthrough_ != nullptr) return passthrough_->RestoreState(in);
    merge_.StopThreads();
    const uint64_t emitted = in->GetU64();
    const uint8_t status = in->GetU8();
    if (status != static_cast<uint8_t>(JoinStatus::kOk) &&
        status != static_cast<uint8_t>(JoinStatus::kExhausted) &&
        status != static_cast<uint8_t>(JoinStatus::kSuspended)) {
      return false;
    }
    const uint64_t node_io = in->GetU64();
    const uint64_t node_accesses = in->GetU64();
    const uint64_t io_retries = in->GetU64();
    const uint64_t checksum_failures = in->GetU64();
    if (!in->ok()) return false;
    for (auto& slot : merge_.slots()) {
      slot.done = in->GetBool();
      const uint8_t terminal = in->GetU8();
      if (terminal > static_cast<uint8_t>(JoinStatus::kInvalidArgument)) {
        return false;
      }
      slot.terminal = static_cast<JoinStatus>(terminal);
      slot.has_last = in->GetBool();
      slot.last_key = in->GetDouble();
      const uint64_t buffered = in->GetCount(8);
      if (!in->ok()) return false;
      slot.buffer.clear();
      for (uint64_t i = 0; i < buffered; ++i) {
        ResultT r;
        if (!ReadMergeResult<Dim>(in, &r)) return false;
        slot.buffer.push_back(std::move(r));
      }
      const uint64_t blob_size = in->GetCount(1);
      if (!in->ok()) return false;
      std::vector<char> blob(blob_size);
      if (blob_size > 0 && !in->GetBytes(blob.data(), blob_size)) {
        return false;
      }
      snapshot::BlobReader engine_in(blob.data(), blob.size());
      if (!slot.engine->RestoreState(&engine_in)) return false;
    }
    if (!in->ok()) return false;
    emitted_ = emitted;
    status_ = static_cast<JoinStatus>(status);
    merge_.RestoreVerdict(status_ == JoinStatus::kExhausted
                              ? JoinStatus::kExhausted
                              : JoinStatus::kOk,
                          emitted_);
    // Rebase the pool baselines against the current counters, mirroring
    // RestoreCore: stats() keeps reporting totals across the boundary.
    node_io_offset_ = node_io;
    node_accesses_offset_ = node_accesses;
    io_retries_offset_ = io_retries;
    checksum_failures_offset_ = checksum_failures;
    base_node_misses_ = PoolMisses(pools_);
    base_node_accesses_ = PoolAccesses(pools_);
    base_io_retries_ = PoolRetries(pools_);
    base_checksum_failures_ = PoolChecksumFailures(pools_);
    return true;
  }

 protected:
  static constexpr uint32_t kMagic = 0x534A5348;  // "SJSH"
  static constexpr uint32_t kVersion = 1;

  explicit ShardedEngine(std::vector<const storage::BufferPool*> pools)
      : pools_(std::move(pools)),
        base_node_misses_(PoolMisses(pools_)),
        base_node_accesses_(PoolAccesses(pools_)),
        base_io_retries_(PoolRetries(pools_)),
        base_checksum_failures_(PoolChecksumFailures(pools_)) {}

  ~ShardedEngine() = default;
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // The engines' full JoinStats regardless of what their stats() returns
  // (the neighbor engines surface IncNearestStats there).
  static const JoinStats& EngineStats(const EngineT& engine) {
    if constexpr (requires { engine.engine_stats(); }) {
      return engine.engine_stats();
    } else {
      return engine.stats();
    }
  }

  // Derived-constructor outcomes: exactly one of these runs.
  void AdoptPassthrough(std::unique_ptr<EngineT> engine) {
    passthrough_ = std::move(engine);
  }

  void AdoptShards(std::vector<std::unique_ptr<EngineT>> engines,
                   const JoinStats& seed_stats, bool descending,
                   util::StopToken stop_token, uint64_t max_results,
                   bool auto_resume) {
    seed_stats_ = seed_stats;
    stop_token_ = std::move(stop_token);
    max_results_ = max_results;
    auto_resume_ = auto_resume;
    merge_.Init(std::move(engines), descending);
  }

  std::vector<const storage::BufferPool*> pools_;
  uint64_t base_node_misses_;
  uint64_t base_node_accesses_;
  uint64_t base_io_retries_;
  uint64_t base_checksum_failures_;
  // Counter totals accumulated before the last RestoreState (the rebased
  // baselines restart the live deltas at zero).
  uint64_t node_io_offset_ = 0;
  uint64_t node_accesses_offset_ = 0;
  uint64_t io_retries_offset_ = 0;
  uint64_t checksum_failures_offset_ = 0;

  std::unique_ptr<EngineT> passthrough_;
  mutable FrontierMerge<Dim, EngineT, ResultT> merge_;
  JoinStats seed_stats_;
  util::StopToken stop_token_;
  uint64_t max_results_ = 0;  // merge-level result cap; 0 = unlimited
  bool auto_resume_ = false;  // NN semantics: kSuspended self-clears in Next
  uint64_t emitted_ = 0;
  JoinStatus status_ = JoinStatus::kOk;
  mutable JoinStats merged_;
};

}  // namespace sdj::shard

namespace sdj {

// ---- the sharded policy wrappers ----

// Sharded incremental distance join: behaves exactly like DistanceJoin (same
// constructor shape, same pair stream, same statistics at exhaustion) but
// executes options.shards independent engines behind the frontier merge.
// Falls back to one ordinary engine whenever the plan cannot prove a
// partition: fewer than two distinct root-entry subtrees, an estimator
// (whose pop-time cutoffs and restarts consult global state), reverse order
// (reported distances are exact MINDIST while the traversal orders by
// MAXDIST upper bounds, so per-shard result distances need not be monotone
// and the merge has no sound key), an exact-object-distance callback (obr
// resolution consults the engine's own queue head), or user object
// predicates (which may be stateful and order-sensitive).
template <int Dim, typename Index = RTree<Dim>>
class ShardedDistanceJoin
    : public shard::ShardedEngine<Dim, DistanceJoin<Dim, Index>,
                                  JoinResult<Dim>> {
  using BaseT =
      shard::ShardedEngine<Dim, DistanceJoin<Dim, Index>, JoinResult<Dim>>;

 public:
  ShardedDistanceJoin(const Index& tree1, const Index& tree2,
                      const DistanceJoinOptions& options,
                      JoinFilters<Dim> filters = JoinFilters<Dim>{},
                      SemiJoinFilter semi_filter = SemiJoinFilter::kNone,
                      SemiJoinBound semi_bound = SemiJoinBound::kNone,
                      bool semi_estimation = false)
      : BaseT({&tree1.pool(), &tree2.pool()}) {
    const int requested = env_knobs::ResolveShards(options.shards);
    const bool eligible = requested >= 2 && !options.estimate_max_distance &&
                          !options.reverse_order &&
                          options.exact_object_distance == nullptr &&
                          filters.object_filter1 == nullptr &&
                          filters.object_filter2 == nullptr;
    shard::Plan<Dim> plan;
    if (eligible) {
      DistanceJoinOptions seed_options = options;
      seed_options.num_threads = 1;
      seed_options.shards = 1;
      seed_options.defer_seed = false;
      seed_options.stop_token = util::StopToken{};
      DistanceJoin<Dim, Index> seed(tree1, tree2, seed_options, filters,
                                    semi_filter, semi_bound, semi_estimation);
      // Semi-joins partition S_o and the bound tables by first-item id, so
      // only an item1 scatter is sound for them.
      const bool symmetric = semi_filter == SemiJoinFilter::kNone &&
                             semi_bound == SemiJoinBound::kNone &&
                             !semi_estimation;
      plan = shard::BuildFromSeed<Dim>(&seed, requested, symmetric);
      if (plan.ok()) plan.seed_stats = seed.stats();
    }
    if (!plan.ok()) {
      this->AdoptPassthrough(std::make_unique<DistanceJoin<Dim, Index>>(
          tree1, tree2, options, std::move(filters), semi_filter, semi_bound,
          semi_estimation));
      return;
    }
    std::vector<std::unique_ptr<DistanceJoin<Dim, Index>>> engines;
    engines.reserve(plan.groups.size());
    for (size_t k = 0; k < plan.groups.size(); ++k) {
      DistanceJoinOptions shard_options = options;
      shard_options.shards = 1;
      shard_options.defer_seed = true;
      shard_options.stop_token = util::StopToken{};
      if (shard_options.use_hybrid_queue &&
          !shard_options.hybrid.spill_path.empty()) {
        // Per-shard hybrid queues must not collide on one spill file.
        shard_options.hybrid.spill_path += ".shard" + std::to_string(k);
      }
      auto engine = std::make_unique<DistanceJoin<Dim, Index>>(
          tree1, tree2, shard_options, filters, semi_filter, semi_bound,
          semi_estimation);
      engine->AdoptPlanEntries(plan.groups[k], plan.next_seq);
      engines.push_back(std::move(engine));
    }
    this->AdoptShards(std::move(engines), plan.seed_stats,
                      /*descending=*/false, options.stop_token,
                      /*max_results=*/options.max_pairs,
                      /*auto_resume=*/false);
  }
};

// Sharded distance semi-join: DistanceSemiJoin over a sharded engine. The
// Outside filter dedupes the merged stream in the wrapper exactly as it
// dedupes a serial stream; Inside filters and d_max bounds shard cleanly
// because the plan scatters by item1 only.
template <int Dim, typename Index = RTree<Dim>>
using ShardedDistanceSemiJoin =
    DistanceSemiJoin<Dim, Index, ShardedDistanceJoin<Dim, Index>>;

// Sharded incremental within-distance join. Every IncWithinJoin
// configuration is eligible (fixed bound, no global mutable state); the
// item2 scatter fallback applies when the root expansion descended the
// second tree.
template <int Dim, typename Index = RTree<Dim>>
class ShardedWithinJoin
    : public shard::ShardedEngine<Dim, IncWithinJoin<Dim, Index>,
                                  JoinResult<Dim>> {
  using BaseT =
      shard::ShardedEngine<Dim, IncWithinJoin<Dim, Index>, JoinResult<Dim>>;

 public:
  ShardedWithinJoin(const Index& tree1, const Index& tree2,
                    const WithinJoinOptions& options)
      : BaseT({&tree1.pool(), &tree2.pool()}) {
    const int requested = env_knobs::ResolveShards(options.shards);
    shard::Plan<Dim> plan;
    if (requested >= 2) {
      WithinJoinOptions seed_options = options;
      seed_options.num_threads = 1;
      seed_options.shards = 1;
      seed_options.defer_seed = false;
      seed_options.stop_token = util::StopToken{};
      IncWithinJoin<Dim, Index> seed(tree1, tree2, seed_options);
      plan = shard::BuildFromSeed<Dim>(&seed, requested,
                                       /*allow_item2_fallback=*/true);
      if (plan.ok()) plan.seed_stats = seed.stats();
    }
    if (!plan.ok()) {
      this->AdoptPassthrough(std::make_unique<IncWithinJoin<Dim, Index>>(
          tree1, tree2, options));
      return;
    }
    std::vector<std::unique_ptr<IncWithinJoin<Dim, Index>>> engines;
    engines.reserve(plan.groups.size());
    for (size_t k = 0; k < plan.groups.size(); ++k) {
      WithinJoinOptions shard_options = options;
      shard_options.shards = 1;
      shard_options.defer_seed = true;
      shard_options.stop_token = util::StopToken{};
      if (shard_options.use_hybrid_queue &&
          !shard_options.hybrid.spill_path.empty()) {
        shard_options.hybrid.spill_path += ".shard" + std::to_string(k);
      }
      auto engine = std::make_unique<IncWithinJoin<Dim, Index>>(
          tree1, tree2, shard_options);
      engine->AdoptPlanEntries(plan.groups[k], plan.next_seq);
      engines.push_back(std::move(engine));
    }
    this->AdoptShards(std::move(engines), plan.seed_stats,
                      /*descending=*/false, options.stop_token,
                      /*max_results=*/0, /*auto_resume=*/false);
  }
};

}  // namespace sdj

#endif  // SDJOIN_CORE_SHARD_MERGE_H_
