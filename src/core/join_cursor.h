// Durable join cursors (DESIGN.md §11): checkpointing, suspend/resume, and
// crash recovery for the incremental join iterators.
//
// A JoinCursor wraps an engine — DistanceJoin or DistanceSemiJoin — and a
// SnapshotStore. It forwards Next(), writing a checkpoint snapshot every
// `checkpoint_every` reported pairs and a final snapshot when the engine
// suspends on its StopToken. A later process (or the same one) constructs
// the identical engine over the same trees and calls ResumeLatest(), which
// loads the newest valid snapshot — falling back past torn or corrupted
// slots — and continues the join. Because the pair comparator is a total
// order, the resumed cursor emits exactly the remaining pair stream an
// uninterrupted run would have produced.
//
// Checkpoint failures degrade, they never abort: a snapshot that cannot be
// written is counted and the previous snapshot stays committed, mirroring
// the hybrid queue's spill-fallback philosophy (CLAUDE.md).
//
//   DistanceJoin<2> join(water, roads, options);        // options.stop_token set
//   JoinCursor<2, DistanceJoin<2>> cursor(&join, {.snapshot_path = "j.snap",
//                                                 .checkpoint_every = 1000});
//   if (resuming) cursor.ResumeLatest();
//   while (cursor.Next(&pair)) Use(pair);
//   // join.status() == kSuspended -> a snapshot is on disk; run again later.
#ifndef SDJOIN_CORE_JOIN_CURSOR_H_
#define SDJOIN_CORE_JOIN_CURSOR_H_

#include <unistd.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "core/join_result.h"
#include "core/snapshot.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injection.h"
#include "util/check.h"

namespace sdj {

// Construction parameters for one JoinCursor.
struct CursorOptions {
  // Snapshot file; empty keeps snapshots in memory (in-process suspend and
  // tests — no crash recovery).
  std::string snapshot_path;
  // Logical page size of the snapshot store.
  uint32_t page_size = 4096;
  // Write a checkpoint after every N reported pairs (0 = only when the
  // engine suspends).
  uint64_t checkpoint_every = 0;
  // If set, the snapshot store injects faults from this schedule (testing).
  std::optional<storage::FaultInjectionOptions> fault_injection;
  // If set, the snapshot store simulates power loss at one exact write/sync
  // op (testing — see storage::CrashPointPageFile).
  std::optional<storage::CrashPointOptions> crash_point;
  // Bounded-retry policy for transient snapshot-page faults.
  storage::RetryPolicy retry;
  // Bounded retry with exponential backoff for whole checkpoint *commits*:
  // when WriteSnapshot fails (e.g., a torn header under fault injection),
  // the commit is re-attempted — with a fresh shadow-paged write — up to
  // max_attempts times, sleeping backoff_us << (k - 1) before retry k. The
  // default (1 attempt, no sleep) preserves the historical fail-once
  // behavior; the serving layer (DESIGN.md §14) raises it before degrading
  // an unevictable session to pinned-resident.
  storage::RetryPolicy commit_retry{.max_attempts = 1, .backoff_us = 0};
  // Header/payload slots of the snapshot store (>= 2); S slots survive up
  // to S-1 consecutive torn or corrupt commits on resume.
  uint32_t snapshot_slots = 2;
  // Optional observability sink (DESIGN.md §12): the cursor records whole
  // checkpoint (SaveState + commit) and restore latencies, and the snapshot
  // store underneath adds per-commit latency. Null = disabled.
  obs::Metrics* metrics = nullptr;
};

// Cursor-side counters, kept apart from JoinStats so that resumed-run
// statistics stay comparable to an uninterrupted run's.
struct CursorStats {
  uint64_t checkpoints_written = 0;
  // Snapshots that could not be written even after commit_retry attempts;
  // the previous one stays committed.
  uint64_t checkpoint_failures = 0;
  // Commit re-attempts taken after a failed WriteSnapshot (a checkpoint that
  // succeeds on attempt k adds k-1 here and 0 to checkpoint_failures).
  uint64_t checkpoint_retries = 0;
  // Invalid (torn/corrupt) snapshot slots skipped while resuming.
  uint64_t snapshot_fallbacks = 0;
  uint64_t resumes = 0;
};

// See file comment. `Engine` is any best-first engine policy with
// SaveState/RestoreState — DistanceJoin, DistanceSemiJoin, IncWithinJoin,
// IncNearestNeighbor, IncFarthestNeighbor; the cursor borrows it (the
// engine and its trees must outlive the cursor).
template <int Dim, typename Engine>
class JoinCursor {
 public:
  JoinCursor(Engine* engine, const CursorOptions& options)
      : engine_(engine), options_(options) {
    SDJ_CHECK(engine != nullptr);
    // An unopenable snapshot path is user input, not an invariant: the
    // cursor degrades to checkpoint-less forwarding (every Checkpoint
    // counts as failed) instead of aborting.
    store_ = snapshot::SnapshotStore::Open(
        {options.snapshot_path, options.page_size, options.fault_injection,
         options.crash_point, options.retry, options.metrics,
         options.snapshot_slots});
  }

  // Points the cursor at a replacement engine over the same trees and
  // configuration (the serving layer rebuilds an evicted session's engine,
  // then restores it through this cursor — DESIGN.md §14). The snapshot
  // store and cursor statistics carry over.
  void set_engine(Engine* engine) {
    SDJ_CHECK(engine != nullptr);
    engine_ = engine;
  }

  // False if the snapshot store could not be opened/created; the cursor
  // still iterates, but cannot checkpoint or resume.
  bool ok() const { return store_ != nullptr; }

  // Forwards Engine::Next, checkpointing every `checkpoint_every` results
  // and once more when the engine suspends (so the stop-point state is
  // always the newest snapshot). Returns false when the engine does;
  // status() disambiguates suspension from exhaustion and I/O failure.
  bool Next(typename Engine::Result* out) {
    if (engine_->Next(out)) {
      if (options_.checkpoint_every > 0 &&
          ++since_checkpoint_ >= options_.checkpoint_every) {
        Checkpoint();
      }
      return true;
    }
    if (engine_->status() == JoinStatus::kSuspended) Checkpoint();
    return false;
  }

  // Writes a snapshot of the engine's current state, re-attempting failed
  // commits per options_.commit_retry. Persistent failures are counted, not
  // fatal — the join continues, protected by the previous snapshot. Returns
  // whether the snapshot committed.
  bool Checkpoint() {
    obs::PhaseTimer timer(options_.metrics, obs::Op::kCheckpoint);
    since_checkpoint_ = 0;
    snapshot::Blob blob;
    if (store_ == nullptr || !engine_->SaveState(&blob)) {
      ++cursor_stats_.checkpoint_failures;
      return false;
    }
    for (uint32_t attempt = 1;; ++attempt) {
      if (store_->WriteSnapshot(blob)) {
        ++cursor_stats_.checkpoints_written;
        return true;
      }
      if (attempt >= options_.commit_retry.max_attempts) break;
      ++cursor_stats_.checkpoint_retries;
      if (options_.commit_retry.backoff_us > 0) {
        ::usleep(options_.commit_retry.backoff_us << (attempt - 1));
      }
    }
    ++cursor_stats_.checkpoint_failures;
    return false;
  }

  // Restores the engine from the newest valid snapshot and clears its
  // suspended status, so the next Next() continues where the snapshot
  // stopped. Torn or corrupted slots are skipped (counted in
  // snapshot_fallbacks). Returns false — engine untouched, iteration starts
  // from scratch — if no valid snapshot exists or the payload does not
  // match this engine's configuration.
  bool ResumeLatest() {
    if (store_ == nullptr) return false;
    obs::PhaseTimer timer(options_.metrics, obs::Op::kRestore);
    std::string payload;
    if (!store_->ReadLatest(&payload)) {
      cursor_stats_.snapshot_fallbacks = store_->stats().invalid_slots_seen;
      return false;
    }
    cursor_stats_.snapshot_fallbacks = store_->stats().invalid_slots_seen;
    snapshot::BlobReader reader(payload);
    if (!engine_->RestoreState(&reader)) return false;
    engine_->ResumeSuspended();
    ++cursor_stats_.resumes;
    return true;
  }

  // Restores the engine from one specific snapshot slot — the serving
  // layer's self-healing fallback past an unrestorable newest snapshot
  // (DESIGN.md §16). On success the slot's epoch is adopted as the store's
  // resume point, so subsequent checkpoints continue from it. Returns false
  // if the slot does not hold a fully-verified snapshot or its payload does
  // not match this engine's configuration; the caller should rebuild the
  // engine before trying another slot (a restore that fails mid-payload may
  // leave partial state behind).
  bool ResumeFromSlot(uint32_t slot) {
    if (store_ == nullptr) return false;
    obs::PhaseTimer timer(options_.metrics, obs::Op::kRestore);
    std::string payload;
    if (!store_->ReadSlotPayload(slot, &payload)) return false;
    snapshot::BlobReader reader(payload);
    if (!engine_->RestoreState(&reader)) return false;
    engine_->ResumeSuspended();
    ++cursor_stats_.resumes;
    ++cursor_stats_.snapshot_fallbacks;
    return true;
  }

  JoinStatus status() const { return engine_->status(); }
  Engine* engine() const { return engine_; }
  const CursorStats& cursor_stats() const { return cursor_stats_; }
  snapshot::SnapshotStore* store() const { return store_.get(); }

 private:
  Engine* engine_;
  const CursorOptions options_;
  std::unique_ptr<snapshot::SnapshotStore> store_;
  uint64_t since_checkpoint_ = 0;
  CursorStats cursor_stats_;
};

}  // namespace sdj

#endif  // SDJOIN_CORE_JOIN_CURSOR_H_
