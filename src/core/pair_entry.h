// Priority-queue elements of the incremental distance join.
//
// Each element pairs an item from index R1 with an item from index R2
// (Section 2.2.1). An item is a node, an object bounding rectangle (when
// object geometry lives outside the tree), or an object stored directly in a
// leaf. The element key is the MINDIST between the items; ties are broken so
// that object pairs surface first and (configurably) deeper node pairs before
// shallower ones (Section 2.2.2).
#ifndef SDJOIN_CORE_PAIR_ENTRY_H_
#define SDJOIN_CORE_PAIR_ENTRY_H_

#include <cstdint>

#include "geometry/distance.h"
#include "geometry/metrics.h"
#include "geometry/rect.h"

namespace sdj {

// What a queue item refers to.
enum class JoinItemKind : uint8_t {
  kNode = 0,        // R-tree node; rect is the node's MBR, ref its page id
  kObjectRect = 1,  // minimal bounding rect of an external object ("obr")
  kObject = 2,      // object stored directly; rect is its exact geometry
};

// How ties between equal-distance pairs are broken among node pairs
// (Section 2.2.2): depth-first expands deeper pairs first and is the paper's
// recommended default; breadth-first the opposite.
enum class TieBreakPolicy { kDepthFirst, kBreadthFirst };

// One side of a queue element.
template <int Dim>
struct JoinItem {
  Rect<Dim> rect;
  uint64_t ref = 0;   // page id (nodes) or object id (objects/obrs)
  int16_t level = -1; // node level; -1 for objects and obrs
  JoinItemKind kind = JoinItemKind::kObject;

  bool is_node() const { return kind == JoinItemKind::kNode; }
  bool is_object_like() const { return kind != JoinItemKind::kNode; }
};

// A queue element: a pair of items plus its ordering keys.
template <int Dim>
struct PairEntry {
  // Primary queue key. Equals `distance` in normal mode; in reverse
  // (farthest-first) mode it is the negated distance upper bound.
  double key = 0.0;
  // MINDIST between the items (exact distance for object/object pairs).
  double distance = 0.0;
  JoinItem<Dim> item1;
  JoinItem<Dim> item2;
  // Insertion sequence number: the final tie-breaker, for determinism.
  uint64_t seq = 0;
  // 0 = object/object, 1 = contains an obr but no node, 2 = contains a node.
  uint8_t category = 0;
  // Largest node level in the pair (-1 if none): the depth tie-break key.
  int16_t depth = -1;

  bool IsObjectPair() const { return category == 0; }
  bool IsObrPair() const {
    return item1.kind != JoinItemKind::kNode &&
           item2.kind != JoinItemKind::kNode && category == 1;
  }
};

// Computes the tie-break fields of `e` from its items.
template <int Dim>
void FinalizePairMetadata(PairEntry<Dim>* e) {
  const bool has_node = e->item1.is_node() || e->item2.is_node();
  const bool has_obr = e->item1.kind == JoinItemKind::kObjectRect ||
                       e->item2.kind == JoinItemKind::kObjectRect;
  e->category = has_node ? 2 : (has_obr ? 1 : 0);
  e->depth = -1;
  if (e->item1.is_node()) e->depth = e->item1.level;
  if (e->item2.is_node() && e->item2.level > e->depth) {
    e->depth = e->item2.level;
  }
}

// Strict-weak ordering placing the highest-priority pair first ("less than"
// means "dequeued earlier").
template <int Dim>
struct PairEntryCompare {
  TieBreakPolicy tie_break = TieBreakPolicy::kDepthFirst;

  bool operator()(const PairEntry<Dim>& a, const PairEntry<Dim>& b) const {
    if (a.key != b.key) return a.key < b.key;
    // Pairs closer to being reportable first (Section 2.2.2).
    if (a.category != b.category) return a.category < b.category;
    if (a.depth != b.depth) {
      // Smaller level = deeper in the tree.
      return tie_break == TieBreakPolicy::kDepthFirst ? a.depth < b.depth
                                                      : a.depth > b.depth;
    }
    return a.seq < b.seq;
  }
};

// MINDIST between two items: a lower bound on the distance of every object
// pair generated from them, and the exact distance for object/object pairs
// whose rects are the exact geometry.
template <int Dim>
double PairMinDist(const JoinItem<Dim>& a, const JoinItem<Dim>& b,
                   Metric metric) {
  return MinDist(a.rect, b.rect, metric);
}

// d_max for the distance join (Sections 2.2.3-2.2.4): an upper bound on the
// distance of EVERY object pair generated from (a, b). Uses the plain
// farthest-corner MAXDIST for node/node pairs and MINMAXDIST-based bounds
// when minimal bounding is known, exactly as the paper prescribes.
template <int Dim>
double PairMaxDist(const JoinItem<Dim>& a, const JoinItem<Dim>& b,
                   Metric metric) {
  const bool a_node = a.is_node();
  const bool b_node = b.is_node();
  if (a_node && b_node) return MaxDist(a.rect, b.rect, metric);
  if (a_node) {
    return b.kind == JoinItemKind::kObject
               ? MaxMinDist(a.rect, b.rect, metric)
               : MaxMinMaxDist(a.rect, b.rect, metric);
  }
  if (b_node) {
    return a.kind == JoinItemKind::kObject
               ? MaxMinDist(b.rect, a.rect, metric)
               : MaxMinMaxDist(b.rect, a.rect, metric);
  }
  // Neither is a node.
  if (a.kind == JoinItemKind::kObject && b.kind == JoinItemKind::kObject) {
    return MinDist(a.rect, b.rect, metric);  // exact
  }
  return MinMaxDist(a.rect, b.rect, metric);
}

// Semi-join d_max for indexes whose NODE regions do not minimally bound
// their contents (e.g., quadtrees — the paper's Section 2.2.2 caveat).
// MINMAXDIST reasoning against a node region is then unavailable, but nodes
// are non-empty, so some object under a node `b` lies within
// MaxDist(a, b) of every o1 under `a`. All other cases (obr and exact-object
// second items) are unaffected — their minimality is intrinsic.
// Note the plain-join PairMaxDist never relies on node-region minimality, so
// it has no loose variant.
template <int Dim>
double SemiPairMaxDistLoose(const JoinItem<Dim>& a, const JoinItem<Dim>& b,
                            Metric metric) {
  if (b.is_node()) return MaxDist(a.rect, b.rect, metric);
  if (a.kind == JoinItemKind::kObject && b.kind == JoinItemKind::kObject) {
    return MinDist(a.rect, b.rect, metric);
  }
  if (b.kind == JoinItemKind::kObject && a.is_node()) {
    return MaxMinDist(a.rect, b.rect, metric);
  }
  return MinMaxDist(a.rect, b.rect, metric);  // b is an obr or exact object
}

// d_max for the distance semi-join (Section 2.3): an upper bound, for every
// object o1 under `a`, on the distance from o1 to its NEAREST object under
// `b`. Exploits that node MBRs minimally bound the union of the objects
// beneath them (every MBR face is touched by some object).
template <int Dim>
double SemiPairMaxDist(const JoinItem<Dim>& a, const JoinItem<Dim>& b,
                       Metric metric) {
  if (a.is_node()) {
    return b.kind == JoinItemKind::kObject
               ? MaxMinDist(a.rect, b.rect, metric)
               : MaxMinMaxDist(a.rect, b.rect, metric);
  }
  // a is a single object / obr.
  if (a.kind == JoinItemKind::kObject && b.kind == JoinItemKind::kObject) {
    return MinDist(a.rect, b.rect, metric);
  }
  return MinMaxDist(a.rect, b.rect, metric);
}

}  // namespace sdj

#endif  // SDJOIN_CORE_PAIR_ENTRY_H_
