// The incremental distance semi-join (Section 2.3).
//
// For each object o1 of the first relation, reports the pair (o1, o2) with
// the nearest o2 from the second relation — pairs stream out in order of
// distance, so the complete result is the discrete-Voronoi clustering of
// Section 1, while a prefix answers "which o1 have a neighbor within d".
//
// The implementation is the incremental distance join with duplicate-first
// filtering layered in at selectable depths (the Outside / Inside1 / Inside2
// strategies of Figure 9) and optional d_max-bound pruning (Local /
// GlobalNodes / GlobalAll, Section 4.2.1).
#ifndef SDJOIN_CORE_SEMI_JOIN_H_
#define SDJOIN_CORE_SEMI_JOIN_H_

#include <utility>

#include "core/distance_join.h"
#include "core/join_stats.h"
#include "core/snapshot.h"
#include "rtree/rtree.h"
#include "util/check.h"
#include "util/dynamic_bitset.h"

namespace sdj {

// Query options for DistanceSemiJoin.
struct SemiJoinOptions {
  // Shared knobs (metric, traversal, range, STOP AFTER, queue, estimation).
  // max_pairs counts distinct first objects. Maximum-distance estimation uses
  // the semi-join variant of Section 2.3 and requires an Inside filter.
  // join.metrics (DESIGN.md §12) instruments the semi-join too: the wrapped
  // engine owns every timed phase (expansion, refill, spill), so one sink
  // covers both.
  DistanceJoinOptions join;
  // Where duplicate first objects are filtered out (Figure 9).
  SemiJoinFilter filter = SemiJoinFilter::kInside2;
  // d_max bound exploitation (Section 4.2.1). Any setting other than kNone
  // implies Inside2 filtering, as in the paper's experiments.
  SemiJoinBound bound = SemiJoinBound::kNone;
};

// Incremental distance semi-join iterator. Usage mirrors DistanceJoin:
//
//   DistanceSemiJoin<2> semi(stores, warehouses, options);
//   JoinResult<2> pair;
//   while (semi.Next(&pair)) Assign(pair.id1, pair.id2);
// EngineT is the underlying join engine: DistanceJoin by default, or a
// ShardedDistanceJoin (core/shard_merge.h) for shard-parallel execution.
// It must accept DistanceJoin's 7-argument constructor shape.
template <int Dim, typename Index = RTree<Dim>,
          typename EngineT = DistanceJoin<Dim, Index>>
class DistanceSemiJoin {
 public:
  using Result = JoinResult<Dim>;

  DistanceSemiJoin(const Index& tree1, const Index& tree2,
                   const SemiJoinOptions& options,
                   JoinFilters<Dim> filters = JoinFilters<Dim>{})
      : options_(Normalize(options)),
        // Dense-object-id precondition for the wrapper's own S_o (the
        // engine validates its Inside bit string the same way). User input
        // must not abort — surface through status() instead.
        invalid_(options_.filter == SemiJoinFilter::kOutside &&
                 tree1.size() > 0 && tree1.max_object_id() >= tree1.size()),
        outside_(options_.filter == SemiJoinFilter::kOutside ? tree1.size()
                                                             : 0),
        engine_(tree1, tree2, EngineJoinOptions(options_), std::move(filters),
                EngineFilter(options_), options_.bound,
                options_.join.estimate_max_distance) {}

  // Produces the next (o1, nearest o2) pair by non-decreasing distance.
  bool Next(JoinResult<Dim>* out) {
    if (invalid_) return false;
    if (options_.join.max_pairs > 0 &&
        reported_ >= options_.join.max_pairs) {
      return false;
    }
    if (options_.filter == SemiJoinFilter::kOutside) {
      JoinResult<Dim> candidate;
      while (engine_.Next(&candidate)) {
        SDJ_CHECK(candidate.id1 < outside_.size());
        if (outside_.TestAndSet(candidate.id1)) {
          *out = candidate;
          ++reported_;
          return true;
        }
        ++outside_filtered_;
      }
      return false;
    }
    if (engine_.Next(out)) {
      ++reported_;
      return true;
    }
    return false;
  }

  // Cumulative statistics; filtered_reported includes pairs dropped by the
  // Outside filter when that strategy is selected.
  JoinStats stats() const {
    JoinStats s = engine_.stats();
    s.filtered_reported += outside_filtered_;
    s.pairs_reported = reported_;
    return s;
  }

  size_t max_memory_queue_size() const {
    return engine_.max_memory_queue_size();
  }
  // Live pair-queue entries — the serving layer's memory-cost proxy
  // (DESIGN.md §14).
  size_t queue_size() const { return engine_.queue_size(); }

  // Why iteration stopped (kOk while Next() still returns pairs); kIoError
  // means the engine stopped early with a valid partial prefix, kSuspended
  // that a StopToken halted it at a resumable safe point.
  JoinStatus status() const {
    if (invalid_) return JoinStatus::kInvalidArgument;
    // The wrapper's own max_pairs cap is normal exhaustion.
    if (options_.join.max_pairs > 0 && reported_ >= options_.join.max_pairs &&
        engine_.status() != JoinStatus::kIoError) {
      return JoinStatus::kExhausted;
    }
    return engine_.status();
  }

  // Clears a kSuspended engine status so iteration can continue.
  void ResumeSuspended() { engine_.ResumeSuspended(); }

  // ---- snapshot support (DESIGN.md §11) ----

  // Serializes the wrapper state (Outside-filter S_o and counters) followed
  // by the full engine state. Same safe-point contract as the engine's
  // SaveState.
  bool SaveState(snapshot::Blob* out) {
    if (invalid_) return false;
    out->PutU8(static_cast<uint8_t>(options_.filter));
    out->PutU8(static_cast<uint8_t>(options_.bound));
    out->PutU64(reported_);
    out->PutU64(outside_filtered_);
    out->PutU64(outside_.size());
    out->PutU64(outside_.WordCount());
    for (size_t i = 0; i < outside_.WordCount(); ++i) {
      out->PutU64(outside_.Word(i));
    }
    return engine_.SaveState(out);
  }

  // Counterpart of SaveState; the wrapper must have been constructed with
  // the same options over the same trees (fingerprint-checked).
  bool RestoreState(snapshot::BlobReader* in) {
    if (invalid_) return false;
    if (in->GetU8() != static_cast<uint8_t>(options_.filter)) return false;
    if (in->GetU8() != static_cast<uint8_t>(options_.bound)) return false;
    const uint64_t reported = in->GetU64();
    const uint64_t outside_filtered = in->GetU64();
    if (in->GetU64() != outside_.size()) return false;
    if (in->GetCount(8) != outside_.WordCount()) return false;
    for (size_t i = 0; i < outside_.WordCount(); ++i) {
      outside_.SetWord(i, in->GetU64());
    }
    if (!in->ok() || !engine_.RestoreState(in)) return false;
    reported_ = reported;
    outside_filtered_ = outside_filtered;
    return true;
  }

 private:
  // Applies the paper's coupling rules: bounds imply Inside2; estimation
  // requires an Inside filter (the engine must see distinct-first reports).
  static SemiJoinOptions Normalize(SemiJoinOptions options) {
    if (options.bound != SemiJoinBound::kNone) {
      options.filter = SemiJoinFilter::kInside2;
    }
    if (options.join.estimate_max_distance) {
      SDJ_CHECK(options.filter == SemiJoinFilter::kInside1 ||
                options.filter == SemiJoinFilter::kInside2);
    }
    SDJ_CHECK(options.filter != SemiJoinFilter::kNone);
    return options;
  }

  static DistanceJoinOptions EngineJoinOptions(const SemiJoinOptions& options) {
    DistanceJoinOptions join = options.join;
    if (options.filter == SemiJoinFilter::kOutside) {
      // The engine emits raw pairs; this wrapper dedupes and caps.
      join.max_pairs = 0;
      join.estimate_max_distance = false;
    }
    return join;
  }

  static SemiJoinFilter EngineFilter(const SemiJoinOptions& options) {
    return options.filter == SemiJoinFilter::kOutside ? SemiJoinFilter::kNone
                                                      : options.filter;
  }

  const SemiJoinOptions options_;
  const bool invalid_;     // dense-id precondition failed at construction
  DynamicBitset outside_;  // S_o for the Outside strategy
  EngineT engine_;
  uint64_t reported_ = 0;
  uint64_t outside_filtered_ = 0;
};

}  // namespace sdj

#endif  // SDJOIN_CORE_SEMI_JOIN_H_
