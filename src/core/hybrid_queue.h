// Hybrid memory/disk priority queue (Section 3.2).
//
// Pairs are layered by distance into three tiers:
//   * distance <  D1           — in-memory pairing heap (fully ordered)
//   * D1 <= distance < D2      — in-memory unorganized list
//   * distance >= D2           — on "disk": linked lists of pages, one list
//                                per distance bucket [k*D_T, (k+1)*D_T)
// with D1 and D2 advancing by a fixed increment D_T whenever the heap runs
// dry: the list is heapified, the bucket covering the new [D1, D2) window is
// loaded into the list. Keeping the heap small both bounds memory and keeps
// heap operations cheap; pairs that are never requested never touch the heap.
//
// Internally the boundaries are kept as an integer bucket *frontier*
// (D1 = frontier * D_T, D2 = D1 + D_T): every distance maps to its bucket
// through one floor(dist / D_T) computation, so no accumulated floating-
// point boundary can disagree with the bucket indexing.
//
// The paper notes D_T is a fixed constant chosen per workload; Figure 8
// benchmarks its sensitivity. Only forward (nearest-first) ordering is
// supported — the tiering is keyed on ascending distance.
#ifndef SDJOIN_CORE_HYBRID_QUEUE_H_
#define SDJOIN_CORE_HYBRID_QUEUE_H_

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/pair_entry.h"
#include "core/pair_queue.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injection.h"
#include "storage/page.h"
#include "storage/page_file.h"
#include "storage/page_store.h"
#include "util/check.h"
#include "util/pairing_heap.h"

namespace sdj {

// Construction parameters for HybridPairQueue.
struct HybridQueueOptions {
  // The distance increment D_T. Must be > 0. D1 starts at D_T and D2 at
  // 2*D_T, as in the paper's implementation.
  double tier_width = 1.0;
  // Page size of the disk tier.
  uint32_t page_size = 4096;
  // Buffer pages used while reading/writing the disk tier.
  uint32_t buffer_pages = 16;
  // If non-empty, the disk tier lives in this file; otherwise in memory
  // (still exercising the exact same page traffic and counters).
  std::string spill_path;
  // If set, the disk tier injects faults from this schedule (testing).
  std::optional<storage::FaultInjectionOptions> fault_injection;
  // If set, the disk tier simulates power loss at one exact write/sync op
  // (testing — see storage::CrashPointPageFile). Spills after the crash
  // point degrade to the in-memory overflow tier; the pair stream is
  // unaffected (crash_point_test.cc enumerates this).
  std::optional<storage::CrashPointOptions> crash_point;
  // Bounded-retry policy for the disk tier's buffer pool.
  storage::RetryPolicy retry;
  // Optional observability sink (DESIGN.md §12): records refill stalls,
  // per-entry spill latency, and the disk tier's page I/O. Null = disabled.
  obs::Metrics* metrics = nullptr;
};

// Page accounting of the spill file. Every page ever allocated is in
// exactly one of three states — live in a bucket chain, parked on the
// free list for reuse, or abandoned after an unrecoverable I/O error — so
// allocated == live + free + abandoned always holds (fault-injection tests
// assert it: no page is ever silently leaked).
struct SpillPageStats {
  uint64_t allocated = 0;  // pages ever created in the spill file
  uint64_t live = 0;       // pages currently holding bucket-chain records
  uint64_t free = 0;       // consumed pages awaiting reuse
  uint64_t abandoned = 0;  // unreachable after an I/O error (counted, lost)
  uint64_t reused = 0;     // page acquisitions served from the free list
};

// Three-tier pair queue. See file comment.
template <int Dim>
class HybridPairQueue final : public PairQueue<Dim> {
 public:
  HybridPairQueue(PairEntryCompare<Dim> cmp, const HybridQueueOptions& options)
      : options_(options), heap_(cmp) {
    SDJ_CHECK(options.tier_width > 0.0);
    std::unique_ptr<storage::PageFile> file = storage::CreatePageStore(
        {options.page_size, options.spill_path, options.fault_injection,
         options.crash_point},
        &injector_, &crash_);
    SDJ_CHECK(file != nullptr);
    pool_ = std::make_unique<storage::BufferPool>(
        std::move(file), options.buffer_pages, options.retry);
    pool_->SetMetrics(options.metrics);
    records_per_page_ = (options.page_size - kPageHeader) / kRecordSize;
    SDJ_CHECK(records_per_page_ > 0);
  }

  void Push(const PairEntry<Dim>& entry) override {
    SDJ_CHECK(entry.key == entry.distance);  // reverse mode is unsupported
    // Distances entering the queue are MINDIST values: finite-or-+inf and
    // never negative. (NaN cannot reach here — the key==distance check above
    // already rejects it — but BucketIndex saturates anyway.)
    SDJ_DCHECK(entry.distance >= 0.0 && !std::isnan(entry.distance));
    const uint64_t bucket = BucketIndex(entry.distance, options_.tier_width);
    if (bucket < frontier_) {
      heap_.Push(entry);
    } else if (bucket == frontier_) {
      list_.push_back(entry);
    } else {
      PushToDisk(entry, bucket);
    }
    ++total_size_;
    max_size_ = std::max(max_size_, total_size_);
    max_memory_size_ = std::max(
        max_memory_size_, heap_.Size() + list_.size() + overflow_size_);
  }

  bool Empty() override {
    Refill();
    return heap_.Empty();
  }

  const PairEntry<Dim>& Top() override {
    Refill();
    return heap_.Top();
  }

  PairEntry<Dim> Pop() override {
    Refill();
    --total_size_;
    return heap_.Pop();
  }

  void Clear() override {
    heap_.Clear();
    list_.clear();
    // Consumed chains go back on the free list — the chain page ids are
    // tracked in memory, so no I/O is needed — and a rebuilt queue reuses
    // the spill file's pages instead of growing it.
    for (auto& [index, bucket] : buckets_) {
      free_pages_.insert(free_pages_.end(), bucket.pages.begin(),
                         bucket.pages.end());
    }
    buckets_.clear();
    overflow_.clear();
    overflow_size_ = 0;
    total_size_ = 0;
    frontier_ = 1;
    io_error_ = false;  // a rebuilt queue no longer depends on lost entries
  }

  size_t Size() const override { return total_size_; }
  size_t MaxSize() const override { return max_size_; }
  size_t MaxMemorySize() const override { return max_memory_size_; }
  bool io_error() const override { return io_error_; }
  uint64_t spill_fallbacks() const override { return spill_fallbacks_; }

  // Visits every live entry across all three tiers plus the overflow
  // mirror. Returns false — without visiting further entries — if a disk
  // page cannot be read; the caller must then abandon the snapshot (the
  // queue itself is unharmed: nothing is consumed).
  bool ForEach(
      const std::function<void(const PairEntry<Dim>&)>& fn) override {
    heap_.ForEach(fn);
    for (const PairEntry<Dim>& e : list_) fn(e);
    for (const auto& [index, entries] : overflow_) {
      for (const PairEntry<Dim>& e : entries) fn(e);
    }
    for (const auto& [index, bucket] : buckets_) {
      for (const storage::PageId page : bucket.pages) {
        const char* data = pool_->TryPin(page);
        if (data == nullptr) return false;
        uint32_t count;
        std::memcpy(&count, data + 4, 4);
        for (uint32_t i = 0; i < count; ++i) {
          fn(ReadRecord(data + kPageHeader + i * kRecordSize));
        }
        pool_->Unpin(page, /*dirty=*/false);
      }
    }
    return true;
  }

  uint64_t TierFrontier() const override { return frontier_; }

  // Restores a snapshot's frontier before the saved entries are re-pushed,
  // so each push lands in the tier the saved invariant places it in (heap
  // below, list at, disk above the frontier). Only valid on an empty queue.
  void RestoreTierFrontier(uint64_t frontier) override {
    SDJ_CHECK(total_size_ == 0);
    frontier_ = frontier;
  }

  // Disk-tier traffic (page-file reads/writes behind the small buffer).
  storage::IoStats disk_stats() const { return pool_->stats(); }

  // Spill-file page accounting (see SpillPageStats). `allocated` is the
  // page-file size in pages; with reuse it is bounded by the peak *live*
  // spilled volume, not the lifetime spilled volume.
  SpillPageStats spill_pages() const {
    SpillPageStats s;
    s.allocated = pool_->num_pages();
    for (const auto& [index, bucket] : buckets_) {
      s.live += bucket.pages.size();
    }
    s.free = free_pages_.size();
    s.abandoned = abandoned_pages_.size();
    s.reused = pages_reused_;
    return s;
  }

  // Fault-injection layer of the disk tier, when configured; null otherwise.
  storage::FaultInjectingPageFile* injector() const { return injector_; }
  // Crash-point layer of the disk tier, when configured; null otherwise.
  storage::CrashPointPageFile* crash_point() const { return crash_; }

  // Scrub repair hook (DESIGN.md §16): re-parks abandoned spill pages whose
  // faults have healed — the page pins cleanly again — on the free list for
  // reuse. Pages that remain unreadable stay abandoned (their records are
  // gone; the accounting keeps saying so). The allocated == live + free +
  // abandoned invariant holds before and after. Returns the number
  // recycled.
  uint64_t RecycleAbandonedPages() {
    uint64_t recycled = 0;
    std::vector<storage::PageId> still_abandoned;
    for (const storage::PageId id : abandoned_pages_) {
      char* data = pool_->TryPin(id);
      if (data == nullptr) {
        still_abandoned.push_back(id);
        continue;
      }
      pool_->Unpin(id, /*dirty=*/false);
      free_pages_.push_back(id);
      ++recycled;
    }
    abandoned_pages_ = std::move(still_abandoned);
    return recycled;
  }

  // Maps a distance to its integer bucket. Total for every double (public
  // so the property tests can feed it adversarial inputs directly): a NaN
  // or negative quotient saturates to bucket 0 and an over-range quotient
  // to the top bucket, instead of the undefined float-to-uint64 cast the
  // raw floor(dist / D_T) would hit under UBSan.
  static uint64_t BucketIndex(double distance, double dt) {
    const double idx = std::floor(distance / dt);
    if (!(idx > 0.0)) return 0;  // NaN, negative, or the first bucket
    return idx >= 9.0e15 ? static_cast<uint64_t>(9.0e15)
                         : static_cast<uint64_t>(idx);
  }

 private:
  static constexpr uint32_t kPageHeader = 8;  // next page id + record count
  static constexpr uint32_t kItemSize = 16 * Dim + 16;
  static constexpr uint32_t kRecordSize = 16 + 2 * kItemSize + 16;

  struct Bucket {
    storage::PageId head = storage::kInvalidPageId;
    storage::PageId tail = storage::kInvalidPageId;
    uint32_t tail_count = 0;
    uint64_t total = 0;
    // The chain's page ids in order, mirrored in memory so consumed and
    // cleared chains can be recycled without reading their next links.
    std::vector<storage::PageId> pages;
  };

  // -- record serialization (fixed-size, memcpy-based) --

  static char* PutBytes(char* dst, const void* src, size_t n) {
    std::memcpy(dst, src, n);
    return dst + n;
  }
  static const char* GetBytes(const char* src, void* dst, size_t n) {
    std::memcpy(dst, src, n);
    return src + n;
  }

  static void WriteItem(char* dst, const JoinItem<Dim>& item) {
    dst = PutBytes(dst, item.rect.lo.coords.data(), 8 * Dim);
    dst = PutBytes(dst, item.rect.hi.coords.data(), 8 * Dim);
    dst = PutBytes(dst, &item.ref, 8);
    dst = PutBytes(dst, &item.level, 2);
    const uint8_t kind = static_cast<uint8_t>(item.kind);
    PutBytes(dst, &kind, 1);
  }
  static void ReadItem(const char* src, JoinItem<Dim>* item) {
    src = GetBytes(src, item->rect.lo.coords.data(), 8 * Dim);
    src = GetBytes(src, item->rect.hi.coords.data(), 8 * Dim);
    src = GetBytes(src, &item->ref, 8);
    src = GetBytes(src, &item->level, 2);
    uint8_t kind = 0;
    GetBytes(src, &kind, 1);
    item->kind = static_cast<JoinItemKind>(kind);
  }

  static void WriteRecord(char* dst, const PairEntry<Dim>& e) {
    PutBytes(dst, &e.key, 8);
    PutBytes(dst + 8, &e.distance, 8);
    WriteItem(dst + 16, e.item1);
    WriteItem(dst + 16 + kItemSize, e.item2);
    char* tail = dst + 16 + 2 * kItemSize;
    PutBytes(tail, &e.seq, 8);
    PutBytes(tail + 8, &e.category, 1);
    PutBytes(tail + 9, &e.depth, 2);
  }
  static PairEntry<Dim> ReadRecord(const char* src) {
    PairEntry<Dim> e;
    GetBytes(src, &e.key, 8);
    GetBytes(src + 8, &e.distance, 8);
    ReadItem(src + 16, &e.item1);
    ReadItem(src + 16 + kItemSize, &e.item2);
    const char* tail = src + 16 + 2 * kItemSize;
    GetBytes(tail, &e.seq, 8);
    GetBytes(tail + 8, &e.category, 1);
    GetBytes(tail + 9, &e.depth, 2);
    return e;
  }

  // -- disk tier --

  // A push that cannot reach the disk tier degrades into the in-memory
  // overflow mirror of the same bucket: ordering is preserved exactly (the
  // entry would violate nearest-first if it entered the heap or list early),
  // only the memory bound degrades. Counted, never fatal.
  void SpillFallback(const PairEntry<Dim>& entry, uint64_t bucket_index) {
    ++spill_fallbacks_;
    overflow_[bucket_index].push_back(entry);
    ++overflow_size_;
  }

  // Returns a pinned, reusable-or-fresh spill page. Consumed chain pages on
  // the free list are preferred over extending the file — that reuse is what
  // bounds the spill file by *live* spilled volume. A free page that cannot
  // be pinned is dropped from the list and counted abandoned (it stays
  // allocated but untracked would violate the SpillPageStats invariant).
  char* AcquireSpillPage(storage::PageId* page) {
    while (!free_pages_.empty()) {
      const storage::PageId id = free_pages_.back();
      free_pages_.pop_back();
      char* data = pool_->TryPin(id);
      if (data != nullptr) {
        ++pages_reused_;
        *page = id;
        return data;
      }
      abandoned_pages_.push_back(id);
    }
    *page = storage::kInvalidPageId;
    char* data = pool_->TryNewPage(page);
    if (data == nullptr && *page != storage::kInvalidPageId) {
      // The file grew but no frame could hold the page (the eviction
      // victim's write-back failed). Park the orphan for later reuse so
      // allocated == live + free + abandoned survives even this path.
      free_pages_.push_back(*page);
    }
    return data;
  }

  void PushToDisk(const PairEntry<Dim>& entry, uint64_t bucket_index) {
    obs::PhaseTimer timer(options_.metrics, obs::Op::kSpill);
    Bucket& bucket = buckets_[bucket_index];
    if (bucket.tail == storage::kInvalidPageId ||
        bucket.tail_count == records_per_page_) {
      storage::PageId page;
      char* fresh = AcquireSpillPage(&page);
      if (fresh == nullptr) {
        SpillFallback(entry, bucket_index);
        return;
      }
      // Initialize the header while the page is pinned at creation, so a
      // page that gets linked but never filled is still safe to traverse.
      const storage::PageId no_next = storage::kInvalidPageId;
      std::memcpy(fresh, &no_next, sizeof(no_next));
      const uint32_t no_records = 0;
      std::memcpy(fresh + 4, &no_records, sizeof(no_records));
      pool_->Unpin(page, /*dirty=*/true);
      if (bucket.tail == storage::kInvalidPageId) {
        bucket.head = page;
      } else {
        // Link the old tail to the new page.
        char* old_tail = pool_->TryPin(bucket.tail);
        if (old_tail == nullptr) {
          // The fresh page never joined the chain; it is a valid empty page,
          // so it parks on the free list instead of leaking.
          free_pages_.push_back(page);
          SpillFallback(entry, bucket_index);
          return;
        }
        std::memcpy(old_tail, &page, sizeof(page));
        pool_->Unpin(bucket.tail, /*dirty=*/true);
      }
      bucket.tail = page;
      bucket.tail_count = 0;
      bucket.pages.push_back(page);
    }
    char* data = pool_->TryPin(bucket.tail);
    if (data == nullptr) {
      SpillFallback(entry, bucket_index);
      return;
    }
    WriteRecord(data + kPageHeader + bucket.tail_count * kRecordSize, entry);
    ++bucket.tail_count;
    std::memcpy(data + 4, &bucket.tail_count, 4);
    pool_->Unpin(bucket.tail, /*dirty=*/true);
    ++bucket.total;
  }

  void LoadBucketIntoList(uint64_t index) {
    auto it = buckets_.find(index);
    if (it != buckets_.end()) {
      const Bucket& bucket = it->second;
      uint64_t loaded = 0;
      for (size_t i = 0; i < bucket.pages.size(); ++i) {
        const storage::PageId page = bucket.pages[i];
        const char* data = pool_->TryPin(page);
        if (data == nullptr) {
          // The rest of the chain is unreadable; its entries are lost. The
          // join sees this through io_error() and reports kIoError instead
          // of silently returning an incomplete result. This is the one
          // path that still abandons pages — the unreadable page and its
          // tail — and it is counted, never silent.
          io_error_ = true;
          SDJ_DCHECK(bucket.total >= loaded);
          total_size_ -= bucket.total - loaded;
          abandoned_pages_.insert(abandoned_pages_.end(),
                                  bucket.pages.begin() + i,
                                  bucket.pages.end());
          break;
        }
        uint32_t count;
        std::memcpy(&count, data + 4, 4);
        for (uint32_t r = 0; r < count; ++r) {
          list_.push_back(ReadRecord(data + kPageHeader + r * kRecordSize));
        }
        loaded += count;
        pool_->Unpin(page, /*dirty=*/false);
        // Consumed: every record is now in the list, so the page is free
        // for the next PushToDisk to reuse.
        free_pages_.push_back(page);
      }
      buckets_.erase(it);
    }
    auto overflow_it = overflow_.find(index);
    if (overflow_it != overflow_.end()) {
      for (const PairEntry<Dim>& e : overflow_it->second) list_.push_back(e);
      overflow_size_ -= overflow_it->second.size();
      overflow_.erase(overflow_it);
    }
  }

  // Restores the invariant "the global minimum, if any, is in the heap" by
  // advancing the bucket frontier (the paper's D1 <- D2, D2 <- D2 + D_T).
  // Invariant: heap holds buckets < frontier_, list holds bucket frontier_,
  // disk holds buckets > frontier_.
  void Refill() {
    if (!heap_.Empty()) return;
    if (list_.empty() && buckets_.empty() && overflow_.empty()) return;
    // A refill stall: the heap ran dry and pairs must migrate up the tiers
    // before the next Top()/Pop() can answer.
    obs::PhaseTimer timer(options_.metrics, obs::Op::kRefill);
    while (heap_.Empty()) {
      if (!list_.empty()) {
        for (const PairEntry<Dim>& e : list_) heap_.Push(e);
        list_.clear();
        ++frontier_;
        LoadBucketIntoList(frontier_);
        continue;
      }
      if (buckets_.empty() && overflow_.empty()) return;  // genuinely empty
      // Jump directly to the first non-empty bucket (disk or overflow).
      uint64_t next_bucket = ~0ULL;
      if (!buckets_.empty()) next_bucket = buckets_.begin()->first;
      if (!overflow_.empty()) {
        next_bucket = std::min(next_bucket, overflow_.begin()->first);
      }
      frontier_ = next_bucket;
      LoadBucketIntoList(frontier_);
    }
    max_memory_size_ = std::max(
        max_memory_size_, heap_.Size() + list_.size() + overflow_size_);
  }

  HybridQueueOptions options_;
  PairingHeap<PairEntry<Dim>, PairEntryCompare<Dim>> heap_;
  std::vector<PairEntry<Dim>> list_;
  std::map<uint64_t, Bucket> buckets_;
  // In-memory mirror of disk buckets for entries the disk tier rejected
  // (same bucket indexing, so distance ordering is preserved exactly).
  std::map<uint64_t, std::vector<PairEntry<Dim>>> overflow_;
  size_t overflow_size_ = 0;
  std::unique_ptr<storage::BufferPool> pool_;
  // Consumed chain pages awaiting reuse by PushToDisk (LIFO).
  std::vector<storage::PageId> free_pages_;
  // Pages lost to unrecoverable I/O errors, by id, so a later
  // RecycleAbandonedPages can re-park the ones whose faults healed.
  std::vector<storage::PageId> abandoned_pages_;
  uint64_t pages_reused_ = 0;
  storage::FaultInjectingPageFile* injector_ = nullptr;
  storage::CrashPointPageFile* crash_ = nullptr;
  uint32_t records_per_page_ = 0;
  // Heap < bucket frontier_ <= list; disk > frontier_. D1 = frontier_ * D_T.
  uint64_t frontier_ = 1;
  size_t total_size_ = 0;
  size_t max_size_ = 0;
  size_t max_memory_size_ = 0;
  uint64_t spill_fallbacks_ = 0;
  bool io_error_ = false;
};

}  // namespace sdj

#endif  // SDJOIN_CORE_HYBRID_QUEUE_H_
