// Maximum-distance estimation from a result-count budget (Section 2.2.4).
//
// Given that at most K result pairs will be requested (the STOP AFTER clause),
// the algorithm can shrink the effective maximum distance D_max as it runs:
// it maintains a set M of pairs that (a) are guaranteed to produce results
// inside the current [D_min, D_max] window and (b) together are guaranteed to
// generate at least K result pairs. The largest d_max value in M then bounds
// the distance of the K-th result, so D_max can be lowered to it, which in
// turn prunes queue insertions.
//
// M is kept as a d_max-ordered pairing heap Q_M plus a hash table locating a
// pair's heap node so it can be deleted when the pair leaves the main queue —
// exactly the two-structure design the paper describes.
//
// The semi-join variant (Section 2.3) additionally enforces that first items
// in M are unique, counts only first-item objects, and refuses pairs whose
// first item (a node) has already been expanded (its objects were counted
// through its children already).
#ifndef SDJOIN_CORE_MAX_DIST_ESTIMATOR_H_
#define SDJOIN_CORE_MAX_DIST_ESTIMATOR_H_

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/snapshot.h"
#include "util/check.h"
#include "util/pairing_heap.h"

namespace sdj {

// Identifies one side of a pair: kind/level/ref packed into 64 bits.
// (Object ids must fit in 48 bits; page ids are 32 bits.)
inline uint64_t EncodeEstimatorItem(uint8_t kind, int16_t level,
                                    uint64_t ref) {
  return (static_cast<uint64_t>(kind) << 62) |
         (static_cast<uint64_t>(static_cast<uint16_t>(level + 1)) << 48) |
         (ref & 0x0000FFFFFFFFFFFFULL);
}

// Estimates D_max for the incremental distance join / semi-join.
class MaxDistEstimator {
 public:
  struct PairKey {
    uint64_t first = 0;
    uint64_t second = 0;
    bool operator==(const PairKey&) const = default;
  };

  // `k` is the result budget (> 0); `initial_max` the query's own D_max
  // (infinity if unbounded); `semi_join` selects the Section 2.3 variant.
  MaxDistEstimator(uint64_t k, double initial_max, bool semi_join)
      : remaining_(k), max_distance_(initial_max), semi_join_(semi_join) {
    SDJ_CHECK(k > 0);
  }

  // Current estimate; pairs with MINDIST above this can be pruned.
  double max_distance() const { return max_distance_; }
  // Whether the estimate ever tightened below the query's own bound (used to
  // decide if an exhausted queue may be an artifact of over-pruning).
  bool ever_tightened() const { return ever_tightened_; }

  // Notifies that `key` was pushed on the main queue with MINDIST `d`,
  // d_max bound `dmax`, and at least `count` result pairs generated from it.
  // For the join variant `count` is a lower bound on object pairs; for the
  // semi-join variant it is a lower bound on distinct first objects.
  // `count` may be an expected value instead (the paper's aggressive mode) at
  // the price of possible restarts. Returns the (possibly lowered) D_max.
  double OnEnqueue(const PairKey& key, double d, double dmax, uint64_t count,
                   double query_min) {
    if (remaining_ == 0) return max_distance_;
    // Eligibility (Section 2.2.4): every result generated from the pair must
    // fall inside [D_min, D_max].
    if (d < query_min || dmax > max_distance_) return max_distance_;
    if (count == 0) return max_distance_;
    if (semi_join_) {
      InsertSemi(key, dmax, count);
    } else {
      InsertJoin(key, dmax, count);
    }
    Shrink();
    return max_distance_;
  }

  // Notifies that the pair `key` was removed from the main queue.
  void OnDequeue(const PairKey& key) {
    auto it = by_pair_.find(key);
    if (it == by_pair_.end()) return;
    RemoveEntry(it);
  }

  // Semi-join: notifies that node `first_key` was expanded while in first
  // position; its subtree must not be counted again (Section 2.3).
  void MarkFirstItemProcessed(uint64_t first_key) {
    if (!semi_join_) return;
    processed_first_.insert(first_key);
    // Drop any M entry with this first item: its children are about to be
    // counted individually, and keeping both would double-count objects and
    // make the estimate unsound.
    auto it = by_first_.find(first_key);
    if (it != by_first_.end()) {
      auto pair_it = by_pair_.find(it->second);
      SDJ_CHECK(pair_it != by_pair_.end());
      RemoveEntry(pair_it);
    }
  }

  // Semi-join: the pair (o1, o2) was reported; any M pair with first item o1
  // must be dropped, and the budget shrinks by one.
  void OnReportSemi(uint64_t first_key) {
    SDJ_CHECK(semi_join_);
    auto it = by_first_.find(first_key);
    if (it != by_first_.end()) {
      auto pair_it = by_pair_.find(it->second);
      SDJ_CHECK(pair_it != by_pair_.end());
      RemoveEntry(pair_it);
    }
    DecrementBudget();
  }

  // Join: a result pair was reported; the budget shrinks by one.
  void OnReportJoin() {
    SDJ_CHECK(!semi_join_);
    DecrementBudget();
  }

  size_t set_size() const { return by_pair_.size(); }
  uint64_t updates() const { return updates_; }

  // ---- snapshot support (DESIGN.md §11) ----

  // Serializes the complete estimator state. `by_first_` and `sum_` are
  // derived from the M entries on restore, so only the entries themselves,
  // the scalar state, and the processed-first set are written.
  void SaveTo(snapshot::Blob* out) const {
    out->PutU64(remaining_);
    out->PutDouble(max_distance_);
    out->PutBool(ever_tightened_);
    out->PutU64(updates_);
    out->PutU64(by_pair_.size());
    qm_.ForEach([out](const HeapEntry& e) {
      out->PutDouble(e.dmax);
      out->PutU64(e.key.first);
      out->PutU64(e.key.second);
      out->PutU64(e.count);
    });
    out->PutU64(processed_first_.size());
    for (const uint64_t first : processed_first_) out->PutU64(first);
  }

  // Rebuilds the estimator from SaveTo's output (the semi-join flag is a
  // construction parameter and must already match). Returns false on a
  // malformed blob; the estimator is then in an unspecified state and must
  // be discarded.
  bool RestoreFrom(snapshot::BlobReader* in) {
    qm_.Clear();
    by_pair_.clear();
    by_first_.clear();
    processed_first_.clear();
    sum_ = 0;
    remaining_ = in->GetU64();
    max_distance_ = in->GetDouble();
    ever_tightened_ = in->GetBool();
    updates_ = in->GetU64();
    const uint64_t entries = in->GetCount(32);
    for (uint64_t i = 0; i < entries; ++i) {
      HeapEntry e;
      e.dmax = in->GetDouble();
      e.key.first = in->GetU64();
      e.key.second = in->GetU64();
      e.count = in->GetU64();
      if (!in->ok()) return false;
      Heap::Handle handle = qm_.Push(e);
      by_pair_.emplace(e.key, handle);
      if (semi_join_) by_first_.emplace(e.key.first, e.key);
      sum_ += e.count;
    }
    const uint64_t processed = in->GetCount(8);
    for (uint64_t i = 0; i < processed; ++i) {
      processed_first_.insert(in->GetU64());
    }
    return in->ok();
  }

 private:
  struct HeapEntry {
    double dmax;
    PairKey key;
    uint64_t count;
  };
  struct HeapCompare {
    // Max-heap on dmax: the first candidate for removal on top.
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      return a.dmax > b.dmax;
    }
  };
  using Heap = PairingHeap<HeapEntry, HeapCompare>;

  struct PairKeyHash {
    size_t operator()(const PairKey& k) const {
      uint64_t h = k.first * 0x9e3779b97f4a7c15ULL;
      h ^= (k.second + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
      return static_cast<size_t>(h * 0xff51afd7ed558ccdULL);
    }
  };

  void InsertJoin(const PairKey& key, double dmax, uint64_t count) {
    if (by_pair_.contains(key)) return;  // already tracked
    Heap::Handle handle = qm_.Push(HeapEntry{dmax, key, count});
    by_pair_.emplace(key, handle);
    sum_ += count;
    ++updates_;
  }

  void InsertSemi(const PairKey& key, double dmax, uint64_t count) {
    if (processed_first_.contains(key.first)) return;
    auto it = by_first_.find(key.first);
    if (it != by_first_.end()) {
      // Keep whichever pair for this first item has the smaller d_max.
      auto pair_it = by_pair_.find(it->second);
      SDJ_CHECK(pair_it != by_pair_.end());
      if (pair_it->second->value.dmax <= dmax) return;
      RemoveEntry(pair_it);
    }
    Heap::Handle handle = qm_.Push(HeapEntry{dmax, key, count});
    by_pair_.emplace(key, handle);
    by_first_.emplace(key.first, key);
    sum_ += count;
    ++updates_;
  }

  // Removes the entry addressed by a by_pair_ iterator.
  void RemoveEntry(
      std::unordered_map<PairKey, Heap::Handle, PairKeyHash>::iterator it) {
    const HeapEntry entry = qm_.Erase(it->second);
    sum_ -= entry.count;
    by_pair_.erase(it);
    if (semi_join_) by_first_.erase(entry.key.first);
    ++updates_;
  }

  // The paper's trimming rule: while M guarantees MORE than the remaining
  // budget, remove the largest-d_max pair and lower D_max to its d_max. This
  // is sound because at the moment of removal, M holds > K results that all
  // lie within the removed pair's d_max, so the K-th result does too.
  void Shrink() {
    while (!qm_.Empty() && sum_ > remaining_) {
      const HeapEntry top = qm_.Pop();
      sum_ -= top.count;
      by_pair_.erase(top.key);
      if (semi_join_) by_first_.erase(top.key.first);
      if (top.dmax < max_distance_) {
        max_distance_ = top.dmax;
        ever_tightened_ = true;
      }
      ++updates_;
    }
  }

  void DecrementBudget() {
    if (remaining_ > 0) {
      --remaining_;
      if (remaining_ == 0) {
        // No more results needed; M is moot.
        qm_.Clear();
        by_pair_.clear();
        by_first_.clear();
        sum_ = 0;
      } else {
        Shrink();
      }
    }
  }

  uint64_t remaining_;
  double max_distance_;
  const bool semi_join_;
  bool ever_tightened_ = false;
  Heap qm_;
  std::unordered_map<PairKey, Heap::Handle, PairKeyHash> by_pair_;
  std::unordered_map<uint64_t, PairKey> by_first_;  // semi-join only
  std::unordered_set<uint64_t> processed_first_;    // semi-join only
  uint64_t sum_ = 0;  // total guaranteed results across M
  uint64_t updates_ = 0;
};

}  // namespace sdj

#endif  // SDJOIN_CORE_MAX_DIST_ESTIMATOR_H_
