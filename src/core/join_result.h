// The result-pair type shared by all join iterators.
#ifndef SDJOIN_CORE_JOIN_RESULT_H_
#define SDJOIN_CORE_JOIN_RESULT_H_

#include "geometry/rect.h"
#include "rtree/rtree.h"

namespace sdj {

// One reported pair: the object ids, their geometry, and the ordering
// distance (pair distance for the distance join / semi-join; anchor distance
// for OrderedIntersectionJoin).
template <int Dim>
struct JoinResult {
  ObjectId id1 = 0;
  ObjectId id2 = 0;
  Rect<Dim> rect1;
  Rect<Dim> rect2;
  double distance = 0.0;
};

}  // namespace sdj

#endif  // SDJOIN_CORE_JOIN_RESULT_H_
