// The result-pair type shared by all join iterators.
#ifndef SDJOIN_CORE_JOIN_RESULT_H_
#define SDJOIN_CORE_JOIN_RESULT_H_

#include <cstdint>

#include "geometry/rect.h"
#include "rtree/rtree.h"

namespace sdj {

// Terminal state of a join iterator. While Next() keeps returning pairs the
// status is kOk; after Next() returns false, status() says why: kExhausted
// means every qualifying pair was produced, kIoError means an unrecoverable
// I/O failure stopped the join early (pairs already reported remain valid —
// a partial, correctly ordered prefix of the full result), kSuspended means
// a StopToken halted the join at a safe point (resumable — DESIGN.md §11),
// and kInvalidArgument means the query configuration violated a documented
// precondition (detected at construction; no pair is ever produced).
enum class JoinStatus : uint8_t {
  kOk = 0,
  kExhausted,
  kIoError,
  kSuspended,
  kInvalidArgument,
};

inline const char* JoinStatusName(JoinStatus status) {
  switch (status) {
    case JoinStatus::kOk:
      return "ok";
    case JoinStatus::kExhausted:
      return "exhausted";
    case JoinStatus::kIoError:
      return "io-error";
    case JoinStatus::kSuspended:
      return "suspended";
    case JoinStatus::kInvalidArgument:
      return "invalid-argument";
  }
  return "unknown";
}

// One reported pair: the object ids, their geometry, and the ordering
// distance (pair distance for the distance join / semi-join; anchor distance
// for OrderedIntersectionJoin).
template <int Dim>
struct JoinResult {
  ObjectId id1 = 0;
  ObjectId id2 = 0;
  Rect<Dim> rect1;
  Rect<Dim> rect2;
  double distance = 0.0;
};

}  // namespace sdj

#endif  // SDJOIN_CORE_JOIN_RESULT_H_
