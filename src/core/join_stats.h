// Performance counters for the incremental join algorithms, matching the
// measures the paper reports (Table 1: execution time, object distance
// calculations, maximum queue size, node I/O) plus diagnostics for the
// pruning machinery.
#ifndef SDJOIN_CORE_JOIN_STATS_H_
#define SDJOIN_CORE_JOIN_STATS_H_

#include <cstdint>

namespace sdj {

// Cumulative counters over the lifetime of one join iterator.
struct JoinStats {
  uint64_t pairs_reported = 0;
  // Exact object-to-object distance computations (Table 1 "Dist. Calc.").
  uint64_t object_distance_calcs = 0;
  // All distance-function evaluations, including node-level MINDIST/MAXDIST.
  uint64_t total_distance_calcs = 0;
  uint64_t queue_pushes = 0;
  uint64_t queue_pops = 0;
  // Largest number of pairs simultaneously in the priority queue
  // (Table 1 "Queue Size").
  uint64_t max_queue_size = 0;
  // Buffer-pool misses on R-tree nodes during the join (Table 1 "Node I/O").
  uint64_t node_io = 0;
  // R-tree node accesses (buffer hits + misses).
  uint64_t node_accesses = 0;
  uint64_t nodes_expanded = 0;
  // Pairs rejected by the [Dmin, Dmax] range tests of Figure 5.
  uint64_t pruned_by_range = 0;
  // Pairs rejected by the estimated maximum distance (Section 2.2.4).
  uint64_t pruned_by_estimate = 0;
  // Pairs rejected by semi-join d_max bounds (Local/GlobalNodes/GlobalAll).
  uint64_t pruned_by_bound = 0;
  // Items rejected by selection windows / object predicates (JoinFilters).
  uint64_t pruned_by_filter = 0;
  // Pairs skipped because their first object was already reported
  // (semi-join Inside1/Inside2 filtering).
  uint64_t filtered_reported = 0;
  // Full restarts forced by over-aggressive maximum-distance estimation.
  uint64_t restarts = 0;
  // Page reads/writes re-issued after transient or checksum faults, across
  // both trees' pools (and recovered — retries that ran out surface as
  // JoinStatus::kIoError instead).
  uint64_t io_retries = 0;
  // Page reads that failed checksum verification (each is also retried).
  uint64_t checksum_failures = 0;
  // Hybrid-queue pushes that fell back to the in-memory overflow tier
  // because the disk tier could not accept them.
  uint64_t spill_fallbacks = 0;
  // Batched distance-kernel calls (geometry/rect_batch.h). Distance-calc
  // counters above keep their algorithmic meaning — they count the
  // computations the scalar engine would perform, whether a kernel or a
  // scalar call produced the value.
  uint64_t batch_kernel_invocations = 0;
  // Expansions whose child-pair scoring was sharded across worker threads
  // (num_threads > 1 and enough candidates to amortize the handoff).
  uint64_t parallel_expansions = 0;
  // Entries run through the integer code-screening stage on quantized pages
  // (DESIGN.md §17), and how many survived to be decoded. Screening only
  // removes entries the classify ladder would prune as out-of-range — the
  // pair stream and every counter above are identical with screening on or
  // off; these two are the only screening-dependent counters, so the golden
  // fixtures deliberately exclude them.
  uint64_t screened_candidates = 0;
  uint64_t screen_survivors = 0;
};

}  // namespace sdj

#endif  // SDJOIN_CORE_JOIN_STATS_H_
