// Performance counters for the incremental join algorithms, matching the
// measures the paper reports (Table 1: execution time, object distance
// calculations, maximum queue size, node I/O) plus diagnostics for the
// pruning machinery.
#ifndef SDJOIN_CORE_JOIN_STATS_H_
#define SDJOIN_CORE_JOIN_STATS_H_

#include <cstdint>

namespace sdj {

// Cumulative counters over the lifetime of one join iterator.
struct JoinStats {
  uint64_t pairs_reported = 0;
  // Exact object-to-object distance computations (Table 1 "Dist. Calc.").
  uint64_t object_distance_calcs = 0;
  // All distance-function evaluations, including node-level MINDIST/MAXDIST.
  uint64_t total_distance_calcs = 0;
  uint64_t queue_pushes = 0;
  uint64_t queue_pops = 0;
  // Largest number of pairs simultaneously in the priority queue
  // (Table 1 "Queue Size").
  uint64_t max_queue_size = 0;
  // Buffer-pool misses on R-tree nodes during the join (Table 1 "Node I/O").
  uint64_t node_io = 0;
  // R-tree node accesses (buffer hits + misses).
  uint64_t node_accesses = 0;
  uint64_t nodes_expanded = 0;
  // Pairs rejected by the [Dmin, Dmax] range tests of Figure 5.
  uint64_t pruned_by_range = 0;
  // Pairs rejected by the estimated maximum distance (Section 2.2.4).
  uint64_t pruned_by_estimate = 0;
  // Pairs rejected by semi-join d_max bounds (Local/GlobalNodes/GlobalAll).
  uint64_t pruned_by_bound = 0;
  // Items rejected by selection windows / object predicates (JoinFilters).
  uint64_t pruned_by_filter = 0;
  // Pairs skipped because their first object was already reported
  // (semi-join Inside1/Inside2 filtering).
  uint64_t filtered_reported = 0;
  // Full restarts forced by over-aggressive maximum-distance estimation.
  uint64_t restarts = 0;
  // Page reads/writes re-issued after transient or checksum faults, across
  // both trees' pools (and recovered — retries that ran out surface as
  // JoinStatus::kIoError instead).
  uint64_t io_retries = 0;
  // Page reads that failed checksum verification (each is also retried).
  uint64_t checksum_failures = 0;
  // Hybrid-queue pushes that fell back to the in-memory overflow tier
  // because the disk tier could not accept them.
  uint64_t spill_fallbacks = 0;
  // Batched distance-kernel calls (geometry/rect_batch.h). Distance-calc
  // counters above keep their algorithmic meaning — they count the
  // computations the scalar engine would perform, whether a kernel or a
  // scalar call produced the value.
  uint64_t batch_kernel_invocations = 0;
  // Expansions whose child-pair scoring was sharded across worker threads
  // (num_threads > 1 and enough candidates to amortize the handoff).
  uint64_t parallel_expansions = 0;
  // Entries run through the integer code-screening stage on quantized pages
  // (DESIGN.md §17), and how many survived to be decoded. Screening only
  // removes entries the classify ladder would prune as out-of-range — the
  // pair stream and every counter above are identical with screening on or
  // off; these two are the only screening-dependent counters, so the golden
  // fixtures deliberately exclude them.
  uint64_t screened_candidates = 0;
  uint64_t screen_survivors = 0;

  // Folds another engine's counters into this one. Every counter is a sum
  // except max_queue_size: peaks on disjoint queues are concurrent, so the
  // fleet-wide peak is the max, not the total. This is the ONE aggregation
  // used everywhere (shard merge, bench reporting) — ad-hoc field sums have
  // already double-counted once and are banned by tests/shard_stream_test.cc.
  void MergeFrom(const JoinStats& other) {
    pairs_reported += other.pairs_reported;
    object_distance_calcs += other.object_distance_calcs;
    total_distance_calcs += other.total_distance_calcs;
    queue_pushes += other.queue_pushes;
    queue_pops += other.queue_pops;
    if (other.max_queue_size > max_queue_size) {
      max_queue_size = other.max_queue_size;
    }
    node_io += other.node_io;
    node_accesses += other.node_accesses;
    nodes_expanded += other.nodes_expanded;
    pruned_by_range += other.pruned_by_range;
    pruned_by_estimate += other.pruned_by_estimate;
    pruned_by_bound += other.pruned_by_bound;
    pruned_by_filter += other.pruned_by_filter;
    filtered_reported += other.filtered_reported;
    restarts += other.restarts;
    io_retries += other.io_retries;
    checksum_failures += other.checksum_failures;
    spill_fallbacks += other.spill_fallbacks;
    batch_kernel_invocations += other.batch_kernel_invocations;
    parallel_expansions += other.parallel_expansions;
    screened_candidates += other.screened_candidates;
    screen_survivors += other.screen_survivors;
  }
};

}  // namespace sdj

#endif  // SDJOIN_CORE_JOIN_STATS_H_
