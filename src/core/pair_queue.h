// Priority-queue abstraction for the incremental join, with the default
// fully in-memory implementation (a pairing heap, Section 3.2 [13]).
// The hybrid memory/disk implementation lives in core/hybrid_queue.h.
#ifndef SDJOIN_CORE_PAIR_QUEUE_H_
#define SDJOIN_CORE_PAIR_QUEUE_H_

#include <algorithm>
#include <cstddef>
#include <functional>

#include "core/pair_entry.h"
#include "util/pairing_heap.h"

namespace sdj {

// Interface over the join's pair priority queue. `Empty`/`Top`/`Pop` are
// non-const because the hybrid implementation migrates pairs between tiers
// lazily when the head is requested.
template <int Dim>
class PairQueue {
 public:
  virtual ~PairQueue() = default;

  virtual void Push(const PairEntry<Dim>& entry) = 0;
  // Pushes `n` entries in order. Equivalent to n Push calls (the comparator
  // is a total order, so the pop stream is insertion-order independent up to
  // that order anyway); implementations may amortize bookkeeping.
  virtual void PushBulk(const PairEntry<Dim>* entries, size_t n) {
    for (size_t i = 0; i < n; ++i) Push(entries[i]);
  }
  virtual bool Empty() = 0;
  // Highest-priority entry; queue must be non-empty.
  virtual const PairEntry<Dim>& Top() = 0;
  virtual PairEntry<Dim> Pop() = 0;
  virtual void Clear() = 0;

  // Live entries (across all tiers for hybrid queues).
  virtual size_t Size() const = 0;
  // High-water mark of Size().
  virtual size_t MaxSize() const = 0;
  // High-water mark of entries held in memory (== MaxSize for the memory
  // queue; smaller for the hybrid queue).
  virtual size_t MaxMemorySize() const = 0;

  // True if the queue lost entries to an unrecoverable I/O failure (hybrid
  // disk tier); the join must surface JoinStatus::kIoError. A memory queue
  // never fails.
  virtual bool io_error() const { return false; }
  // Pushes that fell back to the in-memory overflow tier because the disk
  // tier could not accept them (degradation, not an error).
  virtual uint64_t spill_fallbacks() const { return 0; }

  // Snapshot support (DESIGN.md §11). ForEach visits every live entry in
  // unspecified order; returns false if entries could not all be read (an
  // unreadable hybrid disk page), in which case the snapshot must be
  // abandoned. Non-const because the hybrid implementation pins pages.
  virtual bool ForEach(
      const std::function<void(const PairEntry<Dim>&)>& fn) = 0;
  // The hybrid queue's integer bucket frontier, 0 for memory queues.
  virtual uint64_t TierFrontier() const { return 0; }
  // Restores a saved frontier on an EMPTY queue, so that subsequent pushes
  // classify into the same tiers the saved queue used.
  virtual void RestoreTierFrontier(uint64_t frontier) { (void)frontier; }
};

// Fully in-memory pair queue backed by a pairing heap.
template <int Dim>
class MemoryPairQueue final : public PairQueue<Dim> {
 public:
  explicit MemoryPairQueue(PairEntryCompare<Dim> cmp) : heap_(cmp) {}

  void Push(const PairEntry<Dim>& entry) override {
    heap_.Push(entry);
    max_size_ = std::max(max_size_, heap_.Size());
  }
  void PushBulk(const PairEntry<Dim>* entries, size_t n) override {
    for (size_t i = 0; i < n; ++i) heap_.Push(entries[i]);
    // Size grows monotonically across the pushes, so one update suffices.
    max_size_ = std::max(max_size_, heap_.Size());
  }
  bool Empty() override { return heap_.Empty(); }
  const PairEntry<Dim>& Top() override { return heap_.Top(); }
  PairEntry<Dim> Pop() override { return heap_.Pop(); }
  void Clear() override { heap_.Clear(); }
  size_t Size() const override { return heap_.Size(); }
  size_t MaxSize() const override { return max_size_; }
  size_t MaxMemorySize() const override { return max_size_; }
  bool ForEach(
      const std::function<void(const PairEntry<Dim>&)>& fn) override {
    heap_.ForEach(fn);
    return true;
  }

 private:
  PairingHeap<PairEntry<Dim>, PairEntryCompare<Dim>> heap_;
  size_t max_size_ = 0;
};

}  // namespace sdj

#endif  // SDJOIN_CORE_PAIR_QUEUE_H_
