// One-call conveniences over the incremental iterators, for callers who want
// a complete answer rather than a pipeline.
#ifndef SDJOIN_CORE_CONVENIENCE_H_
#define SDJOIN_CORE_CONVENIENCE_H_

#include <cstdint>
#include <vector>

#include "core/distance_join.h"
#include "core/join_result.h"
#include "core/semi_join.h"
#include "rtree/rtree.h"

namespace sdj {

// The k closest (o1, o2) pairs, ascending by distance (fewer if the product
// is smaller). Runs the incremental join with estimation enabled.
template <typename Index>
std::vector<JoinResult<Index::kDim>> KClosestPairs(
    const Index& tree1, const Index& tree2, uint64_t k,
    Metric metric = Metric::kEuclidean) {
  constexpr int Dim = Index::kDim;
  DistanceJoinOptions options;
  options.metric = metric;
  options.max_pairs = k;
  options.estimate_max_distance = k > 0;
  DistanceJoin<Dim, Index> join(tree1, tree2, options);
  std::vector<JoinResult<Dim>> results;
  results.reserve(k);
  JoinResult<Dim> pair;
  while (join.Next(&pair)) results.push_back(pair);
  return results;
}

// The k farthest (o1, o2) pairs, descending by distance.
template <typename Index>
std::vector<JoinResult<Index::kDim>> KFarthestPairs(
    const Index& tree1, const Index& tree2, uint64_t k,
    Metric metric = Metric::kEuclidean) {
  constexpr int Dim = Index::kDim;
  DistanceJoinOptions options;
  options.metric = metric;
  options.max_pairs = k;
  options.reverse_order = true;
  options.estimate_max_distance = k > 0;
  DistanceJoin<Dim, Index> join(tree1, tree2, options);
  std::vector<JoinResult<Dim>> results;
  results.reserve(k);
  JoinResult<Dim> pair;
  while (join.Next(&pair)) results.push_back(pair);
  return results;
}

// All pairs within `max_distance`, ascending (the ordered within-join).
template <typename Index>
std::vector<JoinResult<Index::kDim>> PairsWithin(
    const Index& tree1, const Index& tree2, double max_distance,
    Metric metric = Metric::kEuclidean) {
  constexpr int Dim = Index::kDim;
  DistanceJoinOptions options;
  options.metric = metric;
  options.max_distance = max_distance;
  DistanceJoin<Dim, Index> join(tree1, tree2, options);
  std::vector<JoinResult<Dim>> results;
  JoinResult<Dim> pair;
  while (join.Next(&pair)) results.push_back(pair);
  return results;
}

// Number of pairs within `max_distance` (no materialization).
template <typename Index>
uint64_t CountPairsWithin(const Index& tree1, const Index& tree2,
                          double max_distance,
                          Metric metric = Metric::kEuclidean) {
  constexpr int Dim = Index::kDim;
  DistanceJoinOptions options;
  options.metric = metric;
  options.max_distance = max_distance;
  DistanceJoin<Dim, Index> join(tree1, tree2, options);
  uint64_t count = 0;
  JoinResult<Dim> pair;
  while (join.Next(&pair)) ++count;
  return count;
}

// For every object of tree1, its nearest partner in tree2, ascending by
// distance (the complete distance semi-join / discrete Voronoi assignment).
template <typename Index>
std::vector<JoinResult<Index::kDim>> NearestPartnerForAll(
    const Index& tree1, const Index& tree2,
    Metric metric = Metric::kEuclidean) {
  constexpr int Dim = Index::kDim;
  SemiJoinOptions options;
  options.join.metric = metric;
  options.bound = SemiJoinBound::kGlobalAll;
  DistanceSemiJoin<Dim, Index> semi(tree1, tree2, options);
  std::vector<JoinResult<Dim>> results;
  results.reserve(tree1.size());
  JoinResult<Dim> pair;
  while (results.size() < tree1.size() && semi.Next(&pair)) {
    results.push_back(pair);
  }
  return results;
}

}  // namespace sdj

#endif  // SDJOIN_CORE_CONVENIENCE_H_
