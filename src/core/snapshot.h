// Durable snapshots for the incremental join iterators (DESIGN.md §11).
//
// Two pieces:
//
//   * Blob / BlobReader — a flat, little-endian, fail-soft serialization
//     buffer. Readers never abort on malformed input (a snapshot file is
//     external data): every Get* past the end returns zero and latches
//     ok() == false, so restore paths check one flag at the end.
//
//   * SnapshotStore — shadow-paged snapshot persistence through the PR 1
//     page-store stack (checksummed pages, optional fault injection).
//     Layout: the first S pages (S = num_slots, default 2) are header slots
//     that rotate by epoch modulo S; the payload of epoch e lives on pages
//     S + S*i + (e % S), so consecutive snapshots interleave and the file
//     stops growing once the payload size stabilizes. A snapshot commits by
//     (1) writing + syncing the payload pages and (2) writing + syncing the
//     slot header, which carries the payload's length and FNV-1a checksum.
//     A torn write or bit flip anywhere — caught by the per-page checksum
//     trailer or by the payload checksum — invalidates only that slot;
//     ReadLatest then falls back past every invalid slot to the newest
//     surviving snapshot (with S slots, up to S-1 consecutive torn or
//     corrupt epochs) instead of failing.
#ifndef SDJOIN_CORE_SNAPSHOT_H_
#define SDJOIN_CORE_SNAPSHOT_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/pair_entry.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/checksum.h"
#include "storage/fault_injection.h"
#include "storage/page.h"
#include "storage/page_file.h"
#include "storage/page_store.h"
#include "util/check.h"

namespace sdj::snapshot {

// Append-only little-endian serialization buffer.
class Blob {
 public:
  void PutU8(uint8_t v) { PutBytes(&v, 1); }
  void PutU16(uint16_t v) { PutBytes(&v, 2); }
  void PutU32(uint32_t v) { PutBytes(&v, 4); }
  void PutU64(uint64_t v) { PutBytes(&v, 8); }
  void PutI16(int16_t v) { PutBytes(&v, 2); }
  void PutDouble(double v) { PutBytes(&v, 8); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutBytes(const void* src, size_t n) {
    const char* p = static_cast<const char*>(src);
    data_.insert(data_.end(), p, p + n);
  }

  const char* data() const { return data_.data(); }
  size_t size() const { return data_.size(); }

 private:
  std::vector<char> data_;
};

// Fail-soft reader over a serialized blob. Reads past the end return zero
// and latch ok() == false; callers validate once, at the end.
class BlobReader {
 public:
  BlobReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit BlobReader(const std::string& s) : BlobReader(s.data(), s.size()) {}

  uint8_t GetU8() { return Get<uint8_t>(); }
  uint16_t GetU16() { return Get<uint16_t>(); }
  uint32_t GetU32() { return Get<uint32_t>(); }
  uint64_t GetU64() { return Get<uint64_t>(); }
  int16_t GetI16() { return Get<int16_t>(); }
  double GetDouble() { return Get<double>(); }
  bool GetBool() { return GetU8() != 0; }

  bool GetBytes(void* dst, size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      std::memset(dst, 0, n);
      return false;
    }
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  // A length prefix about to drive an allocation must be plausible: it can
  // never exceed the bytes remaining in the blob divided by the per-element
  // size. Latches ok() == false and returns 0 when it does.
  uint64_t GetCount(size_t element_size) {
    const uint64_t n = GetU64();
    SDJ_DCHECK(element_size > 0);
    if (!ok_ || n > (size_ - pos_) / element_size) {
      ok_ = false;
      return 0;
    }
    return n;
  }

  bool ok() const { return ok_; }
  size_t remaining() const { return ok_ ? size_ - pos_ : 0; }

 private:
  template <typename T>
  T Get() {
    T v{};
    GetBytes(&v, sizeof(T));
    return v;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---- PairEntry serialization (the queue's wire format) ----

template <int Dim>
void WriteItem(Blob* out, const JoinItem<Dim>& item) {
  out->PutBytes(item.rect.lo.coords.data(), 8 * Dim);
  out->PutBytes(item.rect.hi.coords.data(), 8 * Dim);
  out->PutU64(item.ref);
  out->PutI16(item.level);
  out->PutU8(static_cast<uint8_t>(item.kind));
}

template <int Dim>
bool ReadItem(BlobReader* in, JoinItem<Dim>* item) {
  in->GetBytes(item->rect.lo.coords.data(), 8 * Dim);
  in->GetBytes(item->rect.hi.coords.data(), 8 * Dim);
  item->ref = in->GetU64();
  item->level = in->GetI16();
  const uint8_t kind = in->GetU8();
  if (kind > static_cast<uint8_t>(JoinItemKind::kObject)) return false;
  item->kind = static_cast<JoinItemKind>(kind);
  return in->ok();
}

template <int Dim>
void WriteEntry(Blob* out, const PairEntry<Dim>& e) {
  out->PutDouble(e.key);
  out->PutDouble(e.distance);
  WriteItem(out, e.item1);
  WriteItem(out, e.item2);
  out->PutU64(e.seq);
  out->PutU8(e.category);
  out->PutI16(e.depth);
}

template <int Dim>
bool ReadEntry(BlobReader* in, PairEntry<Dim>* e) {
  e->key = in->GetDouble();
  e->distance = in->GetDouble();
  if (!ReadItem(in, &e->item1)) return false;
  if (!ReadItem(in, &e->item2)) return false;
  e->seq = in->GetU64();
  e->category = in->GetU8();
  e->depth = in->GetI16();
  return in->ok();
}

// Serialized size of one PairEntry (for GetCount plausibility checks).
template <int Dim>
constexpr size_t EntryWireSize() {
  return 2 * 8 + 2 * (16 * Dim + 8 + 2 + 1) + 8 + 1 + 2;
}

// ---- SnapshotStore ----

struct SnapshotStoreOptions {
  // If non-empty, snapshots live in this file (and survive the process);
  // otherwise in memory (in-process suspend/resume and tests).
  std::string path;
  // Logical page size of the snapshot file.
  uint32_t page_size = 4096;
  // If set, faults are injected under the checksum layer (testing).
  std::optional<storage::FaultInjectionOptions> fault_injection;
  // If set, the store simulates power loss at one exact write/sync op
  // (testing — see storage::CrashPointPageFile).
  std::optional<storage::CrashPointOptions> crash_point;
  // Bounded-retry policy for transient page faults.
  storage::RetryPolicy retry;
  // Optional observability sink (DESIGN.md §12): records the latency of
  // each shadow-paged snapshot commit. Null = disabled.
  obs::Metrics* metrics = nullptr;
  // Header/payload slots (>= 2). S slots keep the S newest epochs on disk,
  // so resume survives up to S-1 consecutive torn or corrupt commits. Like
  // page_size, this is part of the file layout: reopen an existing snapshot
  // file with the slot count it was created with.
  uint32_t num_slots = 2;
};

// Read-side counters of one SnapshotStore.
struct SnapshotStoreStats {
  uint64_t snapshots_written = 0;
  // WriteSnapshot calls that failed; the previous snapshot stays committed.
  uint64_t write_failures = 0;
  // Header slots that existed but failed validation during ReadLatest —
  // each one is a snapshot that was skipped in favor of an older (or no)
  // snapshot.
  uint64_t invalid_slots_seen = 0;
};

// Classification of one snapshot header slot (ClassifySlots). The scrub
// layer (storage/scrub.h, tools/sdjoin_scrub) reports these; the serving
// layer's rehydration self-heal routes around torn/corrupt slots.
enum class SlotStatus : uint8_t {
  kEmpty = 0,  // all-zero header: nothing was ever committed here
  kCommitted,  // fully verified, newest epoch — the resume point
  kStale,      // fully verified, but older than the committed slot
  kTorn,       // header or payload pages unreadable (failed checksum / I/O)
  kCorrupt,    // readable but inconsistent: bad magic/version, payload
               // checksum mismatch, or header naming pages the file lacks
};

inline const char* SlotStatusName(SlotStatus status) {
  switch (status) {
    case SlotStatus::kEmpty:     return "empty";
    case SlotStatus::kCommitted: return "committed";
    case SlotStatus::kStale:     return "stale";
    case SlotStatus::kTorn:      return "torn";
    case SlotStatus::kCorrupt:   return "corrupt";
  }
  return "unknown";
}

// Shadow-paged snapshot file. See file comment for the layout and commit
// protocol. Not thread-safe (one cursor owns one store).
class SnapshotStore {
 public:
  // One header slot's scrub verdict (see SlotStatus). epoch/length/
  // payload_pages are meaningful only when the header itself was readable
  // (kCommitted, kStale, kCorrupt-with-readable-header).
  struct SlotReport {
    uint32_t slot = 0;
    SlotStatus status = SlotStatus::kEmpty;
    uint64_t epoch = 0;
    uint64_t length = 0;
    uint64_t payload_pages = 0;
  };

  // Creates the store (or opens an existing snapshot file, recovering a
  // truncated tail from a crashed writer). Returns null only if the backing
  // file can neither be opened nor created.
  static std::unique_ptr<SnapshotStore> Open(
      const SnapshotStoreOptions& options) {
    storage::FaultInjectingPageFile* injector = nullptr;
    storage::CrashPointPageFile* crash = nullptr;
    std::unique_ptr<storage::PageFile> file;
    const storage::PageStoreOptions store_options{
        options.page_size, options.path, options.fault_injection,
        options.crash_point};
    if (!options.path.empty()) {
      file = storage::OpenPageStore(store_options,
                                    /*recover_truncated_tail=*/true,
                                    &injector, &crash);
    }
    if (file == nullptr) {
      file = storage::CreatePageStore(store_options, &injector, &crash);
    }
    if (file == nullptr) return nullptr;
    auto store = std::unique_ptr<SnapshotStore>(
        new SnapshotStore(options, std::move(file), injector));
    store->crash_ = crash;
    store->InitHeaders();
    return store;
  }

  // Commits `payload` as the next snapshot epoch. On any unrecoverable
  // write failure the slot under construction is abandoned and the previous
  // snapshot remains the committed one; returns false.
  bool WriteSnapshot(const Blob& payload) {
    // Whole-commit latency: payload pages + sync + header + sync.
    obs::PhaseTimer timer(metrics_, obs::Op::kSnapshotCommit);
    const uint64_t epoch = last_epoch_ + 1;
    const uint32_t slot = static_cast<uint32_t>(epoch % num_slots_);
    const uint64_t length = payload.size();
    const uint64_t npages = (length + page_size_ - 1) / page_size_;
    if (!EnsurePages(num_slots_ + num_slots_ * npages)) {
      ++stats_.write_failures;
      return false;
    }
    std::vector<char> buffer(page_size_);
    for (uint64_t i = 0; i < npages; ++i) {
      const size_t offset = i * page_size_;
      const size_t chunk =
          std::min<size_t>(page_size_, length - offset);
      std::memcpy(buffer.data(), payload.data() + offset, chunk);
      std::memset(buffer.data() + chunk, 0, page_size_ - chunk);
      if (!WriteWithRetry(PayloadPage(i, slot), buffer.data())) {
        ++stats_.write_failures;
        return false;
      }
    }
    if (file_->Sync() != storage::IoStatus::kOk) {
      ++stats_.write_failures;
      return false;
    }
    // Commit point: the slot header names the payload.
    std::memset(buffer.data(), 0, page_size_);
    PackHeader(buffer.data(), epoch, length,
               storage::Fnv1a64(payload.data(), payload.size()));
    if (!WriteWithRetry(slot, buffer.data()) ||
        file_->Sync() != storage::IoStatus::kOk) {
      ++stats_.write_failures;
      return false;
    }
    last_epoch_ = epoch;
    ++stats_.snapshots_written;
    return true;
  }

  // Loads the newest valid snapshot into *payload (and its epoch into
  // *epoch, when non-null). A slot whose header or payload fails validation
  // is skipped — counted in invalid_slots_seen — and the newest surviving
  // slot is used instead. Returns false if no valid snapshot exists.
  bool ReadLatest(std::string* payload, uint64_t* epoch = nullptr) {
    std::string best_payload;
    uint64_t best_epoch = 0;
    bool found = false;
    for (uint32_t slot = 0; slot < num_slots_; ++slot) {
      std::string slot_payload;
      SlotReport report;
      switch (ProbeSlot(slot, &slot_payload, &report,
                        /*consume_corrupt_at_open=*/true)) {
        case SlotState::kEmpty:
          break;
        case SlotState::kTorn:
        case SlotState::kCorrupt:
          ++stats_.invalid_slots_seen;
          break;
        case SlotState::kValid:
          if (!found || report.epoch > best_epoch) {
            best_epoch = report.epoch;
            best_payload = std::move(slot_payload);
          }
          found = true;
          break;
      }
    }
    if (!found) return false;
    // Future snapshots must never overwrite the slot we are about to resume
    // from — even when another slot claims a newer epoch whose payload
    // failed validation (its epoch is forgotten here, so subsequent writes
    // rotate through the invalid slots first).
    last_epoch_ = best_epoch;
    *payload = std::move(best_payload);
    if (epoch != nullptr) *epoch = best_epoch;
    return true;
  }

  // Classifies every header slot (scrub view — DESIGN.md §16). Read-only:
  // no healing, no stats_ changes, no effect on which slot a later
  // ReadLatest picks. Of the fully-verified slots, the newest epoch is
  // kCommitted and the rest kStale.
  std::vector<SlotReport> ClassifySlots() {
    std::vector<SlotReport> reports(num_slots_);
    uint32_t best_slot = num_slots_;
    uint64_t best_epoch = 0;
    for (uint32_t slot = 0; slot < num_slots_; ++slot) {
      std::string payload;
      reports[slot].slot = slot;
      switch (ProbeSlot(slot, &payload, &reports[slot],
                        /*consume_corrupt_at_open=*/false)) {
        case SlotState::kEmpty:
          reports[slot].status = SlotStatus::kEmpty;
          break;
        case SlotState::kTorn:
          reports[slot].status = SlotStatus::kTorn;
          break;
        case SlotState::kCorrupt:
          reports[slot].status = SlotStatus::kCorrupt;
          break;
        case SlotState::kValid:
          reports[slot].status = SlotStatus::kStale;
          if (best_slot == num_slots_ || reports[slot].epoch > best_epoch) {
            best_slot = slot;
            best_epoch = reports[slot].epoch;
          }
          break;
      }
    }
    if (best_slot != num_slots_) {
      reports[best_slot].status = SlotStatus::kCommitted;
    }
    return reports;
  }

  // Scrub-and-repair: classifies every slot, then quarantines torn and
  // corrupt headers by zeroing them — the slot becomes cleanly empty, so
  // future commits rotate through it instead of tripping over garbage.
  // Committed and stale slots are never touched. `healed`, when non-null,
  // receives the number of slots quarantined. Returns the (pre-repair)
  // classification.
  std::vector<SlotReport> ScrubSlots(uint64_t* healed = nullptr) {
    std::vector<SlotReport> reports = ClassifySlots();
    uint64_t fixed = 0;
    std::vector<char> zero(page_size_, 0);
    for (const SlotReport& report : reports) {
      if (report.status != SlotStatus::kTorn &&
          report.status != SlotStatus::kCorrupt) {
        continue;
      }
      if (WriteWithRetry(report.slot, zero.data())) {
        corrupt_at_open_[report.slot] = false;
        ++fixed;
      }
    }
    if (healed != nullptr) *healed = fixed;
    return reports;
  }

  // Reads one specific slot, verifying it fully. On success the slot is
  // adopted as the resume point: last_epoch_ becomes its epoch, so the next
  // WriteSnapshot continues from it (overwriting any newer — necessarily
  // rejected — epochs as their slots rotate around). This is the serving
  // layer's fall-back-past-the-newest-snapshot path; ReadLatest remains the
  // default. False if the slot is empty, torn, or corrupt (not counted in
  // invalid_slots_seen — the caller is inspecting, not resuming blind).
  bool ReadSlotPayload(uint32_t slot, std::string* payload,
                       uint64_t* epoch = nullptr) {
    if (slot >= num_slots_) return false;
    SlotReport report;
    if (ProbeSlot(slot, payload, &report,
                  /*consume_corrupt_at_open=*/false) != SlotState::kValid) {
      return false;
    }
    last_epoch_ = report.epoch;
    if (epoch != nullptr) *epoch = report.epoch;
    return true;
  }

  // File pages the committed and stale slots actually need (header slots
  // included). Pages beyond this are orphaned tails from abandoned larger
  // commits; sdjoin_scrub --repair truncates them (storage/scrub.h).
  uint64_t NeededPages() {
    uint64_t needed = num_slots_;
    for (const SlotReport& report : ClassifySlots()) {
      if (report.status != SlotStatus::kCommitted &&
          report.status != SlotStatus::kStale) {
        continue;
      }
      if (report.payload_pages == 0) continue;
      needed = std::max<uint64_t>(
          needed, PayloadPage(report.payload_pages - 1, report.slot) + 1);
    }
    return needed;
  }

  const SnapshotStoreStats& stats() const { return stats_; }
  uint64_t last_epoch() const { return last_epoch_; }
  uint32_t num_slots() const { return num_slots_; }
  // Allocated pages of the backing store (>= NeededPages()).
  uint64_t file_pages() const { return file_->num_pages(); }

  // Fault-injection layer, when configured; null otherwise.
  storage::FaultInjectingPageFile* injector() const { return injector_; }
  // Crash-point layer, when configured; null otherwise.
  storage::CrashPointPageFile* crash_point() const { return crash_; }

 private:
  static constexpr uint64_t kMagic = 0x53444A534E415031ULL;  // "SDJSNAP1"
  static constexpr uint32_t kVersion = 1;
  static constexpr size_t kHeaderBytes = 40;

  // kTorn = pages unreadable; kCorrupt = readable but inconsistent. Both
  // are "invalid" to ReadLatest; the scrub report keeps them apart.
  enum class SlotState { kEmpty, kValid, kTorn, kCorrupt };

  SnapshotStore(const SnapshotStoreOptions& options,
                std::unique_ptr<storage::PageFile> file,
                storage::FaultInjectingPageFile* injector)
      : page_size_(options.page_size),
        num_slots_(options.num_slots),
        retry_(options.retry),
        metrics_(options.metrics),
        file_(std::move(file)),
        injector_(injector),
        corrupt_at_open_(num_slots_, false) {
    SDJ_CHECK(page_size_ >= kHeaderBytes);
    SDJ_CHECK(num_slots_ >= 2);
  }

  storage::PageId PayloadPage(uint64_t index, uint32_t slot) const {
    return static_cast<storage::PageId>(num_slots_ + num_slots_ * index +
                                        slot);
  }

  static void PackHeader(char* dst, uint64_t epoch, uint64_t length,
                         uint64_t checksum) {
    std::memcpy(dst, &kMagic, 8);
    const uint32_t version = kVersion;
    std::memcpy(dst + 8, &version, 4);
    const uint32_t reserved = 0;
    std::memcpy(dst + 12, &reserved, 4);
    std::memcpy(dst + 16, &epoch, 8);
    std::memcpy(dst + 24, &length, 8);
    std::memcpy(dst + 32, &checksum, 8);
  }

  // Makes the file span at least `count` pages. New pages are written as
  // zeroes so they carry a valid checksum trailer.
  bool EnsurePages(uint64_t count) {
    std::vector<char> zero(page_size_, 0);
    while (file_->num_pages() < count) {
      const storage::PageId id = file_->Allocate();
      if (!WriteWithRetry(id, zero.data())) return false;
    }
    return true;
  }

  // Fresh stores get readable all-zero header slots, so "empty" and
  // "corrupt" stay distinguishable. An existing slot that cannot even be
  // read (e.g., a torn header commit from a crashed writer) is remembered
  // as corrupt-at-open, then healed to empty so the slot is reusable.
  void InitHeaders() {
    if (file_->num_pages() >= num_slots_) {
      // Existing file: probe every header; heal unreadable ones.
      std::vector<char> buffer(page_size_);
      std::vector<char> zero(page_size_, 0);
      for (uint32_t slot = 0; slot < num_slots_; ++slot) {
        if (!ReadWithRetry(slot, buffer.data())) {
          corrupt_at_open_[slot] = true;
          WriteWithRetry(slot, zero.data());  // best effort
          continue;
        }
        // Track the newest committed epoch so the next WriteSnapshot never
        // targets the slot holding it, even if ReadLatest is never called.
        uint64_t magic;
        uint32_t version;
        uint64_t epoch;
        std::memcpy(&magic, buffer.data(), 8);
        std::memcpy(&version, buffer.data() + 8, 4);
        std::memcpy(&epoch, buffer.data() + 16, 8);
        if (magic == kMagic && version == kVersion) {
          last_epoch_ = std::max(last_epoch_, epoch);
        }
      }
      return;
    }
    EnsurePages(num_slots_);
  }

  // Fully verifies one slot: header readable, magic/version right, payload
  // pages present and readable, payload checksum matching. Fills *report
  // with whatever the header revealed (epoch/length/payload_pages stay zero
  // when the header itself was unreadable). `consume_corrupt_at_open`
  // preserves the historical ReadLatest behavior of reporting a healed
  // torn-at-open header exactly once; scrub probes pass false and leave the
  // memory of the tear intact.
  SlotState ProbeSlot(uint32_t slot, std::string* payload, SlotReport* report,
                      bool consume_corrupt_at_open) {
    report->slot = slot;
    if (corrupt_at_open_[slot]) {
      if (consume_corrupt_at_open) corrupt_at_open_[slot] = false;
      return SlotState::kTorn;
    }
    if (file_->num_pages() < num_slots_) return SlotState::kEmpty;
    std::vector<char> buffer(page_size_);
    if (!ReadWithRetry(slot, buffer.data())) return SlotState::kTorn;
    uint64_t magic;
    std::memcpy(&magic, buffer.data(), 8);
    if (magic == 0) return SlotState::kEmpty;
    if (magic != kMagic) return SlotState::kCorrupt;
    uint32_t version;
    std::memcpy(&version, buffer.data() + 8, 4);
    if (version != kVersion) return SlotState::kCorrupt;
    uint64_t checksum;
    std::memcpy(&report->epoch, buffer.data() + 16, 8);
    std::memcpy(&report->length, buffer.data() + 24, 8);
    std::memcpy(&checksum, buffer.data() + 32, 8);
    report->payload_pages =
        (report->length + page_size_ - 1) / page_size_;
    const uint64_t npages = report->payload_pages;
    if (npages > 0 &&
        PayloadPage(npages - 1, slot) >= file_->num_pages()) {
      return SlotState::kCorrupt;  // header names pages the file lacks
    }
    payload->resize(report->length);
    for (uint64_t i = 0; i < npages; ++i) {
      if (!ReadWithRetry(PayloadPage(i, slot), buffer.data())) {
        return SlotState::kTorn;
      }
      const size_t offset = i * page_size_;
      const size_t chunk =
          std::min<size_t>(page_size_, report->length - offset);
      std::memcpy(payload->data() + offset, buffer.data(), chunk);
    }
    if (storage::Fnv1a64(payload->data(), payload->size()) != checksum) {
      return SlotState::kCorrupt;
    }
    return SlotState::kValid;
  }

  bool ReadWithRetry(storage::PageId id, char* buffer) {
    for (uint32_t attempt = 0; attempt < retry_.max_attempts; ++attempt) {
      const storage::IoStatus status = file_->Read(id, buffer);
      if (status == storage::IoStatus::kOk) return true;
      if (status == storage::IoStatus::kFailed) return false;
    }
    return false;
  }

  bool WriteWithRetry(storage::PageId id, const char* buffer) {
    for (uint32_t attempt = 0; attempt < retry_.max_attempts; ++attempt) {
      const storage::IoStatus status = file_->Write(id, buffer);
      if (status == storage::IoStatus::kOk) return true;
      if (status == storage::IoStatus::kFailed) return false;
    }
    return false;
  }

  const uint32_t page_size_;
  const uint32_t num_slots_;
  const storage::RetryPolicy retry_;
  obs::Metrics* const metrics_;
  std::unique_ptr<storage::PageFile> file_;
  storage::FaultInjectingPageFile* injector_ = nullptr;
  storage::CrashPointPageFile* crash_ = nullptr;
  uint64_t last_epoch_ = 0;
  std::vector<char> corrupt_at_open_;
  SnapshotStoreStats stats_;
};

}  // namespace sdj::snapshot

#endif  // SDJOIN_CORE_SNAPSHOT_H_
