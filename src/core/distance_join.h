// The incremental distance join (Section 2.2) — the paper's primary
// contribution — together with every policy knob its evaluation exercises:
//
//   * node-processing policies (Section 2.2.2): Basic (always expand item 1),
//     Even (expand the shallower node, the paper's recommended default), and
//     Simultaneous (expand both nodes of a node/node pair with the within-
//     filter + plane-sweep optimizations of traditional spatial joins);
//   * tie-break policies: depth-first vs. breadth-first (Section 2.2.2);
//   * a [Dmin, Dmax] distance range with MAXDIST/MINMAXDIST pruning
//     (Section 2.2.3, Figure 5);
//   * maximum-distance estimation from a STOP AFTER budget (Section 2.2.4),
//     in guaranteed (minimum fan-out) and aggressive (expected occupancy,
//     restart-on-failure) flavors;
//   * farthest-first ("reverse") ordering (Section 2.2.5);
//   * the hybrid memory/disk priority queue (Section 3.2);
//   * object-bounding-rectangle mode for objects stored outside the tree
//     (Figure 3, lines 7-14), via a user exact-distance callback;
//   * the distance semi-join filter and bound strategies (Sections 2.3,
//     4.2.1) — configured through DistanceSemiJoin in core/semi_join.h.
//
// The iterator is pipelined: each Next() call reports the next pair by
// non-decreasing distance, and the entire state lives in the priority queue,
// so a caller may stop at any time ("fast first", Section 1).
//
// Structurally, DistanceJoin is a policy over the shared best-first core
// (core/best_first.h, DESIGN.md §13): the core owns the pop loop, queue,
// safe points, I/O-status propagation, serialization plumbing, and the
// parallel classify; this class supplies pair classification, the node-
// processing policies, estimation, and the semi-join machinery.
#ifndef SDJOIN_CORE_DISTANCE_JOIN_H_
#define SDJOIN_CORE_DISTANCE_JOIN_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/best_first.h"
#include "core/env_knobs.h"
#include "core/hybrid_queue.h"
#include "core/join_result.h"
#include "core/join_stats.h"
#include "core/max_dist_estimator.h"
#include "core/pair_entry.h"
#include "core/pair_queue.h"
#include "core/snapshot.h"
#include "geometry/code_screen.h"
#include "geometry/distance.h"
#include "geometry/metrics.h"
#include "geometry/rect_batch.h"
#include "obs/metrics.h"
#include "rtree/rtree.h"
#include "util/check.h"
#include "util/dynamic_bitset.h"
#include "util/stop_token.h"
#include "util/thread_pool.h"

namespace sdj {

// How node/node pairs are expanded (Section 2.2.2).
enum class NodeProcessingPolicy {
  kBasic,         // always process item 1 (Figure 3 as printed)
  kEven,          // process the node at the shallower level (the default)
  kSimultaneous,  // process both nodes at once with filter + plane sweep
  // Defer leaf expansion until BOTH items are leaf nodes, then process the
  // two leaves simultaneously — the strategy Section 2.2.2 recommends for
  // unbalanced structures without leaf bounding rectangles (quadtrees),
  // reducing per-object accesses.
  kDeferredLeaf,
};

// Semi-join duplicate filtering (Section 2.3 / Figure 9). kNone = plain join.
enum class SemiJoinFilter {
  kNone,
  kOutside,  // filter outside the algorithm (handled by DistanceSemiJoin)
  kInside1,  // filter dequeued pairs inside the main loop
  kInside2,  // additionally filter pairs when nodes are expanded
};

// Semi-join d_max-bound exploitation (Section 4.2.1). All bound strategies
// imply Inside2 filtering, as in the paper's experiments.
enum class SemiJoinBound {
  kNone,
  kLocal,        // prune siblings within one ProcessNode call only
  kGlobalNodes,  // plus a global smallest-d_max table for R1 nodes
  kGlobalAll,    // plus a global table for R1 objects as well
};

// Query options for DistanceJoin (and, via SemiJoinOptions, the semi-join).
struct DistanceJoinOptions {
  Metric metric = Metric::kEuclidean;
  NodeProcessingPolicy node_policy = NodeProcessingPolicy::kEven;
  TieBreakPolicy tie_break = TieBreakPolicy::kDepthFirst;

  // Report only pairs with min_distance <= distance <= max_distance
  // (the WHERE clause of Figure 1; Section 2.2.3).
  double min_distance = 0.0;
  double max_distance = std::numeric_limits<double>::infinity();

  // Stop after this many result pairs (0 = unlimited); the STOP AFTER clause.
  uint64_t max_pairs = 0;
  // Use max_pairs to estimate and tighten max_distance while running
  // (Section 2.2.4). Requires max_pairs > 0.
  bool estimate_max_distance = false;
  // Estimate subtree cardinalities from average occupancy instead of the
  // guaranteed minimum; tighter but may force a restart (Section 2.2.4).
  bool aggressive_estimation = false;

  // Report pairs farthest-first instead (Section 2.2.5). With max_pairs and
  // estimate_max_distance set, the engine estimates a rising *minimum*
  // distance instead of a falling maximum (the symmetric construction the
  // paper describes at the end of Section 2.2.5).
  bool reverse_order = false;

  // Use the hybrid memory/disk priority queue (Section 3.2).
  bool use_hybrid_queue = false;
  HybridQueueOptions hybrid;

  // Worker threads for the expansion step (1 = serial). Child-pair scoring
  // is sharded across threads and merged in slot order, so the output pair
  // stream — and every statistic — is identical to the serial engine's
  // (DESIGN.md §10). Only expansions with enough candidates to amortize the
  // handoff are sharded; configurations that consult shared mutable state
  // per candidate (estimation, semi-join bounds, Inside2 filtering, object
  // predicates) always score serially, though still through batch kernels.
  // 0 = take the SDJ_THREADS environment default (1 when unset); an
  // explicit value >= 1 always wins (core/env_knobs.h).
  int num_threads = 0;

  // Partition the pair space across this many independent engines merged
  // nearest-first by a k-way frontier merge (core/shard_plan.h +
  // core/shard_merge.h, DESIGN.md §18). Consumed by the Sharded* wrapper
  // types — a raw DistanceJoin ignores it. 0 = take the SDJ_SHARDS
  // environment default (1 when unset); explicit values >= 1 win. The
  // merged stream is bit-identical to the serial engine at any shard count.
  int shards = 0;

  // Internal (core/shard_plan.h): construct the engine without seeding the
  // root pair; the shard plan adopts externally planned entries instead.
  // Not for direct use — an engine built with this and never adopted
  // reports an empty result.
  bool defer_seed = false;

  // If set, leaf entries are treated as object bounding rectangles and this
  // callback supplies the exact object distance (Figure 3, lines 7-14).
  // If unset, objects are stored directly in the leaves (the paper's
  // experimental configuration) and entry MBRs are exact geometry.
  std::function<double(ObjectId, ObjectId)> exact_object_distance;

  // Cooperative suspension (DESIGN.md §11): once the token requests a stop
  // (cancellation or deadline), Next() halts at the next safe point — the
  // top of its pop/expand loop — with status() == kSuspended. The engine's
  // state is then self-consistent and serializable (SaveState), and the join
  // continues after ResumeSuspended(). Checked only in the serial loop, so
  // parallel mode stays output-identical to serial.
  util::StopToken stop_token;

  // Optional observability sink (DESIGN.md §12). When set, the engine
  // records expansion-phase latency, the hybrid queue (if used) adds refill
  // stalls, spill latency, and its page I/O, and trace events flow to the
  // sink's TraceSink if one is attached. Null disables everything; every
  // instrumentation point then costs one pointer test. Like num_threads,
  // the pointer is not part of the snapshot fingerprint — durations are
  // observations, never engine state, so metrics on/off cannot change the
  // pair stream or JoinStats.
  obs::Metrics* metrics = nullptr;

  // Which SIMD path the batched distance kernels take (DESIGN.md §15).
  // kAuto detects the best supported ISA once per process; explicit requests
  // degrade to the nearest supported path, never upgrade. Every path is
  // bit-identical to scalar, so — like num_threads — the choice cannot
  // change the pair stream, any statistic, or the snapshot fingerprint.
  // Overridable per process with SDJ_KERNEL and per CLI run with --kernel=.
  simd::Isa kernel_isa = simd::Isa::kAuto;

  // Integer-domain candidate screening on quantized node pages (DESIGN.md
  // §17): screen entry codes against the query in u16 arithmetic and decode
  // only possible survivors. Screening removes only entries the classify
  // ladder would prune as out-of-range, so the pair stream and every
  // pre-existing statistic are byte-identical with it on or off (only the
  // screened_candidates/screen_survivors counters differ); it engages only
  // in configurations where that equivalence is provable (quantized pages,
  // finite max_distance, forward order, fast-path classify, no windows).
  // Defaults on; SDJ_SCREEN=off disables per process, --screen= per CLI
  // run. Unlike kernel_isa this IS part of the snapshot fingerprint, since
  // the screening counters persist in saved stats.
  bool screen_codes = code_screen::DefaultEnabled();
};

// Optional selection criteria on the joined relations (Section 2.2.5's first
// extension / Section 5's option 1): spatial windows prune whole subtrees,
// attribute predicates filter objects as the pipeline produces them.
template <int Dim>
struct JoinFilters {
  // Only objects whose geometry intersects the window participate. Nodes
  // whose MBR misses the window are pruned wholesale.
  std::optional<Rect<Dim>> window1;
  std::optional<Rect<Dim>> window2;
  // Arbitrary per-object predicates (e.g., "population > 5 million").
  // Applied to objects only — subtrees cannot be pruned by attributes.
  std::function<bool(ObjectId)> object_filter1;
  std::function<bool(ObjectId)> object_filter2;

  bool Empty() const {
    return !window1.has_value() && !window2.has_value() &&
           object_filter1 == nullptr && object_filter2 == nullptr;
  }
};

// Incremental distance join iterator over two R-trees. The trees must
// outlive the iterator and must not be modified while iterating.
//
//   DistanceJoin<2> join(water, roads, options);
//   JoinResult<2> pair;
//   while (join.Next(&pair)) Use(pair);   // pairs by non-decreasing distance
//
// The three trailing constructor parameters select the semi-join variants;
// use DistanceSemiJoin (core/semi_join.h) instead of setting them directly.
//
// `Index` is the spatial index type; any hierarchical structure exposing the
// RTree<Dim> read interface works (the paper's "large class of hierarchical
// spatial data structures"). Indexes whose node regions do not minimally
// bound their contents (minimal_bounding_regions() == false, e.g., the
// PointQuadtree or a quantized R-tree) automatically get the
// containment-only d_max bounds.
//
// Next(), status(), ResumeSuspended(), stats(), and
// max_memory_queue_size() are inherited from the best-first core.
template <int Dim, typename Index = RTree<Dim>>
class DistanceJoin
    : public BestFirstEngine<Dim, DistanceJoin<Dim, Index>, Index,
                             JoinResult<Dim>> {
  using Base =
      BestFirstEngine<Dim, DistanceJoin<Dim, Index>, Index, JoinResult<Dim>>;
  // The core invokes the policy hooks below, which stay private.
  friend Base;

 public:
  DistanceJoin(const Index& tree1, const Index& tree2,
               const DistanceJoinOptions& options,
               JoinFilters<Dim> filters = JoinFilters<Dim>{},
               SemiJoinFilter semi_filter = SemiJoinFilter::kNone,
               SemiJoinBound semi_bound = SemiJoinBound::kNone,
               bool semi_estimation = false)
      : Base({&tree1.pool(), &tree2.pool()}, MakeConfig(options)),
        tree1_(tree1),
        tree2_(tree2),
        options_(options),
        filters_(std::move(filters)),
        semi_filter_(semi_filter),
        semi_bound_(semi_bound),
        semi_estimation_(semi_estimation),
        minimal_regions_(tree1.minimal_bounding_regions() &&
                         tree2.minimal_bounding_regions()),
        isa_(simd::Resolve(options.kernel_isa)) {
    SDJ_CHECK(options.min_distance >= 0.0);
    SDJ_CHECK(options.min_distance <= options.max_distance);
    if (options.estimate_max_distance) SDJ_CHECK(options.max_pairs > 0);
    if (options.use_hybrid_queue) SDJ_CHECK(!options.reverse_order);
    // Reverse semi-join estimation would estimate the wrong bound (the
    // paper's Section 2.3 discussion); plain reverse semi-joins are fine.
    SDJ_CHECK(!(semi_estimation && options.reverse_order));
    // Selection filters remove result pairs, so subtree-cardinality-based
    // estimation would overcount and over-prune.
    SDJ_CHECK(!options.estimate_max_distance || filters_.Empty());
    // Filters on the second relation break the SemiPairMaxDist bounds: the
    // nearest *qualifying* partner can be farther than the geometric bound.
    SDJ_CHECK(semi_bound == SemiJoinBound::kNone ||
              (!filters_.window2.has_value() &&
               filters_.object_filter2 == nullptr));
    const bool inside_semi = semi_filter == SemiJoinFilter::kInside1 ||
                             semi_filter == SemiJoinFilter::kInside2;
    // Dense-object-id precondition (CLAUDE.md): the semi-join bit string
    // S_o and the bound tables index by object id, so ids must lie in
    // [0, size). Query configuration is user input — report it through
    // status() instead of aborting downstream.
    if ((inside_semi || semi_bound_ != SemiJoinBound::kNone) &&
        tree1.size() > 0 && tree1.max_object_id() >= tree1.size()) {
      status_ = JoinStatus::kInvalidArgument;
    }
    if (inside_semi || semi_bound_ != SemiJoinBound::kNone) {
      reported_.Resize(tree1.size());
    }
    if (semi_bound_ == SemiJoinBound::kGlobalNodes ||
        semi_bound_ == SemiJoinBound::kGlobalAll) {
      node_bounds_.assign(tree1.pool().num_pages(),
                          std::numeric_limits<double>::infinity());
    }
    if (semi_bound_ == SemiJoinBound::kGlobalAll) {
      object_bounds_.assign(tree1.size(),
                            std::numeric_limits<double>::infinity());
    }
    ResetEstimator();
    if (status_ == JoinStatus::kOk && !options.defer_seed) Seed();
  }

  // The currently effective maximum distance (query bound or estimate).
  double effective_max_distance() const { return EffectiveMax(); }

  // Semi-join Outside support: tells the estimator that `id1` was accepted
  // as a new first object by an external filter.
  void NotifyExternalSemiReport(ObjectId id1) {
    if (estimator_.has_value() && semi_estimation_) {
      estimator_->OnReportSemi(EncodeEstimatorItem(
          static_cast<uint8_t>(ObjectKind()), -1, id1));
    }
  }

  // ---- snapshot support (DESIGN.md §11) ----

  // Serializes the complete engine state — queue entries and tier frontier,
  // estimator, S_o bit string, bound tables, statistics, and sequence
  // counters — into `out`. Must be called at a safe point: before the first
  // Next(), between Next() calls, or after Next() returned false (notably
  // with status kSuspended). Returns false if the state cannot be captured
  // completely (an unreadable hybrid-queue disk page, or an engine already
  // failed with kIoError); `out` must then be discarded.
  bool SaveState(snapshot::Blob* out) {
    if (!this->SaveAllowed()) return false;
    // Fingerprint: the resuming engine must be constructed over the same
    // trees with the same query configuration.
    out->PutU32(kStateMagic);
    out->PutU32(kStateVersion);
    out->PutU32(static_cast<uint32_t>(Dim));
    out->PutU8(static_cast<uint8_t>(options_.metric));
    out->PutU8(static_cast<uint8_t>(options_.node_policy));
    out->PutU8(static_cast<uint8_t>(options_.tie_break));
    out->PutBool(options_.reverse_order);
    out->PutDouble(options_.min_distance);
    out->PutDouble(options_.max_distance);
    out->PutU64(options_.max_pairs);
    out->PutBool(options_.estimate_max_distance);
    out->PutBool(options_.aggressive_estimation);
    out->PutBool(options_.use_hybrid_queue);
    out->PutDouble(options_.hybrid.tier_width);
    out->PutU8(static_cast<uint8_t>(semi_filter_));
    out->PutU8(static_cast<uint8_t>(semi_bound_));
    out->PutBool(semi_estimation_);
    out->PutBool(options_.exact_object_distance != nullptr);
    out->PutBool(filters_.Empty());
    out->PutBool(minimal_regions_);
    out->PutBool(options_.screen_codes);
    out->PutU64(tree1_.size());
    out->PutU64(tree2_.size());
    // Policy cursor scalars, then the core section (seq counter, status,
    // statistics, queue frontier + entries).
    out->PutU64(reported_count_);
    out->PutU64(replay_);
    out->PutBool(estimation_disabled_);
    if (!this->SaveCore(out)) return false;
    out->PutBool(estimator_.has_value());
    if (estimator_.has_value()) estimator_->SaveTo(out);
    out->PutU64(reported_.size());
    out->PutU64(reported_.WordCount());
    for (size_t i = 0; i < reported_.WordCount(); ++i) {
      out->PutU64(reported_.Word(i));
    }
    out->PutU64(node_bounds_.size());
    for (const double b : node_bounds_) out->PutDouble(b);
    out->PutU64(object_bounds_.size());
    for (const double b : object_bounds_) out->PutDouble(b);
    return true;
  }

  // Rebuilds the engine state from SaveState's output. The engine must have
  // been constructed over the same trees with the same options (verified
  // against the fingerprint — mismatch returns false with the engine
  // untouched). A malformed blob past the fingerprint also returns false;
  // the engine is then unusable and must be reconstructed. On success the
  // rebuilt queue pops the exact sequence the saved one would have (the
  // entry comparator is a total order), so the resumed pair stream is
  // bit-identical to an uninterrupted run's remainder.
  bool RestoreState(snapshot::BlobReader* in) {
    if (in->GetU32() != kStateMagic) return false;
    if (in->GetU32() != kStateVersion) return false;
    if (in->GetU32() != static_cast<uint32_t>(Dim)) return false;
    if (in->GetU8() != static_cast<uint8_t>(options_.metric)) return false;
    if (in->GetU8() != static_cast<uint8_t>(options_.node_policy)) {
      return false;
    }
    if (in->GetU8() != static_cast<uint8_t>(options_.tie_break)) return false;
    if (in->GetBool() != options_.reverse_order) return false;
    if (in->GetDouble() != options_.min_distance) return false;
    if (in->GetDouble() != options_.max_distance) return false;
    if (in->GetU64() != options_.max_pairs) return false;
    if (in->GetBool() != options_.estimate_max_distance) return false;
    if (in->GetBool() != options_.aggressive_estimation) return false;
    if (in->GetBool() != options_.use_hybrid_queue) return false;
    if (in->GetDouble() != options_.hybrid.tier_width) return false;
    if (in->GetU8() != static_cast<uint8_t>(semi_filter_)) return false;
    if (in->GetU8() != static_cast<uint8_t>(semi_bound_)) return false;
    if (in->GetBool() != semi_estimation_) return false;
    if (in->GetBool() != (options_.exact_object_distance != nullptr)) {
      return false;
    }
    if (in->GetBool() != filters_.Empty()) return false;
    if (in->GetBool() != minimal_regions_) return false;
    if (in->GetBool() != options_.screen_codes) return false;
    if (in->GetU64() != tree1_.size()) return false;
    if (in->GetU64() != tree2_.size()) return false;
    if (!in->ok()) return false;

    reported_count_ = in->GetU64();
    replay_ = in->GetU64();
    estimation_disabled_ = in->GetBool();
    if (!in->ok()) return false;
    if (!this->RestoreCore(in)) return false;
    ResetEstimator();  // honors the restored estimation_disabled_
    const bool saved_estimator = in->GetBool();
    if (saved_estimator != estimator_.has_value()) return false;
    if (saved_estimator && !estimator_->RestoreFrom(in)) return false;
    if (in->GetU64() != reported_.size()) return false;
    if (in->GetCount(8) != reported_.WordCount()) return false;
    for (size_t i = 0; i < reported_.WordCount(); ++i) {
      reported_.SetWord(i, in->GetU64());
    }
    if (in->GetCount(8) != node_bounds_.size()) return false;
    for (double& b : node_bounds_) b = in->GetDouble();
    if (in->GetCount(8) != object_bounds_.size()) return false;
    for (double& b : object_bounds_) b = in->GetDouble();
    if (!in->ok()) return false;
    resolved_ready_ = false;
    return true;
  }

 private:
  using Item = typename Base::Item;
  using Entry = typename Base::Entry;
  using Base::kInf;

  // Shared core state and helpers (CRTP base members are dependent names).
  using Base::accepted_;
  using Base::batch1_;
  using Base::batch2_;
  using Base::left_;
  using Base::mind1_;
  using Base::mind2_;
  using Base::next_seq_;
  using Base::queue_;
  using Base::refs1_;
  using Base::refs2_;
  using Base::right_;
  using Base::stats_;
  using Base::status_;
  using Base::MarkIoError;
  using Base::PinDecode;
  using Base::PinDecodeScreened;
  using Base::ScreenedDecode;

  static constexpr uint32_t kStateMagic = 0x534A4A43;  // "SJJC"
  // Version 2: the cursor scalars moved around the shared core section
  // (core/best_first.h SaveCore).
  // Version 3: screen_codes in the fingerprint, screening counters in the
  // shared stats section.
  static constexpr uint32_t kStateVersion = 3;

  static BestFirstConfig MakeConfig(const DistanceJoinOptions& options) {
    BestFirstConfig config;
    config.tie_break = options.tie_break;
    config.use_hybrid_queue = options.use_hybrid_queue;
    config.hybrid = options.hybrid;
    config.num_threads = env_knobs::ResolveThreads(options.num_threads);
    config.stop_token = options.stop_token;
    config.metrics = options.metrics;
    return config;
  }

  // ---- policy hooks (invoked by the core's Next loop) ----

  bool BeforeIteration() {
    if (options_.max_pairs > 0 && reported_count_ >= options_.max_pairs) {
      status_ = JoinStatus::kExhausted;
      return false;
    }
    return true;
  }

  bool OnQueueDrained() {
    if (NeedRestart()) {
      Restart();
      return true;
    }
    return false;
  }

  PopAction OnPopped(const Entry& e, JoinResult<Dim>* out) {
    if (estimator_.has_value()) {
      estimator_->OnDequeue(KeyOf(e));
    }
    // Global cut-offs: with ascending keys, once the head violates the
    // distance window nothing behind it can produce results.
    if (!options_.reverse_order) {
      if (e.distance > EffectiveMax()) {
        stats_.pruned_by_estimate += 1 + queue_->Size();
        queue_->Clear();
        return PopAction::kSkip;
      }
    } else {
      // Reverse mode keys are negated upper bounds.
      if (-e.key < EffectiveMin()) {
        stats_.pruned_by_range += 1 + queue_->Size();
        queue_->Clear();
        return PopAction::kSkip;
      }
    }
    // Semi-join Inside1/Inside2: drop pairs whose first object was already
    // paired (Section 2.3).
    if (semi_filter_ == SemiJoinFilter::kInside1 ||
        semi_filter_ == SemiJoinFilter::kInside2) {
      if (e.item1.is_object_like() && IsReported(e.item1.ref)) {
        ++stats_.filtered_reported;
        return PopAction::kSkip;
      }
    }
    // Semi-join global bounds: a pair whose MINDIST exceeds the best known
    // d_max for its first item can never contain a first pair.
    if (IsPrunedByBound(e.item1, e.distance)) {
      ++stats_.pruned_by_bound;
      return PopAction::kSkip;
    }

    if (e.IsObjectPair()) {
      if (!ReportableDistance(e.distance)) return PopAction::kSkip;
      if (!AcceptSemiReport(e.item1.ref)) return PopAction::kSkip;
      if (estimator_.has_value()) NotifyReport(e.item1.ref);
      if (replay_ > 0) {
        --replay_;
        return PopAction::kSkip;
      }
      Fill(e, out);
      ++reported_count_;
      ++stats_.pairs_reported;
      return PopAction::kReported;
    }
    if (e.IsObrPair()) {
      ResolveObrPair(e, out);
      if (resolved_ready_) {
        resolved_ready_ = false;
        return PopAction::kReported;
      }
      return PopAction::kSkip;
    }
    return PopAction::kExpand;
  }

  // ---- construction helpers ----

  void ResetEstimator() {
    if (options_.estimate_max_distance && !estimation_disabled_) {
      // In reverse mode the estimator runs on negated values, so that its
      // falling "maximum" is a rising minimum distance (Section 2.2.5).
      const double initial = options_.reverse_order ? -options_.min_distance
                                                    : options_.max_distance;
      estimator_.emplace(options_.max_pairs, initial, semi_estimation_);
    } else {
      estimator_.reset();
    }
  }

  void Seed() {
    if (tree1_.empty() || tree2_.empty()) return;
    Item root1{tree1_.RootMbr(), tree1_.root(),
               static_cast<int16_t>(tree1_.root_level()), JoinItemKind::kNode};
    Item root2{tree2_.RootMbr(), tree2_.root(),
               static_cast<int16_t>(tree2_.root_level()), JoinItemKind::kNode};
    TryEnqueue(root1, root2);
  }

  // ---- small helpers ----

  JoinItemKind ObjectKind() const {
    return options_.exact_object_distance ? JoinItemKind::kObjectRect
                                          : JoinItemKind::kObject;
  }

  double EffectiveMax() const {
    if (estimator_.has_value() && !options_.reverse_order) {
      return std::min(options_.max_distance, estimator_->max_distance());
    }
    return options_.max_distance;
  }

  double EffectiveMin() const {
    if (estimator_.has_value() && options_.reverse_order) {
      return std::max(options_.min_distance, -estimator_->max_distance());
    }
    return options_.min_distance;
  }

  bool ReportableDistance(double d) const {
    return d >= options_.min_distance && d <= options_.max_distance;
  }

  bool IsReported(uint64_t id) const {
    return id < reported_.size() && reported_.Test(id);
  }

  // For Inside filters: claims `id1` as reported; returns false if it was
  // already claimed. No-op (true) for plain joins and Outside filtering.
  bool AcceptSemiReport(uint64_t id1) {
    if (semi_filter_ != SemiJoinFilter::kInside1 &&
        semi_filter_ != SemiJoinFilter::kInside2) {
      return true;
    }
    SDJ_CHECK(id1 < reported_.size());
    if (!reported_.TestAndSet(id1)) {
      ++stats_.filtered_reported;
      return false;
    }
    return true;
  }

  void NotifyReport(uint64_t id1) {
    if (!estimator_.has_value()) return;
    if (semi_estimation_) {
      // For Inside filters the engine itself dedupes, so every report is a
      // fresh first object. (Outside mode goes via NotifyExternalSemiReport.)
      if (semi_filter_ == SemiJoinFilter::kInside1 ||
          semi_filter_ == SemiJoinFilter::kInside2) {
        estimator_->OnReportSemi(EncodeEstimatorItem(
            static_cast<uint8_t>(ObjectKind()), -1, id1));
      }
    } else {
      estimator_->OnReportJoin();
    }
  }

  static MaxDistEstimator::PairKey KeyOf(const Entry& e) {
    return MaxDistEstimator::PairKey{
        EncodeEstimatorItem(static_cast<uint8_t>(e.item1.kind), e.item1.level,
                            e.item1.ref),
        EncodeEstimatorItem(static_cast<uint8_t>(e.item2.kind), e.item2.level,
                            e.item2.ref)};
  }

  void Fill(const Entry& e, JoinResult<Dim>* out) const {
    out->id1 = e.item1.ref;
    out->id2 = e.item2.ref;
    out->rect1 = e.item1.rect;
    out->rect2 = e.item2.rect;
    out->distance = e.distance;
  }

  // ---- semi-join d_max bounds ----

  // Selects the minimality-aware or containment-only semi-join bound. A
  // runtime choice because minimality can depend on construction options,
  // not just the index type: a quantized R-tree's outward-rounded MBRs are
  // not minimal even though RTree::kMinimalBoundingRegions is true.
  double SemiDmax(const Item& a, const Item& b) const {
    if (minimal_regions_) {
      return SemiPairMaxDist(a, b, options_.metric);
    }
    return SemiPairMaxDistLoose(a, b, options_.metric);
  }

  double BoundOf(const Item& item) const {
    if (item.is_node()) {
      if ((semi_bound_ == SemiJoinBound::kGlobalNodes ||
           semi_bound_ == SemiJoinBound::kGlobalAll) &&
          item.ref < node_bounds_.size()) {
        return node_bounds_[item.ref];
      }
    } else if (semi_bound_ == SemiJoinBound::kGlobalAll &&
               item.ref < object_bounds_.size()) {
      return object_bounds_[item.ref];
    }
    return kInf;
  }

  bool IsPrunedByBound(const Item& item1, double d) const {
    return semi_bound_ != SemiJoinBound::kNone && d > BoundOf(item1);
  }

  void UpdateBound(const Item& item1, double dmax) {
    if (item1.is_node()) {
      if ((semi_bound_ == SemiJoinBound::kGlobalNodes ||
           semi_bound_ == SemiJoinBound::kGlobalAll) &&
          item1.ref < node_bounds_.size()) {
        node_bounds_[item1.ref] = std::min(node_bounds_[item1.ref], dmax);
      }
    } else if (semi_bound_ == SemiJoinBound::kGlobalAll &&
               item1.ref < object_bounds_.size()) {
      object_bounds_[item1.ref] = std::min(object_bounds_[item1.ref], dmax);
    }
  }

  // ---- pair creation ----

  // Lower bound on results generated from (a, b), for the estimator.
  uint64_t CountLowerBound(const Item& a, const Item& b) const {
    const auto side = [this](const Item& item, const Index& tree) {
      if (!item.is_node()) return 1.0;
      return options_.aggressive_estimation
                 ? tree.ExpectedObjectsUnder(item.level)
                 : static_cast<double>(tree.MinObjectsUnder(item.level));
    };
    const double n1 = side(a, tree1_);
    const double n2 = semi_estimation_ ? 1.0 : side(b, tree2_);
    const double product = std::max(1.0, n1) * std::max(1.0, n2);
    return product >= 1e18 ? static_cast<uint64_t>(1e18)
                           : static_cast<uint64_t>(product);
  }

  // Creates, filters, and enqueues the pair (a, b). `semi_dmax_hint`, when
  // non-negative, carries an already computed SemiPairMaxDist(a, b).
  void TryEnqueue(const Item& a, const Item& b,
                  double semi_dmax_hint = -1.0) {
    TryEnqueueScored(a, b, /*pre_mindist=*/-1.0, semi_dmax_hint);
  }

  // TryEnqueue with `pre_mindist`, when non-negative, carrying
  // PairMinDist(a, b) from a batch kernel (bit-identical to the scalar call
  // by the rect_batch.h contract). Distance-calc counters are incremented at
  // the same decision points either way, so statistics do not depend on who
  // computed the value.
  void TryEnqueueScored(const Item& a, const Item& b, double pre_mindist,
                        double semi_dmax_hint) {
    // Selection criteria (Section 2.2.5): spatial windows prune nodes and
    // objects alike; attribute predicates apply to objects only.
    if (filters_.window1.has_value() &&
        !a.rect.Intersects(*filters_.window1)) {
      ++stats_.pruned_by_filter;
      return;
    }
    if (filters_.window2.has_value() &&
        !b.rect.Intersects(*filters_.window2)) {
      ++stats_.pruned_by_filter;
      return;
    }
    if (a.is_object_like() && filters_.object_filter1 != nullptr &&
        !filters_.object_filter1(a.ref)) {
      ++stats_.pruned_by_filter;
      return;
    }
    if (b.is_object_like() && filters_.object_filter2 != nullptr &&
        !filters_.object_filter2(b.ref)) {
      ++stats_.pruned_by_filter;
      return;
    }
    // Inside2: never create pairs for already-reported first objects.
    if (semi_filter_ == SemiJoinFilter::kInside2 && a.is_object_like() &&
        IsReported(a.ref)) {
      ++stats_.filtered_reported;
      return;
    }

    const double d =
        pre_mindist >= 0.0 ? pre_mindist : PairMinDist(a, b, options_.metric);
    ++stats_.total_distance_calcs;
    if (a.kind == JoinItemKind::kObject && b.kind == JoinItemKind::kObject) {
      ++stats_.object_distance_calcs;
    }

    const double eff_max = EffectiveMax();
    if (d > eff_max) {
      ++(estimator_.has_value() && eff_max < options_.max_distance
             ? stats_.pruned_by_estimate
             : stats_.pruned_by_range);
      return;
    }

    const bool need_join_dmax = options_.min_distance > 0.0 ||
                                (estimator_.has_value() && !semi_estimation_) ||
                                options_.reverse_order;
    const bool need_semi_dmax =
        semi_bound_ != SemiJoinBound::kNone ||
        (estimator_.has_value() && semi_estimation_);
    double join_dmax = kInf;
    if (need_join_dmax) {
      join_dmax = PairMaxDist(a, b, options_.metric);
      ++stats_.total_distance_calcs;
      if (join_dmax < EffectiveMin()) {
        // Every result from this pair lies below Dmin (Figure 5), or below
        // the reverse-mode minimum-distance estimate.
        ++stats_.pruned_by_range;
        return;
      }
    }
    double semi_dmax = semi_dmax_hint;
    if (need_semi_dmax && semi_dmax < 0.0) {
      semi_dmax = SemiDmax(a, b);
      ++stats_.total_distance_calcs;
    }

    if (semi_bound_ != SemiJoinBound::kNone) {
      if (d > BoundOf(a)) {
        ++stats_.pruned_by_bound;
        return;
      }
      UpdateBound(a, semi_dmax);
    }

    Entry e;
    e.distance = d;
    e.item1 = a;
    e.item2 = b;
    e.seq = next_seq_++;
    FinalizePairMetadata(&e);
    e.key = options_.reverse_order ? -join_dmax : d;

    if (estimator_.has_value()) {
      if (options_.reverse_order) {
        // Negated mapping: the estimator's falling maximum of (-distance)
        // is a rising minimum distance.
        estimator_->OnEnqueue(KeyOf(e), -join_dmax, -d, CountLowerBound(a, b),
                              -options_.max_distance);
      } else {
        const double est_dmax = semi_estimation_ ? semi_dmax : join_dmax;
        estimator_->OnEnqueue(KeyOf(e), d, est_dmax, CountLowerBound(a, b),
                              options_.min_distance);
      }
    }
    queue_->Push(e);
    ++stats_.queue_pushes;
  }

  // ---- node expansion ----

  // All expansion paths report page-read failures through their return value
  // (never SDJ_CHECK): false means status_ is now kIoError and iteration
  // must stop with the partial result produced so far.
  bool Expand(const Entry& e) {
    const bool n1 = e.item1.is_node();
    const bool n2 = e.item2.is_node();
    SDJ_CHECK(n1 || n2);
    if (n1 && n2) {
      switch (options_.node_policy) {
        case NodeProcessingPolicy::kBasic:
          return ProcessNode1(e);
        case NodeProcessingPolicy::kEven:
          // Expand the node at the shallower level; ties to item 1.
          return e.item2.level > e.item1.level ? ProcessNode2(e)
                                               : ProcessNode1(e);
        case NodeProcessingPolicy::kSimultaneous:
          if (e.item1.level == e.item2.level) return ProcessBoth(e);
          return e.item2.level > e.item1.level ? ProcessNode2(e)
                                               : ProcessNode1(e);
        case NodeProcessingPolicy::kDeferredLeaf: {
          bool leaf1;
          bool leaf2;
          {
            typename Index::PinnedNode node1 =
                tree1_.TryPin(static_cast<storage::PageId>(e.item1.ref));
            if (!node1.ok()) return MarkIoError();
            leaf1 = node1.is_leaf();
          }
          {
            typename Index::PinnedNode node2 =
                tree2_.TryPin(static_cast<storage::PageId>(e.item2.ref));
            if (!node2.ok()) return MarkIoError();
            leaf2 = node2.is_leaf();
          }
          if (leaf1 && leaf2) return ProcessBoth(e);
          if (leaf1) return ProcessNode2(e);
          if (leaf2) return ProcessNode1(e);
          return e.item2.level > e.item1.level ? ProcessNode2(e)
                                               : ProcessNode1(e);
        }
      }
    }
    return n1 ? ProcessNode1(e) : ProcessNode2(e);
  }

  // ---- batched scoring and parallel expansion (DESIGN.md §10) ----

  // SemiDmax over a whole batch of second-side children: the children of one
  // node share a kind, so a single kernel covers the batch. Case analysis
  // mirrors SemiPairMaxDist / SemiPairMaxDistLoose with `a` fixed and the
  // batch on the second-argument side (batch_is_first = false for the
  // asymmetric kernels); bit-identical per the rect_batch.h contract.
  void SemiDmaxBatch(const Item& a, const RectBatch<Dim>& batch,
                     JoinItemKind child_kind, double* out) {
    ++stats_.batch_kernel_invocations;
    const size_t n = batch.size();
    if (minimal_regions_) {
      if (a.is_node()) {
        if (child_kind == JoinItemKind::kObject) {
          MaxMinDistBatch(batch, a.rect, options_.metric,
                          /*batch_is_first=*/false, out, 0, n, isa_);
        } else {
          MaxMinMaxDistBatch(batch, a.rect, options_.metric,
                             /*batch_is_first=*/false, out, 0, n, isa_);
        }
        return;
      }
      if (a.kind == JoinItemKind::kObject &&
          child_kind == JoinItemKind::kObject) {
        MinDistBatch(batch, a.rect, options_.metric, out, 0, n, isa_);
        return;
      }
      MinMaxDistBatch(batch, a.rect, options_.metric, out, 0, n, isa_);
    } else {
      if (child_kind == JoinItemKind::kNode) {
        MaxDistBatch(batch, a.rect, options_.metric, out, 0, n, isa_);
        return;
      }
      if (a.kind == JoinItemKind::kObject &&
          child_kind == JoinItemKind::kObject) {
        MinDistBatch(batch, a.rect, options_.metric, out, 0, n, isa_);
        return;
      }
      if (child_kind == JoinItemKind::kObject && a.is_node()) {
        MaxMinDistBatch(batch, a.rect, options_.metric,
                        /*batch_is_first=*/false, out, 0, n, isa_);
        return;
      }
      MinMaxDistBatch(batch, a.rect, options_.metric, out, 0, n, isa_);
    }
  }

  // Candidate acceptance is a pure per-pair function exactly when nothing
  // shared and mutable is consulted between candidates: no distance
  // estimation, no semi-join d_max bounds or Inside2 bitmap, no user object
  // predicates (which may be stateful). Spatial windows are pure and stay
  // eligible. Only then may candidates be scored out of order (in parallel).
  bool FastPathActive() const {
    return !estimator_.has_value() && semi_bound_ == SemiJoinBound::kNone &&
           semi_filter_ != SemiJoinFilter::kInside2 &&
           filters_.object_filter1 == nullptr &&
           filters_.object_filter2 == nullptr;
  }

  // TryEnqueue's need_join_dmax condition with no estimator present.
  bool NeedJoinDmaxFast() const {
    return options_.min_distance > 0.0 || options_.reverse_order;
  }

  // Integer code screening may drop an entry only when the classify ladder
  // is guaranteed to reach its `d > max_distance` rung for that entry with
  // exactly the counter charges the caller reproduces: the fast-path ladder
  // must be in effect, no window may claim the prune first, max_distance
  // must be the finite, fixed bound screening was derived against (no
  // estimator — implied by FastPathActive), and forward order (reverse
  // keeps far pairs). Quantized-vs-raw pages are resolved per node by
  // DecodeScreened itself.
  bool ScreenEligible() const {
    return options_.screen_codes && FastPathActive() &&
           !filters_.window1.has_value() && !filters_.window2.has_value() &&
           std::isfinite(options_.max_distance) && !options_.reverse_order;
  }

  // The core ClassifyAndEnqueue's spec under FastPathActive: the immutable
  // subset of the join's acceptance ladder.
  typename Base::ClassifySpec FastSpec() const {
    typename Base::ClassifySpec spec;
    spec.window1 =
        filters_.window1.has_value() ? &*filters_.window1 : nullptr;
    spec.window2 =
        filters_.window2.has_value() ? &*filters_.window2 : nullptr;
    spec.min_distance = options_.min_distance;
    spec.max_distance = options_.max_distance;
    spec.reverse_order = options_.reverse_order;
    spec.need_join_dmax = NeedJoinDmaxFast();
    spec.metric = options_.metric;
    return spec;
  }

  // PROCESSNODE1 (Figure 3): pair every entry of item 1's node with item 2.
  // The node is decoded into a rectangle batch once, scored by MinDistBatch,
  // and survivors enqueued in entry order (sharded when eligible and large).
  bool ProcessNode1(const Entry& e) {
    bool leaf;
    int level;
    size_t screened = 0;
    if (ScreenEligible()) {
      if (!PinDecodeScreened(tree1_, e.item1.ref, e.item2.rect,
                             options_.max_distance, isa_, &batch1_, &refs1_,
                             &leaf, &level, &screened)) {
        return MarkIoError();
      }
    } else if (!PinDecode(tree1_, e.item1.ref, &batch1_, &refs1_, &leaf,
                          &level)) {
      return MarkIoError();
    }
    ++stats_.nodes_expanded;
    if (estimator_.has_value() && semi_estimation_) {
      estimator_->MarkFirstItemProcessed(EncodeEstimatorItem(
          static_cast<uint8_t>(e.item1.kind), e.item1.level, e.item1.ref));
    }
    const size_t n = batch1_.size();
    mind1_.resize(n);
    MinDistBatch(batch1_, e.item2.rect, options_.metric, mind1_.data(), 0, n,
                 isa_);
    ++stats_.batch_kernel_invocations;
    this->BuildChildItems(batch1_, refs1_, leaf, level, ObjectKind(), &left_);
    if (FastPathActive()) {
      const bool object_pair = leaf && ObjectKind() == JoinItemKind::kObject &&
                               e.item2.kind == JoinItemKind::kObject;
      // Screened-out entries would have reached the ladder's range rung:
      // charge exactly what kSlotRangeMax charges there.
      if (screened > 0) {
        stats_.total_distance_calcs += screened;
        stats_.pruned_by_range += screened;
        if (object_pair) stats_.object_distance_calcs += screened;
      }
      this->ClassifyAndEnqueue(
          FastSpec(), n, mind1_.data(), object_pair,
          [&](size_t i) -> const Item& { return left_[i]; },
          [&](size_t) -> const Item& { return e.item2; });
    } else {
      for (size_t i = 0; i < n; ++i) {
        TryEnqueueScored(left_[i], e.item2, mind1_[i],
                         /*semi_dmax_hint=*/-1.0);
      }
    }
    return true;
  }

  // PROCESSNODE2: same with the items exchanged. For the semi-join this is
  // where the Local bound applies: all new pairs share the first item, so the
  // smallest d_max across the node's entries prunes its siblings
  // (Section 4.2.1).
  bool ProcessNode2(const Entry& e) {
    bool leaf;
    int level;
    size_t screened = 0;
    if (ScreenEligible()) {
      if (!PinDecodeScreened(tree2_, e.item2.ref, e.item1.rect,
                             options_.max_distance, isa_, &batch2_, &refs2_,
                             &leaf, &level, &screened)) {
        return MarkIoError();
      }
    } else if (!PinDecode(tree2_, e.item2.ref, &batch2_, &refs2_, &leaf,
                          &level)) {
      return MarkIoError();
    }
    ++stats_.nodes_expanded;
    const size_t n = batch2_.size();
    mind2_.resize(n);
    MinDistBatch(batch2_, e.item1.rect, options_.metric, mind2_.data(), 0, n,
                 isa_);
    ++stats_.batch_kernel_invocations;
    this->BuildChildItems(batch2_, refs2_, leaf, level, ObjectKind(), &right_);
    if (semi_bound_ == SemiJoinBound::kNone) {
      if (FastPathActive()) {
        const bool object_pair = leaf &&
                                 ObjectKind() == JoinItemKind::kObject &&
                                 e.item1.kind == JoinItemKind::kObject;
        if (screened > 0) {
          stats_.total_distance_calcs += screened;
          stats_.pruned_by_range += screened;
          if (object_pair) stats_.object_distance_calcs += screened;
        }
        this->ClassifyAndEnqueue(
            FastSpec(), n, mind2_.data(), object_pair,
            [&](size_t) -> const Item& { return e.item1; },
            [&](size_t i) -> const Item& { return right_[i]; });
      } else {
        for (size_t i = 0; i < n; ++i) {
          TryEnqueueScored(e.item1, right_[i], mind2_[i],
                           /*semi_dmax_hint=*/-1.0);
        }
      }
      return true;
    }
    // First pass: each child's semi d_max (one kernel — the children of a
    // node share a kind) and their minimum.
    semi_dmax_.resize(n);
    const JoinItemKind child_kind = leaf ? ObjectKind() : JoinItemKind::kNode;
    SemiDmaxBatch(e.item1, batch2_, child_kind, semi_dmax_.data());
    double best = BoundOf(e.item1);
    for (size_t i = 0; i < n; ++i) {
      ++stats_.total_distance_calcs;
      best = std::min(best, semi_dmax_[i]);
    }
    UpdateBound(e.item1, best);
    // Second pass: prune by the shared bound, then enqueue with both scores.
    for (size_t i = 0; i < n; ++i) {
      ++stats_.total_distance_calcs;
      if (mind2_[i] > best) {
        ++stats_.pruned_by_bound;
        continue;
      }
      TryEnqueueScored(e.item1, right_[i], mind2_[i], semi_dmax_[i]);
    }
    return true;
  }

  // Simultaneous processing of a node/node pair (Section 2.2.2): restrict
  // each node's entries to those within the distance window of the other
  // node's region, then pair them up with a plane sweep along axis 0
  // (Figure 4), extended by Dmax as the paper describes. This is the
  // expansion with up to fan-out^2 candidates, where batch scoring and the
  // sharded classify pay off most.
  bool ProcessBoth(const Entry& e) {
    bool leaf1;
    bool leaf2;
    int level1;
    int level2;
    size_t screened1 = 0;
    size_t screened2 = 0;
    {
      typename Index::PinnedNode node1 =
          tree1_.TryPin(static_cast<storage::PageId>(e.item1.ref));
      if (!node1.ok()) return MarkIoError();
      typename Index::PinnedNode node2 =
          tree2_.TryPin(static_cast<storage::PageId>(e.item2.ref));
      if (!node2.ok()) return MarkIoError();
      stats_.nodes_expanded += 2;
      if (estimator_.has_value() && semi_estimation_) {
        estimator_->MarkFirstItemProcessed(EncodeEstimatorItem(
            static_cast<uint8_t>(e.item1.kind), e.item1.level, e.item1.ref));
      }
      if (ScreenEligible()) {
        // ScreenEligible implies no estimator, so EffectiveMax() below is
        // exactly options_.max_distance — the bound screening prunes by.
        screened1 =
            this->ScreenedDecode(node1, e.item2.rect, options_.max_distance,
                                 isa_, &batch1_, &refs1_);
        screened2 =
            this->ScreenedDecode(node2, e.item1.rect, options_.max_distance,
                                 isa_, &batch2_, &refs2_);
      } else {
        node1.DecodeInto(&batch1_, &refs1_);
        node2.DecodeInto(&batch2_, &refs2_);
      }
      leaf1 = node1.is_leaf();
      level1 = node1.level();
      leaf2 = node2.is_leaf();
      level2 = node2.level();
    }
    const double eff_max = EffectiveMax();
    mind1_.resize(batch1_.size());
    MinDistBatch(batch1_, e.item2.rect, options_.metric, mind1_.data(), 0,
                 batch1_.size(), isa_);
    mind2_.resize(batch2_.size());
    MinDistBatch(batch2_, e.item1.rect, options_.metric, mind2_.data(), 0,
                 batch2_.size(), isa_);
    stats_.batch_kernel_invocations += 2;
    // Screened-out entries are exactly entries FilterSide would have
    // rejected (their MINDIST exceeds eff_max == options_.max_distance):
    // charge its per-entry counters for them.
    if (screened1 + screened2 > 0) {
      stats_.total_distance_calcs += screened1 + screened2;
      stats_.pruned_by_range += screened1 + screened2;
    }
    FilterSide(batch1_, refs1_, mind1_, leaf1, level1, eff_max, &left_);
    FilterSide(batch2_, refs2_, mind2_, leaf2, level2, eff_max, &right_);
    const auto by_lo = [](const Item& a, const Item& b) {
      return a.rect.lo[0] < b.rect.lo[0];
    };
    std::sort(left_.begin(), left_.end(), by_lo);
    std::sort(right_.begin(), right_.end(), by_lo);
    // Sweep: for the rectangle with the smaller lower edge, pair it with the
    // other list's rectangles whose lower edge starts within Dmax of its
    // upper edge (the paper's x2 + Dmax sweep extension). Candidates are
    // collected in emission order first so scoring can shard across threads.
    sweep_pairs_.clear();
    size_t i = 0;
    size_t j = 0;
    while (i < left_.size() && j < right_.size()) {
      if (left_[i].rect.lo[0] <= right_[j].rect.lo[0]) {
        const double limit = left_[i].rect.hi[0] + eff_max;
        for (size_t k = j; k < right_.size() && right_[k].rect.lo[0] <= limit;
             ++k) {
          sweep_pairs_.emplace_back(static_cast<uint32_t>(i),
                                    static_cast<uint32_t>(k));
        }
        ++i;
      } else {
        const double limit = right_[j].rect.hi[0] + eff_max;
        for (size_t k = i; k < left_.size() && left_[k].rect.lo[0] <= limit;
             ++k) {
          sweep_pairs_.emplace_back(static_cast<uint32_t>(k),
                                    static_cast<uint32_t>(j));
        }
        ++j;
      }
    }
    if (FastPathActive()) {
      const bool object_pair =
          leaf1 && leaf2 && ObjectKind() == JoinItemKind::kObject;
      this->ClassifyAndEnqueue(
          FastSpec(), sweep_pairs_.size(), /*pre_mind=*/nullptr, object_pair,
          [&](size_t k) -> const Item& { return left_[sweep_pairs_[k].first]; },
          [&](size_t k) -> const Item& {
            return right_[sweep_pairs_[k].second];
          });
    } else {
      for (const auto& [li, ri] : sweep_pairs_) {
        TryEnqueue(left_[li], right_[ri]);
      }
    }
    return true;
  }

  // Keeps entries whose batch MINDIST against the partner region is within
  // eff_max, materializing survivors as Items (the within-filter of
  // Figure 4; counters exactly as in the per-child serial loop).
  void FilterSide(const RectBatch<Dim>& batch,
                  const std::vector<uint64_t>& refs,
                  const std::vector<double>& mind, bool leaf, int level,
                  double eff_max, std::vector<Item>* out) {
    out->clear();
    out->reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      ++stats_.total_distance_calcs;
      if (mind[i] <= eff_max) {
        out->push_back(
            this->MakeChildItem(batch, refs, i, leaf, level, ObjectKind()));
      } else {
        ++stats_.pruned_by_range;
      }
    }
  }

  // ---- obr resolution (Figure 3, lines 7-14) ----

  // Computes the exact distance of an obr/obr pair. Reports it immediately
  // when it is still guaranteed to be the closest pending pair, else
  // re-enqueues it as an object/object pair.
  void ResolveObrPair(const Entry& e, JoinResult<Dim>* out) {
    SDJ_CHECK(options_.exact_object_distance != nullptr);
    const double d =
        options_.exact_object_distance(e.item1.ref, e.item2.ref);
    ++stats_.object_distance_calcs;
    ++stats_.total_distance_calcs;
    if (d < options_.min_distance || d > EffectiveMax()) {
      ++stats_.pruned_by_range;
      return;
    }
    Entry resolved = e;
    resolved.distance = d;
    resolved.item1.kind = JoinItemKind::kObject;
    resolved.item2.kind = JoinItemKind::kObject;
    FinalizePairMetadata(&resolved);
    resolved.key = options_.reverse_order ? -d : d;
    const bool head = queue_->Empty() || !(queue_->Top().key < resolved.key);
    if (head) {
      if (!AcceptSemiReport(resolved.item1.ref)) return;
      if (estimator_.has_value()) NotifyReport(resolved.item1.ref);
      if (replay_ > 0) {
        --replay_;
        return;
      }
      Fill(resolved, out);
      ++reported_count_;
      ++stats_.pairs_reported;
      resolved_ready_ = true;
      return;
    }
    resolved.seq = next_seq_++;
    queue_->Push(resolved);
    ++stats_.queue_pushes;
  }

  // ---- restart (over-aggressive estimation, Section 2.2.4) ----

  bool NeedRestart() const {
    return estimator_.has_value() && estimator_->ever_tightened() &&
           options_.max_pairs > 0 && reported_count_ < options_.max_pairs;
  }

  void Restart() {
    ++stats_.restarts;
    estimation_disabled_ = true;
    ResetEstimator();
    queue_->Clear();
    reported_.Clear();
    if (!node_bounds_.empty()) {
      node_bounds_.assign(node_bounds_.size(), kInf);
    }
    if (!object_bounds_.empty()) {
      object_bounds_.assign(object_bounds_.size(), kInf);
    }
    replay_ = reported_count_;
    Seed();
  }

  // ---- members ----

  const Index& tree1_;
  const Index& tree2_;
  const DistanceJoinOptions options_;
  const JoinFilters<Dim> filters_;
  const SemiJoinFilter semi_filter_;
  const SemiJoinBound semi_bound_;
  const bool semi_estimation_;
  // True only when BOTH trees' node regions minimally bound their contents
  // at runtime (quantized R-tree nodes are outward-rounded, hence loose).
  const bool minimal_regions_;
  // SIMD path for the batched kernels, resolved once at construction.
  const simd::Isa isa_;

  // Join-specific expansion scratch (shared scratch lives in the core).
  std::vector<double> semi_dmax_;
  std::vector<std::pair<uint32_t, uint32_t>> sweep_pairs_;

  std::optional<MaxDistEstimator> estimator_;
  bool estimation_disabled_ = false;

  DynamicBitset reported_;             // S_o (semi-join Inside filters)
  std::vector<double> node_bounds_;    // smallest d_max per R1 node page
  std::vector<double> object_bounds_;  // smallest d_max per R1 object

  uint64_t reported_count_ = 0;
  uint64_t replay_ = 0;       // results to swallow after a restart
  bool resolved_ready_ = false;
};

}  // namespace sdj

#endif  // SDJOIN_CORE_DISTANCE_JOIN_H_
