// Process-wide execution knobs resolved from the environment
// (DESIGN.md §18), mirroring SDJ_KERNEL / SDJ_SCREEN: an option struct
// value of 0 means "unset — take the environment default", any value >= 1
// is an explicit caller choice and always wins. check.sh sweeps whole test
// runs through configurations (e.g. SDJ_SHARDS=4) without per-call flags.
//
//   SDJ_SHARDS=<n>   default shard count for the Sharded* wrappers
//   SDJ_THREADS=<n>  default classify thread count for every engine
//
// Unset, empty, or unparsable values fall back to 1 (serial), matching the
// historical defaults. The environment is read once per process (static
// cache, like code_screen::DefaultEnabled) so a run cannot change
// configuration midway.
#ifndef SDJOIN_CORE_ENV_KNOBS_H_
#define SDJOIN_CORE_ENV_KNOBS_H_

#include <cstdlib>

namespace sdj::env_knobs {

namespace internal {

inline int ParsePositive(const char* value, int fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 1 || parsed > 1 << 20) {
    return fallback;
  }
  return static_cast<int>(parsed);
}

}  // namespace internal

// Environment default for the shard count (SDJ_SHARDS; 1 when unset).
inline int DefaultShards() {
  static const int cached = internal::ParsePositive(
      std::getenv("SDJ_SHARDS"), /*fallback=*/1);
  return cached;
}

// Environment default for the thread count (SDJ_THREADS; 1 when unset).
inline int DefaultThreads() {
  static const int cached = internal::ParsePositive(
      std::getenv("SDJ_THREADS"), /*fallback=*/1);
  return cached;
}

// Resolves an options-struct value: 0 = unset (environment default wins),
// >= 1 explicit. Negative values are treated as unset.
inline int ResolveShards(int requested) {
  return requested >= 1 ? requested : DefaultShards();
}

inline int ResolveThreads(int requested) {
  return requested >= 1 ? requested : DefaultThreads();
}

}  // namespace sdj::env_knobs

#endif  // SDJOIN_CORE_ENV_KNOBS_H_
