// Shard planning for the sharded best-first execution stack (DESIGN.md §18).
//
// A shard plan partitions the pair space of one best-first traversal into K
// disjoint groups by SUBTREE SHARDING: a temporary seed engine runs exactly
// one serial pop+expand step (the root expansion), its frontier entries are
// collected, and the entries are scattered into groups keyed by the first
// item's subtree reference. Because no node-processing policy ever moves an
// entry's item out of its subtree — expansions only replace an item with its
// own children — grouping the post-root frontier by item1.ref partitions the
// ENTIRE future pair space: every descendant of a group's entries keeps its
// item1 inside one of that group's subtrees. Each group then seeds one
// independent engine (constructed with defer_seed and AdoptPlanEntries), and
// §2.2 distance-bound consistency holds per shard because every adopted
// entry carries the exact key the serial engine gave it.
//
// The plan also captures the seed step's statistics (S0) and sequence
// counter (n0): the shard engines all continue from n0, and the merged run's
// statistics are S0 plus the per-shard totals — exactly the serial engine's
// counters at exhaustion (core/shard_merge.h documents the two exceptions).
//
// Planning is conservative: any condition it cannot prove partitionable —
// a reportable head instead of an expandable one, an I/O failure, fewer than
// two distinct subtree refs — yields a non-ok() plan and the caller falls
// back to a single unsharded engine, which is always correct.
#ifndef SDJOIN_CORE_SHARD_PLAN_H_
#define SDJOIN_CORE_SHARD_PLAN_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/join_stats.h"
#include "core/pair_entry.h"

namespace sdj::shard {

// One computed shard plan. ok() == false means "run unsharded": planning
// could not prove a K >= 2 partition for this configuration.
template <int Dim>
struct Plan {
  // Effective shard count (min of the requested count and the number of
  // distinct subtree refs); < 2 means the plan failed.
  int shards = 1;
  // groups[k] holds the frontier entries shard k adopts. Entry keys and seq
  // numbers are exactly what the seed engine assigned, so each shard's queue
  // pops a subsequence of the serial engine's pop order.
  std::vector<std::vector<PairEntry<Dim>>> groups;
  // Statistics charged by the seed engine's root expansion (S0). Filled by
  // the caller (policies expose stats under different names).
  JoinStats seed_stats;
  // The seed engine's sequence counter after the root expansion (n0). Every
  // shard engine adopts it, so later enqueues tie-break exactly as a serial
  // continuation would (per-shard seq values diverge from serial afterwards,
  // which is harmless: seq only breaks ties WITHIN one queue).
  uint64_t next_seq = 0;

  bool ok() const { return shards >= 2; }
};

// Scatters frontier entries into at most `requested` groups keyed by
// item1.ref, assigning refs round-robin in first-appearance order (a
// deterministic function of the entry list, which is itself a deterministic
// function of the traversal — so a re-run of the plan during restore
// reproduces the same groups). When every item1.ref coincides (the root
// expansion descended the second tree) and `allow_item2_fallback` is set,
// the scatter re-keys on item2.ref instead. The fallback is sound only for
// symmetric traversals (plain and within joins); semi-joins partition their
// per-first-object state (S_o, bound tables) by item1 and must never pass
// it.
template <int Dim>
Plan<Dim> Scatter(const std::vector<PairEntry<Dim>>& entries, int requested,
                  bool allow_item2_fallback) {
  Plan<Dim> plan;
  if (requested < 2 || entries.empty()) return plan;
  const auto try_side = [&](bool second) -> bool {
    // ref -> first-appearance index; group = index % requested.
    std::unordered_map<uint64_t, int> group_of;
    for (const PairEntry<Dim>& e : entries) {
      const uint64_t ref = second ? e.item2.ref : e.item1.ref;
      const int next_index = static_cast<int>(group_of.size());
      group_of.try_emplace(ref, next_index % requested);
    }
    if (group_of.size() < 2) return false;
    const int effective = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(requested), group_of.size()));
    plan.groups.assign(static_cast<size_t>(effective), {});
    for (const PairEntry<Dim>& e : entries) {
      const uint64_t ref = second ? e.item2.ref : e.item1.ref;
      plan.groups[static_cast<size_t>(group_of[ref])].push_back(e);
    }
    plan.shards = effective;
    return true;
  };
  if (!try_side(/*second=*/false) &&
      !(allow_item2_fallback && try_side(/*second=*/true))) {
    plan = Plan<Dim>{};
  }
  return plan;
}

// Pumps a freshly seeded engine one serial step and scatters its frontier.
// `seed` must be a normally constructed (non-defer_seed) engine that has not
// produced any result yet. On success the caller copies the seed's
// statistics into plan.seed_stats (stats() for the join engines,
// engine_stats() for the neighbor engines) before destroying it. A false
// PumpPlanStep — empty tree, reportable head, skip, or I/O failure — or an
// unreadable queue yields a non-ok() plan.
template <int Dim, typename EngineT>
Plan<Dim> BuildFromSeed(EngineT* seed, int requested,
                        bool allow_item2_fallback) {
  Plan<Dim> plan;
  if (requested < 2) return plan;
  if (!seed->PumpPlanStep()) return plan;
  std::vector<PairEntry<Dim>> entries;
  if (!seed->CollectPlanEntries(&entries)) return plan;
  plan = Scatter<Dim>(entries, requested, allow_item2_fallback);
  if (plan.ok()) plan.next_seq = seed->next_seq();
  return plan;
}

}  // namespace sdj::shard

#endif  // SDJOIN_CORE_SHARD_PLAN_H_
