// The shared best-first engine core (DESIGN.md §13).
//
// Every traversal in this repository — the incremental distance join and
// semi-join (Section 2.2/2.3), incremental nearest- and farthest-neighbor
// search (the paper's reference [18] and Section 2.2.5), and the incremental
// within-distance join — is the same algorithm: a priority queue of index
// entries popped in key order, where popping an object(-pair) reports it and
// popping a node(-pair) expands it. This class owns everything those engines
// would otherwise duplicate:
//
//   * queue management: the in-memory pairing heap or the hybrid tiered
//     memory/disk queue (Section 3.2) behind one PairQueue interface;
//   * the serial pop loop with its safe points: StopToken polling,
//     hybrid-queue I/O-error propagation, obs PopSample / expansion
//     PhaseTimers (DESIGN.md §11/§12);
//   * TryPin + JoinStatus::kIoError propagation on every node-read path
//     (DESIGN.md §9) — PinDecode/MarkIoError, never an aborting Pin;
//   * SaveCore/RestoreCore: serialization of the queue (entries + tier
//     frontier), sequence counter, status, and statistics, with pool-counter
//     rebasing across the suspend/resume boundary;
//   * RectBatch decode-and-score scratch, and the parallel classify /
//     slot-ordered serial merge that keeps multi-threaded expansion
//     bit-identical to serial (DESIGN.md §10).
//
// A concrete engine derives from this class (CRTP — `Derived` is the policy;
// no virtual dispatch on the hot path) and supplies only what differs:
//
//   PopAction OnPopped(const Entry&, Result*)  classify a popped entry:
//                                              report / skip / expand
//   bool Expand(const Entry&)                  create+enqueue child entries;
//                                              false => MarkIoError() fired
//   void PrepareNext()                         optional: runs first in Next()
//                                              (NN auto-resume clears
//                                              kSuspended here)
//   bool BeforeIteration()                     optional: pre-loop cap checks;
//                                              false stops with status_ set
//   bool OnQueueDrained()                      optional: true re-enters the
//                                              loop (estimation restart)
//
// The policy also owns its public options, result filling, and — because the
// config fingerprint is engine-specific — the SaveState/RestoreState framing
// around SaveCore/RestoreCore. See DESIGN.md §13 for the author's checklist.
#ifndef SDJOIN_CORE_BEST_FIRST_H_
#define SDJOIN_CORE_BEST_FIRST_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "core/hybrid_queue.h"
#include "core/join_result.h"
#include "core/join_stats.h"
#include "core/pair_entry.h"
#include "core/pair_queue.h"
#include "core/snapshot.h"
#include "geometry/code_screen.h"
#include "geometry/rect_batch.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "util/check.h"
#include "util/stop_token.h"
#include "util/thread_pool.h"

namespace sdj {

// The cross-cutting knobs every best-first engine shares; each engine copies
// them out of its own options struct at construction.
struct BestFirstConfig {
  TieBreakPolicy tie_break = TieBreakPolicy::kDepthFirst;
  bool use_hybrid_queue = false;
  HybridQueueOptions hybrid;
  int num_threads = 1;
  util::StopToken stop_token;
  obs::Metrics* metrics = nullptr;
};

// Verdict of Derived::OnPopped on one dequeued entry.
enum class PopAction : uint8_t {
  kReported,  // `out` filled; Next() returns true
  kSkip,      // entry consumed (pruned/filtered); continue popping
  kExpand,    // node entry; core times and runs Derived::Expand
};

// See file comment. `ResultT` is what Next() fills (JoinResult<Dim> for the
// pair engines, a neighbor record for the single-tree engines); it is
// exported as `Result` so JoinCursor can forward any engine generically.
template <int Dim, typename Derived, typename Index, typename ResultT>
class BestFirstEngine {
 public:
  using Result = ResultT;

  // Produces the next result; returns false once no further result exists,
  // the stop token fired, or an unrecoverable I/O failure occurred —
  // status() disambiguates. Results already returned are always a valid,
  // correctly ordered prefix.
  bool Next(ResultT* out) {
    SDJ_CHECK(out != nullptr);
    derived().PrepareNext();
    if (status_ != JoinStatus::kOk) return false;
    if (!derived().BeforeIteration()) return false;
    for (;;) {
      // Safe point (DESIGN.md §11): no entry is popped-but-unprocessed here,
      // so the queue and every policy structure are mutually consistent and
      // SaveState captures a resumable cursor.
      if (config_.stop_token.stop_requested()) {
        status_ = JoinStatus::kSuspended;
        return false;
      }
      if (queue_->Empty()) {
        if (queue_->io_error()) {
          status_ = JoinStatus::kIoError;
          return false;
        }
        if (derived().OnQueueDrained()) continue;
        status_ = JoinStatus::kExhausted;
        return false;
      }
      // The hybrid queue migrates entries between tiers inside Empty/Pop; a
      // disk-tier read failure there loses entries, so the remaining stream
      // is no longer guaranteed complete — stop with the partial prefix.
      if (queue_->io_error()) {
        status_ = JoinStatus::kIoError;
        return false;
      }
      // Pop cost is heap restructuring; Empty() above already refilled, so
      // the kRefill phase never nests inside this one. Sampled 1-in-16
      // (obs::PopSample) keyed on queue_pops, which SaveCore persists, so a
      // resumed cursor samples the same pops an uninterrupted run would.
      obs::PhaseTimer pop_timer(
          obs::PopSample(config_.metrics, stats_.queue_pops), obs::Op::kPop);
      PairEntry<Dim> e = queue_->Pop();
      pop_timer.Stop();
      ++stats_.queue_pops;
      const PopAction action = derived().OnPopped(e, out);
      if (action == PopAction::kReported) return true;
      if (action == PopAction::kSkip) continue;
      obs::PhaseTimer expand_timer(config_.metrics, obs::Op::kExpansion);
      if (!derived().Expand(e)) return false;  // status_ set to kIoError
    }
  }

  // Why iteration stopped (kOk while Next() still returns results). After a
  // kIoError the iterator stays stopped; results already produced remain
  // valid.
  JoinStatus status() const { return status_; }

  // Clears a kSuspended status so iteration can continue (after the caller
  // re-arms or replaces the StopSource). No-op in any other state.
  void ResumeSuspended() {
    if (status_ == JoinStatus::kSuspended) status_ = JoinStatus::kOk;
  }

  // Cumulative statistics (Table 1's measures among them). Node I/O is
  // derived from the indexes' buffer pools, so it assumes the pools are not
  // shared with concurrent work.
  const JoinStats& stats() const {
    stats_.max_queue_size =
        std::max<uint64_t>(stats_.max_queue_size, queue_->MaxSize());
    stats_.node_io = PoolMisses() - base_node_misses_;
    stats_.node_accesses = PoolAccesses() - base_node_accesses_;
    stats_.io_retries = PoolRetries() - base_io_retries_;
    stats_.checksum_failures =
        PoolChecksumFailures() - base_checksum_failures_;
    stats_.spill_fallbacks =
        base_spill_fallbacks_ + queue_->spill_fallbacks();
    return stats_;
  }

  // Peak number of queue entries resident in memory (differs from
  // stats().max_queue_size only for the hybrid queue).
  size_t max_memory_queue_size() const { return queue_->MaxMemorySize(); }

  // Entries currently live in the pair queue (all tiers). The serving layer
  // (DESIGN.md §14) uses this as a session's memory-cost proxy when deciding
  // which sessions to checkpoint and evict under pressure.
  size_t queue_size() const { return queue_->Size(); }

  // ---- shard planning (core/shard_plan.h, DESIGN.md §18) ----

  // Runs exactly one pop+expand step of the serial loop, to deepen the
  // frontier during shard planning. Charges the same counters the serial
  // loop would (queue_pops here; the expansion charges its own), so a plan
  // built this way stays stats-identical to a serial prefix. Returns true
  // only when the head entry was classified kExpand and the expansion
  // succeeded; any other outcome (empty or errored queue, reportable or
  // skippable head, I/O failure) returns false and the planner must fall
  // back to an unsharded engine.
  bool PumpPlanStep() {
    if (status_ != JoinStatus::kOk || queue_->Empty() ||
        queue_->io_error()) {
      return false;
    }
    const Entry& top = queue_->Top();
    if (!top.item1.is_node() && !top.item2.is_node()) return false;
    obs::PhaseTimer pop_timer(
        obs::PopSample(config_.metrics, stats_.queue_pops), obs::Op::kPop);
    Entry e = queue_->Pop();
    pop_timer.Stop();
    ++stats_.queue_pops;
    ResultT scratch;
    if (derived().OnPopped(e, &scratch) != PopAction::kExpand) return false;
    obs::PhaseTimer expand_timer(config_.metrics, obs::Op::kExpansion);
    return derived().Expand(e);
  }

  // Copies every live queue entry into *out (unspecified order). Returns
  // false if the queue could not be fully read (an unreadable hybrid disk
  // page), in which case the plan must be abandoned.
  bool CollectPlanEntries(std::vector<PairEntry<Dim>>* out) {
    out->clear();
    return queue_->ForEach(
        [out](const Entry& e) { out->push_back(e); });
  }

  // Seeds a defer-seeded engine with externally planned entries. Does NOT
  // charge queue_pushes — the plan's seed engine already charged every push
  // the serial engine would have — and adopts the planner's sequence
  // counter so later enqueues tie-break exactly as a serial continuation.
  void AdoptPlanEntries(const std::vector<PairEntry<Dim>>& entries,
                        uint64_t next_seq) {
    queue_->PushBulk(entries.data(), entries.size());
    next_seq_ = next_seq;
  }

  uint64_t next_seq() const { return next_seq_; }

 protected:
  using Item = JoinItem<Dim>;
  using Entry = PairEntry<Dim>;

  static constexpr double kInf = std::numeric_limits<double>::infinity();
  // Candidate batches below this size are classified inline: the per-shard
  // handoff costs more than scoring a few dozen rectangles.
  static constexpr size_t kParallelGrain = 128;

  // `pools` are the buffer pools of every index the engine reads (one per
  // distinct index), folded into the node_io / node_accesses / io_retries /
  // checksum_failures statistics.
  BestFirstEngine(std::vector<const storage::BufferPool*> pools,
                  const BestFirstConfig& config)
      : config_(config),
        pools_(std::move(pools)),
        workers_(config.num_threads),
        base_node_misses_(PoolMisses()),
        base_node_accesses_(PoolAccesses()),
        base_io_retries_(PoolRetries()),
        base_checksum_failures_(PoolChecksumFailures()) {
    queue_ = MakeQueue();
  }

  // Non-virtual: engines are used through their concrete type.
  ~BestFirstEngine() = default;

  Derived& derived() { return static_cast<Derived&>(*this); }

  // ---- default policy hooks (a Derived overrides by shadowing) ----

  void PrepareNext() {}
  bool BeforeIteration() { return true; }
  bool OnQueueDrained() { return false; }

  // ---- queue construction ----

  std::unique_ptr<PairQueue<Dim>> MakeQueue() const {
    PairEntryCompare<Dim> cmp{config_.tie_break};
    if (config_.use_hybrid_queue) {
      // The queue shares the engine's sink (refill/spill phases, spill-file
      // page I/O) unless the caller wired its own.
      HybridQueueOptions hybrid = config_.hybrid;
      if (hybrid.metrics == nullptr) hybrid.metrics = config_.metrics;
      return std::make_unique<HybridPairQueue<Dim>>(cmp, hybrid);
    }
    return std::make_unique<MemoryPairQueue<Dim>>(cmp);
  }

  // ---- node reads (DESIGN.md §9) ----

  // Records an unrecoverable node-page I/O failure. Returns false so callers
  // can `return MarkIoError();` straight out of the expansion path.
  bool MarkIoError() {
    status_ = JoinStatus::kIoError;
    return false;
  }

  // Pins one node page and decodes it into the given batch/ref scratch.
  // Returns false on an unreadable page WITHOUT touching status_ — callers
  // propagate with `return MarkIoError();` (never SDJ_CHECK). The pin spans
  // only the decode; expansions that must hold two pins simultaneously
  // (ProcessBoth) pin manually with the same TryPin contract.
  bool PinDecode(const Index& tree, uint64_t ref, RectBatch<Dim>* batch,
                 std::vector<uint64_t>* refs, bool* leaf, int* level) {
    typename Index::PinnedNode node =
        tree.TryPin(static_cast<storage::PageId>(ref));
    if (!node.ok()) return false;
    node.DecodeInto(batch, refs);
    *leaf = node.is_leaf();
    *level = node.level();
    return true;
  }

  // Runs a pinned node's screened decode (integer code screening on
  // quantized pages, DESIGN.md §17) and charges the screening counters.
  // Returns the number of entries screened out; every one of them is
  // provably out of range (the classify ladder would verdict kSlotRangeMax),
  // so the CALLER must charge the same per-entry counters that verdict
  // charges at its site — the pair stream and all pre-existing counters then
  // stay byte-identical with screening on or off.
  size_t ScreenedDecode(const typename Index::PinnedNode& node,
                        const Rect<Dim>& query, double max_distance,
                        simd::Isa isa, RectBatch<Dim>* batch,
                        std::vector<uint64_t>* refs) {
    size_t dropped = 0;
    const bool ran = node.DecodeScreened(query, max_distance, isa,
                                         &screen_scratch_, batch, refs,
                                         &dropped);
    if (ran) {
      stats_.screened_candidates += batch->size() + dropped;
      stats_.screen_survivors += batch->size();
    }
    return dropped;
  }

  // PinDecode with integer code screening: decodes only the entries that
  // could possibly lie within `max_distance` of `query`. *screened_out gets
  // the dropped-entry count (see ScreenedDecode for the caller's counter
  // obligation); raw pages and unprunable grids behave exactly like
  // PinDecode with *screened_out == 0.
  bool PinDecodeScreened(const Index& tree, uint64_t ref,
                         const Rect<Dim>& query, double max_distance,
                         simd::Isa isa, RectBatch<Dim>* batch,
                         std::vector<uint64_t>* refs, bool* leaf, int* level,
                         size_t* screened_out) {
    typename Index::PinnedNode node =
        tree.TryPin(static_cast<storage::PageId>(ref));
    if (!node.ok()) return false;
    *screened_out =
        ScreenedDecode(node, query, max_distance, isa, batch, refs);
    *leaf = node.is_leaf();
    *level = node.level();
    return true;
  }

  // ---- child-item materialization ----

  // Turns entry `i` of a decoded node batch into a queue item. `object_kind`
  // is what leaf entries become (kObject, or kObjectRect in obr mode).
  Item MakeChildItem(const RectBatch<Dim>& batch,
                     const std::vector<uint64_t>& refs, size_t i, bool leaf,
                     int level, JoinItemKind object_kind) const {
    Item item;
    item.rect = batch.rect(i);
    item.ref = refs[i];
    if (leaf) {
      item.level = -1;
      item.kind = object_kind;
    } else {
      item.level = static_cast<int16_t>(level - 1);
      item.kind = JoinItemKind::kNode;
    }
    return item;
  }

  void BuildChildItems(const RectBatch<Dim>& batch,
                       const std::vector<uint64_t>& refs, bool leaf, int level,
                       JoinItemKind object_kind, std::vector<Item>* out) const {
    out->clear();
    out->reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      out->push_back(MakeChildItem(batch, refs, i, leaf, level, object_kind));
    }
  }

  // ---- batched classify + slot-ordered merge (DESIGN.md §10) ----

  // The pure per-candidate acceptance ladder ClassifyAndEnqueue applies —
  // everything it consults must be immutable across one expansion.
  struct ClassifySpec {
    const Rect<Dim>* window1 = nullptr;  // null = no window filter
    const Rect<Dim>* window2 = nullptr;
    double min_distance = 0.0;
    double max_distance = std::numeric_limits<double>::infinity();
    bool reverse_order = false;
    // Whether accepted entries need the PairMaxDist upper bound (Dmin
    // pruning and reverse keys); mirrors the serial ladder's condition.
    bool need_join_dmax = false;
    Metric metric = Metric::kEuclidean;
  };

  // Candidate slot verdicts from the classify pass. The merge step derives
  // the serial engine's exact counter increments from the verdict alone.
  enum SlotState : uint8_t {
    kSlotFilter = 0,    // window rejected (no distance computed)
    kSlotRangeMax = 1,  // MINDIST above Dmax (one distance calc)
    kSlotRangeMin = 2,  // join d_max below Dmin (two distance calcs)
    kSlotAccept = 3,    // entry built (1 + need_join_dmax calcs)
  };

  // Classifies n candidate pairs through the acceptance ladder and enqueues
  // survivors in slot order. get_a/get_b map a slot to its items; pre_mind,
  // when non-null, holds PairMinDist per slot from a batch kernel;
  // object_pair says both sides are exact objects (the Dist. Calc. counter).
  //
  // Determinism: shards are static index ranges (util/thread_pool.h), each
  // slot's verdict and entry are pure functions of that slot, and the merge
  // walks slots in order — accumulating counters, assigning seq to
  // survivors, bulk-pushing them — so the output stream is bit-identical to
  // the serial engine's for any thread count.
  template <typename GetA, typename GetB>
  void ClassifyAndEnqueue(const ClassifySpec& spec, size_t n,
                          const double* pre_mind, bool object_pair,
                          const GetA& get_a, const GetB& get_b) {
    slot_entries_.resize(n);
    slot_state_.resize(n);
    const std::function<void(size_t, size_t)> classify = [&](size_t begin,
                                                             size_t end) {
      for (size_t i = begin; i < end; ++i) {
        const Item& a = get_a(i);
        const Item& b = get_b(i);
        if (spec.window1 != nullptr && !a.rect.Intersects(*spec.window1)) {
          slot_state_[i] = kSlotFilter;
          continue;
        }
        if (spec.window2 != nullptr && !b.rect.Intersects(*spec.window2)) {
          slot_state_[i] = kSlotFilter;
          continue;
        }
        const double d =
            pre_mind != nullptr ? pre_mind[i] : PairMinDist(a, b, spec.metric);
        if (d > spec.max_distance) {
          slot_state_[i] = kSlotRangeMax;
          continue;
        }
        double join_dmax = kInf;
        if (spec.need_join_dmax) {
          join_dmax = PairMaxDist(a, b, spec.metric);
          if (join_dmax < spec.min_distance) {
            slot_state_[i] = kSlotRangeMin;
            continue;
          }
        }
        Entry& entry = slot_entries_[i];
        entry.distance = d;
        entry.item1 = a;
        entry.item2 = b;
        entry.seq = 0;  // assigned in the in-order merge below
        FinalizePairMetadata(&entry);
        entry.key = spec.reverse_order ? -join_dmax : d;
        slot_state_[i] = kSlotAccept;
      }
    };
    if (workers_.num_threads() > 1 && n >= kParallelGrain) {
      workers_.ParallelFor(n, classify);
      ++stats_.parallel_expansions;
    } else if (n > 0) {
      classify(0, n);
    }
    accepted_.clear();
    const uint64_t calcs_per_accept = spec.need_join_dmax ? 2 : 1;
    for (size_t i = 0; i < n; ++i) {
      switch (slot_state_[i]) {
        case kSlotFilter:
          ++stats_.pruned_by_filter;
          break;
        case kSlotRangeMax:
          ++stats_.total_distance_calcs;
          if (object_pair) ++stats_.object_distance_calcs;
          ++stats_.pruned_by_range;
          break;
        case kSlotRangeMin:
          stats_.total_distance_calcs += 2;
          if (object_pair) ++stats_.object_distance_calcs;
          ++stats_.pruned_by_range;
          break;
        case kSlotAccept: {
          stats_.total_distance_calcs += calcs_per_accept;
          if (object_pair) ++stats_.object_distance_calcs;
          Entry& entry = slot_entries_[i];
          entry.seq = next_seq_++;
          accepted_.push_back(entry);
          break;
        }
      }
    }
    queue_->PushBulk(accepted_.data(), accepted_.size());
    stats_.queue_pushes += accepted_.size();
  }

  // ---- serialization (DESIGN.md §11) ----

  // Whether the current state is capturable at all: an engine that already
  // failed (kIoError, kInvalidArgument) or whose queue lost entries cannot
  // produce a resumable snapshot. Engines check this before writing their
  // fingerprint.
  bool SaveAllowed() const {
    return status_ != JoinStatus::kIoError &&
           status_ != JoinStatus::kInvalidArgument && !queue_->io_error();
  }

  static void WriteStats(snapshot::Blob* out, const JoinStats& s) {
    out->PutU64(s.pairs_reported);
    out->PutU64(s.object_distance_calcs);
    out->PutU64(s.total_distance_calcs);
    out->PutU64(s.queue_pushes);
    out->PutU64(s.queue_pops);
    out->PutU64(s.max_queue_size);
    out->PutU64(s.node_io);
    out->PutU64(s.node_accesses);
    out->PutU64(s.nodes_expanded);
    out->PutU64(s.pruned_by_range);
    out->PutU64(s.pruned_by_estimate);
    out->PutU64(s.pruned_by_bound);
    out->PutU64(s.pruned_by_filter);
    out->PutU64(s.filtered_reported);
    out->PutU64(s.restarts);
    out->PutU64(s.io_retries);
    out->PutU64(s.checksum_failures);
    out->PutU64(s.spill_fallbacks);
    out->PutU64(s.batch_kernel_invocations);
    out->PutU64(s.parallel_expansions);
    out->PutU64(s.screened_candidates);
    out->PutU64(s.screen_survivors);
  }

  static void ReadStats(snapshot::BlobReader* in, JoinStats* s) {
    s->pairs_reported = in->GetU64();
    s->object_distance_calcs = in->GetU64();
    s->total_distance_calcs = in->GetU64();
    s->queue_pushes = in->GetU64();
    s->queue_pops = in->GetU64();
    s->max_queue_size = in->GetU64();
    s->node_io = in->GetU64();
    s->node_accesses = in->GetU64();
    s->nodes_expanded = in->GetU64();
    s->pruned_by_range = in->GetU64();
    s->pruned_by_estimate = in->GetU64();
    s->pruned_by_bound = in->GetU64();
    s->pruned_by_filter = in->GetU64();
    s->filtered_reported = in->GetU64();
    s->restarts = in->GetU64();
    s->io_retries = in->GetU64();
    s->checksum_failures = in->GetU64();
    s->spill_fallbacks = in->GetU64();
    s->batch_kernel_invocations = in->GetU64();
    s->parallel_expansions = in->GetU64();
    s->screened_candidates = in->GetU64();
    s->screen_survivors = in->GetU64();
  }

  // Serializes the core state — sequence counter, status, statistics, queue
  // tier frontier and every live entry. The engine writes its config
  // fingerprint and policy scalars around this. Returns false if the queue
  // entries cannot all be read (an unreadable hybrid disk page); `out` must
  // then be discarded.
  bool SaveCore(snapshot::Blob* out) {
    stats();  // fold pool- and queue-derived counters into stats_
    out->PutU64(next_seq_);
    out->PutU8(static_cast<uint8_t>(status_));
    WriteStats(out, stats_);
    // Queue: frontier first, so restore classifies pushes into the same
    // tiers, then every live entry (order-free — the comparator is total).
    out->PutU64(queue_->TierFrontier());
    out->PutU64(queue_->Size());
    return queue_->ForEach(
        [out](const Entry& e) { snapshot::WriteEntry(out, e); });
  }

  // Counterpart of SaveCore; the caller has already verified its
  // fingerprint. On success the rebuilt queue pops the exact sequence the
  // saved one would have (the entry comparator is a total order), and the
  // statistics are rebased against the *current* pool counters so stats()
  // keeps reporting totals across the suspend/resume boundary (modular
  // uint64 arithmetic keeps the deltas exact even when the new process's
  // pools start cold). On failure the engine is unusable and must be
  // reconstructed.
  bool RestoreCore(snapshot::BlobReader* in) {
    const uint64_t next_seq = in->GetU64();
    const uint8_t saved_status = in->GetU8();
    if (saved_status > static_cast<uint8_t>(JoinStatus::kInvalidArgument)) {
      return false;
    }
    JoinStats saved_stats;
    ReadStats(in, &saved_stats);
    const uint64_t frontier = in->GetU64();
    const uint64_t count = in->GetCount(snapshot::EntryWireSize<Dim>());
    if (!in->ok()) return false;
    // Release the old queue BEFORE building its replacement: a file-backed
    // hybrid spill must be closed before the new store truncates the path.
    queue_.reset();
    queue_ = MakeQueue();
    if (frontier > 0) queue_->RestoreTierFrontier(frontier);
    for (uint64_t i = 0; i < count; ++i) {
      Entry e;
      if (!snapshot::ReadEntry(in, &e)) return false;
      queue_->Push(e);
    }
    next_seq_ = next_seq;
    stats_ = saved_stats;
    base_node_misses_ = PoolMisses() - saved_stats.node_io;
    base_node_accesses_ = PoolAccesses() - saved_stats.node_accesses;
    base_io_retries_ = PoolRetries() - saved_stats.io_retries;
    base_checksum_failures_ =
        PoolChecksumFailures() - saved_stats.checksum_failures;
    base_spill_fallbacks_ = saved_stats.spill_fallbacks;
    status_ = static_cast<JoinStatus>(saved_status);
    return true;
  }

  // ---- pool-derived counters ----

  uint64_t PoolMisses() const {
    uint64_t total = 0;
    for (const storage::BufferPool* pool : pools_) {
      total += pool->stats().buffer_misses;
    }
    return total;
  }
  uint64_t PoolAccesses() const {
    uint64_t total = 0;
    for (const storage::BufferPool* pool : pools_) {
      total += pool->stats().logical_reads;
    }
    return total;
  }
  uint64_t PoolRetries() const {
    uint64_t total = 0;
    for (const storage::BufferPool* pool : pools_) {
      const storage::IoStats s = pool->stats();
      total += s.read_retries + s.write_retries;
    }
    return total;
  }
  uint64_t PoolChecksumFailures() const {
    uint64_t total = 0;
    for (const storage::BufferPool* pool : pools_) {
      total += pool->stats().checksum_failures;
    }
    return total;
  }

  // ---- shared state ----

  // Mutable so NN-style engines can re-arm the stop token / metrics sink
  // after construction; the queue itself is built once in the constructor.
  BestFirstConfig config_;
  std::vector<const storage::BufferPool*> pools_;
  util::ThreadPool workers_;
  std::unique_ptr<PairQueue<Dim>> queue_;

  // Expansion scratch, reused across Next() calls to avoid re-allocation on
  // the hot path. Only touched inside one Expand call at a time.
  RectBatch<Dim> batch1_;
  RectBatch<Dim> batch2_;
  std::vector<uint64_t> refs1_;
  std::vector<uint64_t> refs2_;
  std::vector<double> mind1_;
  std::vector<double> mind2_;
  std::vector<Item> left_;
  std::vector<Item> right_;
  std::vector<Entry> slot_entries_;
  std::vector<Entry> accepted_;
  std::vector<uint8_t> slot_state_;
  code_screen::ScreenScratch<Dim> screen_scratch_;

  uint64_t next_seq_ = 0;
  JoinStatus status_ = JoinStatus::kOk;
  uint64_t base_node_misses_ = 0;
  uint64_t base_node_accesses_ = 0;
  uint64_t base_io_retries_ = 0;
  uint64_t base_checksum_failures_ = 0;
  // Spill fallbacks accumulated before the last RestoreCore (the restored
  // queue's own counter restarts at zero).
  uint64_t base_spill_fallbacks_ = 0;
  mutable JoinStats stats_;
};

}  // namespace sdj

#endif  // SDJOIN_CORE_BEST_FIRST_H_
