#include "storage/buffer_pool.h"

#include <unistd.h>

#include <cstring>
#include <memory>
#include <utility>

#include "util/check.h"

namespace sdj::storage {

BufferPool::BufferPool(std::unique_ptr<PageFile> file, uint32_t capacity_pages,
                       const RetryPolicy& retry)
    : file_(std::move(file)), capacity_(capacity_pages), retry_(retry) {
  SDJ_CHECK(file_ != nullptr);
  SDJ_CHECK(capacity_ > 0);
  SDJ_CHECK(retry_.max_attempts >= 1);
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (uint32_t i = 0; i < capacity_; ++i) {
    frames_[i].data = std::make_unique<char[]>(file_->page_size());
    free_frames_.push_back(capacity_ - 1 - i);  // hand out frame 0 first
  }
}

BufferPool::~BufferPool() { FlushAll(); }

IoStatus BufferPool::ReadWithRetry(PageId id, char* buffer) {
  IoStatus status = IoStatus::kOk;
  for (uint32_t attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.read_retries;
      if (retry_.backoff_us > 0) {
        ::usleep(retry_.backoff_us << (attempt - 1));
      }
    }
    ++stats_.physical_reads;
    status = file_->Read(id, buffer);
    if (status == IoStatus::kOk) return status;
    if (status == IoStatus::kCorrupt) ++stats_.checksum_failures;
    if (status == IoStatus::kFailed) break;  // retrying cannot help
  }
  ++stats_.read_failures;
  return status;
}

IoStatus BufferPool::WriteWithRetry(PageId id, const char* buffer) {
  IoStatus status = IoStatus::kOk;
  for (uint32_t attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.write_retries;
      if (retry_.backoff_us > 0) {
        ::usleep(retry_.backoff_us << (attempt - 1));
      }
    }
    ++stats_.physical_writes;
    status = file_->Write(id, buffer);
    if (status == IoStatus::kOk) return status;
    if (status == IoStatus::kFailed) break;  // retrying cannot help
  }
  ++stats_.write_failures;
  return status;
}

char* BufferPool::TryNewPage(PageId* id, IoStatus* status) {
  SDJ_CHECK(id != nullptr);
  IoStatus local = IoStatus::kOk;
  if (status == nullptr) status = &local;
  *status = IoStatus::kOk;
  *id = file_->Allocate();
  if (*id == kInvalidPageId) {
    ++stats_.write_failures;
    *status = IoStatus::kFailed;
    return nullptr;
  }
  const uint32_t frame_index = GrabFrame(status);
  if (frame_index == kNoFrame) return nullptr;
  Frame& frame = frames_[frame_index];
  frame.page_id = *id;
  frame.pin_count = 1;
  frame.dirty = true;  // fresh pages must reach the file eventually
  std::memset(frame.data.get(), 0, file_->page_size());
  page_table_[*id] = frame_index;
  ++stats_.logical_reads;
  ++stats_.buffer_misses;  // a new page never hits the cache
  return frame.data.get();
}

char* BufferPool::TryPin(PageId id, IoStatus* status) {
  IoStatus local = IoStatus::kOk;
  if (status == nullptr) status = &local;
  *status = IoStatus::kOk;
  ++stats_.logical_reads;
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    Frame& frame = frames_[it->second];
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    ++stats_.buffer_hits;
    return frame.data.get();
  }
  ++stats_.buffer_misses;
  const uint32_t frame_index = GrabFrame(status);
  if (frame_index == kNoFrame) return nullptr;
  Frame& frame = frames_[frame_index];
  *status = ReadWithRetry(id, frame.data.get());
  if (*status != IoStatus::kOk) {
    free_frames_.push_back(frame_index);  // frame was never published
    return nullptr;
  }
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty = false;
  page_table_[id] = frame_index;
  return frame.data.get();
}

char* BufferPool::NewPage(PageId* id) {
  IoStatus status = IoStatus::kOk;
  char* data = TryNewPage(id, &status);
  SDJ_CHECK(data != nullptr);
  return data;
}

char* BufferPool::Pin(PageId id) {
  IoStatus status = IoStatus::kOk;
  char* data = TryPin(id, &status);
  SDJ_CHECK(data != nullptr);
  return data;
}

void BufferPool::Unpin(PageId id, bool dirty) {
  auto it = page_table_.find(id);
  SDJ_CHECK(it != page_table_.end());
  Frame& frame = frames_[it->second];
  SDJ_CHECK(frame.pin_count > 0);
  frame.dirty = frame.dirty || dirty;
  if (--frame.pin_count == 0) {
    lru_.push_back(it->second);
    frame.lru_pos = std::prev(lru_.end());
    frame.in_lru = true;
  }
}

bool BufferPool::FlushAll() {
  bool ok = true;
  for (auto& [page_id, frame_index] : page_table_) {
    Frame& frame = frames_[frame_index];
    if (!frame.dirty) continue;
    if (WriteWithRetry(page_id, frame.data.get()) == IoStatus::kOk) {
      frame.dirty = false;
    } else {
      ok = false;  // stays dirty; a later flush may still succeed
    }
  }
  if (file_->Sync() != IoStatus::kOk) ok = false;
  return ok;
}

void BufferPool::Invalidate() {
  // A failed eviction re-queues its frame at the LRU tail still dirty, so
  // bound the sweep to one pass over the current candidates.
  size_t candidates = lru_.size();
  while (candidates-- > 0 && !lru_.empty()) {
    EvictFrame(lru_.front());
  }
}

uint32_t BufferPool::GrabFrame(IoStatus* status) {
  if (!free_frames_.empty()) {
    const uint32_t index = free_frames_.back();
    free_frames_.pop_back();
    return index;
  }
  // Evict the least recently used unpinned page. Victims whose write-back
  // fails are re-queued dirty at the tail; try each candidate once.
  SDJ_CHECK(!lru_.empty());  // every frame pinned => capacity exhausted
  size_t candidates = lru_.size();
  while (candidates-- > 0) {
    if (EvictFrame(lru_.front())) {
      const uint32_t index = free_frames_.back();
      free_frames_.pop_back();
      return index;
    }
  }
  *status = IoStatus::kFailed;  // no evictable frame could be written back
  return kNoFrame;
}

bool BufferPool::EvictFrame(uint32_t frame_index) {
  Frame& frame = frames_[frame_index];
  SDJ_CHECK(frame.pin_count == 0 && frame.in_lru);
  lru_.erase(frame.lru_pos);
  frame.in_lru = false;
  if (frame.dirty) {
    if (WriteWithRetry(frame.page_id, frame.data.get()) != IoStatus::kOk) {
      // Keep the only good copy of the page: stay resident, retry later.
      lru_.push_back(frame_index);
      frame.lru_pos = std::prev(lru_.end());
      frame.in_lru = true;
      return false;
    }
    frame.dirty = false;
  }
  page_table_.erase(frame.page_id);
  frame.page_id = kInvalidPageId;
  free_frames_.push_back(frame_index);
  return true;
}

}  // namespace sdj::storage
