#include "storage/buffer_pool.h"

#include <cstring>
#include <memory>
#include <utility>

#include "util/check.h"

namespace sdj::storage {

BufferPool::BufferPool(std::unique_ptr<PageFile> file, uint32_t capacity_pages)
    : file_(std::move(file)), capacity_(capacity_pages) {
  SDJ_CHECK(file_ != nullptr);
  SDJ_CHECK(capacity_ > 0);
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (uint32_t i = 0; i < capacity_; ++i) {
    frames_[i].data = std::make_unique<char[]>(file_->page_size());
    free_frames_.push_back(capacity_ - 1 - i);  // hand out frame 0 first
  }
}

BufferPool::~BufferPool() { FlushAll(); }

char* BufferPool::NewPage(PageId* id) {
  SDJ_CHECK(id != nullptr);
  *id = file_->Allocate();
  const uint32_t frame_index = GrabFrame();
  Frame& frame = frames_[frame_index];
  frame.page_id = *id;
  frame.pin_count = 1;
  frame.dirty = true;  // fresh pages must reach the file eventually
  std::memset(frame.data.get(), 0, file_->page_size());
  page_table_[*id] = frame_index;
  ++stats_.logical_reads;
  ++stats_.buffer_misses;  // a new page never hits the cache
  return frame.data.get();
}

char* BufferPool::Pin(PageId id) {
  ++stats_.logical_reads;
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    Frame& frame = frames_[it->second];
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    ++stats_.buffer_hits;
    return frame.data.get();
  }
  ++stats_.buffer_misses;
  const uint32_t frame_index = GrabFrame();
  Frame& frame = frames_[frame_index];
  ++stats_.physical_reads;
  SDJ_CHECK(file_->Read(id, frame.data.get()));
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty = false;
  page_table_[id] = frame_index;
  return frame.data.get();
}

void BufferPool::Unpin(PageId id, bool dirty) {
  auto it = page_table_.find(id);
  SDJ_CHECK(it != page_table_.end());
  Frame& frame = frames_[it->second];
  SDJ_CHECK(frame.pin_count > 0);
  frame.dirty = frame.dirty || dirty;
  if (--frame.pin_count == 0) {
    lru_.push_back(it->second);
    frame.lru_pos = std::prev(lru_.end());
    frame.in_lru = true;
  }
}

void BufferPool::FlushAll() {
  for (auto& [page_id, frame_index] : page_table_) {
    Frame& frame = frames_[frame_index];
    if (frame.dirty) {
      ++stats_.physical_writes;
      SDJ_CHECK(file_->Write(page_id, frame.data.get()));
      frame.dirty = false;
    }
  }
}

void BufferPool::Invalidate() {
  while (!lru_.empty()) {
    EvictFrame(lru_.front());
  }
}

uint32_t BufferPool::GrabFrame() {
  if (!free_frames_.empty()) {
    const uint32_t index = free_frames_.back();
    free_frames_.pop_back();
    return index;
  }
  // Evict the least recently used unpinned page.
  SDJ_CHECK(!lru_.empty());  // every frame pinned => capacity exhausted
  const uint32_t victim = lru_.front();
  EvictFrame(victim);
  const uint32_t index = free_frames_.back();
  free_frames_.pop_back();
  return index;
}

void BufferPool::EvictFrame(uint32_t frame_index) {
  Frame& frame = frames_[frame_index];
  SDJ_CHECK(frame.pin_count == 0 && frame.in_lru);
  lru_.erase(frame.lru_pos);
  frame.in_lru = false;
  if (frame.dirty) {
    ++stats_.physical_writes;
    SDJ_CHECK(file_->Write(frame.page_id, frame.data.get()));
    frame.dirty = false;
  }
  page_table_.erase(frame.page_id);
  frame.page_id = kInvalidPageId;
  free_frames_.push_back(frame_index);
}

}  // namespace sdj::storage
