#include "storage/buffer_pool.h"

#include <unistd.h>

#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "util/check.h"

namespace sdj::storage {
namespace {

inline void Bump(std::atomic<uint64_t>& counter) {
  counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

BufferPool::BufferPool(std::unique_ptr<PageFile> file, uint32_t capacity_pages,
                       const RetryPolicy& retry)
    : file_(std::move(file)),
      capacity_(capacity_pages),
      page_size_([this] {
        SDJ_CHECK(file_ != nullptr);
        return file_->page_size();
      }()),
      retry_(retry) {
  SDJ_CHECK(capacity_ > 0);
  SDJ_CHECK(retry_.max_attempts >= 1);
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (uint32_t i = 0; i < capacity_; ++i) {
    frames_[i].data = std::make_unique<char[]>(page_size_);
    free_frames_.push_back(capacity_ - 1 - i);  // hand out frame 0 first
  }
}

BufferPool::~BufferPool() { FlushAll(); }

PageId BufferPool::num_pages() const {
  std::lock_guard<std::mutex> file_lock(file_mu_);
  return file_->num_pages();
}

IoStatus BufferPool::ReadWithRetry(PageId id, char* buffer) {
  obs::PhaseTimer timer(metrics(), obs::Op::kPageRead);
  IoStatus status = IoStatus::kOk;
  for (uint32_t attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    if (attempt > 0) {
      Bump(stats_.read_retries);
      if (retry_.backoff_us > 0) {
        ::usleep(retry_.backoff_us << (attempt - 1));
      }
    }
    Bump(stats_.physical_reads);
    {
      std::lock_guard<std::mutex> file_lock(file_mu_);
      status = file_->Read(id, buffer);
    }
    if (status == IoStatus::kOk) return status;
    if (status == IoStatus::kCorrupt) Bump(stats_.checksum_failures);
    if (status == IoStatus::kFailed) break;  // retrying cannot help
  }
  Bump(stats_.read_failures);
  return status;
}

IoStatus BufferPool::WriteWithRetry(PageId id, const char* buffer) {
  obs::PhaseTimer timer(metrics(), obs::Op::kPageWrite);
  IoStatus status = IoStatus::kOk;
  for (uint32_t attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    if (attempt > 0) {
      Bump(stats_.write_retries);
      if (retry_.backoff_us > 0) {
        ::usleep(retry_.backoff_us << (attempt - 1));
      }
    }
    Bump(stats_.physical_writes);
    {
      std::lock_guard<std::mutex> file_lock(file_mu_);
      status = file_->Write(id, buffer);
    }
    if (status == IoStatus::kOk) return status;
    if (status == IoStatus::kFailed) break;  // retrying cannot help
  }
  Bump(stats_.write_failures);
  return status;
}

char* BufferPool::TryNewPage(PageId* id, IoStatus* status) {
  SDJ_CHECK(id != nullptr);
  IoStatus local = IoStatus::kOk;
  if (status == nullptr) status = &local;
  *status = IoStatus::kOk;
  {
    std::lock_guard<std::mutex> file_lock(file_mu_);
    *id = file_->Allocate();
  }
  if (*id == kInvalidPageId) {
    Bump(stats_.write_failures);
    *status = IoStatus::kFailed;
    return nullptr;
  }
  const uint32_t frame_index = GrabFrame(status);
  if (frame_index == kNoFrame) return nullptr;
  Frame& frame = frames_[frame_index];
  frame.page_id = *id;
  frame.pin_count = 1;
  frame.dirty = true;  // fresh pages must reach the file eventually
  frame.busy = false;
  std::memset(frame.data.get(), 0, page_size_);
  Shard& shard = ShardOf(*id);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.table[*id] = frame_index;  // a fresh id has no waiters
  }
  in_flight_frames_.fetch_sub(1, std::memory_order_release);
  Bump(stats_.logical_reads);
  Bump(stats_.buffer_misses);  // a new page never hits the cache
  return frame.data.get();
}

char* BufferPool::TryPin(PageId id, IoStatus* status) {
  IoStatus local = IoStatus::kOk;
  if (status == nullptr) status = &local;
  *status = IoStatus::kOk;
  Bump(stats_.logical_reads);
  Shard& shard = ShardOf(id);
  std::unique_lock<std::mutex> lock(shard.mu);
  for (;;) {
    auto it = shard.table.find(id);
    if (it == shard.table.end()) break;  // not resident: load it below
    if (it->second == kNoFrame) {        // another thread is loading it
      shard.cv.wait(lock);
      continue;
    }
    Frame& frame = frames_[it->second];
    if (frame.busy) {  // an evictor is writing it back; page is leaving
      shard.cv.wait(lock);
      continue;
    }
    ++frame.pin_count;
    if (frame.pin_count == 1) {
      std::lock_guard<std::mutex> lru_lock(lru_mu_);
      if (frame.in_lru) {
        lru_.erase(frame.lru_pos);
        frame.in_lru = false;
      }
    }
    Bump(stats_.buffer_hits);
    return frame.data.get();
  }
  // Claim the load so concurrent pins of `id` wait instead of reading the
  // page twice into two frames.
  shard.table[id] = kNoFrame;
  Bump(stats_.buffer_misses);
  lock.unlock();
  const uint32_t frame_index = GrabFrame(status);
  if (frame_index == kNoFrame) {
    lock.lock();
    shard.table.erase(id);
    shard.cv.notify_all();  // a waiter becomes the next loader
    return nullptr;
  }
  Frame& frame = frames_[frame_index];
  *status = ReadWithRetry(id, frame.data.get());
  if (*status != IoStatus::kOk) {
    {
      std::lock_guard<std::mutex> lru_lock(lru_mu_);
      free_frames_.push_back(frame_index);  // frame was never published
    }
    in_flight_frames_.fetch_sub(1, std::memory_order_release);
    lock.lock();
    shard.table.erase(id);
    shard.cv.notify_all();
    return nullptr;
  }
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty = false;
  frame.busy = false;
  lock.lock();
  shard.table[id] = frame_index;
  shard.cv.notify_all();
  in_flight_frames_.fetch_sub(1, std::memory_order_release);
  return frame.data.get();
}

char* BufferPool::NewPage(PageId* id) {
  IoStatus status = IoStatus::kOk;
  char* data = TryNewPage(id, &status);
  SDJ_CHECK(data != nullptr);
  return data;
}

char* BufferPool::Pin(PageId id) {
  IoStatus status = IoStatus::kOk;
  char* data = TryPin(id, &status);
  SDJ_CHECK(data != nullptr);
  return data;
}

void BufferPool::Unpin(PageId id, bool dirty) {
  Shard& shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.table.find(id);
  SDJ_CHECK(it != shard.table.end() && it->second != kNoFrame);
  Frame& frame = frames_[it->second];
  SDJ_CHECK(frame.pin_count > 0);
  frame.dirty = frame.dirty || dirty;
  if (--frame.pin_count == 0) {
    std::lock_guard<std::mutex> lru_lock(lru_mu_);
    lru_.push_back(it->second);
    frame.lru_pos = std::prev(lru_.end());
    frame.in_lru = true;
  }
}

bool BufferPool::FlushAll() {
  bool ok = true;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [page_id, frame_index] : shard.table) {
      if (frame_index == kNoFrame) continue;  // load in progress elsewhere
      Frame& frame = frames_[frame_index];
      // A busy frame's evictor is already writing it back.
      if (!frame.dirty || frame.busy) continue;
      if (WriteWithRetry(page_id, frame.data.get()) == IoStatus::kOk) {
        frame.dirty = false;
      } else {
        ok = false;  // stays dirty; a later flush may still succeed
      }
    }
  }
  obs::PhaseTimer timer(metrics(), obs::Op::kPageSync);
  std::lock_guard<std::mutex> file_lock(file_mu_);
  if (file_->Sync() != IoStatus::kOk) ok = false;
  return ok;
}

void BufferPool::Invalidate() {
  // A failed eviction re-queues its frame at the LRU tail still dirty, so
  // bound the sweep to one pass over the current candidates.
  size_t candidates = 0;
  {
    std::lock_guard<std::mutex> lock(lru_mu_);
    candidates = lru_.size();
  }
  while (candidates-- > 0) {
    uint32_t victim = kNoFrame;
    PageId victim_page = kInvalidPageId;
    {
      std::lock_guard<std::mutex> lock(lru_mu_);
      if (lru_.empty()) break;
      victim = lru_.front();
      lru_.pop_front();
      frames_[victim].in_lru = false;
      // Synchronized: page_id is never written while the frame sits in the
      // LRU list, and the Unpin that queued it published it via lru_mu_.
      victim_page = frames_[victim].page_id;
    }
    EvictVictim(victim, victim_page, /*to_free_list=*/true);
  }
}

uint32_t BufferPool::GrabFrame(IoStatus* status) {
  // Bounded patience before declaring capacity exhaustion: frames held by
  // concurrent loads and evictions (in_flight_frames_) get published or
  // freed shortly, and a racing Unpin may re-stock the LRU just after we
  // looked. A genuine all-pinned state never changes on its own, so the
  // abort still fires — after a beat, instead of instantly.
  int barren_observations = 0;
  for (;;) {
    size_t candidates = 0;
    {
      std::lock_guard<std::mutex> lock(lru_mu_);
      if (!free_frames_.empty()) {
        const uint32_t index = free_frames_.back();
        free_frames_.pop_back();
        in_flight_frames_.fetch_add(1, std::memory_order_relaxed);
        return index;
      }
      candidates = lru_.size();
      if (candidates == 0 &&
          in_flight_frames_.load(std::memory_order_acquire) == 0) {
        ++barren_observations;
        // Every frame pinned => capacity exhausted: a programming error.
        SDJ_CHECK(barren_observations < 1024);
      }
    }
    if (candidates == 0) {
      std::this_thread::yield();
      continue;
    }
    barren_observations = 0;
    // Evict the least recently used unpinned page. Victims whose write-back
    // fails are re-queued dirty at the tail; try each candidate once.
    size_t attempts = 0;
    size_t write_failures = 0;
    while (candidates-- > 0) {
      uint32_t victim = kNoFrame;
      PageId victim_page = kInvalidPageId;
      {
        std::lock_guard<std::mutex> lock(lru_mu_);
        if (!free_frames_.empty()) {  // a concurrent eviction freed one
          const uint32_t index = free_frames_.back();
          free_frames_.pop_back();
          in_flight_frames_.fetch_add(1, std::memory_order_relaxed);
          return index;
        }
        if (lru_.empty()) break;  // drained by concurrent grabs; reassess
        victim = lru_.front();
        lru_.pop_front();
        frames_[victim].in_lru = false;
        victim_page = frames_[victim].page_id;  // see Invalidate
      }
      ++attempts;
      switch (EvictVictim(victim, victim_page, /*to_free_list=*/false)) {
        case EvictResult::kEvicted:
          in_flight_frames_.fetch_add(1, std::memory_order_relaxed);
          return victim;
        case EvictResult::kWriteFailed:
          ++write_failures;
          break;
        case EvictResult::kSkipped:
          break;  // a racing pinner owns the frame now
      }
    }
    if (attempts > 0 && write_failures == attempts) {
      // A full pass where every candidate's write-back failed: no frame can
      // be freed right now.
      *status = IoStatus::kFailed;
      return kNoFrame;
    }
  }
}

BufferPool::EvictResult BufferPool::EvictVictim(uint32_t victim,
                                                PageId expected_page,
                                                bool to_free_list) {
  Frame& frame = frames_[victim];
  Shard& shard = ShardOf(expected_page);
  std::unique_lock<std::mutex> lock(shard.mu);
  // The LRU pop does not make us the frame's exclusive owner: between the
  // pop and this lock a pinner can revive the page (pin_count > 0), and a
  // full revive/unpin/re-evict cycle can even hand the frame to a brand-new
  // owner loading a different page. Re-verify identity under the shard lock
  // before touching any frame state; on any mismatch the frame belongs to
  // someone else now.
  const auto it = shard.table.find(expected_page);
  if (it == shard.table.end() || it->second != victim || frame.busy ||
      frame.pin_count > 0) {
    return EvictResult::kSkipped;
  }
  const PageId page_id = expected_page;
  if (frame.dirty) {
    frame.busy = true;  // park pinners on the shard cv during write-back
    lock.unlock();
    const IoStatus write_status = WriteWithRetry(page_id, frame.data.get());
    lock.lock();
    frame.busy = false;
    shard.cv.notify_all();
    if (write_status != IoStatus::kOk) {
      // Keep the only good copy of the page: stay resident, retry later.
      lock.unlock();
      std::lock_guard<std::mutex> lru_lock(lru_mu_);
      lru_.push_back(victim);
      frame.lru_pos = std::prev(lru_.end());
      frame.in_lru = true;
      return EvictResult::kWriteFailed;
    }
    frame.dirty = false;
  }
  shard.table.erase(page_id);
  frame.page_id = kInvalidPageId;
  shard.cv.notify_all();  // waiters re-find and take the miss path
  lock.unlock();
  if (to_free_list) {
    std::lock_guard<std::mutex> lru_lock(lru_mu_);
    free_frames_.push_back(victim);
  }
  return EvictResult::kEvicted;
}

IoStats BufferPool::stats() const {
  IoStats s;
  s.logical_reads = stats_.logical_reads.load(std::memory_order_relaxed);
  s.buffer_hits = stats_.buffer_hits.load(std::memory_order_relaxed);
  s.buffer_misses = stats_.buffer_misses.load(std::memory_order_relaxed);
  s.physical_reads = stats_.physical_reads.load(std::memory_order_relaxed);
  s.physical_writes = stats_.physical_writes.load(std::memory_order_relaxed);
  s.read_retries = stats_.read_retries.load(std::memory_order_relaxed);
  s.write_retries = stats_.write_retries.load(std::memory_order_relaxed);
  s.checksum_failures =
      stats_.checksum_failures.load(std::memory_order_relaxed);
  s.read_failures = stats_.read_failures.load(std::memory_order_relaxed);
  s.write_failures = stats_.write_failures.load(std::memory_order_relaxed);
  return s;
}

void BufferPool::ResetStats() {
  stats_.logical_reads.store(0, std::memory_order_relaxed);
  stats_.buffer_hits.store(0, std::memory_order_relaxed);
  stats_.buffer_misses.store(0, std::memory_order_relaxed);
  stats_.physical_reads.store(0, std::memory_order_relaxed);
  stats_.physical_writes.store(0, std::memory_order_relaxed);
  stats_.read_retries.store(0, std::memory_order_relaxed);
  stats_.write_retries.store(0, std::memory_order_relaxed);
  stats_.checksum_failures.store(0, std::memory_order_relaxed);
  stats_.read_failures.store(0, std::memory_order_relaxed);
  stats_.write_failures.store(0, std::memory_order_relaxed);
}

}  // namespace sdj::storage
