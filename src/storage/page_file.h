// Fixed-size page store, the bottom layer under the buffer pool.
//
// Two backends share one interface: an in-memory store (the common case for
// tests and experiments — it still produces exact logical/physical I/O counts)
// and a POSIX file store (for datasets larger than memory and for the hybrid
// priority queue's disk tier). Decorators compose over either backend:
// NewChecksummingPageFile (per-page FNV-1a trailers, storage/checksum.h) and
// NewFaultInjectingPageFile (storage/fault_injection.h). page_store.h
// assembles the standard stack.
#ifndef SDJOIN_STORAGE_PAGE_FILE_H_
#define SDJOIN_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/page.h"

namespace sdj::storage {

// Outcome of a single page-store operation. The buffer pool retries
// kTransient and kCorrupt (a re-read can heal a fault that happened in
// transfer); kFailed is surfaced to the caller immediately.
enum class IoStatus : uint8_t {
  kOk = 0,
  kTransient,  // transient failure (EINTR-style); retrying may succeed
  kCorrupt,    // page transferred but failed checksum verification
  kFailed,     // hard failure or invalid page id; retrying cannot help
};

// Human-readable status name for diagnostics.
const char* IoStatusName(IoStatus status);

// Abstract fixed-size page store. All pages have the same size; page ids are
// dense and allocated in order. Thread-compatible (external synchronization
// required for concurrent use).
class PageFile {
 public:
  explicit PageFile(uint32_t page_size) : page_size_(page_size) {}
  virtual ~PageFile() = default;

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  uint32_t page_size() const { return page_size_; }

  // Number of allocated pages; valid ids are [0, num_pages()).
  virtual PageId num_pages() const = 0;

  // Allocates a new zeroed page and returns its id, or kInvalidPageId if the
  // store could not be extended.
  virtual PageId Allocate() = 0;

  // Reads page `id` into `buffer` (page_size() bytes).
  virtual IoStatus Read(PageId id, char* buffer) = 0;

  // Writes `buffer` (page_size() bytes) to page `id`.
  virtual IoStatus Write(PageId id, const char* buffer) = 0;

  // Forces written pages to durable storage (fsync for the POSIX backend;
  // a no-op for the in-memory store and pass-through for decorators).
  virtual IoStatus Sync() { return IoStatus::kOk; }

  uint64_t physical_reads() const { return physical_reads_; }
  uint64_t physical_writes() const { return physical_writes_; }
  void ResetCounters() {
    physical_reads_ = 0;
    physical_writes_ = 0;
  }

 protected:
  const uint32_t page_size_;
  uint64_t physical_reads_ = 0;
  uint64_t physical_writes_ = 0;
};

// Creates a heap-backed page store.
std::unique_ptr<PageFile> NewMemoryPageFile(uint32_t page_size);

// Creates (truncating) a file-backed page store at `path`. Returns null if
// the file cannot be created.
std::unique_ptr<PageFile> NewFilePageFile(const std::string& path,
                                          uint32_t page_size);

// Opens an existing file-backed page store at `path`. The file size must be
// a multiple of `page_size`; existing pages keep their contents. With
// `recover_truncated_tail` set, a file whose final page is incomplete (a torn
// final write, e.g. a crash mid-append) is truncated back to the last whole
// page instead of being refused. Returns null if the file cannot be opened or
// has an inconsistent size that recovery was not asked to (or could not) fix.
std::unique_ptr<PageFile> OpenFilePageFile(const std::string& path,
                                           uint32_t page_size,
                                           bool recover_truncated_tail = false);

// Wraps `inner` with per-page checksum trailers: the returned store exposes
// logical pages of inner->page_size() - kPageTrailerSize bytes, writes an
// FNV-1a trailer on every physical write, and verifies it on every read
// (checksum mismatch => IoStatus::kCorrupt). A page that was allocated but
// never written reads back as zeros. `inner` must have page_size >
// kPageTrailerSize.
std::unique_ptr<PageFile> NewChecksummingPageFile(
    std::unique_ptr<PageFile> inner);

}  // namespace sdj::storage

#endif  // SDJOIN_STORAGE_PAGE_FILE_H_
