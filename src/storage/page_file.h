// Fixed-size page store, the bottom layer under the buffer pool.
//
// Two backends share one interface: an in-memory store (the common case for
// tests and experiments — it still produces exact logical/physical I/O counts)
// and a POSIX file store (for datasets larger than memory and for the hybrid
// priority queue's disk tier).
#ifndef SDJOIN_STORAGE_PAGE_FILE_H_
#define SDJOIN_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/page.h"

namespace sdj::storage {

// Abstract fixed-size page store. All pages have the same size; page ids are
// dense and allocated in order. Thread-compatible (external synchronization
// required for concurrent use).
class PageFile {
 public:
  explicit PageFile(uint32_t page_size) : page_size_(page_size) {}
  virtual ~PageFile() = default;

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  uint32_t page_size() const { return page_size_; }

  // Number of allocated pages; valid ids are [0, num_pages()).
  virtual PageId num_pages() const = 0;

  // Allocates a new zeroed page and returns its id.
  virtual PageId Allocate() = 0;

  // Reads page `id` into `buffer` (page_size() bytes). Returns false on I/O
  // failure or invalid id.
  virtual bool Read(PageId id, char* buffer) = 0;

  // Writes `buffer` (page_size() bytes) to page `id`. Returns false on I/O
  // failure or invalid id.
  virtual bool Write(PageId id, const char* buffer) = 0;

  uint64_t physical_reads() const { return physical_reads_; }
  uint64_t physical_writes() const { return physical_writes_; }
  void ResetCounters() {
    physical_reads_ = 0;
    physical_writes_ = 0;
  }

 protected:
  const uint32_t page_size_;
  uint64_t physical_reads_ = 0;
  uint64_t physical_writes_ = 0;
};

// Creates a heap-backed page store.
std::unique_ptr<PageFile> NewMemoryPageFile(uint32_t page_size);

// Creates (truncating) a file-backed page store at `path`. Returns null if
// the file cannot be created.
std::unique_ptr<PageFile> NewFilePageFile(const std::string& path,
                                          uint32_t page_size);

// Opens an existing file-backed page store at `path`. The file size must be
// a multiple of `page_size`; existing pages keep their contents. Returns
// null if the file cannot be opened or has an inconsistent size.
std::unique_ptr<PageFile> OpenFilePageFile(const std::string& path,
                                           uint32_t page_size);

}  // namespace sdj::storage

#endif  // SDJOIN_STORAGE_PAGE_FILE_H_
