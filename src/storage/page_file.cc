#include "storage/page_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/check.h"

namespace sdj::storage {

namespace {

// Heap-backed page store. Pages are allocated lazily and zero-initialized.
class MemoryPageFile final : public PageFile {
 public:
  explicit MemoryPageFile(uint32_t page_size) : PageFile(page_size) {}

  PageId num_pages() const override {
    return static_cast<PageId>(pages_.size());
  }

  PageId Allocate() override {
    pages_.emplace_back(page_size_, '\0');
    return static_cast<PageId>(pages_.size() - 1);
  }

  bool Read(PageId id, char* buffer) override {
    if (id >= pages_.size()) return false;
    ++physical_reads_;
    std::memcpy(buffer, pages_[id].data(), page_size_);
    return true;
  }

  bool Write(PageId id, const char* buffer) override {
    if (id >= pages_.size()) return false;
    ++physical_writes_;
    std::memcpy(pages_[id].data(), buffer, page_size_);
    return true;
  }

 private:
  std::vector<std::vector<char>> pages_;
};

// POSIX file-backed page store using pread/pwrite at page-aligned offsets.
class PosixPageFile final : public PageFile {
 public:
  PosixPageFile(int fd, uint32_t page_size, PageId num_pages = 0)
      : PageFile(page_size), fd_(fd), num_pages_(num_pages) {}

  ~PosixPageFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  PageId num_pages() const override { return num_pages_; }

  PageId Allocate() override {
    // Extend the file with a zeroed page so that reads of fresh pages succeed.
    std::vector<char> zeros(page_size_, '\0');
    const off_t offset = static_cast<off_t>(num_pages_) * page_size_;
    const ssize_t written = ::pwrite(fd_, zeros.data(), page_size_, offset);
    SDJ_CHECK(written == static_cast<ssize_t>(page_size_));
    return num_pages_++;
  }

  bool Read(PageId id, char* buffer) override {
    if (id >= num_pages_) return false;
    ++physical_reads_;
    const off_t offset = static_cast<off_t>(id) * page_size_;
    return ::pread(fd_, buffer, page_size_, offset) ==
           static_cast<ssize_t>(page_size_);
  }

  bool Write(PageId id, const char* buffer) override {
    if (id >= num_pages_) return false;
    ++physical_writes_;
    const off_t offset = static_cast<off_t>(id) * page_size_;
    return ::pwrite(fd_, buffer, page_size_, offset) ==
           static_cast<ssize_t>(page_size_);
  }

 private:
  int fd_;
  PageId num_pages_ = 0;
};

}  // namespace

std::unique_ptr<PageFile> NewMemoryPageFile(uint32_t page_size) {
  SDJ_CHECK(page_size > 0);
  return std::make_unique<MemoryPageFile>(page_size);
}

std::unique_ptr<PageFile> NewFilePageFile(const std::string& path,
                                          uint32_t page_size) {
  SDJ_CHECK(page_size > 0);
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return nullptr;
  return std::make_unique<PosixPageFile>(fd, page_size);
}

std::unique_ptr<PageFile> OpenFilePageFile(const std::string& path,
                                           uint32_t page_size) {
  SDJ_CHECK(page_size > 0);
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return nullptr;
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0 || size % page_size != 0) {
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<PosixPageFile>(
      fd, page_size, static_cast<PageId>(size / page_size));
}

}  // namespace sdj::storage
