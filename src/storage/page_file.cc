#include "storage/page_file.h"

#include <cerrno>
#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "storage/checksum.h"
#include "util/check.h"

namespace sdj::storage {

namespace {

// Heap-backed page store. Pages are allocated lazily and zero-initialized.
class MemoryPageFile final : public PageFile {
 public:
  explicit MemoryPageFile(uint32_t page_size) : PageFile(page_size) {}

  PageId num_pages() const override {
    return static_cast<PageId>(pages_.size());
  }

  PageId Allocate() override {
    pages_.emplace_back(page_size_, '\0');
    return static_cast<PageId>(pages_.size() - 1);
  }

  IoStatus Read(PageId id, char* buffer) override {
    if (id >= pages_.size()) return IoStatus::kFailed;
    ++physical_reads_;
    std::memcpy(buffer, pages_[id].data(), page_size_);
    return IoStatus::kOk;
  }

  IoStatus Write(PageId id, const char* buffer) override {
    if (id >= pages_.size()) return IoStatus::kFailed;
    ++physical_writes_;
    std::memcpy(pages_[id].data(), buffer, page_size_);
    return IoStatus::kOk;
  }

 private:
  std::vector<std::vector<char>> pages_;
};

// POSIX file-backed page store using pread/pwrite at page-aligned offsets.
// Short transfers are resumed and EINTR is retried, so a page read or write
// either completes in full or reports a real error — a partial pwrite never
// silently tears a page.
class PosixPageFile final : public PageFile {
 public:
  PosixPageFile(int fd, uint32_t page_size, PageId num_pages = 0)
      : PageFile(page_size), fd_(fd), num_pages_(num_pages) {}

  ~PosixPageFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  PageId num_pages() const override { return num_pages_; }

  PageId Allocate() override {
    // Extend the file with a zeroed page so that reads of fresh pages succeed.
    std::vector<char> zeros(page_size_, '\0');
    const off_t offset = static_cast<off_t>(num_pages_) * page_size_;
    if (WriteFull(zeros.data(), offset) != IoStatus::kOk) {
      return kInvalidPageId;
    }
    return num_pages_++;
  }

  IoStatus Read(PageId id, char* buffer) override {
    if (id >= num_pages_) return IoStatus::kFailed;
    ++physical_reads_;
    const off_t offset = static_cast<off_t>(id) * page_size_;
    size_t done = 0;
    while (done < page_size_) {
      const ssize_t n = ::pread(fd_, buffer + done, page_size_ - done,
                                offset + static_cast<off_t>(done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return (errno == EAGAIN || errno == EWOULDBLOCK) ? IoStatus::kTransient
                                                         : IoStatus::kFailed;
      }
      if (n == 0) return IoStatus::kFailed;  // file truncated under us
      done += static_cast<size_t>(n);
    }
    return IoStatus::kOk;
  }

  IoStatus Write(PageId id, const char* buffer) override {
    if (id >= num_pages_) return IoStatus::kFailed;
    ++physical_writes_;
    const off_t offset = static_cast<off_t>(id) * page_size_;
    return WriteFull(buffer, offset);
  }

  IoStatus Sync() override {
    while (::fsync(fd_) != 0) {
      if (errno != EINTR) return IoStatus::kFailed;
    }
    return IoStatus::kOk;
  }

 private:
  // Writes one full page at `offset`, resuming short transfers.
  IoStatus WriteFull(const char* buffer, off_t offset) {
    size_t done = 0;
    while (done < page_size_) {
      const ssize_t n = ::pwrite(fd_, buffer + done, page_size_ - done,
                                 offset + static_cast<off_t>(done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return (errno == EAGAIN || errno == EWOULDBLOCK) ? IoStatus::kTransient
                                                         : IoStatus::kFailed;
      }
      done += static_cast<size_t>(n);
    }
    return IoStatus::kOk;
  }

  int fd_;
  PageId num_pages_ = 0;
};

// Checksumming decorator; see NewChecksummingPageFile in the header.
class ChecksummingPageFile final : public PageFile {
 public:
  explicit ChecksummingPageFile(std::unique_ptr<PageFile> inner)
      : PageFile(inner->page_size() - kPageTrailerSize),
        inner_(std::move(inner)),
        scratch_(inner_->page_size(), '\0'),
        zero_checksum_(Fnv1a64(scratch_.data(), page_size_)) {}

  PageId num_pages() const override { return inner_->num_pages(); }

  PageId Allocate() override { return inner_->Allocate(); }

  IoStatus Read(PageId id, char* buffer) override {
    ++physical_reads_;
    const IoStatus status = inner_->Read(id, scratch_.data());
    if (status != IoStatus::kOk) return status;
    uint64_t stored = 0;
    std::memcpy(&stored, scratch_.data() + page_size_, sizeof(stored));
    const uint64_t actual = Fnv1a64(scratch_.data(), page_size_);
    // A zero trailer marks a page that was allocated but never written; it is
    // valid only while the payload is still all zeros.
    if (actual != stored && !(stored == 0 && actual == zero_checksum_)) {
      ++checksum_failures_;
      return IoStatus::kCorrupt;
    }
    std::memcpy(buffer, scratch_.data(), page_size_);
    return IoStatus::kOk;
  }

  IoStatus Write(PageId id, const char* buffer) override {
    ++physical_writes_;
    std::memcpy(scratch_.data(), buffer, page_size_);
    const uint64_t checksum = Fnv1a64(buffer, page_size_);
    std::memcpy(scratch_.data() + page_size_, &checksum, sizeof(checksum));
    return inner_->Write(id, scratch_.data());
  }

  IoStatus Sync() override { return inner_->Sync(); }

 private:
  std::unique_ptr<PageFile> inner_;
  std::vector<char> scratch_;  // one physical (payload + trailer) page
  const uint64_t zero_checksum_;
  uint64_t checksum_failures_ = 0;
};

}  // namespace

const char* IoStatusName(IoStatus status) {
  switch (status) {
    case IoStatus::kOk:
      return "ok";
    case IoStatus::kTransient:
      return "transient";
    case IoStatus::kCorrupt:
      return "corrupt";
    case IoStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

std::unique_ptr<PageFile> NewMemoryPageFile(uint32_t page_size) {
  SDJ_CHECK(page_size > 0);
  return std::make_unique<MemoryPageFile>(page_size);
}

std::unique_ptr<PageFile> NewFilePageFile(const std::string& path,
                                          uint32_t page_size) {
  SDJ_CHECK(page_size > 0);
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return nullptr;
  return std::make_unique<PosixPageFile>(fd, page_size);
}

std::unique_ptr<PageFile> OpenFilePageFile(const std::string& path,
                                           uint32_t page_size,
                                           bool recover_truncated_tail) {
  SDJ_CHECK(page_size > 0);
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return nullptr;
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return nullptr;
  }
  if (size % page_size != 0) {
    if (!recover_truncated_tail) {
      ::close(fd);
      return nullptr;
    }
    // Torn final write: drop the incomplete trailing page. Whole preceding
    // pages are untouched (their checksums still verify).
    size = size - size % page_size;
    if (::ftruncate(fd, size) != 0) {
      ::close(fd);
      return nullptr;
    }
  }
  return std::make_unique<PosixPageFile>(
      fd, page_size, static_cast<PageId>(size / page_size));
}

std::unique_ptr<PageFile> NewChecksummingPageFile(
    std::unique_ptr<PageFile> inner) {
  SDJ_CHECK(inner != nullptr);
  SDJ_CHECK(inner->page_size() > kPageTrailerSize);
  return std::make_unique<ChecksummingPageFile>(std::move(inner));
}

}  // namespace sdj::storage
