// Assembles the standard page-store stack used by every paged structure
// (R-tree, quadtree, hybrid-queue disk tier):
//
//   [Memory|Posix]PageFile  ->  FaultInjectingPageFile (optional)
//                           ->  ChecksummingPageFile
//
// The returned store exposes logical pages of `page_size` bytes; the backend
// holds page_size + kPageTrailerSize bytes per page so checksum verification
// catches corruption injected (or suffered) below it.
#ifndef SDJOIN_STORAGE_PAGE_STORE_H_
#define SDJOIN_STORAGE_PAGE_STORE_H_

#include <memory>
#include <optional>
#include <string>

#include "storage/fault_injection.h"
#include "storage/page_file.h"

namespace sdj::storage {

// Construction parameters for one page store.
struct PageStoreOptions {
  // Logical (payload) bytes per page, excluding the checksum trailer.
  uint32_t page_size = kDefaultPageSize;
  // If non-empty, pages live in this file; otherwise in memory.
  std::string path;
  // If set, faults are injected between the backend and the checksum layer.
  std::optional<FaultInjectionOptions> fault_injection;
  // If set, the store simulates power loss at one exact write/sync op
  // (testing — see CrashPointPageFile). Sits directly above the backend,
  // below fault injection, so torn pages fail checksum verification.
  std::optional<CrashPointOptions> crash_point;
};

// Creates a fresh store (truncating `path` if file-backed). If `injector` is
// non-null and fault injection is configured, *injector receives a borrowed
// pointer to the injection layer (owned by the returned store) for counter
// inspection; `crash` likewise receives the crash-point layer when
// configured. Returns null if the backing file cannot be created.
std::unique_ptr<PageFile> CreatePageStore(
    const PageStoreOptions& options, FaultInjectingPageFile** injector = nullptr,
    CrashPointPageFile** crash = nullptr);

// Opens an existing file-backed store previously written through
// CreatePageStore (options.path must be non-empty). `recover_truncated_tail`
// forwards to OpenFilePageFile. Returns null on open failure.
std::unique_ptr<PageFile> OpenPageStore(
    const PageStoreOptions& options, bool recover_truncated_tail = false,
    FaultInjectingPageFile** injector = nullptr,
    CrashPointPageFile** crash = nullptr);

}  // namespace sdj::storage

#endif  // SDJOIN_STORAGE_PAGE_STORE_H_
