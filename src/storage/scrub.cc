#include "storage/scrub.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "storage/checksum.h"
#include "util/check.h"

namespace sdj::storage {

namespace {

// Reads exactly `n` bytes at `offset`, resuming short transfers. False on
// any hard error (the page is then reported corrupt, not retried — a scrub
// is a single deterministic pass).
bool ReadFull(int fd, char* buffer, size_t n, off_t offset) {
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::pread(fd, buffer + done, n - done,
                              offset + static_cast<off_t>(done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // short file
    done += static_cast<size_t>(r);
  }
  return true;
}

}  // namespace

PageScrubReport ScrubPages(const std::string& path, uint32_t page_size) {
  SDJ_CHECK(page_size > 0);
  PageScrubReport report;
  const uint64_t physical = page_size + kPageTrailerSize;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return report;
  report.opened = true;
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    report.opened = false;
    ::close(fd);
    return report;
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  report.pages_scanned = size / physical;
  report.torn_tail_bytes = size % physical;

  std::vector<char> buffer(physical);
  const uint64_t zero_checksum = Fnv1a64(buffer.data(), page_size);
  for (uint64_t page = 0; page < report.pages_scanned; ++page) {
    if (!ReadFull(fd, buffer.data(), physical,
                  static_cast<off_t>(page * physical))) {
      report.corrupt_pages.push_back(static_cast<PageId>(page));
      continue;
    }
    uint64_t stored = 0;
    std::memcpy(&stored, buffer.data() + page_size, sizeof(stored));
    const uint64_t actual = Fnv1a64(buffer.data(), page_size);
    // Same rule as ChecksummingPageFile::Read: a zero trailer marks an
    // allocated-but-never-written page and is valid only while the payload
    // is still all zeros.
    if (actual != stored && !(stored == 0 && actual == zero_checksum)) {
      report.corrupt_pages.push_back(static_cast<PageId>(page));
    }
  }
  ::close(fd);
  return report;
}

bool TruncateToPages(const std::string& path, uint32_t page_size,
                     uint64_t keep_pages, uint64_t* removed_bytes) {
  SDJ_CHECK(page_size > 0);
  if (removed_bytes != nullptr) *removed_bytes = 0;
  const uint64_t physical = page_size + kPageTrailerSize;
  const int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) return false;
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return false;
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  const uint64_t target = keep_pages * physical;
  if (target > size) {
    ::close(fd);
    return false;  // repair only shrinks; growing would fabricate pages
  }
  int rc;
  do {
    rc = ::ftruncate(fd, static_cast<off_t>(target));
  } while (rc != 0 && errno == EINTR);
  if (rc == 0 && removed_bytes != nullptr) *removed_bytes = size - target;
  ::close(fd);
  return rc == 0;
}

}  // namespace sdj::storage
