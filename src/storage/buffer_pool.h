// LRU buffer pool over a PageFile.
//
// Reproduces the paper's experimental setup of a fixed buffer over fixed-size
// R-tree nodes (Section 3.1: 1K nodes, 256K of buffer memory). The pool's
// miss counter is the "Node I/O" performance measure of Table 1.
#ifndef SDJOIN_STORAGE_BUFFER_POOL_H_
#define SDJOIN_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/page_file.h"

namespace sdj::storage {

// Fixed-capacity page cache with LRU replacement and pin counting.
//
// Usage:
//   BufferPool pool(std::move(file), /*capacity_pages=*/128);
//   char* data = pool.Pin(id);        // fetch and pin
//   ... read/modify *data ...
//   pool.Unpin(id, /*dirty=*/true);   // release; written back on eviction
//
// Pinned pages are never evicted; pinning more pages than the capacity is a
// programming error and aborts.
class BufferPool {
 public:
  // Takes ownership of `file`. `capacity_pages` > 0.
  BufferPool(std::unique_ptr<PageFile> file, uint32_t capacity_pages);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  uint32_t page_size() const { return file_->page_size(); }
  uint32_t capacity() const { return capacity_; }
  PageId num_pages() const { return file_->num_pages(); }

  // Allocates a fresh zeroed page, pins it, and returns its buffer.
  char* NewPage(PageId* id);

  // Pins page `id` and returns its buffer. The page stays resident until the
  // matching Unpin (pins nest).
  char* Pin(PageId id);

  // Releases one pin of `id`. If `dirty`, the page is written back before
  // eviction (or at FlushAll).
  void Unpin(PageId id, bool dirty);

  // Writes all dirty resident pages back to the file.
  void FlushAll();

  // Drops every unpinned page (writing dirty ones back). Makes cold-cache
  // experiments reproducible.
  void Invalidate();

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = IoStats{}; }

 private:
  struct Frame {
    std::unique_ptr<char[]> data;
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;
    bool dirty = false;
    // Position in lru_ when the frame is resident and unpinned.
    std::list<uint32_t>::iterator lru_pos;
    bool in_lru = false;
  };

  // Returns a frame to load into, evicting the LRU unpinned page if needed.
  uint32_t GrabFrame();
  void EvictFrame(uint32_t frame_index);

  std::unique_ptr<PageFile> file_;
  const uint32_t capacity_;
  std::vector<Frame> frames_;
  std::vector<uint32_t> free_frames_;
  std::unordered_map<PageId, uint32_t> page_table_;
  std::list<uint32_t> lru_;  // front = least recently used
  IoStats stats_;
};

}  // namespace sdj::storage

#endif  // SDJOIN_STORAGE_BUFFER_POOL_H_
