// LRU buffer pool over a PageFile, safe for concurrent readers.
//
// Reproduces the paper's experimental setup of a fixed buffer over fixed-size
// R-tree nodes (Section 3.1: 1K nodes, 256K of buffer memory). The pool's
// miss counter is the "Node I/O" performance measure of Table 1.
//
// The pool is also the retry layer of the failure model (DESIGN.md §9):
// transient and checksum-corrupt page reads are re-issued with bounded
// backoff, and only an unrecoverable fault surfaces to the caller — through
// TryPin/TryNewPage, which report status instead of aborting.
//
// Concurrency (DESIGN.md §10): the page table is sharded, each shard with
// its own mutex, so TryPin calls for different pages proceed in parallel;
// buffer hits touch only their shard (plus a brief LRU-list update). Frames
// being filled or written back are marked busy and waited on through the
// shard's condition variable, so a page is never loaded twice concurrently.
// Replacement stays a single global LRU (one mutex around the list + free
// stack) so the eviction sequence — and therefore the Node I/O counters of
// every single-threaded experiment — is exactly the serial pool's. Physical
// PageFile operations are serialized behind one mutex: the backends'
// decorator stack (checksums, fault injection) is stateful, and keeping
// reads in issue order keeps seeded fault schedules deterministic. I/O
// counters are atomics, so IoStats stays accurate under concurrency.
// Concurrent callers must not mutate page contents without external
// coordination (the join engines are pure readers).
#ifndef SDJOIN_STORAGE_BUFFER_POOL_H_
#define SDJOIN_STORAGE_BUFFER_POOL_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/page_file.h"

namespace sdj::storage {

// Bounded-retry policy for transient (and corrupt, since a re-read can heal a
// fault that happened in transfer) page-file operations.
struct RetryPolicy {
  // Total attempts per operation, including the first (>= 1).
  uint32_t max_attempts = 4;
  // Sleep before retry k (1-based) is backoff_us << (k - 1) microseconds;
  // 0 disables sleeping (retries are still attempted).
  uint32_t backoff_us = 50;
};

// Fixed-capacity page cache with LRU replacement and pin counting.
//
// Usage:
//   BufferPool pool(std::move(file), /*capacity_pages=*/128);
//   char* data = pool.Pin(id);        // fetch and pin
//   ... read/modify *data ...
//   pool.Unpin(id, /*dirty=*/true);   // release; written back on eviction
//
// Pinned pages are never evicted; pinning more pages than the capacity is a
// programming error and aborts. I/O faults are not: TryPin and TryNewPage
// return null with a status after retries run out, and the aborting Pin /
// NewPage wrappers exist only for callers that have no recovery path.
class BufferPool {
 public:
  // Takes ownership of `file`. `capacity_pages` > 0.
  BufferPool(std::unique_ptr<PageFile> file, uint32_t capacity_pages,
             const RetryPolicy& retry = RetryPolicy{});
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  uint32_t page_size() const { return page_size_; }
  uint32_t capacity() const { return capacity_; }
  PageId num_pages() const;
  const RetryPolicy& retry_policy() const { return retry_; }

  // Allocates a fresh zeroed page, pins it, and returns its buffer; null if
  // the store could not be extended or no frame could be freed (status, when
  // non-null, receives the failing IoStatus).
  char* TryNewPage(PageId* id, IoStatus* status = nullptr);

  // Pins page `id` and returns its buffer, or null if the page could not be
  // read (after retries) or no frame could be freed. On success the page
  // stays resident until the matching Unpin (pins nest). Safe to call
  // concurrently with other TryPin/Unpin calls.
  char* TryPin(PageId id, IoStatus* status = nullptr);

  // Aborting wrappers over TryNewPage/TryPin for callers with no recovery
  // path (tree construction, tests).
  char* NewPage(PageId* id);
  char* Pin(PageId id);

  // Releases one pin of `id`. If `dirty`, the page is written back before
  // eviction (or at FlushAll).
  void Unpin(PageId id, bool dirty);

  // Writes all dirty resident pages back to the file and syncs it. Returns
  // false if any page could not be written (it stays dirty) or the sync
  // failed. Not safe against concurrent writers of pinned pages.
  bool FlushAll();

  // Drops every unpinned page (writing dirty ones back). Pages whose
  // write-back fails stay resident and dirty. Makes cold-cache experiments
  // reproducible.
  void Invalidate();

  // Snapshot of the I/O counters. (By value: counters are atomics that
  // concurrent pins keep moving.)
  IoStats stats() const;
  void ResetStats();

  // Attaches (or detaches, with null) an observability sink (DESIGN.md
  // §12): physical read/write latency — whole-operation, retries included —
  // and FlushAll sync latency are recorded into it. The pointer is atomic
  // so attach/detach between runs is safe, but the Metrics object must
  // outlive any concurrent pin once attached.
  void SetMetrics(obs::Metrics* metrics) {
    metrics_.store(metrics, std::memory_order_release);
  }
  obs::Metrics* metrics() const {
    return metrics_.load(std::memory_order_acquire);
  }

 private:
  static constexpr uint32_t kNoFrame = ~0u;
  static constexpr size_t kNumShards = 16;  // power of two

  struct Frame {
    std::unique_ptr<char[]> data;
    // Stable while the frame is published in a shard table; changed only by
    // the exclusive owner of an unpublished frame.
    PageId page_id = kInvalidPageId;
    // Guarded by the owning shard's mutex.
    uint32_t pin_count = 0;
    bool dirty = false;
    // True while an evictor writes the frame back; pinners wait on the
    // shard cv. Guarded by the owning shard's mutex.
    bool busy = false;
    // Guarded by lru_mu_.
    std::list<uint32_t>::iterator lru_pos;
    bool in_lru = false;
  };

  // One page-table shard. A table value of kNoFrame marks a load in
  // progress (no frame published yet); waiters block on cv.
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<PageId, uint32_t> table;
  };

  // Same fields as IoStats, as relaxed atomics.
  struct AtomicIoStats {
    std::atomic<uint64_t> logical_reads{0};
    std::atomic<uint64_t> buffer_hits{0};
    std::atomic<uint64_t> buffer_misses{0};
    std::atomic<uint64_t> physical_reads{0};
    std::atomic<uint64_t> physical_writes{0};
    std::atomic<uint64_t> read_retries{0};
    std::atomic<uint64_t> write_retries{0};
    std::atomic<uint64_t> checksum_failures{0};
    std::atomic<uint64_t> read_failures{0};
    std::atomic<uint64_t> write_failures{0};
  };

  Shard& ShardOf(PageId id) { return shards_[id & (kNumShards - 1)]; }

  // Read/write one page with bounded retries per retry_; update counters.
  // The physical operation itself runs under file_mu_.
  IoStatus ReadWithRetry(PageId id, char* buffer);
  IoStatus WriteWithRetry(PageId id, const char* buffer);

  // Returns an unpublished frame to load into, evicting the LRU unpinned
  // page if needed; kNoFrame (with *status set) if every eviction candidate
  // failed to write back. Aborts if every frame is pinned — that is a
  // capacity bug, not I/O. Must be called without any shard lock held.
  uint32_t GrabFrame(IoStatus* status);

  enum class EvictResult {
    kEvicted,      // frame unpublished; it belongs to the caller now
    kSkipped,      // a racing pinner took the frame; it is theirs
    kWriteFailed,  // dirty write-back failed; re-queued dirty at LRU tail
  };

  // Evicts `victim`, which the caller popped from the LRU list while it held
  // `expected_page` (the page id must be read under lru_mu_ at pop time).
  // The pop is a claim, not ownership: EvictVictim re-verifies under the
  // shard lock that the frame still holds `expected_page` unpinned and
  // returns kSkipped if a racing pinner — or a full revive/re-evict cycle
  // that gave the frame a new owner — got there first. On kEvicted the frame
  // is unpublished and handed back (to_free_list pushes it onto the free
  // stack instead).
  EvictResult EvictVictim(uint32_t victim, PageId expected_page,
                          bool to_free_list);

  std::unique_ptr<PageFile> file_;
  const uint32_t capacity_;
  const uint32_t page_size_;
  const RetryPolicy retry_;
  std::vector<Frame> frames_;

  mutable std::mutex file_mu_;  // serializes every PageFile operation
  std::mutex lru_mu_;           // guards lru_, free_frames_, in_lru/lru_pos
  std::vector<uint32_t> free_frames_;
  std::list<uint32_t> lru_;  // front = least recently used
  // Frames between GrabFrame and publish/free; lets GrabFrame distinguish
  // "all pinned" (abort) from "all in flight" (wait).
  std::atomic<uint32_t> in_flight_frames_{0};

  std::array<Shard, kNumShards> shards_;
  mutable AtomicIoStats stats_;
  std::atomic<obs::Metrics*> metrics_{nullptr};
};

}  // namespace sdj::storage

#endif  // SDJOIN_STORAGE_BUFFER_POOL_H_
