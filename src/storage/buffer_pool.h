// LRU buffer pool over a PageFile.
//
// Reproduces the paper's experimental setup of a fixed buffer over fixed-size
// R-tree nodes (Section 3.1: 1K nodes, 256K of buffer memory). The pool's
// miss counter is the "Node I/O" performance measure of Table 1.
//
// The pool is also the retry layer of the failure model (DESIGN.md §9):
// transient and checksum-corrupt page reads are re-issued with bounded
// backoff, and only an unrecoverable fault surfaces to the caller — through
// TryPin/TryNewPage, which report status instead of aborting.
#ifndef SDJOIN_STORAGE_BUFFER_POOL_H_
#define SDJOIN_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/page_file.h"

namespace sdj::storage {

// Bounded-retry policy for transient (and corrupt, since a re-read can heal a
// fault that happened in transfer) page-file operations.
struct RetryPolicy {
  // Total attempts per operation, including the first (>= 1).
  uint32_t max_attempts = 4;
  // Sleep before retry k (1-based) is backoff_us << (k - 1) microseconds;
  // 0 disables sleeping (retries are still attempted).
  uint32_t backoff_us = 50;
};

// Fixed-capacity page cache with LRU replacement and pin counting.
//
// Usage:
//   BufferPool pool(std::move(file), /*capacity_pages=*/128);
//   char* data = pool.Pin(id);        // fetch and pin
//   ... read/modify *data ...
//   pool.Unpin(id, /*dirty=*/true);   // release; written back on eviction
//
// Pinned pages are never evicted; pinning more pages than the capacity is a
// programming error and aborts. I/O faults are not: TryPin and TryNewPage
// return null with a status after retries run out, and the aborting Pin /
// NewPage wrappers exist only for callers that have no recovery path.
class BufferPool {
 public:
  // Takes ownership of `file`. `capacity_pages` > 0.
  BufferPool(std::unique_ptr<PageFile> file, uint32_t capacity_pages,
             const RetryPolicy& retry = RetryPolicy{});
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  uint32_t page_size() const { return file_->page_size(); }
  uint32_t capacity() const { return capacity_; }
  PageId num_pages() const { return file_->num_pages(); }
  const RetryPolicy& retry_policy() const { return retry_; }

  // Allocates a fresh zeroed page, pins it, and returns its buffer; null if
  // the store could not be extended or no frame could be freed (status, when
  // non-null, receives the failing IoStatus).
  char* TryNewPage(PageId* id, IoStatus* status = nullptr);

  // Pins page `id` and returns its buffer, or null if the page could not be
  // read (after retries) or no frame could be freed. On success the page
  // stays resident until the matching Unpin (pins nest).
  char* TryPin(PageId id, IoStatus* status = nullptr);

  // Aborting wrappers over TryNewPage/TryPin for callers with no recovery
  // path (tree construction, tests).
  char* NewPage(PageId* id);
  char* Pin(PageId id);

  // Releases one pin of `id`. If `dirty`, the page is written back before
  // eviction (or at FlushAll).
  void Unpin(PageId id, bool dirty);

  // Writes all dirty resident pages back to the file and syncs it. Returns
  // false if any page could not be written (it stays dirty) or the sync
  // failed.
  bool FlushAll();

  // Drops every unpinned page (writing dirty ones back). Pages whose
  // write-back fails stay resident and dirty. Makes cold-cache experiments
  // reproducible.
  void Invalidate();

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = IoStats{}; }

 private:
  static constexpr uint32_t kNoFrame = ~0u;

  struct Frame {
    std::unique_ptr<char[]> data;
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;
    bool dirty = false;
    // Position in lru_ when the frame is resident and unpinned.
    std::list<uint32_t>::iterator lru_pos;
    bool in_lru = false;
  };

  // Read/write one page with bounded retries per retry_; update counters.
  IoStatus ReadWithRetry(PageId id, char* buffer);
  IoStatus WriteWithRetry(PageId id, const char* buffer);

  // Returns a frame to load into, evicting an LRU unpinned page if needed;
  // kNoFrame (with *status set) if every eviction candidate failed to write
  // back. Aborts if every frame is pinned — that is a capacity bug, not I/O.
  uint32_t GrabFrame(IoStatus* status);

  // Writes the frame back if dirty and frees it. On write failure the frame
  // stays resident and dirty, re-queued at the LRU tail; returns false.
  bool EvictFrame(uint32_t frame_index);

  std::unique_ptr<PageFile> file_;
  const uint32_t capacity_;
  const RetryPolicy retry_;
  std::vector<Frame> frames_;
  std::vector<uint32_t> free_frames_;
  std::unordered_map<PageId, uint32_t> page_table_;
  std::list<uint32_t> lru_;  // front = least recently used
  IoStats stats_;
};

}  // namespace sdj::storage

#endif  // SDJOIN_STORAGE_BUFFER_POOL_H_
