#include "storage/fault_injection.h"

#include <cstring>
#include <memory>
#include <utility>

#include "util/check.h"

namespace sdj::storage {

FaultInjectingPageFile::FaultInjectingPageFile(
    std::unique_ptr<PageFile> inner, const FaultInjectionOptions& options)
    : PageFile(inner->page_size()),
      inner_(std::move(inner)),
      options_(options),
      rng_(options.seed),
      scratch_(page_size_, '\0') {
  SDJ_CHECK(inner_ != nullptr);
  SDJ_CHECK(options.transient_read_rate >= 0.0 &&
            options.transient_read_rate < 1.0);
  SDJ_CHECK(options.transient_write_rate >= 0.0 &&
            options.transient_write_rate < 1.0);
  SDJ_CHECK(options.bit_flip_read_rate >= 0.0 &&
            options.bit_flip_read_rate <= 1.0);
}

IoStatus FaultInjectingPageFile::Read(PageId id, char* buffer) {
  const uint64_t op = counters_.reads++;
  if (op >= options_.hard_read_after) {
    ++counters_.hard_read_faults;
    return IoStatus::kFailed;
  }
  if (options_.transient_read_period != 0 &&
      (op + 1) % options_.transient_read_period == 0) {
    ++counters_.transient_read_faults;
    return IoStatus::kTransient;
  }
  if (options_.transient_read_rate > 0.0 &&
      rng_.NextDouble() < options_.transient_read_rate) {
    ++counters_.transient_read_faults;
    return IoStatus::kTransient;
  }
  const IoStatus status = inner_->Read(id, buffer);
  if (status == IoStatus::kOk && options_.bit_flip_read_rate > 0.0 &&
      rng_.NextDouble() < options_.bit_flip_read_rate) {
    // Flip one random bit anywhere in the physical page (payload or
    // checksum trailer — both are real corruption).
    const uint64_t bit = rng_.NextBounded(8ULL * page_size_);
    buffer[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    ++counters_.bit_flips;
  }
  return status;
}

IoStatus FaultInjectingPageFile::Write(PageId id, const char* buffer) {
  const uint64_t op = counters_.writes++;
  if (op >= options_.hard_write_after) {
    ++counters_.hard_write_faults;
    return IoStatus::kFailed;
  }
  if (op == options_.torn_write_at) {
    // Persist only the first half of the page; the tail keeps whatever the
    // page held before (zeros for a fresh page). The caller sees a failure,
    // and the on-disk image no longer matches its checksum.
    ++counters_.torn_writes;
    if (inner_->Read(id, scratch_.data()) != IoStatus::kOk) {
      std::memset(scratch_.data(), 0, page_size_);
    }
    std::memcpy(scratch_.data(), buffer, page_size_ / 2);
    (void)inner_->Write(id, scratch_.data());
    return IoStatus::kFailed;
  }
  if (options_.transient_write_period != 0 &&
      (op + 1) % options_.transient_write_period == 0) {
    ++counters_.transient_write_faults;
    return IoStatus::kTransient;
  }
  if (options_.transient_write_rate > 0.0 &&
      rng_.NextDouble() < options_.transient_write_rate) {
    ++counters_.transient_write_faults;
    return IoStatus::kTransient;
  }
  return inner_->Write(id, buffer);
}

std::unique_ptr<FaultInjectingPageFile> NewFaultInjectingPageFile(
    std::unique_ptr<PageFile> inner, const FaultInjectionOptions& options) {
  return std::make_unique<FaultInjectingPageFile>(std::move(inner), options);
}

}  // namespace sdj::storage
