#include "storage/fault_injection.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/check.h"

namespace sdj::storage {

namespace {

void AppendOps(std::string* out, const char* label,
               const std::vector<uint64_t>& ops) {
  out->append(" ");
  out->append(label);
  out->append("=[");
  for (size_t i = 0; i < ops.size(); ++i) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), i == 0 ? "%llu" : ",%llu",
                  static_cast<unsigned long long>(ops[i]));
    out->append(buf);
  }
  out->append("]");
}

}  // namespace

std::string FaultSchedule::ToString(uint64_t seed) const {
  std::string out = "seed=" + std::to_string(seed);
  AppendOps(&out, "transient_reads", transient_read_ops);
  AppendOps(&out, "transient_writes", transient_write_ops);
  AppendOps(&out, "bit_flips", bit_flip_ops);
  AppendOps(&out, "torn_writes", torn_write_ops);
  if (dropped > 0) out += " dropped=" + std::to_string(dropped);
  return out;
}

const char* CrashTearModeName(CrashTearMode mode) {
  switch (mode) {
    case CrashTearMode::kPartialPage: return "partial-page";
    case CrashTearMode::kGarbageTail: return "garbage-tail";
    case CrashTearMode::kDroppedOp:   return "dropped-op";
  }
  return "unknown";
}

FaultInjectingPageFile::FaultInjectingPageFile(
    std::unique_ptr<PageFile> inner, const FaultInjectionOptions& options)
    : PageFile(inner->page_size()),
      inner_(std::move(inner)),
      options_(options),
      rng_(options.seed),
      scratch_(page_size_, '\0') {
  SDJ_CHECK(inner_ != nullptr);
  SDJ_CHECK(options.transient_read_rate >= 0.0 &&
            options.transient_read_rate < 1.0);
  SDJ_CHECK(options.transient_write_rate >= 0.0 &&
            options.transient_write_rate < 1.0);
  SDJ_CHECK(options.bit_flip_read_rate >= 0.0 &&
            options.bit_flip_read_rate <= 1.0);
}

IoStatus FaultInjectingPageFile::Read(PageId id, char* buffer) {
  const uint64_t op = counters_.reads++;
  if (op >= options_.hard_read_after) {
    ++counters_.hard_read_faults;
    return IoStatus::kFailed;
  }
  if (options_.transient_read_period != 0 &&
      (op + 1) % options_.transient_read_period == 0) {
    ++counters_.transient_read_faults;
    Record(&schedule_.transient_read_ops, op);
    return IoStatus::kTransient;
  }
  if (options_.transient_read_rate > 0.0 &&
      rng_.NextDouble() < options_.transient_read_rate) {
    ++counters_.transient_read_faults;
    Record(&schedule_.transient_read_ops, op);
    return IoStatus::kTransient;
  }
  const IoStatus status = inner_->Read(id, buffer);
  if (status == IoStatus::kOk && options_.bit_flip_read_rate > 0.0 &&
      rng_.NextDouble() < options_.bit_flip_read_rate) {
    // Flip one random bit anywhere in the physical page (payload or
    // checksum trailer — both are real corruption).
    const uint64_t bit = rng_.NextBounded(8ULL * page_size_);
    buffer[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    ++counters_.bit_flips;
    Record(&schedule_.bit_flip_ops, op);
  }
  return status;
}

IoStatus FaultInjectingPageFile::Write(PageId id, const char* buffer) {
  const uint64_t op = counters_.writes++;
  if (op >= options_.hard_write_after) {
    ++counters_.hard_write_faults;
    return IoStatus::kFailed;
  }
  if (op == options_.torn_write_at) {
    // Persist only the first half of the page; the tail keeps whatever the
    // page held before (zeros for a fresh page). The caller sees a failure,
    // and the on-disk image no longer matches its checksum.
    ++counters_.torn_writes;
    Record(&schedule_.torn_write_ops, op);
    if (inner_->Read(id, scratch_.data()) != IoStatus::kOk) {
      std::memset(scratch_.data(), 0, page_size_);
    }
    std::memcpy(scratch_.data(), buffer, page_size_ / 2);
    (void)inner_->Write(id, scratch_.data());
    return IoStatus::kFailed;
  }
  if (options_.transient_write_period != 0 &&
      (op + 1) % options_.transient_write_period == 0) {
    ++counters_.transient_write_faults;
    Record(&schedule_.transient_write_ops, op);
    return IoStatus::kTransient;
  }
  if (options_.transient_write_rate > 0.0 &&
      rng_.NextDouble() < options_.transient_write_rate) {
    ++counters_.transient_write_faults;
    Record(&schedule_.transient_write_ops, op);
    return IoStatus::kTransient;
  }
  return inner_->Write(id, buffer);
}

std::unique_ptr<FaultInjectingPageFile> NewFaultInjectingPageFile(
    std::unique_ptr<PageFile> inner, const FaultInjectionOptions& options) {
  return std::make_unique<FaultInjectingPageFile>(std::move(inner), options);
}

CrashPointPageFile::CrashPointPageFile(std::unique_ptr<PageFile> inner,
                                       const CrashPointOptions& options)
    : PageFile(inner->page_size()),
      inner_(std::move(inner)),
      options_(options),
      rng_(options.seed),
      scratch_(page_size_, '\0') {
  SDJ_CHECK(inner_ != nullptr);
}

IoStatus CrashPointPageFile::Write(PageId id, const char* buffer) {
  if (crashed_) return IoStatus::kFailed;
  const uint64_t op = mutation_ops_++;
  if (op != options_.crash_at) return inner_->Write(id, buffer);
  crashed_ = true;
  switch (options_.tear) {
    case CrashTearMode::kPartialPage:
      if (inner_->Read(id, scratch_.data()) != IoStatus::kOk) {
        std::memset(scratch_.data(), 0, page_size_);
      }
      std::memcpy(scratch_.data(), buffer, page_size_ / 2);
      (void)inner_->Write(id, scratch_.data());
      break;
    case CrashTearMode::kGarbageTail:
      std::memcpy(scratch_.data(), buffer, page_size_ / 2);
      for (uint32_t i = page_size_ / 2; i < page_size_; ++i) {
        scratch_[i] = static_cast<char>(rng_.NextBounded(256));
      }
      (void)inner_->Write(id, scratch_.data());
      break;
    case CrashTearMode::kDroppedOp:
      break;  // the write never reaches the media
  }
  return IoStatus::kFailed;
}

IoStatus CrashPointPageFile::Sync() {
  if (crashed_) return IoStatus::kFailed;
  const uint64_t op = mutation_ops_++;
  if (op != options_.crash_at) return inner_->Sync();
  // A crashing sync is always a dropped op: the flush simply never happened.
  // (This simulated disk persists unsynced writes, so earlier writes of the
  // same commit survive — the weakest outcome the commit protocol must
  // still recover from is modeled by tearing those writes directly.)
  crashed_ = true;
  return IoStatus::kFailed;
}

std::unique_ptr<CrashPointPageFile> NewCrashPointPageFile(
    std::unique_ptr<PageFile> inner, const CrashPointOptions& options) {
  return std::make_unique<CrashPointPageFile>(std::move(inner), options);
}

}  // namespace sdj::storage
