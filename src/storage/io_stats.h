// Counters for measuring I/O behaviour, mirroring the performance measures of
// the paper's Table 1 (node I/O = buffer misses that reach the page file).
#ifndef SDJOIN_STORAGE_IO_STATS_H_
#define SDJOIN_STORAGE_IO_STATS_H_

#include <cstdint>

namespace sdj::storage {

// Cumulative I/O counters. Plain data; reset by assigning {}.
struct IoStats {
  uint64_t logical_reads = 0;    // page accesses through the buffer pool
  uint64_t buffer_hits = 0;      // accesses served from the pool
  uint64_t buffer_misses = 0;    // accesses that read the page file
  uint64_t physical_reads = 0;   // page-file reads
  uint64_t physical_writes = 0;  // page-file writes (evictions + flushes)

  // Failure-handling counters (see DESIGN.md "Failure model").
  uint64_t read_retries = 0;        // re-issued reads after transient/corrupt
  uint64_t write_retries = 0;       // re-issued writes after transient faults
  uint64_t checksum_failures = 0;   // reads that came back IoStatus::kCorrupt
  uint64_t read_failures = 0;       // reads abandoned after retries ran out
  uint64_t write_failures = 0;      // writes abandoned after retries ran out

  IoStats operator-(const IoStats& other) const {
    return IoStats{logical_reads - other.logical_reads,
                   buffer_hits - other.buffer_hits,
                   buffer_misses - other.buffer_misses,
                   physical_reads - other.physical_reads,
                   physical_writes - other.physical_writes,
                   read_retries - other.read_retries,
                   write_retries - other.write_retries,
                   checksum_failures - other.checksum_failures,
                   read_failures - other.read_failures,
                   write_failures - other.write_failures};
  }
};

}  // namespace sdj::storage

#endif  // SDJOIN_STORAGE_IO_STATS_H_
