// Counters for measuring I/O behaviour, mirroring the performance measures of
// the paper's Table 1 (node I/O = buffer misses that reach the page file).
#ifndef SDJOIN_STORAGE_IO_STATS_H_
#define SDJOIN_STORAGE_IO_STATS_H_

#include <cstdint>

namespace sdj::storage {

// Cumulative I/O counters. Plain data; reset by assigning {}.
struct IoStats {
  uint64_t logical_reads = 0;    // page accesses through the buffer pool
  uint64_t buffer_hits = 0;      // accesses served from the pool
  uint64_t buffer_misses = 0;    // accesses that read the page file
  uint64_t physical_reads = 0;   // page-file reads
  uint64_t physical_writes = 0;  // page-file writes (evictions + flushes)

  IoStats operator-(const IoStats& other) const {
    return IoStats{logical_reads - other.logical_reads,
                   buffer_hits - other.buffer_hits,
                   buffer_misses - other.buffer_misses,
                   physical_reads - other.physical_reads,
                   physical_writes - other.physical_writes};
  }
};

}  // namespace sdj::storage

#endif  // SDJOIN_STORAGE_IO_STATS_H_
