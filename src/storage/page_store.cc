#include "storage/page_store.h"

#include <memory>
#include <utility>

#include "storage/checksum.h"
#include "util/check.h"

namespace sdj::storage {

namespace {

std::unique_ptr<PageFile> Finish(std::unique_ptr<PageFile> backend,
                                 const PageStoreOptions& options,
                                 FaultInjectingPageFile** injector,
                                 CrashPointPageFile** crash) {
  if (backend == nullptr) return nullptr;
  if (options.crash_point.has_value()) {
    auto crashing =
        NewCrashPointPageFile(std::move(backend), *options.crash_point);
    if (crash != nullptr) *crash = crashing.get();
    backend = std::move(crashing);
  } else if (crash != nullptr) {
    *crash = nullptr;
  }
  if (options.fault_injection.has_value()) {
    auto injecting = NewFaultInjectingPageFile(std::move(backend),
                                               *options.fault_injection);
    if (injector != nullptr) *injector = injecting.get();
    backend = std::move(injecting);
  } else if (injector != nullptr) {
    *injector = nullptr;
  }
  return NewChecksummingPageFile(std::move(backend));
}

}  // namespace

std::unique_ptr<PageFile> CreatePageStore(const PageStoreOptions& options,
                                          FaultInjectingPageFile** injector,
                                          CrashPointPageFile** crash) {
  SDJ_CHECK(options.page_size > 0);
  const uint32_t physical = options.page_size + kPageTrailerSize;
  std::unique_ptr<PageFile> backend =
      options.path.empty() ? NewMemoryPageFile(physical)
                           : NewFilePageFile(options.path, physical);
  return Finish(std::move(backend), options, injector, crash);
}

std::unique_ptr<PageFile> OpenPageStore(const PageStoreOptions& options,
                                        bool recover_truncated_tail,
                                        FaultInjectingPageFile** injector,
                                        CrashPointPageFile** crash) {
  SDJ_CHECK(options.page_size > 0);
  SDJ_CHECK(!options.path.empty());
  std::unique_ptr<PageFile> backend =
      OpenFilePageFile(options.path, options.page_size + kPageTrailerSize,
                       recover_truncated_tail);
  return Finish(std::move(backend), options, injector, crash);
}

}  // namespace sdj::storage
