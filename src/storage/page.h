// Basic page types shared by the storage layer.
#ifndef SDJOIN_STORAGE_PAGE_H_
#define SDJOIN_STORAGE_PAGE_H_

#include <cstdint>

namespace sdj::storage {

// Identifies a page within one PageFile. Dense, starting at 0.
using PageId = uint32_t;

// Sentinel for "no page" (e.g., an R-tree with no root yet, or the end of a
// linked page list in the hybrid queue's disk tier).
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

// Default page size. The paper used 1K nodes with float coordinates for a
// max fan-out of 50; with double coordinates 2K pages give the same fan-out
// (see DESIGN.md §2, substitutions).
inline constexpr uint32_t kDefaultPageSize = 2048;

}  // namespace sdj::storage

#endif  // SDJOIN_STORAGE_PAGE_H_
