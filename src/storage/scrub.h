// Offline integrity scrub and repair for page-store files (DESIGN.md §16).
//
// A scrub inspects a file written through the page_store.h stack without
// mutating it: every physical page's FNV-1a trailer is verified (the same
// rule ChecksummingPageFile applies on reads — a zero trailer is valid only
// for an all-zero payload), and a torn final partial page (a crash
// mid-append) is detected from the file size. Findings are reported and
// quarantined, never aborted on: a scrub of a corrupt file returns a report,
// not a crash.
//
// Repair handles the two mechanical classes:
//   * a torn tail — the trailing partial page is truncated away (the same
//     recovery OpenFilePageFile performs with recover_truncated_tail);
//   * orphaned tail pages — whole pages beyond what the file's committed
//     contents need (e.g., payload pages of an abandoned snapshot commit
//     that was larger than every committed one), truncated on request.
// Corrupt *interior* pages are not repairable here: what they should
// contain is gone. They are reported for the owning layer to route around —
// the snapshot store falls back to an older slot (SnapshotStore::
// ClassifySlots), the hybrid queue abandons the chain.
//
// The free-list audit is arithmetic over the hybrid queue's spill
// accounting: every allocated page must be live, free, or abandoned
// (CLAUDE.md invariant); a violation means pages leaked silently.
#ifndef SDJOIN_STORAGE_SCRUB_H_
#define SDJOIN_STORAGE_SCRUB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/page.h"

namespace sdj::storage {

// Findings of one read-only page scrub.
struct PageScrubReport {
  // False when the file could not be opened at all; every other field is
  // meaningless then.
  bool opened = false;
  // Whole physical pages present in the file.
  uint64_t pages_scanned = 0;
  // Pages whose checksum trailer failed verification.
  std::vector<PageId> corrupt_pages;
  // Bytes of a trailing partial page (0 = none): a torn final append.
  uint64_t torn_tail_bytes = 0;

  bool clean() const {
    return opened && corrupt_pages.empty() && torn_tail_bytes == 0;
  }
};

// Verifies every page trailer in `path` (logical `page_size`, physical
// page_size + kPageTrailerSize). Read-only; never aborts.
PageScrubReport ScrubPages(const std::string& path, uint32_t page_size);

// Truncates `path` to exactly `keep_pages` whole physical pages, removing a
// torn tail and any orphaned whole pages beyond. Refuses (returns false) to
// grow the file. `removed_bytes`, when non-null, receives the bytes cut.
bool TruncateToPages(const std::string& path, uint32_t page_size,
                     uint64_t keep_pages, uint64_t* removed_bytes = nullptr);

// The hybrid queue's spill-page accounting invariant (CLAUDE.md): every
// allocated page is in exactly one of the three states.
inline bool SpillAccountingConsistent(uint64_t allocated, uint64_t live,
                                      uint64_t free_pages,
                                      uint64_t abandoned) {
  return allocated == live + free_pages + abandoned;
}

}  // namespace sdj::storage

#endif  // SDJOIN_STORAGE_SCRUB_H_
