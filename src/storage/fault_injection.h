// Deterministic fault injection for the storage layer.
//
// FaultInjectingPageFile decorates any PageFile and injects failures from a
// seeded schedule: transient read/write faults (probabilistic or strictly
// periodic), hard read/write faults after a set number of operations, a torn
// write at a chosen write index, and silent bit-flip corruption of read
// pages. Every injected fault is counted, so tests and the CLI can assert on
// exactly what happened. The same seed and operation sequence reproduce the
// same faults on every run.
//
// Layering matters: the injector sits between the raw backend and the
// checksumming layer (see page_store.h), so injected bit flips and torn
// writes are caught by checksum verification exactly like real media faults.
#ifndef SDJOIN_STORAGE_FAULT_INJECTION_H_
#define SDJOIN_STORAGE_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/page_file.h"
#include "util/rng.h"

namespace sdj::storage {

// Fault schedule for one FaultInjectingPageFile. Defaults inject nothing.
struct FaultInjectionOptions {
  // "Never" for the operation-index schedules below.
  static constexpr uint64_t kNever = ~0ULL;

  // Seed for the probabilistic faults (bit-flip placement included).
  uint64_t seed = 1;

  // Probability that a read/write attempt fails with IoStatus::kTransient.
  // A retry of the same operation re-rolls, so bounded retries recover.
  double transient_read_rate = 0.0;
  double transient_write_rate = 0.0;

  // Strictly periodic transient faults: every Nth read/write attempt fails
  // (0 = off). Deterministic regardless of the seed; useful for proving that
  // retries make faults invisible.
  uint32_t transient_read_period = 0;
  uint32_t transient_write_period = 0;

  // Probability that a successful read returns the page with one random bit
  // flipped (silent corruption — the read still reports IoStatus::kOk).
  double bit_flip_read_rate = 0.0;

  // After this many read (write) attempts, every further read (write) fails
  // with IoStatus::kFailed — a dead-disk schedule.
  uint64_t hard_read_after = kNever;
  uint64_t hard_write_after = kNever;

  // This write attempt (0-based) persists only the first half of the page
  // (the tail keeps its previous bytes) and reports IoStatus::kFailed — a
  // torn page, detectable later by checksum verification.
  uint64_t torn_write_at = kNever;
};

// Counters of injected faults (and total traffic seen by the injector).
struct FaultCounters {
  uint64_t reads = 0;   // read attempts observed
  uint64_t writes = 0;  // write attempts observed
  uint64_t transient_read_faults = 0;
  uint64_t transient_write_faults = 0;
  uint64_t hard_read_faults = 0;
  uint64_t hard_write_faults = 0;
  uint64_t bit_flips = 0;
  uint64_t torn_writes = 0;
};

// Decorator injecting the faults described by FaultInjectionOptions.
class FaultInjectingPageFile final : public PageFile {
 public:
  FaultInjectingPageFile(std::unique_ptr<PageFile> inner,
                         const FaultInjectionOptions& options);

  PageId num_pages() const override { return inner_->num_pages(); }
  PageId Allocate() override { return inner_->Allocate(); }
  IoStatus Read(PageId id, char* buffer) override;
  IoStatus Write(PageId id, const char* buffer) override;
  IoStatus Sync() override { return inner_->Sync(); }

  const FaultCounters& counters() const { return counters_; }

 private:
  std::unique_ptr<PageFile> inner_;
  const FaultInjectionOptions options_;
  FaultCounters counters_;
  Rng rng_;
  std::vector<char> scratch_;  // previous page image for torn writes
};

// Convenience factory mirroring the other page-store constructors.
std::unique_ptr<FaultInjectingPageFile> NewFaultInjectingPageFile(
    std::unique_ptr<PageFile> inner, const FaultInjectionOptions& options);

}  // namespace sdj::storage

#endif  // SDJOIN_STORAGE_FAULT_INJECTION_H_
