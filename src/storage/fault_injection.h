// Deterministic fault injection for the storage layer.
//
// FaultInjectingPageFile decorates any PageFile and injects failures from a
// seeded schedule: transient read/write faults (probabilistic or strictly
// periodic), hard read/write faults after a set number of operations, a torn
// write at a chosen write index, and silent bit-flip corruption of read
// pages. Every injected fault is counted, so tests and the CLI can assert on
// exactly what happened. The same seed and operation sequence reproduce the
// same faults on every run.
//
// Layering matters: the injector sits between the raw backend and the
// checksumming layer (see page_store.h), so injected bit flips and torn
// writes are caught by checksum verification exactly like real media faults.
#ifndef SDJOIN_STORAGE_FAULT_INJECTION_H_
#define SDJOIN_STORAGE_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/page_file.h"
#include "util/rng.h"

namespace sdj::storage {

// Fault schedule for one FaultInjectingPageFile. Defaults inject nothing.
struct FaultInjectionOptions {
  // "Never" for the operation-index schedules below.
  static constexpr uint64_t kNever = ~0ULL;

  // Seed for the probabilistic faults (bit-flip placement included).
  uint64_t seed = 1;

  // Probability that a read/write attempt fails with IoStatus::kTransient.
  // A retry of the same operation re-rolls, so bounded retries recover.
  double transient_read_rate = 0.0;
  double transient_write_rate = 0.0;

  // Strictly periodic transient faults: every Nth read/write attempt fails
  // (0 = off). Deterministic regardless of the seed; useful for proving that
  // retries make faults invisible.
  uint32_t transient_read_period = 0;
  uint32_t transient_write_period = 0;

  // Probability that a successful read returns the page with one random bit
  // flipped (silent corruption — the read still reports IoStatus::kOk).
  double bit_flip_read_rate = 0.0;

  // After this many read (write) attempts, every further read (write) fails
  // with IoStatus::kFailed — a dead-disk schedule.
  uint64_t hard_read_after = kNever;
  uint64_t hard_write_after = kNever;

  // This write attempt (0-based) persists only the first half of the page
  // (the tail keeps its previous bytes) and reports IoStatus::kFailed — a
  // torn page, detectable later by checksum verification.
  uint64_t torn_write_at = kNever;
};

// Counters of injected faults (and total traffic seen by the injector).
struct FaultCounters {
  uint64_t reads = 0;   // read attempts observed
  uint64_t writes = 0;  // write attempts observed
  uint64_t transient_read_faults = 0;
  uint64_t transient_write_faults = 0;
  uint64_t hard_read_faults = 0;
  uint64_t hard_write_faults = 0;
  uint64_t bit_flips = 0;
  uint64_t torn_writes = 0;
};

// The exact op indices at which faults fired, recorded as they happen. A
// randomized test that fails prints this schedule (ToString) so the failure
// replays deterministically: re-running the same seed over the same op
// sequence re-injects the identical faults, and the printed indices say
// which operations to scrutinize — no bisection over seeds required. Each
// class keeps the first kMaxRecorded indices; overflow is counted, not kept,
// so long fault-heavy runs (benchmarks) stay bounded.
struct FaultSchedule {
  static constexpr size_t kMaxRecorded = 64;

  std::vector<uint64_t> transient_read_ops;
  std::vector<uint64_t> transient_write_ops;
  std::vector<uint64_t> bit_flip_ops;    // read ops whose page was flipped
  std::vector<uint64_t> torn_write_ops;  // write ops torn (scheduled)
  uint64_t dropped = 0;  // faults beyond kMaxRecorded (counted only)

  // Compact single-line form, e.g.
  //   "seed=7 transient_reads=[3,19] bit_flips=[12] torn_writes=[]".
  std::string ToString(uint64_t seed) const;
};

// How a CrashPointPageFile tears the operation at the crash point. All three
// model a power loss mid-operation; they differ in what the media keeps.
enum class CrashTearMode : uint8_t {
  // The first half of the page persists; the tail keeps its previous bytes
  // (a classic torn page — caught later by the checksum trailer).
  kPartialPage = 0,
  // The first half persists; the tail is overwritten with seeded garbage
  // (a controller scribbling during power-down).
  kGarbageTail,
  // The operation never reaches the media at all (a write absorbed by a
  // volatile cache, or an fsync that returned without flushing).
  kDroppedOp,
};

const char* CrashTearModeName(CrashTearMode mode);

// Crash schedule for one CrashPointPageFile. Write() and Sync() calls share
// one 0-based mutation-op index; the op at `crash_at` is torn per `tear` and
// the file latches read-only — every later mutation fails with kFailed, as
// if the process had lost power at that instant and the surviving image were
// being inspected. Reads keep working (the post-crash media is readable);
// recovery code is expected to reopen the file and fall back to the newest
// committed state.
struct CrashPointOptions {
  static constexpr uint64_t kNever = ~0ULL;

  // 0-based index into the interleaved write+sync op sequence. Allocations
  // are not ops: extending the file only matters once something is written.
  uint64_t crash_at = kNever;
  CrashTearMode tear = CrashTearMode::kPartialPage;
  // Garbage bytes for kGarbageTail.
  uint64_t seed = 1;
};

// Decorator simulating power loss at one exact write/sync operation. With
// crash_at == kNever it is a pure pass-through op counter: a schedule
// enumerator first runs the workload uncrashed to learn the op count, then
// replays it once per index in [0, mutation_ops()) — covering 100% of the
// crash points of the workload (tests/crash_point_test.cc).
//
// Layering: sits directly above the backend, below fault injection and
// checksums (page_store.h), so torn pages fail checksum verification on the
// next read exactly like real torn media.
class CrashPointPageFile final : public PageFile {
 public:
  CrashPointPageFile(std::unique_ptr<PageFile> inner,
                     const CrashPointOptions& options);

  PageId num_pages() const override { return inner_->num_pages(); }
  // Post-crash the file cannot grow; pre-crash allocations pass through
  // (they are not mutation ops — see CrashPointOptions::crash_at).
  PageId Allocate() override {
    return crashed_ ? kInvalidPageId : inner_->Allocate();
  }
  IoStatus Read(PageId id, char* buffer) override {
    return inner_->Read(id, buffer);
  }
  IoStatus Write(PageId id, const char* buffer) override;
  IoStatus Sync() override;

  // Write+sync ops observed before the crash point (the enumerator's count).
  uint64_t mutation_ops() const { return mutation_ops_; }
  // Whether the crash point has been reached (the file is now read-only).
  bool crashed() const { return crashed_; }

 private:
  std::unique_ptr<PageFile> inner_;
  const CrashPointOptions options_;
  uint64_t mutation_ops_ = 0;
  bool crashed_ = false;
  Rng rng_;
  std::vector<char> scratch_;  // merged image for the torn write
};

std::unique_ptr<CrashPointPageFile> NewCrashPointPageFile(
    std::unique_ptr<PageFile> inner, const CrashPointOptions& options);

// Decorator injecting the faults described by FaultInjectionOptions.
class FaultInjectingPageFile final : public PageFile {
 public:
  FaultInjectingPageFile(std::unique_ptr<PageFile> inner,
                         const FaultInjectionOptions& options);

  PageId num_pages() const override { return inner_->num_pages(); }
  PageId Allocate() override { return inner_->Allocate(); }
  IoStatus Read(PageId id, char* buffer) override;
  IoStatus Write(PageId id, const char* buffer) override;
  IoStatus Sync() override { return inner_->Sync(); }

  const FaultCounters& counters() const { return counters_; }
  // Replay recipe for the faults injected so far (see FaultSchedule).
  const FaultSchedule& schedule() const { return schedule_; }
  // The schedule plus this injector's seed, ready to print on test failure.
  std::string ScheduleString() const {
    return schedule_.ToString(options_.seed);
  }

 private:
  void Record(std::vector<uint64_t>* ops, uint64_t index) {
    if (ops->size() < FaultSchedule::kMaxRecorded) {
      ops->push_back(index);
    } else {
      ++schedule_.dropped;
    }
  }

  std::unique_ptr<PageFile> inner_;
  const FaultInjectionOptions options_;
  FaultCounters counters_;
  FaultSchedule schedule_;
  Rng rng_;
  std::vector<char> scratch_;  // previous page image for torn writes
};

// Convenience factory mirroring the other page-store constructors.
std::unique_ptr<FaultInjectingPageFile> NewFaultInjectingPageFile(
    std::unique_ptr<PageFile> inner, const FaultInjectionOptions& options);

}  // namespace sdj::storage

#endif  // SDJOIN_STORAGE_FAULT_INJECTION_H_
