// Page checksumming (FNV-1a) for silent-corruption detection.
//
// Every page store assembled by page_store.h carries an 8-byte trailer with
// the FNV-1a hash of the page payload, written on every physical write and
// verified on every physical read. A mismatch surfaces as IoStatus::kCorrupt
// instead of poisoning the join's distance bounds with garbage geometry.
#ifndef SDJOIN_STORAGE_CHECKSUM_H_
#define SDJOIN_STORAGE_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace sdj::storage {

// Bytes reserved at the end of each physical page for the checksum trailer.
inline constexpr uint32_t kPageTrailerSize = 8;

// 64-bit FNV-1a over `n` bytes. Deterministic across platforms; fast enough
// that hashing a 2K page costs far less than the read it protects.
inline uint64_t Fnv1a64(const void* data, size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace sdj::storage

#endif  // SDJOIN_STORAGE_CHECKSUM_H_
