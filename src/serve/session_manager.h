// Multi-session serving layer (DESIGN.md §14).
//
// One SessionManager multiplexes many live incremental traversals — any mix
// of distance join, semi-join, within-join, and nearest/farthest neighbor,
// via the erased §13 engine surface (serve/erased_engine.h) — over trees the
// caller shares across sessions. Robustness is the contract; every failure
// mode below surfaces as an explicit status, never an abort:
//
//   * Admission control. Admit() returns kRejectedOverload once
//     max_sessions are active or the resident-memory budget cannot be
//     honored even after evicting every evictable session.
//   * Deadline time-slicing. Each Next() re-arms the session's StopSource
//     with a slice deadline; the engine suspends at its next serial safe
//     point (CLAUDE.md: tokens are polled only there) and the manager
//     reports kYield — the session stays live, a round-robin driver simply
//     moves on. Slicing never perturbs the pair stream: suspension points
//     are invisible to the total order.
//   * Checkpoint-evict-resume. When resident queue entries exceed
//     memory_budget_entries, the coldest sessions are checkpointed to their
//     shadow-paged snapshot stores (JoinCursor underneath, with bounded
//     commit retry + exponential backoff) and their engines destroyed; the
//     next Next() transparently rebuilds the engine through the session's
//     factory and restores it. A session whose checkpoint cannot commit
//     even after retries degrades to pinned-resident — it keeps serving
//     from memory and is never evicted (progress is never sacrificed to
//     the budget) until a later checkpoint commits and unpins it.
//   * Failure isolation. A kIoError (dead page file, unreadable snapshot)
//     poisons only its own session: its stream remains a valid prefix and
//     every other session keeps running.
//   * Crash recovery. Admitted sessions are recorded in an epoch-committed
//     SessionTable (serve/session_table.h); after a restart, Recover()
//     re-admits every recorded session, resuming snapshotted ones from
//     their newest valid checkpoint.
//
// Single-threaded by design, like the engines it hosts: one manager is
// driven from one thread (parallelism lives inside an engine's classify
// stage). Per-session latency/IO accounting: every session owns an
// obs::Metrics sink receiving its serve slices, checkpoints, restores, and
// snapshot commits; the manager-wide sink (ServeOptions::metrics) sees the
// same serving events across all sessions.
#ifndef SDJOIN_SERVE_SESSION_MANAGER_H_
#define SDJOIN_SERVE_SESSION_MANAGER_H_

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/join_cursor.h"
#include "core/join_result.h"
#include "core/join_stats.h"
#include "obs/metrics.h"
#include "serve/erased_engine.h"
#include "serve/session_table.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injection.h"
#include "util/check.h"
#include "util/stop_token.h"

namespace sdj::serve {

// Outcome of one serving call. kOk/kYield/kExhausted/kIoError mirror the
// engine's JoinStatus; kRejectedOverload and kNotFound are serving-level.
enum class ServeStatus : uint8_t {
  kOk = 0,           // a result was produced
  kYield,            // slice deadline hit; session live, call again
  kExhausted,        // stream complete; the session finished
  kIoError,          // session failed (isolated); its stream is a valid prefix
  kInvalidArgument,  // the query violated a documented precondition
  kRejectedOverload,  // admission refused: session or memory budget exceeded
  kNotFound,         // unknown or closed session id
};

inline const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk:               return "ok";
    case ServeStatus::kYield:            return "yield";
    case ServeStatus::kExhausted:        return "exhausted";
    case ServeStatus::kIoError:          return "io-error";
    case ServeStatus::kInvalidArgument:  return "invalid-argument";
    case ServeStatus::kRejectedOverload: return "rejected-overload";
    case ServeStatus::kNotFound:         return "not-found";
  }
  return "unknown";
}

// Session lifecycle (state machine in DESIGN.md §14):
//   kLive -> kEvicted -> kLive -> ... -> kFinished | kFailed | kClosed
enum class SessionState : uint8_t {
  kLive = 0,  // engine resident; Next() serves directly
  kEvicted,   // checkpointed to its snapshot store; engine destroyed
  kFinished,  // stream exhausted; resources released
  kFailed,    // isolated kIoError (or unrestorable snapshot)
  kClosed,    // released by the caller
};

inline const char* SessionStateName(SessionState state) {
  switch (state) {
    case SessionState::kLive:     return "live";
    case SessionState::kEvicted:  return "evicted";
    case SessionState::kFinished: return "finished";
    case SessionState::kFailed:   return "failed";
    case SessionState::kClosed:   return "closed";
  }
  return "unknown";
}

// Per-session self-healing health (DESIGN.md §16). Orthogonal to
// SessionState: a degraded session is live and serving, but had to heal
// past a bad snapshot slot on rehydration; a quarantined one exhausted
// every committed epoch and was failed in isolation (its store is left
// intact for offline scrub/repair — one corrupt store never affects its
// neighbors).
enum class SessionHealth : uint8_t {
  kHealthy = 0,
  kDegraded,     // resumed from an older committed epoch after a scrub
  kQuarantined,  // no committed epoch restored; session failed, store kept
};

inline const char* SessionHealthName(SessionHealth health) {
  switch (health) {
    case SessionHealth::kHealthy:     return "healthy";
    case SessionHealth::kDegraded:    return "degraded";
    case SessionHealth::kQuarantined: return "quarantined";
  }
  return "unknown";
}

// Construction parameters for one SessionManager.
struct ServeOptions {
  // Durable state directory: the session table and one snapshot file per
  // session live here, enabling crash recovery. Empty = in-memory snapshot
  // stores (evict/resume still works within the process; no recovery).
  std::string state_dir;
  // Admission cap on concurrently active (live + evicted) sessions.
  uint32_t max_sessions = 64;
  // Resident-memory budget: total pair-queue entries across live engines.
  // Exceeding it triggers checkpoint-evict of the coldest sessions.
  uint64_t memory_budget_entries = 1ULL << 20;
  // Per-Next() time slice; 0 disables deadline slicing. (A negative slice
  // is a deadline already in the past — every Next() yields; tests use it
  // to pin the yield path deterministically.)
  std::chrono::microseconds slice{0};
  // Checkpoint a session every N reported results (0 = only on eviction).
  uint64_t checkpoint_every = 0;
  // Bounded retry + exponential backoff for checkpoint commits (forwarded
  // to each session's JoinCursor) before a session degrades to
  // pinned-resident.
  storage::RetryPolicy commit_retry{.max_attempts = 3, .backoff_us = 50};
  // Bounded-retry policy for transient snapshot-page faults.
  storage::RetryPolicy retry;
  // Snapshot-store slots per session (>= 2): S slots survive S-1
  // consecutive torn checkpoint commits on resume.
  uint32_t snapshot_slots = 2;
  // Logical page size of the snapshot stores and the session table.
  uint32_t page_size = 4096;
  // If set, every session snapshot store and the session table inject
  // faults from this schedule (testing).
  std::optional<storage::FaultInjectionOptions> fault_injection;
  // If set, the *session table* store simulates power loss at one exact
  // write/sync op (testing — see storage::CrashPointPageFile). Per-session
  // snapshot stores are unaffected: crash-point tests for those drive a
  // JoinCursor directly.
  std::optional<storage::CrashPointOptions> table_crash_point;
  // Microsecond backoff between self-healing resume attempts after a failed
  // rehydration (attempt k sleeps backoff << (k-2); the first fallback is
  // immediate). Attempts are bounded by the number of snapshot slots. 0
  // disables the sleep.
  uint32_t heal_backoff_us = 0;
  // Manager-wide observability sink (serve slices, evictions, rehydrations
  // across all sessions). Null = disabled. Each session additionally owns a
  // private sink regardless.
  obs::Metrics* metrics = nullptr;
};

// Per-session serving counters (engine counters live in JoinStats; cursor
// counters in CursorStats — both are exposed alongside).
struct SessionCounters {
  uint64_t slices = 0;   // Next() calls that reached the engine
  uint64_t results = 0;  // results produced
  uint64_t yields = 0;   // slice-deadline suspensions
  uint64_t evictions = 0;
  uint64_t rehydrations = 0;
  // Checkpoint could not commit even after retries; the session now serves
  // pinned-resident until a later checkpoint commits.
  bool pinned_resident = false;
  // Self-healing (DESIGN.md §16): scoped scrubs run after a failed
  // rehydration, and snapshot slots healed (torn/corrupt headers zeroed)
  // by them.
  uint64_t scrubs = 0;
  uint64_t slots_healed = 0;
  // Cursor-side counters, accumulated across engine rebuilds.
  CursorStats cursor;
};

// Manager-wide counters.
struct ServeStats {
  uint64_t admitted = 0;
  uint64_t rejected_overload = 0;
  uint64_t evictions = 0;
  uint64_t rehydrations = 0;
  uint64_t pinned_sessions = 0;
  uint64_t failed_sessions = 0;
  uint64_t finished_sessions = 0;
  // Self-healing outcomes (DESIGN.md §16).
  uint64_t degraded_sessions = 0;     // healed onto an older committed epoch
  uint64_t quarantined_sessions = 0;  // no committed epoch restored
  uint64_t recovered_sessions = 0;
  // Table records skipped during recovery: no resolver match, or over the
  // admission cap.
  uint64_t recovery_skipped = 0;
  // Session-table epochs that failed to commit (previous epoch survives).
  uint64_t table_commit_failures = 0;
};

// See file comment.
template <int Dim>
class SessionManager {
 public:
  using SessionId = uint64_t;
  // Builds (or rebuilds, after eviction) a session's engine. The factory is
  // called with the session's StopToken and must construct the *identical*
  // engine configuration each time — the snapshot fingerprint enforces it
  // on restore. Returning null fails the session (isolated, not fatal).
  using EngineFactory =
      std::function<std::unique_ptr<ErasedEngine<Dim>>(util::StopToken)>;

  struct AdmitResult {
    ServeStatus status = ServeStatus::kRejectedOverload;
    SessionId id = 0;  // valid only when status == kOk
  };

  explicit SessionManager(const ServeOptions& options) : options_(options) {
    if (!options_.state_dir.empty()) {
      table_ = SessionTable::Open({options_.state_dir + "/sessions.tbl",
                                   options_.page_size,
                                   options_.fault_injection,
                                   options_.table_crash_point, options_.retry,
                                   options_.metrics, options_.snapshot_slots});
      if (table_ == nullptr) ++stats_.table_commit_failures;
    }
  }

  // Admits a new session, or rejects it with kRejectedOverload when the
  // session cap is reached or the memory budget cannot accommodate it even
  // after evicting every evictable session. `tag` is the crash-recovery key
  // (see SessionTable).
  AdmitResult Admit(const std::string& tag, EngineFactory factory) {
    SDJ_CHECK(factory != nullptr);
    if (ActiveSessions() >= options_.max_sessions) {
      ++stats_.rejected_overload;
      return {ServeStatus::kRejectedOverload, 0};
    }
    auto session = std::make_unique<Session>();
    session->id = next_id_++;
    session->tag = tag;
    session->factory = std::move(factory);
    session->metrics = std::make_unique<obs::Metrics>();
    session->engine = session->factory(session->stop.token());
    if (session->engine == nullptr) {
      --next_id_;
      ++stats_.rejected_overload;
      return {ServeStatus::kRejectedOverload, 0};
    }
    // Make room for the newcomer before accepting it; if the budget still
    // cannot fit it (everything else evicted or pinned), reject — admission
    // must not force an over-budget resident set.
    const uint64_t newcomer = session->engine->queue_size();
    const uint64_t target =
        options_.memory_budget_entries >= newcomer
            ? options_.memory_budget_entries - newcomer
            : 0;
    EvictUntil(target, /*exclude=*/nullptr);
    if (ResidentEntries() + newcomer > options_.memory_budget_entries) {
      --next_id_;
      ++stats_.rejected_overload;
      return {ServeStatus::kRejectedOverload, 0};
    }
    session->cursor = MakeCursor(session.get());
    const SessionId id = session->id;
    sessions_.emplace(id, std::move(session));
    ++stats_.admitted;
    CommitTable();
    return {ServeStatus::kOk, id};
  }

  // Produces the session's next result. Transparently rehydrates an evicted
  // session, arms the slice deadline, and — after serving — evicts colder
  // sessions if the budget is exceeded. kYield means the slice expired
  // before a result surfaced: the session is still live, call again.
  ServeStatus Next(SessionId id, JoinResult<Dim>* out) {
    SDJ_CHECK(out != nullptr);
    Session* s = FindSession(id);
    if (s == nullptr || s->state == SessionState::kClosed) {
      return ServeStatus::kNotFound;
    }
    if (s->state == SessionState::kFinished) return ServeStatus::kExhausted;
    if (s->state == SessionState::kFailed) return ServeStatus::kIoError;
    s->last_used = ++clock_;
    obs::PhaseTimer manager_timer(options_.metrics, obs::Op::kServeSlice);
    obs::PhaseTimer session_timer(s->metrics.get(), obs::Op::kServeSlice);
    if (s->state == SessionState::kEvicted && !Rehydrate(s)) {
      return ServeStatus::kIoError;
    }
    ++s->counters.slices;
    s->stop.Clear();
    if (options_.slice.count() != 0) s->stop.SetDeadlineAfter(options_.slice);
    const bool produced = s->engine->Next(out);
    s->last_stats = s->engine->stats();
    ServeStatus result;
    if (produced) {
      ++s->counters.results;
      result = ServeStatus::kOk;
      if (options_.checkpoint_every > 0 &&
          ++s->since_checkpoint >= options_.checkpoint_every) {
        s->since_checkpoint = 0;
        CheckpointSession(s);
      }
    } else {
      switch (s->engine->status()) {
        case JoinStatus::kSuspended:
          // A slice deadline, not a terminal state: clear it so the next
          // call continues from the safe point.
          s->engine->ResumeSuspended();
          ++s->counters.yields;
          result = ServeStatus::kYield;
          break;
        case JoinStatus::kExhausted:
          FinishSession(s);
          result = ServeStatus::kExhausted;
          break;
        case JoinStatus::kInvalidArgument:
          FailSession(s);
          result = ServeStatus::kInvalidArgument;
          break;
        default:
          FailSession(s);
          result = ServeStatus::kIoError;
          break;
      }
    }
    EvictUntil(options_.memory_budget_entries, /*exclude=*/s);
    return result;
  }

  // Checkpoints a live session now (and keeps it resident). A commit
  // success clears pinned-resident degradation. False when the session is
  // not live or the commit failed after retries.
  bool Checkpoint(SessionId id) {
    Session* s = FindSession(id);
    if (s == nullptr || s->state != SessionState::kLive) return false;
    return CheckpointSession(s);
  }

  // Explicitly checkpoints + evicts an idle session (the budget-pressure
  // path calls the same machinery on the coldest sessions). False when the
  // session is not live, is pinned-resident, or its checkpoint failed —
  // a session is never evicted without a committed snapshot.
  bool Evict(SessionId id) {
    Session* s = FindSession(id);
    if (s == nullptr) return false;
    return EvictSession(s);
  }

  // Releases a session in any state and drops it from the durable table.
  void Close(SessionId id) {
    Session* s = FindSession(id);
    if (s == nullptr || s->state == SessionState::kClosed) return;
    s->engine.reset();
    ReleaseCursor(s);
    s->state = SessionState::kClosed;
    CommitTable();
  }

  // Re-admits every session recorded in the durable table (a restarted
  // server calls this once, before serving). `resolver` maps each record's
  // tag back to an engine factory; returning null skips the record
  // (counted). Sessions resume lazily: the engine is rebuilt — and its
  // snapshot restored — on the first Next(). Returns the number of
  // sessions recovered.
  size_t Recover(
      const std::function<EngineFactory(const SessionRecord&)>& resolver) {
    if (table_ == nullptr) return 0;
    std::vector<SessionRecord> records;
    uint64_t next_id = next_id_;
    if (!table_->Load(&records, &next_id)) return 0;
    if (next_id > next_id_) next_id_ = next_id;
    size_t recovered = 0;
    for (const SessionRecord& record : records) {
      if (FindSession(record.id) != nullptr) continue;
      if (ActiveSessions() >= options_.max_sessions) {
        ++stats_.recovery_skipped;
        ++stats_.rejected_overload;
        continue;
      }
      EngineFactory factory = resolver(record);
      if (factory == nullptr) {
        ++stats_.recovery_skipped;
        continue;
      }
      auto session = std::make_unique<Session>();
      session->id = record.id;
      session->tag = record.tag;
      session->factory = std::move(factory);
      session->metrics = std::make_unique<obs::Metrics>();
      session->has_snapshot = record.has_snapshot;
      // Lazy: engine and cursor are built by Rehydrate() on first Next().
      session->state = SessionState::kEvicted;
      sessions_.emplace(record.id, std::move(session));
      ++recovered;
      ++stats_.recovered_sessions;
    }
    return recovered;
  }

  // ---- introspection ----

  SessionState state(SessionId id) const {
    const Session* s = FindSession(id);
    return s == nullptr ? SessionState::kClosed : s->state;
  }
  // The admission (crash-recovery) tag; empty for an unknown id.
  std::string tag(SessionId id) const {
    const Session* s = FindSession(id);
    return s == nullptr ? std::string() : s->tag;
  }
  // Zeroed counters for an unknown id.
  SessionCounters counters(SessionId id) const {
    const Session* s = FindSession(id);
    return s == nullptr ? SessionCounters{} : s->counters;
  }
  // Self-healing health (kHealthy for an unknown id — health is a property
  // of a known session's history, and an unknown id has none).
  SessionHealth health(SessionId id) const {
    const Session* s = FindSession(id);
    return s == nullptr ? SessionHealth::kHealthy : s->health;
  }
  // The session's engine counters as of its last slice (the copy survives
  // eviction and failure). Zeroed for an unknown id.
  JoinStats session_stats(SessionId id) const {
    const Session* s = FindSession(id);
    return s == nullptr ? JoinStats{} : s->last_stats;
  }
  // Per-session latency sink (serve slices + this session's checkpoint,
  // restore, and snapshot-commit phases). Null for an unknown id.
  const obs::Metrics* session_metrics(SessionId id) const {
    const Session* s = FindSession(id);
    return s == nullptr ? nullptr : s->metrics.get();
  }

  // Every known session id in admission order (any state) — drivers that
  // recover from a table use this to enumerate what came back.
  std::vector<SessionId> SessionIds() const {
    std::vector<SessionId> ids;
    ids.reserve(sessions_.size());
    for (const auto& [id, s] : sessions_) ids.push_back(id);
    return ids;
  }

  // Active = live + evicted (admission-cap denominator).
  size_t ActiveSessions() const {
    size_t n = 0;
    for (const auto& [id, s] : sessions_) {
      if (s->state == SessionState::kLive ||
          s->state == SessionState::kEvicted) {
        ++n;
      }
    }
    return n;
  }

  // Pair-queue entries across resident engines (the budget's measure).
  uint64_t ResidentEntries() const {
    uint64_t total = 0;
    for (const auto& [id, s] : sessions_) {
      if (s->engine != nullptr) total += s->engine->queue_size();
    }
    return total;
  }

  const ServeStats& stats() const { return stats_; }
  const ServeOptions& options() const { return options_; }

  // The durable session table; null when state_dir is empty or the table
  // could not be opened. Crash-point tests count its store's mutation ops;
  // the scrub tool classifies its slots.
  SessionTable* table() const { return table_.get(); }

 private:
  struct Session {
    SessionId id = 0;
    std::string tag;
    SessionState state = SessionState::kLive;
    SessionHealth health = SessionHealth::kHealthy;
    EngineFactory factory;
    util::StopSource stop;
    std::unique_ptr<obs::Metrics> metrics;
    std::unique_ptr<ErasedEngine<Dim>> engine;
    std::unique_ptr<JoinCursor<Dim, ErasedEngine<Dim>>> cursor;
    SessionCounters counters;
    JoinStats last_stats;
    bool has_snapshot = false;
    uint64_t since_checkpoint = 0;
    uint64_t last_used = 0;  // manager clock tick; coldest evicted first
  };

  Session* FindSession(SessionId id) {
    auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second.get();
  }
  const Session* FindSession(SessionId id) const {
    auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second.get();
  }

  std::string SnapshotPath(SessionId id) const {
    if (options_.state_dir.empty()) return std::string();
    return options_.state_dir + "/session_" + std::to_string(id) + ".snap";
  }

  std::unique_ptr<JoinCursor<Dim, ErasedEngine<Dim>>> MakeCursor(Session* s) {
    CursorOptions cursor_options;
    cursor_options.snapshot_path = SnapshotPath(s->id);
    cursor_options.page_size = options_.page_size;
    cursor_options.fault_injection = options_.fault_injection;
    cursor_options.retry = options_.retry;
    cursor_options.commit_retry = options_.commit_retry;
    cursor_options.snapshot_slots = options_.snapshot_slots;
    cursor_options.metrics = s->metrics.get();
    return std::make_unique<JoinCursor<Dim, ErasedEngine<Dim>>>(
        s->engine.get(), cursor_options);
  }

  // Folds the cursor's counters into the session's (the cursor outlives
  // engine rebuilds but not finish/close).
  void SyncCursorStats(Session* s) {
    if (s->cursor != nullptr) s->counters.cursor = s->cursor->cursor_stats();
  }
  void ReleaseCursor(Session* s) {
    SyncCursorStats(s);
    s->cursor.reset();
  }

  bool CheckpointSession(Session* s) {
    const bool committed = s->cursor != nullptr && s->cursor->Checkpoint();
    SyncCursorStats(s);
    if (!committed) return false;
    if (s->counters.pinned_resident) {
      s->counters.pinned_resident = false;  // progress is durable again
    }
    if (!s->has_snapshot) {
      s->has_snapshot = true;
      CommitTable();  // recovery must know a snapshot exists
    }
    return true;
  }

  bool EvictSession(Session* s) {
    if (s->state != SessionState::kLive || s->engine == nullptr) return false;
    if (s->counters.pinned_resident) return false;
    obs::PhaseTimer manager_timer(options_.metrics, obs::Op::kSessionEvict);
    obs::PhaseTimer session_timer(s->metrics.get(), obs::Op::kSessionEvict);
    if (!CheckpointSession(s)) {
      // The budget cannot claim this memory without losing progress:
      // degrade to pinned-resident instead (cleared by a later successful
      // checkpoint).
      s->counters.pinned_resident = true;
      ++stats_.pinned_sessions;
      return false;
    }
    s->last_stats = s->engine->stats();
    s->engine.reset();
    s->state = SessionState::kEvicted;
    s->since_checkpoint = 0;
    ++s->counters.evictions;
    ++stats_.evictions;
    return true;
  }

  bool Rehydrate(Session* s) {
    obs::PhaseTimer manager_timer(options_.metrics,
                                  obs::Op::kSessionRehydrate);
    obs::PhaseTimer session_timer(s->metrics.get(),
                                  obs::Op::kSessionRehydrate);
    s->engine = s->factory(s->stop.token());
    if (s->engine == nullptr) {
      QuarantineSession(s);
      return false;
    }
    if (s->cursor == nullptr) {
      s->cursor = MakeCursor(s);
    } else {
      s->cursor->set_engine(s->engine.get());
    }
    if (s->has_snapshot && !s->cursor->ResumeLatest() && !SelfHeal(s)) {
      // Restarting from scratch would re-emit results the client already
      // consumed; a session with no restorable committed epoch is therefore
      // quarantined — failed in isolation, its store left intact for
      // offline scrub/repair — rather than corrupting its stream. Its
      // neighbors never notice.
      SyncCursorStats(s);
      s->engine.reset();
      QuarantineSession(s);
      return false;
    }
    SyncCursorStats(s);
    s->state = SessionState::kLive;
    ++s->counters.rehydrations;
    ++stats_.rehydrations;
    return true;
  }

  // Self-healing fallback (DESIGN.md §16), entered when ResumeLatest could
  // not restore the newest snapshot. Runs a scrub scoped to this session's
  // snapshot slots (zeroing torn/corrupt headers so later commits stop
  // tripping over them), then walks the remaining committed epochs newest
  // first with bounded backoff — rebuilding the engine before each attempt,
  // since a restore that failed mid-payload leaves partial state behind.
  // The newest epoch is retried once post-scrub (its failure may have been
  // a healed transient fault) before falling back to older epochs. On
  // success the session serves on, marked kDegraded; false means no
  // committed epoch restored and the caller quarantines.
  bool SelfHeal(Session* s) {
    snapshot::SnapshotStore* store = s->cursor->store();
    if (store == nullptr) return false;
    uint64_t healed = 0;
    const std::vector<snapshot::SnapshotStore::SlotReport> reports =
        store->ScrubSlots(&healed);
    ++s->counters.scrubs;
    s->counters.slots_healed += healed;
    std::vector<std::pair<uint64_t, uint32_t>> candidates;  // (epoch, slot)
    for (const auto& report : reports) {
      if (report.status == snapshot::SlotStatus::kCommitted ||
          report.status == snapshot::SlotStatus::kStale) {
        candidates.emplace_back(report.epoch, report.slot);
      }
    }
    std::sort(candidates.rbegin(), candidates.rend());
    uint32_t attempt = 0;
    for (const auto& [epoch, slot] : candidates) {
      if (++attempt > 1 && options_.heal_backoff_us > 0) {
        ::usleep(options_.heal_backoff_us << (attempt - 2));
      }
      s->engine = s->factory(s->stop.token());
      if (s->engine == nullptr) return false;
      s->cursor->set_engine(s->engine.get());
      if (s->cursor->ResumeFromSlot(slot)) {
        if (s->health == SessionHealth::kHealthy) {
          s->health = SessionHealth::kDegraded;
          ++stats_.degraded_sessions;
        }
        return true;
      }
    }
    return false;
  }

  void QuarantineSession(Session* s) {
    if (s->health != SessionHealth::kQuarantined) {
      s->health = SessionHealth::kQuarantined;
      ++stats_.quarantined_sessions;
    }
    FailSession(s);
  }

  void FinishSession(Session* s) {
    s->engine.reset();
    ReleaseCursor(s);
    s->state = SessionState::kFinished;
    ++stats_.finished_sessions;
    CommitTable();
  }

  void FailSession(Session* s) {
    // Keep the cursor (and any committed snapshot): after a process
    // restart, recovery may retry the session from its last checkpoint.
    SyncCursorStats(s);
    s->state = SessionState::kFailed;
    ++stats_.failed_sessions;
  }

  // Checkpoint-evicts the coldest evictable sessions until resident queue
  // entries fit `target`. The session currently being served is excluded:
  // its slice pins it.
  void EvictUntil(uint64_t target, Session* exclude) {
    while (ResidentEntries() > target) {
      Session* victim = nullptr;
      for (const auto& [id, s] : sessions_) {
        if (s.get() == exclude || s->state != SessionState::kLive ||
            s->engine == nullptr || s->counters.pinned_resident) {
          continue;
        }
        if (victim == nullptr || s->last_used < victim->last_used) {
          victim = s.get();
        }
      }
      if (victim == nullptr) return;  // nothing evictable remains
      // A failed eviction pins the victim, so the scan never rechooses it.
      EvictSession(victim);
    }
  }

  // Persists the current session set. Failed commits degrade (counted); the
  // previous table epoch remains the recovery point.
  void CommitTable() {
    if (table_ == nullptr) return;
    std::vector<SessionRecord> records;
    records.reserve(sessions_.size());
    for (const auto& [id, s] : sessions_) {
      if (s->state == SessionState::kFinished ||
          s->state == SessionState::kClosed) {
        continue;
      }
      records.push_back({s->id, s->tag, s->has_snapshot});
    }
    if (!table_->Commit(records, next_id_)) ++stats_.table_commit_failures;
  }

  const ServeOptions options_;
  std::unique_ptr<SessionTable> table_;
  std::map<SessionId, std::unique_ptr<Session>> sessions_;
  SessionId next_id_ = 1;
  uint64_t clock_ = 0;
  ServeStats stats_;
};

}  // namespace sdj::serve

#endif  // SDJOIN_SERVE_SESSION_MANAGER_H_
