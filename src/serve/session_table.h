// Crash-recoverable session table (DESIGN.md §14).
//
// The serving layer's durable record of admitted sessions, committed
// through the same shadow-paged SnapshotStore protocol as engine snapshots:
// every table update writes the full session set as the next epoch, a torn
// or failed commit leaves the previous epoch in place, and a corrupt slot is
// skipped on load in favor of the newest surviving epoch. A restarted server
// therefore always recovers a consistent — at worst slightly stale —
// session set, never a half-written one.
//
// Records carry a caller-chosen `tag`, the recovery key: the table cannot
// serialize engine code, so SessionManager::Recover() hands each record to a
// resolver that maps the tag back to an engine factory.
#ifndef SDJOIN_SERVE_SESSION_TABLE_H_
#define SDJOIN_SERVE_SESSION_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/snapshot.h"

namespace sdj::serve {

// One admitted session, as persisted.
struct SessionRecord {
  uint64_t id = 0;
  // Caller-chosen recovery key (query kind, parameters, dataset name, ...).
  std::string tag;
  // Whether a checkpoint has committed for this session. Recovery resumes a
  // snapshotted session from its newest valid snapshot; a session without
  // one restarts from scratch (it had no committed progress to lose).
  bool has_snapshot = false;
};

// See file comment. Not thread-safe (one SessionManager owns one table).
class SessionTable {
 public:
  // Null only if the backing file can neither be opened nor created.
  static std::unique_ptr<SessionTable> Open(
      const snapshot::SnapshotStoreOptions& options) {
    auto store = snapshot::SnapshotStore::Open(options);
    if (store == nullptr) return nullptr;
    return std::unique_ptr<SessionTable>(new SessionTable(std::move(store)));
  }

  // Loads the newest valid table epoch. False — outputs untouched — when no
  // valid epoch exists: a fresh table, or every slot torn/corrupt (counted
  // in stats().invalid_slots_seen).
  bool Load(std::vector<SessionRecord>* records, uint64_t* next_id) {
    std::string payload;
    if (!store_->ReadLatest(&payload)) return false;
    snapshot::BlobReader in(payload);
    if (in.GetU64() != kMagic || in.GetU32() != kVersion) return false;
    const uint64_t next = in.GetU64();
    const uint64_t count = in.GetCount(kMinRecordBytes);
    std::vector<SessionRecord> parsed;
    parsed.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      SessionRecord r;
      r.id = in.GetU64();
      r.has_snapshot = in.GetBool();
      const uint64_t len = in.GetCount(1);
      r.tag.resize(len);
      if (len > 0 && !in.GetBytes(r.tag.data(), len)) return false;
      parsed.push_back(std::move(r));
    }
    if (!in.ok()) return false;
    *records = std::move(parsed);
    if (next_id != nullptr) *next_id = next;
    return true;
  }

  // Commits the full session set (plus the id allocator's high-water mark)
  // as the next table epoch. A failed commit is counted by the store and
  // leaves the previous epoch committed.
  bool Commit(const std::vector<SessionRecord>& records, uint64_t next_id) {
    snapshot::Blob out;
    out.PutU64(kMagic);
    out.PutU32(kVersion);
    out.PutU64(next_id);
    out.PutU64(records.size());
    for (const SessionRecord& r : records) {
      out.PutU64(r.id);
      out.PutBool(r.has_snapshot);
      out.PutU64(r.tag.size());
      out.PutBytes(r.tag.data(), r.tag.size());
    }
    return store_->WriteSnapshot(out);
  }

  const snapshot::SnapshotStoreStats& stats() const { return store_->stats(); }

  // The backing shadow-paged store (crash-point tests count its mutation
  // ops; the scrub tool classifies its slots).
  snapshot::SnapshotStore* store() const { return store_.get(); }

 private:
  static constexpr uint64_t kMagic = 0x53444A5354424C31ULL;  // "SDJSTBL1"
  static constexpr uint32_t kVersion = 1;
  // id + has_snapshot + tag length prefix: the least bytes one record can
  // occupy, for the GetCount plausibility check.
  static constexpr size_t kMinRecordBytes = 8 + 1 + 8;

  explicit SessionTable(std::unique_ptr<snapshot::SnapshotStore> store)
      : store_(std::move(store)) {}

  std::unique_ptr<snapshot::SnapshotStore> store_;
};

}  // namespace sdj::serve

#endif  // SDJOIN_SERVE_SESSION_TABLE_H_
