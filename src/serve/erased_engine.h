// Type-erased engine surface for the serving layer (DESIGN.md §14).
//
// Every §13 best-first traversal — DistanceJoin, DistanceSemiJoin,
// IncWithinJoin, IncNearestNeighbor, IncFarthestNeighbor — already exposes
// the same JoinCursor-compatible contract (Next / status / ResumeSuspended /
// SaveState / RestoreState); ErasedEngine lifts exactly that contract behind
// a virtual interface so one SessionManager can hold heterogeneous live
// traversals in one session table. The virtual dispatch sits at Next()
// granularity — once per reported result — so it is invisible next to the
// queue work a result costs.
//
// Result is always JoinResult<Dim>. Single-tree neighbor results are mapped
// into it (id1 = id2 = neighbor id, rect1 = rect2 = neighbor rect, distance
// preserved), so a serving client consumes one record shape.
#ifndef SDJOIN_SERVE_ERASED_ENGINE_H_
#define SDJOIN_SERVE_ERASED_ENGINE_H_

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

#include "core/join_result.h"
#include "core/join_stats.h"
#include "core/snapshot.h"

namespace sdj::serve {

// The uniform engine view the SessionManager multiplexes. Pure interface;
// EngineAdapter below binds a concrete engine behind it.
template <int Dim>
class ErasedEngine {
 public:
  using Result = JoinResult<Dim>;

  virtual ~ErasedEngine() = default;

  virtual bool Next(JoinResult<Dim>* out) = 0;
  virtual JoinStatus status() const = 0;
  virtual void ResumeSuspended() = 0;
  virtual bool SaveState(snapshot::Blob* out) = 0;
  virtual bool RestoreState(snapshot::BlobReader* in) = 0;
  // By value: some engines (DistanceSemiJoin) synthesize their stats.
  virtual JoinStats stats() const = 0;
  // Entries currently live in the pair queue — the session's memory-cost
  // proxy for the manager's eviction decisions.
  virtual size_t queue_size() const = 0;
};

// Binds one concrete engine (plus optional per-session context whose
// lifetime must cover the engine's — e.g. privately owned trees) behind the
// erased interface.
template <int Dim, typename Engine>
class EngineAdapter final : public ErasedEngine<Dim> {
 public:
  explicit EngineAdapter(std::unique_ptr<Engine> engine,
                         std::shared_ptr<void> context = nullptr)
      : context_(std::move(context)), engine_(std::move(engine)) {}

  bool Next(JoinResult<Dim>* out) override {
    if constexpr (std::is_same_v<typename Engine::Result, JoinResult<Dim>>) {
      return engine_->Next(out);
    } else {
      // Single-tree neighbor engine: widen the hit into the pair shape.
      typename Engine::Result hit;
      if (!engine_->Next(&hit)) return false;
      out->id1 = hit.id;
      out->id2 = hit.id;
      out->rect1 = hit.rect;
      out->rect2 = hit.rect;
      out->distance = hit.distance;
      return true;
    }
  }
  JoinStatus status() const override { return engine_->status(); }
  void ResumeSuspended() override { engine_->ResumeSuspended(); }
  bool SaveState(snapshot::Blob* out) override {
    return engine_->SaveState(out);
  }
  bool RestoreState(snapshot::BlobReader* in) override {
    return engine_->RestoreState(in);
  }
  JoinStats stats() const override {
    // The NN engines keep their historical stats() shape and expose the
    // core's full counter set as engine_stats(); prefer the full set.
    if constexpr (requires(const Engine& e) { e.engine_stats(); }) {
      return engine_->engine_stats();
    } else {
      return engine_->stats();
    }
  }
  size_t queue_size() const override { return engine_->queue_size(); }

  Engine* engine() const { return engine_.get(); }

 private:
  // Declared before the engine so it is destroyed after it: the engine may
  // reference trees (or other state) owned by the context.
  std::shared_ptr<void> context_;
  std::unique_ptr<Engine> engine_;
};

// Convenience: serve::Erase<2>(std::move(join)) or, with per-session trees,
// serve::Erase<2>(std::move(join), shared_context).
template <int Dim, typename Engine>
std::unique_ptr<ErasedEngine<Dim>> Erase(std::unique_ptr<Engine> engine,
                                         std::shared_ptr<void> context =
                                             nullptr) {
  return std::make_unique<EngineAdapter<Dim, Engine>>(std::move(engine),
                                                      std::move(context));
}

}  // namespace sdj::serve

#endif  // SDJOIN_SERVE_ERASED_ENGINE_H_
