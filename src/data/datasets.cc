#include "data/datasets.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/generators.h"
#include "util/check.h"

namespace sdj::data {

namespace {

size_t Scaled(size_t n, double scale) {
  SDJ_CHECK(scale > 0.0 && scale <= 1.0);
  return static_cast<size_t>(std::ceil(static_cast<double>(n) * scale));
}

}  // namespace

sdj::Rect<2> EvaluationExtent() {
  return sdj::Rect<2>({0.0, 0.0}, {100000.0, 100000.0});
}

std::vector<sdj::Point<2>> MakeWater(double scale) {
  ClusterOptions options;
  options.num_points = Scaled(kWaterSize, scale);
  options.extent = EvaluationExtent();
  options.num_clusters = 48;          // rivers, lakes, reservoirs
  options.spread_fraction = 0.03;
  options.background_fraction = 0.08;
  options.seed = 0x57415445;  // "WATE"
  return GenerateClustered(options);
}

std::vector<sdj::Point<2>> MakeRoads(double scale) {
  // Road centroids follow the street network: mostly line-like features with
  // a clustered urban core.
  PolylineOptions lines;
  lines.num_points = Scaled(kRoadsSize, scale) * 7 / 10;
  lines.extent = EvaluationExtent();
  lines.num_polylines = std::max(20, static_cast<int>(400 * scale));
  lines.step_fraction = 0.003;
  lines.jitter_fraction = 0.0006;
  lines.seed = 0x524f4144;  // "ROAD"
  std::vector<sdj::Point<2>> points = GeneratePolylines(lines);

  ClusterOptions core;
  core.num_points = Scaled(kRoadsSize, scale) - points.size();
  core.extent = EvaluationExtent();
  core.num_clusters = 24;
  core.spread_fraction = 0.05;
  core.background_fraction = 0.15;
  core.seed = 0x524f4145;
  std::vector<sdj::Point<2>> urban = GenerateClustered(core);
  points.insert(points.end(), urban.begin(), urban.end());
  return points;
}

}  // namespace sdj::data
