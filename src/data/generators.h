// Synthetic spatial workload generators.
//
// The paper evaluated on TIGER/Line points (Section 3.1). Those extracts are
// not redistributable here, so these generators produce datasets with the same
// statistical character: heavy clustering (Gaussian mixtures), line-like
// features (random-walk polylines, mimicking road-segment centroids), and a
// uniform background. See DESIGN.md §2 for the substitution rationale.
// All generators are deterministic in their seed.
#ifndef SDJOIN_DATA_GENERATORS_H_
#define SDJOIN_DATA_GENERATORS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geometry/point.h"
#include "geometry/rect.h"

namespace sdj::data {

// Parameters for the clustered generator.
struct ClusterOptions {
  size_t num_points = 0;
  sdj::Rect<2> extent;        // all points fall inside this box
  int num_clusters = 32;      // Gaussian mixture components
  double spread_fraction = 0.02;  // cluster stddev as a fraction of extent
  double background_fraction = 0.1;  // share of uniformly scattered points
  uint64_t seed = 1;
};

// Parameters for the polyline ("road centroid") generator.
struct PolylineOptions {
  size_t num_points = 0;
  sdj::Rect<2> extent;
  int num_polylines = 200;      // independent random walks
  double step_fraction = 0.004;  // walk step length as a fraction of extent
  double jitter_fraction = 0.0005;  // per-point perpendicular noise
  uint64_t seed = 1;
};

// `num_points` points uniformly distributed over `extent`.
std::vector<sdj::Point<2>> GenerateUniform(size_t num_points,
                                           const sdj::Rect<2>& extent,
                                           uint64_t seed);

// Gaussian-mixture clusters plus a uniform background (water-feature-like
// skew). Points are clamped to the extent.
std::vector<sdj::Point<2>> GenerateClustered(const ClusterOptions& options);

// Points sampled along random-walk polylines (road-centroid-like skew).
// Points are clamped to the extent.
std::vector<sdj::Point<2>> GeneratePolylines(const PolylineOptions& options);

// `rows` x `cols` regular grid covering `extent` (useful for tests with
// exactly predictable nearest neighbors and for tie-handling tests).
std::vector<sdj::Point<2>> GenerateGrid(int rows, int cols,
                                        const sdj::Rect<2>& extent);

}  // namespace sdj::data

#endif  // SDJOIN_DATA_GENERATORS_H_
