// The evaluation datasets.
//
// Synthetic stand-ins for the paper's TIGER/Line extracts of the Washington,
// DC area (Section 3.1): `Water` = 37,495 water-feature centroids (clustered),
// `Roads` = 200,482 road-feature centroids (line-like + clustered). The
// cardinalities, shared extent, and spatial skew match the paper; see
// DESIGN.md §2.
#ifndef SDJOIN_DATA_DATASETS_H_
#define SDJOIN_DATA_DATASETS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "geometry/point.h"
#include "geometry/rect.h"

namespace sdj::data {

// Paper cardinalities.
inline constexpr size_t kWaterSize = 37495;
inline constexpr size_t kRoadsSize = 200482;

// The common coordinate extent of both datasets (a 100km x 100km frame in
// meters, roughly the DC-area TIGER coverage).
sdj::Rect<2> EvaluationExtent();

// The Water stand-in, scaled to `ceil(kWaterSize * scale)` points.
// `scale` in (0, 1] lets tests run on smaller instances of the same shape.
std::vector<sdj::Point<2>> MakeWater(double scale = 1.0);

// The Roads stand-in, scaled to `ceil(kRoadsSize * scale)` points.
std::vector<sdj::Point<2>> MakeRoads(double scale = 1.0);

}  // namespace sdj::data

#endif  // SDJOIN_DATA_DATASETS_H_
