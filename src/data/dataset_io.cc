#include "data/dataset_io.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace sdj::data {

bool SavePointsCsv(const std::string& path,
                   const std::vector<sdj::Point<2>>& points) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = true;
  for (const auto& p : points) {
    if (std::fprintf(f, "%.17g,%.17g\n", p[0], p[1]) < 0) {
      ok = false;
      break;
    }
  }
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

bool LoadPointsCsv(const std::string& path,
                   std::vector<sdj::Point<2>>* points) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  char line[256];
  bool ok = true;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (line[0] == '\n' || line[0] == '#') continue;
    char* end = nullptr;
    const double x = std::strtod(line, &end);
    if (end == line || *end != ',') {
      ok = false;
      break;
    }
    const char* y_start = end + 1;
    const double y = std::strtod(y_start, &end);
    if (end == y_start) {
      ok = false;
      break;
    }
    points->push_back({x, y});
  }
  std::fclose(f);
  return ok;
}

}  // namespace sdj::data
