#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace sdj::data {

namespace {

// Clamps `p` into `extent` coordinate-wise.
sdj::Point<2> ClampToExtent(sdj::Point<2> p, const sdj::Rect<2>& extent) {
  for (int i = 0; i < 2; ++i) {
    p[i] = std::clamp(p[i], extent.lo[i], extent.hi[i]);
  }
  return p;
}

}  // namespace

std::vector<sdj::Point<2>> GenerateUniform(size_t num_points,
                                           const sdj::Rect<2>& extent,
                                           uint64_t seed) {
  SDJ_CHECK(extent.IsValid());
  sdj::Rng rng(seed);
  std::vector<sdj::Point<2>> points;
  points.reserve(num_points);
  for (size_t i = 0; i < num_points; ++i) {
    points.push_back({rng.Uniform(extent.lo[0], extent.hi[0]),
                      rng.Uniform(extent.lo[1], extent.hi[1])});
  }
  return points;
}

std::vector<sdj::Point<2>> GenerateClustered(const ClusterOptions& options) {
  SDJ_CHECK(options.extent.IsValid());
  SDJ_CHECK(options.num_clusters > 0);
  sdj::Rng rng(options.seed);
  const double width = options.extent.hi[0] - options.extent.lo[0];
  const double height = options.extent.hi[1] - options.extent.lo[1];
  const double spread =
      options.spread_fraction * std::max(width, height);

  // Cluster centers and relative weights.
  std::vector<sdj::Point<2>> centers;
  std::vector<double> cumulative_weight;
  centers.reserve(options.num_clusters);
  double total = 0.0;
  for (int c = 0; c < options.num_clusters; ++c) {
    centers.push_back({rng.Uniform(options.extent.lo[0], options.extent.hi[0]),
                       rng.Uniform(options.extent.lo[1], options.extent.hi[1])});
    // Zipf-ish weights: a few dominant clusters, many small ones.
    total += 1.0 / (c + 1);
    cumulative_weight.push_back(total);
  }

  std::vector<sdj::Point<2>> points;
  points.reserve(options.num_points);
  for (size_t i = 0; i < options.num_points; ++i) {
    if (rng.NextDouble() < options.background_fraction) {
      points.push_back(
          {rng.Uniform(options.extent.lo[0], options.extent.hi[0]),
           rng.Uniform(options.extent.lo[1], options.extent.hi[1])});
      continue;
    }
    const double pick = rng.NextDouble() * total;
    const auto it = std::lower_bound(cumulative_weight.begin(),
                                     cumulative_weight.end(), pick);
    const size_t c = static_cast<size_t>(it - cumulative_weight.begin());
    const sdj::Point<2>& center = centers[std::min(c, centers.size() - 1)];
    points.push_back(ClampToExtent({rng.Gaussian(center[0], spread),
                                    rng.Gaussian(center[1], spread)},
                                   options.extent));
  }
  return points;
}

std::vector<sdj::Point<2>> GeneratePolylines(const PolylineOptions& options) {
  SDJ_CHECK(options.extent.IsValid());
  SDJ_CHECK(options.num_polylines > 0);
  sdj::Rng rng(options.seed);
  const double width = options.extent.hi[0] - options.extent.lo[0];
  const double height = options.extent.hi[1] - options.extent.lo[1];
  const double scale = std::max(width, height);
  const double step = options.step_fraction * scale;
  const double jitter = options.jitter_fraction * scale;

  const size_t per_line =
      (options.num_points + options.num_polylines - 1) /
      static_cast<size_t>(options.num_polylines);

  std::vector<sdj::Point<2>> points;
  points.reserve(options.num_points);
  for (int line = 0; line < options.num_polylines; ++line) {
    double x = rng.Uniform(options.extent.lo[0], options.extent.hi[0]);
    double y = rng.Uniform(options.extent.lo[1], options.extent.hi[1]);
    double heading = rng.Uniform(0.0, 6.283185307179586);
    for (size_t i = 0; i < per_line && points.size() < options.num_points;
         ++i) {
      points.push_back(ClampToExtent({x + rng.Gaussian(0.0, jitter),
                                      y + rng.Gaussian(0.0, jitter)},
                                     options.extent));
      // Drift the heading gently so walks look like road segments rather than
      // Brownian noise.
      heading += rng.Gaussian(0.0, 0.25);
      x += step * std::cos(heading);
      y += step * std::sin(heading);
      // Bounce off the extent so lines stay inside.
      if (x < options.extent.lo[0] || x > options.extent.hi[0]) {
        heading = 3.141592653589793 - heading;
        x = std::clamp(x, options.extent.lo[0], options.extent.hi[0]);
      }
      if (y < options.extent.lo[1] || y > options.extent.hi[1]) {
        heading = -heading;
        y = std::clamp(y, options.extent.lo[1], options.extent.hi[1]);
      }
    }
  }
  return points;
}

std::vector<sdj::Point<2>> GenerateGrid(int rows, int cols,
                                        const sdj::Rect<2>& extent) {
  SDJ_CHECK(rows > 0 && cols > 0);
  SDJ_CHECK(extent.IsValid());
  std::vector<sdj::Point<2>> points;
  points.reserve(static_cast<size_t>(rows) * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const double fx = cols == 1 ? 0.5 : static_cast<double>(c) / (cols - 1);
      const double fy = rows == 1 ? 0.5 : static_cast<double>(r) / (rows - 1);
      points.push_back({extent.lo[0] + fx * (extent.hi[0] - extent.lo[0]),
                        extent.lo[1] + fy * (extent.hi[1] - extent.lo[1])});
    }
  }
  return points;
}

}  // namespace sdj::data
