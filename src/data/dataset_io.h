// CSV import/export for 2-D point datasets, so real TIGER/Line extracts can
// replace the synthetic datasets without code changes.
#ifndef SDJOIN_DATA_DATASET_IO_H_
#define SDJOIN_DATA_DATASET_IO_H_

#include <string>
#include <vector>

#include "geometry/point.h"

namespace sdj::data {

// Writes one "x,y" line per point. Returns false on I/O failure.
bool SavePointsCsv(const std::string& path,
                   const std::vector<sdj::Point<2>>& points);

// Reads "x,y" lines (blank lines and lines starting with '#' are skipped).
// Returns false on I/O failure or malformed input; `points` receives the
// parsed prefix either way.
bool LoadPointsCsv(const std::string& path,
                   std::vector<sdj::Point<2>>* points);

}  // namespace sdj::data

#endif  // SDJOIN_DATA_DATASET_IO_H_
