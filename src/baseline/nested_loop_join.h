// Nested-loop distance join baseline (Section 4.1.4).
//
// Computes object-pair distances by brute force over the Cartesian product.
// Three operating modes mirror how the paper discusses the alternative:
//   * ScanAllDistances(): compute every distance, keep nothing — the paper's
//     timing experiment ("we only computed the distance values but didn't
//     store them nor did we sort at the end");
//   * TopK(): maintain a bounded max-heap, yielding the K closest pairs in
//     order — the fair comparison for STOP AFTER K queries;
//   * AllWithin(): materialize and sort every pair within a distance bound —
//     what a real implementation would need for an ordered full result.
#ifndef SDJOIN_BASELINE_NESTED_LOOP_JOIN_H_
#define SDJOIN_BASELINE_NESTED_LOOP_JOIN_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "core/distance_join.h"
#include "geometry/distance.h"
#include "geometry/metrics.h"
#include "rtree/rtree.h"

namespace sdj::baseline {

// Brute-force distance join over two in-memory entry collections.
template <int Dim>
class NestedLoopDistanceJoin {
 public:
  using Entry = typename RTree<Dim>::Entry;

  NestedLoopDistanceJoin(std::vector<Entry> a, std::vector<Entry> b,
                         Metric metric = Metric::kEuclidean)
      : a_(std::move(a)), b_(std::move(b)), metric_(metric) {}

  // Copies all objects out of a tree (the "read the inner relation into
  // memory" step of the paper's experiment).
  static std::vector<Entry> Materialize(const RTree<Dim>& tree) {
    std::vector<Entry> entries;
    entries.reserve(tree.size());
    tree.ForEachObject([&entries](const Rect<Dim>& rect, ObjectId id) {
      entries.push_back({rect, id});
    });
    return entries;
  }

  // Computes every pairwise distance and returns their sum (so the work
  // cannot be optimized away). |a| * |b| distance computations.
  double ScanAllDistances() const {
    double sum = 0.0;
    for (const Entry& ea : a_) {
      for (const Entry& eb : b_) {
        sum += MinDist(ea.rect, eb.rect, metric_);
      }
    }
    distance_calcs_ += a_.size() * b_.size();
    return sum;
  }

  // The K closest pairs (optionally within max_distance), sorted ascending.
  std::vector<JoinResult<Dim>> TopK(
      size_t k,
      double max_distance = std::numeric_limits<double>::infinity()) const {
    const auto by_distance = [](const JoinResult<Dim>& x,
                                const JoinResult<Dim>& y) {
      return x.distance < y.distance;
    };
    // Max-heap of the K best so far.
    std::priority_queue<JoinResult<Dim>, std::vector<JoinResult<Dim>>,
                        decltype(by_distance)>
        best(by_distance);
    for (const Entry& ea : a_) {
      for (const Entry& eb : b_) {
        const double d = MinDist(ea.rect, eb.rect, metric_);
        ++distance_calcs_;
        if (d > max_distance) continue;
        if (best.size() < k) {
          best.push({ea.id, eb.id, ea.rect, eb.rect, d});
        } else if (!best.empty() && d < best.top().distance) {
          best.pop();
          best.push({ea.id, eb.id, ea.rect, eb.rect, d});
        }
      }
    }
    std::vector<JoinResult<Dim>> out;
    out.reserve(best.size());
    while (!best.empty()) {
      out.push_back(best.top());
      best.pop();
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

  // Every pair within `max_distance`, sorted ascending by distance.
  std::vector<JoinResult<Dim>> AllWithin(double max_distance) const {
    std::vector<JoinResult<Dim>> out;
    for (const Entry& ea : a_) {
      for (const Entry& eb : b_) {
        const double d = MinDist(ea.rect, eb.rect, metric_);
        ++distance_calcs_;
        if (d <= max_distance) {
          out.push_back({ea.id, eb.id, ea.rect, eb.rect, d});
        }
      }
    }
    std::sort(out.begin(), out.end(),
              [](const JoinResult<Dim>& x, const JoinResult<Dim>& y) {
                return x.distance < y.distance;
              });
    return out;
  }

  uint64_t distance_calcs() const { return distance_calcs_; }

 private:
  std::vector<Entry> a_;
  std::vector<Entry> b_;
  Metric metric_;
  mutable uint64_t distance_calcs_ = 0;
};

}  // namespace sdj::baseline

#endif  // SDJOIN_BASELINE_NESTED_LOOP_JOIN_H_
