// Spatial join with a within-predicate (Section 4.1.4's other alternative).
//
// A synchronized depth-first traversal of two R-trees in the style of
// Brinkhoff et al. [8], generalized from intersection to "distance <= eps"
// (Section 2.2.2 describes the required plane-sweep extension: the sweep over
// the other node's entries runs up to x2 + Dmax). Produces unordered result
// pairs; obtaining them by distance requires sorting the complete result,
// which is exactly the non-incremental drawback the paper contrasts against.
#ifndef SDJOIN_BASELINE_WITHIN_JOIN_H_
#define SDJOIN_BASELINE_WITHIN_JOIN_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/distance_join.h"
#include "geometry/distance.h"
#include "geometry/metrics.h"
#include "rtree/rtree.h"

namespace sdj::baseline {

// Aggregate costs of one WithinJoin run.
struct WithinJoinStats {
  uint64_t node_pairs_visited = 0;
  uint64_t distance_calcs = 0;
  uint64_t node_io = 0;
};

// Internal: one (rect, ref) entry lifted out of a node.
template <int Dim>
struct WithinItem {
  Rect<Dim> rect;
  uint64_t ref;
  bool is_leaf_entry;
};

template <int Dim, typename Fn>
void SweepPairs(const std::vector<WithinItem<Dim>>& left,
                const std::vector<WithinItem<Dim>>& right, double eps,
                Fn&& fn);

// Computes all object pairs within distance `eps`, unsorted. `sink` is
// invoked as sink(id1, id2, rect1, rect2, distance).
template <int Dim, typename Sink>
void WithinJoin(const RTree<Dim>& tree1, const RTree<Dim>& tree2, double eps,
                Metric metric, Sink&& sink, WithinJoinStats* stats = nullptr) {
  if (tree1.empty() || tree2.empty()) return;
  const uint64_t base_io = tree1.pool().stats().buffer_misses +
                           tree2.pool().stats().buffer_misses;
  WithinJoinStats local;

  // Recursive lambda over node pages (levels tracked explicitly).
  struct Frame {
    storage::PageId page1;
    int level1;
    storage::PageId page2;
    int level2;
  };
  std::vector<Frame> stack;
  stack.push_back({tree1.root(), tree1.root_level(), tree2.root(),
                   tree2.root_level()});

  std::vector<WithinItem<Dim>> left;
  std::vector<WithinItem<Dim>> right;
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    ++local.node_pairs_visited;

    left.clear();
    right.clear();
    {
      typename RTree<Dim>::PinnedNode n1 = tree1.Pin(frame.page1);
      typename RTree<Dim>::PinnedNode n2 = tree2.Pin(frame.page2);
      // Restrict each side to entries within eps of the other node's region
      // (the search-space restriction of [8]).
      Rect<Dim> mbr1 = Rect<Dim>::Empty();
      for (uint32_t i = 0; i < n1.count(); ++i) {
        mbr1.ExpandToInclude(n1.rect(i));
      }
      Rect<Dim> mbr2 = Rect<Dim>::Empty();
      for (uint32_t i = 0; i < n2.count(); ++i) {
        mbr2.ExpandToInclude(n2.rect(i));
      }
      for (uint32_t i = 0; i < n1.count(); ++i) {
        ++local.distance_calcs;
        if (MinDist(n1.rect(i), mbr2, metric) <= eps) {
          left.push_back({n1.rect(i), n1.ref(i), n1.is_leaf()});
        }
      }
      for (uint32_t i = 0; i < n2.count(); ++i) {
        ++local.distance_calcs;
        if (MinDist(n2.rect(i), mbr1, metric) <= eps) {
          right.push_back({n2.rect(i), n2.ref(i), n2.is_leaf()});
        }
      }
    }
    const bool leaf1 = frame.level1 == 0;
    const bool leaf2 = frame.level2 == 0;

    // Plane sweep along axis 0, extended by eps (Figure 4).
    const auto by_lo = [](const WithinItem<Dim>& a, const WithinItem<Dim>& b) {
      return a.rect.lo[0] < b.rect.lo[0];
    };
    std::sort(left.begin(), left.end(), by_lo);
    std::sort(right.begin(), right.end(), by_lo);

    if (leaf1 && leaf2) {
      SweepPairs(left, right, eps,
                 [&](const WithinItem<Dim>& a, const WithinItem<Dim>& b) {
                   ++local.distance_calcs;
                   const double d = MinDist(a.rect, b.rect, metric);
                   if (d > eps) return;
                   sink(static_cast<ObjectId>(a.ref),
                        static_cast<ObjectId>(b.ref), a.rect, b.rect, d);
                 });
    } else if (!leaf1 && !leaf2) {
      // Pair child nodes within eps.
      SweepPairs(left, right, eps,
                 [&](const WithinItem<Dim>& a, const WithinItem<Dim>& b) {
                   ++local.distance_calcs;
                   if (MinDist(a.rect, b.rect, metric) <= eps) {
                     stack.push_back({static_cast<storage::PageId>(a.ref),
                                      frame.level1 - 1,
                                      static_cast<storage::PageId>(b.ref),
                                      frame.level2 - 1});
                   }
                 });
    } else if (leaf1) {
      // tree1 bottomed out first: descend tree2's children against the same
      // tree1 leaf.
      for (const WithinItem<Dim>& b : right) {
        stack.push_back({frame.page1, 0, static_cast<storage::PageId>(b.ref),
                         frame.level2 - 1});
      }
    } else {
      for (const WithinItem<Dim>& a : left) {
        stack.push_back({static_cast<storage::PageId>(a.ref), frame.level1 - 1,
                         frame.page2, 0});
      }
    }
  }

  local.node_io = tree1.pool().stats().buffer_misses +
                  tree2.pool().stats().buffer_misses - base_io;
  if (stats != nullptr) *stats = local;
}

// Sweeps two lo-sorted entry lists, invoking fn on every pair whose axis-0
// intervals come within `eps`.
template <int Dim, typename Fn>
void SweepPairs(const std::vector<WithinItem<Dim>>& left,
                const std::vector<WithinItem<Dim>>& right, double eps,
                Fn&& fn) {
  size_t i = 0;
  size_t j = 0;
  while (i < left.size() && j < right.size()) {
    if (left[i].rect.lo[0] <= right[j].rect.lo[0]) {
      const double limit = left[i].rect.hi[0] + eps;
      for (size_t k = j; k < right.size() && right[k].rect.lo[0] <= limit;
           ++k) {
        fn(left[i], right[k]);
      }
      ++i;
    } else {
      const double limit = right[j].rect.hi[0] + eps;
      for (size_t k = i; k < left.size() && left[k].rect.lo[0] <= limit; ++k) {
        fn(left[k], right[j]);
      }
      ++j;
    }
  }
}

// Convenience wrapper: all pairs within eps, sorted by distance (what an
// ordered distance join needs from this baseline).
template <int Dim>
std::vector<JoinResult<Dim>> WithinJoinSorted(const RTree<Dim>& tree1,
                                              const RTree<Dim>& tree2,
                                              double eps, Metric metric,
                                              WithinJoinStats* stats = nullptr) {
  std::vector<JoinResult<Dim>> results;
  WithinJoin(
      tree1, tree2, eps, metric,
      [&results](ObjectId id1, ObjectId id2, const Rect<Dim>& r1,
                 const Rect<Dim>& r2, double d) {
        results.push_back({id1, id2, r1, r2, d});
      },
      stats);
  std::sort(results.begin(), results.end(),
            [](const JoinResult<Dim>& a, const JoinResult<Dim>& b) {
              return a.distance < b.distance;
            });
  return results;
}

}  // namespace sdj::baseline

#endif  // SDJOIN_BASELINE_WITHIN_JOIN_H_
