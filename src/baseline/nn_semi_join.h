// Nearest-neighbor-based distance semi-join baseline (Section 4.2.3).
//
// "For each object in relation A, we perform a nearest neighbor computation
// in relation B, and sort the resulting array of distances once all
// neighbors have been computed." Non-incremental: the full result must be
// produced before the first pair can be returned in order.
#ifndef SDJOIN_BASELINE_NN_SEMI_JOIN_H_
#define SDJOIN_BASELINE_NN_SEMI_JOIN_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/distance_join.h"
#include "geometry/metrics.h"
#include "nn/inc_nearest.h"
#include "rtree/rtree.h"

namespace sdj::baseline {

// Aggregate costs of one NnSemiJoin run.
struct NnSemiJoinStats {
  uint64_t nn_queries = 0;
  uint64_t distance_calcs = 0;
  uint64_t queue_pushes = 0;
  uint64_t node_io = 0;
};

// Computes the complete distance semi-join of `tree1` with `tree2` by
// repeated nearest-neighbor search, returning the pairs sorted by distance.
// Point objects only (each leaf entry's rect must be degenerate; the NN query
// uses the entry's lower corner as the query point).
template <int Dim>
std::vector<JoinResult<Dim>> NnSemiJoin(const RTree<Dim>& tree1,
                                        const RTree<Dim>& tree2,
                                        Metric metric = Metric::kEuclidean,
                                        NnSemiJoinStats* stats = nullptr) {
  std::vector<JoinResult<Dim>> results;
  results.reserve(tree1.size());
  const uint64_t base_io = tree1.pool().stats().buffer_misses +
                           tree2.pool().stats().buffer_misses;
  uint64_t distance_calcs = 0;
  uint64_t queue_pushes = 0;
  tree1.ForEachObject([&](const Rect<Dim>& rect, ObjectId id) {
    IncNearestNeighbor<Dim> nn(tree2, rect.lo, metric);
    typename IncNearestNeighbor<Dim>::Result hit;
    if (nn.Next(&hit)) {
      results.push_back({id, hit.id, rect, hit.rect, hit.distance});
    }
    distance_calcs += nn.stats().distance_calcs;
    queue_pushes += nn.stats().queue_pushes;
  });
  std::sort(results.begin(), results.end(),
            [](const JoinResult<Dim>& a, const JoinResult<Dim>& b) {
              return a.distance < b.distance;
            });
  if (stats != nullptr) {
    stats->nn_queries = tree1.size();
    stats->distance_calcs = distance_calcs;
    stats->queue_pushes = queue_pushes;
    stats->node_io = tree1.pool().stats().buffer_misses +
                     tree2.pool().stats().buffer_misses - base_io;
  }
  return results;
}

}  // namespace sdj::baseline

#endif  // SDJOIN_BASELINE_NN_SEMI_JOIN_H_
