// Incremental nearest-neighbor search over an R-tree.
//
// This is the Hjaltason–Samet algorithm the paper builds on (its reference
// [18]): a single priority queue holds both nodes (keyed by MINDIST to the
// query) and objects (keyed by their distance); whenever an object surfaces
// at the head of the queue it is the next nearest neighbor. Used standalone,
// as the inner loop of the paper's distance-join (conceptually "two of these
// run simultaneously", Section 2.2), and as the non-incremental semi-join
// baseline of Section 4.2.3.
//
// Implemented as a policy over the shared best-first core (nn/neighbor_core.h
// + core/best_first.h, DESIGN.md §13), which supplies kIoError propagation on
// node reads, the optional hybrid queue, StopToken suspension, and
// SaveState/RestoreState (JoinCursor-compatible).
#ifndef SDJOIN_NN_INC_NEAREST_H_
#define SDJOIN_NN_INC_NEAREST_H_

#include <cstdint>
#include <vector>

#include "core/join_result.h"
#include "geometry/metrics.h"
#include "geometry/point.h"
#include "nn/neighbor_core.h"
#include "rtree/rtree.h"

namespace sdj {

// Pull-based nearest-neighbor iterator: each Next() yields the next closest
// object, in non-decreasing distance. The referenced tree must outlive the
// iterator and must not be modified while iterating.
//
//   IncNearestNeighbor<2> nn(tree, {3.0, 4.0});
//   IncNearestNeighbor<2>::Result hit;
//   while (nn.Next(&hit) && hit.distance <= radius) Use(hit);
//
// Next() returns false when the tree is exhausted, the stop token fired, or
// a node page was unreadable — status() (and suspended()) disambiguate.
template <int Dim, typename Index = RTree<Dim>>
class IncNearestNeighbor
    : public NeighborEngine<Dim, IncNearestNeighbor<Dim, Index>, Index,
                            /*kFarthest=*/false> {
  using Engine = NeighborEngine<Dim, IncNearestNeighbor<Dim, Index>, Index,
                                /*kFarthest=*/false>;

 public:
  using Result = typename Engine::Result;

  IncNearestNeighbor(const Index& tree, const Point<Dim>& query,
                     Metric metric = Metric::kEuclidean)
      : Engine(tree, query, WithMetric(metric)) {}

  IncNearestNeighbor(const Index& tree, const Point<Dim>& query,
                     const IncNeighborOptions& options)
      : Engine(tree, query, options) {}

 private:
  static IncNeighborOptions WithMetric(Metric metric) {
    IncNeighborOptions options;
    options.metric = metric;
    return options;
  }
};

// Convenience: the k nearest objects to `query`, closest first (fewer if the
// tree holds fewer than k objects). Swallows the traversal status — use the
// status-returning overload below when stop tokens, metrics, or I/O failures
// matter.
template <int Dim, typename Index = RTree<Dim>>
std::vector<typename IncNearestNeighbor<Dim, Index>::Result> KNearest(
    const Index& tree, const Point<Dim>& query, size_t k,
    Metric metric = Metric::kEuclidean) {
  IncNearestNeighbor<Dim, Index> nn(tree, query, metric);
  std::vector<typename IncNearestNeighbor<Dim, Index>::Result> results;
  typename IncNearestNeighbor<Dim, Index>::Result hit;
  while (results.size() < k && nn.Next(&hit)) results.push_back(hit);
  return results;
}

// Status-returning KNearest: honors every IncNeighborOptions knob and
// reports how the traversal ended. Returns kOk when k neighbors were found,
// kExhausted when the tree ran out first (*out then holds all objects),
// kSuspended when the stop token fired, and kIoError on an unreadable node
// page — in the latter two cases *out holds the valid prefix found so far.
template <int Dim, typename Index = RTree<Dim>>
JoinStatus KNearest(
    const Index& tree, const Point<Dim>& query, size_t k,
    const IncNeighborOptions& options,
    std::vector<typename IncNearestNeighbor<Dim, Index>::Result>* out) {
  out->clear();
  IncNearestNeighbor<Dim, Index> nn(tree, query, options);
  typename IncNearestNeighbor<Dim, Index>::Result hit;
  while (out->size() < k && nn.Next(&hit)) out->push_back(hit);
  if (out->size() == k) return JoinStatus::kOk;
  return nn.status();
}

}  // namespace sdj

#endif  // SDJOIN_NN_INC_NEAREST_H_
