// Incremental nearest-neighbor search over an R-tree.
//
// This is the Hjaltason–Samet algorithm the paper builds on (its reference
// [18]): a single priority queue holds both nodes (keyed by MINDIST to the
// query) and objects (keyed by their distance); whenever an object surfaces
// at the head of the queue it is the next nearest neighbor. Used standalone,
// as the inner loop of the paper's distance-join (conceptually "two of these
// run simultaneously", Section 2.2), and as the non-incremental semi-join
// baseline of Section 4.2.3.
#ifndef SDJOIN_NN_INC_NEAREST_H_
#define SDJOIN_NN_INC_NEAREST_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "geometry/distance.h"
#include "geometry/metrics.h"
#include "geometry/point.h"
#include "geometry/rect.h"
#include "geometry/rect_batch.h"
#include "obs/metrics.h"
#include "rtree/rtree.h"
#include "util/check.h"
#include "util/stop_token.h"

namespace sdj {

// Counters describing one incremental-NN traversal.
struct IncNearestStats {
  uint64_t distance_calcs = 0;
  uint64_t queue_pushes = 0;
  uint64_t max_queue_size = 0;
  uint64_t nodes_expanded = 0;
  uint64_t neighbors_reported = 0;
};

// Pull-based nearest-neighbor iterator: each Next() yields the next closest
// object, in non-decreasing distance. The referenced tree must outlive the
// iterator and must not be modified while iterating.
//
//   IncNearestNeighbor<2> nn(tree, {3.0, 4.0});
//   IncNearestNeighbor<2>::Result hit;
//   while (nn.Next(&hit) && hit.distance <= radius) Use(hit);
template <int Dim, typename Index = RTree<Dim>>
class IncNearestNeighbor {
 public:
  struct Result {
    ObjectId id = 0;
    Rect<Dim> rect;
    double distance = 0.0;
  };

  IncNearestNeighbor(const Index& tree, const Point<Dim>& query,
                     Metric metric = Metric::kEuclidean)
      : tree_(tree), query_(query), metric_(metric) {
    if (!tree.empty()) {
      Push(QueueItem{0.0, /*is_object=*/false, tree.root(), Rect<Dim>()});
    }
  }

  // Cooperative suspension (DESIGN.md §11): once the token requests a stop,
  // Next() returns false at the next safe point with suspended() == true;
  // the traversal state stays intact, so calling Next() again (after
  // re-arming the source) continues where it stopped.
  void set_stop_token(util::StopToken token) { stop_token_ = token; }
  bool suspended() const { return suspended_; }

  // Optional observability sink (DESIGN.md §12): records node-expansion
  // latency. Null = disabled (one pointer test per expansion).
  void set_metrics(obs::Metrics* metrics) { metrics_ = metrics; }

  // Yields the next nearest object; returns false when the tree is exhausted
  // or the stop token fired (suspended() disambiguates).
  bool Next(Result* out) {
    SDJ_CHECK(out != nullptr);
    suspended_ = false;
    while (!queue_.empty()) {
      if (stop_token_.stop_requested()) {
        suspended_ = true;
        return false;
      }
      obs::PhaseTimer pop_timer(obs::PopSample(metrics_, pop_seq_++),
                                obs::Op::kPop);
      const QueueItem item = queue_.top();
      queue_.pop();
      pop_timer.Stop();
      if (item.is_object) {
        out->id = static_cast<ObjectId>(item.ref);
        out->rect = item.rect;
        out->distance = item.distance;
        ++stats_.neighbors_reported;
        return true;
      }
      obs::PhaseTimer expand_timer(metrics_, obs::Op::kExpansion);
      ++stats_.nodes_expanded;
      bool leaf;
      {
        typename Index::PinnedNode node =
            tree_.Pin(static_cast<storage::PageId>(item.ref));
        node.DecodeInto(&batch_, &refs_);
        leaf = node.is_leaf();
      }
      // Score the whole node against the query point in one batched kernel
      // (bit-identical to the scalar loop; geometry/rect_batch.h).
      const size_t n = batch_.size();
      mind_.resize(n);
      MinDistBatch(batch_, query_, metric_, mind_.data());
      stats_.distance_calcs += n;
      for (size_t i = 0; i < n; ++i) {
        Push(QueueItem{mind_[i], leaf, refs_[i],
                       leaf ? batch_.rect(i) : Rect<Dim>()});
      }
    }
    return false;
  }

  const IncNearestStats& stats() const { return stats_; }

 private:
  struct QueueItem {
    double distance;
    bool is_object;
    uint64_t ref;  // object id or node page
    Rect<Dim> rect;

    // std::priority_queue is a max-heap; order so the smallest distance is on
    // top, with objects before nodes at equal distance (report ASAP).
    bool operator<(const QueueItem& other) const {
      if (distance != other.distance) return distance > other.distance;
      return is_object < other.is_object;
    }
  };

  void Push(const QueueItem& item) {
    queue_.push(item);
    ++stats_.queue_pushes;
    stats_.max_queue_size =
        std::max<uint64_t>(stats_.max_queue_size, queue_.size());
  }

  const Index& tree_;
  const Point<Dim> query_;
  const Metric metric_;
  util::StopToken stop_token_;
  obs::Metrics* metrics_ = nullptr;
  uint64_t pop_seq_ = 0;  // drives obs::PopSample
  bool suspended_ = false;
  std::priority_queue<QueueItem> queue_;
  // Node-decode scratch, reused across expansions.
  RectBatch<Dim> batch_;
  std::vector<uint64_t> refs_;
  std::vector<double> mind_;
  IncNearestStats stats_;
};

// Convenience: the k nearest objects to `query`, closest first (fewer if the
// tree holds fewer than k objects).
template <int Dim, typename Index = RTree<Dim>>
std::vector<typename IncNearestNeighbor<Dim, Index>::Result> KNearest(
    const Index& tree, const Point<Dim>& query, size_t k,
    Metric metric = Metric::kEuclidean) {
  IncNearestNeighbor<Dim, Index> nn(tree, query, metric);
  std::vector<typename IncNearestNeighbor<Dim, Index>::Result> results;
  typename IncNearestNeighbor<Dim, Index>::Result hit;
  while (results.size() < k && nn.Next(&hit)) results.push_back(hit);
  return results;
}

}  // namespace sdj

#endif  // SDJOIN_NN_INC_NEAREST_H_
