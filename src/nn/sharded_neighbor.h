// Sharded incremental neighbor search (DESIGN.md §18): the single-tree
// instantiation of the sharded best-first stack. The shard plan runs one
// serial root expansion, scatters the resulting frontier by subtree ref, and
// each group seeds an independent NeighborEngine behind the k-way frontier
// merge of core/shard_merge.h.
//
// The nearest engine's reported distances are nondecreasing, the farthest
// engine's nonincreasing (its reported distance IS the traversal key,
// negated), so both satisfy the merge-frontier invariant — the farthest
// wrapper simply runs the merge with the descending comparator. Every
// IncNeighborOptions configuration is eligible; with fewer than two root
// children the wrapper degrades to one ordinary engine.
#ifndef SDJOIN_NN_SHARDED_NEIGHBOR_H_
#define SDJOIN_NN_SHARDED_NEIGHBOR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/env_knobs.h"
#include "core/join_stats.h"
#include "core/shard_merge.h"
#include "core/shard_plan.h"
#include "geometry/metrics.h"
#include "geometry/point.h"
#include "nn/inc_farthest.h"
#include "nn/inc_nearest.h"
#include "nn/neighbor_core.h"
#include "rtree/rtree.h"

namespace sdj::shard {

// Common wrapper for both neighbor directions; EngineT is the serial
// iterator (IncNearestNeighbor / IncFarthestNeighbor) and kDescending
// selects the merge comparator (true for farthest-first).
template <int Dim, typename Index, typename EngineT, bool kDescending>
class ShardedNeighbor
    : public ShardedEngine<Dim, EngineT, NeighborResult<Dim>> {
  using BaseT = ShardedEngine<Dim, EngineT, NeighborResult<Dim>>;

 public:
  using Result = NeighborResult<Dim>;

  ShardedNeighbor(const Index& tree, const Point<Dim>& query,
                  const IncNeighborOptions& options)
      : BaseT({&tree.pool()}) {
    const int requested = env_knobs::ResolveShards(options.shards);
    Plan<Dim> plan;
    if (requested >= 2) {
      IncNeighborOptions seed_options = options;
      seed_options.shards = 1;
      seed_options.defer_seed = false;
      seed_options.stop_token = util::StopToken{};
      EngineT seed(tree, query, seed_options);
      // The query side is a pseudo-item (every entry's item2 coincides), so
      // only the item1 scatter can ever partition.
      plan = BuildFromSeed<Dim>(&seed, requested,
                                /*allow_item2_fallback=*/false);
      if (plan.ok()) plan.seed_stats = seed.engine_stats();
    }
    if (!plan.ok()) {
      this->AdoptPassthrough(std::make_unique<EngineT>(tree, query, options));
      return;
    }
    std::vector<std::unique_ptr<EngineT>> engines;
    engines.reserve(plan.groups.size());
    for (size_t k = 0; k < plan.groups.size(); ++k) {
      IncNeighborOptions shard_options = options;
      shard_options.shards = 1;
      shard_options.defer_seed = true;
      shard_options.stop_token = util::StopToken{};
      if (shard_options.use_hybrid_queue &&
          !shard_options.hybrid.spill_path.empty()) {
        // Per-shard hybrid queues must not collide on one spill file.
        shard_options.hybrid.spill_path += ".shard" + std::to_string(k);
      }
      auto engine = std::make_unique<EngineT>(tree, query, shard_options);
      engine->AdoptPlanEntries(plan.groups[k], plan.next_seq);
      engines.push_back(std::move(engine));
    }
    this->AdoptShards(std::move(engines), plan.seed_stats, kDescending,
                      options.stop_token, /*max_results=*/0,
                      /*auto_resume=*/true);
  }

  // Traversal counters in the historical NN shape (mirrors
  // NeighborEngine::stats(); engine_stats() exposes the merged full set).
  const IncNearestStats& stats() const {
    const JoinStats& s = BaseT::stats();
    nn_stats_.distance_calcs = s.total_distance_calcs;
    nn_stats_.queue_pushes = s.queue_pushes;
    nn_stats_.max_queue_size = s.max_queue_size;
    nn_stats_.nodes_expanded = s.nodes_expanded;
    nn_stats_.neighbors_reported = s.pairs_reported;
    return nn_stats_;
  }
  const JoinStats& engine_stats() const { return BaseT::stats(); }

  bool suspended() const {
    return this->status() == JoinStatus::kSuspended;
  }

 private:
  mutable IncNearestStats nn_stats_;
};

}  // namespace sdj::shard

namespace sdj {

// Sharded nearest-neighbor iterator; drop-in for IncNearestNeighbor.
template <int Dim, typename Index = RTree<Dim>>
class ShardedIncNearest
    : public shard::ShardedNeighbor<Dim, Index, IncNearestNeighbor<Dim, Index>,
                                    /*kDescending=*/false> {
  using BaseT = shard::ShardedNeighbor<Dim, Index,
                                       IncNearestNeighbor<Dim, Index>,
                                       /*kDescending=*/false>;

 public:
  ShardedIncNearest(const Index& tree, const Point<Dim>& query,
                    const IncNeighborOptions& options)
      : BaseT(tree, query, options) {}
  ShardedIncNearest(const Index& tree, const Point<Dim>& query,
                    Metric metric = Metric::kEuclidean)
      : BaseT(tree, query, WithMetric(metric)) {}

 private:
  static IncNeighborOptions WithMetric(Metric metric) {
    IncNeighborOptions options;
    options.metric = metric;
    return options;
  }
};

// Sharded farthest-neighbor iterator; drop-in for IncFarthestNeighbor. The
// merge runs descending: each shard's head upper-bounds its remainder.
template <int Dim, typename Index = RTree<Dim>>
class ShardedIncFarthest
    : public shard::ShardedNeighbor<Dim, Index,
                                    IncFarthestNeighbor<Dim, Index>,
                                    /*kDescending=*/true> {
  using BaseT = shard::ShardedNeighbor<Dim, Index,
                                       IncFarthestNeighbor<Dim, Index>,
                                       /*kDescending=*/true>;

 public:
  ShardedIncFarthest(const Index& tree, const Point<Dim>& query,
                     const IncNeighborOptions& options)
      : BaseT(tree, query, options) {}
  ShardedIncFarthest(const Index& tree, const Point<Dim>& query,
                     Metric metric = Metric::kEuclidean)
      : BaseT(tree, query, WithMetric(metric)) {}

 private:
  static IncNeighborOptions WithMetric(Metric metric) {
    IncNeighborOptions options;
    options.metric = metric;
    return options;
  }
};

}  // namespace sdj

#endif  // SDJOIN_NN_SHARDED_NEIGHBOR_H_
