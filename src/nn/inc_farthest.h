// Incremental farthest-neighbor search: the single-tree analogue of the
// join's reverse ordering (Section 2.2.5). Objects stream out by
// non-increasing distance from the query point.
//
// Nodes are keyed by MAXDIST(query, node MBR) — an upper bound on the
// distance of any object beneath, monotone under containment — and objects
// by their exact distance; popping the maximum key therefore yields the
// farthest remaining object as soon as it surfaces. Like the join's reverse
// mode, the queue key is the negated bound, so the hybrid tiered queue is
// unavailable (it buckets by ascending key == distance).
//
// Implemented as a policy over the shared best-first core (nn/neighbor_core.h
// + core/best_first.h, DESIGN.md §13); see IncNearestNeighbor for the
// cross-cutting behavior (status(), suspension, snapshots).
#ifndef SDJOIN_NN_INC_FARTHEST_H_
#define SDJOIN_NN_INC_FARTHEST_H_

#include "geometry/metrics.h"
#include "geometry/point.h"
#include "nn/inc_nearest.h"
#include "nn/neighbor_core.h"
#include "rtree/rtree.h"

namespace sdj {

// Pull-based farthest-neighbor iterator; mirrors IncNearestNeighbor. For
// extended objects, the reported distance is the maximal distance from the
// query to the object's rectangle (consistent with the node bound).
template <int Dim, typename Index = RTree<Dim>>
class IncFarthestNeighbor
    : public NeighborEngine<Dim, IncFarthestNeighbor<Dim, Index>, Index,
                            /*kFarthest=*/true> {
  using Engine = NeighborEngine<Dim, IncFarthestNeighbor<Dim, Index>, Index,
                                /*kFarthest=*/true>;

 public:
  using Result = typename Engine::Result;

  IncFarthestNeighbor(const Index& tree, const Point<Dim>& query,
                      Metric metric = Metric::kEuclidean)
      : Engine(tree, query, WithMetric(metric)) {}

  IncFarthestNeighbor(const Index& tree, const Point<Dim>& query,
                      const IncNeighborOptions& options)
      : Engine(tree, query, options) {}

 private:
  static IncNeighborOptions WithMetric(Metric metric) {
    IncNeighborOptions options;
    options.metric = metric;
    return options;
  }
};

}  // namespace sdj

#endif  // SDJOIN_NN_INC_FARTHEST_H_
