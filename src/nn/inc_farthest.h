// Incremental farthest-neighbor search: the single-tree analogue of the
// join's reverse ordering (Section 2.2.5). Objects stream out by
// non-increasing distance from the query point.
//
// Nodes are keyed by MAXDIST(query, node MBR) — an upper bound on the
// distance of any object beneath, monotone under containment — and objects
// by their exact distance; popping the maximum key therefore yields the
// farthest remaining object as soon as it surfaces.
#ifndef SDJOIN_NN_INC_FARTHEST_H_
#define SDJOIN_NN_INC_FARTHEST_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "geometry/distance.h"
#include "geometry/metrics.h"
#include "geometry/point.h"
#include "geometry/rect.h"
#include "geometry/rect_batch.h"
#include "nn/inc_nearest.h"
#include "rtree/rtree.h"
#include "util/check.h"
#include "util/stop_token.h"

namespace sdj {

// Pull-based farthest-neighbor iterator; mirrors IncNearestNeighbor.
template <int Dim, typename Index = RTree<Dim>>
class IncFarthestNeighbor {
 public:
  using Result = typename IncNearestNeighbor<Dim, Index>::Result;

  IncFarthestNeighbor(const Index& tree, const Point<Dim>& query,
                      Metric metric = Metric::kEuclidean)
      : tree_(tree), query_(query), metric_(metric) {
    if (!tree.empty()) {
      const Rect<Dim> mbr = tree.RootMbr();
      Push(QueueItem{MaxDist(query, mbr, metric), /*is_object=*/false,
                     tree.root(), Rect<Dim>()});
    }
  }

  // Cooperative suspension, mirroring IncNearestNeighbor (DESIGN.md §11).
  void set_stop_token(util::StopToken token) { stop_token_ = token; }
  bool suspended() const { return suspended_; }

  // Optional observability sink, mirroring IncNearestNeighbor.
  void set_metrics(obs::Metrics* metrics) { metrics_ = metrics; }

  // Yields the next farthest object; returns false when exhausted or the
  // stop token fired (suspended() disambiguates). For extended objects, the
  // reported distance is the maximal distance from the query to the
  // object's rectangle (consistent with the node bound).
  bool Next(Result* out) {
    SDJ_CHECK(out != nullptr);
    suspended_ = false;
    while (!queue_.empty()) {
      if (stop_token_.stop_requested()) {
        suspended_ = true;
        return false;
      }
      obs::PhaseTimer pop_timer(obs::PopSample(metrics_, pop_seq_++),
                                obs::Op::kPop);
      const QueueItem item = queue_.top();
      queue_.pop();
      pop_timer.Stop();
      if (item.is_object) {
        out->id = static_cast<ObjectId>(item.ref);
        out->rect = item.rect;
        out->distance = item.distance;
        ++stats_.neighbors_reported;
        return true;
      }
      obs::PhaseTimer expand_timer(metrics_, obs::Op::kExpansion);
      ++stats_.nodes_expanded;
      bool leaf;
      {
        typename Index::PinnedNode node =
            tree_.Pin(static_cast<storage::PageId>(item.ref));
        node.DecodeInto(&batch_, &refs_);
        leaf = node.is_leaf();
      }
      // Batched MAXDIST against the query point (geometry/rect_batch.h).
      const size_t n = batch_.size();
      maxd_.resize(n);
      MaxDistBatch(batch_, query_, metric_, maxd_.data());
      stats_.distance_calcs += n;
      for (size_t i = 0; i < n; ++i) {
        Push(QueueItem{maxd_[i], leaf, refs_[i],
                       leaf ? batch_.rect(i) : Rect<Dim>()});
      }
    }
    return false;
  }

  const IncNearestStats& stats() const { return stats_; }

 private:
  struct QueueItem {
    double distance;
    bool is_object;
    uint64_t ref;
    Rect<Dim> rect;

    // Max-heap on distance; objects before nodes at equal distance.
    bool operator<(const QueueItem& other) const {
      if (distance != other.distance) return distance < other.distance;
      return is_object < other.is_object;
    }
  };

  void Push(const QueueItem& item) {
    queue_.push(item);
    ++stats_.queue_pushes;
    stats_.max_queue_size =
        std::max<uint64_t>(stats_.max_queue_size, queue_.size());
  }

  const Index& tree_;
  const Point<Dim> query_;
  const Metric metric_;
  util::StopToken stop_token_;
  obs::Metrics* metrics_ = nullptr;
  uint64_t pop_seq_ = 0;  // drives obs::PopSample
  bool suspended_ = false;
  std::priority_queue<QueueItem> queue_;
  // Node-decode scratch, reused across expansions.
  RectBatch<Dim> batch_;
  std::vector<uint64_t> refs_;
  std::vector<double> maxd_;
  IncNearestStats stats_;
};

}  // namespace sdj

#endif  // SDJOIN_NN_INC_FARTHEST_H_
