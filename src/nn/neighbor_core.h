// Shared single-tree neighbor engine: incremental nearest- and farthest-
// neighbor search as policies over the best-first core (core/best_first.h,
// DESIGN.md §13).
//
// This is the Hjaltason–Samet incremental NN algorithm the paper builds on
// (its reference [18]): one priority queue holds both nodes (keyed by
// MINDIST — or MAXDIST for farthest-first — to the query point) and objects
// (keyed by their distance); whenever an object surfaces at the head of the
// queue it is the next neighbor. Queue elements are PairEntry with item2
// left as a default (non-node) item, so the shared comparator reports
// objects before nodes at equal key, exactly like the dedicated NN
// comparators did.
//
// Riding on the core gives both engines what the join engines already had:
// TryPin + kIoError propagation on node reads (DESIGN.md §9), the optional
// hybrid memory/disk queue (nearest only — farthest keys are negated upper
// bounds, which the tiered queue cannot bucket), StopToken suspension, and
// SaveState/RestoreState, which makes them JoinCursor-compatible.
#ifndef SDJOIN_NN_NEIGHBOR_CORE_H_
#define SDJOIN_NN_NEIGHBOR_CORE_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/best_first.h"
#include "core/hybrid_queue.h"
#include "core/join_result.h"
#include "core/pair_entry.h"
#include "geometry/code_screen.h"
#include "geometry/distance.h"
#include "geometry/metrics.h"
#include "geometry/point.h"
#include "geometry/rect.h"
#include "geometry/rect_batch.h"
#include "obs/metrics.h"
#include "rtree/rtree.h"
#include "util/check.h"
#include "util/stop_token.h"

namespace sdj {

// Counters describing one incremental-NN traversal (synthesized from the
// core's JoinStats; engine_stats() exposes the full set).
struct IncNearestStats {
  uint64_t distance_calcs = 0;
  uint64_t queue_pushes = 0;
  uint64_t max_queue_size = 0;
  uint64_t nodes_expanded = 0;
  uint64_t neighbors_reported = 0;
};

// One reported neighbor.
template <int Dim>
struct NeighborResult {
  ObjectId id = 0;
  Rect<Dim> rect;
  double distance = 0.0;
};

// Full options for the NN engines; the (tree, query, metric) constructors
// remain as shorthand for default options.
struct IncNeighborOptions {
  Metric metric = Metric::kEuclidean;
  TieBreakPolicy tie_break = TieBreakPolicy::kDepthFirst;
  // Hybrid memory/disk priority queue (Section 3.2). Nearest-only: the
  // farthest engine CHECKs this stays false.
  bool use_hybrid_queue = false;
  HybridQueueOptions hybrid;
  // Cooperative suspension (DESIGN.md §11); also settable later through
  // set_stop_token.
  util::StopToken stop_token;
  // Observability sink (DESIGN.md §12); also settable through set_metrics.
  obs::Metrics* metrics = nullptr;
  // SIMD path for the batched kernels (DESIGN.md §15); bit-identical to
  // scalar on every path, so it can never change the neighbor stream.
  simd::Isa kernel_isa = simd::Isa::kAuto;
  // Bounded nearest search: entries (nodes or objects) farther than this are
  // pruned at enqueue instead of waiting in the queue, and the stream ends
  // (kExhausted) when the radius is out of candidates. Nearest-only: the
  // farthest engine CHECKs this stays infinite (a far bound would truncate
  // its stream from the wrong end).
  double max_distance = std::numeric_limits<double>::infinity();
  // Integer code screening on quantized pages (DESIGN.md §17); engages when
  // max_distance is finite. The neighbor stream and pre-existing stats stay
  // byte-identical with it on or off.
  bool screen_codes = code_screen::DefaultEnabled();
  // Shard count for the ShardedIncNearest/ShardedIncFarthest wrappers
  // (DESIGN.md §18); the raw engines ignore it. 0 = SDJ_SHARDS default.
  int shards = 0;
  // Internal (core/shard_plan.h): skip root seeding; the plan adopts
  // externally planned entries instead. Not for direct use.
  bool defer_seed = false;
};

// The shared engine; `Derived` is the concrete iterator class
// (IncNearestNeighbor / IncFarthestNeighbor) and `kFarthest` selects the
// traversal direction: MAXDIST scoring with negated keys instead of MINDIST.
template <int Dim, typename Derived, typename Index, bool kFarthest>
class NeighborEngine
    : public BestFirstEngine<Dim, Derived, Index, NeighborResult<Dim>> {
  using Base = BestFirstEngine<Dim, Derived, Index, NeighborResult<Dim>>;
  friend Base;

 public:
  using Result = NeighborResult<Dim>;

  // Cooperative suspension (DESIGN.md §11): once the token requests a stop,
  // Next() returns false at the next safe point with suspended() == true;
  // the traversal state stays intact, so calling Next() again (after
  // re-arming the source) continues where it stopped.
  void set_stop_token(util::StopToken token) {
    config_.stop_token = token;
  }
  bool suspended() const { return status_ == JoinStatus::kSuspended; }

  // Optional observability sink (DESIGN.md §12): records pop and
  // node-expansion latency. Null = disabled. (A hybrid queue keeps the sink
  // it was constructed with.)
  void set_metrics(obs::Metrics* metrics) { config_.metrics = metrics; }

  // Traversal counters in the historical NN shape.
  const IncNearestStats& stats() const {
    const JoinStats& s = Base::stats();
    nn_stats_.distance_calcs = s.total_distance_calcs;
    nn_stats_.queue_pushes = s.queue_pushes;
    nn_stats_.max_queue_size = s.max_queue_size;
    nn_stats_.nodes_expanded = s.nodes_expanded;
    nn_stats_.neighbors_reported = s.pairs_reported;
    return nn_stats_;
  }

  // The core's full counter set (I/O retries, checksum failures, batch
  // kernel invocations, ... — everything stats() does not surface).
  const JoinStats& engine_stats() const { return Base::stats(); }

  // ---- snapshot support (DESIGN.md §11) ----

  // Same contract as DistanceJoin::SaveState: call at a safe point; returns
  // false if the state cannot be captured completely.
  bool SaveState(snapshot::Blob* out) {
    if (!this->SaveAllowed()) return false;
    out->PutU32(kStateMagic);
    out->PutU32(kStateVersion);
    out->PutU32(static_cast<uint32_t>(Dim));
    out->PutU8(static_cast<uint8_t>(options_.metric));
    out->PutBool(kFarthest);
    out->PutU8(static_cast<uint8_t>(options_.tie_break));
    out->PutBool(options_.use_hybrid_queue);
    out->PutDouble(options_.hybrid.tier_width);
    out->PutDouble(options_.max_distance);
    out->PutBool(options_.screen_codes);
    for (int d = 0; d < Dim; ++d) out->PutDouble(query_[d]);
    out->PutBool(minimal_regions_);
    out->PutU64(tree_.size());
    return this->SaveCore(out);
  }

  // Same contract as DistanceJoin::RestoreState: fingerprint mismatch
  // returns false with the engine untouched; a malformed blob past the
  // fingerprint leaves it unusable.
  bool RestoreState(snapshot::BlobReader* in) {
    if (in->GetU32() != kStateMagic) return false;
    if (in->GetU32() != kStateVersion) return false;
    if (in->GetU32() != static_cast<uint32_t>(Dim)) return false;
    if (in->GetU8() != static_cast<uint8_t>(options_.metric)) return false;
    if (in->GetBool() != kFarthest) return false;
    if (in->GetU8() != static_cast<uint8_t>(options_.tie_break)) return false;
    if (in->GetBool() != options_.use_hybrid_queue) return false;
    if (in->GetDouble() != options_.hybrid.tier_width) return false;
    // NaN-proof compare (an infinite bound round-trips exactly; NaN is
    // rejected at construction).
    if (in->GetDouble() != options_.max_distance) return false;
    if (in->GetBool() != options_.screen_codes) return false;
    for (int d = 0; d < Dim; ++d) {
      if (in->GetDouble() != query_[d]) return false;
    }
    if (in->GetBool() != minimal_regions_) return false;
    if (in->GetU64() != tree_.size()) return false;
    if (!in->ok()) return false;
    return this->RestoreCore(in);
  }

 protected:
  using Item = typename Base::Item;
  using Entry = typename Base::Entry;
  using Base::batch1_;
  using Base::config_;
  using Base::mind1_;
  using Base::next_seq_;
  using Base::queue_;
  using Base::refs1_;
  using Base::stats_;
  using Base::status_;
  using Base::MarkIoError;
  using Base::PinDecode;
  using Base::PinDecodeScreened;

  NeighborEngine(const Index& tree, const Point<Dim>& query,
                 const IncNeighborOptions& options)
      : Base({&tree.pool()}, MakeConfig(options)),
        tree_(tree),
        query_(query),
        options_(options),
        minimal_regions_(tree.minimal_bounding_regions()),
        isa_(simd::Resolve(options.kernel_isa)) {
    // The hybrid queue buckets by key and CHECKs key == distance; farthest
    // keys are negated, so the tiered queue is nearest-only (mirroring the
    // join's hybrid-excludes-reverse restriction).
    if (kFarthest) SDJ_CHECK(!options.use_hybrid_queue);
    // Rejects NaN too (comparisons with NaN are false).
    SDJ_CHECK(options.max_distance >= 0.0);
    if (kFarthest) {
      SDJ_CHECK(options.max_distance ==
                std::numeric_limits<double>::infinity());
    }
    for (int d = 0; d < Dim; ++d) {
      query_rect_.lo[d] = query_[d];
      query_rect_.hi[d] = query_[d];
    }
    if (!options.defer_seed) Seed();
  }

  // ---- policy hooks ----

  // Historical NN semantics: Next() after a suspension simply continues, so
  // a still-suspended status self-clears at the next call.
  void PrepareNext() {
    if (status_ == JoinStatus::kSuspended) status_ = JoinStatus::kOk;
  }

  PopAction OnPopped(const Entry& e, Result* out) {
    if (e.item1.is_node()) return PopAction::kExpand;
    out->id = static_cast<ObjectId>(e.item1.ref);
    out->rect = e.item1.rect;
    out->distance = e.distance;
    ++stats_.pairs_reported;
    return PopAction::kReported;
  }

  bool Expand(const Entry& e) {
    bool leaf;
    int level;
    size_t screened = 0;
    const bool bounded = !kFarthest && std::isfinite(options_.max_distance);
    if (bounded && options_.screen_codes) {
      if (!PinDecodeScreened(tree_, e.item1.ref, query_rect_,
                             options_.max_distance, isa_, &batch1_, &refs1_,
                             &leaf, &level, &screened)) {
        return MarkIoError();
      }
    } else if (!PinDecode(tree_, e.item1.ref, &batch1_, &refs1_, &leaf,
                          &level)) {
      return MarkIoError();
    }
    ++stats_.nodes_expanded;
    // Score the whole node against the query point in one batched kernel
    // (bit-identical to the scalar loop; geometry/rect_batch.h).
    const size_t n = batch1_.size();
    mind1_.resize(n);
    if constexpr (kFarthest) {
      MaxDistBatch(batch1_, query_, options_.metric, mind1_.data(), 0, n,
                   isa_);
    } else {
      MinDistBatch(batch1_, query_, options_.metric, mind1_.data(), 0, n,
                   isa_);
    }
    // Every entry is charged one distance calc, screened-out ones included
    // (screening only replaces the f64 evaluation the scalar engine would
    // have performed for them).
    stats_.total_distance_calcs += n + screened;
    stats_.pruned_by_range += screened;
    ++stats_.batch_kernel_invocations;
    for (size_t i = 0; i < n; ++i) {
      // Bounded nearest search: out-of-radius entries never enter the queue
      // (identical stream to pruning at pop, since MINDIST is a lower bound
      // for everything beneath a node).
      if (bounded && mind1_[i] > options_.max_distance) {
        ++stats_.pruned_by_range;
        continue;
      }
      Entry child;
      child.distance = mind1_[i];
      child.item1 = this->MakeChildItem(batch1_, refs1_, i, leaf, level,
                                        JoinItemKind::kObject);
      // item2 stays the default non-node item: the pair comparator then
      // orders by (key, has-node, depth, seq), i.e. objects before nodes at
      // equal key — the dedicated NN comparators' order.
      child.seq = next_seq_++;
      FinalizePairMetadata(&child);
      child.key = kFarthest ? -mind1_[i] : mind1_[i];
      queue_->Push(child);
      ++stats_.queue_pushes;
    }
    return true;
  }

 private:
  static constexpr uint32_t kStateMagic = 0x534A4E4E;  // "SJNN"
  // Version 2: max_distance + screen_codes in the fingerprint, screening
  // counters in the shared stats section.
  static constexpr uint32_t kStateVersion = 2;

  static BestFirstConfig MakeConfig(const IncNeighborOptions& options) {
    BestFirstConfig config;
    config.tie_break = options.tie_break;
    config.use_hybrid_queue = options.use_hybrid_queue;
    config.hybrid = options.hybrid;
    config.num_threads = 1;  // NN expansions are fan-out-sized; no sharding
    config.stop_token = options.stop_token;
    config.metrics = options.metrics;
    return config;
  }

  void Seed() {
    if (tree_.empty()) return;
    const Rect<Dim> mbr = tree_.RootMbr();
    Entry root;
    // The root is the only entry when popped, so its key never competes;
    // still use the real bound (uncounted, like the historical constant
    // seed) so the hybrid queue's key == distance invariant holds.
    root.distance = kFarthest ? MaxDist(query_, mbr, options_.metric)
                              : MinDist(query_, mbr, options_.metric);
    root.item1 = Item{mbr, tree_.root(),
                      static_cast<int16_t>(tree_.root_level()),
                      JoinItemKind::kNode};
    root.seq = next_seq_++;
    FinalizePairMetadata(&root);
    root.key = kFarthest ? -root.distance : root.distance;
    queue_->Push(root);
    ++stats_.queue_pushes;
  }

  const Index& tree_;
  const Point<Dim> query_;
  // The query point as a degenerate rectangle, for the code-screening stage
  // (MINDIST to it equals the point distance in every metric).
  Rect<Dim> query_rect_;
  const IncNeighborOptions options_;
  // Runtime minimality of the tree's node regions (snapshot fingerprint) and
  // the kernel path, both resolved once at construction.
  const bool minimal_regions_;
  const simd::Isa isa_;
  mutable IncNearestStats nn_stats_;
};

}  // namespace sdj

#endif  // SDJOIN_NN_NEIGHBOR_CORE_H_
