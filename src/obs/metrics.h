// Zero-cost-when-disabled metrics layer (DESIGN.md §12).
//
// A Metrics object owns one log-scale LatencyHistogram per instrumented
// operation (Op) plus an optional TraceSink. Engines, the hybrid queue, the
// buffer pool, and the snapshot store each hold a `Metrics*` that defaults
// to null; every instrumentation point is a PhaseTimer whose entire disabled
// cost is one null-pointer test — no clock read, no atomic, no allocation.
//
// Determinism contract (CLAUDE.md): recorded *durations* are wall-clock and
// therefore vary run to run, but event *counts* are part of the
// deterministic output — a parallel (num_threads > 1) run must record
// exactly the serial run's counts. Workers never hold timers; every
// instrumented phase runs on the serial merge path or inside the (serially
// driven) storage layer. Histogram merging is bucket-wise addition, so
// summaries are independent of merge order.
#ifndef SDJOIN_OBS_METRICS_H_
#define SDJOIN_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>

#include "obs/trace.h"

namespace sdj::obs {

// Instrumented operations. The first group are engine phases (scoped
// PhaseTimers around whole steps); the second are storage-layer operations;
// the third are serving-layer phases (DESIGN.md §14), recorded into both the
// manager-wide sink and the owning session's sink.
enum class Op : uint8_t {
  kExpansion = 0,   // engine: expand one queue entry into child pairs
  kPop,             // engine: pop the next entry off the priority queue
  kRefill,          // hybrid queue: heap ran dry, tier migration stall
  kSpill,           // hybrid queue: push one entry to the disk tier
  kCheckpoint,      // cursor: SaveState + snapshot commit
  kRestore,         // cursor: read snapshot + RestoreState
  kSnapshotCommit,  // snapshot store: shadow-paged WriteSnapshot
  kPageRead,        // buffer pool: physical page read (incl. retries)
  kPageWrite,       // buffer pool: physical page write (incl. retries)
  kPageSync,        // buffer pool / snapshot store: file sync
  kServeSlice,      // session manager: one Next() slice of one session
  kSessionEvict,    // session manager: checkpoint + drop a session's engine
  kSessionRehydrate,  // session manager: rebuild + restore an evicted session
};
inline constexpr int kNumOps = 13;

inline const char* OpName(Op op) {
  switch (op) {
    case Op::kExpansion:      return "expansion";
    case Op::kPop:            return "pop";
    case Op::kRefill:         return "refill";
    case Op::kSpill:          return "spill";
    case Op::kCheckpoint:     return "checkpoint";
    case Op::kRestore:        return "restore";
    case Op::kSnapshotCommit: return "snapshot_commit";
    case Op::kPageRead:       return "page_read";
    case Op::kPageWrite:      return "page_write";
    case Op::kPageSync:       return "page_sync";
    case Op::kServeSlice:     return "serve_slice";
    case Op::kSessionEvict:   return "session_evict";
    case Op::kSessionRehydrate: return "session_rehydrate";
  }
  return "unknown";
}

// Plain-value percentile summary of one histogram. Percentiles are bucket
// upper bounds (capped at the exact observed max), so they are conservative
// and — because bucket counts add commutatively — identical however the
// underlying recordings were sharded and merged.
struct HistogramSummary {
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p95_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t max_ns = 0;
};

// Log-scale (power-of-two buckets) latency histogram. Record() is lock-free
// and safe to call concurrently (the buffer pool records under multi-thread
// pins); all counters are relaxed atomics, mirroring AtomicIoStats.
class LatencyHistogram {
 public:
  // Bucket b holds durations with bit width b: [2^(b-1), 2^b). Bucket 0 is
  // exactly 0 ns; the last bucket absorbs everything >= ~2^46 ns (~20h).
  static constexpr int kNumBuckets = 48;

  void Record(uint64_t ns) {
    buckets_[BucketOf(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    uint64_t prev = max_ns_.load(std::memory_order_relaxed);
    while (ns > prev && !max_ns_.compare_exchange_weak(
                            prev, ns, std::memory_order_relaxed)) {
    }
  }

  // Bucket-wise addition; commutative and associative, so merge order never
  // changes the resulting Summary().
  void MergeFrom(const LatencyHistogram& other) {
    for (int b = 0; b < kNumBuckets; ++b) {
      buckets_[b].fetch_add(other.buckets_[b].load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    total_ns_.fetch_add(other.total_ns_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    const uint64_t other_max = other.max_ns_.load(std::memory_order_relaxed);
    uint64_t prev = max_ns_.load(std::memory_order_relaxed);
    while (other_max > prev && !max_ns_.compare_exchange_weak(
                                   prev, other_max,
                                   std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  uint64_t max_ns() const { return max_ns_.load(std::memory_order_relaxed); }

  HistogramSummary Summary() const {
    HistogramSummary s;
    uint64_t buckets[kNumBuckets];
    for (int b = 0; b < kNumBuckets; ++b) {
      buckets[b] = buckets_[b].load(std::memory_order_relaxed);
      s.count += buckets[b];
    }
    s.total_ns = total_ns();
    s.max_ns = max_ns();
    s.p50_ns = Percentile(buckets, s.count, s.max_ns, 0.50);
    s.p95_ns = Percentile(buckets, s.count, s.max_ns, 0.95);
    s.p99_ns = Percentile(buckets, s.count, s.max_ns, 0.99);
    return s;
  }

 private:
  static int BucketOf(uint64_t ns) {
    const int width = std::bit_width(ns);
    return width < kNumBuckets ? width : kNumBuckets - 1;
  }

  // Upper bound of bucket b (inclusive): 0 for bucket 0, else 2^b - 1.
  static uint64_t BucketUpperNs(int b) {
    return b == 0 ? 0 : (uint64_t{1} << b) - 1;
  }

  static uint64_t Percentile(const uint64_t* buckets, uint64_t count,
                             uint64_t max_ns, double p) {
    if (count == 0) return 0;
    // Rank of the percentile element (1-based, nearest-rank definition:
    // ceil(p * count), so p99 of 3 samples is the max).
    uint64_t rank =
        static_cast<uint64_t>(std::ceil(p * static_cast<double>(count)));
    if (rank < 1) rank = 1;
    if (rank > count) rank = count;
    uint64_t cumulative = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
      cumulative += buckets[b];
      if (cumulative >= rank) {
        const uint64_t upper = BucketUpperNs(b);
        return upper < max_ns ? upper : max_ns;
      }
    }
    return max_ns;
  }

  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_ns_{0};
  std::atomic<uint64_t> max_ns_{0};
};

// Plain-value snapshot of a whole Metrics object (copyable; benches embed it
// in their result rows).
struct MetricsSummary {
  HistogramSummary op[kNumOps];

  const HistogramSummary& of(Op o) const {
    return op[static_cast<int>(o)];
  }
};

// One histogram per Op plus an optional trace sink. Not copyable (atomics);
// share by pointer. The trace pointer must be set before instrumented code
// runs and the sink must outlive every component holding this Metrics.
class Metrics {
 public:
  LatencyHistogram& hist(Op o) { return hists_[static_cast<int>(o)]; }
  const LatencyHistogram& hist(Op o) const {
    return hists_[static_cast<int>(o)];
  }

  void set_trace(TraceSink* sink) { trace_ = sink; }
  TraceSink* trace() const { return trace_; }

  void MergeFrom(const Metrics& other) {
    for (int i = 0; i < kNumOps; ++i) hists_[i].MergeFrom(other.hists_[i]);
  }

  MetricsSummary Summary() const {
    MetricsSummary s;
    for (int i = 0; i < kNumOps; ++i) s.op[i] = hists_[i].Summary();
    return s;
  }

 private:
  LatencyHistogram hists_[kNumOps];
  TraceSink* trace_ = nullptr;
};

// Pop sampling. Pops outnumber every other instrumented phase by an order
// of magnitude and take single-digit microseconds each, so timing all of
// them costs more than the latency distribution is worth: the histogram
// samples every 16th pop instead. A trace sink disables sampling — a
// timeline with 15/16 of its pops missing would violate the phase-coverage
// property (§12). Keyed on the engine's pop sequence number (not a random
// draw), so histogram counts stay deterministic and serial/parallel runs
// record identical counts.
inline constexpr uint64_t kPopSampleMask = 15;

inline Metrics* PopSample(Metrics* metrics, uint64_t pop_seq) {
  if (metrics == nullptr) return nullptr;
  if (metrics->trace() == nullptr && (pop_seq & kPopSampleMask) != 0) {
    return nullptr;
  }
  return metrics;
}

// Scoped timer for one Op. With a null Metrics the constructor, Stop, and
// destructor each cost exactly one pointer test — the disabled-overhead
// contract of DESIGN.md §12.
class PhaseTimer {
 public:
  PhaseTimer(Metrics* metrics, Op op) : metrics_(metrics), op_(op) {
    if (metrics_ != nullptr) start_ns_ = MonotonicNowNs();
  }
  ~PhaseTimer() { Stop(); }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  // Records the elapsed time (idempotent; the destructor calls it too).
  void Stop() {
    if (metrics_ == nullptr) return;
    const uint64_t duration_ns = MonotonicNowNs() - start_ns_;
    metrics_->hist(op_).Record(duration_ns);
    if (TraceSink* sink = metrics_->trace(); sink != nullptr) {
      sink->AddComplete(OpName(op_), start_ns_, duration_ns);
    }
    metrics_ = nullptr;
  }

 private:
  Metrics* metrics_;
  const Op op_;
  uint64_t start_ns_ = 0;
};

}  // namespace sdj::obs

#endif  // SDJOIN_OBS_METRICS_H_
