// Chrome trace_event sink (DESIGN.md §12).
//
// TraceSink buffers "complete" events ({"ph": "X"}) in memory and writes
// them as one Chrome-trace JSON document that chrome://tracing and Perfetto
// open directly. Timestamps are monotonic-clock nanoseconds relative to the
// sink's creation, emitted in the trace_event spec's microsecond unit.
//
// The buffer is bounded: once `max_events` events are held, further events
// are dropped and counted (never silently), and the drop count is written
// into the trace's otherData block. Event names must be string literals (or
// otherwise outlive the sink) — PhaseTimer passes OpName() constants.
//
// Thread-safety: AddComplete may be called from any thread; each thread is
// assigned a small dense tid on first use so the trace viewer groups its
// events on one track.
#ifndef SDJOIN_OBS_TRACE_H_
#define SDJOIN_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace sdj::obs {

// Monotonic nanoseconds since an arbitrary epoch (steady clock): the shared
// timebase of every PhaseTimer and trace event.
inline uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// See file comment.
class TraceSink {
 public:
  static constexpr size_t kDefaultMaxEvents = 1u << 20;

  explicit TraceSink(size_t max_events = kDefaultMaxEvents)
      : max_events_(max_events), origin_ns_(MonotonicNowNs()) {}

  // Records one complete event. `name` must outlive the sink.
  void AddComplete(const char* name, uint64_t start_ns, uint64_t duration_ns) {
    std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() >= max_events_) {
      ++dropped_;
      return;
    }
    events_.push_back(Event{name, start_ns, duration_ns, TidLocked()});
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
  }
  uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }

  // Sum of all buffered event durations (for phase-coverage checks against
  // wall time; nested events double-count, but sdjoin phases do not nest).
  uint64_t TotalDurationNs() const {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (const Event& e : events_) total += e.duration_ns;
    return total;
  }

  // Writes the buffered events as Chrome-trace JSON. Returns false if the
  // file could not be written.
  bool WriteJson(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::lock_guard<std::mutex> lock(mu_);
    std::fprintf(f, "{\n  \"displayTimeUnit\": \"ms\",\n");
    std::fprintf(f,
                 "  \"otherData\": {\"tool\": \"sdjoin\", "
                 "\"dropped_events\": %llu},\n",
                 static_cast<unsigned long long>(dropped_));
    std::fprintf(f, "  \"traceEvents\": [\n");
    for (size_t i = 0; i < events_.size(); ++i) {
      const Event& e = events_[i];
      // A timer started before the sink existed clamps to ts 0.
      const uint64_t rel_ns =
          e.start_ns >= origin_ns_ ? e.start_ns - origin_ns_ : 0;
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"cat\": \"sdjoin\", "
                   "\"ph\": \"X\", \"pid\": 1, \"tid\": %u, "
                   "\"ts\": %.3f, \"dur\": %.3f}%s\n",
                   e.name, e.tid, static_cast<double>(rel_ns) / 1e3,
                   static_cast<double>(e.duration_ns) / 1e3,
                   i + 1 < events_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    return std::fclose(f) == 0;
  }

 private:
  struct Event {
    const char* name;
    uint64_t start_ns;
    uint64_t duration_ns;
    uint32_t tid;
  };

  uint32_t TidLocked() {
    const auto id = std::this_thread::get_id();
    auto it = tids_.find(id);
    if (it != tids_.end()) return it->second;
    const uint32_t tid = static_cast<uint32_t>(tids_.size() + 1);
    tids_.emplace(id, tid);
    return tid;
  }

  const size_t max_events_;
  const uint64_t origin_ns_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<std::thread::id, uint32_t> tids_;
  uint64_t dropped_ = 0;
};

}  // namespace sdj::obs

#endif  // SDJOIN_OBS_TRACE_H_
