// Paged bucket PR quadtree over point data.
//
// A second hierarchical index demonstrating the paper's claim that the
// incremental join "works for any spatial data structure based on a
// hierarchical decomposition" (Section 2.2): PointQuadtree exposes the same
// read interface as RTree, so DistanceJoin<Dim, PointQuadtree<Dim>> works
// unchanged. Quadtrees regularly subdivide space, so node regions do NOT
// minimally bound their contents — kMinimalBoundingRegions is false and the
// join engine automatically falls back to containment-only d_max bounds
// (the Section 2.2.2 caveat about structures without bounding rectangles).
//
// Scope: point objects, each stored in exactly one leaf bucket (so join
// results need no deduplication); insert-only (built once, then queried,
// like the paper's evaluation indexes). Space is subdivided into 2^Dim
// quadrants per interior node; leaves hold up to a page of points. At most
// `bucket capacity` coincident points are supported per location (deeper
// subdivision cannot separate identical points).
#ifndef SDJOIN_QUADTREE_QUADTREE_H_
#define SDJOIN_QUADTREE_QUADTREE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "geometry/point.h"
#include "geometry/rect.h"
#include "rtree/node_layout.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injection.h"
#include "storage/page.h"
#include "storage/page_file.h"
#include "storage/page_store.h"
#include "util/check.h"

namespace sdj {

// Construction parameters for PointQuadtree.
struct QuadtreeOptions {
  uint32_t page_size = storage::kDefaultPageSize;
  uint32_t buffer_pages = 128;
  // Maximum subdivision depth; also the engine-facing level of the root.
  int max_depth = 24;
  // If non-zero, caps the leaf bucket size below the page capacity.
  uint32_t bucket_capacity_override = 0;
  // If non-empty, pages live in this file instead of memory.
  std::string file_path;
  // If set, the page store injects faults from this schedule (testing).
  std::optional<storage::FaultInjectionOptions> fault_injection;
  // Bounded-retry policy for the tree's buffer pool.
  storage::RetryPolicy retry;
};

// Bucket PR quadtree over Point<Dim> objects within a fixed extent.
template <int Dim>
class PointQuadtree {
  using Layout = rtree_internal::NodeLayout<Dim>;
  static constexpr uint16_t kLeafBit = 0x8000;
  static constexpr uint32_t kQuadrants = 1u << Dim;

 public:
  // Quadrant regions are fixed subdivisions, not minimal bounds.
  static constexpr bool kMinimalBoundingRegions = false;
  static constexpr int kDim = Dim;

  // Runtime mirror of kMinimalBoundingRegions (always false here): engines
  // consult this so indexes whose minimality depends on construction options
  // (the quantized R-tree) share one code path with the quadtree.
  bool minimal_bounding_regions() const { return false; }

  struct Entry {
    Rect<Dim> rect;  // degenerate (a point)
    ObjectId id = 0;
  };

  // All inserted points must lie inside `extent`.
  PointQuadtree(const Rect<Dim>& extent,
                const QuadtreeOptions& options = QuadtreeOptions())
      : options_(options), extent_(extent) {
    SDJ_CHECK(extent.IsValid());
    SDJ_CHECK(options.max_depth >= 1 && options.max_depth < 0x4000);
    std::unique_ptr<storage::PageFile> file = storage::CreatePageStore(
        {options.page_size, options.file_path, options.fault_injection,
         std::nullopt},
        &injector_);
    SDJ_CHECK(file != nullptr);
    pool_ = std::make_unique<storage::BufferPool>(
        std::move(file), options.buffer_pages, options.retry);
    bucket_capacity_ = Layout::Capacity(options.page_size);
    if (options.bucket_capacity_override != 0) {
      bucket_capacity_ =
          std::min(bucket_capacity_, options.bucket_capacity_override);
    }
    SDJ_CHECK(bucket_capacity_ >= kQuadrants);
    SDJ_CHECK(Layout::Capacity(options.page_size) >= kQuadrants);
  }

  PointQuadtree(const PointQuadtree&) = delete;
  PointQuadtree& operator=(const PointQuadtree&) = delete;
  PointQuadtree(PointQuadtree&&) noexcept = default;
  PointQuadtree& operator=(PointQuadtree&&) noexcept = default;

  // RAII read handle; same shape as RTree::PinnedNode.
  class PinnedNode {
   public:
    PinnedNode(storage::BufferPool* pool, storage::PageId page)
        : pool_(pool), page_(page), data_(pool->Pin(page)) {}
    // Adopts an already-pinned buffer (null = failed pin, empty handle).
    PinnedNode(storage::BufferPool* pool, storage::PageId page,
               const char* data)
        : pool_(data == nullptr ? nullptr : pool), page_(page), data_(data) {}
    ~PinnedNode() {
      if (pool_ != nullptr) pool_->Unpin(page_, /*dirty=*/false);
    }
    PinnedNode(const PinnedNode&) = delete;
    PinnedNode& operator=(const PinnedNode&) = delete;
    PinnedNode(PinnedNode&& other) noexcept
        : pool_(other.pool_), page_(other.page_), data_(other.data_) {
      other.pool_ = nullptr;
    }
    PinnedNode& operator=(PinnedNode&&) = delete;

    // False if the pin failed; the handle is inert (destructor is a no-op).
    bool ok() const { return data_ != nullptr; }

    storage::PageId page() const { return page_; }
    int level() const { return Layout::GetLevel(data_) & ~kLeafBit; }
    bool is_leaf() const { return (Layout::GetLevel(data_) & kLeafBit) != 0; }
    uint32_t count() const { return Layout::GetCount(data_); }
    // Child quadrant region (interior) or point rect (leaf).
    Rect<Dim> rect(uint32_t i) const { return Layout::GetRect(data_, i); }
    // Child page id (interior) or object id (leaf).
    uint64_t ref(uint32_t i) const { return Layout::GetRef(data_, i); }
    // Batch decode; same contract as RTree::PinnedNode::DecodeInto.
    void DecodeInto(RectBatch<Dim>* rects, std::vector<uint64_t>* refs)
        const {
      Layout::DecodeEntries(data_, rects, refs);
    }
    // Interface parity with RTree::PinnedNode::DecodeScreened: quadtree
    // pages store raw doubles, so there are no codes to screen — always a
    // plain full decode, reporting that screening did not run.
    bool DecodeScreened(const Rect<Dim>& query, double max_distance,
                        simd::Isa isa,
                        code_screen::ScreenScratch<Dim>* scratch,
                        RectBatch<Dim>* rects, std::vector<uint64_t>* refs,
                        size_t* screened_out) const {
      (void)query;
      (void)max_distance;
      (void)isa;
      (void)scratch;
      *screened_out = 0;
      Layout::DecodeEntries(data_, rects, refs);
      return false;
    }

   private:
    storage::BufferPool* pool_;
    storage::PageId page_;
    const char* data_;
  };

  PinnedNode Pin(storage::PageId page) const {
    return PinnedNode(pool_.get(), page);
  }

  // Failable pin; same contract as RTree::TryPin.
  PinnedNode TryPin(storage::PageId page,
                    storage::IoStatus* status = nullptr) const {
    const char* data = pool_->TryPin(page, status);
    return PinnedNode(pool_.get(), page, data);
  }

  bool empty() const { return root_ == storage::kInvalidPageId; }
  size_t size() const { return size_; }
  // Largest ObjectId ever inserted (0 for an empty tree); see
  // RTree::max_object_id.
  ObjectId max_object_id() const { return max_object_id_; }
  storage::PageId root() const { return root_; }
  // Engine-facing level of the root; leaves sit at max_depth - depth.
  int root_level() const { return options_.max_depth; }
  // The quadtree's region (its fixed extent, not a minimal bound).
  Rect<Dim> RootMbr() const { return extent_; }
  const Rect<Dim>& extent() const { return extent_; }
  uint32_t bucket_capacity() const { return bucket_capacity_; }
  size_t num_nodes() const { return num_nodes_; }
  size_t num_leaves() const { return num_leaves_; }

  // Quadtrees guarantee no minimum occupancy; 1 is the only safe bound.
  uint64_t MinObjectsUnder(int level) const {
    (void)level;
    return 1;
  }
  // Crude average for the paper's aggressive estimation mode.
  double ExpectedObjectsUnder(int level) const {
    (void)level;
    if (num_leaves_ == 0) return 0.0;
    return static_cast<double>(size_) / num_leaves_;
  }

  storage::BufferPool& pool() const { return *pool_; }

  // Fault-injection layer, when options.fault_injection was set; null
  // otherwise. Borrowed from the pool-owned page-store stack.
  storage::FaultInjectingPageFile* injector() const { return injector_; }

  // Inserts one point; must lie inside the extent.
  void Insert(const Point<Dim>& point, ObjectId id) {
    SDJ_CHECK(extent_.Contains(point));
    if (empty()) {
      root_ = AllocateNode(options_.max_depth, /*leaf=*/true);
    }
    InsertAt(root_, extent_, 0, point, id);
    ++size_;
    max_object_id_ = std::max(max_object_id_, id);
  }

  // RTree-compatible overload for degenerate rects.
  void Insert(const Rect<Dim>& rect, ObjectId id) {
    SDJ_CHECK(rect.lo == rect.hi);
    Insert(rect.lo, id);
  }

  // Appends all points inside `query` to `out`.
  void RangeQuery(const Rect<Dim>& query, std::vector<Entry>* out) const {
    if (empty()) return;
    RangeQueryNode(root_, query, out);
  }

  // Invokes fn(rect, id) for every point.
  template <typename Fn>
  void ForEachObject(Fn&& fn) const {
    if (empty()) return;
    ForEachObjectNode(root_, fn);
  }

  // Structural invariants: quadrant geometry, depth bounds, containment,
  // object count. Returns false with a message on violation.
  bool Validate(std::string* error = nullptr) const {
    if (empty()) {
      if (size_ != 0) return Fail(error, "empty tree with nonzero size");
      return true;
    }
    size_t objects = 0;
    if (!ValidateNode(root_, extent_, 0, &objects, error)) return false;
    if (objects != size_) return Fail(error, "object count mismatch");
    return true;
  }

 private:
  storage::PageId AllocateNode(int level, bool leaf) {
    storage::PageId page;
    char* data = pool_->NewPage(&page);
    Layout::SetLevel(data, static_cast<uint16_t>(level) |
                               (leaf ? kLeafBit : 0));
    Layout::SetCount(data, 0);
    pool_->Unpin(page, /*dirty=*/true);
    ++num_nodes_;
    if (leaf) ++num_leaves_;
    return page;
  }

  // Index of the quadrant of `region` containing `p` (ties to the high
  // side), plus the quadrant's rect.
  static uint32_t QuadrantOf(const Rect<Dim>& region, const Point<Dim>& p,
                             Rect<Dim>* quadrant) {
    uint32_t index = 0;
    *quadrant = region;
    for (int d = 0; d < Dim; ++d) {
      const double mid = 0.5 * (region.lo[d] + region.hi[d]);
      if (p[d] >= mid) {
        index |= 1u << d;
        quadrant->lo[d] = mid;
      } else {
        quadrant->hi[d] = mid;
      }
    }
    return index;
  }

  void InsertAt(storage::PageId page, const Rect<Dim>& region, int depth,
                const Point<Dim>& point, ObjectId id) {
    char* data = pool_->Pin(page);
    const bool leaf = (Layout::GetLevel(data) & kLeafBit) != 0;
    const uint16_t count = Layout::GetCount(data);

    if (leaf && count < bucket_capacity_) {
      Layout::SetRect(data, count, Rect<Dim>::FromPoint(point));
      Layout::SetRef(data, count, id);
      Layout::SetCount(data, count + 1);
      pool_->Unpin(page, /*dirty=*/true);
      return;
    }

    if (leaf) {
      // Split: convert this page to an interior node and push the bucket
      // down one level. Coincident points beyond the bucket capacity would
      // recurse forever; the depth check guards that.
      SDJ_CHECK(depth < options_.max_depth);
      std::vector<std::pair<Point<Dim>, ObjectId>> bucket;
      bucket.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        bucket.push_back({Layout::GetRect(data, i).lo, Layout::GetRef(data, i)});
      }
      const int level = Layout::GetLevel(data) & ~kLeafBit;
      Layout::SetLevel(data, static_cast<uint16_t>(level));  // now interior
      Layout::SetCount(data, 0);
      pool_->Unpin(page, /*dirty=*/true);
      --num_leaves_;
      for (const auto& [p, oid] : bucket) {
        InsertAt(page, region, depth, p, oid);
      }
      InsertAt(page, region, depth, point, id);
      return;
    }

    // Interior: find (or create) the child quadrant and descend.
    Rect<Dim> quadrant;
    QuadrantOf(region, point, &quadrant);
    storage::PageId child = storage::kInvalidPageId;
    for (uint32_t i = 0; i < count; ++i) {
      if (Layout::GetRect(data, i).Contains(point) &&
          Layout::GetRect(data, i) == quadrant) {
        child = static_cast<storage::PageId>(Layout::GetRef(data, i));
        break;
      }
    }
    if (child == storage::kInvalidPageId) {
      const int level = Layout::GetLevel(data) & ~kLeafBit;
      pool_->Unpin(page, /*dirty=*/false);
      child = AllocateNode(level - 1, /*leaf=*/true);
      data = pool_->Pin(page);
      const uint16_t fresh_count = Layout::GetCount(data);
      SDJ_CHECK(fresh_count < kQuadrants);
      Layout::SetRect(data, fresh_count, quadrant);
      Layout::SetRef(data, fresh_count, child);
      Layout::SetCount(data, fresh_count + 1);
      pool_->Unpin(page, /*dirty=*/true);
    } else {
      pool_->Unpin(page, /*dirty=*/false);
    }
    InsertAt(child, quadrant, depth + 1, point, id);
  }

  void RangeQueryNode(storage::PageId page, const Rect<Dim>& query,
                      std::vector<Entry>* out) const {
    PinnedNode node = Pin(page);
    for (uint32_t i = 0; i < node.count(); ++i) {
      if (!query.Intersects(node.rect(i))) continue;
      if (node.is_leaf()) {
        out->push_back({node.rect(i), node.ref(i)});
      } else {
        RangeQueryNode(static_cast<storage::PageId>(node.ref(i)), query, out);
      }
    }
  }

  template <typename Fn>
  void ForEachObjectNode(storage::PageId page, Fn& fn) const {
    PinnedNode node = Pin(page);
    for (uint32_t i = 0; i < node.count(); ++i) {
      if (node.is_leaf()) {
        fn(node.rect(i), node.ref(i));
      } else {
        ForEachObjectNode(static_cast<storage::PageId>(node.ref(i)), fn);
      }
    }
  }

  static bool Fail(std::string* error, const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  }

  bool ValidateNode(storage::PageId page, const Rect<Dim>& region, int depth,
                    size_t* objects, std::string* error) const {
    PinnedNode node = Pin(page);
    if (depth > options_.max_depth) {
      return Fail(error, "node deeper than max_depth");
    }
    if (node.level() != options_.max_depth - depth) {
      return Fail(error, "level/depth mismatch at page " +
                             std::to_string(page));
    }
    if (node.is_leaf()) {
      if (node.count() > bucket_capacity_) {
        return Fail(error, "overfull bucket at page " + std::to_string(page));
      }
      for (uint32_t i = 0; i < node.count(); ++i) {
        if (!region.Contains(node.rect(i).lo)) {
          return Fail(error, "point outside its region at page " +
                                 std::to_string(page));
        }
      }
      *objects += node.count();
      return true;
    }
    if (node.count() > kQuadrants) {
      return Fail(error, "interior node with too many children");
    }
    for (uint32_t i = 0; i < node.count(); ++i) {
      const Rect<Dim> child_region = node.rect(i);
      if (!region.Contains(child_region)) {
        return Fail(error, "child region escapes parent");
      }
      // Verify the child is a genuine quadrant (its center maps back).
      Rect<Dim> expected;
      QuadrantOf(region, child_region.Center(), &expected);
      if (!(expected == child_region)) {
        return Fail(error, "child region is not a quadrant");
      }
      if (!ValidateNode(static_cast<storage::PageId>(node.ref(i)),
                        child_region, depth + 1, objects, error)) {
        return false;
      }
    }
    return true;
  }

  QuadtreeOptions options_;
  Rect<Dim> extent_;
  mutable std::unique_ptr<storage::BufferPool> pool_;
  storage::FaultInjectingPageFile* injector_ = nullptr;
  uint32_t bucket_capacity_ = 0;
  storage::PageId root_ = storage::kInvalidPageId;
  size_t size_ = 0;
  size_t num_nodes_ = 0;
  size_t num_leaves_ = 0;
  ObjectId max_object_id_ = 0;
};

}  // namespace sdj

#endif  // SDJOIN_QUADTREE_QUADTREE_H_
