// Lightweight invariant-checking macros.
//
// The library does not use exceptions (see DESIGN.md §7); internal invariant
// violations are programming errors and abort with a diagnostic instead.
// `SDJ_CHECK` is always on; `SDJ_DCHECK` compiles away in release builds.
#ifndef SDJOIN_UTIL_CHECK_H_
#define SDJOIN_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace sdj::internal {

// Prints a fatal-check diagnostic and aborts. Used only by the macros below.
[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "SDJ_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace sdj::internal

#define SDJ_CHECK(cond)                                     \
  do {                                                      \
    if (!(cond)) {                                          \
      ::sdj::internal::CheckFailed(#cond, __FILE__, __LINE__); \
    }                                                       \
  } while (0)

#ifdef NDEBUG
#define SDJ_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define SDJ_DCHECK(cond) SDJ_CHECK(cond)
#endif

#endif  // SDJOIN_UTIL_CHECK_H_
