// Persistent worker pool for the join engine's parallel expansion mode.
//
// The only primitive is ParallelFor, which splits an index range into one
// statically computed shard per thread: thread t of T owns exactly
// [t*n/T, (t+1)*n/T). The split depends only on (n, T), never on timing, so
// a caller that writes results into slot-indexed output arrays gets the
// same arrays for any interleaving — the foundation of the engine's
// determinism guarantee (DESIGN.md §10). The calling thread executes shard
// 0 itself; the pool's threads take the rest and the call returns only when
// every shard has finished (the completion handshake gives the caller a
// happens-before edge over all shard writes).
#ifndef SDJOIN_UTIL_THREAD_POOL_H_
#define SDJOIN_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.h"

namespace sdj::util {

class ThreadPool {
 public:
  // Spawns num_threads - 1 worker threads (the caller is the extra one).
  // num_threads >= 1; a pool of 1 runs everything inline.
  explicit ThreadPool(int num_threads) : num_threads_(num_threads) {
    SDJ_CHECK(num_threads >= 1);
    workers_.reserve(num_threads - 1);
    for (int t = 1; t < num_threads; ++t) {
      workers_.emplace_back([this, t] { WorkerLoop(t); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs fn(begin, end) over disjoint shards covering [0, n), one shard per
  // thread, and blocks until all of them are done. fn must be safe to call
  // concurrently on disjoint ranges. Not reentrant: fn must not call
  // ParallelFor on the same pool.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn) {
    if (n == 0) return;
    if (workers_.empty() || n < 2) {
      fn(0, n);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      SDJ_CHECK(pending_ == 0);  // reentrancy / overlapping calls
      work_fn_ = &fn;
      work_n_ = n;
      pending_ = static_cast<int>(workers_.size());
      ++generation_;
    }
    work_cv_.notify_all();
    RunShard(fn, n, 0);
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    work_fn_ = nullptr;
  }

 private:
  void RunShard(const std::function<void(size_t, size_t)>& fn, size_t n,
                int t) const {
    const size_t threads = workers_.size() + 1;
    const size_t begin = n * static_cast<size_t>(t) / threads;
    const size_t end = n * (static_cast<size_t>(t) + 1) / threads;
    if (begin < end) fn(begin, end);
  }

  void WorkerLoop(int t) {
    uint64_t seen = 0;
    for (;;) {
      const std::function<void(size_t, size_t)>* fn = nullptr;
      size_t n = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock,
                      [&] { return shutdown_ || generation_ != seen; });
        if (shutdown_) return;
        seen = generation_;
        fn = work_fn_;
        n = work_n_;
      }
      RunShard(*fn, n, t);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) done_cv_.notify_one();
      }
    }
  }

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  size_t work_n_ = 0;
  const std::function<void(size_t, size_t)>* work_fn_ = nullptr;
  int pending_ = 0;
  bool shutdown_ = false;
};

}  // namespace sdj::util

#endif  // SDJOIN_UTIL_THREAD_POOL_H_
