// Fixed-capacity bit string, the paper's representation of the reported-object
// set `S_o` (Section 3.2): O(1) membership tests and insertions, with storage
// proportional to the universe size rather than the set size.
#ifndef SDJOIN_UTIL_DYNAMIC_BITSET_H_
#define SDJOIN_UTIL_DYNAMIC_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace sdj {

// A bit string over the universe [0, size). All bits start unset.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(size_t size) : size_(size), words_((size + 63) / 64) {}

  // Number of addressable bits.
  size_t size() const { return size_; }

  // Grows (or shrinks) the universe; newly added bits are unset.
  void Resize(size_t size) {
    size_ = size;
    words_.resize((size + 63) / 64, 0);
    // Clear any bits beyond the new size in the last word.
    if (size % 64 != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << (size % 64)) - 1;
    }
  }

  // Returns true if bit `i` is set.
  bool Test(size_t i) const {
    SDJ_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  // Sets bit `i`.
  void Set(size_t i) {
    SDJ_DCHECK(i < size_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }

  // Clears bit `i`.
  void Reset(size_t i) {
    SDJ_DCHECK(i < size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  // Sets bit `i` and returns whether it was previously unset (i.e., whether
  // this call inserted a new member).
  bool TestAndSet(size_t i) {
    SDJ_DCHECK(i < size_);
    uint64_t& word = words_[i >> 6];
    const uint64_t mask = uint64_t{1} << (i & 63);
    const bool was_set = (word & mask) != 0;
    word |= mask;
    return !was_set;
  }

  // Number of set bits.
  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  // Clears all bits.
  void Clear() {
    for (uint64_t& w : words_) w = 0;
  }

  // Approximate heap footprint in bytes (the paper quotes 122K for 1M bits).
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  // Word-level access for serialization (DESIGN.md §11). Words are 64-bit
  // little-endian chunks of the bit string; word i holds bits [64i, 64i+64).
  size_t WordCount() const { return words_.size(); }
  uint64_t Word(size_t i) const {
    SDJ_DCHECK(i < words_.size());
    return words_[i];
  }
  void SetWord(size_t i, uint64_t word) {
    SDJ_DCHECK(i < words_.size());
    words_[i] = word;
  }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace sdj

#endif  // SDJOIN_UTIL_DYNAMIC_BITSET_H_
