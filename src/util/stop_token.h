// Cooperative cancellation with optional deadlines, for suspending the
// incremental join iterators at safe points (DESIGN.md §11).
//
// A StopSource owns the shared stop state; StopTokens are cheap copies
// handed to the iterators, which poll stop_requested() once per main-loop
// iteration (an "expansion boundary"). Polling at that granularity keeps the
// parallel engine output-identical to the serial one: workers never observe
// the token, only the serial merge loop does.
//
// A default-constructed StopToken has no state and never requests a stop, so
// queries that do not opt into suspension pay one null check per iteration.
#ifndef SDJOIN_UTIL_STOP_TOKEN_H_
#define SDJOIN_UTIL_STOP_TOKEN_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>

namespace sdj::util {

class StopSource;

// Observer half of a StopSource. Copyable; thread-safe.
class StopToken {
 public:
  StopToken() = default;

  // True if this token is connected to a StopSource at all.
  bool stop_possible() const { return state_ != nullptr; }

  // True once the source requested a stop or its deadline passed.
  bool stop_requested() const {
    if (state_ == nullptr) return false;
    if (state_->stopped.load(std::memory_order_relaxed)) return true;
    const int64_t deadline = state_->deadline_ns.load(std::memory_order_relaxed);
    if (deadline == kNoDeadline) return false;
    return NowNanos() >= deadline;
  }

 private:
  friend class StopSource;

  struct State {
    std::atomic<bool> stopped{false};
    std::atomic<int64_t> deadline_ns{kNoDeadline};
  };

  static constexpr int64_t kNoDeadline =
      std::numeric_limits<int64_t>::max();

  static int64_t NowNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  explicit StopToken(std::shared_ptr<const State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const State> state_;
};

// Owner half: requests stops and sets deadlines.
class StopSource {
 public:
  StopSource() : state_(std::make_shared<StopToken::State>()) {}

  StopToken token() const { return StopToken(state_); }

  void RequestStop() {
    state_->stopped.store(true, std::memory_order_relaxed);
  }

  // Stop once the (steady-clock) deadline passes.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    state_->deadline_ns.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count(),
        std::memory_order_relaxed);
  }

  template <typename Rep, typename Period>
  void SetDeadlineAfter(std::chrono::duration<Rep, Period> delay) {
    SetDeadline(std::chrono::steady_clock::now() + delay);
  }

  // Re-arms the source: clears the stop flag and the deadline, so a resumed
  // iterator does not immediately suspend again.
  void Clear() {
    state_->stopped.store(false, std::memory_order_relaxed);
    state_->deadline_ns.store(StopToken::kNoDeadline,
                              std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<StopToken::State> state_;
};

}  // namespace sdj::util

#endif  // SDJOIN_UTIL_STOP_TOKEN_H_
