// Deterministic pseudo-random number generator for workload generation and
// property tests.
//
// Uses xoshiro256** seeded through splitmix64 so that a single 64-bit seed
// reproduces an entire dataset across platforms and standard-library versions
// (std::mt19937 distributions are not bit-stable across implementations).
#ifndef SDJOIN_UTIL_RNG_H_
#define SDJOIN_UTIL_RNG_H_

#include <cmath>
#include <cstdint>

#include "util/check.h"

namespace sdj {

// Deterministic 64-bit PRNG (xoshiro256**). Not cryptographically secure.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the four state words.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  // Returns the next raw 64-bit value.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Returns a double uniformly distributed in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  // Returns a double uniformly distributed in [lo, hi).
  double Uniform(double lo, double hi) {
    SDJ_DCHECK(lo <= hi);
    return lo + (hi - lo) * NextDouble();
  }

  // Returns an integer uniformly distributed in [0, bound). `bound` > 0.
  uint64_t NextBounded(uint64_t bound) {
    SDJ_DCHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (~bound + 1) % bound;  // = 2^64 mod bound
    for (;;) {
      const uint64_t r = NextUint64();
      if (r >= threshold) return r % bound;
    }
  }

  // Returns a sample from N(mean, stddev^2) via the Box-Muller transform.
  double Gaussian(double mean, double stddev) {
    if (has_spare_) {
      has_spare_ = false;
      return mean + stddev * spare_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    // Guard against log(0).
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586476925286766559;
    spare_ = mag * std::sin(two_pi * u2);
    has_spare_ = true;
    return mean + stddev * mag * std::cos(two_pi * u2);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace sdj

#endif  // SDJOIN_UTIL_RNG_H_
