// Pairing heap: the in-memory priority-queue structure used by the paper
// (Section 3.2, citing Fredman et al. [13]).
//
// A min-heap over values of type T ordered by `Compare`. Supports O(1)
// insertion and melding, amortized O(log n) deletion, and handle-based
// erase/decrease-key — the estimator's `Q_M` (Section 2.2.4) needs to delete
// arbitrary elements located through a hash table, which std::priority_queue
// cannot do.
#ifndef SDJOIN_UTIL_PAIRING_HEAP_H_
#define SDJOIN_UTIL_PAIRING_HEAP_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "util/check.h"

namespace sdj {

// Min-heap; the element for which Compare orders before all others is at the
// top. Not copyable (owns its nodes); movable.
template <typename T, typename Compare = std::less<T>>
class PairingHeap {
 public:
  struct Node {
    explicit Node(T v) : value(std::move(v)) {}
    T value;
    Node* child = nullptr;    // leftmost child
    Node* sibling = nullptr;  // next sibling to the right
    Node* prev = nullptr;     // parent if leftmost child, else left sibling
  };
  // Opaque element handle, valid until the element is popped/erased or the
  // heap is cleared/destroyed.
  using Handle = Node*;

  PairingHeap() = default;
  explicit PairingHeap(Compare cmp) : cmp_(std::move(cmp)) {}
  ~PairingHeap() { Clear(); }

  PairingHeap(const PairingHeap&) = delete;
  PairingHeap& operator=(const PairingHeap&) = delete;
  PairingHeap(PairingHeap&& other) noexcept
      : cmp_(std::move(other.cmp_)),
        blocks_(std::move(other.blocks_)),
        free_nodes_(std::move(other.free_nodes_)),
        next_in_block_(other.next_in_block_),
        root_(other.root_),
        size_(other.size_) {
    other.next_in_block_ = 0;
    other.root_ = nullptr;
    other.size_ = 0;
  }
  PairingHeap& operator=(PairingHeap&& other) noexcept {
    if (this != &other) {
      Clear();
      cmp_ = std::move(other.cmp_);
      blocks_ = std::move(other.blocks_);
      free_nodes_ = std::move(other.free_nodes_);
      next_in_block_ = other.next_in_block_;
      root_ = other.root_;
      size_ = other.size_;
      other.next_in_block_ = 0;
      other.root_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  bool Empty() const { return root_ == nullptr; }
  size_t Size() const { return size_; }

  // Inserts `value`; returns a handle usable with Erase/DecreaseKey.
  Handle Push(T value) {
    Node* node = AllocNode(std::move(value));
    root_ = Meld(root_, node);
    ++size_;
    return node;
  }

  // Smallest element. Heap must be non-empty.
  const T& Top() const {
    SDJ_DCHECK(root_ != nullptr);
    return root_->value;
  }

  // Removes and returns the smallest element. Heap must be non-empty.
  T Pop() {
    SDJ_DCHECK(root_ != nullptr);
    Node* old_root = root_;
    root_ = CombineSiblings(old_root->child);
    if (root_ != nullptr) root_->prev = nullptr;
    T value = std::move(old_root->value);
    FreeNode(old_root);
    --size_;
    return value;
  }

  // Removes the element behind `handle` (which must be live in this heap).
  T Erase(Handle handle) {
    SDJ_DCHECK(handle != nullptr);
    if (handle == root_) return Pop();
    Detach(handle);
    Node* merged = CombineSiblings(handle->child);
    if (merged != nullptr) {
      merged->prev = nullptr;
      root_ = Meld(root_, merged);
    }
    T value = std::move(handle->value);
    FreeNode(handle);
    --size_;
    return value;
  }

  // Replaces the element behind `handle` with `value`, which must not order
  // after the current value (i.e., this is a decrease-key for min-heaps).
  void DecreaseKey(Handle handle, T value) {
    SDJ_DCHECK(handle != nullptr);
    SDJ_DCHECK(!cmp_(handle->value, value));
    handle->value = std::move(value);
    if (handle == root_) return;
    Detach(handle);
    handle->sibling = nullptr;
    root_ = Meld(root_, handle);
  }

  // Removes all elements.
  void Clear() {
    DeleteSubtree(root_);
    root_ = nullptr;
    size_ = 0;
  }

  // Visits every element in unspecified order (iterative, so degenerate
  // shapes cannot overflow the stack). The heap must not be mutated while
  // iterating. Used by snapshot serialization (DESIGN.md §11).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    std::vector<const Node*> stack;
    if (root_ != nullptr) stack.push_back(root_);
    while (!stack.empty()) {
      const Node* n = stack.back();
      stack.pop_back();
      fn(n->value);
      if (n->child != nullptr) stack.push_back(n->child);
      if (n->sibling != nullptr) stack.push_back(n->sibling);
    }
  }

 private:
  // The join pushes millions of entries per query; carving nodes out of
  // fixed-size blocks and recycling popped ones through a free list keeps
  // per-push cost at a bump allocation instead of a malloc round trip.
  // Handles stay stable because blocks never move.
  static constexpr size_t kNodesPerBlock = 1024;

  Node* AllocNode(T value) {
    if (!free_nodes_.empty()) {
      Node* node = free_nodes_.back();
      free_nodes_.pop_back();
      return new (node) Node(std::move(value));
    }
    if (blocks_.empty() || next_in_block_ == kNodesPerBlock) {
      // Not make_unique: that value-initializes (memsets) the whole block.
      blocks_.emplace_back(new std::byte[kNodesPerBlock * sizeof(Node)]);
      next_in_block_ = 0;
    }
    Node* slot = reinterpret_cast<Node*>(blocks_.back().get()) +
                 next_in_block_++;
    return new (slot) Node(std::move(value));
  }

  void FreeNode(Node* node) {
    node->~Node();
    free_nodes_.push_back(node);
  }

  // Links two heap roots; returns the resulting root. Either may be null.
  Node* Meld(Node* a, Node* b) {
    if (a == nullptr) return b;
    if (b == nullptr) return a;
    if (cmp_(b->value, a->value)) std::swap(a, b);
    // b becomes the leftmost child of a.
    b->prev = a;
    b->sibling = a->child;
    if (a->child != nullptr) a->child->prev = b;
    a->child = b;
    a->sibling = nullptr;
    a->prev = nullptr;
    return a;
  }

  // Unlinks `node` (a non-root) from its parent/sibling list.
  void Detach(Node* node) {
    SDJ_DCHECK(node->prev != nullptr);
    if (node->prev->child == node) {
      node->prev->child = node->sibling;
    } else {
      node->prev->sibling = node->sibling;
    }
    if (node->sibling != nullptr) node->sibling->prev = node->prev;
    node->prev = nullptr;
    node->sibling = nullptr;
  }

  // The classic two-pass pairing: meld siblings left-to-right in pairs, then
  // meld the pair roots right-to-left.
  Node* CombineSiblings(Node* first) {
    if (first == nullptr) return nullptr;
    std::vector<Node*> pairs;
    while (first != nullptr) {
      Node* a = first;
      Node* b = first->sibling;
      first = (b != nullptr) ? b->sibling : nullptr;
      a->sibling = nullptr;
      a->prev = nullptr;
      if (b != nullptr) {
        b->sibling = nullptr;
        b->prev = nullptr;
      }
      pairs.push_back(Meld(a, b));
    }
    Node* result = pairs.back();
    for (size_t i = pairs.size() - 1; i-- > 0;) {
      result = Meld(pairs[i], result);
    }
    return result;
  }

  void DeleteSubtree(Node* node) {
    // Iterative deletion to avoid deep recursion on degenerate shapes.
    std::vector<Node*> stack;
    if (node != nullptr) stack.push_back(node);
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      if (n->child != nullptr) stack.push_back(n->child);
      if (n->sibling != nullptr) stack.push_back(n->sibling);
      FreeNode(n);
    }
  }

  static_assert(alignof(Node) <= alignof(std::max_align_t),
                "block storage relies on default new alignment");

  Compare cmp_;
  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  std::vector<Node*> free_nodes_;
  size_t next_in_block_ = 0;
  Node* root_ = nullptr;
  size_t size_ = 0;
};

}  // namespace sdj

#endif  // SDJOIN_UTIL_PAIRING_HEAP_H_
