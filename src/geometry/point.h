// D-dimensional point type used by all spatial components.
#ifndef SDJOIN_GEOMETRY_POINT_H_
#define SDJOIN_GEOMETRY_POINT_H_

#include <array>
#include <cstddef>
#include <initializer_list>
#include <string>

#include "util/check.h"

namespace sdj {

// A point in Dim-dimensional Euclidean space with double coordinates.
// A passive value type: all members public, freely copyable.
template <int Dim>
struct Point {
  static_assert(Dim >= 1, "Point dimension must be positive");

  std::array<double, Dim> coords{};

  Point() = default;
  // Constructs a point from exactly Dim coordinates.
  Point(std::initializer_list<double> values) {
    SDJ_CHECK(values.size() == static_cast<size_t>(Dim));
    int i = 0;
    for (double v : values) coords[i++] = v;
  }

  double& operator[](int i) { return coords[i]; }
  double operator[](int i) const { return coords[i]; }

  friend bool operator==(const Point& a, const Point& b) {
    return a.coords == b.coords;
  }

  // Human-readable rendering, e.g. "(1.5, 2)". For logs and test output.
  std::string ToString() const {
    std::string out = "(";
    for (int i = 0; i < Dim; ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(coords[i]);
    }
    out += ")";
    return out;
  }
};

using Point2 = Point<2>;
using Point3 = Point<3>;

}  // namespace sdj

#endif  // SDJOIN_GEOMETRY_POINT_H_
