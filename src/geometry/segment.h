// Line segments and exact Euclidean segment distances.
//
// The paper's experiments use point data and defer "more complex spatial
// features (lines, polygons)" to future work (Sections 3.1, 5). The
// incremental join already supports them through the object-bounding-
// rectangle mode (Figure 3, lines 7-14): index the segment MBRs and supply
// the exact segment distance as the `exact_object_distance` callback. This
// header provides that geometry.
//
// Distances are Euclidean only — the closest-point parametrization below is
// specific to the L2 inner product.
#ifndef SDJOIN_GEOMETRY_SEGMENT_H_
#define SDJOIN_GEOMETRY_SEGMENT_H_

#include <algorithm>
#include <cmath>

#include "geometry/distance.h"
#include "geometry/point.h"
#include "geometry/rect.h"

namespace sdj {

// A line segment between two endpoints. Degenerate (a == b) is allowed and
// behaves like a point.
template <int Dim>
struct Segment {
  Point<Dim> a;
  Point<Dim> b;

  // Minimal bounding rectangle — the leaf key for obr-mode indexing.
  Rect<Dim> Mbr() const {
    Rect<Dim> r = Rect<Dim>::FromPoint(a);
    r.ExpandToInclude(b);
    return r;
  }
};

namespace segment_internal {

template <int Dim>
double DotDelta(const Point<Dim>& u1, const Point<Dim>& u0,
                const Point<Dim>& v1, const Point<Dim>& v0) {
  double dot = 0.0;
  for (int i = 0; i < Dim; ++i) {
    dot += (u1[i] - u0[i]) * (v1[i] - v0[i]);
  }
  return dot;
}

// Point at parameter t along s.
template <int Dim>
Point<Dim> Lerp(const Segment<Dim>& s, double t) {
  Point<Dim> p;
  for (int i = 0; i < Dim; ++i) {
    p[i] = s.a[i] + t * (s.b[i] - s.a[i]);
  }
  return p;
}

}  // namespace segment_internal

// Euclidean distance from `p` to the nearest point of segment `s`.
template <int Dim>
double Dist(const Point<Dim>& p, const Segment<Dim>& s) {
  using segment_internal::DotDelta;
  const double len_sq = DotDelta(s.b, s.a, s.b, s.a);
  if (len_sq <= 0.0) return Dist(p, s.a);
  const double t =
      std::clamp(DotDelta(p, s.a, s.b, s.a) / len_sq, 0.0, 1.0);
  return Dist(p, segment_internal::Lerp(s, t));
}

// Euclidean distance between the closest points of two segments (0 when they
// intersect). The standard clamped-parametric construction, valid in any
// dimension.
template <int Dim>
double Dist(const Segment<Dim>& s1, const Segment<Dim>& s2) {
  using segment_internal::DotDelta;
  const double a = DotDelta(s1.b, s1.a, s1.b, s1.a);  // |d1|^2
  const double e = DotDelta(s2.b, s2.a, s2.b, s2.a);  // |d2|^2
  const double f = DotDelta(s2.b, s2.a, s1.a, s2.a);  // d2 . (p1 - p2)
  if (a <= 0.0 && e <= 0.0) return Dist(s1.a, s2.a);
  if (a <= 0.0) return Dist(s1.a, s2);
  if (e <= 0.0) return Dist(s2.a, s1);

  const double b = DotDelta(s1.b, s1.a, s2.b, s2.a);  // d1 . d2
  const double c = DotDelta(s1.b, s1.a, s1.a, s2.a);  // d1 . (p1 - p2)
  const double denom = a * e - b * b;

  // Closest point on the infinite line of s1 to line of s2 (0 if parallel).
  double s = 0.0;
  if (denom > 0.0) {
    s = std::clamp((b * f - c * e) / denom, 0.0, 1.0);
  }
  double t = (b * s + f) / e;
  // Clamp t, then recompute s for the clamped t.
  if (t < 0.0) {
    t = 0.0;
    s = std::clamp(-c / a, 0.0, 1.0);
  } else if (t > 1.0) {
    t = 1.0;
    s = std::clamp((b - c) / a, 0.0, 1.0);
  }
  return Dist(segment_internal::Lerp(s1, s), segment_internal::Lerp(s2, t));
}

}  // namespace sdj

#endif  // SDJOIN_GEOMETRY_SEGMENT_H_
