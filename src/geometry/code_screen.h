// Integer-domain candidate screening over quantized node codes
// (DESIGN.md §17).
//
// A quantized R-tree page (rtree/node_layout.h) stores entry MBRs as u16
// codes over a per-node grid: coord = base[d] + code * scale[d]. Before
// decoding a page's entries to doubles, the engines can screen them against
// the current query rectangle and distance cutoff entirely in u16
// arithmetic: encode the query once per visited node with INWARD rounding
// (largest code decoding <= query.lo, smallest code decoding >= query.hi),
// so any code-space gap between an entry and the query UNDERestimates the
// real separation; convert the cutoff into a per-dimension code-gap
// threshold with an error margin wide enough that a screened-out entry's
// decoded rect is guaranteed to compute MinDist > cutoff in the exact f64
// kernels. Screening therefore only ever removes entries the classify
// ladder would discard as out-of-range anyway — the surviving pair stream
// is byte-identical with screening on or off, which is what lets the
// engines keep the bit-exactness contract while skipping the f64 decode
// for the losers.
//
// The threshold is metric-independent: for L1, L2, and L-infinity alike, a
// single dimension's separation is a lower bound on MINDIST, so "some
// dimension's code gap exceeds its threshold" implies the pair is out of
// range under any of the three metrics.
//
// The batch kernel is pure integer (saturating u16 subtract + compare), so
// every ISA path is trivially bit-identical; the per-ISA lockstep tests in
// tests/geometry_distance_test.cc assert it anyway. The 512-bit path needs
// AVX512BW (u16 lanes); on AVX512F-only hardware it drops to the AVX2 path.
#ifndef SDJOIN_GEOMETRY_CODE_SCREEN_H_
#define SDJOIN_GEOMETRY_CODE_SCREEN_H_

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "geometry/metrics.h"
#include "geometry/rect.h"
#include "geometry/simd.h"

namespace sdj::code_screen {

inline constexpr uint16_t kMaxCode = 65535;

// Process-wide default for the engines' screen_codes option: SDJ_SCREEN=off
// (or =0) disables screening, anything else — including unset — enables it.
// Read once, like simd::DefaultIsa's SDJ_KERNEL.
inline bool DefaultEnabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("SDJ_SCREEN");
    return v == nullptr ||
           (std::strcmp(v, "off") != 0 && std::strcmp(v, "0") != 0);
  }();
  return enabled;
}

// Per-node screening state: the inward-rounded query codes and per-dim
// code-gap thresholds, valid for one (grid, query, cutoff) triple. A
// dimension that cannot prune (zero/degenerate scale, cutoff too large for
// the grid's resolution) carries the sentinel triple qlo=0 / qhi=kMaxCode /
// threshold=kMaxCode, which makes both saturating gaps compare <= threshold
// for every entry. `active` is false when every dimension is a sentinel —
// callers should then skip screening and decode everything.
template <int Dim>
struct ScreenQuery {
  bool active = false;
  uint16_t qlo[Dim];        // largest code with decode <= query.lo (else 0)
  uint16_t qhi[Dim];        // smallest code with decode >= query.hi
                            // (else kMaxCode)
  uint16_t threshold[Dim];  // prune iff some code gap > threshold
  double eff[Dim];          // error-padded step size, for CodeMinDistLB
};

namespace screen_internal {

inline uint16_t SatSub(uint16_t a, uint16_t b) {
  return a > b ? static_cast<uint16_t>(a - b) : static_cast<uint16_t>(0);
}

inline double DecodeAt(double base, double scale, uint32_t code) {
  return base + code * scale;
}

// Largest code whose decode is <= x, or 0 when none qualifies (base > x).
// 0 doubles as the never-prunes sentinel: the below-query gap
// SatSub(qlo, entry_hi) is then always 0. Same estimate-plus-ulp-walk shape
// as node_layout.h's EncodeLo, but with no precondition on x (the query
// rect may lie anywhere relative to the node's grid).
inline uint16_t CodeAtMost(double base, double scale, double x) {
  if (!(x >= base)) return 0;
  double est = (x - base) / scale;
  if (!(est >= 0.0)) est = 0.0;
  if (est > kMaxCode) est = kMaxCode;
  uint32_t q = static_cast<uint32_t>(est);
  while (q > 0 && DecodeAt(base, scale, q) > x) --q;
  while (q < kMaxCode && DecodeAt(base, scale, q + 1) <= x) ++q;
  return static_cast<uint16_t>(q);
}

// Smallest code whose decode is >= x, or kMaxCode when none qualifies
// (x above the grid span). kMaxCode doubles as the never-prunes sentinel:
// the above-query gap SatSub(entry_lo, qhi) is then always 0.
inline uint16_t CodeAtLeast(double base, double scale, double x) {
  if (!(x <= DecodeAt(base, scale, kMaxCode))) return kMaxCode;
  double est = (x - base) / scale;
  if (!(est >= 0.0)) est = 0.0;
  if (est > kMaxCode) est = kMaxCode;
  uint32_t q = static_cast<uint32_t>(est);
  while (q < kMaxCode && DecodeAt(base, scale, q) < x) ++q;
  while (q > 0 && DecodeAt(base, scale, q - 1) >= x) --q;
  return static_cast<uint16_t>(q);
}

}  // namespace screen_internal

// Builds the screening state for one visited node. `base`/`scale` are the
// node grid's Dim-sized arrays; `max_distance` is the engine's current
// range cutoff (pairs with MinDist > max_distance are discarded).
//
// Soundness margin: decoding code c computes fl(base + fl(c * scale)),
// whose absolute error is < (|base| + kMaxCode*scale) * 2^-51. A code gap
// of g between inward-rounded query codes and an entry's codes therefore
// guarantees a real separation >= g*scale - 2*err with
// err = (|base| + kMaxCode*scale) * 2^-50 (double the bound, for slack).
// We fold that into an effective step eff = scale - 2*err, walk it two ulps
// down for the rounding of that very expression, and shave a relative
// 2^-40 margin so that the exact kernels' own rounding (a subtraction plus
// the metric combine, a few ulps) can never pull a computed MinDist back
// under the cutoff: gap > threshold >= max_distance / eff_final implies
// the f64 kernels compute MinDist(decoded entry, query) > max_distance.
template <int Dim>
void Prepare(const double* base, const double* scale, const Rect<Dim>& query,
             double max_distance, ScreenQuery<Dim>* out) {
  out->active = false;
  for (int d = 0; d < Dim; ++d) {
    out->qlo[d] = 0;
    out->qhi[d] = kMaxCode;
    out->threshold[d] = kMaxCode;
    out->eff[d] = 0.0;
    const double s = scale[d];
    if (!(s > 0.0) || !std::isfinite(s) || !std::isfinite(base[d])) continue;
    const double mag = std::abs(base[d]) + static_cast<double>(kMaxCode) * s;
    const double err = mag * 0x1p-50;
    double eff = s - 2.0 * err;
    eff = std::nextafter(eff, 0.0);
    eff = std::nextafter(eff, 0.0);
    if (!(eff > 0.0)) continue;  // grid too coarse-grained to pad: no pruning
    const double eff_final = eff * (1.0 - 0x1p-40);
    double ratio = max_distance / eff_final;
    if (!(ratio >= 0.0)) ratio = 0.0;  // negative cutoff: everything is far
    // A code gap never exceeds kMaxCode, so a threshold that large can
    // never fire; leave the sentinel (also covers an infinite cutoff).
    if (!(ratio < 65534.0)) continue;
    out->qlo[d] = screen_internal::CodeAtMost(base[d], s, query.lo[d]);
    out->qhi[d] = screen_internal::CodeAtLeast(base[d], s, query.hi[d]);
    out->threshold[d] = static_cast<uint16_t>(static_cast<uint32_t>(ratio) + 1);
    out->eff[d] = eff_final;
    out->active = true;
  }
}

// Scalar screening oracle: true iff the entry is provably out of range.
// `codes` is one entry's 2*Dim codes in page order (lo codes then hi
// codes). At most one of the two gaps per dimension is nonzero.
template <int Dim>
inline bool ScreenOne(const ScreenQuery<Dim>& q, const uint16_t* codes) {
  for (int d = 0; d < Dim; ++d) {
    if (screen_internal::SatSub(codes[d], q.qhi[d]) > q.threshold[d]) {
      return true;  // entry lies above the query in dimension d
    }
    if (screen_internal::SatSub(q.qlo[d], codes[Dim + d]) > q.threshold[d]) {
      return true;  // entry lies below the query in dimension d
    }
  }
  return false;
}

// f64 lower bound on what the exact kernels will compute for the decoded
// entry: per-dimension delta = one-ulp-down(gap * eff), combined with
// exactly the metric fold the kernels use (monotone in each delta), so
// CodeMinDistLB <= MinDist(decoded entry, query) holds bit-for-bit. The
// engines never call this — they compare integer gaps against thresholds —
// but the missed-candidate property test pins the bound itself.
template <int Dim>
double CodeMinDistLB(const ScreenQuery<Dim>& q, const uint16_t* codes,
                     Metric metric) {
  double acc = 0.0;
  for (int d = 0; d < Dim; ++d) {
    const uint16_t above = screen_internal::SatSub(codes[d], q.qhi[d]);
    const uint16_t below = screen_internal::SatSub(q.qlo[d], codes[Dim + d]);
    const uint16_t gap = above > below ? above : below;
    double delta = static_cast<double>(gap) * q.eff[d];
    delta = std::nextafter(delta, 0.0);
    if (!(delta > 0.0)) delta = 0.0;
    acc = metric_internal::Accumulate(metric, acc, delta);
  }
  return metric_internal::Finish(metric, acc);
}

namespace screen_internal {

// Broadcasts the query's per-dimension constants across a vector register's
// u16 lanes, one 2*Dim-lane group per entry, matching the page's code
// layout [lo codes | hi codes]. Lane l of entry group:
//   l <  Dim (a lo code):  above-gap side — sub = qhi[l],  other side dead
//   l >= Dim (a hi code):  below-gap side — rsub = qlo[l-Dim], other dead
// "Dead" sides use 0xFFFF / 0 so their saturating subtraction is always 0.
template <int Dim>
inline void FillPatterns(const ScreenQuery<Dim>& q, int lanes, uint16_t* sub,
                         uint16_t* rsub, uint16_t* thr) {
  for (int l = 0; l < lanes; ++l) {
    const int j = l % (2 * Dim);
    if (j < Dim) {
      sub[l] = q.qhi[j];
      rsub[l] = 0;
      thr[l] = q.threshold[j];
    } else {
      sub[l] = 0xFFFF;
      rsub[l] = q.qlo[j - Dim];
      thr[l] = q.threshold[j - Dim];
    }
  }
}

template <int Dim>
void ScreenBatchScalar(const ScreenQuery<Dim>& q, const uint16_t* codes,
                       size_t n, uint8_t* pruned) {
  for (size_t i = 0; i < n; ++i) {
    pruned[i] = ScreenOne(q, codes + i * 2 * Dim) ? 1 : 0;
  }
}

#if SDJ_SIMD_X86

// The vector paths evaluate both gap tests for all lanes at once:
//   above = satsub(satsub(codes, sub), thr)
//   below = satsub(satsub(rsub, codes), thr)
// and an entry is pruned iff any lane of its group has (above|below) != 0 —
// exactly ScreenOne, which the tail and the non-dividing-Dim fallbacks run
// directly. A vector handles a whole number of entries only when its lane
// count is divisible by 2*Dim (Dim=3 never divides; it stays scalar).

template <int Dim>
void ScreenBatchSse2(const ScreenQuery<Dim>& q, const uint16_t* codes,
                     size_t n, uint8_t* pruned) {
  constexpr int kGroup = 2 * Dim;
  if constexpr (8 % kGroup != 0) {
    ScreenBatchScalar(q, codes, n, pruned);
  } else {
    constexpr int kPer = 8 / kGroup;
    constexpr int kBits = 2 * kGroup;  // movemask_epi8: 2 bits per u16 lane
    alignas(16) uint16_t psub[8];
    alignas(16) uint16_t prsub[8];
    alignas(16) uint16_t pthr[8];
    FillPatterns(q, 8, psub, prsub, pthr);
    const __m128i vsub =
        _mm_load_si128(reinterpret_cast<const __m128i*>(psub));
    const __m128i vrsub =
        _mm_load_si128(reinterpret_cast<const __m128i*>(prsub));
    const __m128i vthr =
        _mm_load_si128(reinterpret_cast<const __m128i*>(pthr));
    size_t i = 0;
    for (; i + kPer <= n; i += kPer) {
      const __m128i e = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(codes + i * kGroup));
      const __m128i above =
          _mm_subs_epu16(_mm_subs_epu16(e, vsub), vthr);
      const __m128i below =
          _mm_subs_epu16(_mm_subs_epu16(vrsub, e), vthr);
      const int zeros = _mm_movemask_epi8(_mm_cmpeq_epi16(
          _mm_or_si128(above, below), _mm_setzero_si128()));
      for (int g = 0; g < kPer; ++g) {
        const int group = (zeros >> (g * kBits)) & ((1 << kBits) - 1);
        pruned[i + g] = group != (1 << kBits) - 1 ? 1 : 0;
      }
    }
    for (; i < n; ++i) {
      pruned[i] = ScreenOne(q, codes + i * kGroup) ? 1 : 0;
    }
  }
}

#if SDJ_SIMD_WIDE

template <int Dim>
SDJ_TARGET_AVX2 void ScreenBatchAvx2(const ScreenQuery<Dim>& q,
                                     const uint16_t* codes, size_t n,
                                     uint8_t* pruned) {
  constexpr int kGroup = 2 * Dim;
  if constexpr (16 % kGroup != 0) {
    ScreenBatchSse2(q, codes, n, pruned);
  } else {
    constexpr int kPer = 16 / kGroup;
    constexpr int kBits = 2 * kGroup;
    alignas(32) uint16_t psub[16];
    alignas(32) uint16_t prsub[16];
    alignas(32) uint16_t pthr[16];
    FillPatterns(q, 16, psub, prsub, pthr);
    const __m256i vsub =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(psub));
    const __m256i vrsub =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(prsub));
    const __m256i vthr =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(pthr));
    size_t i = 0;
    for (; i + kPer <= n; i += kPer) {
      const __m256i e = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(codes + i * kGroup));
      const __m256i above =
          _mm256_subs_epu16(_mm256_subs_epu16(e, vsub), vthr);
      const __m256i below =
          _mm256_subs_epu16(_mm256_subs_epu16(vrsub, e), vthr);
      const uint32_t zeros =
          static_cast<uint32_t>(_mm256_movemask_epi8(_mm256_cmpeq_epi16(
              _mm256_or_si256(above, below), _mm256_setzero_si256())));
      for (int g = 0; g < kPer; ++g) {
        const uint32_t group = (zeros >> (g * kBits)) & ((1u << kBits) - 1);
        pruned[i + g] = group != (1u << kBits) - 1 ? 1 : 0;
      }
    }
    for (; i < n; ++i) {
      pruned[i] = ScreenOne(q, codes + i * kGroup) ? 1 : 0;
    }
  }
}

template <int Dim>
SDJ_TARGET_AVX512BW void ScreenBatchAvx512(const ScreenQuery<Dim>& q,
                                           const uint16_t* codes, size_t n,
                                           uint8_t* pruned) {
  constexpr int kGroup = 2 * Dim;
  if constexpr (32 % kGroup != 0) {
    ScreenBatchAvx2(q, codes, n, pruned);
  } else {
    constexpr int kPer = 32 / kGroup;
    alignas(64) uint16_t psub[32];
    alignas(64) uint16_t prsub[32];
    alignas(64) uint16_t pthr[32];
    FillPatterns(q, 32, psub, prsub, pthr);
    const __m512i vsub = _mm512_load_si512(psub);
    const __m512i vrsub = _mm512_load_si512(prsub);
    const __m512i vthr = _mm512_load_si512(pthr);
    size_t i = 0;
    for (; i + kPer <= n; i += kPer) {
      const __m512i e = _mm512_loadu_si512(codes + i * kGroup);
      const __m512i above =
          _mm512_subs_epu16(_mm512_subs_epu16(e, vsub), vthr);
      const __m512i below =
          _mm512_subs_epu16(_mm512_subs_epu16(vrsub, e), vthr);
      const __m512i any = _mm512_or_si512(above, below);
      const uint32_t nonzero =
          static_cast<uint32_t>(_mm512_test_epi16_mask(any, any));
      for (int g = 0; g < kPer; ++g) {
        const uint32_t group =
            (nonzero >> (g * kGroup)) & ((1u << kGroup) - 1);
        pruned[i + g] = group != 0 ? 1 : 0;
      }
    }
    for (; i < n; ++i) {
      pruned[i] = ScreenOne(q, codes + i * kGroup) ? 1 : 0;
    }
  }
}

#endif  // SDJ_SIMD_WIDE
#endif  // SDJ_SIMD_X86

}  // namespace screen_internal

// Screens a whole page's worth of entry codes (contiguous, 2*Dim codes per
// entry in page order — QuantizedNodeLayout::CopyCodes) against the
// prepared query. Writes pruned[i] = 1 for entries provably out of range,
// 0 for survivors. Every ISA path produces identical bytes (pure integer
// arithmetic); `isa` follows the same request/clamp semantics as the f64
// kernels in rect_batch.h. AVX-512 additionally requires AVX512BW for the
// u16 lanes and otherwise runs the AVX2 path.
template <int Dim>
void ScreenCodesBatch(const ScreenQuery<Dim>& q, const uint16_t* codes,
                      size_t n, uint8_t* pruned,
                      simd::Isa isa = simd::Isa::kAuto) {
  switch (simd::Resolve(isa)) {
#if SDJ_SIMD_WIDE
    case simd::Isa::kAvx512:
      if (simd::Avx512BwSupported()) {
        screen_internal::ScreenBatchAvx512(q, codes, n, pruned);
      } else {
        screen_internal::ScreenBatchAvx2(q, codes, n, pruned);
      }
      return;
    case simd::Isa::kAvx2:
      screen_internal::ScreenBatchAvx2(q, codes, n, pruned);
      return;
#endif
#if SDJ_SIMD_X86
    case simd::Isa::kSse2:
      screen_internal::ScreenBatchSse2(q, codes, n, pruned);
      return;
#endif
    default:
      screen_internal::ScreenBatchScalar(q, codes, n, pruned);
      return;
  }
}

// Reusable per-engine buffers for one screened decode: the prepared query,
// the copied-out entry codes, and the per-entry prune bytes. Owned by the
// best-first core so node visits don't allocate.
template <int Dim>
struct ScreenScratch {
  ScreenQuery<Dim> query;
  std::vector<uint16_t> codes;
  std::vector<uint8_t> pruned;
};

}  // namespace sdj::code_screen

#endif  // SDJOIN_GEOMETRY_CODE_SCREEN_H_
