// Portable SIMD lane wrappers and runtime CPU-feature dispatch for the
// batched distance kernels (geometry/rect_batch.h).
//
// Four lane types share one interface: ScalarOps (1 lane, plain double —
// the always-available fallback and the oracle), Sse2Ops (2 lanes, baseline
// x86-64), Avx2Ops (4 lanes), Avx512Ops (8 lanes). The wide types are
// compiled with per-function target attributes, so one translation unit
// carries every path and the choice is made at run time (DetectIsa), once,
// overridable per engine (DistanceJoinOptions::kernel_isa), per process
// (SDJ_KERNEL=scalar|sse2|avx2|avx512), or per CLI run (--kernel=).
//
// BIT-EXACTNESS CONTRACT. Every op must produce, lane for lane, the exact
// bits of the scalar expression it replaces — including NaN propagation,
// signed zeros, infinities, and denormals — because the engine's scalar/batch
// bit-identity contract (rect_batch.h) now extends across ISAs. The
// non-obvious mappings, relied on throughout:
//
//   * std::max(a, b) is (a < b) ? b : a — it returns its FIRST argument on
//     ties (±0.0) and whenever the comparison is false because of a NaN.
//     x86 maxpd/vmaxpd return their SECOND source operand in exactly those
//     cases, so Max(a, b) lowers to maxpd(b, a) — operands swapped.
//   * std::min(a, b) is (b < a) ? b : a — same first-argument rule, so
//     Min(a, b) lowers to minpd(b, a).
//   * std::abs(double) clears the sign bit and nothing else (NaN payloads
//     survive); Abs is an andnot with the sign mask, not a compare.
//   * sqrtpd/vsqrtpd are correctly rounded, as std::sqrt is on x86-64; both
//     quiet an input NaN without changing its payload.
//   * Comparisons use ordered, non-signaling predicates (LT_OQ/LE_OQ):
//     false on NaN, matching the scalar < and <=. Blend requires an
//     all-ones/all-zeros mask and selects whole lanes, never computing.
//
// Scalar doubles on x86-64 already run through SSE2 under the same MXCSR
// (rounding mode, denormal handling), so there is no x87 excess-precision
// hazard. FMA contraction would break bit-identity (the baseline build has
// no FMA, so the scalar oracle has none); the wide paths use explicit
// mul/add intrinsics and their target attributes do not enable FMA.
#ifndef SDJOIN_GEOMETRY_SIMD_H_
#define SDJOIN_GEOMETRY_SIMD_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#define SDJ_SIMD_X86 1
#include <immintrin.h>
#else
#define SDJ_SIMD_X86 0
#endif

// The 256/512-bit paths need per-function target attributes so a baseline
// build can still carry them; GCC and Clang both support the attribute on
// (member) function templates.
#if SDJ_SIMD_X86 && defined(__GNUC__)
#define SDJ_SIMD_WIDE 1
#define SDJ_TARGET_AVX2 __attribute__((target("avx2")))
#define SDJ_TARGET_AVX512 __attribute__((target("avx512f")))
// 512-bit integer (u16) lanes need AVX512BW on top of AVX512F; the code
// screening kernels (geometry/code_screen.h) are the only users.
#define SDJ_TARGET_AVX512BW __attribute__((target("avx512f,avx512bw")))
#else
#define SDJ_SIMD_WIDE 0
#define SDJ_TARGET_AVX2
#define SDJ_TARGET_AVX512
#define SDJ_TARGET_AVX512BW
#endif

#if defined(__GNUC__)
#define SDJ_SIMD_INLINE inline __attribute__((always_inline))
#else
#define SDJ_SIMD_INLINE inline
#endif

namespace sdj::simd {

// Which kernel implementation to run. kAuto defers to DefaultIsa() — the
// best ISA the CPU supports, unless the SDJ_KERNEL environment variable
// pins something else. Explicit requests degrade to the nearest supported
// path at or below the request (never silently upgrade).
enum class Isa : uint8_t {
  kAuto = 0,
  kScalar = 1,
  kSse2 = 2,
  kAvx2 = 3,
  kAvx512 = 4,
};

inline const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kAuto:
      return "auto";
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

// Parses "auto", "scalar", "sse2", "avx2", "avx512". Returns false (leaving
// *out untouched) on anything else.
inline bool ParseIsa(const char* s, Isa* out) {
  if (s == nullptr) return false;
  for (Isa isa : {Isa::kAuto, Isa::kScalar, Isa::kSse2, Isa::kAvx2,
                  Isa::kAvx512}) {
    if (std::strcmp(s, IsaName(isa)) == 0) {
      *out = isa;
      return true;
    }
  }
  return false;
}

// Whether this binary contains a code path for `isa` at all.
inline bool Compiled(Isa isa) {
  switch (isa) {
    case Isa::kAuto:
    case Isa::kScalar:
      return true;
    case Isa::kSse2:
      return SDJ_SIMD_X86 != 0;
    case Isa::kAvx2:
    case Isa::kAvx512:
      return SDJ_SIMD_WIDE != 0;
  }
  return false;
}

// Whether the running CPU (and OS, via xsave state) can execute `isa`.
inline bool RuntimeSupported(Isa isa) {
  switch (isa) {
    case Isa::kAuto:
    case Isa::kScalar:
      return true;
    case Isa::kSse2:
      return SDJ_SIMD_X86 != 0;  // baseline x86-64
    case Isa::kAvx2:
#if SDJ_SIMD_X86 && defined(__GNUC__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Isa::kAvx512:
#if SDJ_SIMD_X86 && defined(__GNUC__)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

inline bool Supported(Isa isa) {
  return Compiled(isa) && RuntimeSupported(isa);
}

// Whether the 512-bit u16 integer path (AVX512BW) can run. Kept separate
// from RuntimeSupported(kAvx512), which gates the f64 kernels on AVX512F
// alone: a hypothetical F-without-BW machine still runs the double kernels
// 512 bits wide while the integer screening kernels drop to the AVX2 path
// (bit-identical output either way, screening is pure integer).
inline bool Avx512BwSupported() {
#if SDJ_SIMD_WIDE
  static const bool ok = __builtin_cpu_supports("avx512bw") != 0;
  return ok;
#else
  return false;
#endif
}

// Degrades an explicit request to the nearest supported ISA at or below it.
inline Isa Clamp(Isa isa) {
  static constexpr Isa kOrder[] = {Isa::kAvx512, Isa::kAvx2, Isa::kSse2,
                                   Isa::kScalar};
  bool at_or_below = false;
  for (Isa candidate : kOrder) {
    if (candidate == isa) at_or_below = true;
    if (at_or_below && Supported(candidate)) return candidate;
  }
  return Isa::kScalar;
}

// Best ISA the hardware supports (no environment override).
inline Isa DetectIsa() { return Clamp(Isa::kAvx512); }

// Process-wide dispatch choice: DetectIsa(), unless SDJ_KERNEL names a
// parseable ISA (then that, clamped to what is supported). Detected once.
inline Isa DefaultIsa() {
  static const Isa isa = [] {
    Isa requested = Isa::kAuto;
    if (ParseIsa(std::getenv("SDJ_KERNEL"), &requested) &&
        requested != Isa::kAuto) {
      return Clamp(requested);
    }
    return DetectIsa();
  }();
  return isa;
}

// Maps a per-engine request to the path that will actually run.
inline Isa Resolve(Isa isa) {
  if (isa == Isa::kAuto) return DefaultIsa();
  return Clamp(isa);
}

// Every ISA this binary can run here and now, scalar first. Tests iterate
// this to lockstep-check each compiled path against the scalar oracle.
inline std::vector<Isa> SupportedIsas() {
  std::vector<Isa> isas;
  for (Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2, Isa::kAvx512}) {
    if (Supported(isa)) isas.push_back(isa);
  }
  return isas;
}

// ---- lane types ----

// 1-lane reference implementation. The generic kernels instantiated with
// ScalarOps are the oracle: they must compute exactly what the pre-SIMD
// scalar loops computed.
struct ScalarOps {
  static constexpr int kLanes = 1;
  using V = double;
  using M = bool;
  static SDJ_SIMD_INLINE V Load(const double* p) { return *p; }
  static SDJ_SIMD_INLINE void Store(double* p, V v) { *p = v; }
  static SDJ_SIMD_INLINE V Set(double x) { return x; }
  static SDJ_SIMD_INLINE V Zero() { return 0.0; }
  static SDJ_SIMD_INLINE V Add(V a, V b) { return a + b; }
  static SDJ_SIMD_INLINE V Sub(V a, V b) { return a - b; }
  static SDJ_SIMD_INLINE V Mul(V a, V b) { return a * b; }
  static SDJ_SIMD_INLINE V Min(V a, V b) { return std::min(a, b); }
  static SDJ_SIMD_INLINE V Max(V a, V b) { return std::max(a, b); }
  static SDJ_SIMD_INLINE V Abs(V a) { return std::abs(a); }
  static SDJ_SIMD_INLINE V Sqrt(V a) { return std::sqrt(a); }
  static SDJ_SIMD_INLINE M CmpLt(V a, V b) { return a < b; }
  static SDJ_SIMD_INLINE M CmpLe(V a, V b) { return a <= b; }
  static SDJ_SIMD_INLINE M MaskAnd(M a, M b) { return a && b; }
  static SDJ_SIMD_INLINE V Blend(M m, V a, V b) { return m ? a : b; }
};

#if SDJ_SIMD_X86

// 2 x f64 over SSE2 — part of the x86-64 baseline, so no target attribute.
struct Sse2Ops {
  static constexpr int kLanes = 2;
  using V = __m128d;
  using M = __m128d;  // all-ones / all-zeros per lane
  static SDJ_SIMD_INLINE V Load(const double* p) { return _mm_loadu_pd(p); }
  static SDJ_SIMD_INLINE void Store(double* p, V v) { _mm_storeu_pd(p, v); }
  static SDJ_SIMD_INLINE V Set(double x) { return _mm_set1_pd(x); }
  static SDJ_SIMD_INLINE V Zero() { return _mm_setzero_pd(); }
  static SDJ_SIMD_INLINE V Add(V a, V b) { return _mm_add_pd(a, b); }
  static SDJ_SIMD_INLINE V Sub(V a, V b) { return _mm_sub_pd(a, b); }
  static SDJ_SIMD_INLINE V Mul(V a, V b) { return _mm_mul_pd(a, b); }
  // Operand swap: minpd/maxpd return src2 on NaN and on ties, std::min/max
  // return their first argument there (see file header).
  static SDJ_SIMD_INLINE V Min(V a, V b) { return _mm_min_pd(b, a); }
  static SDJ_SIMD_INLINE V Max(V a, V b) { return _mm_max_pd(b, a); }
  static SDJ_SIMD_INLINE V Abs(V a) {
    return _mm_andnot_pd(_mm_set1_pd(-0.0), a);
  }
  static SDJ_SIMD_INLINE V Sqrt(V a) { return _mm_sqrt_pd(a); }
  static SDJ_SIMD_INLINE M CmpLt(V a, V b) { return _mm_cmplt_pd(a, b); }
  static SDJ_SIMD_INLINE M CmpLe(V a, V b) { return _mm_cmple_pd(a, b); }
  static SDJ_SIMD_INLINE M MaskAnd(M a, M b) { return _mm_and_pd(a, b); }
  // SSE2 has no blendv; and/andnot/or is exact for full-lane masks.
  static SDJ_SIMD_INLINE V Blend(M m, V a, V b) {
    return _mm_or_pd(_mm_and_pd(m, a), _mm_andnot_pd(m, b));
  }
};

#if SDJ_SIMD_WIDE

// 4 x f64 over AVX2 (compiled via target attribute; vmaxpd/vminpd keep the
// SSE2 src2-on-NaN/tie semantics, so the same operand swap applies).
struct Avx2Ops {
  static constexpr int kLanes = 4;
  using V = __m256d;
  using M = __m256d;
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX2 V Load(const double* p) {
    return _mm256_loadu_pd(p);
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX2 void Store(double* p, V v) {
    _mm256_storeu_pd(p, v);
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX2 V Set(double x) {
    return _mm256_set1_pd(x);
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX2 V Zero() {
    return _mm256_setzero_pd();
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX2 V Add(V a, V b) {
    return _mm256_add_pd(a, b);
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX2 V Sub(V a, V b) {
    return _mm256_sub_pd(a, b);
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX2 V Mul(V a, V b) {
    return _mm256_mul_pd(a, b);
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX2 V Min(V a, V b) {
    return _mm256_min_pd(b, a);
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX2 V Max(V a, V b) {
    return _mm256_max_pd(b, a);
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX2 V Abs(V a) {
    return _mm256_andnot_pd(_mm256_set1_pd(-0.0), a);
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX2 V Sqrt(V a) {
    return _mm256_sqrt_pd(a);
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX2 M CmpLt(V a, V b) {
    return _mm256_cmp_pd(a, b, _CMP_LT_OQ);
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX2 M CmpLe(V a, V b) {
    return _mm256_cmp_pd(a, b, _CMP_LE_OQ);
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX2 M MaskAnd(M a, M b) {
    return _mm256_and_pd(a, b);
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX2 V Blend(M m, V a, V b) {
    // blendv(b, a, m) selects a where m's lane sign bit is set.
    return _mm256_blendv_pd(b, a, m);
  }
};

// 8 x f64 over AVX-512F with predicate masks.
struct Avx512Ops {
  static constexpr int kLanes = 8;
  using V = __m512d;
  using M = __mmask8;
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX512 V Load(const double* p) {
    return _mm512_loadu_pd(p);
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX512 void Store(double* p, V v) {
    _mm512_storeu_pd(p, v);
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX512 V Set(double x) {
    return _mm512_set1_pd(x);
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX512 V Zero() {
    return _mm512_setzero_pd();
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX512 V Add(V a, V b) {
    return _mm512_add_pd(a, b);
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX512 V Sub(V a, V b) {
    return _mm512_sub_pd(a, b);
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX512 V Mul(V a, V b) {
    return _mm512_mul_pd(a, b);
  }
  // The full-mask merge forms (merge source never read with mask 0xff) are
  // identical to the plain intrinsics; GCC 12's unmasked _mm512_{min,max,
  // sqrt}_pd expand through _mm512_undefined_pd(), which trips
  // -Wmaybe-uninitialized under -Werror when inlined into user code.
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX512 V Min(V a, V b) {
    return _mm512_mask_min_pd(a, 0xff, b, a);  // minpd(b, a)
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX512 V Max(V a, V b) {
    return _mm512_mask_max_pd(a, 0xff, b, a);  // maxpd(b, a)
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX512 V Abs(V a) {
    return _mm512_abs_pd(a);  // AVX512F; clears the sign bit only
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX512 V Sqrt(V a) {
    return _mm512_mask_sqrt_pd(a, 0xff, a);
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX512 M CmpLt(V a, V b) {
    return _mm512_cmp_pd_mask(a, b, _CMP_LT_OQ);
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX512 M CmpLe(V a, V b) {
    return _mm512_cmp_pd_mask(a, b, _CMP_LE_OQ);
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX512 M MaskAnd(M a, M b) {
    return static_cast<M>(a & b);
  }
  static SDJ_SIMD_INLINE SDJ_TARGET_AVX512 V Blend(M m, V a, V b) {
    return _mm512_mask_blend_pd(m, b, a);  // selects a where mask bit set
  }
};

#endif  // SDJ_SIMD_WIDE
#endif  // SDJ_SIMD_X86

}  // namespace sdj::simd

#endif  // SDJOIN_GEOMETRY_SIMD_H_
