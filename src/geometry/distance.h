// Distance bounds between points and rectangles.
//
// These are the four families of distance functions the incremental distance
// join needs (Section 2.2): exact point distances, MINDIST lower bounds,
// MAXDIST upper bounds over all contained point pairs, and MINMAXDIST-style
// tight upper bounds that exploit the minimal-bounding property of MBRs
// (Section 2.2.3, citing Roussopoulos et al. [25]).
//
// Consistency contract (Section 2.2): for objects o1 ⊆ r1 and o2 ⊆ r2,
//   MinDist(r1, r2) <= d(o1, o2) <= MaxDist(r1, r2),
// and when r2 *minimally* bounds a single object (or the union of the objects
// under an R-tree node — every face of an MBR is touched by some object),
//   min_{q in o2} d(p, q) <= MinMaxDist(p, r2).
// All bounds hold for every metric in geometry/metrics.h; the property tests
// in tests/geometry_distance_test.cc exercise them with random samples.
#ifndef SDJOIN_GEOMETRY_DISTANCE_H_
#define SDJOIN_GEOMETRY_DISTANCE_H_

#include <algorithm>
#include <cmath>

#include "geometry/metrics.h"
#include "geometry/point.h"
#include "geometry/rect.h"

namespace sdj {

namespace distance_internal {

// Distance from coordinate x to the nearer of the two face coordinates of
// the interval [lo, hi].
inline double NearerFaceDelta(double x, double lo, double hi) {
  return std::min(std::abs(x - lo), std::abs(x - hi));
}

// Distance from coordinate x to the farther of the two face coordinates.
inline double FartherFaceDelta(double x, double lo, double hi) {
  return std::max(std::abs(x - lo), std::abs(x - hi));
}

}  // namespace distance_internal

// Exact distance between two points under `metric`.
template <int Dim>
double Dist(const Point<Dim>& a, const Point<Dim>& b,
            Metric metric = Metric::kEuclidean) {
  double acc = 0.0;
  for (int i = 0; i < Dim; ++i) {
    acc = metric_internal::Accumulate(metric, acc, std::abs(a[i] - b[i]));
  }
  return metric_internal::Finish(metric, acc);
}

// MINDIST(p, r): distance from `p` to the closest point of `r`.
// Zero if `p` lies inside `r`.
template <int Dim>
double MinDist(const Point<Dim>& p, const Rect<Dim>& r,
               Metric metric = Metric::kEuclidean) {
  double acc = 0.0;
  for (int i = 0; i < Dim; ++i) {
    double delta = 0.0;
    if (p[i] < r.lo[i]) {
      delta = r.lo[i] - p[i];
    } else if (p[i] > r.hi[i]) {
      delta = p[i] - r.hi[i];
    }
    acc = metric_internal::Accumulate(metric, acc, delta);
  }
  return metric_internal::Finish(metric, acc);
}

// MINDIST(r1, r2): distance between the closest pair of points, one from each
// rectangle. Zero if the rectangles intersect. This is the priority-queue key
// for every non-object pair in the incremental join.
template <int Dim>
double MinDist(const Rect<Dim>& a, const Rect<Dim>& b,
               Metric metric = Metric::kEuclidean) {
  double acc = 0.0;
  for (int i = 0; i < Dim; ++i) {
    double delta = 0.0;
    if (a.hi[i] < b.lo[i]) {
      delta = b.lo[i] - a.hi[i];
    } else if (b.hi[i] < a.lo[i]) {
      delta = a.lo[i] - b.hi[i];
    }
    acc = metric_internal::Accumulate(metric, acc, delta);
  }
  return metric_internal::Finish(metric, acc);
}

// MAXDIST(p, r): distance from `p` to the farthest point of `r`; an upper
// bound on d(p, q) for every q in r.
template <int Dim>
double MaxDist(const Point<Dim>& p, const Rect<Dim>& r,
               Metric metric = Metric::kEuclidean) {
  double acc = 0.0;
  for (int i = 0; i < Dim; ++i) {
    acc = metric_internal::Accumulate(
        metric, acc, distance_internal::FartherFaceDelta(p[i], r.lo[i], r.hi[i]));
  }
  return metric_internal::Finish(metric, acc);
}

// MAXDIST(r1, r2): the farthest-corner distance; an upper bound on d(p, q)
// for every p in r1 and q in r2. This is the "simpler d_max function for
// node/node pairs" of Section 2.2.3.
template <int Dim>
double MaxDist(const Rect<Dim>& a, const Rect<Dim>& b,
               Metric metric = Metric::kEuclidean) {
  double acc = 0.0;
  for (int i = 0; i < Dim; ++i) {
    const double delta =
        std::max(std::abs(a.hi[i] - b.lo[i]), std::abs(b.hi[i] - a.lo[i]));
    acc = metric_internal::Accumulate(metric, acc, delta);
  }
  return metric_internal::Finish(metric, acc);
}

// MINMAXDIST(p, r) (Section 2.2.3): given that `r` minimally bounds an object
// (or object set) O — i.e., every face of `r` touches O — returns an upper
// bound on min_{q in O} d(p, q). Computed as
//   min_k Combine( |p_k - nearer face_k| , |p_i - farther face_i| for i != k ),
// the standard formulation of Roussopoulos et al. [25] generalized to all
// supported metrics.
template <int Dim>
double MinMaxDist(const Point<Dim>& p, const Rect<Dim>& r,
                  Metric metric = Metric::kEuclidean) {
  using distance_internal::FartherFaceDelta;
  using distance_internal::NearerFaceDelta;
  // Precompute the per-dimension face deltas once.
  double far_delta[Dim];
  double near_delta[Dim];
  for (int i = 0; i < Dim; ++i) {
    far_delta[i] = FartherFaceDelta(p[i], r.lo[i], r.hi[i]);
    near_delta[i] = NearerFaceDelta(p[i], r.lo[i], r.hi[i]);
  }
  double best = -1.0;
  for (int k = 0; k < Dim; ++k) {
    double acc = 0.0;
    for (int i = 0; i < Dim; ++i) {
      acc = metric_internal::Accumulate(
          metric, acc, i == k ? near_delta[i] : far_delta[i]);
    }
    const double candidate = metric_internal::Finish(metric, acc);
    if (best < 0.0 || candidate < best) best = candidate;
  }
  return best;
}

// MINMAXDIST(r1, r2): given that r1 and r2 each minimally bound objects o1 and
// o2, returns an upper bound on d(o1, o2) (the paper's d_max for obr/obr
// pairs, Section 2.2.3). Uses the face-pair construction: in some dimension k,
// o1 touches a face of r1 and o2 touches a face of r2; picking the closest
// face pair in dimension k and bounding every other dimension by its maximal
// span gives
//   min_k Combine( min |face1_k - face2_k| , maxdelta_i for i != k ).
template <int Dim>
double MinMaxDist(const Rect<Dim>& a, const Rect<Dim>& b,
                  Metric metric = Metric::kEuclidean) {
  double face_gap[Dim];
  double max_delta[Dim];
  for (int i = 0; i < Dim; ++i) {
    face_gap[i] = std::min(
        std::min(std::abs(a.lo[i] - b.lo[i]), std::abs(a.lo[i] - b.hi[i])),
        std::min(std::abs(a.hi[i] - b.lo[i]), std::abs(a.hi[i] - b.hi[i])));
    max_delta[i] =
        std::max(std::abs(a.hi[i] - b.lo[i]), std::abs(b.hi[i] - a.lo[i]));
  }
  double best = -1.0;
  for (int k = 0; k < Dim; ++k) {
    double acc = 0.0;
    for (int i = 0; i < Dim; ++i) {
      acc = metric_internal::Accumulate(metric, acc,
                                        i == k ? face_gap[i] : max_delta[i]);
    }
    const double candidate = metric_internal::Finish(metric, acc);
    if (best < 0.0 || candidate < best) best = candidate;
  }
  return best;
}

// MAXMINDIST(a, b) = max_{p in a} MINDIST(p, b): an upper bound on d(o1, o2)
// for every o1 contained in `a` when `b` is the *exact* geometry of o2 (e.g.,
// an object stored directly in a leaf). Tighter than MaxDist(a, b) and valid
// because any point of o1 is within MINDIST(p, b) <= this bound of o2.
template <int Dim>
double MaxMinDist(const Rect<Dim>& a, const Rect<Dim>& b,
                  Metric metric = Metric::kEuclidean) {
  double acc = 0.0;
  for (int i = 0; i < Dim; ++i) {
    // Per-dimension max over p_i in [a.lo, a.hi] of the gap to [b.lo, b.hi];
    // the maximum of this piecewise-linear function sits at an endpoint.
    const double delta =
        std::max(0.0, std::max(b.lo[i] - a.lo[i], a.hi[i] - b.hi[i]));
    acc = metric_internal::Accumulate(metric, acc, delta);
  }
  return metric_internal::Finish(metric, acc);
}

// Upper bound on max_{p in a} MINMAXDIST(p, b): for every object o1 under a
// node with MBR `a`, the distance from o1 to the nearest object under the node
// with MBR `b` is at most this value (b's faces are each touched by some
// object). This is the tighter node/node d_max bound used by the semi-join's
// Local/GlobalNodes/GlobalAll strategies (Section 4.2.1); it is never larger
// than MaxDist(a, b) plus never smaller than MinMaxDist evaluated at any
// single point of `a`.
template <int Dim>
double MaxMinMaxDist(const Rect<Dim>& a, const Rect<Dim>& b,
                     Metric metric = Metric::kEuclidean) {
  // Per-dimension maxima over p_i in [a.lo[i], a.hi[i]] of the nearer-face
  // and farther-face deltas to b's interval.
  double near_max[Dim];
  double far_max[Dim];
  for (int i = 0; i < Dim; ++i) {
    const double lo = b.lo[i];
    const double hi = b.hi[i];
    const double mid = 0.5 * (lo + hi);
    using distance_internal::FartherFaceDelta;
    using distance_internal::NearerFaceDelta;
    double nm = std::max(NearerFaceDelta(a.lo[i], lo, hi),
                         NearerFaceDelta(a.hi[i], lo, hi));
    // The nearer-face delta peaks at b's midpoint with value halfwidth.
    if (a.lo[i] <= mid && mid <= a.hi[i]) {
      nm = std::max(nm, 0.5 * (hi - lo));
    }
    near_max[i] = nm;
    far_max[i] = std::max(FartherFaceDelta(a.lo[i], lo, hi),
                          FartherFaceDelta(a.hi[i], lo, hi));
  }
  double best = -1.0;
  for (int k = 0; k < Dim; ++k) {
    double acc = 0.0;
    for (int i = 0; i < Dim; ++i) {
      acc = metric_internal::Accumulate(metric, acc,
                                        i == k ? near_max[i] : far_max[i]);
    }
    const double candidate = metric_internal::Finish(metric, acc);
    if (best < 0.0 || candidate < best) best = candidate;
  }
  return best;
}

}  // namespace sdj

#endif  // SDJOIN_GEOMETRY_DISTANCE_H_
