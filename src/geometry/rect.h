// Axis-aligned hyper-rectangles (minimum bounding rectangles).
#ifndef SDJOIN_GEOMETRY_RECT_H_
#define SDJOIN_GEOMETRY_RECT_H_

#include <algorithm>
#include <limits>
#include <string>

#include "geometry/point.h"
#include "util/check.h"

namespace sdj {

// A closed axis-aligned box [lo, hi] in Dim dimensions. The R-tree stores one
// per entry (Section 2.1); a degenerate box with lo == hi represents a point
// object stored directly in a leaf, as in the paper's experiments.
// A passive value type: all members public, freely copyable.
template <int Dim>
struct Rect {
  Point<Dim> lo;
  Point<Dim> hi;

  Rect() = default;
  Rect(const Point<Dim>& low, const Point<Dim>& high) : lo(low), hi(high) {}

  // A rectangle containing only `p` (used for point objects in leaves).
  static Rect FromPoint(const Point<Dim>& p) { return Rect(p, p); }

  // The identity for `ExpandToInclude`: every Expand replaces it entirely.
  static Rect Empty() {
    Rect r;
    for (int i = 0; i < Dim; ++i) {
      r.lo[i] = std::numeric_limits<double>::infinity();
      r.hi[i] = -std::numeric_limits<double>::infinity();
    }
    return r;
  }

  // True if lo <= hi in every dimension (Empty() is not valid).
  bool IsValid() const {
    for (int i = 0; i < Dim; ++i) {
      if (!(lo[i] <= hi[i])) return false;
    }
    return true;
  }

  bool Contains(const Point<Dim>& p) const {
    for (int i = 0; i < Dim; ++i) {
      if (p[i] < lo[i] || p[i] > hi[i]) return false;
    }
    return true;
  }

  bool Contains(const Rect& other) const {
    for (int i = 0; i < Dim; ++i) {
      if (other.lo[i] < lo[i] || other.hi[i] > hi[i]) return false;
    }
    return true;
  }

  bool Intersects(const Rect& other) const {
    for (int i = 0; i < Dim; ++i) {
      if (other.hi[i] < lo[i] || other.lo[i] > hi[i]) return false;
    }
    return true;
  }

  // Grows this rectangle minimally so that it contains `other`.
  void ExpandToInclude(const Rect& other) {
    for (int i = 0; i < Dim; ++i) {
      lo[i] = std::min(lo[i], other.lo[i]);
      hi[i] = std::max(hi[i], other.hi[i]);
    }
  }

  void ExpandToInclude(const Point<Dim>& p) { ExpandToInclude(FromPoint(p)); }

  // Hyper-volume (product of extents). Zero for degenerate boxes.
  double Area() const {
    double a = 1.0;
    for (int i = 0; i < Dim; ++i) a *= hi[i] - lo[i];
    return a;
  }

  // Sum of extents; the R*-tree split algorithm minimizes this (margin).
  double Margin() const {
    double m = 0.0;
    for (int i = 0; i < Dim; ++i) m += hi[i] - lo[i];
    return m;
  }

  // Hyper-volume of the intersection with `other` (0 if disjoint).
  double OverlapArea(const Rect& other) const {
    double a = 1.0;
    for (int i = 0; i < Dim; ++i) {
      const double w =
          std::min(hi[i], other.hi[i]) - std::max(lo[i], other.lo[i]);
      if (w <= 0.0) return 0.0;
      a *= w;
    }
    return a;
  }

  // Increase in area needed to include `other`.
  double AreaEnlargement(const Rect& other) const {
    Rect combined = *this;
    combined.ExpandToInclude(other);
    return combined.Area() - Area();
  }

  // The overlap box with `other`. Only meaningful when Intersects(other);
  // otherwise the result is not IsValid().
  Rect IntersectionWith(const Rect& other) const {
    Rect r;
    for (int i = 0; i < Dim; ++i) {
      r.lo[i] = std::max(lo[i], other.lo[i]);
      r.hi[i] = std::min(hi[i], other.hi[i]);
    }
    return r;
  }

  Point<Dim> Center() const {
    Point<Dim> c;
    for (int i = 0; i < Dim; ++i) c[i] = 0.5 * (lo[i] + hi[i]);
    return c;
  }

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }

  std::string ToString() const {
    return "[" + lo.ToString() + " - " + hi.ToString() + "]";
  }
};

using Rect2 = Rect<2>;
using Rect3 = Rect<3>;

}  // namespace sdj

#endif  // SDJOIN_GEOMETRY_RECT_H_
