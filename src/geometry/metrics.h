// Point distance metrics.
//
// The paper's algorithms work with any metric as long as the derived distance
// functions are "consistent" (Section 2.2): a pair never has a smaller
// distance than the pair that generated it. All functions in
// geometry/distance.h are parameterized by the metrics defined here
// (Euclidean, Manhattan, Chessboard — the three the paper names).
#ifndef SDJOIN_GEOMETRY_METRICS_H_
#define SDJOIN_GEOMETRY_METRICS_H_

#include <algorithm>
#include <cmath>

namespace sdj {

// Point metric selector. All of these are L_p metrics whose per-dimension
// contributions combine monotonically, which is what makes MINDIST-style
// bounds derivable dimension by dimension.
enum class Metric {
  kEuclidean,   // L2
  kManhattan,   // L1
  kChessboard,  // L-infinity
};

namespace metric_internal {

// Folds a non-negative per-dimension delta into a running accumulator.
inline double Accumulate(Metric metric, double acc, double delta) {
  switch (metric) {
    case Metric::kEuclidean:
      return acc + delta * delta;
    case Metric::kManhattan:
      return acc + delta;
    case Metric::kChessboard:
      return std::max(acc, delta);
  }
  return acc;  // Unreachable; silences -Wreturn-type.
}

// Converts a fully folded accumulator into the metric's distance value.
inline double Finish(Metric metric, double acc) {
  return metric == Metric::kEuclidean ? std::sqrt(acc) : acc;
}

}  // namespace metric_internal

}  // namespace sdj

#endif  // SDJOIN_GEOMETRY_METRICS_H_
