// Structure-of-arrays rectangle batches and batched distance kernels.
//
// The join's hot loop scores up to fan-out^2 child pairs per dequeued
// node/node pair (Section 2.2.2). The scalar functions in geometry/distance.h
// walk one Rect at a time through a runtime metric switch, which defeats
// auto-vectorization. A RectBatch stores the lo/hi coordinates of many
// rectangles as Dim contiguous arrays each, so the kernels below are tight
// countable loops (metric resolved once per batch, per-dimension work
// unrolled at compile time) — now explicitly vectorized through the lane
// wrappers in geometry/simd.h, with the ISA chosen at run time (DESIGN.md
// §15): scalar, SSE2, AVX2, or AVX-512, detected once and overridable via
// DistanceJoinOptions::kernel_isa / SDJ_KERNEL / --kernel=.
//
// Contract: every kernel is BIT-IDENTICAL to its scalar counterpart ON EVERY
// DISPATCH PATH — the per-element arithmetic is the same sequence of IEEE
// operations, only reordered across elements, never within one. The scalar
// path (simd::ScalarOps, the tail loops in rect_batch_kernels.inc) is the
// oracle for every ISA variant. The engine relies on this to keep the
// parallel expansion's output stream equal to the serial engine's (DESIGN.md
// §10) and to keep kernel_isa out of the snapshot fingerprint;
// tests/geometry_distance_test.cc enforces it with exact (==, bitwise for
// NaN) comparisons over random and special-value batches, per ISA. When
// touching a kernel, change the matching scalar function, the scalar tail,
// and the vector body in lockstep or those tests will fail.
#ifndef SDJOIN_GEOMETRY_RECT_BATCH_H_
#define SDJOIN_GEOMETRY_RECT_BATCH_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <type_traits>
#include <vector>

#include "geometry/metrics.h"
#include "geometry/point.h"
#include "geometry/rect.h"
#include "geometry/simd.h"

namespace sdj {

// A batch of axis-aligned rectangles in structure-of-arrays form: for each
// dimension d, lo(d) and hi(d) are contiguous arrays of length size().
template <int Dim>
class RectBatch {
 public:
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() { size_ = 0; }

  void reserve(size_t n) {
    for (int d = 0; d < Dim; ++d) {
      lo_[d].reserve(n);
      hi_[d].reserve(n);
    }
  }

  // Grows or shrinks to n elements; grown slots are uninitialized-by-intent
  // (callers fill them via set()).
  void resize(size_t n) {
    for (int d = 0; d < Dim; ++d) {
      lo_[d].resize(n);
      hi_[d].resize(n);
    }
    size_ = n;
  }

  void push_back(const Rect<Dim>& r) {
    for (int d = 0; d < Dim; ++d) {
      lo_[d].push_back(r.lo[d]);
      hi_[d].push_back(r.hi[d]);
    }
    ++size_;
  }

  void set(size_t i, const Rect<Dim>& r) {
    for (int d = 0; d < Dim; ++d) {
      lo_[d][i] = r.lo[d];
      hi_[d][i] = r.hi[d];
    }
  }

  Rect<Dim> rect(size_t i) const {
    Rect<Dim> r;
    for (int d = 0; d < Dim; ++d) {
      r.lo[d] = lo_[d][i];
      r.hi[d] = hi_[d][i];
    }
    return r;
  }

  const double* lo(int d) const { return lo_[d].data(); }
  const double* hi(int d) const { return hi_[d].data(); }

 private:
  std::array<std::vector<double>, Dim> lo_;
  std::array<std::vector<double>, Dim> hi_;
  size_t size_ = 0;
};

namespace batch_internal {

// Compile-time mirrors of metric_internal::Accumulate/Finish. The
// expressions must stay textually identical to the runtime versions in
// geometry/metrics.h so both produce the same doubles.
template <Metric M>
inline double Acc(double acc, double delta) {
  if constexpr (M == Metric::kEuclidean) {
    return acc + delta * delta;
  } else if constexpr (M == Metric::kManhattan) {
    return acc + delta;
  } else {
    return std::max(acc, delta);
  }
}

template <Metric M>
inline double Fin(double acc) {
  if constexpr (M == Metric::kEuclidean) return std::sqrt(acc);
  return acc;
}

// Resolves the metric once per batch and invokes fn with it as a
// compile-time constant, so kernel inner loops carry no switch.
template <typename Fn>
inline void Dispatch(Metric metric, Fn&& fn) {
  switch (metric) {
    case Metric::kEuclidean:
      fn(std::integral_constant<Metric, Metric::kEuclidean>{});
      return;
    case Metric::kManhattan:
      fn(std::integral_constant<Metric, Metric::kManhattan>{});
      return;
    case Metric::kChessboard:
      fn(std::integral_constant<Metric, Metric::kChessboard>{});
      return;
  }
}

// One kernel set per ISA, stamped from the shared bodies. The scalar set's
// loops are exactly the pre-SIMD kernels (its vector block compiles away).
#define SDJ_KERNEL_STRUCT KernelsScalar
#define SDJ_KERNEL_OPS simd::ScalarOps
#define SDJ_KERNEL_ATTR
#include "geometry/rect_batch_kernels.inc"

#if SDJ_SIMD_X86
#define SDJ_KERNEL_STRUCT KernelsSse2
#define SDJ_KERNEL_OPS simd::Sse2Ops
#define SDJ_KERNEL_ATTR
#include "geometry/rect_batch_kernels.inc"
#endif

#if SDJ_SIMD_WIDE
#define SDJ_KERNEL_STRUCT KernelsAvx2
#define SDJ_KERNEL_OPS simd::Avx2Ops
#define SDJ_KERNEL_ATTR SDJ_TARGET_AVX2
#include "geometry/rect_batch_kernels.inc"

#define SDJ_KERNEL_STRUCT KernelsAvx512
#define SDJ_KERNEL_OPS simd::Avx512Ops
#define SDJ_KERNEL_ATTR SDJ_TARGET_AVX512
#include "geometry/rect_batch_kernels.inc"
#endif

// Resolves the requested ISA once per batch and invokes fn with the matching
// kernel set as a template argument (mirroring the metric Dispatch above).
// ISAs not compiled into this binary can never be resolved to, but the
// switch must still not name their absent kernel structs.
template <typename Fn>
inline void IsaDispatch(simd::Isa isa, Fn&& fn) {
  switch (simd::Resolve(isa)) {
#if SDJ_SIMD_X86
    case simd::Isa::kSse2:
      fn(static_cast<KernelsSse2*>(nullptr));
      return;
#if SDJ_SIMD_WIDE
    case simd::Isa::kAvx2:
      fn(static_cast<KernelsAvx2*>(nullptr));
      return;
    case simd::Isa::kAvx512:
      fn(static_cast<KernelsAvx512*>(nullptr));
      return;
#endif
#endif
    default:
      fn(static_cast<KernelsScalar*>(nullptr));
      return;
  }
}

}  // namespace batch_internal

// MINDIST(batch[i], q) for i in [begin, end). Matches MinDist(Rect, Rect):
// the branchless per-dimension gap max(0, max(q.lo - hi_i, lo_i - q.hi))
// equals the scalar if/else chain for all valid (lo <= hi) rectangles,
// including the zero cases (a - a is +0.0 in round-to-nearest).
template <int Dim>
void MinDistBatch(const RectBatch<Dim>& batch, const Rect<Dim>& q,
                  Metric metric, double* out, size_t begin = 0,
                  size_t end = static_cast<size_t>(-1),
                  simd::Isa isa = simd::Isa::kAuto) {
  end = std::min(end, batch.size());
  batch_internal::Dispatch(metric, [&](auto m) {
    constexpr Metric M = decltype(m)::value;
    batch_internal::IsaDispatch(isa, [&]<typename K>(K*) {
      K::template MinDistRect<Dim, M>(batch, q, out, begin, end);
    });
  });
}

// MINDIST(batch[i], p) for a point query (the NN engines). Matches
// MinDist(Point, Rect).
template <int Dim>
void MinDistBatch(const RectBatch<Dim>& batch, const Point<Dim>& p,
                  Metric metric, double* out, size_t begin = 0,
                  size_t end = static_cast<size_t>(-1),
                  simd::Isa isa = simd::Isa::kAuto) {
  end = std::min(end, batch.size());
  batch_internal::Dispatch(metric, [&](auto m) {
    constexpr Metric M = decltype(m)::value;
    batch_internal::IsaDispatch(isa, [&]<typename K>(K*) {
      K::template MinDistPoint<Dim, M>(batch, p, out, begin, end);
    });
  });
}

// MAXDIST(batch[i], q). Matches MaxDist(Rect, Rect) (symmetric).
template <int Dim>
void MaxDistBatch(const RectBatch<Dim>& batch, const Rect<Dim>& q,
                  Metric metric, double* out, size_t begin = 0,
                  size_t end = static_cast<size_t>(-1),
                  simd::Isa isa = simd::Isa::kAuto) {
  end = std::min(end, batch.size());
  batch_internal::Dispatch(metric, [&](auto m) {
    constexpr Metric M = decltype(m)::value;
    batch_internal::IsaDispatch(isa, [&]<typename K>(K*) {
      K::template MaxDistRect<Dim, M>(batch, q, out, begin, end);
    });
  });
}

// MAXDIST(batch[i], p) for a point query. Matches MaxDist(Point, Rect),
// whose per-dimension delta is FartherFaceDelta(p, lo, hi).
template <int Dim>
void MaxDistBatch(const RectBatch<Dim>& batch, const Point<Dim>& p,
                  Metric metric, double* out, size_t begin = 0,
                  size_t end = static_cast<size_t>(-1),
                  simd::Isa isa = simd::Isa::kAuto) {
  end = std::min(end, batch.size());
  batch_internal::Dispatch(metric, [&](auto m) {
    constexpr Metric M = decltype(m)::value;
    batch_internal::IsaDispatch(isa, [&]<typename K>(K*) {
      K::template MaxDistPoint<Dim, M>(batch, p, out, begin, end);
    });
  });
}

// MINMAXDIST(batch[i], q). Matches MinMaxDist(Rect, Rect) (symmetric): the
// same face_gap/max_delta construction and the same min-over-k fold,
// including the best < 0 seeding, so candidate selection ties break alike.
template <int Dim>
void MinMaxDistBatch(const RectBatch<Dim>& batch, const Rect<Dim>& q,
                     Metric metric, double* out, size_t begin = 0,
                     size_t end = static_cast<size_t>(-1),
                     simd::Isa isa = simd::Isa::kAuto) {
  end = std::min(end, batch.size());
  batch_internal::Dispatch(metric, [&](auto m) {
    constexpr Metric M = decltype(m)::value;
    batch_internal::IsaDispatch(isa, [&]<typename K>(K*) {
      K::template MinMaxDist<Dim, M>(batch, q, out, begin, end);
    });
  });
}

// MAXMINDIST: asymmetric, so the caller states which side the batch is on.
// batch_is_first: out[i] = MaxMinDist(batch[i], q); else MaxMinDist(q,
// batch[i]). Matches MaxMinDist(Rect, Rect).
template <int Dim>
void MaxMinDistBatch(const RectBatch<Dim>& batch, const Rect<Dim>& q,
                     Metric metric, bool batch_is_first, double* out,
                     size_t begin = 0, size_t end = static_cast<size_t>(-1),
                     simd::Isa isa = simd::Isa::kAuto) {
  end = std::min(end, batch.size());
  batch_internal::Dispatch(metric, [&](auto m) {
    constexpr Metric M = decltype(m)::value;
    batch_internal::IsaDispatch(isa, [&]<typename K>(K*) {
      if (batch_is_first) {
        K::template MaxMinDist<Dim, M, true>(batch, q, out, begin, end);
      } else {
        K::template MaxMinDist<Dim, M, false>(batch, q, out, begin, end);
      }
    });
  });
}

// MAXMINMAXDIST: asymmetric like MaxMinDistBatch. batch_is_first:
// out[i] = MaxMinMaxDist(batch[i], q), i.e. the batch supplies the outer
// ("for every point of a") rectangle; else q does. Matches
// MaxMinMaxDist(Rect, Rect) exactly, including the midpoint-peak case.
template <int Dim>
void MaxMinMaxDistBatch(const RectBatch<Dim>& batch, const Rect<Dim>& q,
                        Metric metric, bool batch_is_first, double* out,
                        size_t begin = 0,
                        size_t end = static_cast<size_t>(-1),
                        simd::Isa isa = simd::Isa::kAuto) {
  end = std::min(end, batch.size());
  batch_internal::Dispatch(metric, [&](auto m) {
    constexpr Metric M = decltype(m)::value;
    batch_internal::IsaDispatch(isa, [&]<typename K>(K*) {
      if (batch_is_first) {
        K::template MaxMinMaxDist<Dim, M, true>(batch, q, out, begin, end);
      } else {
        K::template MaxMinMaxDist<Dim, M, false>(batch, q, out, begin, end);
      }
    });
  });
}

}  // namespace sdj

#endif  // SDJOIN_GEOMETRY_RECT_BATCH_H_
