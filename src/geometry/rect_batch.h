// Structure-of-arrays rectangle batches and batched distance kernels.
//
// The join's hot loop scores up to fan-out^2 child pairs per dequeued
// node/node pair (Section 2.2.2). The scalar functions in geometry/distance.h
// walk one Rect at a time through a runtime metric switch, which defeats
// auto-vectorization. A RectBatch stores the lo/hi coordinates of many
// rectangles as Dim contiguous arrays each, so the kernels below are tight
// countable loops (metric resolved once per batch, per-dimension work
// unrolled at compile time) that the compiler can vectorize.
//
// Contract: every kernel is BIT-IDENTICAL to its scalar counterpart — the
// per-element arithmetic is the same sequence of IEEE operations, only
// reordered across elements, never within one. The engine relies on this to
// keep the parallel expansion's output stream equal to the serial engine's
// (see DESIGN.md §10); tests/geometry_distance_test.cc enforces it with
// exact (==) comparisons over random batches. When touching a kernel, change
// the matching scalar function in lockstep or those tests will fail.
#ifndef SDJOIN_GEOMETRY_RECT_BATCH_H_
#define SDJOIN_GEOMETRY_RECT_BATCH_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <type_traits>
#include <vector>

#include "geometry/metrics.h"
#include "geometry/point.h"
#include "geometry/rect.h"

namespace sdj {

// A batch of axis-aligned rectangles in structure-of-arrays form: for each
// dimension d, lo(d) and hi(d) are contiguous arrays of length size().
template <int Dim>
class RectBatch {
 public:
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() { size_ = 0; }

  void reserve(size_t n) {
    for (int d = 0; d < Dim; ++d) {
      lo_[d].reserve(n);
      hi_[d].reserve(n);
    }
  }

  // Grows or shrinks to n elements; grown slots are uninitialized-by-intent
  // (callers fill them via set()).
  void resize(size_t n) {
    for (int d = 0; d < Dim; ++d) {
      lo_[d].resize(n);
      hi_[d].resize(n);
    }
    size_ = n;
  }

  void push_back(const Rect<Dim>& r) {
    for (int d = 0; d < Dim; ++d) {
      lo_[d].push_back(r.lo[d]);
      hi_[d].push_back(r.hi[d]);
    }
    ++size_;
  }

  void set(size_t i, const Rect<Dim>& r) {
    for (int d = 0; d < Dim; ++d) {
      lo_[d][i] = r.lo[d];
      hi_[d][i] = r.hi[d];
    }
  }

  Rect<Dim> rect(size_t i) const {
    Rect<Dim> r;
    for (int d = 0; d < Dim; ++d) {
      r.lo[d] = lo_[d][i];
      r.hi[d] = hi_[d][i];
    }
    return r;
  }

  const double* lo(int d) const { return lo_[d].data(); }
  const double* hi(int d) const { return hi_[d].data(); }

 private:
  std::array<std::vector<double>, Dim> lo_;
  std::array<std::vector<double>, Dim> hi_;
  size_t size_ = 0;
};

namespace batch_internal {

// Compile-time mirrors of metric_internal::Accumulate/Finish. The
// expressions must stay textually identical to the runtime versions in
// geometry/metrics.h so both produce the same doubles.
template <Metric M>
inline double Acc(double acc, double delta) {
  if constexpr (M == Metric::kEuclidean) {
    return acc + delta * delta;
  } else if constexpr (M == Metric::kManhattan) {
    return acc + delta;
  } else {
    return std::max(acc, delta);
  }
}

template <Metric M>
inline double Fin(double acc) {
  if constexpr (M == Metric::kEuclidean) return std::sqrt(acc);
  return acc;
}

// Resolves the metric once per batch and invokes fn with it as a
// compile-time constant, so kernel inner loops carry no switch.
template <typename Fn>
inline void Dispatch(Metric metric, Fn&& fn) {
  switch (metric) {
    case Metric::kEuclidean:
      fn(std::integral_constant<Metric, Metric::kEuclidean>{});
      return;
    case Metric::kManhattan:
      fn(std::integral_constant<Metric, Metric::kManhattan>{});
      return;
    case Metric::kChessboard:
      fn(std::integral_constant<Metric, Metric::kChessboard>{});
      return;
  }
}

}  // namespace batch_internal

// MINDIST(batch[i], q) for i in [begin, end). Matches MinDist(Rect, Rect):
// the branchless per-dimension gap max(0, max(q.lo - hi_i, lo_i - q.hi))
// equals the scalar if/else chain for all valid (lo <= hi) rectangles,
// including the zero cases (a - a is +0.0 in round-to-nearest).
template <int Dim>
void MinDistBatch(const RectBatch<Dim>& batch, const Rect<Dim>& q,
                  Metric metric, double* out, size_t begin = 0,
                  size_t end = static_cast<size_t>(-1)) {
  end = std::min(end, batch.size());
  batch_internal::Dispatch(metric, [&](auto m) {
    constexpr Metric M = decltype(m)::value;
    for (size_t i = begin; i < end; ++i) {
      double acc = 0.0;
      for (int d = 0; d < Dim; ++d) {
        const double delta = std::max(
            0.0, std::max(q.lo[d] - batch.hi(d)[i], batch.lo(d)[i] - q.hi[d]));
        acc = batch_internal::Acc<M>(acc, delta);
      }
      out[i] = batch_internal::Fin<M>(acc);
    }
  });
}

// MINDIST(batch[i], p) for a point query (the NN engines). Matches
// MinDist(Point, Rect).
template <int Dim>
void MinDistBatch(const RectBatch<Dim>& batch, const Point<Dim>& p,
                  Metric metric, double* out, size_t begin = 0,
                  size_t end = static_cast<size_t>(-1)) {
  end = std::min(end, batch.size());
  batch_internal::Dispatch(metric, [&](auto m) {
    constexpr Metric M = decltype(m)::value;
    for (size_t i = begin; i < end; ++i) {
      double acc = 0.0;
      for (int d = 0; d < Dim; ++d) {
        const double delta = std::max(
            0.0, std::max(batch.lo(d)[i] - p[d], p[d] - batch.hi(d)[i]));
        acc = batch_internal::Acc<M>(acc, delta);
      }
      out[i] = batch_internal::Fin<M>(acc);
    }
  });
}

// MAXDIST(batch[i], q). Matches MaxDist(Rect, Rect) (symmetric).
template <int Dim>
void MaxDistBatch(const RectBatch<Dim>& batch, const Rect<Dim>& q,
                  Metric metric, double* out, size_t begin = 0,
                  size_t end = static_cast<size_t>(-1)) {
  end = std::min(end, batch.size());
  batch_internal::Dispatch(metric, [&](auto m) {
    constexpr Metric M = decltype(m)::value;
    for (size_t i = begin; i < end; ++i) {
      double acc = 0.0;
      for (int d = 0; d < Dim; ++d) {
        const double delta = std::max(std::abs(batch.hi(d)[i] - q.lo[d]),
                                      std::abs(q.hi[d] - batch.lo(d)[i]));
        acc = batch_internal::Acc<M>(acc, delta);
      }
      out[i] = batch_internal::Fin<M>(acc);
    }
  });
}

// MAXDIST(batch[i], p) for a point query. Matches MaxDist(Point, Rect),
// whose per-dimension delta is FartherFaceDelta(p, lo, hi).
template <int Dim>
void MaxDistBatch(const RectBatch<Dim>& batch, const Point<Dim>& p,
                  Metric metric, double* out, size_t begin = 0,
                  size_t end = static_cast<size_t>(-1)) {
  end = std::min(end, batch.size());
  batch_internal::Dispatch(metric, [&](auto m) {
    constexpr Metric M = decltype(m)::value;
    for (size_t i = begin; i < end; ++i) {
      double acc = 0.0;
      for (int d = 0; d < Dim; ++d) {
        const double delta = std::max(std::abs(p[d] - batch.lo(d)[i]),
                                      std::abs(p[d] - batch.hi(d)[i]));
        acc = batch_internal::Acc<M>(acc, delta);
      }
      out[i] = batch_internal::Fin<M>(acc);
    }
  });
}

// MINMAXDIST(batch[i], q). Matches MinMaxDist(Rect, Rect) (symmetric): the
// same face_gap/max_delta construction and the same min-over-k fold,
// including the best < 0 seeding, so candidate selection ties break alike.
template <int Dim>
void MinMaxDistBatch(const RectBatch<Dim>& batch, const Rect<Dim>& q,
                     Metric metric, double* out, size_t begin = 0,
                     size_t end = static_cast<size_t>(-1)) {
  end = std::min(end, batch.size());
  batch_internal::Dispatch(metric, [&](auto m) {
    constexpr Metric M = decltype(m)::value;
    for (size_t i = begin; i < end; ++i) {
      double face_gap[Dim];
      double max_delta[Dim];
      for (int d = 0; d < Dim; ++d) {
        const double alo = batch.lo(d)[i];
        const double ahi = batch.hi(d)[i];
        face_gap[d] = std::min(
            std::min(std::abs(alo - q.lo[d]), std::abs(alo - q.hi[d])),
            std::min(std::abs(ahi - q.lo[d]), std::abs(ahi - q.hi[d])));
        max_delta[d] =
            std::max(std::abs(ahi - q.lo[d]), std::abs(q.hi[d] - alo));
      }
      double best = -1.0;
      for (int k = 0; k < Dim; ++k) {
        double acc = 0.0;
        for (int d = 0; d < Dim; ++d) {
          acc = batch_internal::Acc<M>(acc,
                                       d == k ? face_gap[d] : max_delta[d]);
        }
        const double candidate = batch_internal::Fin<M>(acc);
        if (best < 0.0 || candidate < best) best = candidate;
      }
      out[i] = best;
    }
  });
}

// MAXMINDIST: asymmetric, so the caller states which side the batch is on.
// batch_is_first: out[i] = MaxMinDist(batch[i], q); else MaxMinDist(q,
// batch[i]). Matches MaxMinDist(Rect, Rect).
template <int Dim>
void MaxMinDistBatch(const RectBatch<Dim>& batch, const Rect<Dim>& q,
                     Metric metric, bool batch_is_first, double* out,
                     size_t begin = 0, size_t end = static_cast<size_t>(-1)) {
  end = std::min(end, batch.size());
  batch_internal::Dispatch(metric, [&](auto m) {
    constexpr Metric M = decltype(m)::value;
    if (batch_is_first) {
      for (size_t i = begin; i < end; ++i) {
        double acc = 0.0;
        for (int d = 0; d < Dim; ++d) {
          const double delta = std::max(
              0.0,
              std::max(q.lo[d] - batch.lo(d)[i], batch.hi(d)[i] - q.hi[d]));
          acc = batch_internal::Acc<M>(acc, delta);
        }
        out[i] = batch_internal::Fin<M>(acc);
      }
    } else {
      for (size_t i = begin; i < end; ++i) {
        double acc = 0.0;
        for (int d = 0; d < Dim; ++d) {
          const double delta = std::max(
              0.0,
              std::max(batch.lo(d)[i] - q.lo[d], q.hi[d] - batch.hi(d)[i]));
          acc = batch_internal::Acc<M>(acc, delta);
        }
        out[i] = batch_internal::Fin<M>(acc);
      }
    }
  });
}

// MAXMINMAXDIST: asymmetric like MaxMinDistBatch. batch_is_first:
// out[i] = MaxMinMaxDist(batch[i], q), i.e. the batch supplies the outer
// ("for every point of a") rectangle; else q does. Matches
// MaxMinMaxDist(Rect, Rect) exactly, including the midpoint-peak case.
template <int Dim>
void MaxMinMaxDistBatch(const RectBatch<Dim>& batch, const Rect<Dim>& q,
                        Metric metric, bool batch_is_first, double* out,
                        size_t begin = 0,
                        size_t end = static_cast<size_t>(-1)) {
  end = std::min(end, batch.size());
  batch_internal::Dispatch(metric, [&](auto m) {
    constexpr Metric M = decltype(m)::value;
    for (size_t i = begin; i < end; ++i) {
      double near_max[Dim];
      double far_max[Dim];
      for (int d = 0; d < Dim; ++d) {
        // a ranges over the outer rectangle; b's interval supplies the faces.
        const double a_lo = batch_is_first ? batch.lo(d)[i] : q.lo[d];
        const double a_hi = batch_is_first ? batch.hi(d)[i] : q.hi[d];
        const double lo = batch_is_first ? q.lo[d] : batch.lo(d)[i];
        const double hi = batch_is_first ? q.hi[d] : batch.hi(d)[i];
        const double mid = 0.5 * (lo + hi);
        double nm =
            std::max(std::min(std::abs(a_lo - lo), std::abs(a_lo - hi)),
                     std::min(std::abs(a_hi - lo), std::abs(a_hi - hi)));
        if (a_lo <= mid && mid <= a_hi) {
          nm = std::max(nm, 0.5 * (hi - lo));
        }
        near_max[d] = nm;
        far_max[d] = std::max(std::max(std::abs(a_lo - lo), std::abs(a_lo - hi)),
                              std::max(std::abs(a_hi - lo), std::abs(a_hi - hi)));
      }
      double best = -1.0;
      for (int k = 0; k < Dim; ++k) {
        double acc = 0.0;
        for (int d = 0; d < Dim; ++d) {
          acc =
              batch_internal::Acc<M>(acc, d == k ? near_max[d] : far_max[d]);
        }
        const double candidate = batch_internal::Fin<M>(acc);
        if (best < 0.0 || candidate < best) best = candidate;
      }
      out[i] = best;
    }
  });
}

}  // namespace sdj

#endif  // SDJOIN_GEOMETRY_RECT_BATCH_H_
