// Disk-paged R-tree with R*-tree insertion (Beckmann et al. [5], the variant
// the paper evaluates — Section 2.1/3.1) and a classic Guttman quadratic-split
// mode for ablations.
//
// Nodes live in fixed-size pages behind an LRU buffer pool, so every algorithm
// running on the tree gets faithful "node I/O" accounting. Objects are stored
// directly in the leaves as degenerate rectangles (the paper's experimental
// configuration); extended objects simply use non-degenerate entry MBRs.
//
// Thread-compatible: concurrent readers need external synchronization because
// reads go through the shared buffer pool.
#ifndef SDJOIN_RTREE_RTREE_H_
#define SDJOIN_RTREE_RTREE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "geometry/code_screen.h"
#include "geometry/distance.h"
#include "geometry/point.h"
#include "geometry/rect.h"
#include "geometry/simd.h"
#include "rtree/node_layout.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injection.h"
#include "storage/page.h"
#include "storage/page_file.h"
#include "storage/page_store.h"
#include "util/check.h"

namespace sdj {

// Identifies a data object stored in a leaf. The join algorithms assume ids
// are dense in [0, N) per relation (they index bit strings and bound tables
// with them); use the object's position in the input collection.
using ObjectId = uint64_t;

// Construction parameters for an RTree.
struct RTreeOptions {
  enum class Split { kRStar, kQuadratic };

  // Bytes per node; determines the fan-out (2048 => 51 entries in 2-D,
  // matching the paper's fan-out of 50 with 1K float-coordinate nodes).
  uint32_t page_size = storage::kDefaultPageSize;
  // LRU buffer capacity in pages (128 * 2K = 256K, the paper's buffer size).
  uint32_t buffer_pages = 128;
  // If non-zero, caps the fan-out below what the page could hold.
  uint32_t max_entries_override = 0;
  // Minimum node fill as a fraction of the maximum (paper: "typically 40%").
  double min_fill = 0.4;
  Split split_policy = Split::kRStar;
  // Fraction of entries re-inserted on the first overflow per level per
  // insertion (R* forced reinsert; Beckmann et al. recommend 30%).
  double reinsert_fraction = 0.3;
  // Leaf fill fraction used by BulkLoad.
  double bulk_fill = 0.9;
  // If non-empty, pages are stored in this file instead of memory.
  std::string file_path;
  // If set, the page store injects faults from this schedule (testing).
  std::optional<storage::FaultInjectionOptions> fault_injection;
  // If set, the page store simulates power loss at one exact write/sync op
  // (testing — see storage::CrashPointPageFile). Because tree construction
  // uses aborting Pin/NewPage (no recovery path, CLAUDE.md), a crash point
  // hit during a build aborts the process; crash-point build tests run the
  // build in a death-test child and scrub the torn file from the parent.
  std::optional<storage::CrashPointOptions> crash_point;
  // For Open(): truncate a torn final page instead of refusing the file.
  bool recover_truncated_tail = false;
  // Bounded-retry policy for the tree's buffer pool.
  storage::RetryPolicy retry;
  // How node pages store entry MBRs (rtree/node_layout.h). kQuantized packs
  // each MBR into per-node fixed-point u16 codes, roughly 2.5x the fan-out
  // per page in 2-D; codes round outward, so decoded MBRs conservatively
  // contain the stored rects but are no longer minimal bounding regions
  // (minimal_bounding_regions() returns false and the join engines fall back
  // to containment-only d_max bounds, as for the quadtree).
  NodeEncoding encoding = NodeEncoding::kRaw;
};

// A height-balanced R-tree over Rect<Dim> keys (Section 2.1).
template <int Dim>
class RTree {
 public:
  // Node MBRs minimally bound the data beneath them (every face touched),
  // enabling the MINMAXDIST-based d_max bounds of Section 2.2.3. This is the
  // compile-time upper bound; quantized trees lose minimality to outward
  // rounding, so engines must consult minimal_bounding_regions() at runtime.
  static constexpr bool kMinimalBoundingRegions = true;
  static constexpr int kDim = Dim;

  // Whether this tree's node MBRs are minimal bounding regions. False under
  // NodeEncoding::kQuantized: outward rounding keeps MINDIST lower bounds
  // valid but breaks the "every face touched" premise of MINMAXDIST, so the
  // engines must use containment-only d_max bounds (SemiPairMaxDistLoose).
  bool minimal_bounding_regions() const {
    return options_.encoding == NodeEncoding::kRaw;
  }

  // One leaf-level (object) entry.
  struct Entry {
    Rect<Dim> rect;
    ObjectId id = 0;
  };

  explicit RTree(const RTreeOptions& options = RTreeOptions())
      : options_(options), codec_(options.encoding) {
    std::unique_ptr<storage::PageFile> file = storage::CreatePageStore(
        {options.page_size, options.file_path, options.fault_injection,
         options.crash_point},
        &injector_, &crash_);
    SDJ_CHECK(file != nullptr);
    pool_ = std::make_unique<storage::BufferPool>(
        std::move(file), options.buffer_pages, options.retry);
    max_entries_ = codec_.Capacity(options.page_size);
    if (options.max_entries_override != 0) {
      max_entries_ = std::min(max_entries_, options.max_entries_override);
    }
    SDJ_CHECK(max_entries_ >= 4);
    min_entries_ = std::max<uint32_t>(
        2, static_cast<uint32_t>(max_entries_ * options.min_fill));
    // Page 0 is reserved for tree metadata (persistence; see Flush/Open).
    storage::PageId meta;
    pool_->NewPage(&meta);
    SDJ_CHECK(meta == kMetaPage);
    pool_->Unpin(meta, /*dirty=*/true);
  }

  // Opens a previously Flush()ed file-backed tree. `options.file_path` must
  // name the file; page_size must match creation time (verified against the
  // stored metadata, as are dimension and fan-out). Returns null if the file
  // is missing, was created with different parameters, or is not a flushed
  // sdjoin R-tree.
  static std::unique_ptr<RTree> Open(const RTreeOptions& options) {
    SDJ_CHECK(!options.file_path.empty());
    storage::FaultInjectingPageFile* injector = nullptr;
    storage::CrashPointPageFile* crash = nullptr;
    std::unique_ptr<storage::PageFile> file = storage::OpenPageStore(
        {options.page_size, options.file_path, options.fault_injection,
         options.crash_point},
        options.recover_truncated_tail, &injector, &crash);
    if (file == nullptr || file->num_pages() == 0) return nullptr;
    auto pool = std::make_unique<storage::BufferPool>(
        std::move(file), options.buffer_pages, options.retry);
    std::unique_ptr<RTree> tree(new RTree(options, std::move(pool)));
    tree->injector_ = injector;
    tree->crash_ = crash;
    if (!tree->LoadMeta()) return nullptr;
    return tree;
  }

  // Writes the tree metadata and flushes every dirty page to the backing
  // store (fsync included); a file-backed tree becomes reopenable via Open()
  // afterwards. Returns false if any page could not be written back.
  bool Flush() {
    StoreMeta();
    return pool_->FlushAll();
  }

  // Move-only (owns the buffer pool).
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) noexcept = default;
  RTree& operator=(RTree&&) noexcept = default;

  // --- Read access -------------------------------------------------------

  // RAII read handle on a node page; the page stays buffered while alive.
  // A handle from TryPin may be empty (ok() == false) after an I/O failure;
  // accessors must not be called on an empty handle.
  class PinnedNode {
   public:
    PinnedNode(storage::BufferPool* pool, storage::PageId page,
               rtree_internal::NodeCodec<Dim> codec)
        : pool_(pool), page_(page), data_(pool->Pin(page)), codec_(codec) {}
    // Adopts an already-pinned buffer (null = failed pin, empty handle).
    PinnedNode(storage::BufferPool* pool, storage::PageId page,
               const char* data, rtree_internal::NodeCodec<Dim> codec)
        : pool_(data == nullptr ? nullptr : pool),
          page_(page),
          data_(data),
          codec_(codec) {}
    ~PinnedNode() {
      if (pool_ != nullptr) pool_->Unpin(page_, /*dirty=*/false);
    }
    PinnedNode(const PinnedNode&) = delete;
    PinnedNode& operator=(const PinnedNode&) = delete;
    PinnedNode(PinnedNode&& other) noexcept
        : pool_(other.pool_),
          page_(other.page_),
          data_(other.data_),
          codec_(other.codec_) {
      other.pool_ = nullptr;
    }
    PinnedNode& operator=(PinnedNode&&) = delete;

    // False if the pin failed; the handle is inert (destructor is a no-op).
    bool ok() const { return data_ != nullptr; }

    storage::PageId page() const { return page_; }
    int level() const { return codec_.GetLevel(data_); }
    bool is_leaf() const { return level() == 0; }
    uint32_t count() const { return codec_.GetCount(data_); }
    Rect<Dim> rect(uint32_t i) const { return codec_.GetRect(data_, i); }
    // Child page id (interior nodes) or object id (leaves).
    uint64_t ref(uint32_t i) const { return codec_.GetRef(data_, i); }
    // Decodes all entries straight off the page into structure-of-arrays
    // form for the batched distance kernels (one pass, replaces contents).
    void DecodeInto(RectBatch<Dim>* rects, std::vector<uint64_t>* refs)
        const {
      codec_.DecodeEntries(data_, rects, refs);
    }
    // DecodeInto with integer-domain screening (DESIGN.md §17): on a
    // quantized page, screens the entry codes against `query` and
    // `max_distance` and decodes only the survivors (page order preserved).
    // Every screened-out entry is PROVABLY out of range — the exact kernels
    // would compute MinDist > max_distance for its decoded rect — so the
    // caller charges it the same counters the classify ladder charges a
    // range-pruned entry and the output stream is unchanged. Returns true
    // iff screening actually ran (quantized page with a prunable grid);
    // *screened_out gets the number of entries dropped (0 otherwise, with
    // a plain full decode).
    bool DecodeScreened(const Rect<Dim>& query, double max_distance,
                        simd::Isa isa,
                        code_screen::ScreenScratch<Dim>* scratch,
                        RectBatch<Dim>* rects, std::vector<uint64_t>* refs,
                        size_t* screened_out) const {
      *screened_out = 0;
      if (!codec_.quantized()) {
        codec_.DecodeEntries(data_, rects, refs);
        return false;
      }
      using Quant = rtree_internal::QuantizedNodeLayout<Dim>;
      const typename Quant::Grid g = Quant::GetGrid(data_);
      code_screen::Prepare<Dim>(g.base, g.scale, query, max_distance,
                                &scratch->query);
      if (!scratch->query.active) {
        codec_.DecodeEntries(data_, rects, refs);
        return false;
      }
      const uint32_t n = codec_.GetCount(data_);
      scratch->codes.resize(size_t{n} * 2 * Dim);
      Quant::CopyCodes(data_, scratch->codes.data());
      scratch->pruned.resize(n);
      code_screen::ScreenCodesBatch<Dim>(scratch->query,
                                         scratch->codes.data(), n,
                                         scratch->pruned.data(), isa);
      const uint32_t kept = Quant::DecodeEntriesSubset(
          data_, scratch->pruned.data(), rects, refs);
      *screened_out = n - kept;
      return true;
    }

   private:
    storage::BufferPool* pool_;
    storage::PageId page_;
    const char* data_;
    rtree_internal::NodeCodec<Dim> codec_;
  };

  // Pins node `page` for reading. Valid page ids come from root() or ref().
  // Aborts on I/O failure; algorithms with a recovery path use TryPin.
  PinnedNode Pin(storage::PageId page) const {
    return PinnedNode(pool_.get(), page, codec_);
  }

  // Pins node `page`, reporting I/O failure (after the pool's bounded
  // retries) as an empty handle instead of aborting. `status`, when non-null,
  // receives the failing IoStatus.
  PinnedNode TryPin(storage::PageId page,
                    storage::IoStatus* status = nullptr) const {
    const char* data = pool_->TryPin(page, status);
    return PinnedNode(pool_.get(), page, data, codec_);
  }

  bool empty() const { return root_ == storage::kInvalidPageId; }
  // Number of objects.
  size_t size() const { return size_; }
  // Largest ObjectId ever inserted (0 for an empty tree). The join engines
  // validate the dense-id precondition (ids in [0, size)) against this at
  // construction; Delete never shrinks it, so the check is conservative.
  ObjectId max_object_id() const { return max_object_id_; }
  // Number of levels; 0 for an empty tree, 1 for a root-leaf tree.
  int height() const { return empty() ? 0 : root_level_ + 1; }
  storage::PageId root() const { return root_; }
  int root_level() const { return root_level_; }
  uint32_t max_entries() const { return max_entries_; }
  uint32_t min_entries() const { return min_entries_; }
  size_t num_nodes() const { return num_nodes_; }
  size_t num_leaves() const { return num_leaves_; }

  // MBR of the whole tree (the root's entries). Tree must be non-empty.
  Rect<Dim> RootMbr() const {
    SDJ_CHECK(!empty());
    PinnedNode node = Pin(root_);
    return MbrOfNode(node);
  }

  // Guaranteed lower bound on the number of objects in the subtree of a node
  // at `level` (Section 2.2.4: derived from minimum fan-out and height). The
  // root is exempt from the minimum-fill rule, but only non-root nodes appear
  // as subtree items inside the join, so min_entries^(level+1) applies.
  uint64_t MinObjectsUnder(int level) const {
    uint64_t n = 1;
    for (int l = 0; l <= level; ++l) n *= min_entries_;
    return n;
  }

  // Expected number of objects under a node at `level`: the measured average
  // over all nodes at that level (the paper's "more aggressive strategy",
  // Section 2.2.4 — may overestimate for a specific node and force a query
  // restart).
  double ExpectedObjectsUnder(int level) const {
    if (level < 0 || static_cast<size_t>(level) >= nodes_per_level_.size() ||
        nodes_per_level_[level] == 0) {
      return 0.0;
    }
    return static_cast<double>(size_) / nodes_per_level_[level];
  }

  // --- Modification ------------------------------------------------------

  // Inserts one object.
  void Insert(const Rect<Dim>& rect, ObjectId id) {
    SDJ_CHECK(rect.IsValid());
    std::vector<bool> reinserted;  // one flag per level, lazily sized
    InsertAtLevel(0, rect, id, &reinserted);
    ++size_;
    max_object_id_ = std::max(max_object_id_, id);
  }

  // Removes the object with exactly this (rect, id) entry. Returns false if
  // no such entry exists.
  bool Delete(const Rect<Dim>& rect, ObjectId id) {
    if (empty()) return false;
    std::vector<PathStep> path;
    storage::PageId leaf = storage::kInvalidPageId;
    uint32_t leaf_index = 0;
    if (!FindLeaf(root_, root_level_, rect, id, &path, &leaf, &leaf_index)) {
      return false;
    }
    RemoveEntry(leaf, leaf_index);
    CondenseTree(path, leaf);
    --size_;
    return true;
  }

  // Builds the tree from scratch with sort-tile-recursive packing. The tree
  // must be empty. Much faster than repeated Insert and produces well-shaped
  // nodes with `bulk_fill` occupancy.
  void BulkLoad(std::vector<Entry> entries) {
    SDJ_CHECK(empty());
    if (entries.empty()) return;
    const uint32_t cap = std::max<uint32_t>(
        min_entries_,
        static_cast<uint32_t>(max_entries_ * options_.bulk_fill));
    // Pack the leaf level.
    std::vector<std::pair<Rect<Dim>, uint64_t>> items;
    items.reserve(entries.size());
    for (const Entry& e : entries) {
      items.push_back({e.rect, e.id});
      max_object_id_ = std::max(max_object_id_, e.id);
    }
    size_ = entries.size();
    int level = 0;
    for (;;) {
      std::vector<std::pair<Rect<Dim>, uint64_t>> parents;
      PackLevel(&items, cap, level, &parents);
      items = std::move(parents);
      if (items.size() == 1) break;
      ++level;
    }
    root_ = static_cast<storage::PageId>(items[0].second);
    root_level_ = level;
  }

  // --- Queries -----------------------------------------------------------

  // Appends all objects whose entry MBR intersects `query` to `out`.
  void RangeQuery(const Rect<Dim>& query, std::vector<Entry>* out) const {
    if (empty()) return;
    RangeQueryNode(root_, query, out);
  }

  // Invokes `fn(rect, id)` for every object, in leaf order.
  template <typename Fn>
  void ForEachObject(Fn&& fn) const {
    if (empty()) return;
    ForEachObjectNode(root_, fn);
  }

  // --- Introspection -----------------------------------------------------

  // Checks all structural invariants (balance, fill, MBR tightness, object
  // count). Returns true if consistent; otherwise false with a description
  // in `error` (if non-null).
  bool Validate(std::string* error = nullptr) const {
    if (empty()) {
      if (size_ != 0) return Fail(error, "empty tree with nonzero size");
      return true;
    }
    size_t objects = 0;
    if (!ValidateNode(root_, root_level_, /*is_root=*/true, nullptr, &objects,
                      error)) {
      return false;
    }
    if (objects != size_) return Fail(error, "object count mismatch");
    return true;
  }

  // The buffer pool, exposed for I/O accounting (Table 1's "Node I/O") and
  // for cold-cache experiment setup.
  storage::BufferPool& pool() const { return *pool_; }

  // Fault-injection layer, when options.fault_injection was set; null
  // otherwise. Borrowed from the pool-owned page-store stack.
  storage::FaultInjectingPageFile* injector() const { return injector_; }

  // Crash-point layer, when options.crash_point was set; null otherwise.
  // Borrowed from the pool-owned page-store stack.
  storage::CrashPointPageFile* crash_point() const { return crash_; }

 private:
  static constexpr storage::PageId kMetaPage = 0;
  static constexpr uint32_t kMetaMagic = 0x534A5254;  // "SJRT"
  // v2 appends max_object_id (dense-id precondition survives reopen).
  // v3 appends the node encoding; Open() refuses a file whose encoding does
  // not match options.encoding (pages would be misread otherwise).
  static constexpr uint32_t kMetaVersion = 3;

  struct PathStep {
    storage::PageId page;
    uint32_t child_index;
  };

  // Private constructor for Open(): adopts an existing pool, allocates no
  // meta page.
  RTree(const RTreeOptions& options,
        std::unique_ptr<storage::BufferPool> pool)
      : options_(options), codec_(options.encoding), pool_(std::move(pool)) {
    max_entries_ = codec_.Capacity(options.page_size);
    if (options.max_entries_override != 0) {
      max_entries_ = std::min(max_entries_, options.max_entries_override);
    }
    min_entries_ = std::max<uint32_t>(
        2, static_cast<uint32_t>(max_entries_ * options.min_fill));
  }

  void StoreMeta() {
    char* data = pool_->Pin(kMetaPage);
    char* p = data;
    const auto put32 = [&p](uint32_t v) {
      std::memcpy(p, &v, 4);
      p += 4;
    };
    const auto put64 = [&p](uint64_t v) {
      std::memcpy(p, &v, 8);
      p += 8;
    };
    put32(kMetaMagic);
    put32(kMetaVersion);
    put32(static_cast<uint32_t>(Dim));
    put32(options_.page_size);
    put32(max_entries_);
    put32(min_entries_);
    put32(static_cast<uint32_t>(options_.encoding));
    put32(root_);
    put32(static_cast<uint32_t>(root_level_));
    put64(size_);
    put64(num_nodes_);
    put64(num_leaves_);
    put64(max_object_id_);
    put32(static_cast<uint32_t>(nodes_per_level_.size()));
    for (size_t n : nodes_per_level_) put64(n);
    pool_->Unpin(kMetaPage, /*dirty=*/true);
  }

  bool LoadMeta() {
    // A corrupt or unreadable meta page makes Open() return null rather
    // than aborting.
    const char* data = pool_->TryPin(kMetaPage);
    if (data == nullptr) return false;
    const char* p = data;
    const auto get32 = [&p]() {
      uint32_t v;
      std::memcpy(&v, p, 4);
      p += 4;
      return v;
    };
    const auto get64 = [&p]() {
      uint64_t v;
      std::memcpy(&v, p, 8);
      p += 8;
      return v;
    };
    bool ok = get32() == kMetaMagic && get32() == kMetaVersion &&
              get32() == static_cast<uint32_t>(Dim) &&
              get32() == options_.page_size && get32() == max_entries_ &&
              get32() == min_entries_ &&
              get32() == static_cast<uint32_t>(options_.encoding);
    if (ok) {
      root_ = get32();
      root_level_ = static_cast<int>(get32());
      size_ = get64();
      num_nodes_ = get64();
      num_leaves_ = get64();
      max_object_id_ = get64();
      nodes_per_level_.assign(get32(), 0);
      for (size_t& n : nodes_per_level_) n = get64();
    }
    pool_->Unpin(kMetaPage, /*dirty=*/false);
    return ok;
  }

  // -- small page helpers --

  storage::PageId AllocateNode(int level) {
    storage::PageId id;
    char* data = pool_->NewPage(&id);
    codec_.Init(data, static_cast<uint16_t>(level));
    pool_->Unpin(id, /*dirty=*/true);
    ++num_nodes_;
    if (level == 0) ++num_leaves_;
    if (nodes_per_level_.size() <= static_cast<size_t>(level)) {
      nodes_per_level_.resize(level + 1, 0);
    }
    ++nodes_per_level_[level];
    return id;
  }

  void ReleaseNode(int level) {
    --num_nodes_;
    if (level == 0) --num_leaves_;
    SDJ_DCHECK(static_cast<size_t>(level) < nodes_per_level_.size());
    --nodes_per_level_[level];
  }

  static Rect<Dim> MbrOfNode(const PinnedNode& node) {
    Rect<Dim> mbr = Rect<Dim>::Empty();
    for (uint32_t i = 0; i < node.count(); ++i) {
      mbr.ExpandToInclude(node.rect(i));
    }
    return mbr;
  }

  Rect<Dim> ComputeNodeMbr(storage::PageId page) const {
    PinnedNode node = Pin(page);
    return MbrOfNode(node);
  }

  void AppendEntry(storage::PageId page, const Rect<Dim>& rect, uint64_t ref) {
    char* data = pool_->Pin(page);
    SDJ_CHECK(codec_.GetCount(data) < max_entries_);
    codec_.Append(data, rect, ref);
    pool_->Unpin(page, /*dirty=*/true);
  }

  void RemoveEntry(storage::PageId page, uint32_t index) {
    char* data = pool_->Pin(page);
    codec_.Remove(data, index);
    pool_->Unpin(page, /*dirty=*/true);
  }

  void WriteEntries(storage::PageId page,
                    const std::vector<std::pair<Rect<Dim>, uint64_t>>& entries,
                    size_t begin, size_t end) {
    char* data = pool_->Pin(page);
    SDJ_CHECK(end - begin <= max_entries_);
    codec_.WriteAll(data, entries, begin, end);
    pool_->Unpin(page, /*dirty=*/true);
  }

  // -- insertion --

  void InsertAtLevel(int target_level, const Rect<Dim>& rect, uint64_t ref,
                     std::vector<bool>* reinserted) {
    if (empty()) {
      SDJ_CHECK(target_level == 0);
      root_ = AllocateNode(0);
      root_level_ = 0;
      AppendEntry(root_, rect, ref);
      return;
    }
    if (reinserted->size() < static_cast<size_t>(root_level_) + 1) {
      reinserted->resize(root_level_ + 1, false);
    }

    // Descend to the target level, remembering the path.
    std::vector<PathStep> path;
    storage::PageId node = root_;
    int level = root_level_;
    while (level > target_level) {
      PinnedNode pinned = Pin(node);
      const uint32_t child_index = ChooseSubtree(pinned, rect);
      const storage::PageId child =
          static_cast<storage::PageId>(pinned.ref(child_index));
      path.push_back({node, child_index});
      node = child;
      --level;
    }

    Rect<Dim> pending_rect = rect;
    uint64_t pending_ref = ref;
    for (;;) {
      char* data = pool_->Pin(node);
      const uint16_t count = codec_.GetCount(data);
      const int node_level = codec_.GetLevel(data);
      if (count < max_entries_) {
        codec_.Append(data, pending_rect, pending_ref);
        pool_->Unpin(node, /*dirty=*/true);
        PropagateMbrUp(path, node);
        return;
      }

      // Overflow: collect the M+1 entries in memory. Under the quantized
      // encoding these are the DECODED rects — the tree only ever reasons
      // about what a reader will see, so splits and parent MBRs stay
      // consistent with the stored (outward-rounded) entries.
      std::vector<std::pair<Rect<Dim>, uint64_t>> all;
      all.reserve(count + 1);
      for (uint32_t i = 0; i < count; ++i) {
        all.push_back({codec_.GetRect(data, i), codec_.GetRef(data, i)});
      }
      pool_->Unpin(node, /*dirty=*/false);
      all.push_back({pending_rect, pending_ref});

      const bool is_root = (node == root_);
      if (options_.split_policy == RTreeOptions::Split::kRStar && !is_root &&
          !(*reinserted)[node_level]) {
        // R* forced reinsert: remove the entries farthest from the node
        // center and insert them again from the root (once per level per
        // top-level insertion).
        (*reinserted)[node_level] = true;
        Rect<Dim> mbr = Rect<Dim>::Empty();
        for (const auto& e : all) mbr.ExpandToInclude(e.first);
        const Point<Dim> center = mbr.Center();
        std::stable_sort(all.begin(), all.end(),
                         [&center](const auto& a, const auto& b) {
                           return Dist(a.first.Center(), center) >
                                  Dist(b.first.Center(), center);
                         });
        const size_t p = std::max<size_t>(
            1, static_cast<size_t>(all.size() * options_.reinsert_fraction));
        std::vector<std::pair<Rect<Dim>, uint64_t>> requeue(
            all.begin(), all.begin() + static_cast<long>(p));
        WriteEntries(node, all, p, all.size());
        PropagateMbrUp(path, node);
        // Reinsert far entries last-first (closest of the removed first).
        for (auto it = requeue.rbegin(); it != requeue.rend(); ++it) {
          InsertAtLevel(node_level, it->first, it->second, reinserted);
        }
        return;
      }

      // Split.
      size_t split_point = 0;
      if (options_.split_policy == RTreeOptions::Split::kRStar) {
        split_point = RStarSplit(&all);
      } else {
        split_point = QuadraticSplit(&all);
      }
      const storage::PageId right = AllocateNode(node_level);
      WriteEntries(node, all, 0, split_point);
      WriteEntries(right, all, split_point, all.size());
      Rect<Dim> mbr_left = Rect<Dim>::Empty();
      for (size_t i = 0; i < split_point; ++i) {
        mbr_left.ExpandToInclude(all[i].first);
      }
      Rect<Dim> mbr_right = Rect<Dim>::Empty();
      for (size_t i = split_point; i < all.size(); ++i) {
        mbr_right.ExpandToInclude(all[i].first);
      }
      if (codec_.quantized()) {
        // WriteEntries re-gridded both pages, so the stored entries may be
        // wider than `all`; parent MBRs must cover the decoded entries.
        // (Raw trees skip this: the extra pins would change buffer-pool
        // residency and thus the node-I/O accounting the goldens pin.)
        mbr_left = ComputeNodeMbr(node);
        mbr_right = ComputeNodeMbr(right);
      }

      if (is_root) {
        SDJ_CHECK(path.empty());
        const storage::PageId new_root = AllocateNode(node_level + 1);
        AppendEntry(new_root, mbr_left, node);
        AppendEntry(new_root, mbr_right, right);
        root_ = new_root;
        root_level_ = node_level + 1;
        return;
      }

      // Update the parent's rect for the split node, then push the new
      // sibling up as the pending entry.
      const PathStep step = path.back();
      path.pop_back();
      {
        char* parent = pool_->Pin(step.page);
        codec_.SetEntryRect(parent, step.child_index, mbr_left);
        pool_->Unpin(step.page, /*dirty=*/true);
      }
      pending_rect = mbr_right;
      pending_ref = right;
      node = step.page;
    }
  }

  // Recomputes ancestor MBRs bottom-up after `bottom` (the deepest modified
  // node) changed. `path[i].child_index` addresses the child chosen inside
  // `path[i].page`; that child is `path[i+1].page`, or `bottom` for the last
  // step.
  void PropagateMbrUp(const std::vector<PathStep>& path,
                      storage::PageId bottom) {
    for (size_t i = path.size(); i-- > 0;) {
      const storage::PageId child =
          (i + 1 < path.size()) ? path[i + 1].page : bottom;
      const Rect<Dim> mbr = ComputeNodeMbr(child);
      char* parent = pool_->Pin(path[i].page);
      codec_.SetEntryRect(parent, path[i].child_index, mbr);
      pool_->Unpin(path[i].page, /*dirty=*/true);
    }
  }

  // R* ChooseSubtree: minimal overlap enlargement when the children are
  // leaves, else minimal area enlargement; ties by area.
  uint32_t ChooseSubtree(const PinnedNode& node, const Rect<Dim>& rect) const {
    const uint32_t count = node.count();
    SDJ_CHECK(count > 0);
    uint32_t best = 0;
    if (node.level() == 1) {
      double best_overlap = 0.0;
      double best_enlarge = 0.0;
      double best_area = 0.0;
      for (uint32_t i = 0; i < count; ++i) {
        const Rect<Dim> ri = node.rect(i);
        Rect<Dim> enlarged = ri;
        enlarged.ExpandToInclude(rect);
        double overlap_delta = 0.0;
        for (uint32_t j = 0; j < count; ++j) {
          if (j == i) continue;
          const Rect<Dim> rj = node.rect(j);
          overlap_delta += enlarged.OverlapArea(rj) - ri.OverlapArea(rj);
        }
        const double enlarge = ri.AreaEnlargement(rect);
        const double area = ri.Area();
        if (i == 0 || overlap_delta < best_overlap ||
            (overlap_delta == best_overlap &&
             (enlarge < best_enlarge ||
              (enlarge == best_enlarge && area < best_area)))) {
          best = i;
          best_overlap = overlap_delta;
          best_enlarge = enlarge;
          best_area = area;
        }
      }
      return best;
    }
    double best_enlarge = 0.0;
    double best_area = 0.0;
    for (uint32_t i = 0; i < count; ++i) {
      const Rect<Dim> ri = node.rect(i);
      const double enlarge = ri.AreaEnlargement(rect);
      const double area = ri.Area();
      if (i == 0 || enlarge < best_enlarge ||
          (enlarge == best_enlarge && area < best_area)) {
        best = i;
        best_enlarge = enlarge;
        best_area = area;
      }
    }
    return best;
  }

  // R* split (Beckmann et al.): choose the axis with the smallest sum of
  // group margins over all distributions, then the distribution with minimal
  // overlap (ties: minimal total area). Reorders `entries` and returns the
  // index separating the two groups.
  size_t RStarSplit(std::vector<std::pair<Rect<Dim>, uint64_t>>* entries) {
    const size_t total = entries->size();
    const size_t m = min_entries_;
    SDJ_CHECK(total >= 2 * m);

    int best_axis = -1;
    bool best_axis_by_hi = false;
    double best_margin_sum = 0.0;
    for (int axis = 0; axis < Dim; ++axis) {
      for (int by_hi = 0; by_hi < 2; ++by_hi) {
        SortEntries(entries, axis, by_hi != 0);
        double margin_sum = 0.0;
        ForEachDistribution(*entries, m, [&](size_t k, const Rect<Dim>& a,
                                             const Rect<Dim>& b) {
          (void)k;
          margin_sum += a.Margin() + b.Margin();
        });
        if (best_axis < 0 || margin_sum < best_margin_sum) {
          best_axis = axis;
          best_axis_by_hi = (by_hi != 0);
          best_margin_sum = margin_sum;
        }
      }
    }

    SortEntries(entries, best_axis, best_axis_by_hi);
    size_t best_k = m;
    double best_overlap = 0.0;
    double best_area = 0.0;
    bool first = true;
    ForEachDistribution(
        *entries, m, [&](size_t k, const Rect<Dim>& a, const Rect<Dim>& b) {
          const double overlap = a.OverlapArea(b);
          const double area = a.Area() + b.Area();
          if (first || overlap < best_overlap ||
              (overlap == best_overlap && area < best_area)) {
            first = false;
            best_k = k;
            best_overlap = overlap;
            best_area = area;
          }
        });
    return best_k;
  }

  static void SortEntries(std::vector<std::pair<Rect<Dim>, uint64_t>>* entries,
                          int axis, bool by_hi) {
    std::stable_sort(entries->begin(), entries->end(),
                     [axis, by_hi](const auto& a, const auto& b) {
                       if (by_hi) {
                         if (a.first.hi[axis] != b.first.hi[axis]) {
                           return a.first.hi[axis] < b.first.hi[axis];
                         }
                         return a.first.lo[axis] < b.first.lo[axis];
                       }
                       if (a.first.lo[axis] != b.first.lo[axis]) {
                         return a.first.lo[axis] < b.first.lo[axis];
                       }
                       return a.first.hi[axis] < b.first.hi[axis];
                     });
  }

  // Calls fn(k, mbr_first_k, mbr_rest) for every legal split point k.
  template <typename Fn>
  static void ForEachDistribution(
      const std::vector<std::pair<Rect<Dim>, uint64_t>>& entries, size_t m,
      Fn&& fn) {
    const size_t total = entries.size();
    // Prefix and suffix MBRs.
    std::vector<Rect<Dim>> prefix(total);
    std::vector<Rect<Dim>> suffix(total);
    Rect<Dim> acc = Rect<Dim>::Empty();
    for (size_t i = 0; i < total; ++i) {
      acc.ExpandToInclude(entries[i].first);
      prefix[i] = acc;
    }
    acc = Rect<Dim>::Empty();
    for (size_t i = total; i-- > 0;) {
      acc.ExpandToInclude(entries[i].first);
      suffix[i] = acc;
    }
    for (size_t k = m; k + m <= total; ++k) {
      fn(k, prefix[k - 1], suffix[k]);
    }
  }

  // Guttman's quadratic split. Reorders `entries` so the first group is a
  // prefix; returns the group boundary.
  size_t QuadraticSplit(std::vector<std::pair<Rect<Dim>, uint64_t>>* entries) {
    const size_t total = entries->size();
    const size_t m = min_entries_;
    // PickSeeds: the pair wasting the most area.
    size_t seed_a = 0;
    size_t seed_b = 1;
    double worst = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < total; ++i) {
      for (size_t j = i + 1; j < total; ++j) {
        Rect<Dim> combined = (*entries)[i].first;
        combined.ExpandToInclude((*entries)[j].first);
        const double waste = combined.Area() - (*entries)[i].first.Area() -
                             (*entries)[j].first.Area();
        if (waste > worst) {
          worst = waste;
          seed_a = i;
          seed_b = j;
        }
      }
    }
    std::vector<size_t> group_a = {seed_a};
    std::vector<size_t> group_b = {seed_b};
    Rect<Dim> mbr_a = (*entries)[seed_a].first;
    Rect<Dim> mbr_b = (*entries)[seed_b].first;
    std::vector<bool> assigned(total, false);
    assigned[seed_a] = assigned[seed_b] = true;
    size_t remaining = total - 2;
    while (remaining > 0) {
      // If one group must absorb the rest to reach the minimum, do so.
      if (group_a.size() + remaining == m || group_b.size() + remaining == m) {
        auto& group = (group_a.size() + remaining == m) ? group_a : group_b;
        auto& mbr = (group_a.size() + remaining == m) ? mbr_a : mbr_b;
        for (size_t i = 0; i < total; ++i) {
          if (!assigned[i]) {
            group.push_back(i);
            mbr.ExpandToInclude((*entries)[i].first);
            assigned[i] = true;
          }
        }
        remaining = 0;
        break;
      }
      // PickNext: maximal preference difference.
      size_t next = 0;
      double best_diff = -1.0;
      double d_a_next = 0.0;
      double d_b_next = 0.0;
      for (size_t i = 0; i < total; ++i) {
        if (assigned[i]) continue;
        const double da = mbr_a.AreaEnlargement((*entries)[i].first);
        const double db = mbr_b.AreaEnlargement((*entries)[i].first);
        const double diff = std::abs(da - db);
        if (diff > best_diff) {
          best_diff = diff;
          next = i;
          d_a_next = da;
          d_b_next = db;
        }
      }
      const bool to_a =
          d_a_next < d_b_next ||
          (d_a_next == d_b_next &&
           (mbr_a.Area() < mbr_b.Area() ||
            (mbr_a.Area() == mbr_b.Area() && group_a.size() <= group_b.size())));
      if (to_a) {
        group_a.push_back(next);
        mbr_a.ExpandToInclude((*entries)[next].first);
      } else {
        group_b.push_back(next);
        mbr_b.ExpandToInclude((*entries)[next].first);
      }
      assigned[next] = true;
      --remaining;
    }
    // Materialize the grouping as a reorder of `entries`.
    std::vector<std::pair<Rect<Dim>, uint64_t>> reordered;
    reordered.reserve(total);
    for (size_t i : group_a) reordered.push_back((*entries)[i]);
    for (size_t i : group_b) reordered.push_back((*entries)[i]);
    *entries = std::move(reordered);
    return group_a.size();
  }

  // -- deletion --

  bool FindLeaf(storage::PageId page, int level, const Rect<Dim>& rect,
                ObjectId id, std::vector<PathStep>* path,
                storage::PageId* leaf, uint32_t* leaf_index) const {
    PinnedNode node = Pin(page);
    if (level == 0) {
      for (uint32_t i = 0; i < node.count(); ++i) {
        // Quantized leaves store the outward-rounded rect, so an exact match
        // against the caller's original rect is impossible; id plus
        // containment identifies the entry instead.
        if (node.ref(i) == id &&
            (codec_.quantized() ? node.rect(i).Contains(rect)
                                : node.rect(i) == rect)) {
          *leaf = page;
          *leaf_index = i;
          return true;
        }
      }
      return false;
    }
    for (uint32_t i = 0; i < node.count(); ++i) {
      if (!node.rect(i).Contains(rect)) continue;
      path->push_back({page, i});
      if (FindLeaf(static_cast<storage::PageId>(node.ref(i)), level - 1, rect,
                   id, path, leaf, leaf_index)) {
        return true;
      }
      path->pop_back();
    }
    return false;
  }

  void CondenseTree(std::vector<PathStep> path, storage::PageId node) {
    // Orphan entries to re-insert, tagged with the level of the node they
    // came from (an entry from a level-L node must re-enter at level L).
    std::vector<std::tuple<int, Rect<Dim>, uint64_t>> orphans;
    while (!path.empty()) {
      const PathStep step = path.back();
      path.pop_back();
      PinnedNode pinned = Pin(node);
      const uint32_t count = pinned.count();
      const int level = pinned.level();
      if (count < min_entries_) {
        for (uint32_t i = 0; i < count; ++i) {
          orphans.emplace_back(level, pinned.rect(i), pinned.ref(i));
        }
        // The page is abandoned (no free list; acceptable for this library's
        // build-once workloads).
        ReleaseNode(level);
        // `pinned` must release before mutating the parent.
        {
          PinnedNode discard = std::move(pinned);
          (void)discard;
        }
        RemoveEntry(step.page, step.child_index);
        // RemoveEntry swaps the last entry into the hole, which can only
        // affect indices >= child_index; the remaining path steps reference
        // their own parents, so nothing else needs fixing.
      } else {
        const Rect<Dim> mbr = MbrOfNode(pinned);
        {
          PinnedNode discard = std::move(pinned);
          (void)discard;
        }
        char* parent = pool_->Pin(step.page);
        codec_.SetEntryRect(parent, step.child_index, mbr);
        pool_->Unpin(step.page, /*dirty=*/true);
      }
      node = step.page;
    }
    // Shrink the root.
    for (;;) {
      PinnedNode pinned = Pin(root_);
      const uint32_t count = pinned.count();
      const int level = pinned.level();
      if (level > 0 && count == 1) {
        const storage::PageId only =
            static_cast<storage::PageId>(pinned.ref(0));
        ReleaseNode(level);
        root_ = only;
        root_level_ = level - 1;
        continue;
      }
      if (level == 0 && count == 0) {
        ReleaseNode(0);
        root_ = storage::kInvalidPageId;
        root_level_ = 0;
      }
      break;
    }
    // Re-insert orphans (deepest levels first so heights line up).
    std::stable_sort(orphans.begin(), orphans.end(),
                     [](const auto& a, const auto& b) {
                       return std::get<0>(a) > std::get<0>(b);
                     });
    for (const auto& [level, rect, ref] : orphans) {
      std::vector<bool> reinserted;
      // An orphan subtree can be taller than a shrunken tree; rebuild the
      // root chain if needed by growing the tree with the subtree's objects.
      if (empty() || level > root_level_) {
        ReinsertSubtree(level, rect, ref);
      } else {
        InsertAtLevel(level, rect, ref, &reinserted);
      }
    }
  }

  // Re-inserts every object under an orphaned subtree one by one (used only
  // when the subtree no longer fits the shrunken tree's height).
  void ReinsertSubtree(int level, const Rect<Dim>& rect, uint64_t ref) {
    if (level == 0) {
      std::vector<bool> reinserted;
      InsertAtLevel(0, rect, ref, &reinserted);
      return;
    }
    // `ref` points to a node at level-1 whose entries came "from level-1";
    // unpack it and recurse until objects (level 0 entries) remain.
    std::vector<std::pair<Rect<Dim>, uint64_t>> children;
    {
      PinnedNode node = Pin(static_cast<storage::PageId>(ref));
      for (uint32_t i = 0; i < node.count(); ++i) {
        children.push_back({node.rect(i), node.ref(i)});
      }
    }
    ReleaseNode(level - 1);
    for (const auto& [child_rect, child_ref] : children) {
      ReinsertSubtree(level - 1, child_rect, child_ref);
    }
  }

  // -- bulk load --

  // Packs `items` (entries for nodes at `level`) into nodes of `cap` entries
  // using sort-tile-recursive grouping; emits (node MBR, node page) parents.
  void PackLevel(std::vector<std::pair<Rect<Dim>, uint64_t>>* items,
                 uint32_t cap, int level,
                 std::vector<std::pair<Rect<Dim>, uint64_t>>* parents) {
    std::vector<std::pair<size_t, size_t>> groups;
    StrGroup(items, 0, items->size(), cap, 0, &groups);
    for (const auto& [begin, end] : groups) {
      const storage::PageId page = AllocateNode(level);
      WriteEntries(page, *items, begin, end);
      Rect<Dim> mbr = Rect<Dim>::Empty();
      if (codec_.quantized()) {
        // Parent MBRs must cover the quantized (outward-rounded) entries a
        // reader will decode, not the pre-quantization inputs.
        mbr = ComputeNodeMbr(page);
      } else {
        for (size_t i = begin; i < end; ++i) {
          mbr.ExpandToInclude((*items)[i].first);
        }
      }
      parents->push_back({mbr, page});
    }
  }

  // Recursively tiles items[begin, end) along dimension `dim`, emitting
  // groups of at most `cap` items. Group sizes are balanced (never a tiny
  // remainder), so every packed node meets the minimum-fill invariant as long
  // as min_entries <= cap/2.
  void StrGroup(std::vector<std::pair<Rect<Dim>, uint64_t>>* items,
                size_t begin, size_t end, uint32_t cap, int dim,
                std::vector<std::pair<size_t, size_t>>* groups) {
    const size_t n = end - begin;
    if (n == 0) return;
    if (n <= cap) {
      groups->push_back({begin, end});
      return;
    }
    std::sort(items->begin() + static_cast<long>(begin),
              items->begin() + static_cast<long>(end),
              [dim](const auto& a, const auto& b) {
                return a.first.Center()[dim] < b.first.Center()[dim];
              });
    if (dim == Dim - 1) {
      EmitBalancedChunks(begin, end, cap, groups);
      return;
    }
    const size_t total_nodes = (n + cap - 1) / cap;
    const size_t slabs = static_cast<size_t>(std::ceil(
        std::pow(static_cast<double>(total_nodes), 1.0 / (Dim - dim))));
    // Split [begin, end) into `slabs` nearly equal parts.
    const size_t base = n / slabs;
    const size_t extra = n % slabs;
    size_t start = begin;
    for (size_t s = 0; s < slabs; ++s) {
      const size_t len = base + (s < extra ? 1 : 0);
      StrGroup(items, start, start + len, cap, dim + 1, groups);
      start += len;
    }
  }

  // Splits [begin, end) into ceil(n/cap) nearly equal consecutive chunks.
  static void EmitBalancedChunks(size_t begin, size_t end, uint32_t cap,
                                 std::vector<std::pair<size_t, size_t>>* groups) {
    const size_t n = end - begin;
    const size_t chunks = (n + cap - 1) / cap;
    const size_t base = n / chunks;
    const size_t extra = n % chunks;
    size_t start = begin;
    for (size_t c = 0; c < chunks; ++c) {
      const size_t len = base + (c < extra ? 1 : 0);
      groups->push_back({start, start + len});
      start += len;
    }
  }

  // -- queries --

  void RangeQueryNode(storage::PageId page, const Rect<Dim>& query,
                      std::vector<Entry>* out) const {
    PinnedNode node = Pin(page);
    if (node.is_leaf()) {
      for (uint32_t i = 0; i < node.count(); ++i) {
        if (query.Intersects(node.rect(i))) {
          out->push_back({node.rect(i), node.ref(i)});
        }
      }
      return;
    }
    for (uint32_t i = 0; i < node.count(); ++i) {
      if (query.Intersects(node.rect(i))) {
        RangeQueryNode(static_cast<storage::PageId>(node.ref(i)), query, out);
      }
    }
  }

  template <typename Fn>
  void ForEachObjectNode(storage::PageId page, Fn& fn) const {
    PinnedNode node = Pin(page);
    if (node.is_leaf()) {
      for (uint32_t i = 0; i < node.count(); ++i) {
        fn(node.rect(i), node.ref(i));
      }
      return;
    }
    for (uint32_t i = 0; i < node.count(); ++i) {
      ForEachObjectNode(static_cast<storage::PageId>(node.ref(i)), fn);
    }
  }

  // -- validation --

  static bool Fail(std::string* error, const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  }

  bool ValidateNode(storage::PageId page, int expected_level, bool is_root,
                    const Rect<Dim>* parent_rect, size_t* objects,
                    std::string* error) const {
    PinnedNode node = Pin(page);
    if (node.level() != expected_level) {
      return Fail(error, "level mismatch at page " + std::to_string(page));
    }
    const uint32_t count = node.count();
    if (!is_root && count < min_entries_) {
      return Fail(error, "underfull node at page " + std::to_string(page));
    }
    if (count > max_entries_) {
      return Fail(error, "overfull node at page " + std::to_string(page));
    }
    if (is_root && expected_level > 0 && count < 2) {
      return Fail(error, "interior root with < 2 entries");
    }
    const Rect<Dim> mbr = MbrOfNode(node);
    if (parent_rect != nullptr) {
      // A quantized parent entry is itself outward-rounded, so it can only
      // be required to CONTAIN the child's decoded MBR; raw trees keep the
      // exact-tightness invariant.
      if (codec_.quantized() ? !parent_rect->Contains(mbr)
                             : !(mbr == *parent_rect)) {
        return Fail(error,
                    "parent MBR not tight at page " + std::to_string(page));
      }
    }
    if (node.is_leaf()) {
      *objects += count;
      return true;
    }
    for (uint32_t i = 0; i < count; ++i) {
      const Rect<Dim> child_rect = node.rect(i);
      if (!ValidateNode(static_cast<storage::PageId>(node.ref(i)),
                        expected_level - 1, /*is_root=*/false, &child_rect,
                        objects, error)) {
        return false;
      }
    }
    return true;
  }

  RTreeOptions options_;
  rtree_internal::NodeCodec<Dim> codec_;
  mutable std::unique_ptr<storage::BufferPool> pool_;
  storage::FaultInjectingPageFile* injector_ = nullptr;
  storage::CrashPointPageFile* crash_ = nullptr;
  uint32_t max_entries_ = 0;
  uint32_t min_entries_ = 0;
  storage::PageId root_ = storage::kInvalidPageId;
  int root_level_ = 0;
  size_t size_ = 0;
  size_t num_nodes_ = 0;
  size_t num_leaves_ = 0;
  ObjectId max_object_id_ = 0;
  std::vector<size_t> nodes_per_level_;  // [level] -> live node count
};

}  // namespace sdj

#endif  // SDJOIN_RTREE_RTREE_H_
