// On-page layout of R-tree nodes.
//
// A node occupies exactly one page (Section 2.1: "the node capacity is
// usually chosen so that a node fills up one disk page"):
//
//   offset 0: uint16 level   (0 = leaf)
//   offset 2: uint16 count   (number of live entries)
//   offset 4: 4 bytes padding (keeps entries 8-byte aligned)
//   offset 8: count entries, each
//             2*Dim doubles  (entry MBR: lo coords then hi coords)
//             uint64         (child page id for interior nodes,
//                             object id for leaves)
//
// All access goes through memcpy-based accessors so that the raw page buffer
// never needs to satisfy strict-aliasing requirements; compilers lower these
// to single loads/stores.
#ifndef SDJOIN_RTREE_NODE_LAYOUT_H_
#define SDJOIN_RTREE_NODE_LAYOUT_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "geometry/rect.h"
#include "geometry/rect_batch.h"
#include "util/check.h"

namespace sdj::rtree_internal {

template <int Dim>
struct NodeLayout {
  static constexpr uint32_t kHeaderSize = 8;
  static constexpr uint32_t kRectSize = 2 * Dim * sizeof(double);
  static constexpr uint32_t kEntrySize = kRectSize + sizeof(uint64_t);

  // Maximum number of entries that fit in one page of `page_size` bytes.
  static constexpr uint32_t Capacity(uint32_t page_size) {
    return (page_size - kHeaderSize) / kEntrySize;
  }

  static uint16_t GetLevel(const char* page) {
    uint16_t v;
    std::memcpy(&v, page, sizeof(v));
    return v;
  }
  static void SetLevel(char* page, uint16_t level) {
    std::memcpy(page, &level, sizeof(level));
  }

  static uint16_t GetCount(const char* page) {
    uint16_t v;
    std::memcpy(&v, page + 2, sizeof(v));
    return v;
  }
  static void SetCount(char* page, uint16_t count) {
    std::memcpy(page + 2, &count, sizeof(count));
  }

  static sdj::Rect<Dim> GetRect(const char* page, uint32_t i) {
    sdj::Rect<Dim> r;
    const char* base = page + kHeaderSize + i * kEntrySize;
    std::memcpy(r.lo.coords.data(), base, Dim * sizeof(double));
    std::memcpy(r.hi.coords.data(), base + Dim * sizeof(double),
                Dim * sizeof(double));
    return r;
  }
  static void SetRect(char* page, uint32_t i, const sdj::Rect<Dim>& r) {
    char* base = page + kHeaderSize + i * kEntrySize;
    std::memcpy(base, r.lo.coords.data(), Dim * sizeof(double));
    std::memcpy(base + Dim * sizeof(double), r.hi.coords.data(),
                Dim * sizeof(double));
  }

  // Decodes every entry of the page at once: the MBRs transposed into
  // structure-of-arrays form for the batched distance kernels
  // (geometry/rect_batch.h), the refs into a plain array. One pass over the
  // page instead of per-entry GetRect/GetRef calls in the join's expansion
  // loop. Prior contents of the outputs are replaced.
  static void DecodeEntries(const char* page, RectBatch<Dim>* rects,
                            std::vector<uint64_t>* refs) {
    const uint32_t n = GetCount(page);
    rects->resize(n);
    refs->resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      const char* base = page + kHeaderSize + i * kEntrySize;
      rects->set(i, GetRect(page, i));
      std::memcpy(&(*refs)[i], base + kRectSize, sizeof(uint64_t));
    }
  }

  static uint64_t GetRef(const char* page, uint32_t i) {
    uint64_t v;
    std::memcpy(&v, page + kHeaderSize + i * kEntrySize + kRectSize,
                sizeof(v));
    return v;
  }
  static void SetRef(char* page, uint32_t i, uint64_t ref) {
    std::memcpy(page + kHeaderSize + i * kEntrySize + kRectSize, &ref,
                sizeof(ref));
  }
};

}  // namespace sdj::rtree_internal

#endif  // SDJOIN_RTREE_NODE_LAYOUT_H_
