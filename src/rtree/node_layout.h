// On-page layouts of R-tree nodes.
//
// A node occupies exactly one page (Section 2.1: "the node capacity is
// usually chosen so that a node fills up one disk page"). Two encodings
// share the same 8-byte header (DESIGN.md §15):
//
// Raw (NodeLayout — full doubles, the default):
//   offset 0: uint16 level   (0 = leaf)
//   offset 2: uint16 count   (number of live entries)
//   offset 4: 4 bytes padding (keeps entries 8-byte aligned)
//   offset 8: count entries, each
//             2*Dim doubles  (entry MBR: lo coords then hi coords)
//             uint64         (child page id for interior nodes,
//                             object id for leaves)
//
// Quantized (QuantizedNodeLayout — per-node fixed-point MBRs, ~4x fewer
// rect bytes, so ~2.5x the fan-out in 2-D):
//   offset 0/2/4: header as above
//   offset 8: per-node grid: Dim doubles base, then Dim doubles scale
//   then:     count entries, each
//             2*Dim uint16   (quantized MBR: lo codes then hi codes)
//             uint64         (child page id / object id)
//
// A quantized coordinate q decodes to base[d] + q * scale[d] (exact double
// arithmetic, so decode is deterministic). Encoding rounds OUTWARD — lo
// codes decode <= the true lo, hi codes decode >= the true hi — so a decoded
// entry MBR always CONTAINS the rect that was stored. That keeps MINDIST
// lower bounds valid and preserves the Section 2.2 distance-bound
// consistency invariant; the cost is that quantized MBRs are no longer
// minimal bounding regions, so MINMAXDIST-based d_max bounds are off
// (RTree::minimal_bounding_regions() == false, engines fall back to the
// containment-only SemiPairMaxDistLoose bounds, exactly as for the
// quadtree). The tree only ever reasons about DECODED rects — parent MBRs,
// splits, and validation all run over what a reader will see, never the
// pre-quantization inputs — so every downstream consumer is self-consistent.
//
// All access goes through memcpy-based accessors so that the raw page buffer
// never needs to satisfy strict-aliasing requirements; compilers lower these
// to single loads/stores.
#ifndef SDJOIN_RTREE_NODE_LAYOUT_H_
#define SDJOIN_RTREE_NODE_LAYOUT_H_

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "geometry/rect.h"
#include "geometry/rect_batch.h"
#include "util/check.h"

namespace sdj {

// How node pages encode entry MBRs. Raw stores full doubles; quantized
// stores per-node fixed-point u16 codes (outward-rounded, see above).
enum class NodeEncoding : uint8_t { kRaw = 0, kQuantized = 1 };

}  // namespace sdj

namespace sdj::rtree_internal {

template <int Dim>
struct NodeLayout {
  static constexpr uint32_t kHeaderSize = 8;
  static constexpr uint32_t kRectSize = 2 * Dim * sizeof(double);
  static constexpr uint32_t kEntrySize = kRectSize + sizeof(uint64_t);

  // Maximum number of entries that fit in one page of `page_size` bytes.
  static constexpr uint32_t Capacity(uint32_t page_size) {
    return (page_size - kHeaderSize) / kEntrySize;
  }

  static uint16_t GetLevel(const char* page) {
    uint16_t v;
    std::memcpy(&v, page, sizeof(v));
    return v;
  }
  static void SetLevel(char* page, uint16_t level) {
    std::memcpy(page, &level, sizeof(level));
  }

  static uint16_t GetCount(const char* page) {
    uint16_t v;
    std::memcpy(&v, page + 2, sizeof(v));
    return v;
  }
  static void SetCount(char* page, uint16_t count) {
    std::memcpy(page + 2, &count, sizeof(count));
  }

  static sdj::Rect<Dim> GetRect(const char* page, uint32_t i) {
    sdj::Rect<Dim> r;
    const char* base = page + kHeaderSize + i * kEntrySize;
    std::memcpy(r.lo.coords.data(), base, Dim * sizeof(double));
    std::memcpy(r.hi.coords.data(), base + Dim * sizeof(double),
                Dim * sizeof(double));
    return r;
  }
  static void SetRect(char* page, uint32_t i, const sdj::Rect<Dim>& r) {
    char* base = page + kHeaderSize + i * kEntrySize;
    std::memcpy(base, r.lo.coords.data(), Dim * sizeof(double));
    std::memcpy(base + Dim * sizeof(double), r.hi.coords.data(),
                Dim * sizeof(double));
  }

  // Decodes every entry of the page at once: the MBRs transposed into
  // structure-of-arrays form for the batched distance kernels
  // (geometry/rect_batch.h), the refs into a plain array. One pass over the
  // page instead of per-entry GetRect/GetRef calls in the join's expansion
  // loop. Prior contents of the outputs are replaced.
  static void DecodeEntries(const char* page, RectBatch<Dim>* rects,
                            std::vector<uint64_t>* refs) {
    const uint32_t n = GetCount(page);
    rects->resize(n);
    refs->resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      const char* base = page + kHeaderSize + i * kEntrySize;
      rects->set(i, GetRect(page, i));
      std::memcpy(&(*refs)[i], base + kRectSize, sizeof(uint64_t));
    }
  }

  static uint64_t GetRef(const char* page, uint32_t i) {
    uint64_t v;
    std::memcpy(&v, page + kHeaderSize + i * kEntrySize + kRectSize,
                sizeof(v));
    return v;
  }
  static void SetRef(char* page, uint32_t i, uint64_t ref) {
    std::memcpy(page + kHeaderSize + i * kEntrySize + kRectSize, &ref,
                sizeof(ref));
  }
};

// Fixed-point per-node MBR encoding (layout at the top of this file). The
// level/count header is byte-compatible with NodeLayout, so the shared
// accessors in NodeCodec work on either page kind.
template <int Dim>
struct QuantizedNodeLayout {
  static constexpr uint32_t kHeaderSize = 8;
  static constexpr uint32_t kGridSize = 2 * Dim * sizeof(double);
  static constexpr uint32_t kCodesSize = 2 * Dim * sizeof(uint16_t);
  static constexpr uint32_t kEntrySize = kCodesSize + sizeof(uint64_t);
  static constexpr uint16_t kMaxCode = 65535;

  static constexpr uint32_t Capacity(uint32_t page_size) {
    return (page_size - kHeaderSize - kGridSize) / kEntrySize;
  }

  // The per-node quantization grid: decoded coord = base[d] + code * scale[d].
  struct Grid {
    double base[Dim];
    double scale[Dim];
  };

  static Grid GetGrid(const char* page) {
    Grid g;
    std::memcpy(g.base, page + kHeaderSize, Dim * sizeof(double));
    std::memcpy(g.scale, page + kHeaderSize + Dim * sizeof(double),
                Dim * sizeof(double));
    return g;
  }
  static void SetGrid(char* page, const Grid& g) {
    std::memcpy(page + kHeaderSize, g.base, Dim * sizeof(double));
    std::memcpy(page + kHeaderSize + Dim * sizeof(double), g.scale,
                Dim * sizeof(double));
  }

  static double Decode(const Grid& g, int d, uint16_t code) {
    return g.base[d] + code * g.scale[d];
  }

  // True iff `r` can be encoded under `g` with outward rounding, i.e. the
  // grid's span [base, Decode(kMaxCode)] covers it in every dimension.
  // NaN coordinates fail both comparisons and so are reported as covered —
  // use CanRepresent on any path that may see unvalidated rects.
  static bool Fits(const Grid& g, const sdj::Rect<Dim>& r) {
    for (int d = 0; d < Dim; ++d) {
      if (r.lo[d] < g.base[d]) return false;
      if (r.hi[d] > Decode(g, d, kMaxCode)) return false;
    }
    return true;
  }

  // Strict form of Fits for the write paths: additionally rejects rects no
  // outward-rounded encoding can ever contain — NaN or infinite
  // coordinates, and inverted intervals. In particular a hi coordinate
  // above the span of a zero-width grid (scale == 0, hi > base) fails here
  // via the Fits span check, so EncodeHi's saturated code is never stored.
  static bool CanRepresent(const Grid& g, const sdj::Rect<Dim>& r) {
    for (int d = 0; d < Dim; ++d) {
      if (!std::isfinite(r.lo[d]) || !std::isfinite(r.hi[d])) return false;
      if (!(r.lo[d] <= r.hi[d])) return false;
    }
    return Fits(g, r);
  }

  // Largest code whose decode is <= x (outward for a lo coordinate).
  // Precondition: x >= base[d] (Fits). The float estimate can be off by an
  // ulp in either direction; the fixup loops walk to the exact boundary.
  static uint16_t EncodeLo(const Grid& g, int d, double x) {
    // Zero-width grid: every code decodes to base <= x (precondition), so
    // code 0 is exact. (Unlike EncodeHi there is no unrepresentable side:
    // for a lo coordinate base <= x is outward already.)
    if (g.scale[d] <= 0.0) return 0;
    double est = (x - g.base[d]) / g.scale[d];
    if (!(est >= 0.0)) est = 0.0;
    if (est > kMaxCode) est = kMaxCode;
    uint32_t q = static_cast<uint32_t>(est);
    while (q > 0 && Decode(g, d, static_cast<uint16_t>(q)) > x) --q;
    while (q < kMaxCode && Decode(g, d, static_cast<uint16_t>(q + 1)) <= x) {
      ++q;
    }
    SDJ_DCHECK(Decode(g, d, static_cast<uint16_t>(q)) <= x);
    return static_cast<uint16_t>(q);
  }

  // Smallest code whose decode is >= x (outward for a hi coordinate).
  // Precondition: x <= Decode(kMaxCode) (Fits).
  static uint16_t EncodeHi(const Grid& g, int d, double x) {
    // A zero-width grid decodes every code to base, so code 0 is outward
    // only when base already covers x. When x > base no code can decode
    // >= x — CanRepresent/Fits reject such rects before any write — but
    // saturating keeps the decode as close to containing x as the grid
    // allows, instead of landing it maximally below x.
    if (g.scale[d] <= 0.0) return x <= g.base[d] ? 0 : kMaxCode;
    double est = (x - g.base[d]) / g.scale[d];
    if (!(est >= 0.0)) est = 0.0;
    if (est > kMaxCode) est = kMaxCode;
    uint32_t q = static_cast<uint32_t>(est);
    while (q < kMaxCode && Decode(g, d, static_cast<uint16_t>(q)) < x) ++q;
    while (q > 0 && Decode(g, d, static_cast<uint16_t>(q - 1)) >= x) --q;
    SDJ_DCHECK(Decode(g, d, static_cast<uint16_t>(q)) >= x);
    return static_cast<uint16_t>(q);
  }

  // Builds the tightest grid covering [min_lo, max_hi] per dimension such
  // that code kMaxCode decodes to >= max_hi. Coordinates must be finite
  // (quantized trees reject inf/NaN keys at Insert via Rect::IsValid plus
  // the check here).
  static Grid MakeGrid(const double* min_lo, const double* max_hi) {
    Grid g;
    for (int d = 0; d < Dim; ++d) {
      SDJ_CHECK(std::isfinite(min_lo[d]) && std::isfinite(max_hi[d]));
      SDJ_CHECK(min_lo[d] <= max_hi[d]);
      g.base[d] = min_lo[d];
      // Estimate from the direct span: within an ulp or two of the minimal
      // covering scale, so the bump/tighten walk below terminates in a few
      // steps. (The halved form used previously avoids overflow but
      // catastrophically cancels for narrow spans at large magnitudes —
      // the estimate could land at 0.0 and the ulp walk up from the
      // denormals effectively never terminates.) Only when the direct
      // difference overflows to inf do we fall back to the halved form,
      // where the walk is capped anyway.
      double scale = (max_hi[d] - min_lo[d]) / kMaxCode;
      if (!std::isfinite(scale)) {
        scale = max_hi[d] / 2.0 / (kMaxCode / 2.0) -
                min_lo[d] / 2.0 / (kMaxCode / 2.0);
      }
      if (scale < 0.0 || !std::isfinite(scale)) scale = 0.0;
      // Bump until the top code really covers max_hi (division may round
      // down), then tighten back while the next-smaller scale still covers.
      while (Decode({{g.base[d]}, {scale}}, 0, kMaxCode) < max_hi[d]) {
        scale = std::nextafter(scale,
                               std::numeric_limits<double>::infinity());
      }
      // The walk is capped: the estimate is within a few ulps of minimal
      // whenever kMaxCode * scale is finite, but once the product overflows
      // to inf (spans near the double range) every smaller-but-still-
      // overflowing scale also "covers", and walking ulp-by-ulp down to the
      // first finite product would take ~1e16 steps. An over-wide scale
      // only costs tightness, never containment.
      for (int step = 0; step < 4 && scale > 0.0; ++step) {
        const double smaller = std::nextafter(scale, 0.0);
        if (Decode({{g.base[d]}, {smaller}}, 0, kMaxCode) < max_hi[d]) break;
        scale = smaller;
      }
      g.scale[d] = scale;
    }
    return g;
  }

  static sdj::Rect<Dim> GetRect(const char* page, uint32_t i) {
    return GetRectWithGrid(page, GetGrid(page), i);
  }

  static sdj::Rect<Dim> GetRectWithGrid(const char* page, const Grid& g,
                                        uint32_t i) {
    uint16_t codes[2 * Dim];
    std::memcpy(codes, page + kHeaderSize + kGridSize + i * kEntrySize,
                sizeof(codes));
    sdj::Rect<Dim> r;
    for (int d = 0; d < Dim; ++d) {
      r.lo[d] = Decode(g, d, codes[d]);
      r.hi[d] = Decode(g, d, codes[Dim + d]);
    }
    return r;
  }

  // Encodes `r` in place under the page's current grid. Precondition:
  // Fits(grid, r); callers re-grid the node (RewriteAll) otherwise.
  static void SetRect(char* page, uint32_t i, const sdj::Rect<Dim>& r) {
    const Grid g = GetGrid(page);
    SDJ_DCHECK(Fits(g, r));
    uint16_t codes[2 * Dim];
    for (int d = 0; d < Dim; ++d) {
      codes[d] = EncodeLo(g, d, r.lo[d]);
      codes[Dim + d] = EncodeHi(g, d, r.hi[d]);
    }
    std::memcpy(page + kHeaderSize + kGridSize + i * kEntrySize, codes,
                sizeof(codes));
  }

  static uint64_t GetRef(const char* page, uint32_t i) {
    uint64_t v;
    std::memcpy(&v, page + kHeaderSize + kGridSize + i * kEntrySize +
                        kCodesSize,
                sizeof(v));
    return v;
  }
  static void SetRef(char* page, uint32_t i, uint64_t ref) {
    std::memcpy(page + kHeaderSize + kGridSize + i * kEntrySize + kCodesSize,
                &ref, sizeof(ref));
  }

  static void MoveEntry(char* page, uint32_t dst, uint32_t src) {
    char* base = page + kHeaderSize + kGridSize;
    std::memmove(base + dst * kEntrySize, base + src * kEntrySize,
                 kEntrySize);
  }

  // Re-encodes the whole node over a fresh tight grid for exactly
  // `entries`: the canonical write path (splits, reinserts, bulk load) and
  // the widening path when an appended rect does not fit the current grid.
  // Level and anything else in the header are left untouched.
  static void RewriteAll(
      char* page,
      const std::vector<std::pair<sdj::Rect<Dim>, uint64_t>>& entries) {
    double min_lo[Dim];
    double max_hi[Dim];
    for (int d = 0; d < Dim; ++d) {
      min_lo[d] = std::numeric_limits<double>::infinity();
      max_hi[d] = -std::numeric_limits<double>::infinity();
    }
    for (const auto& [r, ref] : entries) {
      for (int d = 0; d < Dim; ++d) {
        min_lo[d] = std::min(min_lo[d], r.lo[d]);
        max_hi[d] = std::max(max_hi[d], r.hi[d]);
      }
    }
    if (entries.empty()) {
      for (int d = 0; d < Dim; ++d) min_lo[d] = max_hi[d] = 0.0;
    }
    const Grid g = MakeGrid(min_lo, max_hi);
    SetGrid(page, g);
    NodeLayout<Dim>::SetCount(page,
                              static_cast<uint16_t>(entries.size()));
    for (uint32_t i = 0; i < entries.size(); ++i) {
      SetRect(page, i, entries[i].first);
      SetRef(page, i, entries[i].second);
    }
  }

  static void DecodeEntries(const char* page, RectBatch<Dim>* rects,
                            std::vector<uint64_t>* refs) {
    const uint32_t n = NodeLayout<Dim>::GetCount(page);
    const Grid g = GetGrid(page);
    rects->resize(n);
    refs->resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      rects->set(i, GetRectWithGrid(page, g, i));
      (*refs)[i] = GetRef(page, i);
    }
  }

  // Copies every entry's raw u16 codes (lo codes then hi codes, exactly the
  // page order) into `out`, contiguous per entry at out[i * 2 * Dim]. `out`
  // must hold GetCount(page) * 2 * Dim values. This is the feed for the
  // integer screening kernels (geometry/code_screen.h), which look only at
  // codes, never refs.
  static void CopyCodes(const char* page, uint16_t* out) {
    const uint32_t n = NodeLayout<Dim>::GetCount(page);
    const char* base = page + kHeaderSize + kGridSize;
    for (uint32_t i = 0; i < n; ++i) {
      std::memcpy(out + size_t{i} * 2 * Dim, base + i * kEntrySize,
                  kCodesSize);
    }
  }

  // DecodeEntries restricted to the entries whose `pruned[i]` byte is zero
  // (integer screening survivors), preserving page order — so downstream
  // seq assignment sees survivors in the same relative order as a full
  // decode. Returns the survivor count; rects/refs end up exactly that
  // size.
  static uint32_t DecodeEntriesSubset(const char* page, const uint8_t* pruned,
                                      RectBatch<Dim>* rects,
                                      std::vector<uint64_t>* refs) {
    const uint32_t n = NodeLayout<Dim>::GetCount(page);
    const Grid g = GetGrid(page);
    rects->resize(n);
    refs->resize(n);
    uint32_t kept = 0;
    for (uint32_t i = 0; i < n; ++i) {
      if (pruned[i] != 0) continue;
      rects->set(kept, GetRectWithGrid(page, g, i));
      (*refs)[kept] = GetRef(page, i);
      ++kept;
    }
    rects->resize(kept);
    refs->resize(kept);
    return kept;
  }
};

// Runtime switch between the two page encodings. One instance per tree
// (constructed from RTreeOptions::encoding); every page access inside RTree
// and its PinnedNode goes through this, so a tree's pages are uniformly one
// encoding and the branch predicts perfectly.
template <int Dim>
class NodeCodec {
  using Raw = NodeLayout<Dim>;
  using Quant = QuantizedNodeLayout<Dim>;

 public:
  NodeCodec() = default;
  explicit NodeCodec(NodeEncoding encoding) : encoding_(encoding) {}

  NodeEncoding encoding() const { return encoding_; }
  bool quantized() const { return encoding_ == NodeEncoding::kQuantized; }

  uint32_t Capacity(uint32_t page_size) const {
    return quantized() ? Quant::Capacity(page_size)
                       : Raw::Capacity(page_size);
  }

  // Level and count live at the same offsets in both layouts.
  uint16_t GetLevel(const char* page) const { return Raw::GetLevel(page); }
  uint16_t GetCount(const char* page) const { return Raw::GetCount(page); }

  // Fresh node: level, zero count, and (quantized) a zeroed grid.
  void Init(char* page, uint16_t level) const {
    Raw::SetLevel(page, level);
    Raw::SetCount(page, 0);
    if (quantized()) {
      typename Quant::Grid g{};
      Quant::SetGrid(page, g);
    }
  }

  sdj::Rect<Dim> GetRect(const char* page, uint32_t i) const {
    return quantized() ? Quant::GetRect(page, i) : Raw::GetRect(page, i);
  }
  uint64_t GetRef(const char* page, uint32_t i) const {
    return quantized() ? Quant::GetRef(page, i) : Raw::GetRef(page, i);
  }
  void DecodeEntries(const char* page, RectBatch<Dim>* rects,
                     std::vector<uint64_t>* refs) const {
    if (quantized()) {
      Quant::DecodeEntries(page, rects, refs);
    } else {
      Raw::DecodeEntries(page, rects, refs);
    }
  }

  // Appends one entry; count must be below capacity. Under the quantized
  // encoding, a rect outside the node's current grid forces a whole-node
  // re-encode over a widened grid (monotone: every previously decoded rect
  // stays contained in its re-encoded form).
  void Append(char* page, const sdj::Rect<Dim>& rect, uint64_t ref) const {
    const uint16_t count = Raw::GetCount(page);
    if (!quantized()) {
      Raw::SetRect(page, count, rect);
      Raw::SetRef(page, count, ref);
      Raw::SetCount(page, count + 1);
      return;
    }
    if (count == 0 || !Quant::CanRepresent(Quant::GetGrid(page), rect)) {
      std::vector<std::pair<sdj::Rect<Dim>, uint64_t>> all =
          CollectEntries(page);
      all.push_back({rect, ref});
      Quant::RewriteAll(page, all);
      return;
    }
    Quant::SetRect(page, count, rect);
    Quant::SetRef(page, count, ref);
    Raw::SetCount(page, count + 1);
  }

  // Replaces entry i's rect (parent-MBR maintenance), re-gridding the node
  // if the new rect doesn't fit.
  void SetEntryRect(char* page, uint32_t i, const sdj::Rect<Dim>& rect) const {
    if (!quantized()) {
      Raw::SetRect(page, i, rect);
      return;
    }
    if (Quant::CanRepresent(Quant::GetGrid(page), rect)) {
      Quant::SetRect(page, i, rect);
      return;
    }
    std::vector<std::pair<sdj::Rect<Dim>, uint64_t>> all =
        CollectEntries(page);
    all[i].first = rect;
    Quant::RewriteAll(page, all);
  }

  // Swap-last removal, as RTree::RemoveEntry has always done.
  void Remove(char* page, uint32_t i) const {
    const uint16_t count = Raw::GetCount(page);
    SDJ_CHECK(i < count);
    if (!quantized()) {
      if (i + 1 < count) {
        Raw::SetRect(page, i, Raw::GetRect(page, count - 1));
        Raw::SetRef(page, i, Raw::GetRef(page, count - 1));
      }
      Raw::SetCount(page, count - 1);
      return;
    }
    if (i + 1 < count) Quant::MoveEntry(page, i, count - 1);
    Raw::SetCount(page, count - 1);
  }

  // Replaces the node's entries with entries[begin, end): the split /
  // reinsert / bulk-load write path. Quantized nodes get a fresh tight grid
  // over exactly those entries.
  void WriteAll(char* page,
                const std::vector<std::pair<sdj::Rect<Dim>, uint64_t>>&
                    entries,
                size_t begin, size_t end) const {
    if (!quantized()) {
      for (size_t i = begin; i < end; ++i) {
        Raw::SetRect(page, static_cast<uint32_t>(i - begin),
                     entries[i].first);
        Raw::SetRef(page, static_cast<uint32_t>(i - begin),
                    entries[i].second);
      }
      Raw::SetCount(page, static_cast<uint16_t>(end - begin));
      return;
    }
    std::vector<std::pair<sdj::Rect<Dim>, uint64_t>> slice(
        entries.begin() + static_cast<long>(begin),
        entries.begin() + static_cast<long>(end));
    Quant::RewriteAll(page, slice);
  }

 private:
  std::vector<std::pair<sdj::Rect<Dim>, uint64_t>> CollectEntries(
      const char* page) const {
    const uint16_t count = Raw::GetCount(page);
    std::vector<std::pair<sdj::Rect<Dim>, uint64_t>> all;
    all.reserve(count + 1);
    for (uint32_t i = 0; i < count; ++i) {
      all.push_back({Quant::GetRect(page, i), Quant::GetRef(page, i)});
    }
    return all;
  }

  NodeEncoding encoding_ = NodeEncoding::kRaw;
};

}  // namespace sdj::rtree_internal

#endif  // SDJOIN_RTREE_NODE_LAYOUT_H_
