# Empty dependencies file for bench_quadtree.
# This may be replaced when dependencies are built.
