file(REMOVE_RECURSE
  "CMakeFiles/bench_quadtree.dir/bench_quadtree.cc.o"
  "CMakeFiles/bench_quadtree.dir/bench_quadtree.cc.o.d"
  "bench_quadtree"
  "bench_quadtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quadtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
