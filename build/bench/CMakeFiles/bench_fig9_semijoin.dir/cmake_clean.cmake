file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_semijoin.dir/bench_fig9_semijoin.cc.o"
  "CMakeFiles/bench_fig9_semijoin.dir/bench_fig9_semijoin.cc.o.d"
  "bench_fig9_semijoin"
  "bench_fig9_semijoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_semijoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
