# Empty compiler generated dependencies file for bench_fig9_semijoin.
# This may be replaced when dependencies are built.
