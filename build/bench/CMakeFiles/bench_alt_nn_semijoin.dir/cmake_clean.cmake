file(REMOVE_RECURSE
  "CMakeFiles/bench_alt_nn_semijoin.dir/bench_alt_nn_semijoin.cc.o"
  "CMakeFiles/bench_alt_nn_semijoin.dir/bench_alt_nn_semijoin.cc.o.d"
  "bench_alt_nn_semijoin"
  "bench_alt_nn_semijoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alt_nn_semijoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
