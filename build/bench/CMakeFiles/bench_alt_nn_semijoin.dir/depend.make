# Empty dependencies file for bench_alt_nn_semijoin.
# This may be replaced when dependencies are built.
