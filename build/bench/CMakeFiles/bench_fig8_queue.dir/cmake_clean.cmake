file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_queue.dir/bench_fig8_queue.cc.o"
  "CMakeFiles/bench_fig8_queue.dir/bench_fig8_queue.cc.o.d"
  "bench_fig8_queue"
  "bench_fig8_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
