# Empty compiler generated dependencies file for bench_fig8_queue.
# This may be replaced when dependencies are built.
