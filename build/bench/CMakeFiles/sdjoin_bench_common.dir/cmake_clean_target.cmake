file(REMOVE_RECURSE
  "libsdjoin_bench_common.a"
)
