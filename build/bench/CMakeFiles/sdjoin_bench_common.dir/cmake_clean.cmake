file(REMOVE_RECURSE
  "CMakeFiles/sdjoin_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/sdjoin_bench_common.dir/bench_common.cc.o.d"
  "libsdjoin_bench_common.a"
  "libsdjoin_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdjoin_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
