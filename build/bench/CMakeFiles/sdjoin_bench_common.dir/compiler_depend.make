# Empty compiler generated dependencies file for sdjoin_bench_common.
# This may be replaced when dependencies are built.
