# Empty dependencies file for bench_alt_nested_loop.
# This may be replaced when dependencies are built.
