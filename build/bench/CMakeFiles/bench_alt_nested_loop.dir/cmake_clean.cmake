file(REMOVE_RECURSE
  "CMakeFiles/bench_alt_nested_loop.dir/bench_alt_nested_loop.cc.o"
  "CMakeFiles/bench_alt_nested_loop.dir/bench_alt_nested_loop.cc.o.d"
  "bench_alt_nested_loop"
  "bench_alt_nested_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alt_nested_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
