# Empty compiler generated dependencies file for bench_fig6_traversal.
# This may be replaced when dependencies are built.
