file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_traversal.dir/bench_fig6_traversal.cc.o"
  "CMakeFiles/bench_fig6_traversal.dir/bench_fig6_traversal.cc.o.d"
  "bench_fig6_traversal"
  "bench_fig6_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
