file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_semijoin_maxdist.dir/bench_fig10_semijoin_maxdist.cc.o"
  "CMakeFiles/bench_fig10_semijoin_maxdist.dir/bench_fig10_semijoin_maxdist.cc.o.d"
  "bench_fig10_semijoin_maxdist"
  "bench_fig10_semijoin_maxdist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_semijoin_maxdist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
