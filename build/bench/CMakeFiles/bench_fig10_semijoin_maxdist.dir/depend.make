# Empty dependencies file for bench_fig10_semijoin_maxdist.
# This may be replaced when dependencies are built.
