# Empty compiler generated dependencies file for bench_dimensions.
# This may be replaced when dependencies are built.
