file(REMOVE_RECURSE
  "CMakeFiles/bench_dimensions.dir/bench_dimensions.cc.o"
  "CMakeFiles/bench_dimensions.dir/bench_dimensions.cc.o.d"
  "bench_dimensions"
  "bench_dimensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dimensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
