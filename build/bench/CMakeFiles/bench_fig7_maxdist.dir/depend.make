# Empty dependencies file for bench_fig7_maxdist.
# This may be replaced when dependencies are built.
