file(REMOVE_RECURSE
  "CMakeFiles/road_river_crossings.dir/road_river_crossings.cpp.o"
  "CMakeFiles/road_river_crossings.dir/road_river_crossings.cpp.o.d"
  "road_river_crossings"
  "road_river_crossings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_river_crossings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
