# Empty compiler generated dependencies file for road_river_crossings.
# This may be replaced when dependencies are built.
