file(REMOVE_RECURSE
  "CMakeFiles/city_river.dir/city_river.cpp.o"
  "CMakeFiles/city_river.dir/city_river.cpp.o.d"
  "city_river"
  "city_river.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_river.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
