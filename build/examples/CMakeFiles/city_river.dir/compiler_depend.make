# Empty compiler generated dependencies file for city_river.
# This may be replaced when dependencies are built.
