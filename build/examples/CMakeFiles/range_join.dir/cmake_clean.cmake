file(REMOVE_RECURSE
  "CMakeFiles/range_join.dir/range_join.cpp.o"
  "CMakeFiles/range_join.dir/range_join.cpp.o.d"
  "range_join"
  "range_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
