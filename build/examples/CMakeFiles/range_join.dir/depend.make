# Empty dependencies file for range_join.
# This may be replaced when dependencies are built.
