file(REMOVE_RECURSE
  "CMakeFiles/store_warehouse.dir/store_warehouse.cpp.o"
  "CMakeFiles/store_warehouse.dir/store_warehouse.cpp.o.d"
  "store_warehouse"
  "store_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
