# Empty compiler generated dependencies file for store_warehouse.
# This may be replaced when dependencies are built.
