# Empty compiler generated dependencies file for sdjoin_tests.
# This may be replaced when dependencies are built.
