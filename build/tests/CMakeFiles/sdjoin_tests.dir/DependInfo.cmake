
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/baseline_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/baseline_test.cc.o.d"
  "/root/repo/tests/buffer_pool_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/buffer_pool_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/buffer_pool_test.cc.o.d"
  "/root/repo/tests/convenience_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/convenience_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/convenience_test.cc.o.d"
  "/root/repo/tests/cost_model_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/cost_model_test.cc.o.d"
  "/root/repo/tests/dataset_io_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/dataset_io_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/dataset_io_test.cc.o.d"
  "/root/repo/tests/distance_join_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/distance_join_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/distance_join_test.cc.o.d"
  "/root/repo/tests/dynamic_bitset_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/dynamic_bitset_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/dynamic_bitset_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/generators_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/generators_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/generators_test.cc.o.d"
  "/root/repo/tests/geometry_distance_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/geometry_distance_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/geometry_distance_test.cc.o.d"
  "/root/repo/tests/geometry_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/geometry_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/geometry_test.cc.o.d"
  "/root/repo/tests/hybrid_queue_fuzz_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/hybrid_queue_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/hybrid_queue_fuzz_test.cc.o.d"
  "/root/repo/tests/hybrid_queue_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/hybrid_queue_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/hybrid_queue_test.cc.o.d"
  "/root/repo/tests/inc_nearest_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/inc_nearest_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/inc_nearest_test.cc.o.d"
  "/root/repo/tests/interaction_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/interaction_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/interaction_test.cc.o.d"
  "/root/repo/tests/join_property_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/join_property_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/join_property_test.cc.o.d"
  "/root/repo/tests/max_dist_estimator_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/max_dist_estimator_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/max_dist_estimator_test.cc.o.d"
  "/root/repo/tests/nn_extended_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/nn_extended_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/nn_extended_test.cc.o.d"
  "/root/repo/tests/page_file_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/page_file_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/page_file_test.cc.o.d"
  "/root/repo/tests/pairing_heap_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/pairing_heap_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/pairing_heap_test.cc.o.d"
  "/root/repo/tests/persistence_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/persistence_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/persistence_test.cc.o.d"
  "/root/repo/tests/quadtree_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/quadtree_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/quadtree_test.cc.o.d"
  "/root/repo/tests/rng_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/rng_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/rng_test.cc.o.d"
  "/root/repo/tests/rtree_stress_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/rtree_stress_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/rtree_stress_test.cc.o.d"
  "/root/repo/tests/rtree_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/rtree_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/rtree_test.cc.o.d"
  "/root/repo/tests/segment_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/segment_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/segment_test.cc.o.d"
  "/root/repo/tests/semi_join_test.cc" "tests/CMakeFiles/sdjoin_tests.dir/semi_join_test.cc.o" "gcc" "tests/CMakeFiles/sdjoin_tests.dir/semi_join_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sdjoin.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
