file(REMOVE_RECURSE
  "CMakeFiles/sdjoin_cli.dir/sdjoin_cli.cc.o"
  "CMakeFiles/sdjoin_cli.dir/sdjoin_cli.cc.o.d"
  "sdjoin_cli"
  "sdjoin_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdjoin_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
