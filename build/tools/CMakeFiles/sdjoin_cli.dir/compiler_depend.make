# Empty compiler generated dependencies file for sdjoin_cli.
# This may be replaced when dependencies are built.
