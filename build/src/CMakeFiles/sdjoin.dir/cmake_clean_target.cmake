file(REMOVE_RECURSE
  "libsdjoin.a"
)
