
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset_io.cc" "src/CMakeFiles/sdjoin.dir/data/dataset_io.cc.o" "gcc" "src/CMakeFiles/sdjoin.dir/data/dataset_io.cc.o.d"
  "/root/repo/src/data/datasets.cc" "src/CMakeFiles/sdjoin.dir/data/datasets.cc.o" "gcc" "src/CMakeFiles/sdjoin.dir/data/datasets.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/CMakeFiles/sdjoin.dir/data/generators.cc.o" "gcc" "src/CMakeFiles/sdjoin.dir/data/generators.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/sdjoin.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/sdjoin.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/page_file.cc" "src/CMakeFiles/sdjoin.dir/storage/page_file.cc.o" "gcc" "src/CMakeFiles/sdjoin.dir/storage/page_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
