# Empty dependencies file for sdjoin.
# This may be replaced when dependencies are built.
