file(REMOVE_RECURSE
  "CMakeFiles/sdjoin.dir/data/dataset_io.cc.o"
  "CMakeFiles/sdjoin.dir/data/dataset_io.cc.o.d"
  "CMakeFiles/sdjoin.dir/data/datasets.cc.o"
  "CMakeFiles/sdjoin.dir/data/datasets.cc.o.d"
  "CMakeFiles/sdjoin.dir/data/generators.cc.o"
  "CMakeFiles/sdjoin.dir/data/generators.cc.o.d"
  "CMakeFiles/sdjoin.dir/storage/buffer_pool.cc.o"
  "CMakeFiles/sdjoin.dir/storage/buffer_pool.cc.o.d"
  "CMakeFiles/sdjoin.dir/storage/page_file.cc.o"
  "CMakeFiles/sdjoin.dir/storage/page_file.cc.o.d"
  "libsdjoin.a"
  "libsdjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
