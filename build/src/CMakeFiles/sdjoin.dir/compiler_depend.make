# Empty compiler generated dependencies file for sdjoin.
# This may be replaced when dependencies are built.
