#!/usr/bin/env python3
"""Self-test for compare_bench.py, run under ctest.

Exercises the three exit-code contracts the check.sh gate relies on:
0 (within tolerance), 1 (regression detected), 2 (usage/schema error) —
plus the scale-mismatch and missing-row paths. Fixture JSONs are written
to a temp dir; compare_bench.py is run as a subprocess exactly the way
check.sh invokes it.

Usage: compare_bench_selftest.py /path/to/compare_bench.py
"""

import json
import os
import subprocess
import sys
import tempfile


def make_rows(pps_scale=1.0, node_io=100, p99_us=None, shards=None):
    # 1000 pairs at wall_ms=100 -> 10000 pairs/sec at pps_scale=1.
    row = {
        "series": "Even/DepthFirst",
        "threads": 1,
        "pairs": 1000,
        "wall_ms": 100.0 / pps_scale,
        "node_io": node_io,
    }
    if shards is not None:
        row["shards"] = shards
    if p99_us is not None:
        row["metrics"] = {"serve_slice": {"count": 1000, "p99_us": p99_us}}
    return [row]


def write(path, doc):
    with open(path, "w") as f:
        json.dump(doc, f)


def run(tool, *args):
    return subprocess.run(
        [sys.executable, tool, *args], capture_output=True, text=True
    ).returncode


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    tool = sys.argv[1]
    failures = []

    def check(name, got, want):
        if got != want:
            failures.append(f"{name}: exit {got}, want {want}")

    with tempfile.TemporaryDirectory() as tmp:
        base = os.path.join(tmp, "base.json")
        cur = os.path.join(tmp, "cur.json")
        write(base, {"scale": 1.0, "rows": make_rows()})

        # Identical run: within tolerance.
        write(cur, {"scale": 1.0, "rows": make_rows()})
        check("identical", run(tool, base, cur), 0)

        # 5% slower passes the default 10% time tolerance.
        write(cur, {"scale": 1.0, "rows": make_rows(pps_scale=0.95)})
        check("small-slowdown", run(tool, base, cur), 0)

        # 30% slower fails it...
        write(cur, {"scale": 1.0, "rows": make_rows(pps_scale=0.70)})
        check("time-regression", run(tool, base, cur), 1)

        # ...unless the caller loosens the gate, as check.sh does.
        check(
            "loose-tolerance",
            run(tool, base, cur, "--time-tolerance=0.60"),
            0,
        )

        # node_io growth beyond tolerance is a regression regardless of time.
        write(cur, {"scale": 1.0, "rows": make_rows(node_io=150)})
        check("io-regression", run(tool, base, cur), 1)

        # The opt-in p99 gate (check.sh serving stage): within the default
        # 2x allowance passes, beyond it fails, and rows without a usable
        # baseline p99 are skipped rather than failed.
        write(base, {"scale": 1.0, "rows": make_rows(p99_us=100.0)})
        write(cur, {"scale": 1.0, "rows": make_rows(p99_us=200.0)})
        check("p99-one-bucket", run(tool, base, cur, "--p99-op=serve_slice"), 0)
        write(cur, {"scale": 1.0, "rows": make_rows(p99_us=450.0)})
        check("p99-regression", run(tool, base, cur, "--p99-op=serve_slice"), 1)
        check(
            "p99-loose-tolerance",
            run(tool, base, cur, "--p99-op=serve_slice", "--p99-tolerance=4"),
            0,
        )
        check("p99-not-gated", run(tool, base, cur), 0)
        write(base, {"scale": 1.0, "rows": make_rows(p99_us=0.0)})
        check("p99-zero-base", run(tool, base, cur, "--p99-op=serve_slice"), 0)
        write(base, {"scale": 1.0, "rows": make_rows()})
        check("p99-no-metrics", run(tool, base, cur, "--p99-op=serve_slice"), 0)
        # A baseline that gates the phase paired with a current run that
        # stopped reporting it must fail — not silently skip (a disabled
        # metric would otherwise pass the gate forever).
        write(base, {"scale": 1.0, "rows": make_rows(p99_us=100.0)})
        write(cur, {"scale": 1.0, "rows": make_rows()})
        check(
            "p99-missing-current",
            run(tool, base, cur, "--p99-op=serve_slice"),
            1,
        )
        write(base, {"scale": 1.0, "rows": make_rows()})
        write(cur, {"scale": 1.0, "rows": make_rows(p99_us=450.0)})

        # A baseline row absent from the current run is a regression (as
        # long as something still matches; an empty run is a schema error).
        write(cur, {"scale": 1.0, "rows": []})
        check("empty-rows", run(tool, base, cur), 2)
        two = make_rows() + make_rows()
        two[1] = dict(two[1], series="Within")
        write(base, {"scale": 1.0, "rows": two})
        write(cur, {"scale": 1.0, "rows": make_rows()})
        check("missing-row", run(tool, base, cur), 1)
        write(base, {"scale": 1.0, "rows": make_rows()})

        # Usage/schema errors: malformed JSON, scale mismatch, bad flags.
        with open(cur, "w") as f:
            f.write("{not json")
        check("malformed-json", run(tool, base, cur), 2)
        write(cur, {"scale": 0.5, "rows": make_rows()})
        check("scale-mismatch", run(tool, base, cur), 2)
        # kernel_isa stamps (DESIGN.md §15): matching stamps compare fine,
        # differing stamps are refused like a scale mismatch, and files
        # predating the stamp (field absent on either side) are tolerated.
        write(base, {"scale": 1.0, "kernel_isa": "avx2", "rows": make_rows()})
        write(cur, {"scale": 1.0, "kernel_isa": "avx2", "rows": make_rows()})
        check("isa-match", run(tool, base, cur), 0)
        write(cur, {"scale": 1.0, "kernel_isa": "scalar", "rows": make_rows()})
        check("isa-mismatch", run(tool, base, cur), 2)
        write(cur, {"scale": 1.0, "rows": make_rows()})
        check("isa-missing-current", run(tool, base, cur), 0)
        write(base, {"scale": 1.0, "rows": make_rows()})
        write(cur, {"scale": 1.0, "kernel_isa": "avx512", "rows": make_rows()})
        check("isa-missing-baseline", run(tool, base, cur), 0)

        # Shard counts (DESIGN.md §18): rows key on their shard count, and
        # runs whose shard-count sets differ are refused like a cross-ISA
        # compare; an explicit shards=1 matches the field-absent default.
        write(base, {"scale": 1.0, "rows": make_rows(shards=4)})
        write(cur, {"scale": 1.0, "rows": make_rows(shards=4)})
        check("shards-match", run(tool, base, cur), 0)
        write(cur, {"scale": 1.0, "rows": make_rows(shards=2)})
        check("shards-mismatch", run(tool, base, cur), 2)
        write(base, {"scale": 1.0, "rows": make_rows()})
        write(cur, {"scale": 1.0, "rows": make_rows(shards=1)})
        check("shards-default-is-one", run(tool, base, cur), 0)
        write(base, {"scale": 1.0, "rows": make_rows()})

        write(cur, {"scale": 1.0, "rows": make_rows()})
        check("unknown-flag", run(tool, base, cur, "--bogus"), 2)
        check("missing-file", run(tool, base, os.path.join(tmp, "nope")), 2)
        check("no-args", run(tool), 2)

    if failures:
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        return 1
    print("compare_bench_selftest: all exit-code contracts hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
