#!/usr/bin/env bash
# Full pre-merge check: build + test the release config, then the
# ASan+UBSan config (tests only; benchmarks are skipped under sanitizers).
#
#   scripts/check.sh            # both configs
#   scripts/check.sh release    # release only
#   scripts/check.sh asan       # sanitizers only
set -euo pipefail
cd "$(dirname "$0")/.."

run_release() {
  echo "=== release: configure + build + ctest ==="
  cmake --preset release
  cmake --build --preset release
  ctest --preset release
}

run_asan() {
  echo "=== asan-ubsan: configure + build + ctest ==="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan
  ctest --preset asan-ubsan
}

case "${1:-all}" in
  release) run_release ;;
  asan) run_asan ;;
  all)
    run_release
    run_asan
    ;;
  *)
    echo "usage: scripts/check.sh [release|asan|all]" >&2
    exit 2
    ;;
esac
echo "all checks passed"
