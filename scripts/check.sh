#!/usr/bin/env bash
# Full pre-merge check: build + test the release config, then the
# ASan+UBSan config, then the TSan config (tests only; benchmarks are
# skipped under sanitizers). The TSan stage runs the concurrency-sensitive
# tests: buffer-pool striping, the worker pool, and the parallel-join
# determinism suite.
#
#   scripts/check.sh            # all three configs
#   scripts/check.sh release    # release only
#   scripts/check.sh asan       # ASan+UBSan only
#   scripts/check.sh tsan       # TSan only
set -euo pipefail
cd "$(dirname "$0")/.."

run_release() {
  echo "=== release: configure + build + ctest ==="
  cmake --preset release
  cmake --build --preset release
  ctest --preset release
  echo "=== release: ctest again with SDJ_KERNEL=scalar ==="
  # Same binaries, forced onto the scalar kernel path (DESIGN.md §15): the
  # per-ISA lockstep tests iterate every supported tier regardless, but this
  # pass proves the whole suite — engines, golden streams, cursors — is
  # bit-identical when runtime dispatch is disabled, so a wide-vector bug
  # can never hide behind "the tests only ran the fast path".
  SDJ_KERNEL=scalar ctest --preset release
  echo "=== release: ctest again with SDJ_SCREEN=off ==="
  # Integer code screening disabled (DESIGN.md §17): screening defaults on
  # for quantized trees, so the normal pass exercises the screened paths and
  # this pass proves every engine, golden stream, and cursor is byte-identical
  # with the screen bypassed — the decode-everything path must never rot into
  # "only correct because the screen hid it" (or vice versa).
  SDJ_SCREEN=off ctest --preset release
  echo "=== release: ctest again with SDJ_SHARDS=4 ==="
  # Sharded execution defaulted on (DESIGN.md §18): every surface that
  # leaves its shards option at 0 — the whole cli_test durable-cursor
  # matrix and the Sharded* wrappers — now runs four independent shard
  # engines behind the k-way frontier merge. The suite must pass unchanged,
  # proving the sharded stack is a drop-in for the serial pop loop.
  SDJ_SHARDS=4 ctest --preset release
  echo "=== release: full crash-point sweep (SDJ_CRASH_SPILL_STRIDE=1) ==="
  # Deterministic power-loss enumeration (DESIGN.md §16). The snapshot and
  # session-table sweeps already enumerate every write/sync op in the normal
  # ctest pass; the hybrid-queue spill sweep samples its (much longer) op
  # sequence by default. This stage re-runs the crash tests with sampling off
  # so the release gate covers 100% of spill crash points; the sanitizer
  # stages keep the sampled stride (full enumeration under ASan is slow and
  # adds no coverage the release sweep lacks).
  SDJ_CRASH_SPILL_STRIDE=1 ctest --preset release -R 'CrashPoint'
  echo "=== release: bench smoke (SDJ_BENCH_SCALE=0.05) ==="
  # Quick-scale sanity run of the main table benchmark and the durable-cursor
  # sweep: catches bench-only build or runtime breakage without the ~5 min
  # full-scale cost. Results at 5% scale are not meaningful numbers.
  (cd build && SDJ_BENCH_SCALE=0.05 bench/bench_table1 >/dev/null)
  (cd build && SDJ_BENCH_SCALE=0.05 bench/bench_checkpoint >/dev/null)
  # Kernel microbench (DESIGN.md §15): one row per distance kernel per
  # supported SIMD tier, gated below so a dispatch or codegen regression in
  # rect_batch.h shows up as a pairs/sec drop.
  (cd build && SDJ_BENCH_SCALE=0.05 bench/bench_kernels >/dev/null)
  # Serving smoke (DESIGN.md §14): four concurrent sessions under memory
  # pressure and snapshot-store fault injection — evict/rehydrate churn and
  # bounded commit retries must hold up outside the unit tests too.
  (cd build && SDJ_BENCH_SCALE=0.05 bench/bench_serving >/dev/null)
  echo "=== release: bench compare vs bench/baselines ==="
  # Gate the smoke run against the committed baseline (DESIGN.md §12) and
  # print the per-phase latency breakdown. node_io is deterministic at a
  # fixed scale, so its tolerance is tight; wall clock at 5% scale is noisy,
  # so the pairs/sec tolerance is loose by default. Override via env, e.g.
  # SDJ_BENCH_TIME_TOLERANCE=0.10 for a quiet benchmarking machine. After an
  # intentional perf change, refresh the baseline:
  #   (cd build && SDJ_BENCH_SCALE=0.05 bench/bench_table1 >/dev/null &&
  #    cp BENCH_table1.json ../bench/baselines/)
  python3 scripts/compare_bench.py \
    bench/baselines/BENCH_table1.json build/BENCH_table1.json \
    --time-tolerance="${SDJ_BENCH_TIME_TOLERANCE:-0.60}" \
    --io-tolerance="${SDJ_BENCH_IO_TOLERANCE:-0.10}" \
    --show-phases
  # Kernel-throughput gate. Pure CPU work, so node_io is always 0 and only
  # pairs/sec gates; the tolerance stays loose because microbench wall clock
  # shares the machine with the build. compare_bench.py refuses the
  # comparison outright (exit 2) if this host's kAuto dispatch differs from
  # the baseline's kernel_isa stamp — regenerate the baseline on such hosts.
  python3 scripts/compare_bench.py \
    bench/baselines/BENCH_kernels.json build/BENCH_kernels.json \
    --time-tolerance="${SDJ_BENCH_TIME_TOLERANCE:-0.60}"
  # Serving tail-latency gate: request p99 (serve_slice) may drift one
  # log-bucket (2x) but not more. node_io is looser than the join benches'
  # gate because the Sliced scenario's rotation points — and therefore the
  # shared buffer pool's eviction pattern — depend on wall-clock timing.
  python3 scripts/compare_bench.py \
    bench/baselines/BENCH_serving.json build/BENCH_serving.json \
    --time-tolerance="${SDJ_BENCH_TIME_TOLERANCE:-0.60}" \
    --io-tolerance="${SDJ_BENCH_SERVE_IO_TOLERANCE:-1.00}" \
    --p99-op=serve_slice \
    --p99-tolerance="${SDJ_BENCH_P99_TOLERANCE:-1.00}"
}

run_asan() {
  echo "=== asan-ubsan: configure + build + ctest ==="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan
  ctest --preset asan-ubsan
}

run_tsan() {
  echo "=== tsan: configure + build + concurrency tests ==="
  cmake --preset tsan
  cmake --build --preset tsan
  ctest --preset tsan -R 'BufferPoolConcurrency|ThreadPool|ParallelJoin'
}

case "${1:-all}" in
  release) run_release ;;
  asan) run_asan ;;
  tsan) run_tsan ;;
  all)
    run_release
    run_asan
    run_tsan
    ;;
  *)
    echo "usage: scripts/check.sh [release|asan|tsan|all]" >&2
    exit 2
    ;;
esac
echo "all checks passed"
