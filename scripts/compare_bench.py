#!/usr/bin/env python3
"""Compare a BENCH_*.json run against a committed baseline and gate
regressions.

Usage:
  scripts/compare_bench.py BASELINE.json CURRENT.json
      [--time-tolerance=0.10] [--io-tolerance=0.10] [--show-phases]
      [--p99-op=OPNAME] [--p99-tolerance=1.0]

Rows are matched by (series, threads, shards, pairs). Two gates per matched
row:

  * pairs/sec  — pairs / (wall_ms / 1000); a drop of more than
                 --time-tolerance fails. Wall clock is noisy at small
                 SDJ_BENCH_SCALE, so callers pick the tolerance (check.sh
                 uses a loose one for its 5%-scale smoke run).
  * node_io    — deterministic for a given scale, so any growth beyond
                 --io-tolerance fails.

A third, opt-in gate targets tail latency: --p99-op=serve_slice compares the
named phase's p99_us between the runs' metrics blocks and fails when the
current p99 exceeds the baseline by more than --p99-tolerance (a ratio;
the default 1.0 allows up to a 2x growth — the phase histograms are
log-bucketed, so one bucket of drift stays within that). A row whose
baseline lacks the metrics block or has a zero baseline p99 is skipped,
but a baseline p99 with no current-side value is a regression — a run
that silently stopped reporting the gated phase must not pass.

The two files must have been produced at the same SDJ_BENCH_SCALE; comparing
across scales is a usage error. Likewise, when both files carry a
"kernel_isa" stamp (the SIMD dispatch tier the run resolved, DESIGN.md §15)
the stamps must match — wall-clock across different kernel paths is not a
regression signal. Files written before the stamp existed lack the field
and are compared without the check. The same refusal applies to shard
counts (DESIGN.md §18): when the sets of per-row "shards" values differ
between the two files, the runs came from different bench configurations
and comparing them is a usage error. --show-phases prints the current
run's per-phase latency block (DESIGN.md §12) for every matched row.

Exit codes: 0 ok, 1 regression detected, 2 usage/schema error.
"""

import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"compare_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def row_key(row):
    return (
        row["series"],
        row.get("threads", 1),
        row.get("shards", 1),
        row["pairs"],
    )


def shard_counts(doc):
    return sorted({r.get("shards", 1) for r in doc.get("rows", [])})


def pairs_per_sec(row):
    wall_s = row["wall_ms"] / 1000.0
    if wall_s <= 0.0:
        return float("inf")
    return row["pairs"] / wall_s


def show_phases(row):
    metrics = row.get("metrics")
    if not metrics:
        print("    (no metrics block)")
        return
    for op, h in metrics.items():
        if h["count"] == 0:
            continue
        print(
            f"    {op:<15} count={h['count']:<8} "
            f"total_ms={h['total_ms']:<10.3f} p50_us={h['p50_us']:<8.1f} "
            f"p95_us={h['p95_us']:<8.1f} p99_us={h['p99_us']:<8.1f} "
            f"max_us={h['max_us']:.1f}"
        )


def p99_us(row, op):
    metrics = row.get("metrics")
    if not metrics or op not in metrics:
        return None
    return metrics[op].get("p99_us")


def main(argv):
    time_tolerance = 0.10
    io_tolerance = 0.10
    p99_op = None
    p99_tolerance = 1.0
    phases = False
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--time-tolerance="):
            time_tolerance = float(arg.split("=", 1)[1])
        elif arg.startswith("--io-tolerance="):
            io_tolerance = float(arg.split("=", 1)[1])
        elif arg.startswith("--p99-op="):
            p99_op = arg.split("=", 1)[1]
        elif arg.startswith("--p99-tolerance="):
            p99_tolerance = float(arg.split("=", 1)[1])
        elif arg == "--show-phases":
            phases = True
        elif arg.startswith("--"):
            print(f"compare_bench: unknown flag {arg}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    baseline, current = load(paths[0]), load(paths[1])
    if baseline.get("scale") != current.get("scale"):
        print(
            f"compare_bench: scale mismatch — baseline "
            f"{baseline.get('scale')} vs current {current.get('scale')}; "
            f"rerun at the baseline's SDJ_BENCH_SCALE",
            file=sys.stderr,
        )
        return 2
    base_isa = baseline.get("kernel_isa")
    cur_isa = current.get("kernel_isa")
    if base_isa is not None and cur_isa is not None and base_isa != cur_isa:
        print(
            f"compare_bench: kernel_isa mismatch — baseline ran the "
            f"{base_isa} dispatch path, current ran {cur_isa}; rerun with "
            f"SDJ_KERNEL={base_isa} (or regenerate the baseline) before "
            f"comparing wall-clock",
            file=sys.stderr,
        )
        return 2

    # Sharded rows (DESIGN.md §18) only gate against rows with the same
    # shard count: runs whose shard-count sets differ were produced by
    # different bench configurations, so refuse like a cross-ISA compare.
    base_shards, cur_shards = shard_counts(baseline), shard_counts(current)
    if base_shards != cur_shards:
        print(
            f"compare_bench: shard-count mismatch — baseline rows ran at "
            f"shards={base_shards}, current at shards={cur_shards}; "
            f"regenerate the baseline before comparing",
            file=sys.stderr,
        )
        return 2

    base_rows = {row_key(r): r for r in baseline.get("rows", [])}
    cur_rows = {row_key(r): r for r in current.get("rows", [])}
    if not base_rows or not cur_rows:
        print("compare_bench: no rows to compare", file=sys.stderr)
        return 2

    regressions = 0
    matched = 0
    for key, base in sorted(base_rows.items()):
        cur = cur_rows.get(key)
        if cur is None:
            print(f"MISSING  {key}: row absent from current run")
            regressions += 1
            continue
        matched += 1
        series, threads, shards, pairs = key
        label = f"{series} t={threads} s={shards} pairs={pairs}"

        base_pps, cur_pps = pairs_per_sec(base), pairs_per_sec(cur)
        pps_drop = (base_pps - cur_pps) / base_pps if base_pps > 0 else 0.0
        base_io, cur_io = base["node_io"], cur["node_io"]
        io_growth = (cur_io - base_io) / base_io if base_io > 0 else 0.0

        p99_note = ""
        p99_growth = None
        p99_missing = False
        if p99_op is not None:
            base_p99, cur_p99 = p99_us(base, p99_op), p99_us(cur, p99_op)
            if base_p99 and cur_p99 is None:
                # The baseline gated this phase but the current run stopped
                # reporting it — silently skipping would hide a disabled or
                # renamed metric forever. Only a missing/zero *baseline* p99
                # opts the row out.
                p99_missing = True
                p99_note = f"  {p99_op} p99_us {base_p99:.0f} -> (absent)"
            elif base_p99 and cur_p99 is not None:
                p99_growth = (cur_p99 - base_p99) / base_p99
                p99_note = f"  {p99_op} p99_us {base_p99:.0f} -> {cur_p99:.0f}"

        verdict = "ok"
        if p99_missing:
            verdict = f"REGRESSION {p99_op} p99 missing from current run"
            regressions += 1
        elif pps_drop > time_tolerance:
            verdict = f"REGRESSION pairs/sec -{pps_drop:.1%}"
            regressions += 1
        elif io_growth > io_tolerance:
            verdict = f"REGRESSION node_io +{io_growth:.1%}"
            regressions += 1
        elif p99_growth is not None and p99_growth > p99_tolerance:
            verdict = f"REGRESSION {p99_op} p99 +{p99_growth:.1%}"
            regressions += 1
        print(
            f"{verdict:<28} {label:<44} "
            f"pairs/sec {base_pps:>12.0f} -> {cur_pps:>12.0f}  "
            f"node_io {base_io} -> {cur_io}{p99_note}"
        )
        if phases:
            show_phases(cur)

    if matched == 0:
        print("compare_bench: no matching rows", file=sys.stderr)
        return 2
    if regressions:
        print(f"compare_bench: {regressions} regression(s)", file=sys.stderr)
        return 1
    print(f"compare_bench: {matched} row(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
