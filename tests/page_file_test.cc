#include "storage/page_file.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace sdj::storage {
namespace {

class PageFileTest : public ::testing::TestWithParam<bool> {
 protected:
  std::unique_ptr<PageFile> Make(uint32_t page_size) {
    if (GetParam()) {
      const std::string path = ::testing::TempDir() + "/sdj_pagefile_test_" +
                               std::to_string(counter_++) + ".bin";
      return NewFilePageFile(path, page_size);
    }
    return NewMemoryPageFile(page_size);
  }

  static int counter_;
};

int PageFileTest::counter_ = 0;

INSTANTIATE_TEST_SUITE_P(Backends, PageFileTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "Posix" : "Memory";
                         });

TEST_P(PageFileTest, StartsEmpty) {
  auto file = Make(128);
  ASSERT_NE(file, nullptr);
  EXPECT_EQ(file->num_pages(), 0u);
  EXPECT_EQ(file->page_size(), 128u);
}

TEST_P(PageFileTest, AllocateReturnsDenseIds) {
  auto file = Make(64);
  EXPECT_EQ(file->Allocate(), 0u);
  EXPECT_EQ(file->Allocate(), 1u);
  EXPECT_EQ(file->Allocate(), 2u);
  EXPECT_EQ(file->num_pages(), 3u);
}

TEST_P(PageFileTest, FreshPagesAreZeroed) {
  auto file = Make(64);
  const PageId id = file->Allocate();
  char buffer[64];
  std::memset(buffer, 0xAB, sizeof(buffer));
  ASSERT_EQ(file->Read(id, buffer), IoStatus::kOk);
  for (char c : buffer) EXPECT_EQ(c, 0);
}

TEST_P(PageFileTest, WriteThenReadRoundTrips) {
  auto file = Make(256);
  const PageId a = file->Allocate();
  const PageId b = file->Allocate();
  char data_a[256];
  char data_b[256];
  for (int i = 0; i < 256; ++i) {
    data_a[i] = static_cast<char>(i);
    data_b[i] = static_cast<char>(255 - i);
  }
  ASSERT_EQ(file->Write(a, data_a), IoStatus::kOk);
  ASSERT_EQ(file->Write(b, data_b), IoStatus::kOk);
  char readback[256];
  ASSERT_EQ(file->Read(a, readback), IoStatus::kOk);
  EXPECT_EQ(std::memcmp(readback, data_a, 256), 0);
  ASSERT_EQ(file->Read(b, readback), IoStatus::kOk);
  EXPECT_EQ(std::memcmp(readback, data_b, 256), 0);
}

TEST_P(PageFileTest, InvalidIdFails) {
  auto file = Make(64);
  char buffer[64] = {};
  EXPECT_EQ(file->Read(0, buffer), IoStatus::kFailed);
  EXPECT_EQ(file->Write(5, buffer), IoStatus::kFailed);
  file->Allocate();
  EXPECT_EQ(file->Read(0, buffer), IoStatus::kOk);
  EXPECT_EQ(file->Read(1, buffer), IoStatus::kFailed);
}

TEST_P(PageFileTest, CountsPhysicalIo) {
  auto file = Make(64);
  const PageId id = file->Allocate();
  file->ResetCounters();
  char buffer[64] = {};
  file->Read(id, buffer);
  file->Read(id, buffer);
  file->Write(id, buffer);
  EXPECT_EQ(file->physical_reads(), 2u);
  EXPECT_EQ(file->physical_writes(), 1u);
}

TEST_P(PageFileTest, ManyPagesRoundTrip) {
  auto file = Make(128);
  const int n = 200;
  for (int i = 0; i < n; ++i) file->Allocate();
  char buffer[128];
  for (int i = 0; i < n; ++i) {
    std::memset(buffer, i & 0xFF, sizeof(buffer));
    ASSERT_EQ(file->Write(static_cast<PageId>(i), buffer), IoStatus::kOk);
  }
  for (int i = n - 1; i >= 0; --i) {
    ASSERT_EQ(file->Read(static_cast<PageId>(i), buffer), IoStatus::kOk);
    for (char c : buffer) ASSERT_EQ(static_cast<unsigned char>(c), i & 0xFF);
  }
}

}  // namespace
}  // namespace sdj::storage
