#include "geometry/point.h"
#include "geometry/rect.h"

#include <gtest/gtest.h>

namespace sdj {
namespace {

TEST(Point, DefaultIsOrigin) {
  Point<3> p;
  EXPECT_EQ(p[0], 0.0);
  EXPECT_EQ(p[1], 0.0);
  EXPECT_EQ(p[2], 0.0);
}

TEST(Point, InitializerListAndIndexing) {
  Point<2> p = {1.5, -2.0};
  EXPECT_EQ(p[0], 1.5);
  EXPECT_EQ(p[1], -2.0);
  p[1] = 4.0;
  EXPECT_EQ(p[1], 4.0);
}

TEST(Point, Equality) {
  EXPECT_EQ((Point<2>{1.0, 2.0}), (Point<2>{1.0, 2.0}));
  EXPECT_FALSE((Point<2>{1.0, 2.0}) == (Point<2>{1.0, 2.5}));
}

TEST(Rect, FromPointIsDegenerate) {
  const auto r = Rect<2>::FromPoint({3.0, 4.0});
  EXPECT_TRUE(r.IsValid());
  EXPECT_EQ(r.Area(), 0.0);
  EXPECT_TRUE(r.Contains(Point<2>{3.0, 4.0}));
  EXPECT_FALSE(r.Contains(Point<2>{3.0, 4.1}));
}

TEST(Rect, EmptyIsInvalidAndAbsorbedByExpand) {
  auto r = Rect<2>::Empty();
  EXPECT_FALSE(r.IsValid());
  r.ExpandToInclude(Rect<2>({1.0, 1.0}, {2.0, 3.0}));
  EXPECT_TRUE(r.IsValid());
  EXPECT_EQ(r, Rect<2>({1.0, 1.0}, {2.0, 3.0}));
}

TEST(Rect, ContainsPointBoundaryInclusive) {
  const Rect<2> r({0.0, 0.0}, {1.0, 1.0});
  EXPECT_TRUE(r.Contains(Point<2>{0.0, 0.0}));
  EXPECT_TRUE(r.Contains(Point<2>{1.0, 1.0}));
  EXPECT_TRUE(r.Contains(Point<2>{0.5, 1.0}));
  EXPECT_FALSE(r.Contains(Point<2>{1.0000001, 0.5}));
}

TEST(Rect, ContainsRect) {
  const Rect<2> outer({0.0, 0.0}, {10.0, 10.0});
  EXPECT_TRUE(outer.Contains(Rect<2>({1.0, 1.0}, {9.0, 9.0})));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Rect<2>({1.0, 1.0}, {10.5, 9.0})));
}

TEST(Rect, IntersectsIsSymmetricAndBoundaryInclusive) {
  const Rect<2> a({0.0, 0.0}, {1.0, 1.0});
  const Rect<2> touching({1.0, 0.0}, {2.0, 1.0});
  const Rect<2> separate({1.1, 0.0}, {2.0, 1.0});
  EXPECT_TRUE(a.Intersects(touching));
  EXPECT_TRUE(touching.Intersects(a));
  EXPECT_FALSE(a.Intersects(separate));
  EXPECT_FALSE(separate.Intersects(a));
}

TEST(Rect, ExpandToIncludeGrowsMinimally) {
  Rect<2> r({0.0, 0.0}, {1.0, 1.0});
  r.ExpandToInclude(Rect<2>({2.0, -1.0}, {3.0, 0.5}));
  EXPECT_EQ(r, Rect<2>({0.0, -1.0}, {3.0, 1.0}));
  r.ExpandToInclude(Point<2>{-1.0, 5.0});
  EXPECT_EQ(r, Rect<2>({-1.0, -1.0}, {3.0, 5.0}));
}

TEST(Rect, AreaAndMargin) {
  const Rect<2> r({0.0, 0.0}, {2.0, 3.0});
  EXPECT_DOUBLE_EQ(r.Area(), 6.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 5.0);
  const Rect<3> cube({0.0, 0.0, 0.0}, {2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(cube.Area(), 8.0);
  EXPECT_DOUBLE_EQ(cube.Margin(), 6.0);
}

TEST(Rect, OverlapArea) {
  const Rect<2> a({0.0, 0.0}, {2.0, 2.0});
  EXPECT_DOUBLE_EQ(a.OverlapArea(Rect<2>({1.0, 1.0}, {3.0, 3.0})), 1.0);
  EXPECT_DOUBLE_EQ(a.OverlapArea(Rect<2>({2.0, 0.0}, {3.0, 1.0})), 0.0);
  EXPECT_DOUBLE_EQ(a.OverlapArea(Rect<2>({5.0, 5.0}, {6.0, 6.0})), 0.0);
  EXPECT_DOUBLE_EQ(a.OverlapArea(a), 4.0);
}

TEST(Rect, AreaEnlargement) {
  const Rect<2> a({0.0, 0.0}, {2.0, 2.0});
  EXPECT_DOUBLE_EQ(a.AreaEnlargement(Rect<2>({1.0, 1.0}, {1.5, 1.5})), 0.0);
  EXPECT_DOUBLE_EQ(a.AreaEnlargement(Rect<2>({0.0, 0.0}, {4.0, 2.0})), 4.0);
}

TEST(Rect, Center) {
  const Rect<2> r({0.0, 2.0}, {4.0, 6.0});
  EXPECT_EQ(r.Center(), (Point<2>{2.0, 4.0}));
}

}  // namespace
}  // namespace sdj
