#include "core/convenience.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "join_test_util.h"
#include "quadtree/quadtree.h"

namespace sdj {
namespace {

using test::BruteForcePairs;
using test::BruteForceSemiDistances;
using test::BuildPointTree;

std::vector<Point<2>> A() {
  return data::GenerateUniform(120, Rect<2>({0, 0}, {1000, 1000}), 551);
}
std::vector<Point<2>> B() {
  return data::GenerateUniform(150, Rect<2>({0, 0}, {1000, 1000}), 552);
}

TEST(Convenience, KClosestPairs) {
  const auto a = A();
  const auto b = B();
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const auto reference = BruteForcePairs(a, b);
  const auto got = KClosestPairs(ta, tb, 25);
  ASSERT_EQ(got.size(), 25u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].distance, reference[i].distance, 1e-9) << i;
  }
}

TEST(Convenience, KClosestPairsMoreThanProduct) {
  std::vector<Point<2>> a = {{0, 0}, {1, 1}};
  std::vector<Point<2>> b = {{2, 2}};
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  EXPECT_EQ(KClosestPairs(ta, tb, 100).size(), 2u);
}

TEST(Convenience, KFarthestPairs) {
  const auto a = A();
  const auto b = B();
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const auto reference = BruteForcePairs(a, b);
  const auto got = KFarthestPairs(ta, tb, 10);
  ASSERT_EQ(got.size(), 10u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].distance,
                reference[reference.size() - 1 - i].distance, 1e-9)
        << i;
  }
}

TEST(Convenience, PairsWithinAndCount) {
  const auto a = A();
  const auto b = B();
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const auto reference = BruteForcePairs(a, b);
  const double dmax = reference[500].distance;
  const auto got = PairsWithin(ta, tb, dmax);
  size_t expected = 0;
  for (const auto& p : reference) {
    if (p.distance <= dmax) ++expected;
  }
  EXPECT_EQ(got.size(), expected);
  EXPECT_EQ(CountPairsWithin(ta, tb, dmax), expected);
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_GE(got[i].distance, got[i - 1].distance);
  }
}

TEST(Convenience, NearestPartnerForAll) {
  const auto a = A();
  const auto b = B();
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const auto expected = BruteForceSemiDistances(a, b);
  const auto got = NearestPartnerForAll(ta, tb);
  ASSERT_EQ(got.size(), a.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].distance, expected[i], 1e-9) << i;
  }
}

TEST(Convenience, WorksOverQuadtrees) {
  const auto a = A();
  const auto b = B();
  const Rect<2> world({0, 0}, {1000, 1000});
  PointQuadtree<2> ta(world);
  PointQuadtree<2> tb(world);
  for (size_t i = 0; i < a.size(); ++i) ta.Insert(a[i], i);
  for (size_t i = 0; i < b.size(); ++i) tb.Insert(b[i], i);
  const auto reference = BruteForcePairs(a, b);
  const auto got = KClosestPairs(ta, tb, 15);
  ASSERT_EQ(got.size(), 15u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].distance, reference[i].distance, 1e-9) << i;
  }
}

TEST(DeferredLeafPolicy, MatchesBruteForceOnRTrees) {
  const auto a = A();
  const auto b = B();
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const auto reference = BruteForcePairs(a, b);
  DistanceJoinOptions options;
  options.node_policy = NodeProcessingPolicy::kDeferredLeaf;
  DistanceJoin<2> join(ta, tb, options);
  JoinResult<2> pair;
  for (size_t k = 0; k < 400; ++k) {
    ASSERT_TRUE(join.Next(&pair)) << k;
    ASSERT_NEAR(pair.distance, reference[k].distance, 1e-9) << k;
  }
}

TEST(DeferredLeafPolicy, MatchesBruteForceOnQuadtrees) {
  // The policy exists for exactly this case (Section 2.2.2: unbalanced
  // structures without leaf bounding rectangles).
  const auto a = A();
  const auto b = B();
  const Rect<2> world({0, 0}, {1000, 1000});
  PointQuadtree<2> ta(world);
  PointQuadtree<2> tb(world);
  for (size_t i = 0; i < a.size(); ++i) ta.Insert(a[i], i);
  for (size_t i = 0; i < b.size(); ++i) tb.Insert(b[i], i);
  const auto reference = BruteForcePairs(a, b);
  DistanceJoinOptions options;
  options.node_policy = NodeProcessingPolicy::kDeferredLeaf;
  DistanceJoin<2, PointQuadtree<2>> join(ta, tb, options);
  JoinResult<2> pair;
  std::vector<double> got;
  while (join.Next(&pair)) got.push_back(pair.distance);
  ASSERT_EQ(got.size(), reference.size());
  for (size_t k = 0; k < got.size(); ++k) {
    ASSERT_NEAR(got[k], reference[k].distance, 1e-9) << k;
  }
}

}  // namespace
}  // namespace sdj
