#include "core/cost_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "data/generators.h"
#include "join_test_util.h"

namespace sdj {
namespace {

using test::BuildPointTree;

TEST(ProfileTree, CountsNodesAndLevels) {
  const auto points =
      data::GenerateUniform(1000, Rect<2>({0, 0}, {100, 100}), 1);
  RTree<2> tree = BuildPointTree(points);
  const TreeProfile<2> profile = ProfileTree(tree);
  EXPECT_EQ(profile.objects, 1000u);
  ASSERT_EQ(profile.levels.size(), static_cast<size_t>(tree.height()));
  EXPECT_EQ(profile.levels[0].nodes, tree.num_leaves());
  size_t total = 0;
  for (const auto& level : profile.levels) total += level.nodes;
  EXPECT_EQ(total, tree.num_nodes());
  // Upper levels have fewer, larger nodes.
  for (size_t l = 1; l < profile.levels.size(); ++l) {
    EXPECT_LT(profile.levels[l].nodes, profile.levels[l - 1].nodes);
    EXPECT_GT(profile.levels[l].avg_extent[0],
              profile.levels[l - 1].avg_extent[0]);
  }
}

TEST(ProfileTree, EmptyTree) {
  RTree<2> tree;
  const TreeProfile<2> profile = ProfileTree(tree);
  EXPECT_EQ(profile.objects, 0u);
  EXPECT_TRUE(profile.levels.empty());
}

TEST(UnitBallVolumeRatio, KnownValues) {
  EXPECT_DOUBLE_EQ(UnitBallVolumeRatio(Metric::kChessboard, 2), 1.0);
  EXPECT_NEAR(UnitBallVolumeRatio(Metric::kEuclidean, 2),
              3.14159265358979 / 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(UnitBallVolumeRatio(Metric::kManhattan, 2), 0.5);
  EXPECT_NEAR(UnitBallVolumeRatio(Metric::kEuclidean, 3),
              (4.0 / 3.0) * 3.14159265358979 / 8.0, 1e-9);
}

TEST(EstimateDistanceJoinCost, ResultCountAccurateOnUniformData) {
  const Rect<2> extent({0, 0}, {1000, 1000});
  const auto a = data::GenerateUniform(800, extent, 11);
  const auto b = data::GenerateUniform(800, extent, 12);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);

  for (double dmax : {10.0, 30.0, 60.0}) {
    const auto estimate = EstimateDistanceJoinCost(ta, tb, dmax);
    // Measure the truth.
    DistanceJoinOptions options;
    options.max_distance = dmax;
    DistanceJoin<2> join(ta, tb, options);
    JoinResult<2> pair;
    double actual = 0;
    while (join.Next(&pair)) ++actual;
    ASSERT_GT(actual, 0);
    const double ratio = estimate.expected_result_pairs / actual;
    EXPECT_GT(ratio, 0.5) << "dmax=" << dmax;
    EXPECT_LT(ratio, 2.0) << "dmax=" << dmax;
  }
}

TEST(EstimateDistanceJoinCost, NodeVisitsWithinOrderOfMagnitude) {
  const Rect<2> extent({0, 0}, {1000, 1000});
  const auto a = data::GenerateUniform(2000, extent, 13);
  const auto b = data::GenerateUniform(2000, extent, 14);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const double dmax = 15.0;

  const auto estimate = EstimateDistanceJoinCost(ta, tb, dmax);
  DistanceJoinOptions options;
  options.max_distance = dmax;
  DistanceJoin<2> join(ta, tb, options);
  JoinResult<2> pair;
  while (join.Next(&pair)) {
  }
  const double actual = static_cast<double>(join.stats().nodes_expanded);
  ASSERT_GT(actual, 0);
  const double ratio = estimate.expected_node_pair_visits / actual;
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(EstimateDistanceJoinCost, MonotoneInMaxDistance) {
  const auto a = data::GenerateUniform(500, Rect<2>({0, 0}, {100, 100}), 15);
  const auto b = data::GenerateUniform(500, Rect<2>({0, 0}, {100, 100}), 16);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  double last_results = -1.0;
  double last_visits = -1.0;
  for (double dmax : {0.0, 1.0, 5.0, 20.0, 100.0}) {
    const auto estimate = EstimateDistanceJoinCost(ta, tb, dmax);
    EXPECT_GE(estimate.expected_result_pairs, last_results);
    EXPECT_GE(estimate.expected_node_pair_visits, last_visits);
    last_results = estimate.expected_result_pairs;
    last_visits = estimate.expected_node_pair_visits;
  }
}

TEST(EstimateDistanceJoinCost, ZeroDistanceOnPointsPredictsNoResults) {
  const auto a = data::GenerateUniform(300, Rect<2>({0, 0}, {100, 100}), 17);
  const auto b = data::GenerateUniform(300, Rect<2>({0, 0}, {100, 100}), 18);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const auto estimate = EstimateDistanceJoinCost(ta, tb, 0.0);
  EXPECT_DOUBLE_EQ(estimate.expected_result_pairs, 0.0);
}

TEST(EstimateDistanceJoinCost, EmptyTrees) {
  RTree<2> empty;
  RTree<2> tree = BuildPointTree(
      data::GenerateUniform(100, Rect<2>({0, 0}, {10, 10}), 19));
  const auto estimate = EstimateDistanceJoinCost(empty, tree, 5.0);
  EXPECT_DOUBLE_EQ(estimate.expected_result_pairs, 0.0);
  EXPECT_DOUBLE_EQ(estimate.expected_node_pair_visits, 0.0);
}

TEST(ShouldFilterBeforeJoin, HighSelectivityFavorsFiltering) {
  const Rect<2> extent({0, 0}, {1000, 1000});
  RTree<2> ta = BuildPointTree(data::GenerateUniform(5000, extent, 20));
  RTree<2> tb = BuildPointTree(data::GenerateUniform(5000, extent, 21));
  // Very selective predicate (0.1% survive): filter first.
  EXPECT_TRUE(ShouldFilterBeforeJoin(ta, tb, 0.001, 50.0, 100));
  // Everything survives: filtering first only adds the build cost.
  EXPECT_FALSE(ShouldFilterBeforeJoin(ta, tb, 1.0, 50.0, 100));
}

}  // namespace
}  // namespace sdj
