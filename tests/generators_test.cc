#include "data/generators.h"

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "geometry/rect.h"

namespace sdj::data {
namespace {

const Rect<2> kExtent({0.0, 0.0}, {1000.0, 1000.0});

TEST(GenerateUniform, CountAndExtent) {
  const auto points = GenerateUniform(500, kExtent, 1);
  EXPECT_EQ(points.size(), 500u);
  for (const auto& p : points) EXPECT_TRUE(kExtent.Contains(p));
}

TEST(GenerateUniform, DeterministicInSeed) {
  EXPECT_EQ(GenerateUniform(100, kExtent, 7), GenerateUniform(100, kExtent, 7));
  EXPECT_NE(GenerateUniform(100, kExtent, 7), GenerateUniform(100, kExtent, 8));
}

TEST(GenerateClustered, CountAndExtent) {
  ClusterOptions options;
  options.num_points = 2000;
  options.extent = kExtent;
  options.seed = 3;
  const auto points = GenerateClustered(options);
  EXPECT_EQ(points.size(), 2000u);
  for (const auto& p : points) EXPECT_TRUE(kExtent.Contains(p));
}

TEST(GenerateClustered, IsActuallySkewed) {
  // A clustered distribution concentrates mass: some coarse grid cell should
  // hold far more than the uniform share.
  ClusterOptions options;
  options.num_points = 5000;
  options.extent = kExtent;
  options.num_clusters = 8;
  options.spread_fraction = 0.01;
  options.background_fraction = 0.0;
  options.seed = 5;
  const auto points = GenerateClustered(options);
  int grid[10][10] = {};
  for (const auto& p : points) {
    const int gx = std::min(9, static_cast<int>(p[0] / 100.0));
    const int gy = std::min(9, static_cast<int>(p[1] / 100.0));
    ++grid[gx][gy];
  }
  int max_cell = 0;
  for (auto& row : grid) {
    for (int c : row) max_cell = std::max(max_cell, c);
  }
  EXPECT_GT(max_cell, 3 * 5000 / 100);  // >3x the uniform expectation
}

TEST(GeneratePolylines, CountAndExtent) {
  PolylineOptions options;
  options.num_points = 3000;
  options.extent = kExtent;
  options.num_polylines = 10;
  options.seed = 11;
  const auto points = GeneratePolylines(options);
  EXPECT_EQ(points.size(), 3000u);
  for (const auto& p : points) EXPECT_TRUE(kExtent.Contains(p));
}

TEST(GeneratePolylines, Deterministic) {
  PolylineOptions options;
  options.num_points = 200;
  options.extent = kExtent;
  options.seed = 13;
  EXPECT_EQ(GeneratePolylines(options), GeneratePolylines(options));
}

TEST(GenerateGrid, ExactPlacement) {
  const auto points = GenerateGrid(3, 3, Rect<2>({0, 0}, {2, 2}));
  ASSERT_EQ(points.size(), 9u);
  EXPECT_EQ(points[0], (Point<2>{0, 0}));
  EXPECT_EQ(points[4], (Point<2>{1, 1}));
  EXPECT_EQ(points[8], (Point<2>{2, 2}));
}

TEST(GenerateGrid, SingleRowAndColumn) {
  const auto row = GenerateGrid(1, 4, Rect<2>({0, 0}, {3, 10}));
  ASSERT_EQ(row.size(), 4u);
  for (const auto& p : row) EXPECT_EQ(p[1], 5.0);  // centered vertically
}

TEST(Datasets, PaperCardinalities) {
  const auto water = MakeWater(0.01);
  const auto roads = MakeRoads(0.01);
  EXPECT_EQ(water.size(), 375u);   // ceil(37495 * 0.01)
  EXPECT_EQ(roads.size(), 2005u);  // ceil(200482 * 0.01)
  const auto extent = EvaluationExtent();
  for (const auto& p : water) EXPECT_TRUE(extent.Contains(p));
  for (const auto& p : roads) EXPECT_TRUE(extent.Contains(p));
}

TEST(Datasets, DeterministicAcrossCalls) {
  EXPECT_EQ(MakeWater(0.005), MakeWater(0.005));
  EXPECT_EQ(MakeRoads(0.002), MakeRoads(0.002));
}

}  // namespace
}  // namespace sdj::data
