#include "util/rng.h"

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

namespace sdj {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(-5.0, 13.5);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 13.5);
  }
}

TEST(Rng, NextBoundedRespectsBound) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  // Bound of 1 always yields 0.
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(Rng, NextBoundedIsRoughlyUniform) {
  Rng rng(6);
  const int buckets = 10;
  int counts[10] = {};
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    ++counts[rng.NextBounded(buckets)];
  }
  for (int b = 0; b < buckets; ++b) {
    EXPECT_NEAR(counts[b], draws / buckets, draws / buckets / 5);
  }
}

TEST(Rng, GaussianMomentsApproximatelyCorrect) {
  Rng rng(8);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

}  // namespace
}  // namespace sdj
