#include "util/dynamic_bitset.h"

#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sdj {
namespace {

TEST(DynamicBitset, StartsAllUnset) {
  DynamicBitset bits(130);
  EXPECT_EQ(bits.size(), 130u);
  for (size_t i = 0; i < 130; ++i) EXPECT_FALSE(bits.Test(i));
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(DynamicBitset, SetAndTest) {
  DynamicBitset bits(100);
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(99);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(99));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_FALSE(bits.Test(65));
  EXPECT_EQ(bits.Count(), 4u);
}

TEST(DynamicBitset, ResetClearsBit) {
  DynamicBitset bits(10);
  bits.Set(5);
  EXPECT_TRUE(bits.Test(5));
  bits.Reset(5);
  EXPECT_FALSE(bits.Test(5));
}

TEST(DynamicBitset, TestAndSetReportsInsertion) {
  DynamicBitset bits(64);
  EXPECT_TRUE(bits.TestAndSet(17));   // newly inserted
  EXPECT_FALSE(bits.TestAndSet(17));  // already present
  EXPECT_TRUE(bits.Test(17));
}

TEST(DynamicBitset, ResizeGrowsWithUnsetBits) {
  DynamicBitset bits(10);
  bits.Set(9);
  bits.Resize(200);
  EXPECT_TRUE(bits.Test(9));
  EXPECT_FALSE(bits.Test(150));
  EXPECT_EQ(bits.Count(), 1u);
}

TEST(DynamicBitset, ResizeShrinkDropsTrailingBits) {
  DynamicBitset bits(128);
  bits.Set(100);
  bits.Set(10);
  bits.Resize(50);
  EXPECT_EQ(bits.Count(), 1u);
  EXPECT_TRUE(bits.Test(10));
  // Growing again must not resurrect bit 100 (word-boundary hygiene).
  bits.Resize(128);
  EXPECT_FALSE(bits.Test(100));
}

TEST(DynamicBitset, ClearResetsEverything) {
  DynamicBitset bits(300);
  for (size_t i = 0; i < 300; i += 7) bits.Set(i);
  bits.Clear();
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(DynamicBitset, MemoryFootprintMatchesPaperExample) {
  // The paper (Section 3.2): 1 million elements occupy 122K.
  DynamicBitset bits(1000000);
  EXPECT_EQ(bits.MemoryBytes(), ((1000000 + 63) / 64) * 8u);
  EXPECT_LE(bits.MemoryBytes(), 125008u);
}

TEST(DynamicBitset, RandomizedAgainstStdSet) {
  Rng rng(4242);
  const size_t universe = 5000;
  DynamicBitset bits(universe);
  std::set<size_t> ref;
  for (int round = 0; round < 20000; ++round) {
    const size_t i = rng.NextBounded(universe);
    if (rng.NextDouble() < 0.7) {
      const bool inserted = bits.TestAndSet(i);
      EXPECT_EQ(inserted, ref.insert(i).second);
    } else {
      bits.Reset(i);
      ref.erase(i);
    }
  }
  EXPECT_EQ(bits.Count(), ref.size());
  for (size_t i = 0; i < universe; ++i) {
    ASSERT_EQ(bits.Test(i), ref.count(i) == 1) << i;
  }
}

}  // namespace
}  // namespace sdj
