// Tests for the quantized node layout (rtree/node_layout.h, DESIGN.md §15):
// outward-rounding encode properties, codec operations against a reference
// model, full-tree behavior under NodeEncoding::kQuantized, persistence, and
// the loose-d_max regression — indexes whose node regions are not minimal
// bounding regions at runtime (quantized R-tree, quadtree) must never be
// given MINMAXDIST-based bounds, whatever their compile-time constant says.
#include "rtree/node_layout.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "core/semi_join.h"
#include "geometry/distance.h"
#include "geometry/rect.h"
#include "quadtree/quadtree.h"
#include "rtree/rtree.h"
#include "util/rng.h"

namespace sdj {
namespace {

using rtree_internal::NodeCodec;
using rtree_internal::NodeLayout;
using rtree_internal::QuantizedNodeLayout;

using QL2 = QuantizedNodeLayout<2>;
// 1-D layout for the grid-math tests below: MakeGrid takes per-dimension
// arrays, and these tests exercise a single dimension.
using QL1 = QuantizedNodeLayout<1>;

// ---- layout-level properties ----

TEST(QuantizedLayout, FanOutBeatsRawLayout) {
  // 2-D, 2048-byte pages: raw fits 51 forty-byte entries; quantized pays 32
  // bytes of grid once and then 16 bytes per entry.
  EXPECT_EQ(NodeLayout<2>::Capacity(2048), 51u);
  EXPECT_EQ(QL2::Capacity(2048), 125u);
  EXPECT_EQ(QL2::kEntrySize, 16u);
  // The fan-out advantage must hold in higher dimensions too.
  EXPECT_GT(QuantizedNodeLayout<4>::Capacity(2048),
            NodeLayout<4>::Capacity(2048));
}

TEST(QuantizedLayout, MakeGridCoversRequestedSpan) {
  Rng rng(7001);
  for (int trial = 0; trial < 2000; ++trial) {
    double lo = rng.Uniform(-1e6, 1e6);
    double hi = lo + rng.Uniform(0.0, 1e6);
    const QL1::Grid g = QL1::MakeGrid(&lo, &hi);
    ASSERT_EQ(g.base[0], lo);
    // Code 0 decodes to base; the top code must reach at least hi.
    ASSERT_LE(QL1::Decode(g, 0, 0), lo);
    ASSERT_GE(QL1::Decode(g, 0, QL1::kMaxCode), hi);
  }
}

TEST(QuantizedLayout, MakeGridSurvivesExtremeSpans) {
  // max_hi - min_lo overflows a double here; the halved-form scale must not.
  double lo = -1.6e308;
  double hi = 1.6e308;
  const QL1::Grid g = QL1::MakeGrid(&lo, &hi);
  EXPECT_TRUE(std::isfinite(g.scale[0]));
  EXPECT_GE(QL1::Decode(g, 0, QL1::kMaxCode), hi);
  // Degenerate span: every code decodes to the single coordinate.
  double x = 3.25;
  const QL1::Grid point_grid = QL1::MakeGrid(&x, &x);
  EXPECT_EQ(point_grid.scale[0], 0.0);
  EXPECT_EQ(QL1::Decode(point_grid, 0, QL1::kMaxCode), x);
}

TEST(QuantizedLayout, EncodeRoundsOutward) {
  // The correctness keystone: EncodeLo never decodes above its input,
  // EncodeHi never below, and both pick the TIGHTEST such code. Outward
  // rounding is what keeps decoded MBRs containing the stored rects, which
  // keeps MINDIST a valid lower bound (Section 2.2 consistency).
  Rng rng(7002);
  for (int trial = 0; trial < 5000; ++trial) {
    double lo = rng.Uniform(-1e3, 1e3);
    double hi = lo + rng.Uniform(0.0, 2e3);
    const QL1::Grid g = QL1::MakeGrid(&lo, &hi);
    const double x = rng.Uniform(lo, hi);
    const uint16_t ql = QL1::EncodeLo(g, 0, x);
    const uint16_t qh = QL1::EncodeHi(g, 0, x);
    ASSERT_LE(QL1::Decode(g, 0, ql), x);
    ASSERT_GE(QL1::Decode(g, 0, qh), x);
    // Tightness: the neighboring codes would violate the bound. (With a
    // zero scale every code decodes to base and tightness is vacuous.)
    if (g.scale[0] > 0.0) {
      if (ql < QL1::kMaxCode) {
        ASSERT_GT(QL1::Decode(g, 0, static_cast<uint16_t>(ql + 1)), x);
      }
      if (qh > 0) {
        ASSERT_LT(QL1::Decode(g, 0, static_cast<uint16_t>(qh - 1)), x);
      }
    }
    // Grid points must round-trip exactly (decode is exact arithmetic).
    const uint16_t code = static_cast<uint16_t>(rng.Uniform(0.0, 65535.0));
    const double grid_point = QL1::Decode(g, 0, code);
    ASSERT_EQ(QL1::Decode(g, 0, QL1::EncodeLo(g, 0, grid_point)), grid_point);
    ASSERT_EQ(QL1::Decode(g, 0, QL1::EncodeHi(g, 0, grid_point)), grid_point);
  }
}

TEST(QuantizedLayout, EncodeSaturatesOnDegenerateGrid) {
  // A zero-width grid (scale 0) decodes every code to base. EncodeLo is
  // always outward there (base <= x for any representable lo); EncodeHi
  // must return 0 only when base already covers x — for x above base it
  // saturates to the TOP code instead of silently landing at the bottom
  // (the old `return 0` produced a decode maximally below x).
  double p = 3.25;
  const QL1::Grid g = QL1::MakeGrid(&p, &p);
  ASSERT_EQ(g.scale[0], 0.0);
  EXPECT_EQ(QL1::EncodeLo(g, 0, p), 0);
  EXPECT_EQ(QL1::EncodeHi(g, 0, p), 0);
  EXPECT_EQ(QL1::EncodeHi(g, 0, p - 1.0), 0);
  EXPECT_EQ(QL1::EncodeHi(g, 0, p + 1.0), QL1::kMaxCode);
  EXPECT_EQ(QL1::EncodeHi(g, 0, std::numeric_limits<double>::infinity()),
            QL1::kMaxCode);
  // No such rect can be stored: the write paths gate on CanRepresent, which
  // fails whenever hi exceeds the degenerate span.
  Rect<1> above;
  above.lo[0] = p;
  above.hi[0] = p + 1.0;
  EXPECT_FALSE(QL1::CanRepresent(g, above));
  Rect<1> at;
  at.lo[0] = p;
  at.hi[0] = p;
  EXPECT_TRUE(QL1::CanRepresent(g, at));
}

TEST(QuantizedLayout, CanRepresentRejectsUnencodableRects) {
  const double kInf = std::numeric_limits<double>::infinity();
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  double lo = 0.0;
  double hi = 100.0;
  const QL1::Grid g = QL1::MakeGrid(&lo, &hi);
  const auto rect = [](double l, double h) {
    Rect<1> r;
    r.lo[0] = l;
    r.hi[0] = h;
    return r;
  };
  EXPECT_TRUE(QL1::CanRepresent(g, rect(10.0, 20.0)));
  // Fits reports NaN rects as covered (both comparisons false); the strict
  // form must reject them, along with infinities and inverted intervals.
  EXPECT_TRUE(QL1::Fits(g, rect(kNan, kNan)));
  EXPECT_FALSE(QL1::CanRepresent(g, rect(kNan, kNan)));
  EXPECT_FALSE(QL1::CanRepresent(g, rect(10.0, kNan)));
  EXPECT_FALSE(QL1::CanRepresent(g, rect(kNan, 20.0)));
  EXPECT_FALSE(QL1::CanRepresent(g, rect(10.0, kInf)));
  EXPECT_FALSE(QL1::CanRepresent(g, rect(-kInf, 20.0)));
  EXPECT_FALSE(QL1::CanRepresent(g, rect(20.0, 10.0)));
  // Out-of-span but otherwise well-formed: rejected by the Fits part.
  EXPECT_FALSE(QL1::CanRepresent(g, rect(-10.0, 20.0)));
  EXPECT_FALSE(QL1::CanRepresent(g, rect(10.0, 200.0)));
}

TEST(QuantizedLayout, MakeGridSurvivesNarrowSpansAtLargeMagnitude) {
  // Regression: the halved-form scale estimate ((hi/2)/(kMax/2) -
  // (lo/2)/(kMax/2)) catastrophically cancels for narrow spans at large
  // magnitudes, landing the estimate at 0.0; the ulp walk up from the
  // denormals then effectively never terminates. The direct-difference
  // estimate must produce a positive covering scale immediately.
  Rng rng(7030);
  for (int trial = 0; trial < 500; ++trial) {
    const double mag = rng.Uniform(1e12, 1e15);
    double lo = mag;
    double hi = mag + rng.Uniform(1e-3, 1.0);
    const QL1::Grid g = QL1::MakeGrid(&lo, &hi);
    ASSERT_TRUE(std::isfinite(g.scale[0]));
    if (hi > lo) {
      // Distinct endpoints demand a positive covering scale.
      ASSERT_GT(g.scale[0], 0.0);
    }
    // Near 1e15 a sub-ulp span rounds hi onto lo; the degenerate zero-scale
    // grid is then correct, and coverage still has to hold.
    ASSERT_GE(QL1::Decode(g, 0, QL1::kMaxCode), hi);
  }
}

TEST(QuantizedLayout, EncodePropertiesHoldOnIeeeSpecialSpans) {
  // Grids built from IEEE edge-case coordinates (signed zeros, denormals,
  // huge magnitudes, full-range spans) must keep the outward-rounding
  // contract for every in-span input: Decode(EncodeLo) <= x and
  // Decode(EncodeHi) >= x whenever the rect is representable.
  const double kDen = std::numeric_limits<double>::denorm_min();
  const double kMin = std::numeric_limits<double>::min();
  const double kMax = std::numeric_limits<double>::max();
  const double specials[] = {0.0,  -0.0,   1.0,  -1.0,   kDen,  -kDen,
                             kMin, -kMin,  kMax, -kMax,  1e-300, 1e300,
                             -1e300, 42.5, -42.5};
  Rng rng(7031);
  for (const double a : specials) {
    for (const double b : specials) {
      const double lo = std::min(a, b);
      const double hi = std::max(a, b);
      const QL1::Grid g = QL1::MakeGrid(&lo, &hi);
      ASSERT_TRUE(std::isfinite(g.scale[0])) << lo << " " << hi;
      ASSERT_GE(g.scale[0], 0.0);
      ASSERT_LE(QL1::Decode(g, 0, 0), lo);
      ASSERT_GE(QL1::Decode(g, 0, QL1::kMaxCode), hi);
      // Endpoints, and a few interior points when the span allows them.
      std::vector<double> xs = {lo, hi};
      for (int k = 0; k < 8; ++k) {
        const double t = rng.Uniform(0.0, 1.0);
        // Convex blend that never overflows (lo/hi may be +-kMax).
        const double x = lo * (1.0 - t) + hi * t;
        if (std::isfinite(x) && x >= lo && x <= hi) xs.push_back(x);
      }
      for (const double x : xs) {
        const uint16_t ql = QL1::EncodeLo(g, 0, x);
        const uint16_t qh = QL1::EncodeHi(g, 0, x);
        ASSERT_LE(QL1::Decode(g, 0, ql), x) << lo << " " << hi << " " << x;
        ASSERT_GE(QL1::Decode(g, 0, qh), x) << lo << " " << hi << " " << x;
        Rect<1> r;
        r.lo[0] = x;
        r.hi[0] = x;
        ASSERT_TRUE(QL1::CanRepresent(g, r));
      }
    }
  }
}

TEST(QuantizedLayout, RewriteAllDecodedRectsContainInputs) {
  Rng rng(7003);
  std::vector<char> page(2048, 0);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::pair<Rect<2>, uint64_t>> entries;
    const int n = 1 + static_cast<int>(rng.Uniform(0.0, 100.0));
    for (int i = 0; i < n; ++i) {
      Rect<2> r;
      for (int d = 0; d < 2; ++d) {
        r.lo[d] = rng.Uniform(-1e4, 1e4);
        r.hi[d] = r.lo[d] + rng.Uniform(0.0, 50.0);
      }
      entries.push_back({r, static_cast<uint64_t>(i)});
    }
    QL2::RewriteAll(page.data(), entries);
    ASSERT_EQ(NodeLayout<2>::GetCount(page.data()), n);
    for (int i = 0; i < n; ++i) {
      const Rect<2> dec = QL2::GetRect(page.data(), i);
      ASSERT_TRUE(dec.Contains(entries[i].first)) << trial << ":" << i;
      ASSERT_EQ(QL2::GetRef(page.data(), i), entries[i].second);
      ASSERT_TRUE(QL2::Fits(QL2::GetGrid(page.data()), dec));
    }
  }
}

// Codec operations against a reference vector<(rect, ref)> model. The model
// holds the DECODED rects (what any reader sees); after every operation each
// stored entry must decode to a rect containing its model rect, and refs and
// counts must match exactly.
TEST(QuantizedCodec, OperationsMatchReferenceModel) {
  Rng rng(7004);
  const NodeCodec<2> codec(NodeEncoding::kQuantized);
  std::vector<char> page(2048, 0);
  codec.Init(page.data(), /*level=*/2);
  EXPECT_EQ(codec.GetLevel(page.data()), 2);
  EXPECT_EQ(codec.GetCount(page.data()), 0);

  std::vector<std::pair<Rect<2>, uint64_t>> model;
  const auto check = [&] {
    ASSERT_EQ(codec.GetCount(page.data()), model.size());
    for (size_t i = 0; i < model.size(); ++i) {
      ASSERT_TRUE(codec.GetRect(page.data(), static_cast<uint32_t>(i))
                      .Contains(model[i].first));
      ASSERT_EQ(codec.GetRef(page.data(), static_cast<uint32_t>(i)),
                model[i].second);
    }
  };
  const auto random_rect = [&](double span) {
    Rect<2> r;
    for (int d = 0; d < 2; ++d) {
      r.lo[d] = rng.Uniform(-span, span);
      r.hi[d] = r.lo[d] + rng.Uniform(0.0, span / 10.0);
    }
    return r;
  };

  for (int op = 0; op < 3000; ++op) {
    const double roll = rng.Uniform(0.0, 1.0);
    if (model.size() < 100 && (roll < 0.5 || model.empty())) {
      // Append — alternate between rects inside the current grid span and
      // far-away ones that force the widening re-grid path.
      const Rect<2> r = random_rect(roll < 0.25 ? 10.0 : 1e4);
      codec.Append(page.data(), r, op);
      model.push_back({r, static_cast<uint64_t>(op)});
    } else if (roll < 0.75 && !model.empty()) {
      const uint32_t i =
          static_cast<uint32_t>(rng.Uniform(0.0, model.size() - 0.001));
      codec.Remove(page.data(), i);
      // Swap-last, exactly as the raw layout removes.
      model[i] = model.back();
      model.pop_back();
    } else if (!model.empty()) {
      const uint32_t i =
          static_cast<uint32_t>(rng.Uniform(0.0, model.size() - 0.001));
      const Rect<2> r = random_rect(1e4);
      codec.SetEntryRect(page.data(), i, r);
      model[i].first = r;
    }
    check();
    // Widening re-grids must never un-cover surviving entries: every stored
    // code still decodes inside the grid.
    ASSERT_EQ(codec.GetLevel(page.data()), 2);
  }

  // WriteAll replaces everything with a slice and a fresh tight grid.
  std::vector<std::pair<Rect<2>, uint64_t>> bulk;
  for (int i = 0; i < 40; ++i) bulk.push_back({random_rect(500.0), 1000u + i});
  codec.WriteAll(page.data(), bulk, 10, 30);
  model.assign(bulk.begin() + 10, bulk.begin() + 30);
  check();
}

// ---- full-tree behavior under NodeEncoding::kQuantized ----

RTreeOptions QuantizedOptions(uint32_t page_size = 512) {
  RTreeOptions options;
  options.page_size = page_size;
  options.encoding = NodeEncoding::kQuantized;
  return options;
}

std::vector<Rect<2>> RandomRects(Rng& rng, size_t n, double span,
                                 double extent) {
  std::vector<Rect<2>> rects;
  for (size_t i = 0; i < n; ++i) {
    Rect<2> r;
    for (int d = 0; d < 2; ++d) {
      r.lo[d] = rng.Uniform(0.0, extent);
      r.hi[d] = r.lo[d] + rng.Uniform(0.0, span);
    }
    rects.push_back(r);
  }
  return rects;
}

TEST(QuantizedRTree, InsertValidateAndRangeQuery) {
  Rng rng(7010);
  const std::vector<Rect<2>> rects = RandomRects(rng, 2000, 5.0, 1000.0);
  RTree<2> tree(QuantizedOptions());
  for (size_t i = 0; i < rects.size(); ++i) tree.Insert(rects[i], i);
  ASSERT_EQ(tree.size(), rects.size());
  std::string error;
  ASSERT_TRUE(tree.Validate(&error)) << error;
  EXPECT_FALSE(tree.minimal_bounding_regions());

  // The tree's leaf entries are the DECODED (outward-rounded) rects; range
  // queries are exact over those, which makes them a superset of the results
  // over the original rects.
  std::vector<std::pair<Rect<2>, ObjectId>> stored;
  tree.ForEachObject(
      [&](const Rect<2>& r, ObjectId id) { stored.push_back({r, id}); });
  ASSERT_EQ(stored.size(), rects.size());
  for (const auto& [r, id] : stored) {
    ASSERT_TRUE(r.Contains(rects[id])) << id;
  }
  for (int q = 0; q < 50; ++q) {
    Rect<2> query;
    for (int d = 0; d < 2; ++d) {
      query.lo[d] = rng.Uniform(0.0, 900.0);
      query.hi[d] = query.lo[d] + rng.Uniform(10.0, 100.0);
    }
    std::vector<RTree<2>::Entry> out;
    tree.RangeQuery(query, &out);
    std::set<ObjectId> got;
    for (const auto& e : out) got.insert(e.id);
    ASSERT_EQ(got.size(), out.size());  // no duplicates
    std::set<ObjectId> expected;
    for (const auto& [r, id] : stored) {
      if (r.Intersects(query)) expected.insert(id);
    }
    ASSERT_EQ(got, expected) << q;
    // Superset of the pre-quantization answer.
    for (size_t i = 0; i < rects.size(); ++i) {
      if (rects[i].Intersects(query)) {
        ASSERT_TRUE(got.count(i)) << i;
      }
    }
  }
}

TEST(QuantizedRTree, HigherFanOutShrinksTheTree) {
  Rng rng(7011);
  const std::vector<Rect<2>> rects = RandomRects(rng, 3000, 2.0, 1000.0);
  RTreeOptions raw;
  raw.page_size = 2048;
  RTree<2> raw_tree(raw);
  RTree<2> q_tree(QuantizedOptions(2048));
  for (size_t i = 0; i < rects.size(); ++i) {
    raw_tree.Insert(rects[i], i);
    q_tree.Insert(rects[i], i);
  }
  EXPECT_EQ(q_tree.max_entries(), 125u);
  EXPECT_EQ(raw_tree.max_entries(), 51u);
  EXPECT_LE(q_tree.height(), raw_tree.height());
  EXPECT_LT(q_tree.num_nodes(), raw_tree.num_nodes());
  ASSERT_TRUE(q_tree.Validate());
}

TEST(QuantizedRTree, DeleteByOriginalRect) {
  // FindLeaf under quantization matches by containment (the stored rect is
  // the outward-rounded original), so deleting with the ORIGINAL rect works.
  Rng rng(7012);
  const std::vector<Rect<2>> rects = RandomRects(rng, 600, 4.0, 500.0);
  RTree<2> tree(QuantizedOptions());
  for (size_t i = 0; i < rects.size(); ++i) tree.Insert(rects[i], i);
  std::vector<size_t> order(rects.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Deterministic shuffle via the test Rng.
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1],
              order[static_cast<size_t>(rng.Uniform(0.0, i - 0.001))]);
  }
  for (size_t k = 0; k < order.size(); ++k) {
    ASSERT_TRUE(tree.Delete(rects[order[k]], order[k])) << k;
    if (k % 97 == 0) {
      std::string error;
      ASSERT_TRUE(tree.Validate(&error)) << error;
    }
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.Validate());
}

TEST(QuantizedRTree, BulkLoadMatchesInsertedContent) {
  Rng rng(7013);
  const std::vector<Rect<2>> rects = RandomRects(rng, 1500, 3.0, 800.0);
  std::vector<RTree<2>::Entry> entries;
  for (size_t i = 0; i < rects.size(); ++i) entries.push_back({rects[i], i});
  RTree<2> tree(QuantizedOptions());
  tree.BulkLoad(std::move(entries));
  ASSERT_EQ(tree.size(), rects.size());
  std::string error;
  ASSERT_TRUE(tree.Validate(&error)) << error;
  size_t seen = 0;
  tree.ForEachObject([&](const Rect<2>& r, ObjectId id) {
    ASSERT_TRUE(r.Contains(rects[id]));
    ++seen;
  });
  EXPECT_EQ(seen, rects.size());
}

TEST(QuantizedRTree, PersistsAndRefusesEncodingMismatch) {
  const std::string path = ::testing::TempDir() + "/quantized_rtree.pages";
  std::remove(path.c_str());
  Rng rng(7014);
  const std::vector<Rect<2>> rects = RandomRects(rng, 400, 3.0, 300.0);
  RTreeOptions options = QuantizedOptions();
  options.file_path = path;
  {
    RTree<2> tree(options);
    for (size_t i = 0; i < rects.size(); ++i) tree.Insert(rects[i], i);
    ASSERT_TRUE(tree.Flush());
  }
  // Reopening with the matching encoding restores the identical content.
  std::unique_ptr<RTree<2>> reopened = RTree<2>::Open(options);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->size(), rects.size());
  EXPECT_FALSE(reopened->minimal_bounding_regions());
  std::string error;
  ASSERT_TRUE(reopened->Validate(&error)) << error;
  reopened->ForEachObject([&](const Rect<2>& r, ObjectId id) {
    ASSERT_TRUE(r.Contains(rects[id]));
  });
  reopened.reset();
  // A raw-encoding open of a quantized file must refuse (meta v3 records the
  // encoding): decoding u16 codes as doubles would be silent corruption.
  RTreeOptions mismatched = options;
  mismatched.encoding = NodeEncoding::kRaw;
  EXPECT_EQ(RTree<2>::Open(mismatched), nullptr);
  std::remove(path.c_str());
}

// ---- joins over quantized trees ----

TEST(QuantizedRTree, DistanceJoinMatchesBruteForceOverDecodedRects) {
  Rng rng(7015);
  const std::vector<Rect<2>> rects1 = RandomRects(rng, 1000, 4.0, 400.0);
  const std::vector<Rect<2>> rects2 = RandomRects(rng, 1000, 4.0, 400.0);
  RTree<2> tree1(QuantizedOptions());
  RTree<2> tree2(QuantizedOptions());
  for (size_t i = 0; i < rects1.size(); ++i) tree1.Insert(rects1[i], i);
  for (size_t i = 0; i < rects2.size(); ++i) tree2.Insert(rects2[i], i);

  // Reference distances over what the tree actually stores: the decoded
  // leaf rects. The pair stream must be exactly the sorted cross product.
  std::vector<Rect<2>> dec1(rects1.size()), dec2(rects2.size());
  tree1.ForEachObject([&](const Rect<2>& r, ObjectId id) { dec1[id] = r; });
  tree2.ForEachObject([&](const Rect<2>& r, ObjectId id) { dec2[id] = r; });

  DistanceJoinOptions options;
  options.max_pairs = 5000;
  DistanceJoin<2> join(tree1, tree2, options);
  std::vector<double> expected;
  for (const Rect<2>& a : dec1) {
    for (const Rect<2>& b : dec2) {
      expected.push_back(MinDist(a, b, options.metric));
    }
  }
  std::sort(expected.begin(), expected.end());
  JoinResult<2> pair;
  size_t k = 0;
  double last = 0.0;
  while (join.Next(&pair)) {
    ASSERT_EQ(pair.distance, MinDist(dec1[pair.id1], dec2[pair.id2]));
    ASSERT_EQ(pair.distance, expected[k]) << k;
    ASSERT_GE(pair.distance, last);
    last = pair.distance;
    ++k;
  }
  EXPECT_EQ(k, options.max_pairs);
}

// The integer code screen (DESIGN.md §17) must be invisible in the output:
// same pairs, same distances, same pre-existing stats — only the two
// screening counters (and skipped decode work) may differ. A finite cutoff
// on quantized trees is exactly the configuration that engages it, so this
// also asserts the screen actually fires (prunes some entries, passes
// others) rather than vacuously agreeing.
TEST(QuantizedRTree, CodeScreenPrunesWithoutChangingTheStream) {
  Rng rng(7040);
  const std::vector<Rect<2>> rects1 = RandomRects(rng, 600, 4.0, 400.0);
  const std::vector<Rect<2>> rects2 = RandomRects(rng, 600, 4.0, 400.0);
  RTree<2> tree1(QuantizedOptions());
  RTree<2> tree2(QuantizedOptions());
  for (size_t i = 0; i < rects1.size(); ++i) tree1.Insert(rects1[i], i);
  for (size_t i = 0; i < rects2.size(); ++i) tree2.Insert(rects2[i], i);

  auto run = [&](bool screen) {
    DistanceJoinOptions options;
    options.max_distance = 10.0;
    options.screen_codes = screen;
    DistanceJoin<2> join(tree1, tree2, options);
    std::vector<JoinResult<2>> pairs;
    JoinResult<2> pair;
    while (join.Next(&pair)) pairs.push_back(pair);
    return std::make_pair(pairs, join.stats());
  };
  const auto [on_pairs, on_stats] = run(true);
  const auto [off_pairs, off_stats] = run(false);

  ASSERT_EQ(on_pairs.size(), off_pairs.size());
  ASSERT_GT(on_pairs.size(), 0u);
  for (size_t i = 0; i < on_pairs.size(); ++i) {
    ASSERT_EQ(on_pairs[i].id1, off_pairs[i].id1) << i;
    ASSERT_EQ(on_pairs[i].id2, off_pairs[i].id2) << i;
    ASSERT_EQ(on_pairs[i].distance, off_pairs[i].distance) << i;
  }
  EXPECT_EQ(on_stats.pairs_reported, off_stats.pairs_reported);
  EXPECT_EQ(on_stats.total_distance_calcs, off_stats.total_distance_calcs);
  EXPECT_EQ(on_stats.object_distance_calcs, off_stats.object_distance_calcs);
  EXPECT_EQ(on_stats.queue_pushes, off_stats.queue_pushes);
  EXPECT_EQ(on_stats.queue_pops, off_stats.queue_pops);
  EXPECT_EQ(on_stats.nodes_expanded, off_stats.nodes_expanded);
  EXPECT_EQ(on_stats.pruned_by_range, off_stats.pruned_by_range);
  EXPECT_EQ(on_stats.batch_kernel_invocations,
            off_stats.batch_kernel_invocations);
  // The screen did real work...
  EXPECT_GT(on_stats.screened_candidates, 0u);
  EXPECT_GT(on_stats.screen_survivors, 0u);
  EXPECT_LT(on_stats.screen_survivors, on_stats.screened_candidates);
  // ...and with it off, the counters stay silent.
  EXPECT_EQ(off_stats.screened_candidates, 0u);
  EXPECT_EQ(off_stats.screen_survivors, 0u);
}

// The loose-d_max regression (Section 2.2.3 / 4.2.1): a semi-join over an
// index without minimal bounding regions must still be correct, because the
// engine consults minimal_bounding_regions() at RUNTIME and falls back to
// containment-only bounds. Verified against brute-force nearest neighbors
// computed over the decoded rects, for every d_max bound variant.
TEST(QuantizedRTree, SemiJoinUsesLooseBoundsAndStaysCorrect) {
  Rng rng(7016);
  const std::vector<Rect<2>> rects1 = RandomRects(rng, 400, 3.0, 300.0);
  const std::vector<Rect<2>> rects2 = RandomRects(rng, 400, 3.0, 300.0);
  RTree<2> tree1(QuantizedOptions());
  RTree<2> tree2(QuantizedOptions());
  for (size_t i = 0; i < rects1.size(); ++i) tree1.Insert(rects1[i], i);
  for (size_t i = 0; i < rects2.size(); ++i) tree2.Insert(rects2[i], i);
  std::vector<Rect<2>> dec1(rects1.size()), dec2(rects2.size());
  tree1.ForEachObject([&](const Rect<2>& r, ObjectId id) { dec1[id] = r; });
  tree2.ForEachObject([&](const Rect<2>& r, ObjectId id) { dec2[id] = r; });

  // Brute-force semi-join: each first object's nearest decoded partner
  // distance, streamed ascending.
  std::vector<double> expected;
  for (const Rect<2>& a : dec1) {
    double best = std::numeric_limits<double>::infinity();
    for (const Rect<2>& b : dec2) best = std::min(best, MinDist(a, b));
    expected.push_back(best);
  }
  std::sort(expected.begin(), expected.end());

  for (const SemiJoinBound bound :
       {SemiJoinBound::kNone, SemiJoinBound::kLocal,
        SemiJoinBound::kGlobalNodes, SemiJoinBound::kGlobalAll}) {
    SemiJoinOptions options;
    options.bound = bound;
    DistanceSemiJoin<2> semi(tree1, tree2, options);
    JoinResult<2> pair;
    std::vector<bool> seen(rects1.size(), false);
    size_t k = 0;
    while (semi.Next(&pair)) {
      ASSERT_FALSE(seen[pair.id1]);
      seen[pair.id1] = true;
      ASSERT_LT(k, expected.size());
      ASSERT_EQ(pair.distance, expected[k])
          << "bound=" << static_cast<int>(bound) << " k=" << k;
      ++k;
    }
    EXPECT_EQ(k, rects1.size()) << static_cast<int>(bound);
  }
}

// The snapshot fingerprint captures runtime minimality: a cursor saved over
// raw trees must refuse to restore into an engine over quantized trees (and
// vice versa) even though both are RTree<2> with equal sizes — their d_max
// machinery differs, so silently resuming would be unsound.
TEST(QuantizedRTree, SnapshotFingerprintSeparatesEncodings) {
  Rng rng(7017);
  const std::vector<Rect<2>> rects = RandomRects(rng, 300, 3.0, 300.0);
  RTreeOptions raw;
  raw.page_size = 512;
  RTree<2> raw1(raw), raw2(raw);
  RTree<2> q1(QuantizedOptions()), q2(QuantizedOptions());
  for (size_t i = 0; i < rects.size(); ++i) {
    raw1.Insert(rects[i], i);
    raw2.Insert(rects[i], i);
    q1.Insert(rects[i], i);
    q2.Insert(rects[i], i);
  }
  DistanceJoinOptions options;
  DistanceJoin<2> raw_join(raw1, raw2, options);
  snapshot::Blob blob;
  ASSERT_TRUE(raw_join.SaveState(&blob));
  DistanceJoin<2> quant_join(q1, q2, options);
  snapshot::BlobReader reader(blob.data(), blob.size());
  EXPECT_FALSE(quant_join.RestoreState(&reader));
  // Same-encoding restore stays possible.
  DistanceJoin<2> raw_join2(raw1, raw2, options);
  snapshot::BlobReader reader2(blob.data(), blob.size());
  EXPECT_TRUE(raw_join2.RestoreState(&reader2));
}

// Regression guard for the runtime-minimality flags themselves: the two
// non-minimal index configurations must report false, the raw R-tree true.
// (The engines key SemiPairMaxDist vs SemiPairMaxDistLoose off this — see
// DistanceJoin::SemiDmax.)
TEST(MinimalBoundingRegions, RuntimeFlagsMatchIndexSemantics) {
  RTree<2> raw_tree;
  EXPECT_TRUE(raw_tree.minimal_bounding_regions());
  RTree<2> quant_tree(QuantizedOptions());
  EXPECT_FALSE(quant_tree.minimal_bounding_regions());
  PointQuadtree<2> quadtree(Rect<2>({0, 0}, {1, 1}));
  EXPECT_FALSE(quadtree.minimal_bounding_regions());
  static_assert(RTree<2>::kMinimalBoundingRegions,
                "compile-time constant stays the upper bound");
  static_assert(!PointQuadtree<2>::kMinimalBoundingRegions,
                "quadtree regions are never minimal");
}

}  // namespace
}  // namespace sdj
