// Tests for the multi-session serving layer (DESIGN.md §14): admission
// control with explicit overload rejection, deadline time-slicing, memory-
// pressure checkpoint-evict-resume, pinned-resident degradation when
// checkpoints cannot commit, per-session kIoError isolation, and crash
// recovery through the epoch-committed session table — plus the central
// equivalence property: no matter how often a session is sliced, evicted,
// and rehydrated (with fault injection on), its pair stream and statistics
// are identical to an uninterrupted solo run.
#include <sys/stat.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "core/semi_join.h"
#include "core/shard_merge.h"
#include "core/snapshot.h"
#include "core/within_join.h"
#include "data/generators.h"
#include "join_test_util.h"
#include "nn/inc_nearest.h"
#include "rtree/rtree.h"
#include "serve/erased_engine.h"
#include "serve/session_manager.h"
#include "storage/checksum.h"
#include "storage/fault_injection.h"
#include "util/stop_token.h"

namespace sdj {
namespace {

using serve::ServeStatus;
using serve::SessionState;
using test::BuildPointTree;
using SessionId = serve::SessionManager<2>::SessionId;
using EngineFactory = serve::SessionManager<2>::EngineFactory;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Creates a clean per-test state directory (recovery tests reuse paths, so
// stale files from earlier runs must not leak in).
std::string FreshStateDir(const std::string& name) {
  const std::string dir = TempPath(name);
  ::mkdir(dir.c_str(), 0755);
  std::remove((dir + "/sessions.tbl").c_str());
  for (int id = 1; id <= 16; ++id) {
    std::remove((dir + "/session_" + std::to_string(id) + ".snap").c_str());
  }
  return dir;
}

using Pair = std::tuple<uint64_t, uint64_t, double>;

Pair AsTuple(const JoinResult<2>& r) { return {r.id1, r.id2, r.distance}; }

// Same field-by-field comparison the cursor tests use: resumed/evicted runs
// must be statistics-identical, not just stream-identical.
void ExpectStatsEqual(const JoinStats& a, const JoinStats& b) {
  EXPECT_EQ(a.pairs_reported, b.pairs_reported);
  EXPECT_EQ(a.object_distance_calcs, b.object_distance_calcs);
  EXPECT_EQ(a.total_distance_calcs, b.total_distance_calcs);
  EXPECT_EQ(a.queue_pushes, b.queue_pushes);
  EXPECT_EQ(a.queue_pops, b.queue_pops);
  EXPECT_EQ(a.max_queue_size, b.max_queue_size);
  EXPECT_EQ(a.node_io, b.node_io);
  EXPECT_EQ(a.node_accesses, b.node_accesses);
  EXPECT_EQ(a.nodes_expanded, b.nodes_expanded);
  EXPECT_EQ(a.pruned_by_range, b.pruned_by_range);
  EXPECT_EQ(a.pruned_by_estimate, b.pruned_by_estimate);
  EXPECT_EQ(a.pruned_by_bound, b.pruned_by_bound);
  EXPECT_EQ(a.pruned_by_filter, b.pruned_by_filter);
  EXPECT_EQ(a.filtered_reported, b.filtered_reported);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.io_retries, b.io_retries);
  EXPECT_EQ(a.checksum_failures, b.checksum_failures);
  EXPECT_EQ(a.spill_fallbacks, b.spill_fallbacks);
  EXPECT_EQ(a.batch_kernel_invocations, b.batch_kernel_invocations);
  EXPECT_EQ(a.parallel_expansions, b.parallel_expansions);
}

std::vector<Point<2>> MakePoints(size_t n, uint64_t seed) {
  const Rect<2> extent({0.0, 0.0}, {1000.0, 1000.0});
  return data::GenerateUniform(n, extent, seed);
}

// Per-session context: trees built from the captured points, owned for the
// engine's lifetime (and rebuilt from scratch on every rehydration, exactly
// as a post-crash resume would).
struct TreePairContext {
  TreePairContext(const std::vector<Point<2>>& pa,
                  const std::vector<Point<2>>& pb)
      : a(BuildPointTree(pa)), b(BuildPointTree(pb)) {}
  RTree<2> a;
  RTree<2> b;
};

struct TreeContext {
  explicit TreeContext(const std::vector<Point<2>>& pts)
      : tree(BuildPointTree(pts)) {}
  RTree<2> tree;
};

EngineFactory JoinFactory(std::vector<Point<2>> a, std::vector<Point<2>> b,
                          DistanceJoinOptions options) {
  return [a = std::move(a), b = std::move(b),
          options](util::StopToken token)
             -> std::unique_ptr<serve::ErasedEngine<2>> {
    auto ctx = std::make_shared<TreePairContext>(a, b);
    DistanceJoinOptions o = options;
    o.stop_token = token;
    auto join = std::make_unique<DistanceJoin<2>>(ctx->a, ctx->b, o);
    return serve::Erase<2>(std::move(join), ctx);
  };
}

EngineFactory SemiFactory(std::vector<Point<2>> a, std::vector<Point<2>> b,
                          SemiJoinOptions options) {
  return [a = std::move(a), b = std::move(b),
          options](util::StopToken token)
             -> std::unique_ptr<serve::ErasedEngine<2>> {
    auto ctx = std::make_shared<TreePairContext>(a, b);
    SemiJoinOptions o = options;
    o.join.stop_token = token;
    auto semi = std::make_unique<DistanceSemiJoin<2>>(ctx->a, ctx->b, o);
    return serve::Erase<2>(std::move(semi), ctx);
  };
}

EngineFactory WithinFactory(std::vector<Point<2>> a, std::vector<Point<2>> b,
                            WithinJoinOptions options) {
  return [a = std::move(a), b = std::move(b),
          options](util::StopToken token)
             -> std::unique_ptr<serve::ErasedEngine<2>> {
    auto ctx = std::make_shared<TreePairContext>(a, b);
    WithinJoinOptions o = options;
    o.stop_token = token;
    auto join = std::make_unique<IncWithinJoin<2>>(ctx->a, ctx->b, o);
    return serve::Erase<2>(std::move(join), ctx);
  };
}

EngineFactory NearestFactory(std::vector<Point<2>> pts, Point<2> query,
                             IncNeighborOptions options) {
  return [pts = std::move(pts), query,
          options](util::StopToken token)
             -> std::unique_ptr<serve::ErasedEngine<2>> {
    auto ctx = std::make_shared<TreeContext>(pts);
    IncNeighborOptions o = options;
    o.stop_token = token;
    auto nn = std::make_unique<IncNearestNeighbor<2>>(ctx->tree, query, o);
    return serve::Erase<2>(std::move(nn), ctx);
  };
}

// Uninterrupted solo reference for any factory-built engine: the stream and
// final statistics every served session must reproduce exactly.
struct Reference {
  std::vector<Pair> stream;
  JoinStats stats;
};

Reference RunReference(const EngineFactory& factory) {
  Reference ref;
  auto engine = factory(util::StopToken());
  JoinResult<2> r;
  while (engine->Next(&r)) ref.stream.push_back(AsTuple(r));
  ref.stats = engine->stats();
  return ref;
}

// Drains one session to exhaustion (tolerating slice yields), appending to
// `stream`.
void DrainSession(serve::SessionManager<2>* manager, SessionId id,
                  std::vector<Pair>* stream) {
  JoinResult<2> r;
  for (;;) {
    const ServeStatus s = manager->Next(id, &r);
    if (s == ServeStatus::kOk) {
      stream->push_back(AsTuple(r));
    } else if (s == ServeStatus::kYield) {
      continue;
    } else {
      ASSERT_EQ(s, ServeStatus::kExhausted);
      return;
    }
  }
}

// --- admission control -------------------------------------------------------

TEST(SessionManager, AdmitsUpToCapAndRejectsOverload) {
  serve::ServeOptions options;
  options.max_sessions = 2;
  serve::SessionManager<2> manager(options);
  const auto a = MakePoints(40, 1);
  const auto b = MakePoints(40, 2);
  DistanceJoinOptions join_options;
  join_options.max_pairs = 20;

  const auto r1 = manager.Admit("s1", JoinFactory(a, b, join_options));
  const auto r2 = manager.Admit("s2", JoinFactory(a, b, join_options));
  ASSERT_EQ(r1.status, ServeStatus::kOk);
  ASSERT_EQ(r2.status, ServeStatus::kOk);
  EXPECT_NE(r1.id, r2.id);

  const auto r3 = manager.Admit("s3", JoinFactory(a, b, join_options));
  EXPECT_EQ(r3.status, ServeStatus::kRejectedOverload);
  EXPECT_EQ(manager.stats().rejected_overload, 1u);
  EXPECT_EQ(manager.ActiveSessions(), 2u);

  // Closing a session frees its admission slot.
  manager.Close(r1.id);
  EXPECT_EQ(manager.state(r1.id), SessionState::kClosed);
  JoinResult<2> r;
  EXPECT_EQ(manager.Next(r1.id, &r), ServeStatus::kNotFound);
  const auto r4 = manager.Admit("s4", JoinFactory(a, b, join_options));
  EXPECT_EQ(r4.status, ServeStatus::kOk);
}

TEST(SessionManager, RejectsWhenBudgetCannotFitNewcomer) {
  serve::ServeOptions options;
  options.memory_budget_entries = 0;  // nothing fits: even the seed pair
  serve::SessionManager<2> manager(options);
  const auto a = MakePoints(30, 3);
  const auto b = MakePoints(30, 4);
  const auto r = manager.Admit("s", JoinFactory(a, b, {}));
  EXPECT_EQ(r.status, ServeStatus::kRejectedOverload);
  EXPECT_EQ(manager.stats().rejected_overload, 1u);
  EXPECT_EQ(manager.ActiveSessions(), 0u);
}

// --- basic serving -----------------------------------------------------------

TEST(SessionManager, ServesSingleSessionToExhaustion) {
  const auto a = MakePoints(60, 5);
  const auto b = MakePoints(60, 6);
  DistanceJoinOptions join_options;
  join_options.max_pairs = 80;
  const EngineFactory factory = JoinFactory(a, b, join_options);
  const Reference ref = RunReference(factory);

  serve::SessionManager<2> manager(serve::ServeOptions{});
  const auto admit = manager.Admit("solo", factory);
  ASSERT_EQ(admit.status, ServeStatus::kOk);
  std::vector<Pair> stream;
  DrainSession(&manager, admit.id, &stream);
  EXPECT_EQ(stream, ref.stream);
  ExpectStatsEqual(manager.session_stats(admit.id), ref.stats);
  EXPECT_EQ(manager.state(admit.id), SessionState::kFinished);
  EXPECT_EQ(manager.stats().finished_sessions, 1u);
  // Terminal and unknown sessions answer with a status, never an abort.
  JoinResult<2> r;
  EXPECT_EQ(manager.Next(admit.id, &r), ServeStatus::kExhausted);
  EXPECT_EQ(manager.Next(999, &r), ServeStatus::kNotFound);
  const serve::SessionCounters counters = manager.counters(admit.id);
  EXPECT_EQ(counters.results, ref.stream.size());
  EXPECT_EQ(counters.yields, 0u);
}

// --- deadline time-slicing ---------------------------------------------------

TEST(SessionManager, ExpiredSliceYieldsAndSessionStaysLive) {
  serve::ServeOptions options;
  options.slice = std::chrono::microseconds(-1);  // deadline already past
  serve::SessionManager<2> manager(options);
  const auto a = MakePoints(40, 7);
  const auto b = MakePoints(40, 8);
  const auto admit = manager.Admit("sliced", JoinFactory(a, b, {}));
  ASSERT_EQ(admit.status, ServeStatus::kOk);
  JoinResult<2> r;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(manager.Next(admit.id, &r), ServeStatus::kYield);
    EXPECT_EQ(manager.state(admit.id), SessionState::kLive);
  }
  const serve::SessionCounters counters = manager.counters(admit.id);
  EXPECT_EQ(counters.slices, 3u);
  EXPECT_EQ(counters.yields, 3u);
  EXPECT_EQ(counters.results, 0u);
}

TEST(SessionManager, SlicedStreamIsIdenticalToUnslicedReference) {
  const auto a = MakePoints(80, 9);
  const auto b = MakePoints(80, 10);
  DistanceJoinOptions join_options;
  join_options.max_pairs = 120;
  const EngineFactory factory = JoinFactory(a, b, join_options);
  const Reference ref = RunReference(factory);

  serve::ServeOptions options;
  options.slice = std::chrono::microseconds(20);
  serve::SessionManager<2> manager(options);
  const auto admit = manager.Admit("sliced", factory);
  ASSERT_EQ(admit.status, ServeStatus::kOk);
  std::vector<Pair> stream;
  DrainSession(&manager, admit.id, &stream);
  // However many slice deadlines fired mid-run, the suspension safe points
  // are invisible: stream and statistics match the unsliced run exactly.
  EXPECT_EQ(stream, ref.stream);
  ExpectStatsEqual(manager.session_stats(admit.id), ref.stats);
}

// --- checkpoint-evict-resume -------------------------------------------------

TEST(SessionManager, ExplicitEvictRehydratesTransparently) {
  const auto a = MakePoints(70, 11);
  const auto b = MakePoints(70, 12);
  DistanceJoinOptions join_options;
  join_options.max_pairs = 90;
  const EngineFactory factory = JoinFactory(a, b, join_options);
  const Reference ref = RunReference(factory);

  serve::SessionManager<2> manager(serve::ServeOptions{});
  const auto admit = manager.Admit("evictee", factory);
  ASSERT_EQ(admit.status, ServeStatus::kOk);
  std::vector<Pair> stream;
  JoinResult<2> r;
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(manager.Next(admit.id, &r), ServeStatus::kOk);
    stream.push_back(AsTuple(r));
  }
  ASSERT_TRUE(manager.Evict(admit.id));
  EXPECT_EQ(manager.state(admit.id), SessionState::kEvicted);
  EXPECT_EQ(manager.ResidentEntries(), 0u);
  // The next Next() rebuilds the engine and resumes the checkpoint.
  DrainSession(&manager, admit.id, &stream);
  EXPECT_EQ(stream, ref.stream);
  ExpectStatsEqual(manager.session_stats(admit.id), ref.stats);
  const serve::SessionCounters counters = manager.counters(admit.id);
  EXPECT_EQ(counters.evictions, 1u);
  EXPECT_EQ(counters.rehydrations, 1u);
  EXPECT_GE(counters.cursor.checkpoints_written, 1u);
}

TEST(SessionManager, MemoryPressureEvictsColdestSessions) {
  DistanceJoinOptions join_options;
  join_options.max_pairs = 40;
  std::vector<EngineFactory> factories;
  std::vector<Reference> refs;
  for (int i = 0; i < 3; ++i) {
    factories.push_back(JoinFactory(MakePoints(50, 13 + 2 * i),
                                    MakePoints(50, 14 + 2 * i),
                                    join_options));
    refs.push_back(RunReference(factories.back()));
  }

  serve::ServeOptions options;
  options.memory_budget_entries = 64;  // far below one session's queue
  serve::SessionManager<2> manager(options);
  std::vector<SessionId> ids;
  for (int i = 0; i < 3; ++i) {
    std::string tag = "s";
    tag += std::to_string(i);
    const auto admit = manager.Admit(tag, factories[i]);
    ASSERT_EQ(admit.status, ServeStatus::kOk);
    ids.push_back(admit.id);
  }

  // Round-robin until every session finishes. The budget is small enough
  // that serving one session evicts the others, so each session is
  // checkpointed and rehydrated many times mid-stream.
  std::map<SessionId, std::vector<Pair>> streams;
  size_t remaining = ids.size();
  std::map<SessionId, bool> done;
  while (remaining > 0) {
    for (const SessionId id : ids) {
      if (done[id]) continue;
      JoinResult<2> r;
      const ServeStatus s = manager.Next(id, &r);
      if (s == ServeStatus::kOk) {
        streams[id].push_back(AsTuple(r));
      } else {
        ASSERT_EQ(s, ServeStatus::kExhausted);
        done[id] = true;
        --remaining;
      }
    }
  }
  EXPECT_GT(manager.stats().evictions, 0u);
  EXPECT_EQ(manager.stats().evictions, manager.stats().rehydrations);
  for (size_t i = 0; i < ids.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "session " << i);
    EXPECT_EQ(streams[ids[i]], refs[i].stream);
    ExpectStatsEqual(manager.session_stats(ids[i]), refs[i].stats);
  }
}

// The serving layer's central property, fuzzed (satellite of ISSUE 6): a
// mixed population of join, semi-join, within-join, and nearest-neighbor
// sessions, served in a random interleaving under memory pressure AND fault
// injection (periodic transient read/write faults plus one torn commit per
// store) — every session's stream and statistics must match its
// uninterrupted solo run exactly.
TEST(SessionManager, EvictResumeEquivalenceFuzzUnderFaults) {
  DistanceJoinOptions join_options;
  join_options.max_pairs = 40;
  DistanceJoinOptions hybrid_options = join_options;
  hybrid_options.use_hybrid_queue = true;
  hybrid_options.hybrid.tier_width = 25.0;
  SemiJoinOptions semi_options;
  semi_options.join.max_pairs = 30;
  WithinJoinOptions within_options;
  within_options.epsilon = 60.0;
  IncNeighborOptions nn_options;

  std::vector<EngineFactory> factories;
  factories.push_back(
      JoinFactory(MakePoints(50, 21), MakePoints(50, 22), join_options));
  factories.push_back(
      JoinFactory(MakePoints(50, 23), MakePoints(50, 24), hybrid_options));
  factories.push_back(
      SemiFactory(MakePoints(40, 25), MakePoints(40, 26), semi_options));
  factories.push_back(WithinFactory(MakePoints(40, 27), MakePoints(40, 28),
                                    within_options));
  factories.push_back(
      NearestFactory(MakePoints(60, 29), Point<2>{400.0, 600.0}, nn_options));
  std::vector<Reference> refs;
  for (const EngineFactory& f : factories) refs.push_back(RunReference(f));

  serve::ServeOptions options;
  options.state_dir = FreshStateDir("serve_fuzz");
  options.memory_budget_entries = 96;
  options.snapshot_slots = 4;
  options.commit_retry = {.max_attempts = 3, .backoff_us = 0};
  options.retry.backoff_us = 0;
  storage::FaultInjectionOptions faults;
  faults.seed = 20260808;
  faults.transient_write_period = 5;
  faults.transient_read_period = 7;
  faults.torn_write_at = 9;
  options.fault_injection = faults;
  serve::SessionManager<2> manager(options);

  std::vector<SessionId> ids;
  for (size_t i = 0; i < factories.size(); ++i) {
    std::string tag = "fuzz";
    tag += std::to_string(i);
    const auto admit = manager.Admit(tag, factories[i]);
    ASSERT_EQ(admit.status, ServeStatus::kOk);
    ids.push_back(admit.id);
  }

  std::mt19937_64 rng(424243);
  std::map<SessionId, std::vector<Pair>> streams;
  std::map<SessionId, bool> done;
  size_t remaining = ids.size();
  while (remaining > 0) {
    const SessionId id = ids[rng() % ids.size()];
    if (done[id]) continue;
    JoinResult<2> r;
    const ServeStatus s = manager.Next(id, &r);
    if (s == ServeStatus::kOk) {
      streams[id].push_back(AsTuple(r));
    } else {
      ASSERT_EQ(s, ServeStatus::kExhausted);
      done[id] = true;
      --remaining;
    }
  }
  EXPECT_GT(manager.stats().evictions, 0u);
  EXPECT_EQ(manager.stats().failed_sessions, 0u);
  for (size_t i = 0; i < ids.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "session " << i);
    EXPECT_EQ(streams[ids[i]], refs[i].stream);
    ExpectStatsEqual(manager.session_stats(ids[i]), refs[i].stats);
  }
}

// --- pinned-resident degradation ---------------------------------------------

TEST(SessionManager, PinnedResidentWhenCheckpointCannotCommit) {
  const auto a = MakePoints(60, 31);
  const auto b = MakePoints(60, 32);
  DistanceJoinOptions join_options;
  join_options.max_pairs = 60;
  const EngineFactory factory = JoinFactory(a, b, join_options);
  const Reference ref = RunReference(factory);

  serve::ServeOptions options;
  // One torn commit, and no commit retry: the first eviction attempt fails.
  storage::FaultInjectionOptions faults;
  faults.torn_write_at = 4;
  options.fault_injection = faults;
  options.commit_retry = {.max_attempts = 1, .backoff_us = 0};
  options.retry.backoff_us = 0;
  serve::SessionManager<2> manager(options);
  const auto admit = manager.Admit("pinned", factory);
  ASSERT_EQ(admit.status, ServeStatus::kOk);
  std::vector<Pair> stream;
  JoinResult<2> r;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(manager.Next(admit.id, &r), ServeStatus::kOk);
    stream.push_back(AsTuple(r));
  }
  // The torn commit fails the eviction; the session degrades to
  // pinned-resident instead of losing progress.
  EXPECT_FALSE(manager.Evict(admit.id));
  EXPECT_EQ(manager.state(admit.id), SessionState::kLive);
  EXPECT_TRUE(manager.counters(admit.id).pinned_resident);
  EXPECT_EQ(manager.stats().pinned_sessions, 1u);
  EXPECT_GE(manager.counters(admit.id).cursor.checkpoint_failures, 1u);
  // Pinned sessions keep serving.
  ASSERT_EQ(manager.Next(admit.id, &r), ServeStatus::kOk);
  stream.push_back(AsTuple(r));
  // A later successful checkpoint unpins; eviction works again.
  EXPECT_TRUE(manager.Checkpoint(admit.id));
  EXPECT_FALSE(manager.counters(admit.id).pinned_resident);
  EXPECT_TRUE(manager.Evict(admit.id));
  EXPECT_EQ(manager.state(admit.id), SessionState::kEvicted);
  DrainSession(&manager, admit.id, &stream);
  EXPECT_EQ(stream, ref.stream);
  ExpectStatsEqual(manager.session_stats(admit.id), ref.stats);
}

TEST(SessionManager, DeadDiskPinsEverySessionButAllComplete) {
  DistanceJoinOptions join_options;
  join_options.max_pairs = 30;
  std::vector<EngineFactory> factories;
  std::vector<Reference> refs;
  for (int i = 0; i < 2; ++i) {
    factories.push_back(JoinFactory(MakePoints(40, 33 + 2 * i),
                                    MakePoints(40, 34 + 2 * i),
                                    join_options));
    refs.push_back(RunReference(factories.back()));
  }

  serve::ServeOptions options;
  options.memory_budget_entries = 32;  // pressure on every Next
  storage::FaultInjectionOptions faults;
  faults.hard_write_after = 0;  // every snapshot store is a dead disk
  options.fault_injection = faults;
  options.commit_retry = {.max_attempts = 2, .backoff_us = 0};
  options.retry.backoff_us = 0;
  serve::SessionManager<2> manager(options);
  std::vector<SessionId> ids;
  for (int i = 0; i < 2; ++i) {
    std::string tag = "dead";
    tag += std::to_string(i);
    const auto admit = manager.Admit(tag, factories[i]);
    ASSERT_EQ(admit.status, ServeStatus::kOk);
    ids.push_back(admit.id);
  }
  // No checkpoint can ever commit, so eviction is impossible — the budget
  // degrades to pinned-resident sessions rather than stalling or aborting.
  std::map<SessionId, std::vector<Pair>> streams;
  std::map<SessionId, bool> done;
  size_t remaining = ids.size();
  while (remaining > 0) {
    for (const SessionId id : ids) {
      if (done[id]) continue;
      JoinResult<2> r;
      const ServeStatus s = manager.Next(id, &r);
      if (s == ServeStatus::kOk) {
        streams[id].push_back(AsTuple(r));
      } else {
        ASSERT_EQ(s, ServeStatus::kExhausted);
        done[id] = true;
        --remaining;
      }
    }
  }
  EXPECT_EQ(manager.stats().evictions, 0u);
  EXPECT_EQ(manager.stats().pinned_sessions, 2u);
  for (size_t i = 0; i < ids.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "session " << i);
    EXPECT_EQ(streams[ids[i]], refs[i].stream);
  }
}

// --- failure isolation -------------------------------------------------------

TEST(SessionManager, RehydrationFailureIsIsolatedToItsSession) {
  const auto a = MakePoints(50, 41);
  const auto b = MakePoints(50, 42);
  DistanceJoinOptions join_options;
  join_options.max_pairs = 40;
  const EngineFactory good_factory = JoinFactory(a, b, join_options);
  const Reference good_ref = RunReference(good_factory);

  // The poisoned factory rebuilds the engine with a different metric after
  // eviction: the snapshot's config fingerprint no longer matches, so the
  // restore fails — serving this stale stream from scratch would duplicate
  // results, so the session must fail instead.
  auto poison = std::make_shared<bool>(false);
  const auto pts_a = MakePoints(50, 43);
  const auto pts_b = MakePoints(50, 44);
  EngineFactory poisoned_factory =
      [pts_a, pts_b, join_options, poison](util::StopToken token)
      -> std::unique_ptr<serve::ErasedEngine<2>> {
    auto ctx = std::make_shared<TreePairContext>(pts_a, pts_b);
    DistanceJoinOptions o = join_options;
    o.stop_token = token;
    if (*poison) o.metric = Metric::kManhattan;
    auto join = std::make_unique<DistanceJoin<2>>(ctx->a, ctx->b, o);
    return serve::Erase<2>(std::move(join), ctx);
  };

  serve::SessionManager<2> manager(serve::ServeOptions{});
  const auto good = manager.Admit("good", good_factory);
  const auto bad = manager.Admit("bad", poisoned_factory);
  ASSERT_EQ(good.status, ServeStatus::kOk);
  ASSERT_EQ(bad.status, ServeStatus::kOk);

  JoinResult<2> r;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(manager.Next(bad.id, &r), ServeStatus::kOk);
  }
  ASSERT_TRUE(manager.Evict(bad.id));
  *poison = true;
  // Rehydration fails: explicit kIoError, session isolated as kFailed.
  EXPECT_EQ(manager.Next(bad.id, &r), ServeStatus::kIoError);
  EXPECT_EQ(manager.state(bad.id), SessionState::kFailed);
  EXPECT_EQ(manager.stats().failed_sessions, 1u);
  EXPECT_EQ(manager.Next(bad.id, &r), ServeStatus::kIoError);

  // The healthy session is untouched by its neighbor's failure.
  std::vector<Pair> stream;
  DrainSession(&manager, good.id, &stream);
  EXPECT_EQ(stream, good_ref.stream);
  ExpectStatsEqual(manager.session_stats(good.id), good_ref.stats);
}

// --- crash recovery ----------------------------------------------------------

TEST(SessionManager, CrashRecoveryResumesCheckpointedSessions) {
  const std::string dir = FreshStateDir("serve_recovery");
  DistanceJoinOptions join_options;
  join_options.max_pairs = 60;
  const EngineFactory factory_a =
      JoinFactory(MakePoints(60, 51), MakePoints(60, 52), join_options);
  const EngineFactory factory_b =
      JoinFactory(MakePoints(60, 53), MakePoints(60, 54), join_options);
  const Reference ref_a = RunReference(factory_a);
  const Reference ref_b = RunReference(factory_b);

  serve::ServeOptions options;
  options.state_dir = dir;
  std::map<std::string, std::vector<Pair>> streams;
  SessionId id_a = 0;
  SessionId id_b = 0;
  {
    serve::SessionManager<2> manager(options);
    const auto admit_a = manager.Admit("join-a", factory_a);
    const auto admit_b = manager.Admit("join-b", factory_b);
    ASSERT_EQ(admit_a.status, ServeStatus::kOk);
    ASSERT_EQ(admit_b.status, ServeStatus::kOk);
    id_a = admit_a.id;
    id_b = admit_b.id;
    JoinResult<2> r;
    for (int i = 0; i < 12; ++i) {
      ASSERT_EQ(manager.Next(id_a, &r), ServeStatus::kOk);
      streams["join-a"].push_back(AsTuple(r));
    }
    for (int i = 0; i < 7; ++i) {
      ASSERT_EQ(manager.Next(id_b, &r), ServeStatus::kOk);
      streams["join-b"].push_back(AsTuple(r));
    }
    // Both sessions checkpoint + evict, committing their snapshots and the
    // session table; then the process "crashes" (manager destroyed).
    ASSERT_TRUE(manager.Evict(id_a));
    ASSERT_TRUE(manager.Evict(id_b));
  }

  serve::SessionManager<2> manager(options);
  const size_t recovered = manager.Recover(
      [&](const serve::SessionRecord& record) -> EngineFactory {
        if (record.tag == "join-a") return factory_a;
        if (record.tag == "join-b") return factory_b;
        return nullptr;
      });
  EXPECT_EQ(recovered, 2u);
  EXPECT_EQ(manager.stats().recovered_sessions, 2u);
  EXPECT_EQ(manager.state(id_a), SessionState::kEvicted);
  EXPECT_EQ(manager.state(id_b), SessionState::kEvicted);

  DrainSession(&manager, id_a, &streams["join-a"]);
  DrainSession(&manager, id_b, &streams["join-b"]);
  EXPECT_EQ(streams["join-a"], ref_a.stream);
  EXPECT_EQ(streams["join-b"], ref_b.stream);
  ExpectStatsEqual(manager.session_stats(id_a), ref_a.stats);
  ExpectStatsEqual(manager.session_stats(id_b), ref_b.stats);

  // The id allocator's high-water mark was recovered too: new sessions must
  // not collide with recovered ids.
  const auto fresh = manager.Admit("join-c", factory_a);
  ASSERT_EQ(fresh.status, ServeStatus::kOk);
  EXPECT_GT(fresh.id, id_b);
}

TEST(SessionManager, RecoveryWithoutSnapshotRestartsFromScratch) {
  const std::string dir = FreshStateDir("serve_recovery_scratch");
  DistanceJoinOptions join_options;
  join_options.max_pairs = 30;
  const EngineFactory factory =
      JoinFactory(MakePoints(40, 55), MakePoints(40, 56), join_options);
  const Reference ref = RunReference(factory);

  serve::ServeOptions options;
  options.state_dir = dir;
  SessionId id = 0;
  {
    serve::SessionManager<2> manager(options);
    const auto admit = manager.Admit("scratch", factory);
    ASSERT_EQ(admit.status, ServeStatus::kOk);
    id = admit.id;
    // A few results, but no checkpoint — then crash. The table records the
    // session with has_snapshot = false.
    JoinResult<2> r;
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(manager.Next(id, &r), ServeStatus::kOk);
    }
  }

  serve::SessionManager<2> manager(options);
  const size_t recovered = manager.Recover(
      [&](const serve::SessionRecord& record) -> EngineFactory {
        EXPECT_FALSE(record.has_snapshot);
        return factory;
      });
  ASSERT_EQ(recovered, 1u);
  // No committed progress existed, so the session restarts from scratch:
  // the full stream again (at-least-once delivery across crashes).
  std::vector<Pair> stream;
  DrainSession(&manager, id, &stream);
  EXPECT_EQ(stream, ref.stream);
}

// Flips one byte inside a physical page (page_size + trailer bytes each);
// the page checksum catches it on the next read.
void CorruptPage(const std::string& path, uint32_t page_size, uint32_t page) {
  const uint64_t physical = page_size + storage::kPageTrailerSize;
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  const long offset = static_cast<long>(page * physical + 16);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  const int byte = std::fgetc(f);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  ASSERT_NE(std::fputc(byte ^ 0xFF, f), EOF);
  std::fclose(f);
}

TEST(SessionManager, TornTableCommitFallsBackToPreviousEpoch) {
  const std::string dir = FreshStateDir("serve_torn_table");
  DistanceJoinOptions join_options;
  join_options.max_pairs = 20;
  const EngineFactory factory =
      JoinFactory(MakePoints(30, 57), MakePoints(30, 58), join_options);
  const Reference ref = RunReference(factory);

  serve::ServeOptions options;
  options.state_dir = dir;
  SessionId id_a = 0;
  {
    serve::SessionManager<2> manager(options);
    const auto admit_a = manager.Admit("table-a", factory);  // table epoch 1
    const auto admit_b = manager.Admit("table-b", factory);  // table epoch 2
    ASSERT_EQ(admit_a.status, ServeStatus::kOk);
    ASSERT_EQ(admit_b.status, ServeStatus::kOk);
    id_a = admit_a.id;
  }
  // Tear the newest table epoch (epoch 2 lives in slot 2 % 2 = 0, header
  // page 0): recovery must fall back to the consistent epoch-1 set — just
  // "table-a" — never a half-written one.
  CorruptPage(dir + "/sessions.tbl", 4096, 0);

  serve::SessionManager<2> manager(options);
  const size_t recovered = manager.Recover(
      [&](const serve::SessionRecord& record) -> EngineFactory {
        EXPECT_EQ(record.tag, "table-a");
        return factory;
      });
  ASSERT_EQ(recovered, 1u);
  std::vector<Pair> stream;
  DrainSession(&manager, id_a, &stream);
  EXPECT_EQ(stream, ref.stream);
}

// --- serving self-healing (DESIGN.md §16) ------------------------------------

// An unrestorable newest epoch — here, version skew: a fully checksummed
// snapshot whose payload no engine of this configuration can restore —
// engages the self-healing fallback: scrub, retry the newest epoch once,
// then walk older committed epochs. The session resumes from the eviction
// checkpoint, serves its exact remaining stream, and is marked degraded.
TEST(SessionManager, SelfHealFallsBackToOlderEpochAndMarksDegraded) {
  const std::string dir = FreshStateDir("serve_self_heal");
  DistanceJoinOptions join_options;
  join_options.max_pairs = 60;
  const EngineFactory factory =
      JoinFactory(MakePoints(60, 61), MakePoints(60, 62), join_options);
  const Reference ref = RunReference(factory);

  serve::ServeOptions options;
  options.state_dir = dir;
  options.snapshot_slots = 3;
  serve::SessionManager<2> manager(options);
  const auto admit = manager.Admit("heal", factory);
  ASSERT_EQ(admit.status, ServeStatus::kOk);
  std::vector<Pair> stream;
  JoinResult<2> r;
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(manager.Next(admit.id, &r), ServeStatus::kOk);
    stream.push_back(AsTuple(r));
  }
  ASSERT_TRUE(manager.Checkpoint(admit.id));  // epoch 1
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(manager.Next(admit.id, &r), ServeStatus::kOk);
    stream.push_back(AsTuple(r));
  }
  ASSERT_TRUE(manager.Evict(admit.id));  // epoch 2: the 10-result checkpoint

  // While the session is evicted, an incompatible epoch 3 lands in its
  // store: valid pages, valid header, a payload RestoreState must reject.
  {
    auto store = snapshot::SnapshotStore::Open(
        {dir + "/session_" + std::to_string(admit.id) + ".snap", 4096,
         std::nullopt, std::nullopt, {}, nullptr, 3});
    ASSERT_NE(store, nullptr);
    snapshot::Blob junk;
    junk.PutU64(0xDEADBEEFULL);  // wrong engine fingerprint
    ASSERT_TRUE(store->WriteSnapshot(junk));
    EXPECT_EQ(store->last_epoch(), 3u);
  }

  // The next Next() rehydrates through SelfHeal and the stream continues
  // exactly where the epoch-2 checkpoint stopped — no duplicates, no gaps.
  DrainSession(&manager, admit.id, &stream);
  EXPECT_EQ(stream, ref.stream);
  ExpectStatsEqual(manager.session_stats(admit.id), ref.stats);
  EXPECT_EQ(manager.health(admit.id), serve::SessionHealth::kDegraded);
  EXPECT_EQ(manager.stats().degraded_sessions, 1u);
  EXPECT_EQ(manager.stats().quarantined_sessions, 0u);
  const serve::SessionCounters counters = manager.counters(admit.id);
  EXPECT_EQ(counters.scrubs, 1u);
  // Nothing was torn — this was a fallback past a rejected epoch, not a
  // header repair.
  EXPECT_EQ(counters.slots_healed, 0u);
  EXPECT_GE(counters.cursor.snapshot_fallbacks, 1u);
}

// When every slot of a session's store is corrupt, self-healing finds no
// committed epoch to fall back to: the session is quarantined — explicit
// kIoError, store left on disk for offline scrub — and its neighbors never
// notice.
TEST(SessionManager, QuarantineIsolatesCorruptStoreFromNeighbors) {
  const std::string dir = FreshStateDir("serve_quarantine");
  DistanceJoinOptions join_options;
  join_options.max_pairs = 40;
  const EngineFactory bad_factory =
      JoinFactory(MakePoints(50, 63), MakePoints(50, 64), join_options);
  const EngineFactory good_factory =
      JoinFactory(MakePoints(50, 65), MakePoints(50, 66), join_options);
  const Reference good_ref = RunReference(good_factory);

  serve::ServeOptions options;
  options.state_dir = dir;
  serve::SessionManager<2> manager(options);
  const auto bad = manager.Admit("bad", bad_factory);
  const auto good = manager.Admit("good", good_factory);
  ASSERT_EQ(bad.status, ServeStatus::kOk);
  ASSERT_EQ(good.status, ServeStatus::kOk);
  JoinResult<2> r;
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(manager.Next(bad.id, &r), ServeStatus::kOk);
  }
  ASSERT_TRUE(manager.Evict(bad.id));

  // Corrupt both header slots of the evicted session's store on disk.
  const std::string snap =
      dir + "/session_" + std::to_string(bad.id) + ".snap";
  CorruptPage(snap, 4096, 0);
  CorruptPage(snap, 4096, 1);

  EXPECT_EQ(manager.Next(bad.id, &r), ServeStatus::kIoError);
  EXPECT_EQ(manager.state(bad.id), SessionState::kFailed);
  EXPECT_EQ(manager.health(bad.id), serve::SessionHealth::kQuarantined);
  EXPECT_EQ(manager.stats().quarantined_sessions, 1u);
  EXPECT_EQ(manager.stats().failed_sessions, 1u);
  const serve::SessionCounters counters = manager.counters(bad.id);
  EXPECT_EQ(counters.scrubs, 1u);
  EXPECT_EQ(counters.slots_healed, 2u);  // both torn headers quarantined
  // Terminal, not aborting — and the store survives for offline repair.
  EXPECT_EQ(manager.Next(bad.id, &r), ServeStatus::kIoError);
  struct stat st;
  EXPECT_EQ(::stat(snap.c_str(), &st), 0);

  // The neighbor streams to exhaustion, bit-for-bit.
  std::vector<Pair> good_stream;
  DrainSession(&manager, good.id, &good_stream);
  EXPECT_EQ(good_stream, good_ref.stream);
  ExpectStatsEqual(manager.session_stats(good.id), good_ref.stats);
  EXPECT_EQ(manager.health(good.id), serve::SessionHealth::kHealthy);
}

// Satellite of ISSUE 8, manager level: a crash at EVERY write/sync op of
// the session-table store loses at most the uncommitted table delta. After
// restart, Recover() sees exactly one of the committed session sets —
// {}, {a}, {a,b}, or {a(snapshotted),b} — never a blend, and every
// recovered session serves its exact stream.
TEST(SessionManager, TableCrashPointSweepRecoversConsistentSessionSet) {
  DistanceJoinOptions join_options;
  join_options.max_pairs = 30;
  const EngineFactory factory_a =
      JoinFactory(MakePoints(40, 67), MakePoints(40, 68), join_options);
  const EngineFactory factory_b =
      JoinFactory(MakePoints(40, 69), MakePoints(40, 70), join_options);
  const Reference ref_a = RunReference(factory_a);
  const Reference ref_b = RunReference(factory_b);
  constexpr storage::CrashTearMode kModes[] = {
      storage::CrashTearMode::kPartialPage,
      storage::CrashTearMode::kGarbageTail,
      storage::CrashTearMode::kDroppedOp,
  };

  struct WorkloadResult {
    uint64_t table_ops = 0;
    uint64_t commit_failures = 0;
    SessionId id_a = 0;
    SessionId id_b = 0;
  };
  // Admits two sessions (table epochs 1 and 2), serves six results from the
  // first, then checkpoints it (epoch 3 records has_snapshot). The table
  // store crashes at mutation op `crash.crash_at` (kNever = counting pass).
  const auto run_workload =
      [&](const std::string& dir,
          const storage::CrashPointOptions& crash) -> WorkloadResult {
    serve::ServeOptions options;
    options.state_dir = dir;
    options.table_crash_point = crash;
    serve::SessionManager<2> manager(options);
    WorkloadResult out;
    const auto admit_a = manager.Admit("table-a", factory_a);
    EXPECT_EQ(admit_a.status, ServeStatus::kOk);
    JoinResult<2> r;
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ(manager.Next(admit_a.id, &r), ServeStatus::kOk);
    }
    const auto admit_b = manager.Admit("table-b", factory_b);
    EXPECT_EQ(admit_b.status, ServeStatus::kOk);
    // The session-store checkpoint commits regardless of the table's fate;
    // only the has_snapshot table record is at the crash's mercy.
    EXPECT_TRUE(manager.Checkpoint(admit_a.id));
    out.id_a = admit_a.id;
    out.id_b = admit_b.id;
    out.commit_failures = manager.stats().table_commit_failures;
    EXPECT_NE(manager.table(), nullptr);
    if (manager.table() != nullptr) {
      out.table_ops = manager.table()->store()->crash_point()->mutation_ops();
    }
    return out;
  };

  const WorkloadResult counting =
      run_workload(FreshStateDir("serve_table_crash"), {});
  ASSERT_GT(counting.table_ops, 0u);
  ASSERT_EQ(counting.commit_failures, 0u);

  for (uint64_t k = 0; k < counting.table_ops; ++k) {
    SCOPED_TRACE(::testing::Message() << "crash at table op " << k);
    const std::string dir = FreshStateDir("serve_table_crash");
    const WorkloadResult crashed = run_workload(
        dir, storage::CrashPointOptions{k, kModes[k % 3], k + 1});
    // The crash fails at least one table commit (the previous epoch
    // survives); serving itself never stops.
    EXPECT_GE(crashed.commit_failures, 1u);

    serve::ServeOptions options;
    options.state_dir = dir;
    serve::SessionManager<2> manager(options);
    std::map<uint64_t, serve::SessionRecord> records;
    const size_t recovered = manager.Recover(
        [&](const serve::SessionRecord& record) -> EngineFactory {
          records[record.id] = record;
          if (record.tag == "table-a") return factory_a;
          if (record.tag == "table-b") return factory_b;
          ADD_FAILURE() << "unexpected record tag: " << record.tag;
          return nullptr;
        });
    ASSERT_EQ(recovered, records.size());
    // Exactly one committed epoch's session set — never a blend.
    ASSERT_LE(recovered, 2u);
    if (recovered == 1) {
      ASSERT_TRUE(records.count(crashed.id_a));
      EXPECT_FALSE(records[crashed.id_a].has_snapshot);  // epoch 1
    } else if (recovered == 2) {
      ASSERT_TRUE(records.count(crashed.id_a));
      ASSERT_TRUE(records.count(crashed.id_b));
      EXPECT_FALSE(records[crashed.id_b].has_snapshot);  // epochs 2 and 3
    }
    // Every recovered session serves its exact stream: from the six-result
    // checkpoint when the table remembers it, from scratch otherwise.
    if (records.count(crashed.id_a)) {
      std::vector<Pair> stream;
      if (records[crashed.id_a].has_snapshot) {
        stream.assign(ref_a.stream.begin(), ref_a.stream.begin() + 6);
      }
      DrainSession(&manager, crashed.id_a, &stream);
      EXPECT_EQ(stream, ref_a.stream);
    }
    if (records.count(crashed.id_b)) {
      std::vector<Pair> stream;
      DrainSession(&manager, crashed.id_b, &stream);
      EXPECT_EQ(stream, ref_b.stream);
    }
    // The recovered table is writable again: admission commits new epochs.
    const auto fresh = manager.Admit("table-c", factory_a);
    ASSERT_EQ(fresh.status, ServeStatus::kOk);
  }
  std::printf("session-table crash sweep: %llu crash points, all modes\n",
              static_cast<unsigned long long>(counting.table_ops));
}

// --- sharded engines behind the serving layer --------------------------------

// A sharded join (DESIGN.md §18) exposes the same JoinCursor-compatible
// contract as every serial engine, so it erases and serves unchanged.
EngineFactory ShardedJoinFactory(std::vector<Point<2>> a,
                                 std::vector<Point<2>> b,
                                 DistanceJoinOptions options) {
  return [a = std::move(a), b = std::move(b),
          options](util::StopToken token)
             -> std::unique_ptr<serve::ErasedEngine<2>> {
    auto ctx = std::make_shared<TreePairContext>(a, b);
    DistanceJoinOptions o = options;
    o.stop_token = token;
    auto join = std::make_unique<ShardedDistanceJoin<2>>(ctx->a, ctx->b, o);
    return serve::Erase<2>(std::move(join), ctx);
  };
}

TEST(SessionManager, ShardedEngineServesEvictsAndRecoversLikeSerial) {
  const auto a = MakePoints(400, 61);
  const auto b = MakePoints(400, 62);
  DistanceJoinOptions options;
  options.max_pairs = 600;
  // Serial reference: the served sharded session must reproduce this exact
  // stream across slicing, eviction, and post-crash recovery.
  const Reference ref = RunReference(JoinFactory(a, b, options));

  DistanceJoinOptions sharded_options = options;
  sharded_options.shards = 4;
  const EngineFactory factory = ShardedJoinFactory(a, b, sharded_options);

  serve::ServeOptions serve_options;
  serve_options.state_dir = FreshStateDir("serve_sharded");
  std::vector<Pair> stream;
  SessionId id = 0;
  {
    serve::SessionManager<2> manager(serve_options);
    const auto admit = manager.Admit("sharded", factory);
    ASSERT_EQ(admit.status, ServeStatus::kOk);
    id = admit.id;
    JoinResult<2> r;
    for (int i = 0; i < 100; ++i) {
      ASSERT_EQ(manager.Next(id, &r), ServeStatus::kOk);
      stream.push_back(AsTuple(r));
    }
    // Checkpoint-evict mid-stream (shard snapshots + merge cursor), then
    // rehydrate transparently and keep serving.
    ASSERT_TRUE(manager.Evict(id));
    for (int i = 0; i < 50; ++i) {
      ASSERT_EQ(manager.Next(id, &r), ServeStatus::kOk);
      stream.push_back(AsTuple(r));
    }
    // "Crash" with a committed checkpoint (manager destroyed while evicted).
    ASSERT_TRUE(manager.Evict(id));
  }
  serve::SessionManager<2> manager(serve_options);
  const size_t recovered = manager.Recover(
      [&](const serve::SessionRecord&) -> EngineFactory { return factory; });
  ASSERT_EQ(recovered, 1u);
  DrainSession(&manager, id, &stream);
  EXPECT_EQ(stream, ref.stream);
  // Capped sharded runs report the same pairs even though per-shard
  // lookahead lets traversal counters run ahead (DESIGN.md §18).
  EXPECT_EQ(manager.session_stats(id).pairs_reported,
            ref.stats.pairs_reported);
}

}  // namespace
}  // namespace sdj
