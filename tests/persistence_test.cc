// Tests for R-tree persistence: Flush() + Open() round trips through the
// file-backed page store.
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "data/generators.h"
#include "rtree/rtree.h"
#include "storage/page_file.h"

namespace sdj {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

RTreeOptions FileOptions(const std::string& path) {
  RTreeOptions options;
  options.page_size = 512;
  options.file_path = path;
  return options;
}

TEST(OpenFilePageFile, OpensExistingPages) {
  const std::string path = TempPath("open_pagefile.bin");
  {
    auto file = storage::NewFilePageFile(path, 128);
    ASSERT_NE(file, nullptr);
    file->Allocate();
    file->Allocate();
    char buffer[128];
    std::fill(buffer, buffer + 128, 0x3C);
    ASSERT_TRUE(file->Write(1, buffer));
  }
  auto reopened = storage::OpenFilePageFile(path, 128);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->num_pages(), 2u);
  char buffer[128] = {};
  ASSERT_TRUE(reopened->Read(1, buffer));
  for (char c : buffer) EXPECT_EQ(c, 0x3C);
}

TEST(OpenFilePageFile, RejectsMissingOrMisalignedFiles) {
  EXPECT_EQ(storage::OpenFilePageFile(TempPath("nope.bin"), 128), nullptr);
  const std::string path = TempPath("misaligned.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("not a page multiple", f);
    std::fclose(f);
  }
  EXPECT_EQ(storage::OpenFilePageFile(path, 128), nullptr);
}

TEST(RTreePersistence, FlushAndOpenRoundTrip) {
  const std::string path = TempPath("rtree_roundtrip.pages");
  const auto points =
      data::GenerateUniform(800, Rect<2>({0, 0}, {500, 500}), 99);
  {
    RTree<2> tree(FileOptions(path));
    for (size_t i = 0; i < points.size(); ++i) {
      tree.Insert(Rect<2>::FromPoint(points[i]), i);
    }
    tree.Flush();
  }
  auto reopened = RTree<2>::Open(FileOptions(path));
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->size(), points.size());
  std::string error;
  ASSERT_TRUE(reopened->Validate(&error)) << error;

  // Queries against the reopened tree match brute force.
  const Rect<2> window({100, 100}, {300, 250});
  std::vector<RTree<2>::Entry> out;
  reopened->RangeQuery(window, &out);
  size_t expected = 0;
  for (const auto& p : points) {
    if (window.Contains(p)) ++expected;
  }
  EXPECT_EQ(out.size(), expected);
}

TEST(RTreePersistence, ReopenedTreeSupportsFurtherInserts) {
  const std::string path = TempPath("rtree_growing.pages");
  {
    RTree<2> tree(FileOptions(path));
    for (int i = 0; i < 200; ++i) {
      tree.Insert(Rect<2>::FromPoint({i * 1.0, i * 2.0}), i);
    }
    tree.Flush();
  }
  auto reopened = RTree<2>::Open(FileOptions(path));
  ASSERT_NE(reopened, nullptr);
  for (int i = 200; i < 400; ++i) {
    reopened->Insert(Rect<2>::FromPoint({i * 1.0, i * 2.0}), i);
  }
  EXPECT_EQ(reopened->size(), 400u);
  std::string error;
  ASSERT_TRUE(reopened->Validate(&error)) << error;
  // Flush again and reopen once more.
  reopened->Flush();
  auto again = RTree<2>::Open(FileOptions(path));
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again->size(), 400u);
  EXPECT_TRUE(again->Validate());
}

TEST(RTreePersistence, OpenRejectsParameterMismatch) {
  const std::string path = TempPath("rtree_mismatch.pages");
  {
    RTree<2> tree(FileOptions(path));
    tree.Insert(Rect<2>::FromPoint({1, 1}), 0);
    tree.Flush();
  }
  // Wrong page size.
  RTreeOptions wrong_page = FileOptions(path);
  wrong_page.page_size = 1024;
  EXPECT_EQ(RTree<2>::Open(wrong_page), nullptr);
  // Wrong dimension.
  RTreeOptions as_3d;
  as_3d.page_size = 512;
  as_3d.file_path = path;
  EXPECT_EQ(RTree<3>::Open(as_3d), nullptr);
}

TEST(RTreePersistence, OpenRejectsUnflushedGarbage) {
  const std::string path = TempPath("rtree_garbage.pages");
  {
    auto file = storage::NewFilePageFile(path, 512);
    file->Allocate();  // a zeroed page: no magic
  }
  EXPECT_EQ(RTree<2>::Open(FileOptions(path)), nullptr);
}

TEST(RTreePersistence, JoinOverReopenedTrees) {
  const std::string path_a = TempPath("rtree_join_a.pages");
  const std::string path_b = TempPath("rtree_join_b.pages");
  const auto a = data::GenerateUniform(300, Rect<2>({0, 0}, {100, 100}), 1);
  const auto b = data::GenerateUniform(300, Rect<2>({0, 0}, {100, 100}), 2);
  {
    RTree<2> ta(FileOptions(path_a));
    for (size_t i = 0; i < a.size(); ++i) {
      ta.Insert(Rect<2>::FromPoint(a[i]), i);
    }
    ta.Flush();
    RTree<2> tb(FileOptions(path_b));
    for (size_t i = 0; i < b.size(); ++i) {
      tb.Insert(Rect<2>::FromPoint(b[i]), i);
    }
    tb.Flush();
  }
  auto ta = RTree<2>::Open(FileOptions(path_a));
  auto tb = RTree<2>::Open(FileOptions(path_b));
  ASSERT_NE(ta, nullptr);
  ASSERT_NE(tb, nullptr);
  DistanceJoin<2> join(*ta, *tb, DistanceJoinOptions{});
  JoinResult<2> pair;
  ASSERT_TRUE(join.Next(&pair));
  // The first pair is the globally closest one.
  double best = std::numeric_limits<double>::infinity();
  for (const auto& p : a) {
    for (const auto& q : b) best = std::min(best, Dist(p, q));
  }
  EXPECT_NEAR(pair.distance, best, 1e-9);
}

}  // namespace
}  // namespace sdj
