// Tests for R-tree persistence: Flush() + Open() round trips through the
// file-backed page store.
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "data/generators.h"
#include "rtree/rtree.h"
#include "storage/checksum.h"
#include "storage/page_file.h"

namespace sdj {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

RTreeOptions FileOptions(const std::string& path) {
  RTreeOptions options;
  options.page_size = 512;
  options.file_path = path;
  return options;
}

TEST(OpenFilePageFile, OpensExistingPages) {
  const std::string path = TempPath("open_pagefile.bin");
  {
    auto file = storage::NewFilePageFile(path, 128);
    ASSERT_NE(file, nullptr);
    file->Allocate();
    file->Allocate();
    char buffer[128];
    std::fill(buffer, buffer + 128, 0x3C);
    ASSERT_EQ(file->Write(1, buffer), storage::IoStatus::kOk);
  }
  auto reopened = storage::OpenFilePageFile(path, 128);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->num_pages(), 2u);
  char buffer[128] = {};
  ASSERT_EQ(reopened->Read(1, buffer), storage::IoStatus::kOk);
  for (char c : buffer) EXPECT_EQ(c, 0x3C);
}

TEST(OpenFilePageFile, RejectsMissingOrMisalignedFiles) {
  EXPECT_EQ(storage::OpenFilePageFile(TempPath("nope.bin"), 128), nullptr);
  const std::string path = TempPath("misaligned.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("not a page multiple", f);
    std::fclose(f);
  }
  EXPECT_EQ(storage::OpenFilePageFile(path, 128), nullptr);
}

TEST(RTreePersistence, FlushAndOpenRoundTrip) {
  const std::string path = TempPath("rtree_roundtrip.pages");
  const auto points =
      data::GenerateUniform(800, Rect<2>({0, 0}, {500, 500}), 99);
  {
    RTree<2> tree(FileOptions(path));
    for (size_t i = 0; i < points.size(); ++i) {
      tree.Insert(Rect<2>::FromPoint(points[i]), i);
    }
    tree.Flush();
  }
  auto reopened = RTree<2>::Open(FileOptions(path));
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->size(), points.size());
  std::string error;
  ASSERT_TRUE(reopened->Validate(&error)) << error;

  // Queries against the reopened tree match brute force.
  const Rect<2> window({100, 100}, {300, 250});
  std::vector<RTree<2>::Entry> out;
  reopened->RangeQuery(window, &out);
  size_t expected = 0;
  for (const auto& p : points) {
    if (window.Contains(p)) ++expected;
  }
  EXPECT_EQ(out.size(), expected);
}

TEST(RTreePersistence, ReopenedTreeSupportsFurtherInserts) {
  const std::string path = TempPath("rtree_growing.pages");
  {
    RTree<2> tree(FileOptions(path));
    for (int i = 0; i < 200; ++i) {
      tree.Insert(Rect<2>::FromPoint({i * 1.0, i * 2.0}), i);
    }
    tree.Flush();
  }
  auto reopened = RTree<2>::Open(FileOptions(path));
  ASSERT_NE(reopened, nullptr);
  for (int i = 200; i < 400; ++i) {
    reopened->Insert(Rect<2>::FromPoint({i * 1.0, i * 2.0}), i);
  }
  EXPECT_EQ(reopened->size(), 400u);
  std::string error;
  ASSERT_TRUE(reopened->Validate(&error)) << error;
  // Flush again and reopen once more.
  reopened->Flush();
  auto again = RTree<2>::Open(FileOptions(path));
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again->size(), 400u);
  EXPECT_TRUE(again->Validate());
}

TEST(RTreePersistence, OpenRejectsParameterMismatch) {
  const std::string path = TempPath("rtree_mismatch.pages");
  {
    RTree<2> tree(FileOptions(path));
    tree.Insert(Rect<2>::FromPoint({1, 1}), 0);
    tree.Flush();
  }
  // Wrong page size.
  RTreeOptions wrong_page = FileOptions(path);
  wrong_page.page_size = 1024;
  EXPECT_EQ(RTree<2>::Open(wrong_page), nullptr);
  // Wrong dimension.
  RTreeOptions as_3d;
  as_3d.page_size = 512;
  as_3d.file_path = path;
  EXPECT_EQ(RTree<3>::Open(as_3d), nullptr);
}

TEST(RTreePersistence, OpenRejectsUnflushedGarbage) {
  const std::string path = TempPath("rtree_garbage.pages");
  {
    auto file = storage::NewFilePageFile(path, 512);
    file->Allocate();  // a zeroed page: no magic
  }
  EXPECT_EQ(RTree<2>::Open(FileOptions(path)), nullptr);
}

TEST(PageFileSync, MemoryAndPosixBackendsSyncOk) {
  auto memory = storage::NewMemoryPageFile(128);
  EXPECT_EQ(memory->Sync(), storage::IoStatus::kOk);
  const std::string path = TempPath("sync.bin");
  auto posix = storage::NewFilePageFile(path, 128);
  ASSERT_NE(posix, nullptr);
  posix->Allocate();
  char buffer[128] = {};
  ASSERT_EQ(posix->Write(0, buffer), storage::IoStatus::kOk);
  EXPECT_EQ(posix->Sync(), storage::IoStatus::kOk);
}

TEST(OpenFilePageFile, RecoversTruncatedTrailingPage) {
  const std::string path = TempPath("torn_tail.bin");
  {
    auto file = storage::NewFilePageFile(path, 128);
    ASSERT_NE(file, nullptr);
    file->Allocate();
    file->Allocate();
    char buffer[128];
    std::fill(buffer, buffer + 128, 0x3C);
    ASSERT_EQ(file->Write(0, buffer), storage::IoStatus::kOk);
    ASSERT_EQ(file->Write(1, buffer), storage::IoStatus::kOk);
  }
  // Simulate a crash mid-append: half a page of garbage at the end.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    for (int i = 0; i < 64; ++i) std::fputc(0xEE, f);
    std::fclose(f);
  }
  // Without recovery the misaligned file is refused; with recovery the torn
  // tail is dropped and the whole pages stay intact.
  EXPECT_EQ(storage::OpenFilePageFile(path, 128), nullptr);
  auto recovered =
      storage::OpenFilePageFile(path, 128, /*recover_truncated_tail=*/true);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->num_pages(), 2u);
  char buffer[128] = {};
  ASSERT_EQ(recovered->Read(1, buffer), storage::IoStatus::kOk);
  for (char c : buffer) EXPECT_EQ(c, 0x3C);
}

TEST(RTreePersistence, CorruptedPageFailsChecksumNotGeometry) {
  const std::string path = TempPath("rtree_corrupt.pages");
  const auto a = data::GenerateUniform(800, Rect<2>({0, 0}, {500, 500}), 7);
  {
    RTree<2> tree(FileOptions(path));
    for (size_t i = 0; i < a.size(); ++i) {
      tree.Insert(Rect<2>::FromPoint(a[i]), i);
    }
    ASSERT_TRUE(tree.Flush());
  }
  // Flip one byte in the middle of a node page (well past the meta page).
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const long physical = 512 + static_cast<long>(storage::kPageTrailerSize);
    ASSERT_EQ(std::fseek(f, 3 * physical + 100, SEEK_SET), 0);
    const int old_byte = std::fgetc(f);
    ASSERT_NE(old_byte, EOF);
    ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
    std::fputc(old_byte ^ 0x40, f);
    std::fclose(f);
  }
  RTreeOptions options = FileOptions(path);
  options.retry.backoff_us = 0;
  auto reopened = RTree<2>::Open(options);
  ASSERT_NE(reopened, nullptr);
  // A self-join touches every page: it must stop with an I/O error (the
  // corrupted page persistently fails verification) — never produce pairs
  // from garbage geometry.
  DistanceJoin<2> join(*reopened, *reopened, DistanceJoinOptions{});
  JoinResult<2> pair;
  while (join.Next(&pair)) {
  }
  EXPECT_EQ(join.status(), JoinStatus::kIoError);
  EXPECT_GT(join.stats().checksum_failures, 0u);
}

TEST(RTreePersistence, OpenRecoversFromTornTrailingPage) {
  const std::string path = TempPath("rtree_torn.pages");
  {
    RTree<2> tree(FileOptions(path));
    for (int i = 0; i < 300; ++i) {
      tree.Insert(Rect<2>::FromPoint({i * 1.0, i * 3.0}), i);
    }
    ASSERT_TRUE(tree.Flush());
  }
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    for (int i = 0; i < 99; ++i) std::fputc(0xAB, f);
    std::fclose(f);
  }
  EXPECT_EQ(RTree<2>::Open(FileOptions(path)), nullptr);
  RTreeOptions options = FileOptions(path);
  options.recover_truncated_tail = true;
  auto recovered = RTree<2>::Open(options);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->size(), 300u);
  std::string error;
  EXPECT_TRUE(recovered->Validate(&error)) << error;
}

TEST(RTreePersistence, JoinOverReopenedTrees) {
  const std::string path_a = TempPath("rtree_join_a.pages");
  const std::string path_b = TempPath("rtree_join_b.pages");
  const auto a = data::GenerateUniform(300, Rect<2>({0, 0}, {100, 100}), 1);
  const auto b = data::GenerateUniform(300, Rect<2>({0, 0}, {100, 100}), 2);
  {
    RTree<2> ta(FileOptions(path_a));
    for (size_t i = 0; i < a.size(); ++i) {
      ta.Insert(Rect<2>::FromPoint(a[i]), i);
    }
    ta.Flush();
    RTree<2> tb(FileOptions(path_b));
    for (size_t i = 0; i < b.size(); ++i) {
      tb.Insert(Rect<2>::FromPoint(b[i]), i);
    }
    tb.Flush();
  }
  auto ta = RTree<2>::Open(FileOptions(path_a));
  auto tb = RTree<2>::Open(FileOptions(path_b));
  ASSERT_NE(ta, nullptr);
  ASSERT_NE(tb, nullptr);
  DistanceJoin<2> join(*ta, *tb, DistanceJoinOptions{});
  JoinResult<2> pair;
  ASSERT_TRUE(join.Next(&pair));
  // The first pair is the globally closest one.
  double best = std::numeric_limits<double>::infinity();
  for (const auto& p : a) {
    for (const auto& q : b) best = std::min(best, Dist(p, q));
  }
  EXPECT_NEAR(pair.distance, best, 1e-9);
}

}  // namespace
}  // namespace sdj
