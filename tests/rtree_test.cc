#include "rtree/rtree.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "geometry/rect.h"
#include "rtree/node_layout.h"
#include "util/rng.h"

namespace sdj {
namespace {

using rtree_internal::NodeLayout;

TEST(NodeLayout, FanOutMatchesPaperConfiguration) {
  // 2048-byte pages with double coordinates give the paper's fan-out of ~50.
  EXPECT_EQ(NodeLayout<2>::Capacity(2048), 51u);
  EXPECT_EQ(NodeLayout<2>::kEntrySize, 40u);
  // 1K pages (the paper's size, float-era) would hold 25 double entries.
  EXPECT_EQ(NodeLayout<2>::Capacity(1024), 25u);
}

TEST(NodeLayout, RoundTripsHeaderAndEntries) {
  char page[512] = {};
  NodeLayout<2>::SetLevel(page, 3);
  NodeLayout<2>::SetCount(page, 7);
  EXPECT_EQ(NodeLayout<2>::GetLevel(page), 3);
  EXPECT_EQ(NodeLayout<2>::GetCount(page), 7);
  const Rect<2> r({1.5, -2.0}, {3.0, 4.0});
  NodeLayout<2>::SetRect(page, 2, r);
  NodeLayout<2>::SetRef(page, 2, 0xDEADBEEFCAFEull);
  EXPECT_EQ(NodeLayout<2>::GetRect(page, 2), r);
  EXPECT_EQ(NodeLayout<2>::GetRef(page, 2), 0xDEADBEEFCAFEull);
}

RTreeOptions SmallNodeOptions(RTreeOptions::Split split) {
  RTreeOptions options;
  options.page_size = 512;  // fan-out 12 => deeper trees with less data
  options.split_policy = split;
  return options;
}

class RTreeSplitTest : public ::testing::TestWithParam<RTreeOptions::Split> {
 protected:
  RTreeOptions Options() const { return SmallNodeOptions(GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(Splits, RTreeSplitTest,
                         ::testing::Values(RTreeOptions::Split::kRStar,
                                           RTreeOptions::Split::kQuadratic),
                         [](const auto& info) {
                           return info.param == RTreeOptions::Split::kRStar
                                      ? "RStar"
                                      : "Quadratic";
                         });

TEST(RTree, EmptyTree) {
  RTree<2> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 0);
  EXPECT_TRUE(tree.Validate());
  std::vector<RTree<2>::Entry> out;
  tree.RangeQuery(Rect<2>({0, 0}, {1, 1}), &out);
  EXPECT_TRUE(out.empty());
}

TEST(RTree, SingleInsert) {
  RTree<2> tree;
  tree.Insert(Rect<2>::FromPoint({1, 2}), 42);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.Validate());
  std::vector<RTree<2>::Entry> out;
  tree.RangeQuery(Rect<2>({0, 0}, {5, 5}), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 42u);
}

TEST(RTree, RootMbrCoversAllInserts) {
  RTree<2> tree;
  tree.Insert(Rect<2>::FromPoint({0, 0}), 0);
  tree.Insert(Rect<2>::FromPoint({10, -5}), 1);
  tree.Insert(Rect<2>({2, 2}, {3, 8}), 2);
  EXPECT_EQ(tree.RootMbr(), Rect<2>({0, -5}, {10, 8}));
}

TEST_P(RTreeSplitTest, ManyInsertsStayValidAndQueryable) {
  RTree<2> tree(Options());
  const Rect<2> extent({0, 0}, {1000, 1000});
  const auto points = data::GenerateUniform(2000, extent, 77);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(Rect<2>::FromPoint(points[i]), i);
    if (i % 500 == 499) {
      std::string error;
      ASSERT_TRUE(tree.Validate(&error)) << "after " << i << ": " << error;
    }
  }
  std::string error;
  ASSERT_TRUE(tree.Validate(&error)) << error;
  EXPECT_EQ(tree.size(), points.size());
  EXPECT_GE(tree.height(), 3);

  // Query correctness against brute force, for a sweep of window sizes.
  Rng rng(5);
  for (int q = 0; q < 50; ++q) {
    const double cx = rng.Uniform(0, 1000);
    const double cy = rng.Uniform(0, 1000);
    const double half = rng.Uniform(1, 120);
    const Rect<2> window({cx - half, cy - half}, {cx + half, cy + half});
    std::vector<RTree<2>::Entry> out;
    tree.RangeQuery(window, &out);
    std::set<ObjectId> got;
    for (const auto& e : out) got.insert(e.id);
    ASSERT_EQ(got.size(), out.size()) << "duplicate results";
    std::set<ObjectId> expected;
    for (size_t i = 0; i < points.size(); ++i) {
      if (window.Contains(points[i])) expected.insert(i);
    }
    ASSERT_EQ(got, expected) << "query " << q;
  }
}

TEST_P(RTreeSplitTest, ClusteredDataStaysValid) {
  RTree<2> tree(Options());
  data::ClusterOptions copts;
  copts.num_points = 3000;
  copts.extent = Rect<2>({0, 0}, {1000, 1000});
  copts.num_clusters = 5;
  copts.spread_fraction = 0.01;
  copts.seed = 9;
  const auto points = data::GenerateClustered(copts);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(Rect<2>::FromPoint(points[i]), i);
  }
  std::string error;
  EXPECT_TRUE(tree.Validate(&error)) << error;
}

TEST_P(RTreeSplitTest, ExtendedObjectsSupported) {
  RTree<2> tree(Options());
  Rng rng(13);
  std::vector<Rect<2>> rects;
  for (int i = 0; i < 800; ++i) {
    const double x = rng.Uniform(0, 990);
    const double y = rng.Uniform(0, 990);
    const Rect<2> r({x, y}, {x + rng.Uniform(0, 10), y + rng.Uniform(0, 10)});
    rects.push_back(r);
    tree.Insert(r, i);
  }
  std::string error;
  ASSERT_TRUE(tree.Validate(&error)) << error;
  const Rect<2> window({100, 100}, {300, 300});
  std::vector<RTree<2>::Entry> out;
  tree.RangeQuery(window, &out);
  std::set<ObjectId> got;
  for (const auto& e : out) got.insert(e.id);
  std::set<ObjectId> expected;
  for (size_t i = 0; i < rects.size(); ++i) {
    if (window.Intersects(rects[i])) expected.insert(i);
  }
  EXPECT_EQ(got, expected);
}

TEST(RTree, ForEachObjectVisitsAllOnce) {
  RTree<2> tree(SmallNodeOptions(RTreeOptions::Split::kRStar));
  const auto points =
      data::GenerateUniform(500, Rect<2>({0, 0}, {100, 100}), 3);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(Rect<2>::FromPoint(points[i]), i);
  }
  std::set<ObjectId> seen;
  tree.ForEachObject([&seen](const Rect<2>& rect, ObjectId id) {
    EXPECT_EQ(rect.Area(), 0.0);
    EXPECT_TRUE(seen.insert(id).second);
  });
  EXPECT_EQ(seen.size(), 500u);
}

TEST(RTree, BulkLoadMatchesInsertSemantics) {
  const auto points =
      data::GenerateUniform(3000, Rect<2>({0, 0}, {1000, 1000}), 21);
  std::vector<RTree<2>::Entry> entries;
  for (size_t i = 0; i < points.size(); ++i) {
    entries.push_back({Rect<2>::FromPoint(points[i]), i});
  }
  RTree<2> tree(SmallNodeOptions(RTreeOptions::Split::kRStar));
  tree.BulkLoad(entries);
  EXPECT_EQ(tree.size(), points.size());
  std::string error;
  ASSERT_TRUE(tree.Validate(&error)) << error;

  const Rect<2> window({200, 200}, {400, 500});
  std::vector<RTree<2>::Entry> out;
  tree.RangeQuery(window, &out);
  size_t expected = 0;
  for (const auto& p : points) {
    if (window.Contains(p)) ++expected;
  }
  EXPECT_EQ(out.size(), expected);
}

TEST(RTree, BulkLoadSizeSweepAlwaysValid) {
  // Sweep sizes around node-capacity boundaries to exercise the balanced
  // chunking (underfull nodes would fail Validate).
  for (size_t n : {1u, 2u, 11u, 12u, 13u, 24u, 25u, 140u, 145u, 1000u}) {
    const auto points =
        data::GenerateUniform(n, Rect<2>({0, 0}, {100, 100}), n);
    std::vector<RTree<2>::Entry> entries;
    for (size_t i = 0; i < points.size(); ++i) {
      entries.push_back({Rect<2>::FromPoint(points[i]), i});
    }
    RTree<2> tree(SmallNodeOptions(RTreeOptions::Split::kRStar));
    tree.BulkLoad(entries);
    std::string error;
    ASSERT_TRUE(tree.Validate(&error)) << "n=" << n << ": " << error;
    EXPECT_EQ(tree.size(), n);
  }
}

TEST_P(RTreeSplitTest, DeleteMaintainsInvariants) {
  RTree<2> tree(Options());
  const auto points =
      data::GenerateUniform(1200, Rect<2>({0, 0}, {500, 500}), 31);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(Rect<2>::FromPoint(points[i]), i);
  }
  // Delete every other object.
  for (size_t i = 0; i < points.size(); i += 2) {
    ASSERT_TRUE(tree.Delete(Rect<2>::FromPoint(points[i]), i)) << i;
  }
  EXPECT_EQ(tree.size(), points.size() / 2);
  std::string error;
  ASSERT_TRUE(tree.Validate(&error)) << error;
  // Deleted objects are gone; remaining ones still findable.
  std::vector<RTree<2>::Entry> out;
  tree.RangeQuery(Rect<2>({0, 0}, {500, 500}), &out);
  std::set<ObjectId> got;
  for (const auto& e : out) got.insert(e.id);
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(got.count(i), i % 2 == 1 ? 1u : 0u) << i;
  }
}

TEST(RTree, DeleteNonexistentReturnsFalse) {
  RTree<2> tree;
  EXPECT_FALSE(tree.Delete(Rect<2>::FromPoint({1, 1}), 0));
  tree.Insert(Rect<2>::FromPoint({1, 1}), 0);
  EXPECT_FALSE(tree.Delete(Rect<2>::FromPoint({1, 1}), 1));  // wrong id
  EXPECT_FALSE(tree.Delete(Rect<2>::FromPoint({2, 2}), 0));  // wrong rect
  EXPECT_TRUE(tree.Delete(Rect<2>::FromPoint({1, 1}), 0));
  EXPECT_FALSE(tree.Delete(Rect<2>::FromPoint({1, 1}), 0));  // already gone
}

TEST(RTree, DeleteAllThenReuse) {
  RTree<2> tree(SmallNodeOptions(RTreeOptions::Split::kRStar));
  const auto points =
      data::GenerateUniform(300, Rect<2>({0, 0}, {100, 100}), 8);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(Rect<2>::FromPoint(points[i]), i);
  }
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(tree.Delete(Rect<2>::FromPoint(points[i]), i));
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Validate());
  // The tree must be usable again after full deletion.
  tree.Insert(Rect<2>::FromPoint({5, 5}), 7);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.Validate());
}

TEST(RTree, MinObjectsUnderUsesMinimumFanOut) {
  RTree<2> tree;  // default: max 51, min 20
  EXPECT_EQ(tree.min_entries(), 20u);
  EXPECT_EQ(tree.MinObjectsUnder(0), 20u);
  EXPECT_EQ(tree.MinObjectsUnder(1), 400u);
  EXPECT_EQ(tree.MinObjectsUnder(2), 8000u);
}

TEST(RTree, ExpectedObjectsUnderReflectsOccupancy) {
  RTree<2> tree(SmallNodeOptions(RTreeOptions::Split::kRStar));
  const auto points =
      data::GenerateUniform(1000, Rect<2>({0, 0}, {100, 100}), 5);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(Rect<2>::FromPoint(points[i]), i);
  }
  // Leaves on average hold size/num_leaves objects.
  EXPECT_DOUBLE_EQ(tree.ExpectedObjectsUnder(0),
                   1000.0 / tree.num_leaves());
  EXPECT_GT(tree.ExpectedObjectsUnder(0), tree.min_entries() * 0.5);
}

TEST(RTree, PinExposesNodeStructure) {
  RTree<2> tree(SmallNodeOptions(RTreeOptions::Split::kRStar));
  const auto points =
      data::GenerateUniform(400, Rect<2>({0, 0}, {100, 100}), 6);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(Rect<2>::FromPoint(points[i]), i);
  }
  auto root = tree.Pin(tree.root());
  EXPECT_EQ(root.level(), tree.root_level());
  EXPECT_GE(root.count(), 2u);
  // Children are one level down and inside the root MBR.
  const Rect<2> root_mbr = tree.RootMbr();
  for (uint32_t i = 0; i < root.count(); ++i) {
    EXPECT_TRUE(root_mbr.Contains(root.rect(i)));
    auto child = tree.Pin(static_cast<storage::PageId>(root.ref(i)));
    EXPECT_EQ(child.level(), root.level() - 1);
  }
}

TEST(RTree, NodeIoAccountingThroughPool) {
  RTreeOptions options = SmallNodeOptions(RTreeOptions::Split::kRStar);
  options.buffer_pages = 8;  // tiny buffer to force misses
  RTree<2> tree(options);
  const auto points =
      data::GenerateUniform(2000, Rect<2>({0, 0}, {1000, 1000}), 44);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(Rect<2>::FromPoint(points[i]), i);
  }
  tree.pool().ResetStats();
  std::vector<RTree<2>::Entry> out;
  tree.RangeQuery(Rect<2>({0, 0}, {1000, 1000}), &out);
  EXPECT_EQ(out.size(), 2000u);
  const auto& stats = tree.pool().stats();
  EXPECT_EQ(stats.logical_reads, tree.num_nodes());
  EXPECT_GT(stats.buffer_misses, 0u);
}

TEST(RTree, FileBackedTreeWorks) {
  RTreeOptions options = SmallNodeOptions(RTreeOptions::Split::kRStar);
  options.file_path = ::testing::TempDir() + "/sdj_rtree_test.pages";
  options.buffer_pages = 4;
  RTree<2> tree(options);
  const auto points =
      data::GenerateUniform(600, Rect<2>({0, 0}, {100, 100}), 10);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(Rect<2>::FromPoint(points[i]), i);
  }
  std::string error;
  ASSERT_TRUE(tree.Validate(&error)) << error;
  std::vector<RTree<2>::Entry> out;
  tree.RangeQuery(Rect<2>({0, 0}, {100, 100}), &out);
  EXPECT_EQ(out.size(), 600u);
}

TEST(RTree, ThreeDimensionalTree) {
  RTreeOptions options;
  options.page_size = 512;
  RTree<3> tree(options);
  Rng rng(17);
  std::vector<Point<3>> points;
  for (int i = 0; i < 1000; ++i) {
    points.push_back(
        {rng.Uniform(0, 100), rng.Uniform(0, 100), rng.Uniform(0, 100)});
    tree.Insert(Rect<3>::FromPoint(points.back()), i);
  }
  std::string error;
  ASSERT_TRUE(tree.Validate(&error)) << error;
  const Rect<3> window({10, 10, 10}, {60, 50, 40});
  std::vector<RTree<3>::Entry> out;
  tree.RangeQuery(window, &out);
  size_t expected = 0;
  for (const auto& p : points) {
    if (window.Contains(p)) ++expected;
  }
  EXPECT_EQ(out.size(), expected);
}

TEST(RTree, MaxEntriesOverrideCapsFanOut) {
  RTreeOptions options;
  options.max_entries_override = 8;
  RTree<2> tree(options);
  EXPECT_EQ(tree.max_entries(), 8u);
  EXPECT_EQ(tree.min_entries(), 3u);
  for (int i = 0; i < 200; ++i) {
    tree.Insert(Rect<2>::FromPoint({static_cast<double>(i % 20),
                                    static_cast<double>(i / 20)}),
                i);
  }
  std::string error;
  EXPECT_TRUE(tree.Validate(&error)) << error;
  EXPECT_GE(tree.height(), 3);
}

}  // namespace
}  // namespace sdj
