// Randomized stress tests for the R-tree: long interleaved
// insert/delete/query workloads checked against a brute-force mirror, plus
// degenerate-data torture cases.
#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "rtree/rtree.h"
#include "util/rng.h"

namespace sdj {
namespace {

class RTreeStress : public ::testing::TestWithParam<RTreeOptions::Split> {
 protected:
  RTreeOptions Options() const {
    RTreeOptions options;
    options.page_size = 512;
    options.split_policy = GetParam();
    return options;
  }
};

INSTANTIATE_TEST_SUITE_P(Splits, RTreeStress,
                         ::testing::Values(RTreeOptions::Split::kRStar,
                                           RTreeOptions::Split::kQuadratic),
                         [](const auto& info) {
                           return info.param == RTreeOptions::Split::kRStar
                                      ? "RStar"
                                      : "Quadratic";
                         });

TEST_P(RTreeStress, RandomInsertDeleteQueryAgainstMirror) {
  RTree<2> tree(Options());
  Rng rng(777);
  std::map<ObjectId, Point<2>> mirror;
  ObjectId next_id = 0;

  for (int op = 0; op < 4000; ++op) {
    const double action = rng.NextDouble();
    if (action < 0.55 || mirror.empty()) {
      const Point<2> p{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
      tree.Insert(Rect<2>::FromPoint(p), next_id);
      mirror[next_id] = p;
      ++next_id;
    } else if (action < 0.8) {
      // Delete a random live object.
      auto it = mirror.begin();
      std::advance(it, rng.NextBounded(mirror.size()));
      ASSERT_TRUE(tree.Delete(Rect<2>::FromPoint(it->second), it->first));
      mirror.erase(it);
    } else {
      // Window query vs. the mirror.
      const double cx = rng.Uniform(0, 1000);
      const double cy = rng.Uniform(0, 1000);
      const double half = rng.Uniform(1, 100);
      const Rect<2> window({cx - half, cy - half}, {cx + half, cy + half});
      std::vector<RTree<2>::Entry> out;
      tree.RangeQuery(window, &out);
      std::set<ObjectId> got;
      for (const auto& e : out) got.insert(e.id);
      ASSERT_EQ(got.size(), out.size());
      std::set<ObjectId> expected;
      for (const auto& [id, p] : mirror) {
        if (window.Contains(p)) expected.insert(id);
      }
      ASSERT_EQ(got, expected) << "op " << op;
    }
    ASSERT_EQ(tree.size(), mirror.size());
    if (op % 500 == 499) {
      std::string error;
      ASSERT_TRUE(tree.Validate(&error)) << "op " << op << ": " << error;
    }
  }
  std::string error;
  ASSERT_TRUE(tree.Validate(&error)) << error;
}

TEST_P(RTreeStress, TinyBufferPoolSurvivesThrashing) {
  RTreeOptions options = Options();
  options.buffer_pages = 8;
  RTree<2> tree(options);
  Rng rng(778);
  std::vector<Point<2>> points;
  for (int i = 0; i < 3000; ++i) {
    points.push_back({rng.Uniform(0, 500), rng.Uniform(0, 500)});
    tree.Insert(Rect<2>::FromPoint(points.back()), i);
  }
  std::string error;
  ASSERT_TRUE(tree.Validate(&error)) << error;
  std::vector<RTree<2>::Entry> out;
  tree.RangeQuery(Rect<2>({0, 0}, {500, 500}), &out);
  EXPECT_EQ(out.size(), points.size());
  EXPECT_GT(tree.pool().stats().buffer_misses, 100u);  // real thrash
}

TEST_P(RTreeStress, IdenticalPoints) {
  // Hundreds of coincident points: splits degenerate to zero-area choices
  // but all invariants must hold and every id must remain addressable.
  RTree<2> tree(Options());
  const Point<2> p{42.0, 17.0};
  for (int i = 0; i < 500; ++i) {
    tree.Insert(Rect<2>::FromPoint(p), i);
  }
  std::string error;
  ASSERT_TRUE(tree.Validate(&error)) << error;
  std::vector<RTree<2>::Entry> out;
  tree.RangeQuery(Rect<2>::FromPoint(p), &out);
  EXPECT_EQ(out.size(), 500u);
  // Delete specific ids out of the pile.
  for (int i = 0; i < 500; i += 3) {
    ASSERT_TRUE(tree.Delete(Rect<2>::FromPoint(p), i)) << i;
  }
  ASSERT_TRUE(tree.Validate(&error)) << error;
  out.clear();
  tree.RangeQuery(Rect<2>::FromPoint(p), &out);
  EXPECT_EQ(out.size(), 500u - (500 + 2) / 3);
}

TEST_P(RTreeStress, CollinearPoints) {
  RTree<2> tree(Options());
  for (int i = 0; i < 2000; ++i) {
    tree.Insert(Rect<2>::FromPoint({static_cast<double>(i), 5.0}), i);
  }
  std::string error;
  ASSERT_TRUE(tree.Validate(&error)) << error;
  std::vector<RTree<2>::Entry> out;
  tree.RangeQuery(Rect<2>({500.0, 0.0}, {700.0, 10.0}), &out);
  EXPECT_EQ(out.size(), 201u);
}

TEST_P(RTreeStress, AlternatingGrowShrinkCycles) {
  RTree<2> tree(Options());
  Rng rng(779);
  std::vector<std::pair<ObjectId, Point<2>>> live;
  ObjectId next_id = 0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    // Grow.
    for (int i = 0; i < 800; ++i) {
      const Point<2> p{rng.Uniform(0, 100), rng.Uniform(0, 100)};
      tree.Insert(Rect<2>::FromPoint(p), next_id);
      live.push_back({next_id, p});
      ++next_id;
    }
    std::string error;
    ASSERT_TRUE(tree.Validate(&error)) << "grow " << cycle << ": " << error;
    // Shrink to a quarter.
    while (live.size() > 200) {
      const size_t pick = rng.NextBounded(live.size());
      ASSERT_TRUE(
          tree.Delete(Rect<2>::FromPoint(live[pick].second), live[pick].first));
      live[pick] = live.back();
      live.pop_back();
    }
    ASSERT_TRUE(tree.Validate(&error)) << "shrink " << cycle << ": " << error;
    ASSERT_EQ(tree.size(), live.size());
  }
}

}  // namespace
}  // namespace sdj
